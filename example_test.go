package prorp_test

import (
	"fmt"
	"time"

	"prorp"
)

// The core integration loop: create a fleet, feed activity events, honor
// wake-ups, and run the control plane's proactive resume operation.
func ExampleFleet() {
	opts := prorp.DefaultOptions()
	opts.History = 7 * 24 * time.Hour

	fleet, _ := prorp.NewFleet(opts)
	start := time.Date(2023, 9, 4, 9, 0, 0, 0, time.UTC)
	fleet.Create(1, start)

	// A week of a daily routine teaches the policy the 9:00 login.
	for d := 0; d < 8; d++ {
		base := start.Add(time.Duration(d) * 24 * time.Hour)
		if d > 0 {
			fleet.Login(1, base)
		}
		fleet.Idle(1, base.Add(8*time.Hour))
	}

	// Overnight, the control plane pre-warms ahead of the prediction.
	prewarmAt := start.Add(8*24*time.Hour - 5*time.Minute)
	for _, pw := range fleet.RunResumeOp(prewarmAt) {
		fmt.Printf("pre-warmed database %d (allocate=%v)\n", pw.ID, pw.Decision.Allocate)
	}
	d, _ := fleet.Login(1, start.Add(8*24*time.Hour))
	fmt.Printf("login: %s (from prewarm: %v)\n", d.Event, d.FromPrewarm)
	// Output:
	// pre-warmed database 1 (allocate=true)
	// login: resume-warm (from prewarm: true)
}

// A database defaults to reactive behaviour while it has no history.
func ExampleNewDatabase() {
	db, _ := prorp.NewDatabase(prorp.DefaultOptions(), 1,
		time.Date(2023, 9, 4, 10, 0, 0, 0, time.UTC))
	d := db.Idle(time.Date(2023, 9, 4, 11, 0, 0, 0, time.UTC))
	fmt.Println(d.Event, d.WakeAt.Format("15:04"))
	// Output: logical-pause 18:00
}

// Simulate replays a synthetic region through the full stack.
func ExampleSimulate() {
	opts := prorp.DefaultOptions()
	opts.History = 7 * 24 * time.Hour
	rep, _ := prorp.Simulate(prorp.SimulationConfig{
		Region:    "EU1",
		Databases: 50,
		EvalDays:  2,
		Seed:      42,
		Options:   &opts,
	})
	fmt.Printf("proactive beats reactive when QoS > 80%%: %v\n", rep.QoSPercent > 80)
	// Output: proactive beats reactive when QoS > 80%: true
}

// PlanMaintenance schedules system operations into predicted-online
// windows (the paper's fourth future-work direction).
func ExampleDatabase_PlanMaintenance() {
	opts := prorp.DefaultOptions()
	opts.History = 7 * 24 * time.Hour
	start := time.Date(2023, 9, 4, 9, 0, 0, 0, time.UTC)
	db, _ := prorp.NewDatabase(opts, 1, start)
	for d := 0; d < 8; d++ {
		base := start.Add(time.Duration(d) * 24 * time.Hour)
		if d > 0 {
			db.Login(base)
		}
		db.Idle(base.Add(8 * time.Hour))
	}
	now := start.Add(7*24*time.Hour + 13*time.Hour) // 22:00, paused
	plan, _ := db.PlanMaintenance(now, 15*time.Minute, now.Add(24*time.Hour))
	fmt.Println(plan.Strategy, plan.Start.Format("Mon 15:04"))
	// Output: during-predicted-activity Tue 09:00
}
