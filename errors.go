package prorp

import (
	"prorp/internal/shardedfleet"
)

// The typed sentinel errors of the public API. Every fleet flavor (Fleet,
// SyncedFleet, ShardedFleet) returns errors that wrap these, so hosts
// classify failures with errors.Is regardless of which runtime they chose:
//
//	ErrUnknownDatabase    the id does not exist (HTTP 404)
//	ErrDuplicateDatabase  create/restore of an existing id (HTTP 409)
//	ErrFleetClosed        operation after Close (HTTP 503)
//	ErrBacklog            async submission queue full — shed load
//	ErrCorruptArchive     snapshot/archive cannot be decoded (truncated,
//	                      bit-flipped, wrong format) — restore from an
//	                      older snapshot; never a panic
//
// The values are shared with the internal runtimes, so an error born
// inside internal/shardedfleet matches the root sentinel directly.
var (
	ErrUnknownDatabase   = shardedfleet.ErrUnknownDatabase
	ErrDuplicateDatabase = shardedfleet.ErrDuplicateDatabase
	ErrFleetClosed       = shardedfleet.ErrClosed
	ErrBacklog           = shardedfleet.ErrBacklog
	ErrCorruptArchive    = shardedfleet.ErrCorruptArchive
)
