// Quickstart: one serverless database with a daily usage pattern, driven
// through the ProRP lifecycle by hand.
//
// It shows the core loop an embedding system implements: feed Login/Idle
// events with real timestamps, honor WakeAt timers, run the fleet's
// proactive resume operation periodically, and apply the returned
// allocate/reclaim decisions. Watch the policy learn the 9:00 login and
// start pre-warming resources ahead of it.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"prorp"
)

func main() {
	opts := prorp.DefaultOptions()
	opts.History = 7 * 24 * time.Hour // learn from one week of history

	fleet, err := prorp.NewFleet(opts)
	if err != nil {
		log.Fatal(err)
	}

	start := time.Date(2023, 9, 1, 9, 0, 0, 0, time.UTC)
	db, err := fleet.Create(1, start)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("day 0: database created at %s, state %s\n",
		start.Format("15:04"), db.State())

	// Replay ten days of a daily routine: work 9:00-12:00 and 15:00-17:00.
	// Each morning the control plane's proactive resume operation runs
	// (production cadence: every minute; here once at 08:55 suffices).
	for d := 0; d < 10; d++ {
		base := start.Add(time.Duration(d) * 24 * time.Hour).Truncate(24 * time.Hour)
		if d > 0 {
			for _, pw := range fleet.RunResumeOp(base.Add(8*time.Hour + 55*time.Minute)) {
				fmt.Printf("day %d: 08:55 control plane pre-warms database %d\n", d, pw.ID)
			}
			decision, _ := fleet.Login(1, base.Add(9*time.Hour))
			fmt.Printf("day %d: 09:00 login  -> %-14s (resources were %s)\n",
				d, decision.Event, availability(decision))
		}
		fleet.Idle(1, base.Add(12*time.Hour))
		fleet.Login(1, base.Add(15*time.Hour))
		decision, _ := fleet.Idle(1, base.Add(17*time.Hour))
		fmt.Printf("day %d: 17:00 logout -> %-14s", d, decision.Event)
		if start2, _, ok := db.NextPredictedActivity(); ok {
			fmt.Printf(" next activity predicted %s", start2.Format("Mon 15:04"))
		}
		fmt.Println()
	}

	// Overnight the database is physically paused; the control plane's
	// resume operation (run here once a minute, as in production) pre-warms
	// it ahead of the predicted 9:00 login.
	fmt.Printf("\nstate overnight: %s (history: %d tuples, %d bytes)\n",
		db.State(), db.HistoryTuples(), db.HistoryBytes())

	day10 := start.Add(10 * 24 * time.Hour).Truncate(24 * time.Hour)
	for t := day10.Add(8 * time.Hour); t.Before(day10.Add(10 * time.Hour)); t = t.Add(time.Minute) {
		for _, pw := range fleet.RunResumeOp(t) {
			fmt.Printf("%s: control plane pre-warms database %d (allocate=%v)\n",
				t.Format("15:04"), pw.ID, pw.Decision.Allocate)
		}
		if t.Equal(day10.Add(9 * time.Hour)) {
			decision, _ := fleet.Login(1, t)
			fmt.Printf("%s: customer logs in -> %s, from prewarm: %v\n",
				t.Format("15:04"), decision.Event, decision.FromPrewarm)
			return
		}
	}
}

func availability(d prorp.Decision) string {
	if d.Event == prorp.EventResumeCold {
		return "UNAVAILABLE (reactive resume)"
	}
	return "available"
}
