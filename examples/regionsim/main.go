// Region simulation: the full ProRP stack — per-database policy machines,
// region control plane with the proactive resume operation, node cluster
// with allocation workflows — across all four region workload profiles,
// plus a knob experiment showing the Figure 8/9 trade-off on one region.
//
// Run: go run ./examples/regionsim [-dbs 300]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"prorp"
)

func main() {
	dbs := flag.Int("dbs", 300, "databases per region")
	flag.Parse()

	fmt.Println("=== reactive vs proactive across all regions (cf. paper Figure 6) ===")
	fmt.Printf("%8s %18s %18s %14s %14s\n", "region", "reactive QoS", "proactive QoS", "reactive idle", "proactive idle")
	for _, region := range prorp.Regions() {
		var qos, idle [2]float64
		for i, mode := range []prorp.Mode{prorp.Reactive, prorp.Proactive} {
			opts := prorp.DefaultOptions()
			opts.Mode = mode
			opts.History = 14 * 24 * time.Hour
			rep, err := prorp.Simulate(prorp.SimulationConfig{
				Region:    region,
				Databases: *dbs,
				EvalDays:  4,
				Seed:      42,
				Options:   &opts,
			})
			if err != nil {
				log.Fatal(err)
			}
			qos[i], idle[i] = rep.QoSPercent, rep.IdlePercent
		}
		fmt.Printf("%8s %17.1f%% %17.1f%% %13.2f%% %13.2f%%\n",
			region, qos[0], qos[1], idle[0], idle[1])
	}

	fmt.Println()
	fmt.Println("=== confidence threshold trade-off on EU1 (cf. paper Figure 9) ===")
	fmt.Printf("%12s %10s %10s\n", "confidence", "QoS", "idle")
	for _, c := range []float64{0.1, 0.3, 0.5, 0.8} {
		opts := prorp.DefaultOptions()
		opts.Confidence = c
		opts.History = 14 * 24 * time.Hour
		rep, err := prorp.Simulate(prorp.SimulationConfig{
			Region:    "EU1",
			Databases: *dbs,
			EvalDays:  4,
			Seed:      42,
			Options:   &opts,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%12.1f %9.1f%% %9.2f%%\n", c, rep.QoSPercent, rep.IdlePercent)
	}
	fmt.Println("\nRaising the threshold trades quality of service for lower idle cost,")
	fmt.Println("exactly the direction of the paper's Figure 9.")
}
