// Dev/test databases: the hard case for any predictor. A developer's
// database sees unpredictable sessions at odd hours, plus a brand-new
// database with no history at all.
//
// This example drives the per-database API directly to show two design
// points of the paper:
//
//  1. New databases "default to reactive" (Section 4): with no reliable
//     history, the policy logically pauses for the full l = 7 h and only
//     then reclaims resources.
//  2. Unpredictable old databases are physically paused immediately once
//     no activity is predicted — the proactive policy's cost saving — at
//     the price of cold logins when the developer does come back.
//
// Run: go run ./examples/devtest
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"prorp"
)

func main() {
	// Paper defaults: 28-day history. A lone login then counts 1/28 < 0.1
	// toward any window's confidence, so a fresh database really has no
	// usable prediction.
	opts := prorp.DefaultOptions()

	start := time.Date(2023, 10, 2, 10, 0, 0, 0, time.UTC)

	fmt.Println("--- a brand-new database (no history) ---")
	fresh, err := prorp.NewDatabase(opts, 1, start)
	if err != nil {
		log.Fatal(err)
	}
	d := fresh.Idle(start.Add(30 * time.Minute))
	fmt.Printf("10:30 idle -> %s (new database defaults to reactive behaviour)\n", d.Event)
	fmt.Printf("      wake scheduled at %s (= idle + 7h logical pause)\n", d.WakeAt.Format("15:04"))
	wokeAt := d.WakeAt
	d = fresh.Wake(wokeAt)
	fmt.Printf("%s wake -> %s (resources reclaimed only after the full pause)\n",
		wokeAt.Format("15:04"), d.Event)

	fmt.Println()
	fmt.Println("--- a seasoned dev/test database (random sessions) ---")
	birth := start.Add(-60 * 24 * time.Hour)
	dev, err := prorp.NewDatabase(opts, 2, birth)
	if err != nil {
		log.Fatal(err)
	}
	// Two months of memoryless sessions: exponential gaps, mean 4.5 days —
	// too scattered for any 7-hour window to accumulate confidence.
	rng := rand.New(rand.NewSource(11))
	t := birth
	sessions := 1 // the birth session is running
	var lastEnd time.Time
	for {
		end := t.Add(time.Duration(20+rng.Intn(90)) * time.Minute)
		wake := dev.Idle(end).WakeAt
		lastEnd = end
		gap := time.Duration(float64(4.5*24) * rng.ExpFloat64() * float64(time.Hour))
		if gap < 2*time.Hour {
			gap = 2 * time.Hour
		}
		t = end.Add(gap)
		// Honor the policy's wake-up timers that fire before the next
		// login, exactly as a production timer service would.
		for !wake.IsZero() && wake.Before(t) {
			wake = dev.Wake(wake).WakeAt
		}
		if !t.Before(start) {
			break
		}
		dev.Login(t)
		sessions++
	}
	fmt.Printf("replayed %d random sessions over 60 days (history kept compact: %d tuples, %d bytes)\n",
		sessions, dev.HistoryTuples(), dev.HistoryBytes())

	if s, _, ok := dev.NextPredictedActivity(); ok {
		fmt.Printf("last session ended %s; next activity predicted %s\n",
			lastEnd.Format("Jan 2 15:04"), s.Format("Jan 2 15:04"))
	} else {
		fmt.Printf("last session ended %s; NO activity predicted\n", lastEnd.Format("Jan 2 15:04"))
	}
	fmt.Printf("state after last session: %s", dev.State())
	if dev.State() == prorp.PhysicallyPaused {
		fmt.Printf(" — reclaimed immediately, no 7h logical-pause wait: the cost saving\n")
	} else {
		fmt.Println()
	}

	// The next login is cold: the price of unpredictability.
	d = dev.Login(t)
	fmt.Printf("surprise login at %s -> %s (allocate=%v: the customer waits for the resume workflow)\n",
		t.Format("Jan 2 15:04"), d.Event, d.Allocate)

	fmt.Println()
	fmt.Println("Compare with examples/saasfleet, where predictable databases get warm logins instead.")
}
