// SaaS fleet: the headline experiment of the paper (Figure 6) on one
// region workload — a mixed fleet of office-hours, nightly-batch,
// always-on, bursty, and dormant databases — comparing the reactive
// baseline against the ProRP proactive policy.
//
// Expected shape (matching the paper): the proactive policy converts most
// cold morning logins into warm ones (QoS rises from the low 60s into the
// high 80s), while cutting the time wasted in logical pauses.
//
// Run: go run ./examples/saasfleet [-region EU1] [-dbs 300]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"prorp"
)

func main() {
	region := flag.String("region", "EU1", "region workload profile (EU1, EU2, US1, US2)")
	dbs := flag.Int("dbs", 300, "fleet size")
	days := flag.Int("days", 5, "evaluation days")
	flag.Parse()

	fmt.Printf("Simulating %d serverless databases (%s mix), 14-day history warm-up, %d evaluation days.\n\n",
		*dbs, *region, *days)

	var reports []prorp.Report
	for _, mode := range []prorp.Mode{prorp.Reactive, prorp.Proactive} {
		opts := prorp.DefaultOptions()
		opts.Mode = mode
		opts.History = 14 * 24 * time.Hour
		rep, err := prorp.Simulate(prorp.SimulationConfig{
			Region:    *region,
			Databases: *dbs,
			EvalDays:  *days,
			Seed:      42,
			Options:   &opts,
		})
		if err != nil {
			log.Fatal(err)
		}
		reports = append(reports, rep)
		fmt.Print(rep)
		fmt.Println()
	}

	rea, pro := reports[0], reports[1]
	fmt.Printf("summary: proactive raised QoS by %.1f points (%.1f%% -> %.1f%%)\n",
		pro.QoSPercent-rea.QoSPercent, rea.QoSPercent, pro.QoSPercent)
	fmt.Printf("         logical-pause idle fell from %.2f%% to %.2f%% of database-time\n",
		rea.IdleLogicalPercent, pro.IdleLogicalPercent)
	fmt.Printf("         at the cost of %.2f%% prewarm idle (%.2f%% correct + %.2f%% wrong)\n",
		pro.IdlePrewarmCorrectPercent+pro.IdlePrewarmWrongPercent,
		pro.IdlePrewarmCorrectPercent, pro.IdlePrewarmWrongPercent)
	fmt.Printf("         physical pauses: %d (reactive) vs %d (proactive) — the paper's ~2x\n",
		rea.PhysicalPauses, pro.PhysicalPauses)
}
