// Maintenance scheduling: the paper's fourth future-work direction
// (Section 11). System operations — backups, software updates, stats
// refresh — should run when the database is predicted to be online, so the
// backend never resumes resources just for maintenance.
//
// Two databases, one nightly backup each:
//   - a patterned database whose backup rides along with the predicted
//     9:00 activity window;
//   - an unpredictable database whose backup must force a resume — but as
//     late as its deadline allows, giving a late prediction every chance
//     to land first.
//
// Run: go run ./examples/maintenance
package main

import (
	"fmt"
	"log"
	"time"

	"prorp"
)

func main() {
	opts := prorp.DefaultOptions()
	opts.History = 7 * 24 * time.Hour

	start := time.Date(2023, 9, 4, 9, 0, 0, 0, time.UTC)

	// Database 1: a clean daily pattern (9:00-12:00, 15:00-17:00).
	patterned, err := prorp.NewDatabase(opts, 1, start)
	if err != nil {
		log.Fatal(err)
	}
	for d := 0; d < 10; d++ {
		base := start.Add(time.Duration(d) * 24 * time.Hour).Truncate(24 * time.Hour)
		if d > 0 {
			patterned.Login(base.Add(9 * time.Hour))
		}
		patterned.Idle(base.Add(12 * time.Hour))
		patterned.Login(base.Add(15 * time.Hour))
		patterned.Idle(base.Add(17 * time.Hour))
	}

	// Database 2: idle for so long that no activity is predicted (with the
	// default 28-day history, its single long-ago login never clears the
	// confidence threshold).
	dormant, err := prorp.NewDatabase(prorp.DefaultOptions(), 2, start.Add(-40*24*time.Hour))
	if err != nil {
		log.Fatal(err)
	}
	d := dormant.Idle(start.Add(-40*24*time.Hour + time.Hour))
	if !d.WakeAt.IsZero() {
		dormant.Wake(d.WakeAt)
	}

	// It is 22:00; nightly backups (15 min) must finish within 24 h.
	now := start.Add(9*24*time.Hour + 13*time.Hour)
	deadline := now.Add(24 * time.Hour)
	fmt.Printf("planning nightly backups at %s (deadline %s)\n\n",
		now.Format("Mon 15:04"), deadline.Format("Mon 15:04"))

	for _, db := range []*prorp.Database{patterned, dormant} {
		plan, err := db.PlanMaintenance(now, 15*time.Minute, deadline)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("database %d (state %s):\n", db.ID(), db.State())
		if s, _, ok := db.NextPredictedActivity(); ok {
			fmt.Printf("  next activity predicted %s\n", s.Format("Mon 15:04"))
		} else {
			fmt.Printf("  no activity predicted\n")
		}
		fmt.Printf("  backup scheduled %s via %s (avoids dedicated resume: %v)\n\n",
			plan.Start.Format("Mon 15:04"), plan.Strategy, plan.AvoidsResume)
	}

	fmt.Println("Fleet-scale version: go run ./cmd/prorp-bench -future")
}
