package prorp

import (
	"testing"
	"time"
)

func TestPlanMaintenanceRunNow(t *testing.T) {
	db, err := NewDatabase(DefaultOptions(), 1, t0)
	if err != nil {
		t.Fatal(err)
	}
	// Resources are up (database just created): run immediately.
	now := t0.Add(time.Hour)
	plan, err := db.PlanMaintenance(now, 30*time.Minute, now.Add(24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Strategy != MaintenanceRunNow || !plan.AvoidsResume {
		t.Fatalf("plan = %+v, want run-now", plan)
	}
	if !plan.Start.Equal(now) {
		t.Fatalf("start = %v, want %v", plan.Start, now)
	}
}

func TestPlanMaintenanceDuringPredictedActivity(t *testing.T) {
	opts := DefaultOptions()
	opts.History = 7 * 24 * time.Hour
	db, err := NewDatabase(opts, 1, t0.Add(9*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	// Build a daily pattern so the database ends up physically paused with
	// a prediction for tomorrow 9:00.
	for d := 0; d < 10; d++ {
		base := t0.Add(time.Duration(d) * 24 * time.Hour)
		if d > 0 {
			db.Login(base.Add(9 * time.Hour))
		}
		db.Idle(base.Add(12 * time.Hour))
		db.Login(base.Add(15 * time.Hour))
		db.Idle(base.Add(17 * time.Hour))
	}
	if db.State() != PhysicallyPaused {
		t.Fatalf("setup: state = %v", db.State())
	}
	now := t0.Add(9*24*time.Hour + 20*time.Hour)
	plan, err := db.PlanMaintenance(now, 30*time.Minute, now.Add(24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Strategy != MaintenanceDuringPredictedActivity || !plan.AvoidsResume {
		t.Fatalf("plan = %+v, want during-predicted-activity", plan)
	}
	wantStart, _, _ := db.NextPredictedActivity()
	if !plan.Start.Equal(wantStart) {
		t.Fatalf("start = %v, want predicted %v", plan.Start, wantStart)
	}
}

func TestPlanMaintenanceForcedResume(t *testing.T) {
	opts := DefaultOptions()
	db, err := NewDatabase(opts, 1, t0)
	if err != nil {
		t.Fatal(err)
	}
	// Idle then expire the logical pause: physically paused, no prediction.
	d := db.Idle(t0.Add(time.Hour))
	db.Wake(d.WakeAt)
	if db.State() != PhysicallyPaused {
		t.Fatalf("setup: state = %v", db.State())
	}
	now := t0.Add(10 * time.Hour)
	deadline := now.Add(6 * time.Hour)
	plan, err := db.PlanMaintenance(now, time.Hour, deadline)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Strategy != MaintenanceForcedResume || plan.AvoidsResume {
		t.Fatalf("plan = %+v, want forced resume", plan)
	}
	if !plan.Start.Add(time.Hour).Equal(deadline) {
		t.Fatalf("forced plan = %v, want to finish exactly at deadline %v", plan.Start, deadline)
	}
}

func TestPlanMaintenanceRejectsImpossibleDeadline(t *testing.T) {
	db, _ := NewDatabase(DefaultOptions(), 1, t0)
	if _, err := db.PlanMaintenance(t0, 2*time.Hour, t0.Add(time.Hour)); err == nil {
		t.Fatal("impossible deadline accepted")
	}
}

func TestMaintenanceStrategyString(t *testing.T) {
	for _, s := range []MaintenanceStrategy{
		MaintenanceRunNow, MaintenanceDuringPredictedActivity, MaintenanceForcedResume,
	} {
		if s.String() == "" {
			t.Error("empty strategy string")
		}
	}
}
