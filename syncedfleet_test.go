package prorp

import (
	"bytes"
	"sync"
	"testing"
	"time"
)

func TestSyncedFleetBasics(t *testing.T) {
	// The default 28-day history keeps a fresh database unpredicted, so
	// the first idle takes the logical-pause path.
	sf, err := NewSyncedFleet(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := sf.Create(1, t0); err != nil {
		t.Fatal(err)
	}
	if err := sf.Create(1, t0); err == nil {
		t.Fatal("duplicate Create accepted")
	}
	if sf.Size() != 1 {
		t.Fatalf("Size = %d", sf.Size())
	}
	d, err := sf.Idle(1, t0.Add(time.Hour))
	if err != nil || d.Event != EventLogicalPause {
		t.Fatalf("Idle = %+v, %v", d, err)
	}
	st, err := sf.State(1)
	if err != nil || st != LogicallyPaused {
		t.Fatalf("State = %v, %v", st, err)
	}
	if _, err := sf.Wake(1, d.WakeAt); err != nil {
		t.Fatal(err)
	}
	if sf.PausedCount() != 1 {
		t.Fatalf("PausedCount = %d", sf.PausedCount())
	}
	if _, err := sf.Login(1, t0.Add(20*time.Hour)); err != nil {
		t.Fatal(err)
	}
	// Unknown-database errors.
	if _, err := sf.State(9); err == nil {
		t.Error("State(9) succeeded")
	}
	if err := sf.Snapshot(9, &bytes.Buffer{}); err == nil {
		t.Error("Snapshot(9) succeeded")
	}
	if _, err := sf.PlanMaintenance(9, t0, time.Minute, t0.Add(time.Hour)); err == nil {
		t.Error("PlanMaintenance(9) succeeded")
	}
}

func TestSyncedFleetSnapshotRestore(t *testing.T) {
	opts := DefaultOptions()
	sf, _ := NewSyncedFleet(opts)
	sf.Create(1, t0)
	sf.Idle(1, t0.Add(time.Hour))
	var buf bytes.Buffer
	if err := sf.Snapshot(1, &buf); err != nil {
		t.Fatal(err)
	}
	sf2, _ := NewSyncedFleet(opts)
	wakeAt, err := sf2.Restore(1, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if wakeAt.IsZero() {
		t.Fatal("logically paused restore needs a wake")
	}
	st, _ := sf2.State(1)
	if st != LogicallyPaused {
		t.Fatalf("restored state = %v", st)
	}
}

func TestSyncedFleetConcurrentHammer(t *testing.T) {
	// Run with -race: goroutines drive disjoint databases plus the shared
	// control plane concurrently.
	opts := DefaultOptions()
	opts.History = 7 * 24 * time.Hour
	sf, err := NewSyncedFleet(opts)
	if err != nil {
		t.Fatal(err)
	}
	const dbs = 16
	for i := 0; i < dbs; i++ {
		if err := sf.Create(i, t0); err != nil {
			t.Fatal(err)
		}
	}
	var drivers sync.WaitGroup
	for i := 0; i < dbs; i++ {
		i := i
		drivers.Add(1)
		go func() {
			defer drivers.Done()
			for d := 0; d < 30; d++ {
				base := t0.Add(time.Duration(d) * 24 * time.Hour)
				if d > 0 {
					if _, err := sf.Login(i, base.Add(9*time.Hour)); err != nil {
						t.Error(err)
						return
					}
				}
				if _, err := sf.Idle(i, base.Add(17*time.Hour)); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	// The control plane hammers the shared metadata store until the
	// drivers finish.
	stop := make(chan struct{})
	var cp sync.WaitGroup
	cp.Add(1)
	go func() {
		defer cp.Done()
		at := t0
		for {
			select {
			case <-stop:
				return
			default:
			}
			sf.RunResumeOp(at)
			sf.PausedCount()
			at = at.Add(time.Minute)
		}
	}()
	drivers.Wait()
	close(stop)
	cp.Wait()
	if sf.Size() != dbs {
		t.Fatalf("Size = %d", sf.Size())
	}
}

// TestHistoryFacadeEquivalence drives the same multi-day workload through
// both concurrency facades and requires History to return event-for-event
// identical results: the two must stay API-compatible, including the shape
// of what they report, so switching is one constructor change.
func TestHistoryFacadeEquivalence(t *testing.T) {
	sy, err := NewSyncedFleet(equivOptions())
	if err != nil {
		t.Fatal(err)
	}
	sh, err := NewShardedFleetShards(equivOptions(), 7)
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()

	const dbs = 5
	day := 24 * time.Hour
	for id := 1; id <= dbs; id++ {
		if err := sy.Create(id, t0); err != nil {
			t.Fatal(err)
		}
		if err := sh.Create(id, t0); err != nil {
			t.Fatal(err)
		}
	}
	for d := 0; d < 4; d++ {
		for id := 1; id <= dbs; id++ {
			in := t0.Add(time.Duration(d)*day + time.Duration(8+id)*time.Hour)
			out := in.Add(time.Duration(2+id) * time.Hour)
			if _, err := sy.Login(id, in); err != nil {
				t.Fatal(err)
			}
			if _, err := sh.Login(id, in); err != nil {
				t.Fatal(err)
			}
			if _, err := sy.Idle(id, out); err != nil {
				t.Fatal(err)
			}
			if _, err := sh.Idle(id, out); err != nil {
				t.Fatal(err)
			}
		}
	}

	for id := 1; id <= dbs; id++ {
		want, err := sy.History(id)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sh.History(id)
		if err != nil {
			t.Fatal(err)
		}
		if len(want) == 0 {
			t.Fatalf("db %d: synced history is empty", id)
		}
		if len(got) != len(want) {
			t.Fatalf("db %d: sharded history has %d events, synced %d", id, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("db %d event %d: sharded %+v, synced %+v", id, i, got[i], want[i])
			}
		}
		for i := 1; i < len(want); i++ {
			if want[i].Time.Before(want[i-1].Time) {
				t.Fatalf("db %d: history out of order at %d: %+v", id, i, want)
			}
		}
	}

	if _, err := sy.History(99); err == nil {
		t.Error("SyncedFleet.History(99) succeeded for unknown database")
	}
	if _, err := sh.History(99); err == nil {
		t.Error("ShardedFleet.History(99) succeeded for unknown database")
	}
}
