# Developer entry points; `make ci` is the gate every change must pass.

GO ?= go

.PHONY: ci fmt-check vet build test bench-short bench clean

ci: fmt-check vet build test bench-short

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# One pass over the fleet-concurrency benchmark, as a smoke test.
bench-short:
	$(GO) test -run '^$$' -bench BenchmarkShardedVsSyncedFleet -benchtime 1x .

# The full testing.B suite at quick scale.
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

clean:
	$(GO) clean ./...
