# Developer entry points; `make ci` is the gate every change must pass.

GO ?= go

# Static-analysis tools, pinned so every machine and CI runner agrees.
# Both run via `go run`, so the only install is the module download; when
# the proxy is unreachable (offline dev boxes) the target degrades to a
# loud skip instead of a hard failure — CI always has network and runs
# them for real.
STATICCHECK := honnef.co/go/tools/cmd/staticcheck@2024.1.1
GOVULNCHECK := golang.org/x/vuln/cmd/govulncheck@v1.1.3

# Minimum total statement coverage, measured on the seed tree. `make cover`
# fails if the tree regresses below it; ratchet it up as coverage grows.
# (Seed: 81.8. Raised with the observability subsystem, which landed at
# 82.3; the gap absorbs run-to-run variance from timing-dependent tests.)
COVER_BASELINE := 82.0

.PHONY: ci fmt-check vet staticcheck govulncheck build test cover obs obs-bench chaos snap-chaos wal-chaos repl-chaos shard-chaos lease-chaos overload-chaos bench-record bench-check bench-short bench loadgen-smoke loadgen-bench loadgen-check clean

ci: fmt-check vet staticcheck govulncheck build test cover obs bench-short

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

staticcheck:
	@if $(GO) run $(STATICCHECK) -version >/dev/null 2>&1; then \
		$(GO) run $(STATICCHECK) ./... ; \
	else \
		echo "staticcheck: $(STATICCHECK) unavailable (offline?); skipping"; fi

govulncheck:
	@if $(GO) run $(GOVULNCHECK) -version >/dev/null 2>&1; then \
		$(GO) run $(GOVULNCHECK) ./... ; \
	else \
		echo "govulncheck: $(GOVULNCHECK) unavailable (offline?); skipping"; fi

build:
	$(GO) build ./...

# The raced run doubles as the coverage run (atomic mode is the only one
# compatible with -race), so `cover` grades its profile instead of paying
# for the whole suite a second time.
test:
	$(GO) test -race -covermode=atomic -coverprofile=coverprofile ./...

# Statement coverage with a regression gate against COVER_BASELINE,
# graded from the profile the raced `test` run already produced.
cover: test
	@total="$$($(GO) tool cover -func=coverprofile | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }')"; \
	echo "total coverage: $$total% (baseline $(COVER_BASELINE)%)"; \
	awk -v t="$$total" -v b="$(COVER_BASELINE)" 'BEGIN { exit (t + 0 < b + 0) }' || \
		{ echo "coverage $$total% fell below the $(COVER_BASELINE)% baseline"; exit 1; }

# The observability core under the race detector: the lock-free
# histograms, the registry, and the trace buffer are all concurrency
# primitives, so their unit tests run raced even when `test` is trimmed.
obs:
	$(GO) test -race -count 1 ./internal/obs

# The instrumented-vs-uninstrumented decision hot path comparison behind
# the numbers in EXPERIMENTS.md ("Observability overhead").
obs-bench:
	$(GO) test -run '^$$' -bench BenchmarkObsOverhead -benchtime 2s -count 3 ./internal/shardedfleet

# The fault-injection chaos gate: every seeded suite under the race
# detector, via non-overlapping sub-targets so CI can run (and report)
# each family once instead of re-matching the same tests twice.
chaos: snap-chaos wal-chaos repl-chaos shard-chaos lease-chaos overload-chaos

# The snapshot half: seeded kill-and-restore through the pause/resume
# archive path.
snap-chaos:
	$(GO) test -race -run TestChaosKillAndRestore -count 1 ./internal/server

# Just the crash-durability half: 50 seeded kill-replay iterations at the
# journal layer (torn tails, failed fsyncs) and end to end through the
# server (zero acknowledged-but-lost events).
wal-chaos:
	$(GO) test -race -run TestChaosWAL -count 1 ./internal/server ./internal/wal

# The replication half: 50 seeded kill-primary/promote-replica iterations
# over a hostile stream transport (partitions, mid-frame cuts, bit flips),
# asserting zero acked-write loss and byte-exact convergence of the
# rebooted old primary.
repl-chaos:
	$(GO) test -race -run TestChaosReplFailover -count 1 ./internal/server

# The partitioning half: 50 seeded kill-mid-migration iterations of a
# two-group control plane over a hostile transport, asserting zero
# acked-write loss, exactly-one-owner after reconcile, and byte-identical
# migrated archives.
shard-chaos:
	$(GO) test -race -run TestChaosShardMigration -count 1 ./internal/server

# The self-healing half: 50 seeded kill-the-primary iterations where no
# human intervenes — lease lapse, replica-initiated election, fencing of
# the rebooted old primary — asserting zero acked-write loss and exactly
# one unfenced primary at quiesce. On failure the surviving node's
# on-disk debris is copied to $$PRORP_CHAOS_DEBRIS for the CI artifact.
lease-chaos:
	$(GO) test -race -run TestChaosLeaseElection -count 1 ./internal/server

# The overload half: 50 seeded open-loop floods of a 3-node cluster with
# hung and partitioned peers, asserting that login (Decision-class) p99
# stays bounded while lower classes shed with honest Retry-After headers,
# that the inter-node circuit breakers trip during the fault window and
# re-close after it, and that zero acknowledged writes are lost across a
# kill-and-reboot of the flooded node.
overload-chaos:
	$(GO) test -race -run TestChaosOverload -count 1 ./internal/server

# Refresh BENCH_router.json, the committed router-overhead record
# (acceptance: router_overhead_pct <= 5 over the unrouted baseline).
bench-record:
	PRORP_BENCH_RECORD=$(CURDIR)/BENCH_router.json $(GO) test -run TestRecordRouterBench -count 1 ./internal/server

# The benchmark-drift gate: re-measure and fail if any BENCH_router.json
# key regressed more than 10% against the committed baseline. Also writes
# the fresh numbers to BENCH_router.fresh.json for CI to attach.
bench-check:
	PRORP_BENCH_BASELINE=$(CURDIR)/BENCH_router.json \
	PRORP_BENCH_RECORD=$(CURDIR)/BENCH_router.fresh.json \
	$(GO) test -run TestBenchDrift -count 1 ./internal/server

# End-to-end serving smoke: spawn real prorp-serve binaries (single node
# and a 3-group routed cluster), drive a short seeded open-loop load with
# internal/loadgen, and assert the report invariants (zero client-side
# errors outside the shed classes, non-empty QoS denominator, COGS
# samples, fleet-wide KPI merge).
loadgen-smoke:
	$(GO) test -run 'TestSmokeSingleNode|TestSmokeThreeGroupCluster' -count 1 -v ./internal/loadgen/harness

# Refresh BENCH_serving.json, the committed serving-tier trajectory:
# open-loop login/history latency quantiles, throughput, QoS and COGS for
# a seeded load against a single node and a 3-group cluster.
loadgen-bench:
	PRORP_SERVING_BENCH_RECORD=$(CURDIR)/BENCH_serving.json $(GO) test -run TestRecordServingBench -count 1 -v ./internal/loadgen/harness

# The serving-drift gate: re-run the seeded load and compare against the
# committed BENCH_serving.json (direction-aware: _ms/_pct lower-or-band,
# _rps higher). Also writes BENCH_serving.fresh.json for CI to attach.
loadgen-check:
	PRORP_SERVING_BENCH_BASELINE=$(CURDIR)/BENCH_serving.json \
	PRORP_SERVING_BENCH_RECORD=$(CURDIR)/BENCH_serving.fresh.json \
	$(GO) test -run TestServingBenchDrift -count 1 -v ./internal/loadgen/harness

# One pass over the fleet-concurrency benchmark, as a smoke test.
bench-short:
	$(GO) test -run '^$$' -bench BenchmarkShardedVsSyncedFleet -benchtime 1x .

# The full testing.B suite at quick scale.
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

clean:
	$(GO) clean ./...
	rm -f coverprofile BENCH_router.fresh.json BENCH_serving.fresh.json
