// Package prorp is a Go implementation of ProRP — Proactive Resume and
// Pause of resources for serverless databases — after Poppe et al.,
// "Proactive Resume and Pause of Resources for Microsoft Azure SQL
// Database Serverless", SIGMOD-Companion 2024.
//
// A serverless database keeps compute allocated only while customers use
// it. The reactive policy reclaims resources after a fixed idle timeout
// and re-allocates on the next login, which delays that login. ProRP
// instead tracks each database's activity history, detects daily or weekly
// login patterns with a probabilistic sliding-window detector, reclaims
// resources as soon as no activity is predicted, and pre-warms them just
// ahead of the predicted next login.
//
// Two entry points:
//
//   - Database and Fleet embed the per-database lifecycle controller
//     (Algorithm 1 of the paper) and the region control plane (Algorithm 5)
//     into an application: feed Login/Idle/Wake events with real
//     timestamps and apply the returned Decisions.
//   - Simulate replays a synthetic region workload through the full stack
//     and reports the paper's KPI metrics; the examples and the benchmark
//     harness build on it.
package prorp

import (
	"fmt"
	"time"

	"prorp/internal/controlplane"
	"prorp/internal/policy"
	"prorp/internal/predictor"
)

// Mode selects the resource allocation policy.
type Mode int

const (
	// Reactive is the baseline: logical pause on idle, physical pause
	// after the timeout, resume only on login.
	Reactive Mode = Mode(policy.Reactive)
	// Proactive is ProRP: prediction-driven pauses and pre-warms.
	Proactive Mode = Mode(policy.Proactive)
)

func (m Mode) String() string { return policy.Mode(m).String() }

// Seasonality selects the repetition period the activity detector assumes.
type Seasonality int

const (
	// Daily detects patterns repeating every 24 hours.
	Daily Seasonality = Seasonality(predictor.Daily)
	// Weekly detects patterns repeating every 7 days.
	Weekly Seasonality = Seasonality(predictor.Weekly)
)

func (s Seasonality) String() string { return predictor.Seasonality(s).String() }

// State is the lifecycle state of a database (Figure 4 of the paper).
type State int

const (
	// Resumed: resources allocated, workload running, billed.
	Resumed State = State(policy.Resumed)
	// LogicallyPaused: resources allocated but idle, not billed.
	LogicallyPaused State = State(policy.LogicallyPaused)
	// PhysicallyPaused: resources reclaimed.
	PhysicallyPaused State = State(policy.PhysicallyPaused)
)

func (s State) String() string { return policy.State(s).String() }

// Options are the tunable knobs of Table 1 of the paper, expressed in
// time.Duration for API ergonomics. The zero value is not valid; start
// from DefaultOptions.
type Options struct {
	// Mode selects reactive or proactive behaviour.
	Mode Mode
	// LogicalPause is l: how long resources stay allocated after activity
	// stops before reclamation is considered. Default 7 h.
	LogicalPause time.Duration
	// History is h: how much per-database history the detector keeps.
	// Default 28 days. Rounded down to whole days.
	History time.Duration
	// Horizon is p: how far ahead activity is predicted. Default 24 h.
	// Rounded down to whole hours.
	Horizon time.Duration
	// Confidence is c: the minimum fraction of past days (or weeks) with
	// activity in a window for a prediction. Default 0.1.
	Confidence float64
	// Window is w: the sliding window width. Default 7 h.
	Window time.Duration
	// Slide is s: the window slide. Default 5 min.
	Slide time.Duration
	// Seasonality selects daily or weekly detection. Default daily.
	Seasonality Seasonality
	// PrewarmLead is k: how far ahead of the predicted login resources are
	// resumed. Default 5 min.
	PrewarmLead time.Duration
	// ResumeOpPeriod is the cadence of the fleet's proactive resume
	// operation. Default 1 min.
	ResumeOpPeriod time.Duration
	// MaxPrewarmsPerOp caps pre-warms per operation iteration (0 =
	// unlimited). Default 100.
	MaxPrewarmsPerOp int
}

// DefaultOptions returns the production defaults of Table 1.
func DefaultOptions() Options {
	return Options{
		Mode:             Proactive,
		LogicalPause:     7 * time.Hour,
		History:          28 * 24 * time.Hour,
		Horizon:          24 * time.Hour,
		Confidence:       0.1,
		Window:           7 * time.Hour,
		Slide:            5 * time.Minute,
		Seasonality:      Daily,
		PrewarmLead:      5 * time.Minute,
		ResumeOpPeriod:   time.Minute,
		MaxPrewarmsPerOp: 100,
	}
}

// policyConfig converts Options to the internal policy configuration.
func (o Options) policyConfig() policy.Config {
	return policy.Config{
		Mode:            policy.Mode(o.Mode),
		LogicalPauseSec: int64(o.LogicalPause / time.Second),
		Predictor: predictor.Params{
			HistoryDays:  int(o.History / (24 * time.Hour)),
			HorizonHours: int(o.Horizon / time.Hour),
			Confidence:   o.Confidence,
			WindowSec:    int64(o.Window / time.Second),
			SlideSec:     int64(o.Slide / time.Second),
			Seasonality:  predictor.Seasonality(o.Seasonality),
		},
	}
}

// controlPlaneConfig converts the fleet-level knobs.
func (o Options) controlPlaneConfig() controlplane.Config {
	return controlplane.Config{
		OpPeriodSec:      int64(o.ResumeOpPeriod / time.Second),
		PrewarmLeadSec:   int64(o.PrewarmLead / time.Second),
		MaxPrewarmsPerOp: o.MaxPrewarmsPerOp,
	}
}

// Validate reports whether the options are usable.
func (o Options) Validate() error {
	if err := o.policyConfig().Validate(); err != nil {
		return err
	}
	if o.Mode == Proactive {
		if err := o.controlPlaneConfig().Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Event classifies what a Decision did, for logging and metrics.
type Event int

const (
	// EventNone: nothing observable changed.
	EventNone Event = Event(policy.TransNone)
	// EventResumeWarm: a first login after idle found resources available.
	EventResumeWarm Event = Event(policy.TransResumeWarm)
	// EventResumeCold: a first login found resources reclaimed and had to
	// wait for a reactive resume.
	EventResumeCold Event = Event(policy.TransResumeCold)
	// EventLogicalPause: the database entered logical pause.
	EventLogicalPause Event = Event(policy.TransLogicalPause)
	// EventPhysicalPause: resources were reclaimed.
	EventPhysicalPause Event = Event(policy.TransPhysicalPause)
	// EventPrewarm: the control plane proactively resumed the database.
	EventPrewarm Event = Event(policy.TransPrewarm)
	// EventStayLogical: a wake-up re-evaluated and kept the logical pause.
	EventStayLogical Event = Event(policy.TransStayLogical)
)

func (e Event) String() string { return policy.Transition(e).String() }

// Decision tells the embedding system what to do after an event.
type Decision struct {
	// Event classifies the transition.
	Event Event
	// Allocate asks the caller to run a resource allocation workflow.
	Allocate bool
	// Reclaim asks the caller to run a resource reclamation workflow.
	Reclaim bool
	// WakeAt is when Wake must next be called; zero means no wake-up is
	// needed (any previously requested wake-up is obsolete).
	WakeAt time.Time
	// FromPrewarm marks resume/pause outcomes of a pre-warm, classifying
	// it as used (on a warm resume) or wasted (on a physical pause).
	FromPrewarm bool
}

func decisionFrom(eff policy.Effects) Decision {
	d := Decision{
		Event:       Event(eff.Transition),
		Allocate:    eff.Allocate,
		Reclaim:     eff.Reclaim,
		FromPrewarm: eff.FromPrewarm,
	}
	if eff.TimerAt > 0 {
		d.WakeAt = time.Unix(eff.TimerAt, 0).UTC()
	}
	return d
}

// Database is the per-database lifecycle controller: Algorithm 1 of the
// paper plus the history store and predictor it drives. Not safe for
// concurrent use.
type Database struct {
	id      int
	machine *policy.Machine
	opts    Options
}

// NewDatabase creates the controller for a database created (and first
// active) at createdAt.
func NewDatabase(opts Options, id int, createdAt time.Time) (*Database, error) {
	m, err := policy.New(opts.policyConfig(), createdAt.Unix())
	if err != nil {
		return nil, err
	}
	return &Database{id: id, machine: m, opts: opts}, nil
}

// ID returns the database identifier.
func (d *Database) ID() int { return d.id }

// State returns the current lifecycle state.
func (d *Database) State() State { return State(d.machine.State()) }

// Active reports whether a customer workload is currently running.
func (d *Database) Active() bool { return d.machine.Active() }

// ResourcesAvailable reports whether compute is currently allocated.
func (d *Database) ResourcesAvailable() bool { return d.machine.ResourcesAvailable() }

// HistoryTuples reports the number of tuples in the activity history.
func (d *Database) HistoryTuples() int { return d.machine.History().Len() }

// HistoryBytes reports the storage footprint of the activity history.
func (d *Database) HistoryBytes() int { return d.machine.History().SizeBytes() }

// NextPredictedActivity returns the current prediction, if any. The
// prediction is refreshed on activity ends and logical-pause wake-ups; for
// a database that has sat physically paused since it was made, it can lie
// in the past — the policy's guards always compare it against the current
// time, and callers should too.
func (d *Database) NextPredictedActivity() (start, end time.Time, ok bool) {
	next := d.machine.NextActivity()
	if next.IsZero() {
		return time.Time{}, time.Time{}, false
	}
	return time.Unix(next.Start, 0).UTC(), time.Unix(next.End, 0).UTC(), true
}

// PredictionWindow is one candidate window of a prediction scan, for
// observability ("why did this database (not) get a prediction?").
type PredictionWindow struct {
	// Start is the window's start time.
	Start time.Time
	// Probability is the fraction of past days (or weeks) with a login in
	// this window.
	Probability float64
	// Qualifies reports whether the probability clears the confidence
	// threshold.
	Qualifies bool
	// Selected marks the window the prediction came from.
	Selected bool
}

// ExplainPrediction scans every candidate window as of now and returns
// per-window statistics plus the prediction the scan yields (ok reports
// whether any window qualified). Unlike the policy's own prediction it
// scans the full horizon, so it is for debugging and tooling, not the hot
// path.
func (d *Database) ExplainPrediction(now time.Time) (windows []PredictionWindow, start, end time.Time, ok bool) {
	stats, pred, ok := predictor.Explain(d.machine.History(), d.opts.policyConfig().Predictor, now.Unix())
	windows = make([]PredictionWindow, len(stats))
	for i, s := range stats {
		windows[i] = PredictionWindow{
			Start:       time.Unix(s.WinStart, 0).UTC(),
			Probability: s.Probability,
			Qualifies:   s.Qualifies,
			Selected:    s.Selected,
		}
	}
	if !ok {
		return windows, time.Time{}, time.Time{}, false
	}
	return windows, time.Unix(pred.Start, 0).UTC(), time.Unix(pred.End, 0).UTC(), true
}

// Login records the start of customer activity at t.
func (d *Database) Login(t time.Time) Decision {
	return decisionFrom(d.machine.OnActivityStart(t.Unix()))
}

// Idle records the end of customer activity at t.
func (d *Database) Idle(t time.Time) Decision {
	return decisionFrom(d.machine.OnActivityEnd(t.Unix()))
}

// Wake must be called at the WakeAt time of the previous Decision.
func (d *Database) Wake(t time.Time) Decision {
	return decisionFrom(d.machine.OnTimer(t.Unix()))
}

// prewarm is invoked by the Fleet's resume operation.
func (d *Database) prewarm(t time.Time) Decision {
	return decisionFrom(d.machine.OnPrewarm(t.Unix()))
}

// Fleet is the region control plane over a set of databases: it tracks
// physically paused databases with their predicted next activity and runs
// the proactive resume operation of Algorithm 5. Not safe for concurrent
// use.
type Fleet struct {
	opts Options
	meta *controlplane.MetadataStore
	dbs  map[int]*Database
}

// NewFleet builds an empty fleet.
func NewFleet(opts Options) (*Fleet, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	return &Fleet{
		opts: opts,
		meta: controlplane.NewMetadataStore(),
		dbs:  make(map[int]*Database),
	}, nil
}

// Create adds a new database to the fleet, created at createdAt.
func (f *Fleet) Create(id int, createdAt time.Time) (*Database, error) {
	if _, exists := f.dbs[id]; exists {
		return nil, fmt.Errorf("prorp: %w: %d", ErrDuplicateDatabase, id)
	}
	db, err := NewDatabase(f.opts, id, createdAt)
	if err != nil {
		return nil, err
	}
	f.dbs[id] = db
	return db, nil
}

// Database returns a fleet member.
func (f *Fleet) Database(id int) (*Database, bool) {
	db, ok := f.dbs[id]
	return db, ok
}

// Delete drops a database from the fleet and clears its control-plane
// metadata, so a pending proactive resume for it cannot fire.
func (f *Fleet) Delete(id int) error {
	if _, ok := f.dbs[id]; !ok {
		return fmt.Errorf("prorp: %w: %d", ErrUnknownDatabase, id)
	}
	delete(f.dbs, id)
	f.meta.ClearPaused(id)
	return nil
}

// Size reports the number of databases in the fleet.
func (f *Fleet) Size() int { return len(f.dbs) }

// PausedCount reports how many databases are physically paused.
func (f *Fleet) PausedCount() int { return f.meta.PausedCount() }

// apply performs the fleet-level bookkeeping of a Decision.
func (f *Fleet) apply(id int, d Decision, t time.Time) Decision {
	switch d.Event {
	case EventPhysicalPause:
		db := f.dbs[id]
		var predStart int64
		if start, _, ok := db.NextPredictedActivity(); ok && db.opts.Mode == Proactive {
			predStart = start.Unix()
		}
		f.meta.SetPaused(id, predStart)
	case EventResumeCold:
		f.meta.ClearPaused(id)
	}
	return d
}

// Login routes a login to the database and maintains fleet metadata.
func (f *Fleet) Login(id int, t time.Time) (Decision, error) {
	db, ok := f.dbs[id]
	if !ok {
		return Decision{}, fmt.Errorf("prorp: %w: %d", ErrUnknownDatabase, id)
	}
	return f.apply(id, db.Login(t), t), nil
}

// Idle routes an end-of-activity to the database.
func (f *Fleet) Idle(id int, t time.Time) (Decision, error) {
	db, ok := f.dbs[id]
	if !ok {
		return Decision{}, fmt.Errorf("prorp: %w: %d", ErrUnknownDatabase, id)
	}
	return f.apply(id, db.Idle(t), t), nil
}

// Wake routes a wake-up to the database.
func (f *Fleet) Wake(id int, t time.Time) (Decision, error) {
	db, ok := f.dbs[id]
	if !ok {
		return Decision{}, fmt.Errorf("prorp: %w: %d", ErrUnknownDatabase, id)
	}
	return f.apply(id, db.Wake(t), t), nil
}

// Prewarmed pairs a pre-warmed database with its Decision.
type Prewarmed struct {
	ID       int
	Decision Decision
}

// RunResumeOp runs one iteration of the proactive resume operation
// (Algorithm 5): it selects every physically paused database whose
// predicted activity starts within the pre-warm lead of now (bounded by
// the per-iteration cap) and pre-warms it. Call it every ResumeOpPeriod.
func (f *Fleet) RunResumeOp(now time.Time) []Prewarmed {
	if f.opts.Mode != Proactive {
		return nil
	}
	due := f.meta.ResumeOp(f.opts.controlPlaneConfig(), now.Unix())
	var out []Prewarmed
	for _, id := range due {
		db, ok := f.dbs[id]
		if !ok {
			continue
		}
		d := db.prewarm(now)
		if d.Event != EventPrewarm {
			continue // stale entry
		}
		out = append(out, Prewarmed{ID: id, Decision: d})
	}
	return out
}
