package prorp

import (
	"encoding/json"
	"fmt"
	"time"
)

// JSON (de)serialization for Options, so deployments can keep the Table 1
// knobs in configuration files — the shape the paper's "configuration,
// testing, and deployment infrastructure" manages and the monthly training
// pipeline rewrites. Durations use Go syntax ("7h", "5m"); mode and
// seasonality use their String names.

type optionsJSON struct {
	Mode             string  `json:"mode"`
	LogicalPause     string  `json:"logical_pause"`
	History          string  `json:"history"`
	Horizon          string  `json:"horizon"`
	Confidence       float64 `json:"confidence"`
	Window           string  `json:"window"`
	Slide            string  `json:"slide"`
	Seasonality      string  `json:"seasonality"`
	PrewarmLead      string  `json:"prewarm_lead"`
	ResumeOpPeriod   string  `json:"resume_op_period"`
	MaxPrewarmsPerOp int     `json:"max_prewarms_per_op"`
}

// MarshalJSON implements json.Marshaler.
func (o Options) MarshalJSON() ([]byte, error) {
	return json.Marshal(optionsJSON{
		Mode:             o.Mode.String(),
		LogicalPause:     o.LogicalPause.String(),
		History:          o.History.String(),
		Horizon:          o.Horizon.String(),
		Confidence:       o.Confidence,
		Window:           o.Window.String(),
		Slide:            o.Slide.String(),
		Seasonality:      o.Seasonality.String(),
		PrewarmLead:      o.PrewarmLead.String(),
		ResumeOpPeriod:   o.ResumeOpPeriod.String(),
		MaxPrewarmsPerOp: o.MaxPrewarmsPerOp,
	})
}

// UnmarshalJSON implements json.Unmarshaler. Absent fields keep the
// DefaultOptions values, so a config file only needs the knobs it changes.
func (o *Options) UnmarshalJSON(data []byte) error {
	*o = DefaultOptions()
	var raw optionsJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	var err error
	setDur := func(dst *time.Duration, s, name string) {
		if s == "" || err != nil {
			return
		}
		var d time.Duration
		if d, err = time.ParseDuration(s); err != nil {
			err = fmt.Errorf("prorp: options %s: %w", name, err)
			return
		}
		*dst = d
	}
	setDur(&o.LogicalPause, raw.LogicalPause, "logical_pause")
	setDur(&o.History, raw.History, "history")
	setDur(&o.Horizon, raw.Horizon, "horizon")
	setDur(&o.Window, raw.Window, "window")
	setDur(&o.Slide, raw.Slide, "slide")
	setDur(&o.PrewarmLead, raw.PrewarmLead, "prewarm_lead")
	setDur(&o.ResumeOpPeriod, raw.ResumeOpPeriod, "resume_op_period")
	if err != nil {
		return err
	}
	switch raw.Mode {
	case "":
	case "reactive":
		o.Mode = Reactive
	case "proactive":
		o.Mode = Proactive
	default:
		return fmt.Errorf("prorp: options mode %q (want reactive or proactive)", raw.Mode)
	}
	switch raw.Seasonality {
	case "":
	case "daily":
		o.Seasonality = Daily
	case "weekly":
		o.Seasonality = Weekly
	default:
		return fmt.Errorf("prorp: options seasonality %q (want daily or weekly)", raw.Seasonality)
	}
	if raw.Confidence != 0 {
		o.Confidence = raw.Confidence
	}
	if raw.MaxPrewarmsPerOp != 0 {
		o.MaxPrewarmsPerOp = raw.MaxPrewarmsPerOp
	}
	return nil
}
