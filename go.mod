module prorp

go 1.22
