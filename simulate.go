package prorp

import (
	"fmt"
	"io"
	"strings"
	"time"

	"prorp/internal/cluster"
	"prorp/internal/engine"
	"prorp/internal/metrics"
	"prorp/internal/telemetry"
	"prorp/internal/workload"
)

// SimulationConfig describes one region-scale replay: a synthetic fleet of
// serverless databases (patterned after the archetype mixes of the four
// large Azure regions in the paper) driven through the full ProRP stack —
// per-database policy, control plane, cluster workflows — under virtual
// time.
type SimulationConfig struct {
	// Region selects the workload mix: EU1, EU2, US1, or US2.
	Region string
	// Databases is the fleet size.
	Databases int
	// HistoryDays is the detector's h (and the warm-up is sized to it).
	HistoryDays int
	// EvalDays is the measured span after warm-up.
	EvalDays int
	// Seed makes the run reproducible.
	Seed int64
	// Options are the policy knobs; zero value means DefaultOptions.
	Options *Options
}

// Report is the public KPI report of a simulation, per Section 8 of the
// paper.
type Report struct {
	Name string

	// QoSPercent is the percentage of first logins after idle that found
	// resources available.
	QoSPercent float64
	// WarmLogins / ColdLogins are the underlying counts.
	WarmLogins, ColdLogins int

	// IdlePercent is the share of database-time with resources allocated
	// but idle, decomposed below.
	IdlePercent               float64
	IdleLogicalPercent        float64
	IdlePrewarmCorrectPercent float64
	IdlePrewarmWrongPercent   float64

	// SavedPercent is the share of time resources were correctly
	// reclaimed; UsedPercent the share they served customer load;
	// UnavailablePercent the share demand waited on reactive resumes.
	SavedPercent       float64
	UsedPercent        float64
	UnavailablePercent float64

	// Workflow counters.
	Prewarms, PrewarmsUsed, PrewarmsWasted int
	LogicalPauses, PhysicalPauses          int
}

func publicReport(r metrics.Report) Report {
	return Report{
		Name:                      r.Name,
		QoSPercent:                r.QoSPercent(),
		WarmLogins:                r.WarmLogins,
		ColdLogins:                r.ColdLogins,
		IdlePercent:               r.IdlePercent(),
		IdleLogicalPercent:        r.IdleLogicalPercent(),
		IdlePrewarmCorrectPercent: r.IdlePrewarmCorrectPercent(),
		IdlePrewarmWrongPercent:   r.IdlePrewarmWrongPercent(),
		SavedPercent:              r.SavedPercent(),
		UsedPercent:               r.UsedPercent(),
		UnavailablePercent:        r.UnavailablePercent(),
		Prewarms:                  r.Prewarms,
		PrewarmsUsed:              r.PrewarmsUsed,
		PrewarmsWasted:            r.PrewarmsWasted,
		LogicalPauses:             r.LogicalPauses,
		PhysicalPauses:            r.PhysicalPauses,
	}
}

// String renders the report in the layout of the paper's figures.
func (r Report) String() string {
	var b strings.Builder
	if r.Name != "" {
		fmt.Fprintf(&b, "%s\n", r.Name)
	}
	fmt.Fprintf(&b, "  QoS: %5.1f%% of first logins warm (%d warm, %d cold)\n",
		r.QoSPercent, r.WarmLogins, r.ColdLogins)
	fmt.Fprintf(&b, "  idle: %5.2f%% (logical %.2f%%, prewarm-correct %.2f%%, prewarm-wrong %.2f%%)\n",
		r.IdlePercent, r.IdleLogicalPercent, r.IdlePrewarmCorrectPercent, r.IdlePrewarmWrongPercent)
	fmt.Fprintf(&b, "  saved: %5.2f%%  used: %5.2f%%  unavailable: %5.3f%%\n",
		r.SavedPercent, r.UsedPercent, r.UnavailablePercent)
	fmt.Fprintf(&b, "  prewarms: %d (%d used, %d wasted)  pauses: %d logical, %d physical\n",
		r.Prewarms, r.PrewarmsUsed, r.PrewarmsWasted, r.LogicalPauses, r.PhysicalPauses)
	return b.String()
}

const secondsPerDay = 24 * 3600

// Simulate replays the configured region through the full stack and
// returns the KPI report.
func Simulate(cfg SimulationConfig) (Report, error) {
	return SimulateWithTelemetry(cfg, nil)
}

// SimulateWithTelemetry additionally exports the run's full telemetry log
// to w (one `timestamp,database,kind` line per event — the long-term
// format the offline KPI evaluation and training pipeline consume; see
// cmd/prorp-inspect). A nil writer skips the export.
func SimulateWithTelemetry(cfg SimulationConfig, w io.Writer) (Report, error) {
	opts := DefaultOptions()
	if cfg.Options != nil {
		opts = *cfg.Options
	}
	if cfg.HistoryDays > 0 {
		opts.History = time.Duration(cfg.HistoryDays) * 24 * time.Hour
	}
	if err := opts.Validate(); err != nil {
		return Report{}, err
	}
	if cfg.Databases <= 0 {
		return Report{}, fmt.Errorf("prorp: %d databases", cfg.Databases)
	}
	if cfg.EvalDays <= 0 {
		return Report{}, fmt.Errorf("prorp: %d eval days", cfg.EvalDays)
	}
	historyDays := int(opts.History / (24 * time.Hour))
	warmupDays := historyDays + 1

	prof, err := workload.Region(cfg.Region)
	if err != nil {
		return Report{}, err
	}
	gen, err := workload.NewGenerator(cfg.Seed, prof)
	if err != nil {
		return Report{}, err
	}
	to := int64(warmupDays+cfg.EvalDays) * secondsPerDay
	traces := gen.Generate(cfg.Databases, 0, to)

	ecfg := engine.Config{
		Policy:       opts.policyConfig(),
		ControlPlane: opts.controlPlaneConfig(),
		Cluster:      cluster.DefaultConfig(cfg.Databases),
		From:         0,
		EvalFrom:     int64(warmupDays) * secondsPerDay,
		To:           to,
		Seed:         cfg.Seed,
	}
	res, err := engine.Run(ecfg, traces)
	if err != nil {
		return Report{}, err
	}
	if w != nil {
		if _, err := res.Telemetry.WriteTo(w); err != nil {
			return Report{}, fmt.Errorf("prorp: exporting telemetry: %w", err)
		}
	}
	res.Report.Name = fmt.Sprintf("%s %s (%d databases, %d eval days)",
		cfg.Region, opts.Mode, cfg.Databases, cfg.EvalDays)
	return publicReport(res.Report), nil
}

// EvaluateTelemetry computes the KPI report offline from an exported
// telemetry log, over the evaluation window [evalFrom, evalTo). This is
// the paper's Cosmos-side evaluation path; reactive-resume wait time is
// folded into used time because the log carries no workflow latencies.
func EvaluateTelemetry(r io.Reader, evalFrom, evalTo time.Time) (Report, error) {
	log, err := telemetry.ReadLog(r)
	if err != nil {
		return Report{}, err
	}
	rep, err := metrics.ReplayTelemetry(log, evalFrom.Unix(), evalTo.Unix())
	if err != nil {
		return Report{}, err
	}
	rep.Name = fmt.Sprintf("offline evaluation of %d telemetry records", log.Len())
	return publicReport(rep), nil
}

// Regions lists the available region workload profiles.
func Regions() []string { return workload.RegionNames() }
