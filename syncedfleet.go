package prorp

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// SyncedFleet is a mutex-guarded Fleet for multi-goroutine hosts (gateway
// processes handling many databases' events concurrently). It exposes
// operation-level methods only — handing out *Database from behind the
// lock would defeat it. The underlying machinery is the same Algorithm 1 /
// Algorithm 5 stack; the paper's online components are sharded per
// database in production, which the single lock stands in for at library
// scale.
type SyncedFleet struct {
	mu    sync.Mutex
	fleet *Fleet
}

// NewSyncedFleet builds a concurrency-safe fleet.
func NewSyncedFleet(opts Options) (*SyncedFleet, error) {
	f, err := NewFleet(opts)
	if err != nil {
		return nil, err
	}
	return &SyncedFleet{fleet: f}, nil
}

// Create adds a new database created at createdAt.
func (s *SyncedFleet) Create(id int, createdAt time.Time) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := s.fleet.Create(id, createdAt)
	return err
}

// Login records the start of customer activity.
func (s *SyncedFleet) Login(id int, t time.Time) (Decision, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fleet.Login(id, t)
}

// Idle records the end of customer activity.
func (s *SyncedFleet) Idle(id int, t time.Time) (Decision, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fleet.Idle(id, t)
}

// Wake delivers a scheduled wake-up.
func (s *SyncedFleet) Wake(id int, t time.Time) (Decision, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fleet.Wake(id, t)
}

// RunResumeOp runs one control-plane iteration (Algorithm 5).
func (s *SyncedFleet) RunResumeOp(now time.Time) []Prewarmed {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fleet.RunResumeOp(now)
}

// State reports a database's lifecycle state.
func (s *SyncedFleet) State(id int) (State, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	db, ok := s.fleet.Database(id)
	if !ok {
		return 0, fmt.Errorf("prorp: unknown database %d", id)
	}
	return db.State(), nil
}

// Size reports the number of databases.
func (s *SyncedFleet) Size() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fleet.Size()
}

// PausedCount reports how many databases are physically paused.
func (s *SyncedFleet) PausedCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fleet.PausedCount()
}

// Snapshot serializes one database (see Database.WriteTo).
func (s *SyncedFleet) Snapshot(id int, w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	db, ok := s.fleet.Database(id)
	if !ok {
		return fmt.Errorf("prorp: unknown database %d", id)
	}
	_, err := db.WriteTo(w)
	return err
}

// Restore adds a snapshotted database (see Fleet.Restore). The returned
// wakeAt is non-zero when the host must schedule a Wake.
func (s *SyncedFleet) Restore(id int, r io.Reader) (wakeAt time.Time, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, wakeAt, err = s.fleet.Restore(id, r)
	return wakeAt, err
}

// PlanMaintenance schedules a maintenance operation for one database (see
// Database.PlanMaintenance).
func (s *SyncedFleet) PlanMaintenance(id int, now time.Time, duration time.Duration, deadline time.Time) (MaintenancePlan, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	db, ok := s.fleet.Database(id)
	if !ok {
		return MaintenancePlan{}, fmt.Errorf("prorp: unknown database %d", id)
	}
	return db.PlanMaintenance(now, duration, deadline)
}
