package prorp

import (
	"fmt"
	"io"
	"math"
	"sync"
	"time"

	"prorp/internal/historystore"
)

// SyncedFleet is a mutex-guarded Fleet for multi-goroutine hosts (gateway
// processes handling many databases' events concurrently). It exposes
// operation-level methods only — handing out *Database from behind the
// lock would defeat it. The underlying machinery is the same Algorithm 1 /
// Algorithm 5 stack; the paper's online components are sharded per
// database in production, which the single lock stands in for at library
// scale.
type SyncedFleet struct {
	mu    sync.Mutex
	fleet *Fleet
}

// NewSyncedFleet builds a concurrency-safe fleet.
func NewSyncedFleet(opts Options) (*SyncedFleet, error) {
	f, err := NewFleet(opts)
	if err != nil {
		return nil, err
	}
	return &SyncedFleet{fleet: f}, nil
}

// Create adds a new database created at createdAt.
func (s *SyncedFleet) Create(id int, createdAt time.Time) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := s.fleet.Create(id, createdAt)
	return err
}

// Delete drops a database and its control-plane metadata.
func (s *SyncedFleet) Delete(id int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fleet.Delete(id)
}

// Login records the start of customer activity.
func (s *SyncedFleet) Login(id int, t time.Time) (Decision, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fleet.Login(id, t)
}

// Idle records the end of customer activity.
func (s *SyncedFleet) Idle(id int, t time.Time) (Decision, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fleet.Idle(id, t)
}

// Wake delivers a scheduled wake-up.
func (s *SyncedFleet) Wake(id int, t time.Time) (Decision, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fleet.Wake(id, t)
}

// RunResumeOp runs one control-plane iteration (Algorithm 5).
func (s *SyncedFleet) RunResumeOp(now time.Time) []Prewarmed {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fleet.RunResumeOp(now)
}

// State reports a database's lifecycle state.
func (s *SyncedFleet) State(id int) (State, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	db, ok := s.fleet.Database(id)
	if !ok {
		return 0, fmt.Errorf("prorp: %w: %d", ErrUnknownDatabase, id)
	}
	return db.State(), nil
}

// Size reports the number of databases.
func (s *SyncedFleet) Size() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fleet.Size()
}

// PausedCount reports how many databases are physically paused.
func (s *SyncedFleet) PausedCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fleet.PausedCount()
}

// Snapshot serializes one database (see Database.WriteTo).
func (s *SyncedFleet) Snapshot(id int, w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	db, ok := s.fleet.Database(id)
	if !ok {
		return fmt.Errorf("prorp: %w: %d", ErrUnknownDatabase, id)
	}
	_, err := db.WriteTo(w)
	return err
}

// Restore adds a snapshotted database (see Fleet.Restore). The returned
// wakeAt is non-zero when the host must schedule a Wake.
func (s *SyncedFleet) Restore(id int, r io.Reader) (wakeAt time.Time, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, wakeAt, err = s.fleet.Restore(id, r)
	return wakeAt, err
}

// History returns a database's recorded activity events in chronological
// order, mirroring ShardedFleet.History — the two facades stay
// API-compatible so switching is one constructor change. It is for
// verification and tooling, not the hot path.
func (s *SyncedFleet) History(id int) ([]ActivityEvent, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	db, ok := s.fleet.Database(id)
	if !ok {
		return nil, fmt.Errorf("prorp: %w: %d", ErrUnknownDatabase, id)
	}
	var out []ActivityEvent
	for _, e := range db.machine.History().Scan(math.MinInt64, math.MaxInt64) {
		out = append(out, ActivityEvent{
			Time:  time.Unix(e.Time, 0).UTC(),
			Login: e.Type == historystore.EventStart,
		})
	}
	return out, nil
}

// PlanMaintenance schedules a maintenance operation for one database (see
// Database.PlanMaintenance).
func (s *SyncedFleet) PlanMaintenance(id int, now time.Time, duration time.Duration, deadline time.Time) (MaintenancePlan, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	db, ok := s.fleet.Database(id)
	if !ok {
		return MaintenancePlan{}, fmt.Errorf("prorp: %w: %d", ErrUnknownDatabase, id)
	}
	return db.PlanMaintenance(now, duration, deadline)
}

// ExplainPrediction scans every candidate window for one database as of
// now (see Database.ExplainPrediction). The returned windows are fresh
// copies; no interior state escapes the lock.
func (s *SyncedFleet) ExplainPrediction(id int, now time.Time) (windows []PredictionWindow, start, end time.Time, ok bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	db, found := s.fleet.Database(id)
	if !found {
		return nil, time.Time{}, time.Time{}, false, fmt.Errorf("prorp: %w: %d", ErrUnknownDatabase, id)
	}
	windows, start, end, ok = db.ExplainPrediction(now)
	return windows, start, end, ok, nil
}

// WriteTo archives the whole fleet under the lock (see Fleet.WriteTo) —
// the concurrency-safe snapshot path for host restarts. It implements
// io.WriterTo.
func (s *SyncedFleet) WriteTo(w io.Writer) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fleet.WriteTo(w)
}

// RestoreSyncedFleet reconstructs a concurrency-safe fleet from an archive
// written by Fleet.WriteTo, SyncedFleet.WriteTo, or ShardedFleet.WriteTo.
// It returns the wake-ups the host must schedule for logically paused
// databases.
func RestoreSyncedFleet(opts Options, r io.Reader) (*SyncedFleet, []PendingWake, error) {
	fleet, wakes, err := RestoreFleet(opts, r)
	if err != nil {
		return nil, nil, err
	}
	return &SyncedFleet{fleet: fleet}, wakes, nil
}
