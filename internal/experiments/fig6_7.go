package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"prorp/internal/engine"
	"prorp/internal/metrics"
	"prorp/internal/policy"
)

// PolicyComparison is one reactive-vs-proactive pair, the unit of Figures
// 6 and 7.
type PolicyComparison struct {
	Label     string
	Reactive  metrics.Report
	Proactive metrics.Report
}

// Fig6Result reproduces Figure 6: validation of the proactive policy
// across the four largest Azure regions. Paper shape: reactive QoS 60-68 %
// and idle 5-12 %; proactive QoS 80-90 % with idle 7-14 % split into
// logical 3-7 %, correct prewarm 1-5 %, wrong prewarm 1-4 %.
type Fig6Result struct {
	Rows []PolicyComparison
}

// Fig6 runs both policies over every region profile. The region x policy
// matrix is embarrassingly parallel (each simulation owns all of its
// state), so the runs fan out across CPUs.
func Fig6(scale Scale, regions []string) (*Fig6Result, error) {
	res := &Fig6Result{Rows: make([]PolicyComparison, len(regions))}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, region := range regions {
		for _, mode := range []policy.Mode{policy.Reactive, policy.Proactive} {
			i, region, mode := i, region, mode
			wg.Add(1)
			sem <- struct{}{}
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				out, err := scale.run(region, mode)
				mu.Lock()
				defer mu.Unlock()
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
					return
				}
				res.Rows[i].Label = region
				if mode == policy.Reactive {
					res.Rows[i].Reactive = out.Report
				} else {
					res.Rows[i].Proactive = out.Report
				}
			}()
		}
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return res, nil
}

// Render prints the two panels of Figure 6.
func (r *Fig6Result) Render() string {
	return renderComparisons("Figure 6: validation across Azure regions", "region", r.Rows)
}

// Fig7Result reproduces Figure 7: validation across four consecutive
// evaluation days on one region.
type Fig7Result struct {
	Region string
	Rows   []PolicyComparison
}

// Fig7 evaluates each of `days` consecutive days after the warm-up
// separately (the paper uses September 1-4, 2023).
func Fig7(scale Scale, region string, days int) (*Fig7Result, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	if days < 1 || days > scale.EvalDays {
		return nil, fmt.Errorf("experiments: %d days outside 1..%d", days, scale.EvalDays)
	}
	traces, err := scale.traces(region)
	if err != nil {
		return nil, err
	}
	res := &Fig7Result{Region: region}
	_, evalFrom, _ := scale.horizon()
	for d := 0; d < days; d++ {
		var pair [2]metrics.Report
		for i, mode := range []policy.Mode{policy.Reactive, policy.Proactive} {
			cfg := scale.engineConfig(mode)
			cfg.EvalFrom = evalFrom + int64(d)*day
			cfg.EvalTo = evalFrom + int64(d+1)*day
			out, err := engine.Run(cfg, traces)
			if err != nil {
				return nil, err
			}
			pair[i] = out.Report
		}
		res.Rows = append(res.Rows, PolicyComparison{
			Label:     fmt.Sprintf("day %d", d+1),
			Reactive:  pair[0],
			Proactive: pair[1],
		})
	}
	return res, nil
}

// Render prints the two panels of Figure 7.
func (r *Fig7Result) Render() string {
	return renderComparisons(
		fmt.Sprintf("Figure 7: validation across evaluation days (%s)", r.Region),
		"day", r.Rows)
}

// renderComparisons prints the (a) QoS and (b) idle-time panels shared by
// Figures 6 and 7.
func renderComparisons(title, rowLabel string, rows []PolicyComparison) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "(a) %% of first logins with resources available (QoS)\n")
	fmt.Fprintf(&b, "%10s %10s %10s\n", rowLabel, "reactive", "proactive")
	for _, row := range rows {
		fmt.Fprintf(&b, "%10s %9.1f%% %9.1f%%\n",
			row.Label, row.Reactive.QoSPercent(), row.Proactive.QoSPercent())
	}
	fmt.Fprintf(&b, "(b) %% of time resources stay idle\n")
	fmt.Fprintf(&b, "%10s %10s %10s %12s %14s %12s\n",
		rowLabel, "reactive", "proactive", "pro-logical", "pro-correct", "pro-wrong")
	for _, row := range rows {
		fmt.Fprintf(&b, "%10s %9.2f%% %9.2f%% %11.2f%% %13.2f%% %11.2f%%\n",
			row.Label,
			row.Reactive.IdlePercent(),
			row.Proactive.IdlePercent(),
			row.Proactive.IdleLogicalPercent(),
			row.Proactive.IdlePrewarmCorrectPercent(),
			row.Proactive.IdlePrewarmWrongPercent())
	}
	return b.String()
}
