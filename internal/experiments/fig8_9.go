package experiments

import (
	"fmt"
	"strings"

	"prorp/internal/policy"
	"prorp/internal/training"
)

// SweepResult captures a knob sweep (Figures 8 and 9 and the un-charted
// ablations): one row per knob value with the QoS and idle outcome.
type SweepResult struct {
	Title  string
	Knob   string
	Labels []string
	Points []training.Point
}

// Render prints the two panels of a sweep figure.
func (r *SweepResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", r.Title)
	fmt.Fprintf(&b, "%12s %14s %12s %14s %12s\n",
		r.Knob, "(a) QoS warm%", "(b) idle%", "idle-correct%", "idle-wrong%")
	for i, p := range r.Points {
		fmt.Fprintf(&b, "%12s %13.1f%% %11.2f%% %13.2f%% %11.2f%%\n",
			r.Labels[i], p.Report.QoSPercent(), p.Report.IdlePercent(),
			p.Report.IdlePrewarmCorrectPercent(), p.Report.IdlePrewarmWrongPercent())
	}
	return b.String()
}

// newPipeline builds the training pipeline Figures 8-9 sweep on.
func newPipeline(scale Scale, region string) (*training.Pipeline, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	traces, err := scale.traces(region)
	if err != nil {
		return nil, err
	}
	return training.New(scale.engineConfig(policy.Proactive), traces)
}

// Fig8 reproduces Figure 8 with the paper's full 1-8 hour window sweep.
func Fig8(scale Scale, region string) (*SweepResult, error) {
	return Fig8Windows(scale, region, []int{1, 2, 3, 4, 5, 6, 7, 8})
}

// Fig8Windows is Figure 8 over an explicit window list (hours). Paper
// shape: QoS rises 67 -> 87 % while idle time grows 3 -> 8 %.
func Fig8Windows(scale Scale, region string, hours []int) (*SweepResult, error) {
	p, err := newPipeline(scale, region)
	if err != nil {
		return nil, err
	}
	pts, err := p.SweepWindow(hours)
	if err != nil {
		return nil, err
	}
	res := &SweepResult{
		Title:  fmt.Sprintf("Figure 8: varying window size (%s)", region),
		Knob:   "window (h)",
		Points: pts,
	}
	for _, h := range hours {
		res.Labels = append(res.Labels, fmt.Sprintf("%d", h))
	}
	return res, nil
}

// Fig9 reproduces Figure 9 with the paper's full 0.1-0.8 threshold sweep.
func Fig9(scale Scale, region string) (*SweepResult, error) {
	return Fig9Confidences(scale, region, []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8})
}

// Fig9Confidences is Figure 9 over an explicit threshold list. Paper
// shape: QoS falls 86 -> 50 % while idle time drops 6 -> 2 %.
func Fig9Confidences(scale Scale, region string, cs []float64) (*SweepResult, error) {
	p, err := newPipeline(scale, region)
	if err != nil {
		return nil, err
	}
	pts, err := p.SweepConfidence(cs)
	if err != nil {
		return nil, err
	}
	res := &SweepResult{
		Title:  fmt.Sprintf("Figure 9: varying confidence of prediction (%s)", region),
		Knob:   "confidence",
		Points: pts,
	}
	for _, c := range cs {
		res.Labels = append(res.Labels, fmt.Sprintf("%.1f", c))
	}
	return res, nil
}
