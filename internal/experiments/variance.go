package experiments

import (
	"fmt"
	"math"
	"strings"

	"prorp/internal/policy"
)

// VarianceResult quantifies how sensitive the headline comparison is to
// the workload draw: the same experiment repeated over independent seeds.
// The paper reports single production measurements; a synthetic
// reproduction owes its readers the spread.
type VarianceResult struct {
	Region string
	Seeds  []int64
	// Per-seed series.
	ReactiveQoS   []float64
	ProactiveQoS  []float64
	ReactiveIdle  []float64
	ProactiveIdle []float64
}

// Variance runs the reactive/proactive comparison once per seed.
func Variance(scale Scale, region string, seeds []int64) (*VarianceResult, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("experiments: no seeds")
	}
	res := &VarianceResult{Region: region, Seeds: seeds}
	for _, seed := range seeds {
		s := scale
		s.Seed = seed
		rea, err := s.run(region, policy.Reactive)
		if err != nil {
			return nil, err
		}
		pro, err := s.run(region, policy.Proactive)
		if err != nil {
			return nil, err
		}
		res.ReactiveQoS = append(res.ReactiveQoS, rea.Report.QoSPercent())
		res.ProactiveQoS = append(res.ProactiveQoS, pro.Report.QoSPercent())
		res.ReactiveIdle = append(res.ReactiveIdle, rea.Report.IdlePercent())
		res.ProactiveIdle = append(res.ProactiveIdle, pro.Report.IdlePercent())
	}
	return res, nil
}

// meanStd returns the mean and sample standard deviation.
func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(std / float64(len(xs)-1))
}

// MinGap is the smallest per-seed QoS advantage of the proactive policy.
func (r *VarianceResult) MinGap() float64 {
	gap := math.Inf(1)
	for i := range r.Seeds {
		if g := r.ProactiveQoS[i] - r.ReactiveQoS[i]; g < gap {
			gap = g
		}
	}
	return gap
}

// Render prints mean +/- stddev rows.
func (r *VarianceResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Seed variance over %d workload draws (%s)\n", len(r.Seeds), r.Region)
	fmt.Fprintf(&b, "%-14s %16s %16s\n", "metric", "reactive", "proactive")
	rq, rs := meanStd(r.ReactiveQoS)
	pq, ps := meanStd(r.ProactiveQoS)
	fmt.Fprintf(&b, "%-14s %9.1f ± %3.1f%% %9.1f ± %3.1f%%\n", "QoS", rq, rs, pq, ps)
	ri, rsi := meanStd(r.ReactiveIdle)
	pi, psi := meanStd(r.ProactiveIdle)
	fmt.Fprintf(&b, "%-14s %9.2f ± %3.2f%% %9.2f ± %3.2f%%\n", "idle", ri, rsi, pi, psi)
	fmt.Fprintf(&b, "smallest per-seed proactive QoS advantage: %.1f points\n", r.MinGap())
	return b.String()
}
