package experiments

import (
	"fmt"
	"math"
	"strings"

	"prorp/internal/stats"
	"prorp/internal/workload"
)

// Fig3Result reproduces Figure 3: the fragmentation of idle time. The
// paper's headline numbers from two months of EU1 telemetry: 72 % of idle
// intervals last at most one hour (a), yet those short intervals contribute
// only about 5 % of the total idle duration (b).
type Fig3Result struct {
	Region string
	Months int
	// Gaps is the number of idle intervals observed.
	Gaps int
	// BoundsHours are the CDF evaluation points.
	BoundsHours []float64
	// CountCDF[i] is the fraction of idle intervals <= BoundsHours[i].
	CountCDF []float64
	// DurationCDF[i] is the fraction of total idle time contributed by
	// intervals <= BoundsHours[i].
	DurationCDF []float64
	// ShortCountFrac and ShortDurationFrac are the <=1 h headline values.
	ShortCountFrac    float64
	ShortDurationFrac float64
}

// Fig3 analyzes two months of generated traces for one region, mirroring
// the telemetry study of Section 2.2.
func Fig3(scale Scale) (*Fig3Result, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	const region = "EU1"
	const months = 2
	span := int64(months) * 30 * day

	prof, err := workload.Region(region)
	if err != nil {
		return nil, err
	}
	gen, err := workload.NewGenerator(scale.Seed, prof)
	if err != nil {
		return nil, err
	}
	traces := gen.Generate(scale.Databases, 0, span)

	var all []float64
	var weighted stats.WeightedCDF
	gaps := 0
	for _, tr := range traces {
		for _, g := range tr.IdleGaps() {
			d := float64(g.Duration())
			all = append(all, d)
			weighted.Add(d, d)
			gaps++
		}
	}
	countCDF := stats.NewCDF(all)

	bounds := []float64{0.25, 0.5, 1, 2, 4, 7, 12, 24, 72, 168, 720}
	res := &Fig3Result{
		Region:      region,
		Months:      months,
		Gaps:        gaps,
		BoundsHours: bounds,
	}
	for _, b := range bounds {
		sec := b * 3600
		res.CountCDF = append(res.CountCDF, countCDF.At(sec))
		res.DurationCDF = append(res.DurationCDF, weighted.At(sec))
	}
	res.ShortCountFrac = countCDF.At(3600)
	res.ShortDurationFrac = weighted.At(3600)
	return res, nil
}

// Render prints the two CDF series of Figure 3.
func (r *Fig3Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3: fragmentation of idle time (%s, %d months, %d idle intervals)\n",
		r.Region, r.Months, r.Gaps)
	fmt.Fprintf(&b, "%10s %18s %21s\n", "<= hours", "(a) % of intervals", "(b) % of idle time")
	for i, bd := range r.BoundsHours {
		fmt.Fprintf(&b, "%10.2f %18.1f %21.1f\n", bd, 100*r.CountCDF[i], 100*r.DurationCDF[i])
	}
	fmt.Fprintf(&b, "headline: %.0f%% of idle intervals are within one hour (paper: 72%%), contributing %.1f%% of idle time (paper: ~5%%)\n",
		100*r.ShortCountFrac, 100*r.ShortDurationFrac)
	return b.String()
}

// Plot renders the two CDFs of Figure 3 as ASCII curves on a log-x axis
// (the bounds span 15 minutes to 30 days).
func (r *Fig3Result) Plot() string {
	logX := make([]float64, len(r.BoundsHours))
	for i, x := range r.BoundsHours {
		logX[i] = math.Log10(x)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "(a) fraction of idle intervals <= duration\n")
	b.WriteString(stats.PlotCDF(logX, r.CountCDF, 56, 10, "log10(idle interval duration, hours)"))
	fmt.Fprintf(&b, "(b) fraction of total idle time contributed\n")
	b.WriteString(stats.PlotCDF(logX, r.DurationCDF, 56, 10, "log10(idle interval duration, hours)"))
	return b.String()
}
