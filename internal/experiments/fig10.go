package experiments

import (
	"fmt"
	"strings"
	"time"

	"prorp/internal/policy"
	"prorp/internal/predictor"
	"prorp/internal/stats"
)

// Fig10Result reproduces Figure 10: the overhead of the online components.
// Paper shape: (a) history tuple counts average within ~500/week and peak
// above 4 K; (b) history size within 7 KB on average, 74 KB worst case;
// (c) prediction latency sub-second (their hardware: <=90 ms average,
// <=700 ms max — absolute values differ on other hardware, the sub-second
// shape is the claim).
type Fig10Result struct {
	Databases int

	// Tuples is the distribution of history tuple counts per database.
	Tuples stats.Summary
	// SizeKB is the distribution of history store sizes in kilobytes.
	SizeKB stats.Summary
	// LatencyMs is the distribution of Algorithm 4 wall-clock latency in
	// milliseconds, measured over every database's real history.
	LatencyMs stats.Summary

	// Quantiles of each CDF at the probe points (p50, p90, p99, max).
	TupleQuantiles   [4]float64
	SizeKBQuantiles  [4]float64
	LatencyQuantiles [4]float64
}

// Fig10 runs a proactive region simulation, then measures every database's
// history footprint and the wall-clock latency of one prediction over it.
func Fig10(scale Scale, region string) (*Fig10Result, error) {
	res, err := scale.run(region, policy.Proactive)
	if err != nil {
		return nil, err
	}
	_, _, to := scale.horizon()

	var tuples, sizeKB, latencyMs []float64
	params := predictor.Default()
	params.HistoryDays = scale.HistoryDays
	for _, m := range res.Machines {
		st := m.History()
		tuples = append(tuples, float64(st.Len()))
		sizeKB = append(sizeKB, float64(st.SizeBytes())/1024)

		start := time.Now()
		predictor.Predict(st, params, to)
		latencyMs = append(latencyMs, float64(time.Since(start).Nanoseconds())/1e6)
	}

	out := &Fig10Result{
		Databases: len(res.Machines),
		Tuples:    stats.Summarize(tuples),
		SizeKB:    stats.Summarize(sizeKB),
		LatencyMs: stats.Summarize(latencyMs),
	}
	qs := []float64{0.5, 0.9, 0.99, 1}
	tc, sc, lc := stats.NewCDF(tuples), stats.NewCDF(sizeKB), stats.NewCDF(latencyMs)
	for i, q := range qs {
		out.TupleQuantiles[i] = tc.Quantile(q)
		out.SizeKBQuantiles[i] = sc.Quantile(q)
		out.LatencyQuantiles[i] = lc.Quantile(q)
	}
	return out, nil
}

// Render prints the three CDres panels of Figure 10.
func (r *Fig10Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 10: overhead of the proactive policy (%d databases)\n", r.Databases)
	row := func(name string, s stats.Summary, q [4]float64, unit string) {
		fmt.Fprintf(&b, "(%s) mean=%.2f%s p50=%.2f p90=%.2f p99=%.2f max=%.2f%s\n",
			name, s.Mean, unit, q[0], q[1], q[2], q[3], unit)
	}
	row("a: history tuples   ", r.Tuples, r.TupleQuantiles, "")
	row("b: history size KB  ", r.SizeKB, r.SizeKBQuantiles, " KB")
	row("c: predict latency  ", r.LatencyMs, r.LatencyQuantiles, " ms")
	fmt.Fprintf(&b, "paper: <=500 tuples avg / >4K max; <=7 KB avg / 74 KB max; sub-second latency\n")
	return b.String()
}
