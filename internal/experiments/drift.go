package experiments

import (
	"fmt"
	"strings"

	"prorp/internal/engine"
	"prorp/internal/policy"
	"prorp/internal/telemetry"
	"prorp/internal/workload"
)

// DriftResult quantifies data drift and recovery — the reason the paper's
// training pipeline exists (Section 8: "To account for potential data
// drifts over time and prevent accuracy drops"). At the drift day every
// patterned database shifts its phase by ShiftHours; predictions keyed to
// the old phase go stale and the QoS dips, then recovers as the rolling
// history refills with post-drift activity. Shorter history lengths
// recover faster — the recency/periodicity trade-off behind the paper's
// choice of h = 4 weeks.
type DriftResult struct {
	Region     string
	ShiftHours int
	// Histories are the evaluated history lengths in days.
	Histories []int
	// QoSByDay[h][d] is the QoS on day d relative to the drift day (day 0
	// is the first shifted day) under Histories[h].
	QoSByDay [][]float64
	// Baseline[d] is the pre-drift steady-state QoS under the first
	// history length, for reference.
	Baseline float64
}

// Drift runs the proactive policy through a mid-horizon phase shift for
// each history length and reports the per-day QoS trajectory, computed
// offline from the telemetry log.
func Drift(scale Scale, region string, shiftHours int, histories []int) (*DriftResult, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	if shiftHours <= 0 {
		return nil, fmt.Errorf("experiments: drift shift %d h", shiftHours)
	}
	prof, err := workload.Region(region)
	if err != nil {
		return nil, err
	}
	// Drift lands at the evaluation start; the window after it shows the
	// dip and recovery.
	prof.DriftDay = scale.WarmupDays
	prof.DriftSec = int64(shiftHours) * hour

	gen, err := workload.NewGenerator(scale.Seed, prof)
	if err != nil {
		return nil, err
	}
	from, evalFrom, to := scale.horizon()
	traces := gen.Generate(scale.Databases, from, to)

	res := &DriftResult{Region: region, ShiftHours: shiftHours, Histories: histories}
	for hi, h := range histories {
		if h >= scale.WarmupDays {
			return nil, fmt.Errorf("experiments: history %d days needs warmup > %d", h, h)
		}
		cfg := scale.engineConfig(policy.Proactive)
		cfg.Policy.Predictor.HistoryDays = h
		out, err := engine.Run(cfg, traces)
		if err != nil {
			return nil, err
		}
		var days []float64
		for d := 0; d < scale.EvalDays; d++ {
			lo := evalFrom + int64(d)*day
			hiT := lo + day - 1
			warm := out.Telemetry.CountRange(telemetry.ResumeWarm, lo, hiT)
			cold := out.Telemetry.CountRange(telemetry.ResumeCold, lo, hiT)
			if warm+cold == 0 {
				days = append(days, 0)
				continue
			}
			days = append(days, 100*float64(warm)/float64(warm+cold))
		}
		res.QoSByDay = append(res.QoSByDay, days)
		if hi == 0 {
			// Pre-drift steady state: the last warm-up day.
			lo := evalFrom - day
			warm := out.Telemetry.CountRange(telemetry.ResumeWarm, lo, evalFrom-1)
			cold := out.Telemetry.CountRange(telemetry.ResumeCold, lo, evalFrom-1)
			if warm+cold > 0 {
				res.Baseline = 100 * float64(warm) / float64(warm+cold)
			}
		}
	}
	return res, nil
}

// Render prints the recovery trajectories.
func (r *DriftResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Data drift: +%d h phase shift at day 0 (%s; pre-drift QoS %.1f%%)\n",
		r.ShiftHours, r.Region, r.Baseline)
	fmt.Fprintf(&b, "%12s", "history")
	for d := range r.QoSByDay[0] {
		fmt.Fprintf(&b, "   day %2d", d)
	}
	fmt.Fprintf(&b, "\n")
	for i, h := range r.Histories {
		fmt.Fprintf(&b, "%10d d", h)
		for _, q := range r.QoSByDay[i] {
			fmt.Fprintf(&b, " %7.1f%%", q)
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}
