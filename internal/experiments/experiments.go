// Package experiments regenerates every table and figure of the ProRP
// paper's evaluation (Section 9): Figure 3 (idle-time fragmentation),
// Figures 6-7 (reactive vs proactive across regions and days), Figures 8-9
// (knob sweeps), Figure 10 (overhead CDFs), Figures 11-12 (workflow
// frequency box plots), plus the ablations the paper mentions without
// charting (history length, seasonality, no-prewarm, oracle bound).
//
// Every experiment takes a Scale so the same harness runs at full
// (paper-shaped, seconds to minutes) or quick (CI / testing.B) size, and a
// fixed seed so output is reproducible. Results carry both structured data
// (asserted by tests) and a Render method printing the same rows/series
// the paper plots.
package experiments

import (
	"fmt"

	"prorp/internal/cluster"
	"prorp/internal/controlplane"
	"prorp/internal/engine"
	"prorp/internal/policy"
	"prorp/internal/workload"
)

const (
	day  = int64(86400)
	hour = int64(3600)
)

// Scale sizes an experiment run.
type Scale struct {
	// Databases per region.
	Databases int
	// HistoryDays is the predictor's h; the paper default is 28.
	HistoryDays int
	// WarmupDays precede the evaluation window (must exceed HistoryDays so
	// databases become "old").
	WarmupDays int
	// EvalDays is the measured span.
	EvalDays int
	// Seed drives workload generation and the cluster.
	Seed int64
}

// Full is the paper-shaped scale: 28-day history, four-week warm-up, six
// evaluation days.
func Full() Scale {
	return Scale{Databases: 400, HistoryDays: 28, WarmupDays: 29, EvalDays: 6, Seed: 42}
}

// Quick is the CI/benchmark scale: one-week history, same structure.
func Quick() Scale {
	return Scale{Databases: 100, HistoryDays: 7, WarmupDays: 8, EvalDays: 3, Seed: 42}
}

// Validate checks the scale.
func (s Scale) Validate() error {
	if s.Databases <= 0 {
		return fmt.Errorf("experiments: %d databases", s.Databases)
	}
	if s.HistoryDays <= 0 || s.WarmupDays <= s.HistoryDays {
		return fmt.Errorf("experiments: warmup %d days must exceed history %d",
			s.WarmupDays, s.HistoryDays)
	}
	if s.EvalDays <= 0 {
		return fmt.Errorf("experiments: %d eval days", s.EvalDays)
	}
	return nil
}

// horizon returns the simulation bounds.
func (s Scale) horizon() (from, evalFrom, to int64) {
	return 0, int64(s.WarmupDays) * day, int64(s.WarmupDays+s.EvalDays) * day
}

// traces generates the region workload for this scale.
func (s Scale) traces(region string) ([]workload.Trace, error) {
	prof, err := workload.Region(region)
	if err != nil {
		return nil, err
	}
	gen, err := workload.NewGenerator(s.Seed, prof)
	if err != nil {
		return nil, err
	}
	from, _, to := s.horizon()
	return gen.Generate(s.Databases, from, to), nil
}

// engineConfig builds the engine configuration for the scale and mode.
func (s Scale) engineConfig(mode policy.Mode) engine.Config {
	pol := policy.DefaultConfig()
	pol.Mode = mode
	pol.Predictor.HistoryDays = s.HistoryDays
	from, evalFrom, to := s.horizon()
	return engine.Config{
		Policy:       pol,
		ControlPlane: controlplane.DefaultConfig(),
		Cluster:      cluster.DefaultConfig(s.Databases),
		From:         from,
		EvalFrom:     evalFrom,
		To:           to,
		Seed:         s.Seed,
	}
}

// run executes one region simulation under the given mode.
func (s Scale) run(region string, mode policy.Mode) (*engine.Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	traces, err := s.traces(region)
	if err != nil {
		return nil, err
	}
	res, err := engine.Run(s.engineConfig(mode), traces)
	if err != nil {
		return nil, err
	}
	res.Report.Name = fmt.Sprintf("%s %s", region, mode)
	return res, nil
}
