package experiments

import (
	"strings"
	"testing"
)

func TestFutureAutoscaleLadder(t *testing.T) {
	s := Quick()
	s.Databases = 80
	res, err := FutureAutoscale(s, "EU1")
	if err != nil {
		t.Fatal(err)
	}
	rea, pro, ora := res.Results[0], res.Results[1], res.Results[2]
	if rea.Name != "reactive" || pro.Name != "proactive" || ora.Name != "oracle" {
		t.Fatalf("ladder order: %s/%s/%s", rea.Name, pro.Name, ora.Name)
	}
	// The extension's claim: proactive pre-scaling throttles less.
	if pro.Throttled >= rea.Throttled {
		t.Errorf("proactive throttled %d >= reactive %d", pro.Throttled, rea.Throttled)
	}
	if ora.Throttled != 0 || ora.Idle != 0 {
		t.Errorf("oracle imperfect: %+v", ora)
	}
	if rea.Used == 0 {
		t.Error("no demand served")
	}
	if !strings.Contains(res.Render(), "auto-scale") {
		t.Error("render missing title")
	}
}

func TestFutureMaintenanceBeatNaive(t *testing.T) {
	s := Quick()
	s.Databases = 100
	res, err := FutureMaintenance(s, "EU1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != s.Databases {
		t.Fatalf("ops = %d, want %d", res.Ops, s.Databases)
	}
	// Prediction-aware scheduling must force strictly fewer resumes than
	// the naive fixed-slot plan (most of the fleet is paused overnight,
	// and the patterned databases carry predictions).
	if res.PredictedForcedPercent >= res.NaiveForcedPercent {
		t.Errorf("prediction-aware forced %.1f%% >= naive %.1f%%",
			res.PredictedForcedPercent, res.NaiveForcedPercent)
	}
	total := 0
	for _, n := range res.ByStrategy {
		total += n
	}
	if total != res.Ops {
		t.Errorf("strategy counts sum to %d, want %d", total, res.Ops)
	}
	if !strings.Contains(res.Render(), "maintenance") {
		t.Error("render missing title")
	}
}
