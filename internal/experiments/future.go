package experiments

import (
	"fmt"
	"strings"

	"prorp/internal/autoscale"
	"prorp/internal/maintenance"
	"prorp/internal/policy"
	"prorp/internal/workload"
)

// FutureAutoscaleResult quantifies the paper's first future-work direction
// (Section 11): proactive auto-scale in small capacity increments.
type FutureAutoscaleResult struct {
	Region  string
	Results [3]autoscale.Result // reactive, proactive, oracle
}

// levelFor maps a workload archetype to a demand profile in capacity
// units: office databases ramp to a midday peak, night batches burst hard,
// always-on services hold a steady medium, the rest run at the base level.
func levelFor(p workload.Pattern, hourOfDay int64) int {
	switch p {
	case workload.Office:
		if hourOfDay >= 11 && hourOfDay < 14 {
			return 4
		}
		return 2
	case workload.NightBatch:
		return 4
	case workload.AlwaysOn:
		return 2
	default:
		return 1
	}
}

// FutureAutoscale derives per-level demand curves from the region workload
// and compares the reactive, proactive, and oracle scalers.
func FutureAutoscale(scale Scale, region string) (*FutureAutoscaleResult, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	traces, err := scale.traces(region)
	if err != nil {
		return nil, err
	}
	var levelTraces []autoscale.Trace
	for _, tr := range traces {
		var lt autoscale.Trace
		lt.DB = tr.DB
		for _, iv := range tr.Intervals {
			// Split the interval at hour boundaries so office middays peak.
			cur := iv.Start
			for cur < iv.End {
				hourEnd := (cur/3600 + 1) * 3600
				if hourEnd > iv.End {
					hourEnd = iv.End
				}
				lv := levelFor(tr.Pattern, (cur%86400)/3600)
				n := len(lt.Intervals)
				if n > 0 && lt.Intervals[n-1].End == cur && lt.Intervals[n-1].Level == lv {
					lt.Intervals[n-1].End = hourEnd
				} else {
					lt.Intervals = append(lt.Intervals, autoscale.LevelInterval{
						Start: cur, End: hourEnd, Level: lv,
					})
				}
				cur = hourEnd
			}
		}
		if len(lt.Intervals) > 0 {
			levelTraces = append(levelTraces, lt)
		}
	}

	cfg := autoscale.DefaultConfig()
	cfg.HistoryDays = scale.HistoryDays
	from, evalFrom, to := scale.horizon()
	results, err := autoscale.Compare(cfg, levelTraces, from, evalFrom, to)
	if err != nil {
		return nil, err
	}
	return &FutureAutoscaleResult{Region: region, Results: results}, nil
}

// Render prints the generalized Definition 2.2 metrics per scaler.
func (r *FutureAutoscaleResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Future work: proactive auto-scale in capacity increments (%s)\n", r.Region)
	fmt.Fprintf(&b, "%-10s %14s %12s %10s\n", "scaler", "throttled", "idle-cores", "steps")
	for _, res := range r.Results {
		fmt.Fprintf(&b, "%-10s %13.2f%% %11.2f%% %10d\n",
			res.Name, res.ThrottledPercent(), res.IdlePercent(), res.Steps)
	}
	return b.String()
}

// FutureMaintenanceResult quantifies the fourth future-work direction:
// scheduling maintenance into predicted-online windows.
type FutureMaintenanceResult struct {
	Region string
	// Naive runs every operation at its deadline regardless of state.
	NaiveForcedPercent float64
	// Predicted uses the per-database prediction.
	PredictedForcedPercent float64
	ByStrategy             map[maintenance.Strategy]int
	Ops                    int
}

// FutureMaintenance runs a proactive region simulation, then plans one
// nightly backup per database and measures how many forced resumes the
// prediction-aware scheduler avoids compared to the naive
// fixed-deadline plan.
func FutureMaintenance(scale Scale, region string) (*FutureMaintenanceResult, error) {
	res, err := scale.run(region, policy.Proactive)
	if err != nil {
		return nil, err
	}
	_, _, to := scale.horizon()
	now := to

	views := map[int]maintenance.DatabaseView{}
	var ops []maintenance.Op
	for i, m := range res.Machines {
		views[i] = maintenance.DatabaseView{
			ResourcesAvailable: m.ResourcesAvailable(),
			Next:               m.NextActivity(),
		}
		ops = append(ops, maintenance.Op{
			DB:          i,
			DurationSec: 900,           // a 15-minute backup
			DeadlineSec: now + 24*3600, // due within a day
		})
	}
	batch, err := maintenance.ScheduleBatch(ops, now, views, 0)
	if err != nil {
		return nil, err
	}

	// The naive baseline forces a resume for every database that is
	// physically paused at its fixed slot.
	naiveForced := 0
	for i := range ops {
		if !views[i].ResourcesAvailable {
			naiveForced++
		}
	}

	out := &FutureMaintenanceResult{
		Region:                 region,
		NaiveForcedPercent:     100 * float64(naiveForced) / float64(len(ops)),
		PredictedForcedPercent: 100 - batch.AvoidedResumePercent(),
		ByStrategy:             batch.ByStrategy,
		Ops:                    len(ops),
	}
	return out, nil
}

// Render prints the comparison.
func (r *FutureMaintenanceResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Future work: maintenance scheduling into predicted-online windows (%s, %d ops)\n",
		r.Region, r.Ops)
	fmt.Fprintf(&b, "forced resumes: naive fixed-slot %.1f%% -> prediction-aware %.1f%%\n",
		r.NaiveForcedPercent, r.PredictedForcedPercent)
	fmt.Fprintf(&b, "plans: run-now %d, during-predicted-activity %d, forced %d\n",
		r.ByStrategy[maintenance.RunNow],
		r.ByStrategy[maintenance.DuringPredictedActivity],
		r.ByStrategy[maintenance.ForcedResume])
	return b.String()
}
