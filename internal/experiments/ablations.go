package experiments

import (
	"fmt"
	"strings"

	"prorp/internal/engine"
	"prorp/internal/metrics"
	"prorp/internal/policy"
	"prorp/internal/predictor"
	"prorp/internal/workload"
)

// AblationHistoryLength re-evaluates the proactive policy under different
// history lengths h. The paper reports (Section 9.2, uncharted) that the
// QoS/COGS trade-off is relatively insensitive to h; 4 weeks balances
// recency against multi-week periodicity. Days must not exceed
// scale.WarmupDays-1 so databases still become old.
func AblationHistoryLength(scale Scale, region string, days []int) (*SweepResult, error) {
	for _, d := range days {
		if d >= scale.WarmupDays {
			return nil, fmt.Errorf("experiments: history %d days needs warmup > %d", d, d)
		}
	}
	p, err := newPipeline(scale, region)
	if err != nil {
		return nil, err
	}
	pts, err := p.SweepHistory(days)
	if err != nil {
		return nil, err
	}
	res := &SweepResult{
		Title:  fmt.Sprintf("Ablation: varying history length (%s)", region),
		Knob:   "history (d)",
		Points: pts,
	}
	for _, d := range days {
		res.Labels = append(res.Labels, fmt.Sprintf("%d", d))
	}
	return res, nil
}

// AblationSeasonality compares daily against weekly pattern detection; the
// paper reports the two achieve similar results.
func AblationSeasonality(scale Scale, region string) (*SweepResult, error) {
	if scale.HistoryDays < 7 {
		return nil, fmt.Errorf("experiments: weekly seasonality needs >= 7 history days")
	}
	p, err := newPipeline(scale, region)
	if err != nil {
		return nil, err
	}
	pts, err := p.SweepSeasonality()
	if err != nil {
		return nil, err
	}
	return &SweepResult{
		Title:  fmt.Sprintf("Ablation: seasonality (%s)", region),
		Knob:   "seasonality",
		Labels: []string{predictor.Daily.String(), predictor.Weekly.String()},
		Points: pts,
	}, nil
}

// AblationResult compares named policy variants on one region.
type AblationResult struct {
	Region  string
	Reports []metrics.Report
	// MeanOccupancy[i] is the mean number of simultaneously allocated
	// databases under Reports[i] — the capacity the region must provision
	// (Section 1: "the number of physical machines is reduced").
	MeanOccupancy []float64
}

// AblationPolicyLadder evaluates the design ladder the paper's Figure 2
// sketches: the reactive baseline, the proactive policy without the
// control-plane pre-warm (Algorithm 1 alone), the full proactive policy,
// and the clairvoyant optimum (resources allocated exactly when demanded).
func AblationPolicyLadder(scale Scale, region string) (*AblationResult, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	traces, err := scale.traces(region)
	if err != nil {
		return nil, err
	}
	out := &AblationResult{Region: region}

	rea, err := engine.Run(scale.engineConfig(policy.Reactive), traces)
	if err != nil {
		return nil, err
	}
	rea.Report.Name = "reactive"
	out.Reports = append(out.Reports, rea.Report)
	out.MeanOccupancy = append(out.MeanOccupancy, rea.Occupancy.Mean)

	noPrewarm := scale.engineConfig(policy.Proactive)
	noPrewarm.DisablePrewarm = true
	np, err := engine.Run(noPrewarm, traces)
	if err != nil {
		return nil, err
	}
	np.Report.Name = "proactive-pause-only"
	out.Reports = append(out.Reports, np.Report)
	out.MeanOccupancy = append(out.MeanOccupancy, np.Occupancy.Mean)

	pro, err := engine.Run(scale.engineConfig(policy.Proactive), traces)
	if err != nil {
		return nil, err
	}
	pro.Report.Name = "proactive"
	out.Reports = append(out.Reports, pro.Report)
	out.MeanOccupancy = append(out.MeanOccupancy, pro.Occupancy.Mean)

	oracle := oracleReport(scale, traces)
	out.Reports = append(out.Reports, oracle)
	// The oracle holds exactly the demanded capacity on average.
	total := oracle.TotalTime()
	if total > 0 {
		out.MeanOccupancy = append(out.MeanOccupancy,
			float64(oracle.Durations[metrics.Used])/float64(total)*float64(scale.Databases))
	} else {
		out.MeanOccupancy = append(out.MeanOccupancy, 0)
	}
	return out, nil
}

// oracleReport computes the Figure 2(c) optimum analytically: with perfect
// demand prediction, every first login is warm, resources are used exactly
// while demanded and saved otherwise, and no time is idle.
func oracleReport(scale Scale, traces []workload.Trace) metrics.Report {
	_, evalFrom, to := scale.horizon()
	var r metrics.Report
	r.Name = "oracle (optimal)"
	r.EvalFrom, r.EvalTo = evalFrom, to
	for _, tr := range traces {
		aliveFrom := tr.Birth
		if aliveFrom < evalFrom {
			aliveFrom = evalFrom
		}
		if aliveFrom >= to {
			continue
		}
		var used int64
		for _, iv := range tr.Intervals {
			lo, hi := iv.Start, iv.End
			if lo < evalFrom {
				lo = evalFrom
			}
			if hi > to {
				hi = to
			}
			if hi > lo {
				used += hi - lo
			}
			if iv.Start >= evalFrom && iv.Start < to && iv.Start > tr.Birth {
				r.WarmLogins++
			}
		}
		r.Durations[metrics.Used] += used
		r.Durations[metrics.Saved] += (to - aliveFrom) - used
	}
	return r
}

// Render prints the ladder.
func (r *AblationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: policy ladder (%s)\n", r.Region)
	fmt.Fprintf(&b, "%-22s %10s %10s %10s %10s %14s\n", "policy", "QoS", "idle", "saved", "used", "mean-allocated")
	for i, rep := range r.Reports {
		fmt.Fprintf(&b, "%-22s %9.1f%% %9.2f%% %9.2f%% %9.2f%% %14.1f\n",
			rep.Name, rep.QoSPercent(), rep.IdlePercent(), rep.SavedPercent(), rep.UsedPercent(),
			r.MeanOccupancy[i])
	}
	return b.String()
}
