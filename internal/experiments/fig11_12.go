package experiments

import (
	"fmt"
	"strings"

	"prorp/internal/engine"
	"prorp/internal/policy"
	"prorp/internal/stats"
	"prorp/internal/telemetry"
)

// WorkflowFrequencyRow is one box of Figures 11 / 12: the distribution of
// workflow counts per interval at one operation cadence.
type WorkflowFrequencyRow struct {
	PeriodMinutes int
	// Proactive is the gray box (the proactive policy's workflows).
	Proactive stats.Summary
	// Reactive is the white box (the reactive baseline's workflows in the
	// same interval grid).
	Reactive stats.Summary
}

// Fig11Result reproduces Figure 11: the number of proactively resumed
// databases per iteration of the proactive resume operation, as its period
// grows from 1 to 15 minutes, against reactive resume workflows. Paper
// shape: the maximum grows ~29 -> 406 with the period (absolute counts
// scale with fleet size); production picks 1 minute to keep iterations
// under about one hundred databases.
type Fig11Result struct {
	Region string
	Rows   []WorkflowFrequencyRow
}

// Fig12Result reproduces Figure 12: physically paused databases per
// interval, proactive vs reactive. Paper shape: max 31 -> 458 with the
// interval, and the proactive policy pauses about twice as often as the
// reactive one because predicted-idle databases skip the logical pause.
type Fig12Result struct {
	Region string
	Rows   []WorkflowFrequencyRow
}

// workflowRuns runs the proactive policy once per operation period plus
// one reactive baseline, returning bucketed event counts.
func workflowRuns(scale Scale, region string, periodsMin []int, kind telemetry.Kind, reactiveKind telemetry.Kind) ([]WorkflowFrequencyRow, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	traces, err := scale.traces(region)
	if err != nil {
		return nil, err
	}
	_, evalFrom, to := scale.horizon()

	reaCfg := scale.engineConfig(policy.Reactive)
	rea, err := engine.Run(reaCfg, traces)
	if err != nil {
		return nil, err
	}

	var rows []WorkflowFrequencyRow
	for _, pm := range periodsMin {
		cfg := scale.engineConfig(policy.Proactive)
		cfg.ControlPlane.OpPeriodSec = int64(pm) * 60
		// Figure 11 measures the raw queue drain per iteration, so the
		// per-iteration cap is lifted for the sweep.
		cfg.ControlPlane.MaxPrewarmsPerOp = 0
		pro, err := engine.Run(cfg, traces)
		if err != nil {
			return nil, err
		}
		interval := int64(pm) * 60
		rows = append(rows, WorkflowFrequencyRow{
			PeriodMinutes: pm,
			Proactive:     bucketSummary(pro.Telemetry, kind, evalFrom, to, interval),
			Reactive:      bucketSummary(rea.Telemetry, reactiveKind, evalFrom, to, interval),
		})
	}
	return rows, nil
}

func bucketSummary(tel *telemetry.Log, kind telemetry.Kind, from, to, interval int64) stats.Summary {
	counts := tel.Buckets(kind, from, to, interval)
	xs := make([]float64, len(counts))
	for i, c := range counts {
		xs[i] = float64(c)
	}
	return stats.Summarize(xs)
}

// Fig11 counts proactive resumes (pre-warms) per operation iteration; the
// reactive comparison counts that policy's reactive resume workflows on
// the same interval grid.
func Fig11(scale Scale, region string, periodsMin []int) (*Fig11Result, error) {
	rows, err := workflowRuns(scale, region, periodsMin, telemetry.Prewarm, telemetry.ResumeCold)
	if err != nil {
		return nil, err
	}
	return &Fig11Result{Region: region, Rows: rows}, nil
}

// Fig12 counts physical pauses per interval for both policies.
func Fig12(scale Scale, region string, periodsMin []int) (*Fig12Result, error) {
	rows, err := workflowRuns(scale, region, periodsMin, telemetry.PhysicalPause, telemetry.PhysicalPause)
	if err != nil {
		return nil, err
	}
	return &Fig12Result{Region: region, Rows: rows}, nil
}

func renderWorkflowRows(title, grayLabel string, region string, rows []WorkflowFrequencyRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%s)\n", title, region)
	fmt.Fprintf(&b, "%12s | %-44s | %-44s\n", "period (min)", grayLabel+" (proactive)", "reactive baseline")
	for _, row := range rows {
		fmt.Fprintf(&b, "%12d | %-44s | %-44s\n",
			row.PeriodMinutes, boxString(row.Proactive), boxString(row.Reactive))
	}
	return b.String()
}

func boxString(s stats.Summary) string {
	return fmt.Sprintf("min=%.0f q1=%.0f med=%.0f q3=%.0f max=%.0f",
		s.Min, s.Q1, s.Median, s.Q3, s.Max)
}

// Render prints the box-plot rows of Figure 11.
func (r *Fig11Result) Render() string {
	return renderWorkflowRows("Figure 11: frequency of resource allocation workflows",
		"prewarms/iteration", r.Region, r.Rows)
}

// Render prints the box-plot rows of Figure 12.
func (r *Fig12Result) Render() string {
	return renderWorkflowRows("Figure 12: frequency of resource reclamation workflows",
		"physical pauses/interval", r.Region, r.Rows)
}

// Plot renders Figure 11's proactive boxes as ASCII box plots.
func (r *Fig11Result) Plot() string {
	return plotWorkflowRows("prewarms per iteration", r.Rows)
}

// Plot renders Figure 12's proactive boxes as ASCII box plots.
func (r *Fig12Result) Plot() string {
	return plotWorkflowRows("physical pauses per interval", r.Rows)
}

func plotWorkflowRows(title string, rows []WorkflowFrequencyRow) string {
	labels := make([]string, len(rows))
	boxes := make([]stats.Summary, len(rows))
	for i, row := range rows {
		labels[i] = fmt.Sprintf("%d min", row.PeriodMinutes)
		boxes[i] = row.Proactive
	}
	return title + " (proactive policy)\n" + stats.PlotBoxes(labels, boxes, 48)
}
