package experiments

import (
	"fmt"
	"strings"
)

// CSV exports let external plotting tools regenerate the paper's figures
// from the measured series. Each method returns a self-describing CSV
// document (header row first).

// CSV renders Figure 3's two series.
func (r *Fig3Result) CSV() string {
	var b strings.Builder
	b.WriteString("bound_hours,fraction_of_intervals,fraction_of_idle_time\n")
	for i, bd := range r.BoundsHours {
		fmt.Fprintf(&b, "%g,%.6f,%.6f\n", bd, r.CountCDF[i], r.DurationCDF[i])
	}
	return b.String()
}

// CSV renders the Figure 6 / 7 comparison rows.
func comparisonsCSV(label string, rows []PolicyComparison) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s,reactive_qos,proactive_qos,reactive_idle,proactive_idle,pro_idle_logical,pro_idle_correct,pro_idle_wrong\n", label)
	for _, row := range rows {
		fmt.Fprintf(&b, "%s,%.3f,%.3f,%.4f,%.4f,%.4f,%.4f,%.4f\n",
			row.Label,
			row.Reactive.QoSPercent(), row.Proactive.QoSPercent(),
			row.Reactive.IdlePercent(), row.Proactive.IdlePercent(),
			row.Proactive.IdleLogicalPercent(),
			row.Proactive.IdlePrewarmCorrectPercent(),
			row.Proactive.IdlePrewarmWrongPercent())
	}
	return b.String()
}

// CSV renders Figure 6.
func (r *Fig6Result) CSV() string { return comparisonsCSV("region", r.Rows) }

// CSV renders Figure 7.
func (r *Fig7Result) CSV() string { return comparisonsCSV("day", r.Rows) }

// CSV renders a knob sweep (Figures 8, 9, and the ablations).
func (r *SweepResult) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s,qos,idle,idle_correct,idle_wrong\n", strings.ReplaceAll(r.Knob, " ", "_"))
	for i, p := range r.Points {
		fmt.Fprintf(&b, "%s,%.3f,%.4f,%.4f,%.4f\n",
			r.Labels[i], p.Report.QoSPercent(), p.Report.IdlePercent(),
			p.Report.IdlePrewarmCorrectPercent(), p.Report.IdlePrewarmWrongPercent())
	}
	return b.String()
}

// CSV renders the workflow-frequency boxes (Figures 11 and 12).
func workflowCSV(rows []WorkflowFrequencyRow) string {
	var b strings.Builder
	b.WriteString("period_min,policy,min,q1,median,q3,max,mean\n")
	for _, row := range rows {
		fmt.Fprintf(&b, "%d,proactive,%g,%g,%g,%g,%g,%g\n",
			row.PeriodMinutes, row.Proactive.Min, row.Proactive.Q1, row.Proactive.Median,
			row.Proactive.Q3, row.Proactive.Max, row.Proactive.Mean)
		fmt.Fprintf(&b, "%d,reactive,%g,%g,%g,%g,%g,%g\n",
			row.PeriodMinutes, row.Reactive.Min, row.Reactive.Q1, row.Reactive.Median,
			row.Reactive.Q3, row.Reactive.Max, row.Reactive.Mean)
	}
	return b.String()
}

// CSV renders Figure 11.
func (r *Fig11Result) CSV() string { return workflowCSV(r.Rows) }

// CSV renders Figure 12.
func (r *Fig12Result) CSV() string { return workflowCSV(r.Rows) }
