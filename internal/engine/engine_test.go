package engine

import (
	"testing"

	"prorp/internal/cluster"
	"prorp/internal/controlplane"
	"prorp/internal/metrics"
	"prorp/internal/policy"
	"prorp/internal/telemetry"
	"prorp/internal/workload"
)

const (
	day  = int64(86400)
	hour = int64(3600)
)

// twoSessionTrace builds a perfect two-session daily pattern (9:00-12:00,
// 15:00-17:00) over the horizon.
func twoSessionTrace(db int, days int) workload.Trace {
	var ivs []workload.Interval
	for d := 0; d < days; d++ {
		base := int64(d) * day
		ivs = append(ivs,
			workload.Interval{Start: base + 9*hour, End: base + 12*hour},
			workload.Interval{Start: base + 15*hour, End: base + 17*hour},
		)
	}
	return workload.Trace{DB: db, Birth: ivs[0].Start, Intervals: ivs}
}

func baseConfig(mode policy.Mode, days int) Config {
	return Config{
		Policy: func() policy.Config {
			c := policy.DefaultConfig()
			c.Mode = mode
			return c
		}(),
		ControlPlane: controlplane.DefaultConfig(),
		Cluster:      cluster.Config{Nodes: 4, NodeCapacity: 8, ResumeLatencySec: 45, MoveLatencySec: 120},
		From:         0,
		To:           int64(days) * day,
		EvalFrom:     int64(days-6) * day,
		Seed:         1,
	}
}

func TestValidate(t *testing.T) {
	good := baseConfig(policy.Proactive, 35)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.To = bad.From
	if err := bad.Validate(); err == nil {
		t.Error("empty horizon accepted")
	}
	bad = good
	bad.EvalFrom = bad.To
	if err := bad.Validate(); err == nil {
		t.Error("eval start at horizon end accepted")
	}
	bad = good
	bad.Policy.LogicalPauseSec = 0
	if err := bad.Validate(); err == nil {
		t.Error("invalid policy accepted")
	}
	bad = good
	bad.Cluster.Nodes = 0
	if err := bad.Validate(); err == nil {
		t.Error("invalid cluster accepted")
	}
}

func TestRunRejectsBadTraces(t *testing.T) {
	cfg := baseConfig(policy.Proactive, 35)
	if _, err := Run(cfg, []workload.Trace{{DB: 0}}); err == nil {
		t.Fatal("invalid trace accepted")
	}
	tr := twoSessionTrace(0, 35)
	tr.Birth = -day
	tr.Intervals[0].Start = -day
	// Fix validity but put birth outside the horizon.
	if _, err := Run(cfg, []workload.Trace{tr}); err == nil {
		t.Fatal("trace born outside horizon accepted")
	}
}

func TestPerfectDailyPatternProactive(t *testing.T) {
	cfg := baseConfig(policy.Proactive, 35)
	res, err := Run(cfg, []workload.Trace{twoSessionTrace(0, 35)})
	if err != nil {
		t.Fatal(err)
	}
	r := res.Report
	// Evaluation covers 6 steady-state days x 2 first-logins each. The
	// 9:00 login is served by a pre-warm, the 15:00 login by a logical
	// pause: everything warm.
	if r.WarmLogins != 12 || r.ColdLogins != 0 {
		t.Fatalf("logins warm/cold = %d/%d, want 12/0\n%s", r.WarmLogins, r.ColdLogins, r)
	}
	if r.QoSPercent() != 100 {
		t.Fatalf("QoS = %v, want 100", r.QoSPercent())
	}
	if r.Prewarms == 0 || r.PrewarmsUsed == 0 {
		t.Fatalf("prewarms = %d used = %d, want > 0\n%s", r.Prewarms, r.PrewarmsUsed, r)
	}
	if r.PrewarmsWasted != 0 {
		t.Fatalf("wasted prewarms = %d on a perfect pattern", r.PrewarmsWasted)
	}
	// The overnight span must be mostly saved.
	if r.SavedPercent() < 50 {
		t.Fatalf("saved = %.1f%%, want > 50%%\n%s", r.SavedPercent(), r)
	}
}

func TestPerfectDailyPatternReactive(t *testing.T) {
	cfg := baseConfig(policy.Reactive, 35)
	res, err := Run(cfg, []workload.Trace{twoSessionTrace(0, 35)})
	if err != nil {
		t.Fatal(err)
	}
	r := res.Report
	// The 15:00 login lands inside the 7 h logical pause (warm); the 9:00
	// login comes 16 h after the 17:00 logout, past the pause (cold).
	if r.WarmLogins != 6 || r.ColdLogins != 6 {
		t.Fatalf("logins warm/cold = %d/%d, want 6/6\n%s", r.WarmLogins, r.ColdLogins, r)
	}
	if r.Prewarms != 0 {
		t.Fatalf("reactive run produced %d prewarms", r.Prewarms)
	}
	// Logical-pause idle: 12:00-15:00 (3 h) and 17:00-24:00 (7 h) of every
	// 24 h = 10/24 ~= 41.7%.
	if got := r.IdleLogicalPercent(); got < 38 || got > 45 {
		t.Fatalf("idle-logical = %.1f%%, want ~41.7%%\n%s", got, r)
	}
}

func TestProactiveBeatsReactive(t *testing.T) {
	// The paper's headline (Figure 6): proactive raises QoS while reducing
	// logical-pause idleness, on a realistic mixed fleet.
	prof, _ := workload.Region("EU1")
	gen, _ := workload.NewGenerator(11, prof)
	traces := gen.Generate(120, 0, 35*day)

	pro, err := Run(baseConfig(policy.Proactive, 35), traces)
	if err != nil {
		t.Fatal(err)
	}
	rea, err := Run(baseConfig(policy.Reactive, 35), traces)
	if err != nil {
		t.Fatal(err)
	}
	if pro.Report.QoSPercent() <= rea.Report.QoSPercent() {
		t.Fatalf("proactive QoS %.1f%% <= reactive %.1f%%",
			pro.Report.QoSPercent(), rea.Report.QoSPercent())
	}
	if pro.Report.IdleLogicalPercent() >= rea.Report.IdleLogicalPercent() {
		t.Fatalf("proactive logical idle %.2f%% >= reactive %.2f%%",
			pro.Report.IdleLogicalPercent(), rea.Report.IdleLogicalPercent())
	}
}

func TestDeterminism(t *testing.T) {
	prof, _ := workload.Region("US1")
	gen1, _ := workload.NewGenerator(5, prof)
	gen2, _ := workload.NewGenerator(5, prof)
	traces1 := gen1.Generate(40, 0, 20*day)
	traces2 := gen2.Generate(40, 0, 20*day)

	cfg := baseConfig(policy.Proactive, 20)
	cfg.Policy.Predictor.HistoryDays = 7
	a, err := Run(cfg, traces1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, traces2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Report != b.Report {
		t.Fatalf("reports differ:\n%s\n%s", a.Report, b.Report)
	}
	if a.Telemetry.Len() != b.Telemetry.Len() {
		t.Fatalf("telemetry lengths differ: %d vs %d", a.Telemetry.Len(), b.Telemetry.Len())
	}
}

func TestTotalTimeInvariant(t *testing.T) {
	// Accounted time must cover exactly the evaluation window for every
	// database alive through it: no gaps, no double counting.
	prof, _ := workload.Region("EU2")
	gen, _ := workload.NewGenerator(3, prof)
	cfg := baseConfig(policy.Proactive, 20)
	cfg.Policy.Predictor.HistoryDays = 7
	traces := gen.Generate(60, 0, 20*day)

	res, err := Run(cfg, traces)
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for _, tr := range traces {
		aliveFrom := tr.Birth
		if aliveFrom < cfg.EvalFrom {
			aliveFrom = cfg.EvalFrom
		}
		want += cfg.To - aliveFrom
	}
	got := res.Report.TotalTime()
	if got != want {
		t.Fatalf("TotalTime = %d, want %d (diff %d)", got, want, got-want)
	}
}

func TestTelemetryConsistency(t *testing.T) {
	prof, _ := workload.Region("EU1")
	gen, _ := workload.NewGenerator(9, prof)
	cfg := baseConfig(policy.Proactive, 20)
	cfg.Policy.Predictor.HistoryDays = 7
	traces := gen.Generate(50, 0, 20*day)
	res, err := Run(cfg, traces)
	if err != nil {
		t.Fatal(err)
	}
	tel := res.Telemetry
	r := res.Report

	// Collector counters must match telemetry restricted to the window.
	if got := tel.CountRange(telemetry.ResumeWarm, cfg.EvalFrom, cfg.To-1); got != r.WarmLogins {
		t.Errorf("warm logins: telemetry %d vs report %d", got, r.WarmLogins)
	}
	if got := tel.CountRange(telemetry.ResumeCold, cfg.EvalFrom, cfg.To-1); got != r.ColdLogins {
		t.Errorf("cold logins: telemetry %d vs report %d", got, r.ColdLogins)
	}
	if got := tel.CountRange(telemetry.Prewarm, cfg.EvalFrom, cfg.To-1); got != r.Prewarms {
		t.Errorf("prewarms: telemetry %d vs report %d", got, r.Prewarms)
	}
	// Every prewarm eventually resolves used or wasted (or is pending at
	// the horizon).
	used := tel.Count(telemetry.PrewarmUsed)
	wasted := tel.Count(telemetry.PrewarmWasted)
	total := tel.Count(telemetry.Prewarm)
	if used+wasted > total {
		t.Errorf("prewarm outcomes %d+%d exceed prewarms %d", used, wasted, total)
	}
	// Activity starts equal activity ends or exceed them by at most the
	// databases still active at the horizon.
	starts := tel.Count(telemetry.ActivityStart)
	ends := tel.Count(telemetry.ActivityEnd)
	if starts < ends || starts-ends > len(traces) {
		t.Errorf("activity starts %d vs ends %d", starts, ends)
	}
}

func TestClusterConservationAfterRun(t *testing.T) {
	prof, _ := workload.Region("US2")
	gen, _ := workload.NewGenerator(4, prof)
	cfg := baseConfig(policy.Proactive, 15)
	cfg.Policy.Predictor.HistoryDays = 7
	traces := gen.Generate(50, 0, 15*day)
	res, err := Run(cfg, traces)
	if err != nil {
		t.Fatal(err)
	}
	st := res.ClusterStats
	if st.Allocations == 0 || st.Reclaims == 0 {
		t.Fatalf("no workflows ran: %+v", st)
	}
	if st.Allocations < st.Reclaims {
		t.Fatalf("more reclaims than allocations: %+v", st)
	}
}

func TestDisablePrewarm(t *testing.T) {
	cfg := baseConfig(policy.Proactive, 35)
	cfg.DisablePrewarm = true
	res, err := Run(cfg, []workload.Trace{twoSessionTrace(0, 35)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Prewarms != 0 {
		t.Fatalf("prewarms = %d with prewarm disabled", res.Report.Prewarms)
	}
	// Without Algorithm 5, the overnight 9:00 login goes cold.
	if res.Report.ColdLogins == 0 {
		t.Fatal("no cold logins despite disabled prewarm")
	}
}

func TestStuckWorkflowsMitigated(t *testing.T) {
	cfg := baseConfig(policy.Proactive, 20)
	cfg.Policy.Predictor.HistoryDays = 7
	cfg.Cluster.StuckProb = 0.3
	cfg.Cluster.StuckExtraSec = 900
	cfg.StuckSweepThresholdSec = 600
	prof, _ := workload.Region("EU1")
	gen, _ := workload.NewGenerator(2, prof)
	traces := gen.Generate(40, 0, 20*day)
	res, err := Run(cfg, traces)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mitigations == 0 {
		t.Fatal("no mitigations despite 30% stuck workflows")
	}
	if res.Telemetry.Count(telemetry.Mitigation) != res.Mitigations {
		t.Fatal("mitigation telemetry mismatch")
	}
}

func TestMachinesExposed(t *testing.T) {
	cfg := baseConfig(policy.Proactive, 35)
	res, err := Run(cfg, []workload.Trace{twoSessionTrace(0, 35)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Machines) != 1 {
		t.Fatalf("Machines = %d, want 1", len(res.Machines))
	}
	// 35 days of two sessions, trimmed to 28 days: ~112 tuples + marker.
	n := res.Machines[0].History().Len()
	if n < 100 || n > 130 {
		t.Fatalf("history tuples = %d, want ~113", n)
	}
}

func BenchmarkRegionDayProactive(b *testing.B) {
	prof, _ := workload.Region("EU1")
	cfg := baseConfig(policy.Proactive, 10)
	cfg.Policy.Predictor.HistoryDays = 7
	cfg.EvalFrom = 8 * day
	cfg.To = 10 * day
	for i := 0; i < b.N; i++ {
		gen, _ := workload.NewGenerator(int64(i), prof)
		traces := gen.Generate(50, 0, 10*day)
		if _, err := Run(cfg, traces); err != nil {
			b.Fatal(err)
		}
	}
}

func TestOfflineReplayMatchesOnlineReport(t *testing.T) {
	// The offline KPI path (metrics.ReplayTelemetry over the exported log)
	// must agree with the online collector: identical login counts, pause
	// counters, and idle decomposition. The only sanctioned difference is
	// that the log carries no workflow latencies, so online Unavailable
	// time shows up as Used offline.
	prof, _ := workload.Region("EU1")
	gen, _ := workload.NewGenerator(13, prof)
	cfg := baseConfig(policy.Proactive, 16)
	cfg.Policy.Predictor.HistoryDays = 7
	cfg.EvalFrom = 10 * day
	traces := gen.Generate(60, 0, 16*day)

	res, err := Run(cfg, traces)
	if err != nil {
		t.Fatal(err)
	}
	online := res.Report
	offline, err := metrics.ReplayTelemetry(res.Telemetry, cfg.EvalFrom, cfg.To)
	if err != nil {
		t.Fatal(err)
	}

	if offline.WarmLogins != online.WarmLogins || offline.ColdLogins != online.ColdLogins {
		t.Errorf("logins: offline %d/%d vs online %d/%d",
			offline.WarmLogins, offline.ColdLogins, online.WarmLogins, online.ColdLogins)
	}
	if offline.Prewarms != online.Prewarms ||
		offline.PrewarmsUsed != online.PrewarmsUsed ||
		offline.PrewarmsWasted != online.PrewarmsWasted {
		t.Errorf("prewarms: offline %d/%d/%d vs online %d/%d/%d",
			offline.Prewarms, offline.PrewarmsUsed, offline.PrewarmsWasted,
			online.Prewarms, online.PrewarmsUsed, online.PrewarmsWasted)
	}
	if offline.LogicalPauses != online.LogicalPauses ||
		offline.PhysicalPauses != online.PhysicalPauses {
		t.Errorf("pauses: offline %d/%d vs online %d/%d",
			offline.LogicalPauses, offline.PhysicalPauses,
			online.LogicalPauses, online.PhysicalPauses)
	}
	for _, cat := range []metrics.Category{
		metrics.IdleLogical, metrics.IdlePrewarmCorrect, metrics.IdlePrewarmWrong, metrics.Saved,
	} {
		if offline.Durations[cat] != online.Durations[cat] {
			t.Errorf("%v: offline %d vs online %d", cat, offline.Durations[cat], online.Durations[cat])
		}
	}
	if got, want := offline.Durations[metrics.Used],
		online.Durations[metrics.Used]+online.Durations[metrics.Unavailable]; got != want {
		t.Errorf("used: offline %d vs online used+unavailable %d", got, want)
	}
	if offline.TotalTime() != online.TotalTime() {
		t.Errorf("total: offline %d vs online %d", offline.TotalTime(), online.TotalTime())
	}
}

func TestEvalToWindows(t *testing.T) {
	// Per-day evaluation windows (the Figure 7 mechanism): the days must
	// tile the full window exactly.
	cfg := baseConfig(policy.Proactive, 35)
	trace := []workload.Trace{twoSessionTrace(0, 35)}

	full, err := Run(cfg, trace)
	if err != nil {
		t.Fatal(err)
	}
	var warmSum, coldSum int
	var usedSum int64
	for d := 0; d < 6; d++ {
		c := cfg
		c.EvalFrom = cfg.EvalFrom + int64(d)*day
		c.EvalTo = c.EvalFrom + day
		res, err := Run(c, trace)
		if err != nil {
			t.Fatal(err)
		}
		warmSum += res.Report.WarmLogins
		coldSum += res.Report.ColdLogins
		usedSum += res.Report.Durations[metrics.Used]
	}
	if warmSum != full.Report.WarmLogins || coldSum != full.Report.ColdLogins {
		t.Fatalf("per-day logins %d/%d != full-window %d/%d",
			warmSum, coldSum, full.Report.WarmLogins, full.Report.ColdLogins)
	}
	if usedSum != full.Report.Durations[metrics.Used] {
		t.Fatalf("per-day used %d != full-window %d", usedSum, full.Report.Durations[metrics.Used])
	}
}

func TestCapacityExhaustionSurvives(t *testing.T) {
	// A starved cluster (2 slots for 30 databases) forces allocation
	// failures; the engine's retry path must keep the run alive and the
	// invariants intact.
	prof, _ := workload.Region("EU1")
	gen, _ := workload.NewGenerator(8, prof)
	traces := gen.Generate(30, 0, 12*day)
	cfg := baseConfig(policy.Proactive, 12)
	cfg.Policy.Predictor.HistoryDays = 7
	cfg.EvalFrom = 8 * day
	cfg.Cluster = cluster.Config{Nodes: 1, NodeCapacity: 2, ResumeLatencySec: 45, MoveLatencySec: 120}

	res, err := Run(cfg, traces)
	if err != nil {
		t.Fatal(err)
	}
	if res.ClusterStats.PeakAllocated > 2 {
		t.Fatalf("peak allocated %d exceeds capacity 2", res.ClusterStats.PeakAllocated)
	}
	if res.Report.TotalTime() == 0 {
		t.Fatal("no time accounted")
	}
}

func TestTelemetryProtocolOrdering(t *testing.T) {
	// The offline replay relies on a per-database event protocol: the
	// first record is an activity-start, a resume event follows every
	// non-birth activity-start at the same timestamp, and pause decisions
	// follow activity ends.
	prof, _ := workload.Region("US2")
	gen, _ := workload.NewGenerator(6, prof)
	cfg := baseConfig(policy.Proactive, 14)
	cfg.Policy.Predictor.HistoryDays = 7
	cfg.EvalFrom = 8 * day
	traces := gen.Generate(40, 0, 14*day)
	res, err := Run(cfg, traces)
	if err != nil {
		t.Fatal(err)
	}
	born := map[int]bool{}
	lastStart := map[int]int64{}
	for _, r := range res.Telemetry.Records() {
		switch r.Kind {
		case telemetry.ActivityStart:
			if !born[r.DB] {
				born[r.DB] = true
			} else {
				lastStart[r.DB] = r.Time
			}
		case telemetry.ResumeWarm, telemetry.ResumeCold:
			if ts, ok := lastStart[r.DB]; !ok || ts != r.Time {
				t.Fatalf("resume for db %d at %d without matching activity-start", r.DB, r.Time)
			}
			delete(lastStart, r.DB)
		}
	}
	if len(lastStart) != 0 {
		t.Fatalf("%d activity-starts without resume events", len(lastStart))
	}
}

func TestOccupancyTracksCapacitySaving(t *testing.T) {
	// The paper's motivation: proactive pausing frees machines. The mean
	// number of simultaneously allocated databases must be lower under the
	// proactive policy than under the reactive baseline.
	prof, _ := workload.Region("EU1")
	gen, _ := workload.NewGenerator(14, prof)
	traces := gen.Generate(100, 0, 16*day)
	mk := func(mode policy.Mode) *Result {
		cfg := baseConfig(mode, 16)
		cfg.Policy.Predictor.HistoryDays = 7
		cfg.EvalFrom = 10 * day
		res, err := Run(cfg, traces)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	pro, rea := mk(policy.Proactive), mk(policy.Reactive)
	if pro.Occupancy.Count == 0 || rea.Occupancy.Count == 0 {
		t.Fatal("no occupancy samples")
	}
	if pro.Occupancy.Mean >= rea.Occupancy.Mean {
		t.Errorf("proactive mean occupancy %.1f >= reactive %.1f",
			pro.Occupancy.Mean, rea.Occupancy.Mean)
	}
	if pro.Occupancy.Max > float64(len(traces)) {
		t.Errorf("occupancy max %.0f exceeds fleet size", pro.Occupancy.Max)
	}
}
