// Package engine runs the region-scale discrete-event simulation that
// stands in for production: customer activity traces drive per-database
// policy machines (Algorithm 1), which drive cluster allocation workflows
// and the control plane (Algorithm 5), while telemetry and KPI metrics are
// collected exactly as Section 8 of the ProRP paper defines them.
//
// The engine is deterministic: the same configuration and traces produce
// the same result, byte for byte.
package engine

import (
	"fmt"

	"prorp/internal/cluster"
	"prorp/internal/controlplane"
	"prorp/internal/metrics"
	"prorp/internal/policy"
	"prorp/internal/simclock"
	"prorp/internal/stats"
	"prorp/internal/telemetry"
	"prorp/internal/workload"
)

// Event ordering at equal timestamps: the control plane pre-warms first
// (it runs k minutes ahead by design), then customer activity, then policy
// timers.
const (
	prioControlPlane = -1
	prioActivity     = 0
	prioTimer        = 1
	prioWorkflowDone = 2
)

// Config assembles one simulation run.
type Config struct {
	// Policy is the per-database policy (reactive baseline or proactive).
	Policy policy.Config
	// ControlPlane tunes Algorithm 5; ignored for the reactive policy.
	ControlPlane controlplane.Config
	// Cluster sizes the simulated region.
	Cluster cluster.Config
	// From/To bound the simulated horizon (epoch seconds).
	From, To int64
	// EvalFrom is where KPI measurement starts; the span before it is the
	// warm-up that builds database history. Must be in [From, To).
	EvalFrom int64
	// EvalTo is where KPI measurement ends; 0 means the horizon end. Used
	// by per-day evaluations (Figure 7).
	EvalTo int64
	// Seed feeds the cluster's stuck-workflow draws.
	Seed int64
	// DisablePrewarm turns off the proactive resume operation while
	// keeping proactive pauses — the ablation isolating Algorithm 5's
	// contribution.
	DisablePrewarm bool
	// StuckSweepThresholdSec is how old an in-flight workflow must be for
	// the diagnostics runner to mitigate it (default 600 s).
	StuckSweepThresholdSec int64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Policy.Validate(); err != nil {
		return err
	}
	if err := c.Cluster.Validate(); err != nil {
		return err
	}
	if c.Policy.Mode == policy.Proactive {
		if err := c.ControlPlane.Validate(); err != nil {
			return err
		}
	}
	if c.To <= c.From {
		return fmt.Errorf("engine: horizon [%d,%d) empty", c.From, c.To)
	}
	if c.EvalFrom < c.From || c.EvalFrom >= c.To {
		return fmt.Errorf("engine: eval start %d outside horizon [%d,%d)", c.EvalFrom, c.From, c.To)
	}
	if c.EvalTo != 0 && (c.EvalTo <= c.EvalFrom || c.EvalTo > c.To) {
		return fmt.Errorf("engine: eval end %d outside (%d,%d]", c.EvalTo, c.EvalFrom, c.To)
	}
	return nil
}

// evalTo resolves the effective evaluation end.
func (c Config) evalTo() int64 {
	if c.EvalTo != 0 {
		return c.EvalTo
	}
	return c.To
}

// Result is everything one run produces.
type Result struct {
	Report       metrics.Report
	Telemetry    *telemetry.Log
	ClusterStats cluster.Stats
	Mitigations  int
	// Machines are the per-database policy machines after the run; the
	// Figure 10 harness inspects their history stores.
	Machines []*policy.Machine
	// Occupancy is the distribution of simultaneously allocated databases,
	// sampled every 5 minutes over the evaluation window. Its mean and
	// peak quantify the paper's capacity claim: fewer concurrently
	// allocated databases means fewer physical machines provisioned.
	Occupancy stats.Summary
}

// dbRuntime is the engine-side state of one database.
type dbRuntime struct {
	id      int
	machine *policy.Machine
	trace   workload.Trace
	nextIvl int // index of the next interval to start

	timer *simclock.Event

	// Accounting: the open time segment since lastAccounted. When
	// prewarmPending, the segment's category is decided at close time
	// (correct vs wrong proactive resume).
	cur            metrics.Category
	prewarmPending bool
	lastAccounted  int64
}

type sim struct {
	cfg    Config
	clock  simclock.Queue
	dbs    []*dbRuntime
	meta   *controlplane.MetadataStore
	runner *controlplane.Runner
	clus   *cluster.Cluster
	tel    *telemetry.Log
	coll   *metrics.Collector

	occupancy []float64
}

// Run executes the simulation over the traces and returns the collected
// result.
func Run(cfg Config, traces []workload.Trace) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	for i := range traces {
		if err := traces[i].Validate(); err != nil {
			return nil, err
		}
	}
	clus, err := cluster.New(cfg.Cluster, cfg.Seed)
	if err != nil {
		return nil, err
	}
	coll, err := metrics.NewCollector(cfg.EvalFrom, cfg.evalTo())
	if err != nil {
		return nil, err
	}
	threshold := cfg.StuckSweepThresholdSec
	if threshold == 0 {
		threshold = 600
	}
	s := &sim{
		cfg:    cfg,
		meta:   controlplane.NewMetadataStore(),
		runner: controlplane.NewRunner(threshold),
		clus:   clus,
		tel:    telemetry.New(),
		coll:   coll,
	}

	for _, tr := range traces {
		if tr.Birth < cfg.From || tr.Birth >= cfg.To {
			return nil, fmt.Errorf("engine: trace %d born at %d outside horizon", tr.DB, tr.Birth)
		}
		rt := &dbRuntime{id: tr.DB, trace: tr}
		s.dbs = append(s.dbs, rt)
		birth := tr.Birth
		s.clock.ScheduleWithPriority(birth, prioActivity, func(now int64) { s.onBirth(rt, now) })
	}

	if cfg.Policy.Mode == policy.Proactive && !cfg.DisablePrewarm {
		s.clock.ScheduleWithPriority(cfg.From+cfg.ControlPlane.OpPeriodSec, prioControlPlane, s.onControlPlaneOp)
	}
	s.clock.ScheduleWithPriority(cfg.EvalFrom, prioControlPlane, s.onOccupancySample)

	s.clock.RunUntil(cfg.To)

	// Close every open segment at the horizon end.
	for _, rt := range s.dbs {
		if rt.machine != nil {
			s.closeSegment(rt, cfg.To)
		}
	}

	report := coll.Report()
	machines := make([]*policy.Machine, 0, len(s.dbs))
	for _, rt := range s.dbs {
		if rt.machine != nil {
			machines = append(machines, rt.machine)
		}
	}
	return &Result{
		Report:       report,
		Telemetry:    s.tel,
		ClusterStats: clus.Stats(),
		Mitigations:  s.runner.Mitigations,
		Machines:     machines,
		Occupancy:    stats.Summarize(s.occupancy),
	}, nil
}

// closeSegment accounts the open segment of rt up to `to`. For a pending
// prewarm the category is still undecided; callers that know the outcome
// use closePrewarmAs instead.
func (s *sim) closeSegment(rt *dbRuntime, to int64) {
	cat := rt.cur
	if rt.prewarmPending {
		// Horizon end or unexpected close: count an undecided prewarm as
		// correct-idle (it was serving a prediction that may yet land).
		cat = metrics.IdlePrewarmCorrect
	}
	if to > rt.lastAccounted {
		s.coll.AddSegment(cat, rt.lastAccounted, to)
		rt.lastAccounted = to
	}
}

// closePrewarmAs closes a pending-prewarm segment with the decided outcome.
func (s *sim) closePrewarmAs(rt *dbRuntime, cat metrics.Category, to int64) {
	if to > rt.lastAccounted {
		s.coll.AddSegment(cat, rt.lastAccounted, to)
		rt.lastAccounted = to
	}
	rt.prewarmPending = false
}

func (s *sim) open(rt *dbRuntime, cat metrics.Category) {
	rt.cur = cat
	rt.prewarmPending = false
}

// onBirth creates the database: machine construction, first allocation,
// and the end-of-first-activity event.
func (s *sim) onBirth(rt *dbRuntime, now int64) {
	m, err := policy.New(s.cfg.Policy, now)
	if err != nil {
		// Config was validated up front; a failure here is a bug.
		panic(err)
	}
	rt.machine = m
	rt.lastAccounted = now
	s.open(rt, metrics.Used)
	s.tel.Append(telemetry.Record{Time: now, DB: rt.id, Kind: telemetry.ActivityStart})
	s.allocate(rt, now)

	end := rt.trace.Intervals[0].End
	rt.nextIvl = 1
	s.clock.ScheduleWithPriority(end, prioActivity, func(t int64) { s.onActivityEnd(rt, t) })
}

// allocate runs a resource allocation workflow and returns its latency.
// Allocation of an already-allocated database costs nothing (logical
// pauses keep resources warm).
func (s *sim) allocate(rt *dbRuntime, now int64) int64 {
	res, err := s.clus.Allocate(rt.id)
	if err != nil {
		// Region out of capacity: the workflow queues and retries; the
		// customer sees an extended delay. Modelled as a fixed penalty
		// plus forced success after the penalty via a scheduled retry.
		penalty := 4 * s.cfg.Cluster.ResumeLatencySec
		s.clock.ScheduleWithPriority(now+penalty, prioWorkflowDone, func(t int64) {
			if res2, err2 := s.clus.Allocate(rt.id); err2 == nil {
				_ = res2
				s.runner.WorkflowFinished(rt.id)
			}
		})
		s.runner.WorkflowStarted(rt.id, now, "resume")
		return penalty
	}
	if res.LatencySec == 0 {
		return 0 // already allocated
	}
	s.tel.Append(telemetry.Record{Time: now, DB: rt.id, Kind: telemetry.WorkflowAllocate})
	if res.Moved {
		s.tel.Append(telemetry.Record{Time: now, DB: rt.id, Kind: telemetry.DatabaseMoved})
	}
	s.runner.WorkflowStarted(rt.id, now, "resume")
	done := now + res.LatencySec
	s.clock.ScheduleWithPriority(done, prioWorkflowDone, func(t int64) {
		s.runner.WorkflowFinished(rt.id)
	})
	return res.LatencySec
}

// applyEffects performs the environment side of a policy decision.
func (s *sim) applyEffects(rt *dbRuntime, eff policy.Effects, now int64) {
	// Timer reconciliation: Effects carries the complete desired state.
	if rt.timer != nil {
		s.clock.Cancel(rt.timer)
		rt.timer = nil
	}
	if eff.TimerAt > 0 {
		at := eff.TimerAt
		if at < now {
			at = now
		}
		rt.timer = s.clock.ScheduleWithPriority(at, prioTimer, func(t int64) { s.onTimer(rt, t) })
	}

	if eff.Reclaim {
		s.clus.Release(rt.id)
		s.tel.Append(telemetry.Record{Time: now, DB: rt.id, Kind: telemetry.WorkflowReclaim})
	}
	if eff.MetadataSet {
		s.meta.SetPaused(rt.id, eff.MetadataStart)
	} else if eff.Transition == policy.TransPhysicalPause {
		// Reactive physical pause: tracked with no prediction.
		s.meta.SetPaused(rt.id, 0)
	}
}

func (s *sim) onActivityStart(rt *dbRuntime, now int64) {
	eff := rt.machine.OnActivityStart(now)
	s.tel.Append(telemetry.Record{Time: now, DB: rt.id, Kind: telemetry.ActivityStart})

	switch eff.Transition {
	case policy.TransResumeWarm:
		s.coll.LoginWarm(now)
		s.tel.Append(telemetry.Record{Time: now, DB: rt.id, Kind: telemetry.ResumeWarm})
		if eff.FromPrewarm {
			s.coll.PrewarmUsed(now)
			s.tel.Append(telemetry.Record{Time: now, DB: rt.id, Kind: telemetry.PrewarmUsed})
			s.closePrewarmAs(rt, metrics.IdlePrewarmCorrect, now)
		} else {
			s.closeSegment(rt, now)
		}
		s.open(rt, metrics.Used)
	case policy.TransResumeCold:
		s.coll.LoginCold(now)
		s.tel.Append(telemetry.Record{Time: now, DB: rt.id, Kind: telemetry.ResumeCold})
		s.meta.ClearPaused(rt.id)
		s.closeSegment(rt, now) // Saved until the demand arrived
		lat := s.allocate(rt, now)
		// The customer waits for the allocation workflow.
		if lat > 0 {
			s.coll.AddSegment(metrics.Unavailable, now, now+lat)
			rt.lastAccounted = now + lat
		}
		s.open(rt, metrics.Used)
	}
	s.applyEffects(rt, eff, now)

	// Schedule the end of this activity interval.
	end := rt.trace.Intervals[rt.nextIvl-1].End
	s.clock.ScheduleWithPriority(end, prioActivity, func(t int64) { s.onActivityEnd(rt, t) })
}

func (s *sim) onActivityEnd(rt *dbRuntime, now int64) {
	eff := rt.machine.OnActivityEnd(now)
	s.tel.Append(telemetry.Record{Time: now, DB: rt.id, Kind: telemetry.ActivityEnd})
	s.closeSegment(rt, now) // Used until here
	s.dispatchPause(rt, eff, now)
	s.applyEffects(rt, eff, now)

	// Schedule the next activity interval, if any.
	if rt.nextIvl < len(rt.trace.Intervals) {
		iv := rt.trace.Intervals[rt.nextIvl]
		rt.nextIvl++
		s.clock.ScheduleWithPriority(iv.Start, prioActivity, func(t int64) { s.onActivityStart(rt, t) })
	}
}

// dispatchPause handles the shared bookkeeping of a pause decision.
func (s *sim) dispatchPause(rt *dbRuntime, eff policy.Effects, now int64) {
	switch eff.Transition {
	case policy.TransLogicalPause:
		s.coll.LogicalPause(now)
		s.tel.Append(telemetry.Record{Time: now, DB: rt.id, Kind: telemetry.LogicalPause})
		s.open(rt, metrics.IdleLogical)
	case policy.TransPhysicalPause:
		s.coll.PhysicalPause(now)
		s.tel.Append(telemetry.Record{Time: now, DB: rt.id, Kind: telemetry.PhysicalPause})
		if eff.FromPrewarm {
			s.coll.PrewarmWasted(now)
			s.tel.Append(telemetry.Record{Time: now, DB: rt.id, Kind: telemetry.PrewarmWasted})
			s.closePrewarmAs(rt, metrics.IdlePrewarmWrong, now)
		} else {
			s.closeSegment(rt, now)
		}
		s.open(rt, metrics.Saved)
	}
}

func (s *sim) onTimer(rt *dbRuntime, now int64) {
	rt.timer = nil
	eff := rt.machine.OnTimer(now)
	s.dispatchPause(rt, eff, now)
	s.applyEffects(rt, eff, now)
}

// onControlPlaneOp is one iteration of the proactive resume operation
// (Algorithm 5) plus the diagnostics sweep.
func (s *sim) onControlPlaneOp(now int64) {
	due := s.meta.ResumeOp(s.cfg.ControlPlane, now)
	for _, id := range due {
		rt := s.findDB(id)
		if rt == nil || rt.machine == nil {
			continue
		}
		eff := rt.machine.OnPrewarm(now)
		if eff.Transition != policy.TransPrewarm {
			continue // stale entry; database already moved on
		}
		s.coll.Prewarm(now)
		s.tel.Append(telemetry.Record{Time: now, DB: rt.id, Kind: telemetry.Prewarm})
		s.closeSegment(rt, now) // Saved until the prewarm
		s.allocate(rt, now)
		s.open(rt, metrics.IdleLogical)
		rt.prewarmPending = true
		s.applyEffects(rt, eff, now)
	}

	for _, db := range s.runner.Sweep(now) {
		s.tel.Append(telemetry.Record{Time: now, DB: db, Kind: telemetry.Mitigation})
	}

	next := now + s.cfg.ControlPlane.OpPeriodSec
	if next < s.cfg.To {
		s.clock.ScheduleWithPriority(next, prioControlPlane, s.onControlPlaneOp)
	}
}

// onOccupancySample records how many databases hold resources right now;
// it reschedules itself every 5 minutes through the evaluation window.
func (s *sim) onOccupancySample(now int64) {
	if now >= s.cfg.evalTo() {
		return
	}
	s.occupancy = append(s.occupancy, float64(s.clus.AllocatedCount()))
	if next := now + 300; next < s.cfg.evalTo() {
		s.clock.ScheduleWithPriority(next, prioControlPlane, s.onOccupancySample)
	}
}

func (s *sim) findDB(id int) *dbRuntime {
	// Database ids are dense indexes assigned by the workload generator.
	if id >= 0 && id < len(s.dbs) && s.dbs[id].id == id {
		return s.dbs[id]
	}
	for _, rt := range s.dbs {
		if rt.id == id {
			return rt
		}
	}
	return nil
}
