package training

import (
	"strings"
	"testing"
)

func TestSensitivityRanksKnobs(t *testing.T) {
	p := pipelineForTest(t, 50)
	impacts, err := p.Sensitivity(SensitivityRange{
		WindowHours: []int{1, 7},
		Confidences: []float64{0.1, 0.8},
		HistoryDays: []int{5, 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	// window, confidence, history, seasonality.
	if len(impacts) != 4 {
		t.Fatalf("impacts = %d, want 4", len(impacts))
	}
	for i := 1; i < len(impacts); i++ {
		if impacts[i].Spread > impacts[i-1].Spread {
			t.Fatalf("not sorted by spread: %v", impacts)
		}
	}
	// Figure 9 makes confidence the dominant knob; it must not rank last.
	if impacts[len(impacts)-1].Knob == "confidence" {
		t.Errorf("confidence ranked least impactful: %+v", impacts)
	}
	for _, imp := range impacts {
		if imp.Spread < 0 || imp.QoSSpread < 0 || imp.IdleSpread < 0 {
			t.Errorf("negative spread: %+v", imp)
		}
		if len(imp.Points) != len(imp.Labels) {
			t.Errorf("%s: %d points, %d labels", imp.Knob, len(imp.Points), len(imp.Labels))
		}
	}
	out := RenderSensitivity(impacts)
	for _, want := range []string{"knob", "confidence", "window", "seasonality"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestSensitivitySkipsOversizedHistory(t *testing.T) {
	p := pipelineForTest(t, 20) // warm-up is 9 days
	impacts, err := p.Sensitivity(SensitivityRange{
		WindowHours: []int{7},
		Confidences: []float64{0.1},
		HistoryDays: []int{60, 90}, // both exceed the warm-up: skipped
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, imp := range impacts {
		if imp.Knob == "history" {
			t.Fatal("oversized history sweep not skipped")
		}
	}
}

func TestSensitivityDefaultsApplied(t *testing.T) {
	def := DefaultSensitivityRanges()
	if len(def.WindowHours) == 0 || len(def.Confidences) == 0 || len(def.HistoryDays) == 0 {
		t.Fatal("default ranges empty")
	}
}

func TestImpactEmptyPoints(t *testing.T) {
	p := pipelineForTest(t, 10)
	imp := p.impact("x", nil, nil)
	if imp.Spread != 0 {
		t.Fatal("empty impact has spread")
	}
}
