// Package training implements the offline training pipeline of Section 8
// of the ProRP paper: it re-evaluates the proactive policy over long-term
// telemetry while varying the tunable knobs (window size, confidence
// threshold, history length, seasonality), computes the KPI metrics for
// each configuration, and selects the one with the best middle ground
// between quality of service and operational cost efficiency.
//
// In production this runs on Azure ML over tens of terabytes of Cosmos
// telemetry once per region per month; here it replays the same simulation
// traces through the engine, which exercises the identical decision logic.
package training

import (
	"fmt"
	"sort"

	"prorp/internal/engine"
	"prorp/internal/metrics"
	"prorp/internal/policy"
	"prorp/internal/predictor"
	"prorp/internal/workload"
)

// Point is one evaluated configuration.
type Point struct {
	WindowSec   int64
	Confidence  float64
	HistoryDays int
	Seasonality predictor.Seasonality
	Report      metrics.Report
}

// Score is the tuning objective: quality of service minus a weighted idle
// penalty. The paper "prioritizes quality of service over operational
// costs" (Section 9.2), which a small weight encodes.
func (p Point) Score(idleWeight float64) float64 {
	return p.Report.QoSPercent() - idleWeight*p.Report.IdlePercent()
}

// Pipeline evaluates knob settings against a fixed trace set.
type Pipeline struct {
	// Base is the engine configuration template; its policy must be
	// proactive. Each evaluation clones it and overrides knobs.
	Base engine.Config
	// Traces is the training workload.
	Traces []workload.Trace
	// IdleWeight is the idle penalty of the score (default 1.0).
	IdleWeight float64
}

// New returns a pipeline, validating the template.
func New(base engine.Config, traces []workload.Trace) (*Pipeline, error) {
	if base.Policy.Mode != policy.Proactive {
		return nil, fmt.Errorf("training: pipeline needs a proactive base config")
	}
	if err := base.Validate(); err != nil {
		return nil, err
	}
	if len(traces) == 0 {
		return nil, fmt.Errorf("training: no traces")
	}
	return &Pipeline{Base: base, Traces: traces, IdleWeight: 1.0}, nil
}

// Evaluate runs one configuration produced by mutating the base policy.
func (p *Pipeline) Evaluate(mutate func(*policy.Config)) (Point, error) {
	cfg := p.Base
	mutate(&cfg.Policy)
	if err := cfg.Policy.Validate(); err != nil {
		return Point{}, err
	}
	res, err := engine.Run(cfg, p.Traces)
	if err != nil {
		return Point{}, err
	}
	return Point{
		WindowSec:   cfg.Policy.Predictor.WindowSec,
		Confidence:  cfg.Policy.Predictor.Confidence,
		HistoryDays: cfg.Policy.Predictor.HistoryDays,
		Seasonality: cfg.Policy.Predictor.Seasonality,
		Report:      res.Report,
	}, nil
}

// SweepWindow evaluates the window sizes (in hours): the Figure 8 sweep.
func (p *Pipeline) SweepWindow(hours []int) ([]Point, error) {
	var out []Point
	for _, h := range hours {
		h := h
		pt, err := p.Evaluate(func(c *policy.Config) {
			c.Predictor.WindowSec = int64(h) * 3600
		})
		if err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	return out, nil
}

// SweepConfidence evaluates the thresholds: the Figure 9 sweep.
func (p *Pipeline) SweepConfidence(cs []float64) ([]Point, error) {
	var out []Point
	for _, c := range cs {
		c := c
		pt, err := p.Evaluate(func(pc *policy.Config) {
			pc.Predictor.Confidence = c
		})
		if err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	return out, nil
}

// SweepHistory evaluates history lengths in days (the ablation the paper
// describes but does not chart).
func (p *Pipeline) SweepHistory(days []int) ([]Point, error) {
	var out []Point
	for _, d := range days {
		d := d
		pt, err := p.Evaluate(func(c *policy.Config) {
			c.Predictor.HistoryDays = d
		})
		if err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	return out, nil
}

// SweepSeasonality evaluates daily versus weekly pattern detection.
func (p *Pipeline) SweepSeasonality() ([]Point, error) {
	var out []Point
	for _, s := range []predictor.Seasonality{predictor.Daily, predictor.Weekly} {
		s := s
		pt, err := p.Evaluate(func(c *policy.Config) {
			c.Predictor.Seasonality = s
		})
		if err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	return out, nil
}

// Grid evaluates the cross product of windows (hours) and confidences, the
// monthly re-training job.
func (p *Pipeline) Grid(windowHours []int, confidences []float64) ([]Point, error) {
	var out []Point
	for _, w := range windowHours {
		for _, c := range confidences {
			w, c := w, c
			pt, err := p.Evaluate(func(pc *policy.Config) {
				pc.Predictor.WindowSec = int64(w) * 3600
				pc.Predictor.Confidence = c
			})
			if err != nil {
				return nil, err
			}
			out = append(out, pt)
		}
	}
	return out, nil
}

// Best returns the highest-scoring point; ties break toward lower idle
// time, then lower window (cheaper predictions). It panics on empty input.
func (p *Pipeline) Best(points []Point) Point {
	if len(points) == 0 {
		panic("training: Best of no points")
	}
	sorted := append([]Point(nil), points...)
	sort.SliceStable(sorted, func(i, j int) bool {
		si, sj := sorted[i].Score(p.IdleWeight), sorted[j].Score(p.IdleWeight)
		if si != sj {
			return si > sj
		}
		if ii, ij := sorted[i].Report.IdlePercent(), sorted[j].Report.IdlePercent(); ii != ij {
			return ii < ij
		}
		return sorted[i].WindowSec < sorted[j].WindowSec
	})
	return sorted[0]
}
