package training

import (
	"strings"
	"testing"
)

func monthlyBase() MonthlyConfig {
	return MonthlyConfig{
		Region:      "EU1",
		Databases:   60,
		PeriodDays:  3,
		Periods:     2,
		HistoryDays: 5,
		Seed:        31,
		WindowHours: []int{4, 7},
		Confidences: []float64{0.1, 0.4},
	}
}

func TestMonthlyConfigValidate(t *testing.T) {
	if err := monthlyBase().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := monthlyBase()
	bad.Databases = 0
	if bad.Validate() == nil {
		t.Error("zero databases accepted")
	}
	bad = monthlyBase()
	bad.WindowHours = nil
	if bad.Validate() == nil {
		t.Error("empty grid accepted")
	}
	bad = monthlyBase()
	bad.DriftAtPeriod = 5
	if bad.Validate() == nil {
		t.Error("drift beyond periods accepted")
	}
}

func TestMonthlyLoopRuns(t *testing.T) {
	results, err := MonthlyLoop(monthlyBase())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("periods = %d, want 2", len(results))
	}
	// The first period runs the Table 1 defaults.
	if results[0].DeployedWindowSec != 7*3600 || results[0].DeployedConfidence != 0.1 {
		t.Fatalf("period 1 deployed %d/%v, want defaults",
			results[0].DeployedWindowSec, results[0].DeployedConfidence)
	}
	for _, r := range results {
		if r.Report.WarmLogins+r.Report.ColdLogins == 0 {
			t.Fatalf("period %d measured no logins", r.Period)
		}
	}
	// The final period never retrains (nothing follows it).
	if results[len(results)-1].Retrained {
		t.Error("last period retrained")
	}
	if !strings.Contains(RenderMonthly(results), "period") {
		t.Error("render broken")
	}
}

func TestMonthlyLoopDeploysGridKnobs(t *testing.T) {
	cfg := monthlyBase()
	cfg.Periods = 3
	results, err := MonthlyLoop(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// From period 2 on, the deployed knobs must come from the grid.
	inGrid := func(w int64, c float64) bool {
		okW, okC := false, false
		for _, h := range cfg.WindowHours {
			if int64(h)*3600 == w {
				okW = true
			}
		}
		for _, cc := range cfg.Confidences {
			if cc == c {
				okC = true
			}
		}
		return okW && okC
	}
	for _, r := range results[1:] {
		if !inGrid(r.DeployedWindowSec, r.DeployedConfidence) {
			t.Fatalf("period %d deployed knobs %d/%v not from the grid",
				r.Period, r.DeployedWindowSec/3600, r.DeployedConfidence)
		}
	}
}

func TestMonthlyLoopWithDrift(t *testing.T) {
	cfg := monthlyBase()
	cfg.Periods = 2
	cfg.DriftAtPeriod = 2
	cfg.DriftHours = 4
	results, err := MonthlyLoop(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Drift at period 2 must hurt: QoS in the drifted period falls below
	// the pre-drift period.
	if results[1].Report.QoSPercent() >= results[0].Report.QoSPercent() {
		t.Errorf("drift did not dent QoS: %.1f -> %.1f",
			results[0].Report.QoSPercent(), results[1].Report.QoSPercent())
	}
}

func TestMonthlyLoopRejectsInvalidConfig(t *testing.T) {
	results, err := MonthlyLoop(MonthlyConfig{})
	if err == nil || results != nil {
		t.Fatal("invalid config accepted")
	}
	bad := monthlyBase()
	bad.Region = "NOPE"
	if _, err := MonthlyLoop(bad); err == nil {
		t.Fatal("unknown region accepted")
	}
}
