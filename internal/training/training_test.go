package training

import (
	"testing"

	"prorp/internal/cluster"
	"prorp/internal/controlplane"
	"prorp/internal/engine"
	"prorp/internal/metrics"
	"prorp/internal/policy"
	"prorp/internal/predictor"
	"prorp/internal/workload"
)

const day = int64(86400)

func pipelineForTest(t *testing.T, n int) *Pipeline {
	t.Helper()
	prof, err := workload.Region("EU1")
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewGenerator(21, prof)
	if err != nil {
		t.Fatal(err)
	}
	traces := gen.Generate(n, 0, 12*day)
	cfg := engine.Config{
		Policy: func() policy.Config {
			c := policy.DefaultConfig()
			c.Predictor.HistoryDays = 7
			return c
		}(),
		ControlPlane: controlplane.DefaultConfig(),
		Cluster:      cluster.DefaultConfig(n),
		From:         0, To: 12 * day, EvalFrom: 9 * day, Seed: 1,
	}
	p, err := New(cfg, traces)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewRejectsBadInput(t *testing.T) {
	prof, _ := workload.Region("EU1")
	gen, _ := workload.NewGenerator(1, prof)
	traces := gen.Generate(5, 0, 10*day)
	reactive := engine.Config{
		Policy:  policy.Config{Mode: policy.Reactive, LogicalPauseSec: 3600},
		Cluster: cluster.DefaultConfig(5),
		From:    0, To: 10 * day, EvalFrom: 5 * day,
	}
	if _, err := New(reactive, traces); err == nil {
		t.Error("reactive base accepted")
	}
	good := engine.Config{
		Policy:       policy.DefaultConfig(),
		ControlPlane: controlplane.DefaultConfig(),
		Cluster:      cluster.DefaultConfig(5),
		From:         0, To: 10 * day, EvalFrom: 5 * day,
	}
	if _, err := New(good, nil); err == nil {
		t.Error("empty traces accepted")
	}
	bad := good
	bad.To = 0
	if _, err := New(bad, traces); err == nil {
		t.Error("invalid engine config accepted")
	}
}

func TestEvaluateRejectsInvalidMutation(t *testing.T) {
	p := pipelineForTest(t, 10)
	if _, err := p.Evaluate(func(c *policy.Config) { c.Predictor.Confidence = 7 }); err == nil {
		t.Fatal("invalid mutation accepted")
	}
}

func TestSweepWindowMonotoneDirection(t *testing.T) {
	// Figure 8's mechanism: wider windows raise QoS and idle time. With a
	// small sample we only require the endpoints to be ordered.
	p := pipelineForTest(t, 60)
	pts, err := p.SweepWindow([]int{1, 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].WindowSec != 3600 || pts[1].WindowSec != 7*3600 {
		t.Fatalf("window order wrong: %v", pts)
	}
	if pts[1].Report.QoSPercent() < pts[0].Report.QoSPercent() {
		t.Errorf("QoS fell as window grew: %.1f -> %.1f",
			pts[0].Report.QoSPercent(), pts[1].Report.QoSPercent())
	}
}

func TestSweepConfidenceMonotoneDirection(t *testing.T) {
	// Figure 9's mechanism: higher thresholds lower both QoS and idle.
	p := pipelineForTest(t, 60)
	pts, err := p.SweepConfidence([]float64{0.1, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if pts[1].Report.QoSPercent() > pts[0].Report.QoSPercent() {
		t.Errorf("QoS rose with confidence: %.1f -> %.1f",
			pts[0].Report.QoSPercent(), pts[1].Report.QoSPercent())
	}
	if pts[1].Report.IdlePrewarmWrongPercent() > pts[0].Report.IdlePrewarmWrongPercent() {
		t.Errorf("wrong-prewarm idle rose with confidence")
	}
}

func TestSweepHistoryAndSeasonality(t *testing.T) {
	p := pipelineForTest(t, 30)
	hist, err := p.SweepHistory([]int{7, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 2 || hist[0].HistoryDays != 7 || hist[1].HistoryDays != 10 {
		t.Fatalf("history sweep = %+v", hist)
	}
	seas, err := p.SweepSeasonality()
	if err != nil {
		t.Fatal(err)
	}
	if len(seas) != 2 || seas[0].Seasonality != predictor.Daily || seas[1].Seasonality != predictor.Weekly {
		t.Fatalf("seasonality sweep = %+v", seas)
	}
}

func TestGrid(t *testing.T) {
	p := pipelineForTest(t, 20)
	pts, err := p.Grid([]int{3, 7}, []float64{0.1, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("grid points = %d, want 4", len(pts))
	}
}

func TestBestPrefersHighScore(t *testing.T) {
	p := pipelineForTest(t, 10)
	mk := func(qos, idle float64) metrics.Report {
		var r metrics.Report
		r.WarmLogins = int(qos * 10)
		r.ColdLogins = 1000 - r.WarmLogins
		r.Durations[metrics.IdleLogical] = int64(idle * 100)
		r.Durations[metrics.Saved] = 10000 - r.Durations[metrics.IdleLogical]
		return r
	}
	pts := []Point{
		{WindowSec: 1 * 3600, Report: mk(70, 3)},
		{WindowSec: 7 * 3600, Report: mk(88, 6)},
		{WindowSec: 8 * 3600, Report: mk(87, 8)},
	}
	best := p.Best(pts)
	if best.WindowSec != 7*3600 {
		t.Fatalf("Best picked window %d h, want 7", best.WindowSec/3600)
	}
}

func TestBestTieBreaksOnIdleThenWindow(t *testing.T) {
	p := pipelineForTest(t, 10)
	var same metrics.Report
	same.WarmLogins = 10
	pts := []Point{
		{WindowSec: 8 * 3600, Report: same},
		{WindowSec: 2 * 3600, Report: same},
	}
	if got := p.Best(pts); got.WindowSec != 2*3600 {
		t.Fatalf("tie break picked %d h, want 2", got.WindowSec/3600)
	}
}

func TestBestPanicsOnEmpty(t *testing.T) {
	p := pipelineForTest(t, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("Best of empty did not panic")
		}
	}()
	p.Best(nil)
}

func TestScore(t *testing.T) {
	var r metrics.Report
	r.WarmLogins = 9
	r.ColdLogins = 1
	r.Durations[metrics.IdleLogical] = 10
	r.Durations[metrics.Saved] = 90
	pt := Point{Report: r}
	// QoS 90%, idle 10%: score at weight 1 = 80, at weight 2 = 70.
	if got := pt.Score(1); got != 80 {
		t.Fatalf("Score(1) = %v", got)
	}
	if got := pt.Score(2); got != 70 {
		t.Fatalf("Score(2) = %v", got)
	}
}
