package training

import (
	"fmt"
	"strings"

	"prorp/internal/cluster"
	"prorp/internal/controlplane"
	"prorp/internal/engine"
	"prorp/internal/metrics"
	"prorp/internal/policy"
	"prorp/internal/workload"
)

const daySec = int64(86400)

// MonthlyConfig drives MonthlyLoop, the production cadence of Section 8:
// one training run per region per period ("month"). Each period the fleet
// runs under the currently deployed knobs; afterwards the pipeline
// re-evaluates the grid over that period's workload and deploys the best
// configuration for the next period. Data drift between periods is what
// makes the loop earn its keep.
type MonthlyConfig struct {
	// Region selects the workload profile.
	Region string
	// Databases is the fleet size.
	Databases int
	// PeriodDays is the deployment/retraining period (a production month;
	// shorter here keeps tests fast).
	PeriodDays int
	// Periods is how many periods to run.
	Periods int
	// HistoryDays is h; the warm-up before the first period covers it.
	HistoryDays int
	// Seed fixes the workload.
	Seed int64
	// DriftAtPeriod shifts workload phases by DriftHours at the start of
	// the given period (1-based; 0 = no drift).
	DriftAtPeriod int
	DriftHours    int
	// WindowHours and Confidences form the retraining grid.
	WindowHours []int
	Confidences []float64
	// IdleWeight scores the grid (default 1 when zero).
	IdleWeight float64
}

// Validate checks the loop configuration.
func (c MonthlyConfig) Validate() error {
	if c.Databases <= 0 || c.PeriodDays <= 0 || c.Periods <= 0 || c.HistoryDays <= 0 {
		return fmt.Errorf("training: non-positive monthly-loop dimension")
	}
	if len(c.WindowHours) == 0 || len(c.Confidences) == 0 {
		return fmt.Errorf("training: empty retraining grid")
	}
	if c.DriftAtPeriod < 0 || c.DriftAtPeriod > c.Periods {
		return fmt.Errorf("training: drift period %d outside 0..%d", c.DriftAtPeriod, c.Periods)
	}
	return nil
}

// PeriodResult is one deployment period of the loop.
type PeriodResult struct {
	Period int
	// Deployed knobs that served the period.
	DeployedWindowSec  int64
	DeployedConfidence float64
	// Report is the period's measured KPI outcome under those knobs.
	Report metrics.Report
	// Retrained reports whether the pipeline changed the knobs for the
	// next period.
	Retrained bool
}

// MonthlyLoop runs the deploy-measure-retrain cycle and returns one result
// per period.
func MonthlyLoop(cfg MonthlyConfig) ([]PeriodResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	prof, err := workload.Region(cfg.Region)
	if err != nil {
		return nil, err
	}
	warmupDays := cfg.HistoryDays + 1
	if cfg.DriftAtPeriod > 0 {
		prof.DriftDay = warmupDays + (cfg.DriftAtPeriod-1)*cfg.PeriodDays
		prof.DriftSec = int64(cfg.DriftHours) * 3600
	}
	gen, err := workload.NewGenerator(cfg.Seed, prof)
	if err != nil {
		return nil, err
	}
	to := int64(warmupDays+cfg.Periods*cfg.PeriodDays) * daySec
	traces := gen.Generate(cfg.Databases, 0, to)

	idleWeight := cfg.IdleWeight
	if idleWeight == 0 {
		idleWeight = 1
	}

	pol := policy.DefaultConfig()
	pol.Predictor.HistoryDays = cfg.HistoryDays

	var out []PeriodResult
	for period := 1; period <= cfg.Periods; period++ {
		evalFrom := int64(warmupDays+(period-1)*cfg.PeriodDays) * daySec
		evalTo := evalFrom + int64(cfg.PeriodDays)*daySec

		base := engine.Config{
			Policy:       pol,
			ControlPlane: controlplane.DefaultConfig(),
			Cluster:      cluster.DefaultConfig(cfg.Databases),
			From:         0,
			EvalFrom:     evalFrom,
			EvalTo:       evalTo,
			To:           evalTo,
			Seed:         cfg.Seed,
		}

		// Measure the period under the deployed knobs.
		res, err := engine.Run(base, clipTraces(traces, evalTo))
		if err != nil {
			return nil, err
		}
		pr := PeriodResult{
			Period:             period,
			DeployedWindowSec:  pol.Predictor.WindowSec,
			DeployedConfidence: pol.Predictor.Confidence,
			Report:             res.Report,
		}

		// Retrain on the period just measured and deploy for the next.
		if period < cfg.Periods {
			pipe, err := New(base, clipTraces(traces, evalTo))
			if err != nil {
				return nil, err
			}
			pipe.IdleWeight = idleWeight
			grid, err := pipe.Grid(cfg.WindowHours, cfg.Confidences)
			if err != nil {
				return nil, err
			}
			best := pipe.Best(grid)
			if best.WindowSec != pol.Predictor.WindowSec || best.Confidence != pol.Predictor.Confidence {
				pol.Predictor.WindowSec = best.WindowSec
				pol.Predictor.Confidence = best.Confidence
				pr.Retrained = true
			}
		}
		out = append(out, pr)
	}
	return out, nil
}

// clipTraces bounds traces to [0, to) so each period's run does not
// simulate beyond its horizon.
func clipTraces(traces []workload.Trace, to int64) []workload.Trace {
	out := make([]workload.Trace, 0, len(traces))
	for _, tr := range traces {
		if tr.Birth >= to {
			continue
		}
		c := workload.Trace{DB: tr.DB, Pattern: tr.Pattern, Birth: tr.Birth}
		for _, iv := range tr.Intervals {
			if iv.Start >= to {
				break
			}
			if iv.End > to {
				iv.End = to
			}
			if iv.End > iv.Start {
				c.Intervals = append(c.Intervals, iv)
			}
		}
		if len(c.Intervals) > 0 {
			out = append(out, c)
		}
	}
	return out
}

// RenderMonthly formats the loop outcome.
func RenderMonthly(results []PeriodResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "monthly training loop\n")
	fmt.Fprintf(&b, "%8s %10s %12s %10s %10s %10s\n",
		"period", "window(h)", "confidence", "QoS", "idle", "retrained")
	for _, r := range results {
		fmt.Fprintf(&b, "%8d %10d %12.2f %9.1f%% %9.2f%% %10v\n",
			r.Period, r.DeployedWindowSec/3600, r.DeployedConfidence,
			r.Report.QoSPercent(), r.Report.IdlePercent(), r.Retrained)
	}
	return b.String()
}
