package training

import (
	"fmt"
	"sort"
	"strings"

	"prorp/internal/predictor"
)

// Knob-importance analysis: the second future-work direction of the paper
// (Section 11). The paper selects the knobs to tune by domain knowledge;
// this automates the selection with a one-at-a-time sensitivity sweep —
// vary each knob across its plausible range with everything else at the
// defaults, and rank knobs by how far the tuning objective moves. The
// most impactful knobs are the ones worth the monthly re-training budget.

// KnobImpact is the measured impact of one knob.
type KnobImpact struct {
	Knob string
	// Spread is the max-min score difference across the knob's range: the
	// leverage tuning this knob has.
	Spread float64
	// QoSSpread and IdleSpread decompose the leverage.
	QoSSpread  float64
	IdleSpread float64
	// Points are the evaluated settings.
	Points []Point
	// Labels name each point.
	Labels []string
}

// SensitivityRange bounds a one-at-a-time sweep. Zero-valued fields fall
// back to DefaultSensitivityRanges.
type SensitivityRange struct {
	WindowHours []int
	Confidences []float64
	HistoryDays []int
	// Seasonality is always swept over daily and weekly.
}

// DefaultSensitivityRanges covers the ranges the paper evaluates.
func DefaultSensitivityRanges() SensitivityRange {
	return SensitivityRange{
		WindowHours: []int{1, 4, 8},
		Confidences: []float64{0.1, 0.4, 0.8},
		HistoryDays: []int{7, 14, 28},
	}
}

// Sensitivity runs the one-at-a-time analysis and returns knobs ranked by
// descending leverage. HistoryDays values exceeding the pipeline's warm-up
// are skipped (the databases would never become "old").
func (p *Pipeline) Sensitivity(ranges SensitivityRange) ([]KnobImpact, error) {
	def := DefaultSensitivityRanges()
	if len(ranges.WindowHours) == 0 {
		ranges.WindowHours = def.WindowHours
	}
	if len(ranges.Confidences) == 0 {
		ranges.Confidences = def.Confidences
	}
	if len(ranges.HistoryDays) == 0 {
		ranges.HistoryDays = def.HistoryDays
	}
	maxHistory := int(p.Base.EvalFrom / 86400)
	var histories []int
	for _, d := range ranges.HistoryDays {
		if d < maxHistory {
			histories = append(histories, d)
		}
	}

	var impacts []KnobImpact

	winPts, err := p.SweepWindow(ranges.WindowHours)
	if err != nil {
		return nil, err
	}
	impacts = append(impacts, p.impact("window", winPts, intLabels(ranges.WindowHours, "%dh")))

	confPts, err := p.SweepConfidence(ranges.Confidences)
	if err != nil {
		return nil, err
	}
	confLabels := make([]string, len(ranges.Confidences))
	for i, c := range ranges.Confidences {
		confLabels[i] = fmt.Sprintf("%.1f", c)
	}
	impacts = append(impacts, p.impact("confidence", confPts, confLabels))

	if len(histories) >= 2 {
		histPts, err := p.SweepHistory(histories)
		if err != nil {
			return nil, err
		}
		impacts = append(impacts, p.impact("history", histPts, intLabels(histories, "%dd")))
	}

	seasPts, err := p.SweepSeasonality()
	if err != nil {
		return nil, err
	}
	impacts = append(impacts, p.impact("seasonality", seasPts,
		[]string{predictor.Daily.String(), predictor.Weekly.String()}))

	sort.SliceStable(impacts, func(i, j int) bool { return impacts[i].Spread > impacts[j].Spread })
	return impacts, nil
}

func intLabels(vals []int, format string) []string {
	out := make([]string, len(vals))
	for i, v := range vals {
		out[i] = fmt.Sprintf(format, v)
	}
	return out
}

func (p *Pipeline) impact(knob string, pts []Point, labels []string) KnobImpact {
	imp := KnobImpact{Knob: knob, Points: pts, Labels: labels}
	if len(pts) == 0 {
		return imp
	}
	minScore, maxScore := pts[0].Score(p.IdleWeight), pts[0].Score(p.IdleWeight)
	minQoS, maxQoS := pts[0].Report.QoSPercent(), pts[0].Report.QoSPercent()
	minIdle, maxIdle := pts[0].Report.IdlePercent(), pts[0].Report.IdlePercent()
	for _, pt := range pts[1:] {
		s, q, i := pt.Score(p.IdleWeight), pt.Report.QoSPercent(), pt.Report.IdlePercent()
		if s < minScore {
			minScore = s
		}
		if s > maxScore {
			maxScore = s
		}
		if q < minQoS {
			minQoS = q
		}
		if q > maxQoS {
			maxQoS = q
		}
		if i < minIdle {
			minIdle = i
		}
		if i > maxIdle {
			maxIdle = i
		}
	}
	imp.Spread = maxScore - minScore
	imp.QoSSpread = maxQoS - minQoS
	imp.IdleSpread = maxIdle - minIdle
	return imp
}

// RenderSensitivity formats the ranking as a table.
func RenderSensitivity(impacts []KnobImpact) string {
	var b strings.Builder
	fmt.Fprintf(&b, "knob sensitivity (one-at-a-time, score spread = tuning leverage)\n")
	fmt.Fprintf(&b, "%-12s %12s %12s %12s\n", "knob", "score-spread", "QoS-spread", "idle-spread")
	for _, imp := range impacts {
		fmt.Fprintf(&b, "%-12s %12.2f %11.1f%% %11.2f%%\n",
			imp.Knob, imp.Spread, imp.QoSSpread, imp.IdleSpread)
	}
	return b.String()
}
