package historystore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"time"
)

// Serialization backs the paper's durability requirements (Section 3.3):
// the history must survive database moves across nodes and be covered by
// backup/restore. The format is a fixed header followed by fixed-width
// tuples, little-endian:
//
//	magic   uint32  'PRH1'
//	count   uint32  number of tuples
//	tuples  count x { time_snapshot int64, event_type uint8 }

const (
	magic      = 0x50524831 // "PRH1"
	headerSize = 8
	recordSize = 9
)

// WriteTo serializes the store. It implements io.WriterTo.
func (s *Store) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], magic)
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(s.Len()))
	if _, err := bw.Write(hdr[:]); err != nil {
		return 0, err
	}
	written := int64(headerSize)
	var rec [recordSize]byte
	var err error
	s.idx.Ascend(-1<<63, 1<<63-1, func(k int64, v byte) bool {
		binary.LittleEndian.PutUint64(rec[0:8], uint64(k))
		rec[8] = v
		if _, werr := bw.Write(rec[:]); werr != nil {
			err = werr
			return false
		}
		written += recordSize
		return true
	})
	if err != nil {
		return written, err
	}
	return written, bw.Flush()
}

// ReadFrom restores a store serialized by WriteTo, replacing the current
// contents. It implements io.ReaderFrom.
func (s *Store) ReadFrom(r io.Reader) (int64, error) {
	br := bufio.NewReader(r)
	var hdr [headerSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, fmt.Errorf("historystore: reading header: %w", err)
	}
	if got := binary.LittleEndian.Uint32(hdr[0:4]); got != magic {
		return headerSize, fmt.Errorf("historystore: bad magic %#x", got)
	}
	count := binary.LittleEndian.Uint32(hdr[4:8])

	fresh := New()
	read := int64(headerSize)
	var rec [recordSize]byte
	for i := uint32(0); i < count; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return read, fmt.Errorf("historystore: reading tuple %d of %d: %w", i, count, err)
		}
		read += recordSize
		ts := int64(binary.LittleEndian.Uint64(rec[0:8]))
		typ := rec[8]
		if typ != EventStart && typ != EventEnd {
			return read, fmt.Errorf("historystore: tuple %d has invalid event type %d", i, typ)
		}
		if !fresh.Insert(ts, typ) {
			return read, fmt.Errorf("historystore: duplicate time_snapshot %d", ts)
		}
	}
	s.idx = fresh.idx
	return read, nil
}

// ViewRow is one row of the customer-facing materialized view described in
// Section 5: both columns converted to human-readable form.
type ViewRow struct {
	Time time.Time
	Kind string // "activity start" or "activity end"
}

// View renders the history as the read-only customer view, newest last.
func (s *Store) View() []ViewRow {
	rows := make([]ViewRow, 0, s.Len())
	s.idx.Ascend(-1<<63, 1<<63-1, func(k int64, v byte) bool {
		kind := "activity end"
		if v == EventStart {
			kind = "activity start"
		}
		rows = append(rows, ViewRow{Time: time.Unix(k, 0).UTC(), Kind: kind})
		return true
	})
	return rows
}
