package historystore

import (
	"bytes"
	"testing"
)

// FuzzReadFrom feeds arbitrary bytes to the snapshot decoder: it must
// never panic, and every accepted input must round-trip identically.
func FuzzReadFrom(f *testing.F) {
	var valid bytes.Buffer
	s := New()
	for i := int64(0); i < 50; i++ {
		s.Insert(i*100, byte(i%2))
	}
	s.WriteTo(&valid)
	f.Add(valid.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0x31, 0x48, 0x52, 0x50, 0, 0, 0, 0})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		st := New()
		if _, err := st.ReadFrom(bytes.NewReader(data)); err != nil {
			return
		}
		// Accepted: re-serialize and decode again; must be identical.
		var out bytes.Buffer
		if _, err := st.WriteTo(&out); err != nil {
			t.Fatalf("WriteTo after successful ReadFrom: %v", err)
		}
		st2 := New()
		if _, err := st2.ReadFrom(bytes.NewReader(out.Bytes())); err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if st2.Len() != st.Len() {
			t.Fatalf("round trip lost tuples: %d vs %d", st2.Len(), st.Len())
		}
	})
}
