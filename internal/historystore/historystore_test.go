package historystore

import (
	"testing"
	"testing/quick"
)

const day = int64(SecondsPerDay)

func TestInsertDeduplicates(t *testing.T) {
	s := New()
	if !s.Insert(100, EventStart) {
		t.Fatal("first insert returned false")
	}
	if s.Insert(100, EventEnd) {
		t.Fatal("duplicate time_snapshot inserted")
	}
	if s.Len() != 1 {
		t.Fatalf("Len() = %d, want 1", s.Len())
	}
	ev := s.Scan(100, 100)
	if len(ev) != 1 || ev[0].Type != EventStart {
		t.Fatalf("Scan = %v, want single start event", ev)
	}
}

func TestInsertRejectsInvalidType(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Insert(7) did not panic")
		}
	}()
	New().Insert(1, 7)
}

func TestSizeBytes(t *testing.T) {
	s := New()
	for i := int64(0); i < 100; i++ {
		s.Insert(i, byte(i%2))
	}
	if got := s.SizeBytes(); got != 1600 {
		t.Fatalf("SizeBytes() = %d, want 1600 (100 tuples x 16 B)", got)
	}
}

func TestDeleteOldEmptyStore(t *testing.T) {
	s := New()
	old, removed := s.DeleteOld(28, 100*day)
	if old || removed != 0 {
		t.Fatalf("DeleteOld on empty store = %v,%d", old, removed)
	}
}

func TestDeleteOldYoungDatabase(t *testing.T) {
	// All tuples inside the retention window: nothing removed, not old.
	s := New()
	now := 100 * day
	for i := int64(0); i < 10; i++ {
		s.Insert(now-i*day, EventStart)
	}
	old, removed := s.DeleteOld(28, now)
	if old {
		t.Error("database younger than h reported old")
	}
	if removed != 0 {
		t.Errorf("removed %d tuples from a young database", removed)
	}
	if s.Len() != 10 {
		t.Errorf("Len() = %d, want 10", s.Len())
	}
}

func TestDeleteOldTrimsButKeepsLifespanMarker(t *testing.T) {
	s := New()
	now := 100 * day
	// One tuple per day for the last 60 days.
	for i := int64(0); i < 60; i++ {
		s.Insert(now-i*day, EventStart)
	}
	old, removed := s.DeleteOld(28, now)
	if !old {
		t.Fatal("60-day database not reported old")
	}
	// historyStart = now - 28d. Tuples at days 0..28 before now (29 tuples,
	// the one exactly at the boundary included) are retained; day 59 (the
	// oldest tuple, the lifespan marker) survives; days 29..58 (30 tuples)
	// are deleted.
	if removed != 30 {
		t.Fatalf("removed %d tuples, want 30", removed)
	}
	if s.Len() != 30 {
		t.Fatalf("Len() = %d, want 30", s.Len())
	}
	minTS, _ := s.MinTimestamp()
	if minTS != now-59*day {
		t.Fatalf("lifespan marker = %d, want %d", minTS, now-59*day)
	}
}

func TestDeleteOldBoundaryExclusive(t *testing.T) {
	// A tuple exactly at historyStart must survive: the SQL predicate is
	// time_snapshot < @historyStart (strict).
	s := New()
	now := 100 * day
	historyStart := now - 28*day
	s.Insert(historyStart-10, EventStart) // lifespan marker, survives
	s.Insert(historyStart-5, EventEnd)    // strictly inside the doomed range
	s.Insert(historyStart, EventStart)    // exactly at the boundary: keep
	s.Insert(now, EventEnd)
	old, removed := s.DeleteOld(28, now)
	if !old {
		t.Fatal("not reported old")
	}
	if removed != 1 {
		t.Fatalf("removed %d, want 1", removed)
	}
	if !s.idx.Has(historyStart) {
		t.Error("tuple at historyStart was deleted; boundary must be exclusive")
	}
	if !s.idx.Has(historyStart - 10) {
		t.Error("lifespan marker deleted")
	}
}

func TestDeleteOldIdempotent(t *testing.T) {
	s := New()
	now := 100 * day
	for i := int64(0); i < 60; i++ {
		s.Insert(now-i*day, EventStart)
	}
	s.DeleteOld(28, now)
	old, removed := s.DeleteOld(28, now)
	if !old {
		t.Error("second DeleteOld lost the old flag")
	}
	if removed != 0 {
		t.Errorf("second DeleteOld removed %d tuples", removed)
	}
}

func TestFirstLastLogin(t *testing.T) {
	s := New()
	s.Insert(100, EventStart)
	s.Insert(150, EventEnd)
	s.Insert(200, EventStart)
	s.Insert(250, EventEnd)
	s.Insert(300, EventStart)

	first, last, ok := s.FirstLastLogin(0, 1000)
	if !ok || first != 100 || last != 300 {
		t.Fatalf("FirstLastLogin(0,1000) = %d,%d,%v, want 100,300,true", first, last, ok)
	}
	// Ends of activity must be invisible to the login aggregate.
	first, last, ok = s.FirstLastLogin(140, 260)
	if !ok || first != 200 || last != 200 {
		t.Fatalf("FirstLastLogin(140,260) = %d,%d,%v, want 200,200,true", first, last, ok)
	}
	// A window with only EventEnd tuples has no logins.
	if _, _, ok := s.FirstLastLogin(150, 150); ok {
		t.Error("window containing only an end event reported a login")
	}
	if _, _, ok := s.FirstLastLogin(400, 500); ok {
		t.Error("empty window reported a login")
	}
	// Inclusive bounds on both ends.
	first, last, ok = s.FirstLastLogin(100, 300)
	if !ok || first != 100 || last != 300 {
		t.Fatalf("inclusive bounds broken: %d,%d,%v", first, last, ok)
	}
}

func TestHasActivity(t *testing.T) {
	s := New()
	s.Insert(150, EventEnd)
	if !s.HasActivity(100, 200) {
		t.Error("HasActivity missed an end event")
	}
	if s.HasActivity(151, 200) {
		t.Error("HasActivity reported activity in an empty range")
	}
}

func TestScanOrdering(t *testing.T) {
	s := New()
	times := []int64{500, 100, 300, 200, 400}
	for i, ts := range times {
		s.Insert(ts, byte(i%2))
	}
	ev := s.Scan(0, 1000)
	if len(ev) != 5 {
		t.Fatalf("Scan returned %d events, want 5", len(ev))
	}
	for i := 1; i < len(ev); i++ {
		if ev[i-1].Time >= ev[i].Time {
			t.Fatalf("Scan not ordered: %v", ev)
		}
	}
}

func TestClone(t *testing.T) {
	s := New()
	for i := int64(0); i < 50; i++ {
		s.Insert(i*100, byte(i%2))
	}
	c := s.Clone()
	if c.Len() != s.Len() {
		t.Fatalf("clone Len() = %d, want %d", c.Len(), s.Len())
	}
	// Mutating the clone must not touch the original.
	c.Insert(99999, EventStart)
	if s.Len() == c.Len() {
		t.Fatal("clone shares storage with original")
	}
}

// Property: DeleteOld never removes tuples inside the retention window and
// never removes the oldest tuple.
func TestQuickDeleteOldPreservesRecent(t *testing.T) {
	f := func(offsets []uint32) bool {
		s := New()
		now := 365 * day
		for _, off := range offsets {
			ts := now - int64(off%(90*uint32(day)))
			s.Insert(ts, EventStart)
		}
		minBefore, hadAny := s.MinTimestamp()
		recent := s.Scan(now-28*day, now)
		s.DeleteOld(28, now)
		if hadAny {
			minAfter, _ := s.MinTimestamp()
			if minAfter != minBefore {
				return false // lifespan marker lost
			}
		}
		after := s.Scan(now-28*day, now)
		if len(after) != len(recent) {
			return false // recent tuple lost
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInsert(b *testing.B) {
	s := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Insert(int64(i), byte(i%2))
	}
}

func BenchmarkFirstLastLogin(b *testing.B) {
	s := New()
	// A realistic 4-week history: ~500 tuples per week (Figure 10(a)).
	for i := int64(0); i < 2000; i++ {
		s.Insert(i*1200, byte(i%2))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.FirstLastLogin(int64(i%2000)*1200, int64(i%2000)*1200+25200)
	}
}

func BenchmarkDeleteOld(b *testing.B) {
	now := 365 * day
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := New()
		for j := int64(0); j < 2000; j++ {
			s.Insert(now-j*3600, EventStart)
		}
		b.StartTimer()
		s.DeleteOld(28, now)
	}
}
