package historystore

// Ablation benchmark for the storage design choice called out in
// DESIGN.md: the paper mandates a clustered B-tree index on time_snapshot
// so that inserts are O(log n) and the range aggregations of Algorithm 4
// are O(log n + m). This file pits the real store against a naive sorted
// slice (O(n) insert via memmove, binary-searched reads) at the history
// sizes Figure 10 reports. Run:
//
//	go test -bench 'Ablation' -benchmem ./internal/historystore
//
// At the ~500-tuple average the slice is competitive (memmove is cheap);
// at the >4K worst case and under the mixed insert/trim/predict workload
// the B-tree's asymptotics take over — which is the paper's operating
// regime for the busiest databases.

import (
	"sort"
	"testing"
)

// sliceStore is the naive baseline: tuples kept sorted in a slice.
type sliceStore struct {
	ts  []int64
	typ []byte
}

func (s *sliceStore) insert(t int64, typ byte) bool {
	i := sort.Search(len(s.ts), func(i int) bool { return s.ts[i] >= t })
	if i < len(s.ts) && s.ts[i] == t {
		return false
	}
	s.ts = append(s.ts, 0)
	copy(s.ts[i+1:], s.ts[i:])
	s.ts[i] = t
	s.typ = append(s.typ, 0)
	copy(s.typ[i+1:], s.typ[i:])
	s.typ[i] = typ
	return true
}

func (s *sliceStore) firstLastLogin(lo, hi int64) (int64, int64, bool) {
	i := sort.Search(len(s.ts), func(i int) bool { return s.ts[i] >= lo })
	var first, last int64
	ok := false
	for ; i < len(s.ts) && s.ts[i] <= hi; i++ {
		if s.typ[i] != EventStart {
			continue
		}
		if !ok {
			first = s.ts[i]
			ok = true
		}
		last = s.ts[i]
	}
	return first, last, ok
}

func (s *sliceStore) deleteRange(lo, hi int64) {
	i := sort.Search(len(s.ts), func(i int) bool { return s.ts[i] >= lo })
	j := sort.Search(len(s.ts), func(i int) bool { return s.ts[i] > hi })
	s.ts = append(s.ts[:i], s.ts[j:]...)
	s.typ = append(s.typ[:i], s.typ[j:]...)
}

// The mixed workload one database generates over a month: out-of-order
// inserts (timers record tuples off the critical path), periodic trims,
// and the range reads of Algorithm 4.
func mixedOps(n int) []int64 {
	ops := make([]int64, n)
	seed := uint64(42)
	for i := range ops {
		seed = seed*6364136223846793005 + 1442695040888963407
		ops[i] = int64(seed>>20) % (28 * 86400)
	}
	return ops
}

func BenchmarkAblationBTreeMixed(b *testing.B) {
	for _, size := range []int{500, 4000} {
		b.Run(sizeName(size), func(b *testing.B) {
			ops := mixedOps(size)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				st := New()
				for j, t := range ops {
					st.Insert(t, byte(j%2))
					if j%64 == 63 {
						st.FirstLastLogin(t-25200, t)
					}
					if j%256 == 255 {
						st.DeleteOld(14, t+14*86400)
					}
				}
			}
		})
	}
}

func BenchmarkAblationSliceMixed(b *testing.B) {
	for _, size := range []int{500, 4000} {
		b.Run(sizeName(size), func(b *testing.B) {
			ops := mixedOps(size)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				st := &sliceStore{}
				for j, t := range ops {
					st.insert(t, byte(j%2))
					if j%64 == 63 {
						st.firstLastLogin(t-25200, t)
					}
					if j%256 == 255 {
						st.deleteRange(0, t-14*86400)
					}
				}
			}
		})
	}
}

func sizeName(n int) string {
	if n >= 1000 {
		return "4k-tuples"
	}
	return "500-tuples"
}

// TestSliceStoreAgreesWithBTree keeps the ablation baseline honest.
func TestSliceStoreAgreesWithBTree(t *testing.T) {
	bt := New()
	sl := &sliceStore{}
	for j, ts := range mixedOps(2000) {
		typ := byte(j % 2)
		if bt.Insert(ts, typ) != sl.insert(ts, typ) {
			t.Fatalf("insert(%d) disagrees", ts)
		}
	}
	if bt.Len() != len(sl.ts) {
		t.Fatalf("sizes diverge: %d vs %d", bt.Len(), len(sl.ts))
	}
	for _, probe := range []struct{ lo, hi int64 }{
		{0, 86400}, {86400, 7 * 86400}, {0, 28 * 86400}, {100, 99},
	} {
		f1, l1, ok1 := bt.FirstLastLogin(probe.lo, probe.hi)
		f2, l2, ok2 := sl.firstLastLogin(probe.lo, probe.hi)
		if f1 != f2 || l1 != l2 || ok1 != ok2 {
			t.Fatalf("FirstLastLogin(%d,%d): btree %d/%d/%v, slice %d/%d/%v",
				probe.lo, probe.hi, f1, l1, ok1, f2, l2, ok2)
		}
	}
}
