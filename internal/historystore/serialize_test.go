package historystore

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSerializeRoundTrip(t *testing.T) {
	s := New()
	for i := int64(0); i < 500; i++ {
		s.Insert(i*977, byte(i%2))
	}
	var buf bytes.Buffer
	n, err := s.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(headerSize + 500*recordSize); n != want {
		t.Fatalf("WriteTo wrote %d bytes, want %d", n, want)
	}

	restored := New()
	restored.Insert(999999999, EventStart) // must be replaced, not merged
	m, err := restored.ReadFrom(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if m != n {
		t.Fatalf("ReadFrom read %d bytes, wrote %d", m, n)
	}
	if restored.Len() != s.Len() {
		t.Fatalf("restored %d tuples, want %d", restored.Len(), s.Len())
	}
	want := s.Scan(-1<<62, 1<<62)
	got := restored.Scan(-1<<62, 1<<62)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("tuple %d differs: %+v vs %+v", i, want[i], got[i])
		}
	}
}

func TestSerializeEmpty(t *testing.T) {
	var buf bytes.Buffer
	if _, err := New().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	restored := New()
	if _, err := restored.ReadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != 0 {
		t.Fatalf("restored %d tuples from empty store", restored.Len())
	}
}

func TestReadFromRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"short":     {1, 2, 3},
		"bad magic": {0, 0, 0, 0, 1, 0, 0, 0},
		"truncated": func() []byte {
			s := New()
			s.Insert(1, EventStart)
			s.Insert(2, EventEnd)
			var buf bytes.Buffer
			s.WriteTo(&buf)
			return buf.Bytes()[:buf.Len()-4]
		}(),
		"bad event type": func() []byte {
			s := New()
			s.Insert(1, EventStart)
			var buf bytes.Buffer
			s.WriteTo(&buf)
			b := buf.Bytes()
			b[len(b)-1] = 7
			return b
		}(),
	}
	for name, data := range cases {
		st := New()
		st.Insert(42, EventStart)
		if _, err := st.ReadFrom(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: ReadFrom accepted corrupt input", name)
		}
		// A failed restore must not clobber the existing contents.
		if !st.idx.Has(42) {
			t.Errorf("%s: failed restore clobbered the store", name)
		}
	}
}

func TestReadFromRejectsDuplicates(t *testing.T) {
	var buf bytes.Buffer
	s := New()
	s.Insert(1, EventStart)
	s.WriteTo(&buf)
	// Forge a second tuple with the same timestamp.
	b := buf.Bytes()
	b[4] = 2 // count = 2
	b = append(b, b[headerSize:headerSize+recordSize]...)
	if _, err := New().ReadFrom(bytes.NewReader(b)); err == nil {
		t.Fatal("duplicate time_snapshot accepted")
	}
}

type failingWriter struct{ after int }

func (f *failingWriter) Write(p []byte) (int, error) {
	if f.after <= 0 {
		return 0, io.ErrClosedPipe
	}
	f.after -= len(p)
	return len(p), nil
}

func TestWriteToPropagatesErrors(t *testing.T) {
	s := New()
	for i := int64(0); i < 10000; i++ {
		s.Insert(i, EventStart)
	}
	if _, err := s.WriteTo(&failingWriter{after: 64}); err == nil {
		t.Fatal("write error swallowed")
	}
}

func TestView(t *testing.T) {
	s := New()
	s.Insert(1693558800, EventStart) // 2023-09-01 09:00 UTC
	s.Insert(1693587600, EventEnd)   // 2023-09-01 17:00 UTC
	rows := s.View()
	if len(rows) != 2 {
		t.Fatalf("View rows = %d", len(rows))
	}
	if rows[0].Kind != "activity start" || rows[1].Kind != "activity end" {
		t.Fatalf("View kinds = %q, %q", rows[0].Kind, rows[1].Kind)
	}
	if rows[0].Time.Hour() != 9 || rows[1].Time.Hour() != 17 {
		t.Fatalf("View times = %v, %v", rows[0].Time, rows[1].Time)
	}
	if !rows[0].Time.Before(rows[1].Time) {
		t.Fatal("View not in time order")
	}
}

// Property: round-trip preserves arbitrary stores exactly.
func TestQuickSerializeRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		for i := 0; i < int(n); i++ {
			s.Insert(rng.Int63n(1<<40), byte(rng.Intn(2)))
		}
		var buf bytes.Buffer
		if _, err := s.WriteTo(&buf); err != nil {
			return false
		}
		r := New()
		if _, err := r.ReadFrom(&buf); err != nil {
			return false
		}
		if r.Len() != s.Len() {
			return false
		}
		a, b := s.Scan(0, 1<<41), r.Scan(0, 1<<41)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWriteTo(b *testing.B) {
	s := New()
	for i := int64(0); i < 2000; i++ {
		s.Insert(i*311, byte(i%2))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.WriteTo(io.Discard)
	}
}
