// Package historystore implements the per-database customer activity
// history table sys.pause_resume_history from Section 5 of the ProRP paper.
//
// The table has two columns: time_snapshot (epoch seconds, unique, clustered
// B-tree index) and event_type (1 = start of customer activity, 0 = end of
// activity). The stored procedures of the paper map to methods:
//
//	Algorithm 2  sys.InsertHistory       -> (*Store).Insert
//	Algorithm 3  sys.DeleteOldHistory    -> (*Store).DeleteOld
//	Algorithm 4's range MIN/MAX query    -> (*Store).FirstLastLogin
//
// The history travels with the database when it moves between nodes (the
// durability principle of Section 3.3); here that simply means the Store is
// owned by the database object, not by any node.
package historystore

import (
	"fmt"

	"prorp/internal/btree"
)

// Event types stored in the event_type column.
const (
	EventEnd   byte = 0 // end of customer activity
	EventStart byte = 1 // start of customer activity (a login)
)

// tupleBytes is the storage footprint of one history tuple: two 64-bit
// integers per Section 9.3 ("Each tuple consists of two integer values of
// size 64 bits").
const tupleBytes = 16

// SecondsPerDay converts the history-length knob h (days) to seconds.
const SecondsPerDay = 24 * 60 * 60

// Store is the history table of one database.
type Store struct {
	idx *btree.Tree
}

// New returns an empty history store.
func New() *Store {
	return &Store{idx: btree.New()}
}

// Insert records an activity event at time t (epoch seconds). Following
// Algorithm 2, a tuple with an existing time_snapshot is silently skipped;
// the return value reports whether a tuple was inserted.
func (s *Store) Insert(t int64, eventType byte) bool {
	if eventType != EventStart && eventType != EventEnd {
		panic(fmt.Sprintf("historystore: invalid event type %d", eventType))
	}
	return s.idx.Insert(t, eventType)
}

// Len reports the number of tuples (n in the paper's complexity analysis).
func (s *Store) Len() int { return s.idx.Len() }

// SizeBytes reports the storage footprint in bytes (Figure 10(b)).
func (s *Store) SizeBytes() int { return s.idx.Len() * tupleBytes }

// MinTimestamp returns the oldest tuple's timestamp. The oldest tuple
// records the database lifespan: Algorithm 3 deliberately keeps it forever.
func (s *Store) MinTimestamp() (int64, bool) { return s.idx.Min() }

// MaxTimestamp returns the newest tuple's timestamp.
func (s *Store) MaxTimestamp() (int64, bool) { return s.idx.Max() }

// DeleteOld implements Algorithm 3: it trims history older than h days
// before now, keeping the single oldest tuple as the lifespan marker, and
// reports whether the database is "old", i.e. existed before the start of
// recent history and therefore has enough history for a reliable
// prediction. removed is the number of tuples deleted.
func (s *Store) DeleteOld(h int, now int64) (old bool, removed int) {
	historyStart := now - int64(h)*SecondsPerDay
	minTS, ok := s.idx.Min()
	if !ok {
		return false, 0
	}
	if minTS >= historyStart {
		return false, 0
	}
	// @minTimestamp < time_snapshot AND time_snapshot < @historyStart:
	// both bounds exclusive, so the oldest tuple survives.
	removed = s.idx.DeleteRange(minTS+1, historyStart-1)
	return true, removed
}

// FirstLastLogin is the range aggregation of Algorithm 4 lines 19-24:
// SELECT MIN(time_snapshot), MAX(time_snapshot) over login events
// (event_type = 1) within [lo, hi]. ok is false when the window holds no
// login.
func (s *Store) FirstLastLogin(lo, hi int64) (first, last int64, ok bool) {
	s.idx.Ascend(lo, hi, func(k int64, v byte) bool {
		if v != EventStart {
			return true
		}
		if !ok {
			first = k
			ok = true
		}
		last = k
		return true
	})
	return first, last, ok
}

// HasActivity reports whether any event (start or end) falls in [lo, hi].
func (s *Store) HasActivity(lo, hi int64) bool {
	found := false
	s.idx.Ascend(lo, hi, func(int64, byte) bool {
		found = true
		return false
	})
	return found
}

// Event is one tuple of the history table in human-readable order.
type Event struct {
	Time int64
	Type byte
}

// Scan returns all tuples in [lo, hi] in timestamp order. It backs the
// customer-facing materialized view mentioned in Section 5 and the
// telemetry export.
func (s *Store) Scan(lo, hi int64) []Event {
	var out []Event
	s.idx.Ascend(lo, hi, func(k int64, v byte) bool {
		out = append(out, Event{Time: k, Type: v})
		return true
	})
	return out
}

// Clone deep-copies the store. The simulation uses it to snapshot history
// when a database moves across nodes, mirroring the paper's durability
// requirement.
func (s *Store) Clone() *Store {
	c := New()
	s.idx.Ascend(-1<<63, 1<<63-1, func(k int64, v byte) bool {
		c.idx.Insert(k, v)
		return true
	})
	return c
}
