package simclock

import (
	"math/rand"
	"sort"
	"testing"
)

func TestFiresInTimeOrder(t *testing.T) {
	var q Queue
	var got []int64
	times := []int64{50, 10, 30, 20, 40}
	for _, ts := range times {
		ts := ts
		q.Schedule(ts, func(now int64) {
			if now != ts {
				t.Errorf("callback now = %d, want %d", now, ts)
			}
			got = append(got, now)
		})
	}
	q.Run()
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("events fired out of order: %v", got)
	}
	if len(got) != 5 {
		t.Fatalf("fired %d events, want 5", len(got))
	}
	if q.Now() != 50 {
		t.Errorf("Now() = %d, want 50", q.Now())
	}
}

func TestSameTimePriorityAndFIFO(t *testing.T) {
	var q Queue
	var got []string
	q.ScheduleWithPriority(10, 1, func(int64) { got = append(got, "low") })
	q.ScheduleWithPriority(10, 0, func(int64) { got = append(got, "hi-a") })
	q.ScheduleWithPriority(10, 0, func(int64) { got = append(got, "hi-b") })
	q.Run()
	want := []string{"hi-a", "hi-b", "low"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestCancel(t *testing.T) {
	var q Queue
	fired := false
	ev := q.Schedule(10, func(int64) { fired = true })
	q.Cancel(ev)
	q.Cancel(ev) // double-cancel is a no-op
	q.Cancel(nil)
	q.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelAfterFireIsNoop(t *testing.T) {
	var q Queue
	ev := q.Schedule(10, func(int64) {})
	q.Run()
	q.Cancel(ev) // must not panic or corrupt the heap
	q.Schedule(20, func(int64) {})
	q.Run()
	if q.Now() != 20 {
		t.Fatalf("Now() = %d, want 20", q.Now())
	}
}

func TestScheduleDuringRun(t *testing.T) {
	var q Queue
	var got []int64
	q.Schedule(10, func(now int64) {
		q.Schedule(now+5, func(now int64) { got = append(got, now) })
	})
	q.Run()
	if len(got) != 1 || got[0] != 15 {
		t.Fatalf("nested event: got %v, want [15]", got)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	var q Queue
	q.Schedule(100, func(int64) {})
	q.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	q.Schedule(50, func(int64) {})
}

func TestRunUntil(t *testing.T) {
	var q Queue
	var got []int64
	for _, ts := range []int64{10, 20, 30, 40} {
		q.Schedule(ts, func(now int64) { got = append(got, now) })
	}
	q.RunUntil(20)
	if len(got) != 2 {
		t.Fatalf("RunUntil(20) fired %d events, want 2 (inclusive deadline)", len(got))
	}
	if q.Now() != 20 {
		t.Fatalf("Now() = %d, want 20", q.Now())
	}
	q.RunUntil(25)
	if q.Now() != 25 {
		t.Fatalf("Now() advanced to %d, want 25 even with no events", q.Now())
	}
	q.RunUntil(100)
	if len(got) != 4 {
		t.Fatalf("fired %d events total, want 4", len(got))
	}
}

func TestStepEmpty(t *testing.T) {
	var q Queue
	if q.Step() {
		t.Fatal("Step() on empty queue returned true")
	}
}

func TestRandomizedOrdering(t *testing.T) {
	var q Queue
	rng := rand.New(rand.NewSource(3))
	const n = 10_000
	var fired []int64
	handles := make([]*Event, 0, n)
	for i := 0; i < n; i++ {
		ts := int64(rng.Intn(100_000))
		handles = append(handles, q.Schedule(ts, func(now int64) { fired = append(fired, now) }))
	}
	// Cancel a random 20%.
	cancelled := 0
	for i := 0; i < n; i++ {
		if rng.Intn(5) == 0 {
			q.Cancel(handles[i])
			cancelled++
		}
	}
	q.Run()
	if len(fired) != n-cancelled {
		t.Fatalf("fired %d events, want %d", len(fired), n-cancelled)
	}
	if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
		t.Fatal("events fired out of order")
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var q Queue
		for j := 0; j < 1000; j++ {
			q.Schedule(int64(j%97), func(int64) {})
		}
		q.Run()
	}
}
