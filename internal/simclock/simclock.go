// Package simclock provides the virtual time base of the simulation: a
// discrete-event queue over epoch-second timestamps.
//
// The ProRP algorithms all take `now` as an explicit parameter (they are SQL
// procedures in the paper), so the whole system runs deterministically
// against this clock, replaying months of production-scale traces in
// seconds of wall time.
package simclock

import "container/heap"

// Event is a scheduled callback. Events at the same timestamp fire in the
// order defined by (Time, Priority, sequence), so simulation runs are fully
// deterministic.
type Event struct {
	Time     int64
	Priority int // lower fires first at equal Time
	Fn       func(now int64)

	seq   uint64
	index int // heap index; -1 once popped or cancelled
}

// Queue is a discrete-event priority queue. The zero value is ready to use.
type Queue struct {
	h      eventHeap
	now    int64
	nextID uint64
}

// Now returns the current virtual time: the timestamp of the most recently
// fired event.
func (q *Queue) Now() int64 { return q.now }

// Len reports the number of pending events.
func (q *Queue) Len() int { return q.h.Len() }

// Schedule enqueues fn to run at time t with priority 0 and returns a
// handle that can cancel it. Scheduling in the past (t < Now) is a
// programming error and panics: it would reorder history.
func (q *Queue) Schedule(t int64, fn func(now int64)) *Event {
	return q.ScheduleWithPriority(t, 0, fn)
}

// ScheduleWithPriority enqueues fn at time t; among events at the same
// timestamp, lower priority fires first.
func (q *Queue) ScheduleWithPriority(t int64, priority int, fn func(now int64)) *Event {
	if t < q.now {
		panic("simclock: scheduling event in the past")
	}
	ev := &Event{Time: t, Priority: priority, Fn: fn, seq: q.nextID}
	q.nextID++
	heap.Push(&q.h, ev)
	return ev
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (q *Queue) Cancel(ev *Event) {
	if ev == nil || ev.index < 0 {
		return
	}
	heap.Remove(&q.h, ev.index)
	ev.index = -1
}

// Step fires the next event and reports whether one was pending.
func (q *Queue) Step() bool {
	if q.h.Len() == 0 {
		return false
	}
	ev := heap.Pop(&q.h).(*Event)
	q.now = ev.Time
	ev.Fn(ev.Time)
	return true
}

// RunUntil fires events in order until the queue is empty or the next event
// is after deadline. Events exactly at the deadline still fire. The clock
// is advanced to the deadline afterwards.
func (q *Queue) RunUntil(deadline int64) {
	for q.h.Len() > 0 && q.h[0].Time <= deadline {
		q.Step()
	}
	if q.now < deadline {
		q.now = deadline
	}
}

// Run fires all pending events, including ones scheduled while running.
func (q *Queue) Run() {
	for q.Step() {
	}
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].Time != h[j].Time {
		return h[i].Time < h[j].Time
	}
	if h[i].Priority != h[j].Priority {
		return h[i].Priority < h[j].Priority
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}
