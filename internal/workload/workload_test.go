package workload

import (
	"testing"
	"testing/quick"
)

func mustGen(t *testing.T, seed int64, region string) *Generator {
	t.Helper()
	p, err := Region(region)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGenerator(seed, p)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRegionProfilesValid(t *testing.T) {
	for _, name := range RegionNames() {
		p, err := Region(name)
		if err != nil {
			t.Fatalf("Region(%q): %v", name, err)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("profile %s invalid: %v", name, err)
		}
	}
	if _, err := Region("MARS1"); err == nil {
		t.Error("unknown region accepted")
	}
}

func TestProfileValidate(t *testing.T) {
	bad := Profile{Name: "x"}
	bad.Mix[Office] = 0.5 // sums to 0.5
	if err := bad.Validate(); err == nil {
		t.Error("mix not summing to 1 accepted")
	}
	bad.Mix[Office] = -0.5
	bad.Mix[Bursty] = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("negative mix entry accepted")
	}
	bad = Profile{Name: "x", NewDBFraction: 2}
	bad.Mix[Office] = 1
	if err := bad.Validate(); err == nil {
		t.Error("new-db fraction > 1 accepted")
	}
	bad = Profile{Name: "x", JitterSec: -1}
	bad.Mix[Office] = 1
	if err := bad.Validate(); err == nil {
		t.Error("negative jitter accepted")
	}
}

func TestGeneratorRejectsInvalidProfile(t *testing.T) {
	if _, err := NewGenerator(1, Profile{}); err == nil {
		t.Fatal("empty profile accepted")
	}
}

func TestTracesValid(t *testing.T) {
	g := mustGen(t, 42, "EU1")
	from, to := int64(0), 35*day
	traces := g.Generate(400, from, to)
	if len(traces) != 400 {
		t.Fatalf("generated %d traces, want 400", len(traces))
	}
	for _, tr := range traces {
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
		for _, iv := range tr.Intervals {
			if iv.Start < from || iv.End > to {
				t.Fatalf("trace %d interval %+v outside [%d,%d)", tr.DB, iv, from, to)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := mustGen(t, 7, "US1").Generate(50, 0, 14*day)
	b := mustGen(t, 7, "US1").Generate(50, 0, 14*day)
	for i := range a {
		if a[i].Pattern != b[i].Pattern || a[i].Birth != b[i].Birth ||
			len(a[i].Intervals) != len(b[i].Intervals) {
			t.Fatalf("trace %d differs between runs with the same seed", i)
		}
		for j := range a[i].Intervals {
			if a[i].Intervals[j] != b[i].Intervals[j] {
				t.Fatalf("trace %d interval %d differs", i, j)
			}
		}
	}
	c := mustGen(t, 8, "US1").Generate(50, 0, 14*day)
	same := true
	for i := range a {
		if len(a[i].Intervals) != len(c[i].Intervals) {
			same = false
			break
		}
	}
	if same {
		t.Log("different seeds produced structurally similar traces (possible but unlikely)")
	}
}

func TestAllPatternsRepresented(t *testing.T) {
	g := mustGen(t, 3, "EU1")
	traces := g.Generate(1000, 0, 35*day)
	var seen [numPatterns]int
	for _, tr := range traces {
		seen[tr.Pattern]++
	}
	for p := Pattern(0); p < numPatterns; p++ {
		if seen[p] == 0 {
			t.Errorf("pattern %v absent from 1000 traces", p)
		}
	}
	// The dormant fraction should be near the profile's 58%.
	dormantFrac := float64(seen[Dormant]) / 1000
	if dormantFrac < 0.50 || dormantFrac > 0.66 {
		t.Errorf("dormant fraction = %.2f, want ~0.58", dormantFrac)
	}
}

func TestOfficePatternShape(t *testing.T) {
	g := mustGen(t, 11, "EU1")
	var tr Trace
	found := false
	for _, cand := range g.Generate(200, 0, 28*day) {
		if cand.Pattern == Office && len(cand.Intervals) > 20 {
			tr, found = cand, true
			break
		}
	}
	if !found {
		t.Fatal("no office trace found")
	}
	// Office activity concentrates in daytime: the majority of activity
	// seconds must fall between 06:00 and 22:00.
	var dayS, nightS int64
	for _, iv := range tr.Intervals {
		for ts := iv.Start; ts < iv.End; ts += 600 {
			h := (ts % day) / hour
			if h >= 6 && h < 22 {
				dayS++
			} else {
				nightS++
			}
		}
	}
	if dayS < nightS*4 {
		t.Errorf("office activity not daytime-concentrated: day=%d night=%d", dayS, nightS)
	}
}

func TestNightBatchIsNocturnalAndShort(t *testing.T) {
	g := mustGen(t, 13, "EU1")
	for _, tr := range g.Generate(300, 0, 14*day) {
		if tr.Pattern != NightBatch {
			continue
		}
		for _, iv := range tr.Intervals {
			if d := iv.Duration(); d > 4*hour+30*min {
				t.Fatalf("night batch session of %d s, want <= ~4 h", d)
			}
		}
		return
	}
	t.Fatal("no night-batch trace found")
}

func TestDormantHasFewSessions(t *testing.T) {
	g := mustGen(t, 17, "EU1")
	for _, tr := range g.Generate(300, 0, 28*day) {
		if tr.Pattern != Dormant {
			continue
		}
		if n := len(tr.Intervals); n > 6 {
			t.Fatalf("dormant trace has %d sessions in 28 days", n)
		}
		return
	}
	t.Fatal("no dormant trace found")
}

func TestIdleGaps(t *testing.T) {
	tr := Trace{
		Birth: 100,
		Intervals: []Interval{
			{Start: 100, End: 200},
			{Start: 500, End: 600},
			{Start: 1000, End: 1100},
		},
	}
	gaps := tr.IdleGaps()
	if len(gaps) != 2 {
		t.Fatalf("IdleGaps len = %d, want 2", len(gaps))
	}
	if gaps[0] != (Interval{200, 500}) || gaps[1] != (Interval{600, 1000}) {
		t.Fatalf("IdleGaps = %v", gaps)
	}
	if len((Trace{Intervals: []Interval{{1, 2}}}).IdleGaps()) != 0 {
		t.Error("single interval produced gaps")
	}
}

func TestLogins(t *testing.T) {
	tr := Trace{Intervals: []Interval{{10, 20}, {30, 40}}}
	l := tr.Logins()
	if len(l) != 2 || l[0] != 10 || l[1] != 30 {
		t.Fatalf("Logins = %v", l)
	}
}

func TestValidateCatchesBadTraces(t *testing.T) {
	cases := []Trace{
		{DB: 1}, // empty
		{DB: 2, Birth: 5, Intervals: []Interval{{10, 20}}},            // birth mismatch
		{DB: 3, Birth: 10, Intervals: []Interval{{10, 10}}},           // empty interval
		{DB: 4, Birth: 10, Intervals: []Interval{{10, 20}, {25, 30}}}, // gap < 1 min
		{DB: 5, Birth: 10, Intervals: []Interval{{10, 20}, {15, 30}}}, // overlap
	}
	for _, tr := range cases {
		if err := tr.Validate(); err == nil {
			t.Errorf("trace %d accepted: %+v", tr.DB, tr)
		}
	}
}

func TestNewDBFraction(t *testing.T) {
	p, _ := Region("US1") // 10% new databases
	g, _ := NewGenerator(5, p)
	traces := g.Generate(2000, 0, 35*day)
	late := 0
	for _, tr := range traces {
		if tr.Birth > 2*day {
			late++
		}
	}
	frac := float64(late) / 2000
	if frac < 0.04 || frac > 0.18 {
		t.Errorf("mid-simulation births = %.2f, want ~0.10", frac)
	}
}

func TestPatternString(t *testing.T) {
	for p := Pattern(0); p < numPatterns; p++ {
		if p.String() == "" {
			t.Errorf("Pattern(%d) empty string", int(p))
		}
	}
	if Pattern(99).String() == "" {
		t.Error("unknown pattern empty string")
	}
}

// Property: every generated trace validates for arbitrary seeds and spans.
func TestQuickTracesAlwaysValid(t *testing.T) {
	p, _ := Region("EU2")
	f := func(seed int64, nDays uint8) bool {
		span := (int64(nDays%60) + 3) * day
		g, err := NewGenerator(seed, p)
		if err != nil {
			return false
		}
		for _, tr := range g.Generate(20, 0, span) {
			if tr.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGenerateRegionMonth(b *testing.B) {
	p, _ := Region("EU1")
	for i := 0; i < b.N; i++ {
		g, _ := NewGenerator(int64(i), p)
		g.Generate(100, 0, 35*day)
	}
}

func TestDriftShiftsPhases(t *testing.T) {
	p, _ := Region("EU1")
	p.DriftDay = 10
	p.DriftSec = 3 * hour
	g, err := NewGenerator(19, p)
	if err != nil {
		t.Fatal(err)
	}
	traces := g.Generate(400, 0, 20*day)
	// Compare the mean first-login hour of office databases before and
	// after the drift day.
	var before, after []float64
	for _, tr := range traces {
		if tr.Pattern != Office {
			continue
		}
		perDay := map[int64]int64{}
		for _, iv := range tr.Intervals {
			d := iv.Start / day
			if _, seen := perDay[d]; !seen {
				perDay[d] = iv.Start % day
			}
		}
		for d, off := range perDay {
			if d < 10 {
				before = append(before, float64(off))
			} else {
				after = append(after, float64(off))
			}
		}
	}
	if len(before) < 50 || len(after) < 50 {
		t.Fatalf("not enough office days: %d/%d", len(before), len(after))
	}
	mean := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	shift := mean(after) - mean(before)
	if shift < float64(2*hour) || shift > float64(4*hour) {
		t.Fatalf("phase shift = %.1f h, want ~3 h", shift/3600)
	}
}

func TestNoDriftByDefault(t *testing.T) {
	for _, name := range RegionNames() {
		p, _ := Region(name)
		if p.DriftDay != 0 || p.DriftSec != 0 {
			t.Errorf("region %s has drift enabled by default", name)
		}
	}
}

func TestWeeklyReportIsSingleWeekday(t *testing.T) {
	g := mustGen(t, 23, "EU1")
	found := false
	for _, tr := range g.Generate(600, 0, 35*day) {
		if tr.Pattern != WeeklyReport {
			continue
		}
		found = true
		dows := map[int64]bool{}
		for _, iv := range tr.Intervals {
			dows[(iv.Start/day)%7] = true
		}
		// Jitter can spill a session across midnight, so allow two
		// adjacent weekdays at most.
		if len(dows) > 2 {
			t.Fatalf("weekly-report trace spans %d weekdays", len(dows))
		}
		if len(tr.Intervals) > 6 {
			t.Fatalf("weekly-report trace has %d sessions in 5 weeks", len(tr.Intervals))
		}
	}
	if !found {
		t.Fatal("no weekly-report trace generated")
	}
}
