// Package workload generates synthetic customer-activity traces for
// serverless databases.
//
// The ProRP paper evaluates on proprietary production telemetry from four
// large Azure regions. That data is not available, so this package is the
// substitution documented in DESIGN.md: seeded generators for the activity
// archetypes the paper and its cited utilization studies describe —
// office-hours databases with a daily pattern, nightly batch jobs, nearly
// always-on services, bursty dev/test databases with unpredictable sessions,
// and dormant databases. Region profiles (EU1, EU2, US1, US2) mix the
// archetypes in slightly different proportions. The mixes are calibrated so
// the aggregate statistics the paper reports hold: most idle intervals are
// short but contribute little total idle time (Figure 3), and 60-68 % of
// first logins land inside a 7-hour logical pause under the reactive policy
// (Figure 6).
//
// Everything is driven by an explicit seed: the same seed yields the same
// traces, making every experiment reproducible.
package workload

import (
	"fmt"
	"math/rand"
	"sort"
)

const (
	day  = int64(86400)
	hour = int64(3600)
	min  = int64(60)
)

// Pattern is a customer-activity archetype.
type Pattern int

const (
	// Office: weekday working-hours activity with a stable daily phase and
	// a few short intra-day breaks.
	Office Pattern = iota
	// NightBatch: one short activity burst at a fixed nightly hour (ETL
	// and maintenance jobs).
	NightBatch
	// AlwaysOn: near-continuous activity with brief gaps.
	AlwaysOn
	// Bursty: memoryless session arrivals around the clock (dev/test
	// databases) — the unpredictable tail.
	Bursty
	// Dormant: long-lived database that is touched rarely.
	Dormant
	// WeeklyReport: active on one fixed weekday only (weekly reporting and
	// consolidation jobs) — the workload weekly seasonality detects and
	// daily seasonality dilutes.
	WeeklyReport
	numPatterns
)

func (p Pattern) String() string {
	switch p {
	case Office:
		return "office"
	case NightBatch:
		return "night-batch"
	case AlwaysOn:
		return "always-on"
	case Bursty:
		return "bursty"
	case Dormant:
		return "dormant"
	case WeeklyReport:
		return "weekly-report"
	default:
		return fmt.Sprintf("Pattern(%d)", int(p))
	}
}

// Interval is one contiguous period of customer activity.
type Interval struct {
	Start int64
	End   int64
}

// Duration returns the interval length in seconds.
func (iv Interval) Duration() int64 { return iv.End - iv.Start }

// Trace is the full activity history of one database over the simulated
// horizon.
type Trace struct {
	DB        int
	Pattern   Pattern
	Birth     int64 // creation time = start of the first activity
	Intervals []Interval
}

// Validate checks the trace invariants the engine relies on: intervals are
// non-empty, strictly ordered, separated by at least a minute, and the
// first one starts at Birth.
func (t Trace) Validate() error {
	if len(t.Intervals) == 0 {
		return fmt.Errorf("workload: trace %d has no intervals", t.DB)
	}
	if t.Intervals[0].Start != t.Birth {
		return fmt.Errorf("workload: trace %d birth %d != first start %d",
			t.DB, t.Birth, t.Intervals[0].Start)
	}
	for i, iv := range t.Intervals {
		if iv.End <= iv.Start {
			return fmt.Errorf("workload: trace %d interval %d empty (%d..%d)",
				t.DB, i, iv.Start, iv.End)
		}
		if i > 0 && iv.Start < t.Intervals[i-1].End+min {
			return fmt.Errorf("workload: trace %d interval %d starts %d, previous ends %d",
				t.DB, i, iv.Start, t.Intervals[i-1].End)
		}
	}
	return nil
}

// IdleGaps returns the idle intervals between consecutive activity
// intervals — the raw material of Figure 3.
func (t Trace) IdleGaps() []Interval {
	var gaps []Interval
	for i := 1; i < len(t.Intervals); i++ {
		gaps = append(gaps, Interval{
			Start: t.Intervals[i-1].End,
			End:   t.Intervals[i].Start,
		})
	}
	return gaps
}

// Logins returns the start timestamps of all intervals.
func (t Trace) Logins() []int64 {
	out := make([]int64, len(t.Intervals))
	for i, iv := range t.Intervals {
		out[i] = iv.Start
	}
	return out
}

// Profile is a region mix: the fraction of databases following each
// archetype plus region-level knobs. Fractions must sum to 1.
type Profile struct {
	Name string
	// Mix[p] is the fraction of databases following Pattern p.
	Mix [numPatterns]float64
	// NewDBFraction of databases are created mid-simulation instead of
	// existing from the start (they exercise the new-database paths).
	NewDBFraction float64
	// WeekendProb is the probability an Office database also works
	// weekends.
	WeekendProb float64
	// JitterSec is the day-to-day jitter of pattern phases.
	JitterSec int64
	// DriftDay and DriftSec model data drift (Section 8 of the paper: the
	// training pipeline exists because customer activity changes over
	// time): from day DriftDay on, every patterned database's phase moves
	// by DriftSec. Zero DriftDay disables drift.
	DriftDay int
	DriftSec int64
}

// Validate checks the profile.
func (p Profile) Validate() error {
	sum := 0.0
	for _, f := range p.Mix {
		if f < 0 {
			return fmt.Errorf("workload: profile %q has negative mix entry", p.Name)
		}
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("workload: profile %q mix sums to %v, want 1", p.Name, sum)
	}
	if p.NewDBFraction < 0 || p.NewDBFraction > 1 {
		return fmt.Errorf("workload: profile %q new-db fraction %v", p.Name, p.NewDBFraction)
	}
	if p.JitterSec < 0 {
		return fmt.Errorf("workload: profile %q negative jitter", p.Name)
	}
	return nil
}

// Region profiles. The four largest regions of the paper's evaluation
// differ in their archetype mix: the European regions skew toward
// office-hours workloads, the US regions carry more dev/test burstiness.
func regionProfiles() []Profile {
	// The dormant fraction dominates every region: production regions are
	// full of databases that sit physically paused for days — that is what
	// keeps the fleet-wide idle (logical pause) share in the paper's
	// 5-12 % band while the active minority still generates most logins.
	return []Profile{
		{
			Name: "EU1",
			Mix: [numPatterns]float64{
				Office: 0.16, NightBatch: 0.08, AlwaysOn: 0.06, Bursty: 0.12, Dormant: 0.54, WeeklyReport: 0.04,
			},
			NewDBFraction: 0.08, WeekendProb: 0.40, JitterSec: 30 * min,
		},
		{
			Name: "EU2",
			Mix: [numPatterns]float64{
				Office: 0.18, NightBatch: 0.08, AlwaysOn: 0.05, Bursty: 0.12, Dormant: 0.53, WeeklyReport: 0.04,
			},
			NewDBFraction: 0.07, WeekendProb: 0.38, JitterSec: 35 * min,
		},
		{
			Name: "US1",
			Mix: [numPatterns]float64{
				Office: 0.13, NightBatch: 0.08, AlwaysOn: 0.07, Bursty: 0.15, Dormant: 0.53, WeeklyReport: 0.04,
			},
			NewDBFraction: 0.10, WeekendProb: 0.45, JitterSec: 40 * min,
		},
		{
			Name: "US2",
			Mix: [numPatterns]float64{
				Office: 0.12, NightBatch: 0.09, AlwaysOn: 0.06, Bursty: 0.16, Dormant: 0.53, WeeklyReport: 0.04,
			},
			NewDBFraction: 0.09, WeekendProb: 0.45, JitterSec: 40 * min,
		},
	}
}

// Region returns the named region profile (EU1, EU2, US1, US2).
func Region(name string) (Profile, error) {
	for _, p := range regionProfiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("workload: unknown region %q", name)
}

// RegionNames lists the available region profiles in evaluation order.
func RegionNames() []string { return []string{"EU1", "EU2", "US1", "US2"} }

// Generator produces deterministic traces for one region.
type Generator struct {
	rng     *rand.Rand
	profile Profile
}

// NewGenerator returns a generator for the profile, seeded for
// reproducibility.
func NewGenerator(seed int64, profile Profile) (*Generator, error) {
	if err := profile.Validate(); err != nil {
		return nil, err
	}
	return &Generator{rng: rand.New(rand.NewSource(seed)), profile: profile}, nil
}

// Generate produces traces for n databases over [from, to).
func (g *Generator) Generate(n int, from, to int64) []Trace {
	traces := make([]Trace, 0, n)
	for i := 0; i < n; i++ {
		traces = append(traces, g.trace(i, from, to))
	}
	return traces
}

// pickPattern samples the profile mix.
func (g *Generator) pickPattern() Pattern {
	x := g.rng.Float64()
	acc := 0.0
	for p := Pattern(0); p < numPatterns; p++ {
		acc += g.profile.Mix[p]
		if x < acc {
			return p
		}
	}
	return Dormant
}

func (g *Generator) trace(db int, from, to int64) Trace {
	pattern := g.pickPattern()
	birthFrom := from
	if g.rng.Float64() < g.profile.NewDBFraction {
		// Born mid-simulation: uniformly within the first 80% of the
		// horizon so it still produces some activity.
		birthFrom = from + g.rng.Int63n((to-from)*4/5)
	}

	var raw []Interval
	switch pattern {
	case Office:
		raw = g.office(birthFrom, to)
	case NightBatch:
		raw = g.nightBatch(birthFrom, to)
	case AlwaysOn:
		raw = g.alwaysOn(birthFrom, to)
	case Bursty:
		raw = g.bursty(birthFrom, to)
	case WeeklyReport:
		raw = g.weeklyReport(birthFrom, to)
	default:
		raw = g.dormant(birthFrom, to)
	}
	ivs := normalize(raw, birthFrom, to)
	if len(ivs) == 0 {
		// Degenerate draw (e.g. a dormant database born at the very end):
		// give it a single minimal session so every database exists.
		ivs = []Interval{{Start: birthFrom, End: birthFrom + 10*min}}
		if ivs[0].End > to {
			ivs[0].End = to
		}
		if ivs[0].End <= ivs[0].Start {
			ivs[0].End = ivs[0].Start + min
		}
	}
	return Trace{DB: db, Pattern: pattern, Birth: ivs[0].Start, Intervals: ivs}
}

// office emits weekday working sessions: a per-database phase around 8-10
// AM, 7-9 working hours cut into 2-4 sessions by short breaks.
func (g *Generator) office(from, to int64) []Interval {
	phase := 8*hour + g.rng.Int63n(2*hour)   // work starts 08:00-10:00
	workLen := 7*hour + g.rng.Int63n(2*hour) // 7-9 h on site
	worksWeekends := g.rng.Float64() < g.profile.WeekendProb
	skipDayProb := 0.02 + g.rng.Float64()*0.05 // vacation, sick days

	var out []Interval
	for d := from / day; d*day < to; d++ {
		dow := int(d % 7)
		if dow >= 5 && !worksWeekends {
			continue
		}
		if g.rng.Float64() < skipDayProb {
			continue
		}
		start := d*day + phase + g.drift(d) + g.jitter()
		end := start + workLen + g.jitter()
		// Split the working day into sessions separated by short breaks.
		nBreaks := 1 + g.rng.Intn(3) // 1-3 breaks -> 2-4 sessions
		cur := start
		for b := 0; b < nBreaks; b++ {
			sessLen := (end - cur) / int64(nBreaks-b+1)
			if sessLen < 30*min {
				break
			}
			gap := 10*min + g.rng.Int63n(40*min)
			out = append(out, Interval{Start: cur, End: cur + sessLen})
			cur += sessLen + gap
		}
		if cur < end {
			out = append(out, Interval{Start: cur, End: end})
		}
	}
	return out
}

// nightBatch emits one nightly burst at a fixed hour.
func (g *Generator) nightBatch(from, to int64) []Interval {
	phase := g.rng.Int63n(5 * hour)       // 00:00-05:00
	dur := 30*min + g.rng.Int63n(150*min) // 0.5-3 h
	skipProb := 0.02 + g.rng.Float64()*0.08

	var out []Interval
	for d := from / day; d*day < to; d++ {
		if g.rng.Float64() < skipProb {
			continue
		}
		start := d*day + phase + g.drift(d) + g.jitter()
		out = append(out, Interval{Start: start, End: start + dur + g.jitter()/2})
	}
	return out
}

// alwaysOn emits long sessions with brief gaps.
func (g *Generator) alwaysOn(from, to int64) []Interval {
	var out []Interval
	cur := from + g.rng.Int63n(hour)
	for cur < to {
		sess := 2*hour + g.rng.Int63n(6*hour)
		out = append(out, Interval{Start: cur, End: cur + sess})
		var gap int64
		if g.rng.Float64() < 0.12 {
			gap = hour + g.rng.Int63n(3*hour) // occasional longer breather
		} else {
			gap = 5*min + g.rng.Int63n(25*min)
		}
		cur += sess + gap
	}
	return out
}

// bursty emits memoryless sessions: exponential inter-arrival and duration.
// Mean inter-arrival is 2.5-5 days: sparse enough that no 7-hour window
// accumulates the confidence threshold over 28 days of history, so these
// databases are genuinely unpredictable — the cold-resume tail of the
// fleet under either policy.
func (g *Generator) bursty(from, to int64) []Interval {
	meanGap := float64(72*hour) + g.rng.Float64()*float64(72*hour)
	meanDur := float64(30*min) + g.rng.Float64()*float64(60*min)

	var out []Interval
	cur := from + g.expDraw(meanGap)/4
	for cur < to {
		dur := min + g.expDraw(meanDur)
		out = append(out, Interval{Start: cur, End: cur + dur})
		cur += dur + min + g.expDraw(meanGap)
	}
	return out
}

// weeklyReport emits one office-hours burst on a fixed weekday.
func (g *Generator) weeklyReport(from, to int64) []Interval {
	dow := int64(g.rng.Intn(5))            // a fixed weekday
	phase := 8*hour + g.rng.Int63n(4*hour) // 08:00-12:00
	dur := hour + g.rng.Int63n(3*hour)     // 1-4 h
	skipProb := 0.03 + g.rng.Float64()*0.05

	var out []Interval
	for d := from / day; d*day < to; d++ {
		if d%7 != dow {
			continue
		}
		if g.rng.Float64() < skipProb {
			continue
		}
		start := d*day + phase + g.drift(d) + g.jitter()
		out = append(out, Interval{Start: start, End: start + dur})
	}
	return out
}

// dormant emits a rare session every one to two and a half weeks.
func (g *Generator) dormant(from, to int64) []Interval {
	var out []Interval
	cur := from + g.rng.Int63n(2*day)
	for cur < to {
		dur := 20*min + g.rng.Int63n(100*min)
		out = append(out, Interval{Start: cur, End: cur + dur})
		cur += 8*day + g.rng.Int63n(14*day)
	}
	return out
}

// drift returns the phase shift in effect on day d.
func (g *Generator) drift(d int64) int64 {
	if g.profile.DriftDay > 0 && d >= int64(g.profile.DriftDay) {
		return g.profile.DriftSec
	}
	return 0
}

func (g *Generator) jitter() int64 {
	if g.profile.JitterSec == 0 {
		return 0
	}
	return g.rng.Int63n(2*g.profile.JitterSec) - g.profile.JitterSec
}

// expDraw samples an exponential with the given mean, truncated to avoid
// pathological extremes.
func (g *Generator) expDraw(mean float64) int64 {
	v := g.rng.ExpFloat64() * mean
	if v > 10*mean {
		v = 10 * mean
	}
	return int64(v)
}

// normalize sorts intervals, clips them to [from, to), merges overlaps and
// near-adjacent sessions (gap < 1 minute), and drops empty leftovers.
func normalize(ivs []Interval, from, to int64) []Interval {
	clipped := ivs[:0]
	for _, iv := range ivs {
		if iv.Start < from {
			iv.Start = from
		}
		if iv.End > to {
			iv.End = to
		}
		if iv.End-iv.Start >= min {
			clipped = append(clipped, iv)
		}
	}
	sort.Slice(clipped, func(i, j int) bool { return clipped[i].Start < clipped[j].Start })

	var out []Interval
	for _, iv := range clipped {
		if n := len(out); n > 0 && iv.Start < out[n-1].End+min {
			if iv.End > out[n-1].End {
				out[n-1].End = iv.End
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}
