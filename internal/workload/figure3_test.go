package workload

import (
	"testing"
)

// figure3Gaps generates a seeded week of traces for every region and
// returns the pooled idle-gap lengths in seconds.
func figure3Gaps(t *testing.T, seed int64) []int64 {
	t.Helper()
	const week = 7 * 24 * 3600
	var gaps []int64
	for _, name := range RegionNames() {
		profile, err := Region(name)
		if err != nil {
			t.Fatal(err)
		}
		gen, err := NewGenerator(seed, profile)
		if err != nil {
			t.Fatal(err)
		}
		for _, tr := range gen.Generate(100, 0, week) {
			for _, gap := range tr.IdleGaps() {
				gaps = append(gaps, gap.End-gap.Start)
			}
		}
	}
	return gaps
}

// TestIdleGapsReproduceFigure3Shape is the arrival-realism property test:
// the paper's Figure 3 shows that while *most* idle intervals are short
// (minutes — intra-day breaks), almost all of the *idle time* is carried
// by the long tail (overnight and multi-day gaps). A pause policy tuned
// on gap counts alone would chase the wrong mass, which is exactly why
// the paper separates the two views; the generator must preserve that
// split or every downstream QoS/COGS number is calibrated on the wrong
// workload.
//
// Thresholds are deliberately loose bands around the measured seeded
// values, so the test pins the shape, not one RNG stream.
func TestIdleGapsReproduceFigure3Shape(t *testing.T) {
	gaps := figure3Gaps(t, 1)
	if len(gaps) < 1000 {
		t.Fatalf("only %d idle gaps; too few to test a distribution", len(gaps))
	}

	const (
		hour = 3600
		long = 7 * hour // past any intra-day break, into overnight territory
	)
	var (
		shortCount, longCount      int
		shortTime, longTime, total int64
	)
	for _, g := range gaps {
		total += g
		if g <= hour {
			shortCount++
			shortTime += g
		}
		if g > long {
			longCount++
			longTime += g
		}
	}
	countShare := func(n int) float64 { return 100 * float64(n) / float64(len(gaps)) }
	timeShare := func(s int64) float64 { return 100 * float64(s) / float64(total) }

	t.Logf("%d gaps: <=1h %.1f%% of count carrying %.1f%% of idle time; >7h %.1f%% of count carrying %.1f%% of idle time",
		len(gaps), countShare(shortCount), timeShare(shortTime),
		countShare(longCount), timeShare(longTime))

	// Most gaps are short...
	if got := countShare(shortCount); got < 50 {
		t.Errorf("gaps <= 1h are %.1f%% of all gaps, want >= 50%% (Figure 3: most idle intervals are short)", got)
	}
	// ...but they carry only a sliver of the idle time...
	if got := timeShare(shortTime); got > 25 {
		t.Errorf("gaps <= 1h carry %.1f%% of idle time, want <= 25%% (Figure 3: short gaps are cheap)", got)
	}
	// ...while the rare long gaps carry most of it — the COGS opportunity
	// the whole pause policy exists for.
	if got := countShare(longCount); got > 50 {
		t.Errorf("gaps > 7h are %.1f%% of all gaps, want <= 50%% (they must be the minority)", got)
	}
	if got := timeShare(longTime); got < 50 {
		t.Errorf("gaps > 7h carry %.1f%% of idle time, want >= 50%% (Figure 3: the tail carries the idle mass)", got)
	}
}

// TestIdleGapDistributionDeterministic pins that the pooled gap
// distribution is a pure function of the seed, so the Figure 3 assertions
// above (and every loadgen schedule) are reproducible.
func TestIdleGapDistributionDeterministic(t *testing.T) {
	a := figure3Gaps(t, 9)
	b := figure3Gaps(t, 9)
	if len(a) != len(b) {
		t.Fatalf("same seed produced %d vs %d gaps", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("gap %d differs: %d vs %d", i, a[i], b[i])
		}
	}
	c := figure3Gaps(t, 10)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical gap streams")
	}
}
