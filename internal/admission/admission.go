// Package admission implements priority-classed admission control for
// the serving path.
//
// The paper's whole value proposition is login QoS: a resume decision
// must be cheap and fast even when the fleet is drowning in history
// appends or background scatter traffic. Plain queue caps cannot
// deliver that — they treat a login the same as the 10k history
// appends queued in front of it. This package classifies every request
// into a priority class (decisions/logins > reads > history writes >
// background/scatter) and sheds load from the bottom of that order
// using two signals:
//
//   - Sojourn time (CoDel-style): the controller tracks the admission
//     time of every in-flight request. When the OLDEST in-flight
//     request has been running longer than the target delay, the
//     server is congested — queuing more work only adds latency — so
//     low classes are refused. The shed floor escalates with the
//     overload: > target sheds background, > 2× target also sheds
//     writes, > 4× target also sheds reads. Decision traffic is never
//     sojourn-shed (subject to SheddableClasses).
//   - Depth: a hard in-flight cap sheds everything below decision
//     class at MaxInflight, and decisions themselves at 2× MaxInflight
//     — the memory backstop of last resort.
//
// A refusal is an ErrShedLoad, which the HTTP layer maps to 429 with a
// Retry-After derived from the observed sojourn. Per-class admitted /
// shed / in-flight counters feed the prorp_admission_* metrics.
//
// The package also provides RetryBudget, a token bucket (gRPC-style)
// that caps client-side retries during overload: each first attempt
// earns a fraction of a token, each retry spends a whole one, so
// retries are bounded to a fraction of live traffic and cannot turn a
// brownout into a retry storm.
package admission

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrShedLoad is returned by Acquire when the controller refuses a
// request to protect higher-priority traffic. The HTTP layer maps it
// to 429 Too Many Requests with a Retry-After.
var ErrShedLoad = errors.New("admission: load shed")

// Class is a request's priority class. Lower values are MORE
// important; shedding always starts from the bottom (Background).
type Class int

const (
	// Decision: login/resume decisions and cluster control-plane
	// liveness (votes, announces) — the traffic the system exists to
	// protect. Shed only at the 2× MaxInflight backstop.
	Decision Class = iota
	// Read: state reads and KPI surfaces.
	Read
	// Write: history appends — logout events, database create/delete.
	Write
	// Background: snapshots, scatter fan-in, shard control, migration.
	Background

	numClasses
)

func (c Class) String() string {
	switch c {
	case Decision:
		return "decision"
	case Read:
		return "read"
	case Write:
		return "write"
	case Background:
		return "background"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Classes returns every class in priority order, for metric
// registration loops.
func Classes() []Class {
	return []Class{Decision, Read, Write, Background}
}

// Defaults for zero-valued Config fields.
const (
	DefaultTargetDelay      = 200 * time.Millisecond
	DefaultMaxInflight      = 1024
	DefaultSheddableClasses = 3
)

// Config parameterizes a Controller.
type Config struct {
	// TargetDelay is the CoDel-style sojourn target: once the oldest
	// in-flight request exceeds it, low classes are shed. 0 = default.
	TargetDelay time.Duration
	// MaxInflight is the depth cap: at MaxInflight in-flight requests
	// everything below Decision is shed, at 2× even decisions are.
	// 0 = default.
	MaxInflight int
	// SheddableClasses is how many classes, counted from the bottom
	// (Background first), sojourn shedding may refuse. 3 (default)
	// sheds background, writes, and reads but never decisions; 4 lets
	// extreme sojourn shed decisions too; 1 sheds only background.
	// 0 = default.
	SheddableClasses int
	// Now supplies time; nil = wall clock.
	Now func() time.Time
}

// entry is one in-flight request in the admission-ordered intrusive
// list. Admission order is time order, so the list head is always the
// oldest in-flight request — sojourn reads are O(1).
type entry struct {
	at         time.Time
	class      Class
	prev, next *entry
}

// classStats are one class's counters, guarded by the controller mutex.
type classStats struct {
	admitted uint64
	shed     uint64
	inflight int
}

// Controller is the admission gate. One instance guards a server's
// whole instrumented surface.
type Controller struct {
	mu       sync.Mutex
	now      func() time.Time
	target   time.Duration
	maxIn    int
	sheddble int

	head, tail *entry
	inflight   int
	stats      [numClasses]classStats
}

// NewController builds a controller from cfg, applying defaults to
// zero fields.
func NewController(cfg Config) *Controller {
	if cfg.TargetDelay <= 0 {
		cfg.TargetDelay = DefaultTargetDelay
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = DefaultMaxInflight
	}
	if cfg.SheddableClasses <= 0 {
		cfg.SheddableClasses = DefaultSheddableClasses
	}
	if cfg.SheddableClasses > int(numClasses) {
		cfg.SheddableClasses = int(numClasses)
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Controller{
		now:      cfg.Now,
		target:   cfg.TargetDelay,
		maxIn:    cfg.MaxInflight,
		sheddble: cfg.SheddableClasses,
	}
}

// TargetDelay returns the configured sojourn target — the natural
// Retry-After floor for a shed response.
func (c *Controller) TargetDelay() time.Duration { return c.target }

// Acquire admits or refuses a request of the given class. On admission
// it returns a release func the caller MUST invoke when the request
// finishes (idempotent); on refusal it returns ErrShedLoad.
func (c *Controller) Acquire(class Class) (func(), error) {
	if class < 0 || class >= numClasses {
		class = Background
	}
	c.mu.Lock()
	now := c.now()
	var sojourn time.Duration
	if c.head != nil {
		sojourn = now.Sub(c.head.at)
	}
	if int(class) >= c.shedFloor(sojourn) {
		c.stats[class].shed++
		inflight := c.inflight
		c.mu.Unlock()
		return nil, fmt.Errorf("%w (class %s, %d in flight, oldest %s)",
			ErrShedLoad, class, inflight, sojourn.Round(time.Millisecond))
	}
	e := &entry{at: now, class: class}
	if c.tail == nil {
		c.head, c.tail = e, e
	} else {
		e.prev = c.tail
		c.tail.next = e
		c.tail = e
	}
	c.inflight++
	c.stats[class].admitted++
	c.stats[class].inflight++
	c.mu.Unlock()

	var once sync.Once
	return func() { once.Do(func() { c.release(e) }) }, nil
}

// shedFloor computes the lowest class value currently refused: a
// request is shed when int(class) >= floor. numClasses means nothing
// is shed. Caller holds c.mu.
func (c *Controller) shedFloor(sojourn time.Duration) int {
	floor := int(numClasses)
	switch {
	case sojourn > 4*c.target:
		floor = int(Read)
	case sojourn > 2*c.target:
		floor = int(Write)
	case sojourn > c.target:
		floor = int(Background)
	}
	// SheddableClasses bounds how deep sojourn shedding may reach.
	if min := int(numClasses) - c.sheddble; floor < min {
		floor = min
	}
	// Depth caps override: the backstop sheds below decision at
	// MaxInflight and everything at 2× MaxInflight.
	if c.inflight >= 2*c.maxIn {
		floor = int(Decision)
	} else if c.inflight >= c.maxIn && floor > int(Read) {
		floor = int(Read)
	}
	return floor
}

// release unlinks an in-flight entry.
func (c *Controller) release(e *entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
	c.inflight--
	c.stats[e.class].inflight--
}

// Pressure is a point-in-time congestion snapshot for health surfaces
// and Retry-After computation.
type Pressure struct {
	Inflight      int
	OldestSojourn time.Duration
	// ShedFloor is the lowest class value currently refused;
	// int(numClasses) (4) means none.
	ShedFloor int
}

// Shedding reports whether any class is currently refused.
func (p Pressure) Shedding() bool { return p.ShedFloor < int(numClasses) }

// Pressure returns the controller's current congestion snapshot.
func (c *Controller) Pressure() Pressure {
	c.mu.Lock()
	defer c.mu.Unlock()
	var sojourn time.Duration
	if c.head != nil {
		sojourn = c.now().Sub(c.head.at)
	}
	return Pressure{
		Inflight:      c.inflight,
		OldestSojourn: sojourn,
		ShedFloor:     c.shedFloor(sojourn),
	}
}

// ClassStats is one class's counters.
type ClassStats struct {
	Admitted uint64
	Shed     uint64
	Inflight int
}

// Stats returns the per-class counters.
func (c *Controller) Stats(class Class) ClassStats {
	if class < 0 || class >= numClasses {
		return ClassStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats[class]
	return ClassStats{Admitted: s.admitted, Shed: s.shed, Inflight: s.inflight}
}

// RetryBudget is a token bucket bounding client-side retries
// (gRPC-style): each first attempt earns EarnRatio tokens (capped at
// Max), each retry spends a whole token. During overload the bucket
// drains and retries are refused, so the retry rate can never exceed
// EarnRatio of the live request rate.
type RetryBudget struct {
	mu     sync.Mutex
	tokens float64
	max    float64
	ratio  float64
	denied uint64
}

// Defaults for zero-valued NewRetryBudget arguments.
const (
	DefaultRetryBudgetMax   = 10
	DefaultRetryBudgetRatio = 0.1
)

// NewRetryBudget builds a budget with the given cap and earn ratio;
// zero or negative arguments take the defaults. The bucket starts
// full, so isolated failures always get their retry.
func NewRetryBudget(max, ratio float64) *RetryBudget {
	if max <= 0 {
		max = DefaultRetryBudgetMax
	}
	if ratio <= 0 {
		ratio = DefaultRetryBudgetRatio
	}
	return &RetryBudget{tokens: max, max: max, ratio: ratio}
}

// Earn credits the budget for one first attempt.
func (b *RetryBudget) Earn() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tokens += b.ratio
	if b.tokens > b.max {
		b.tokens = b.max
	}
}

// Spend consumes one retry token, reporting whether the retry is
// allowed. A refusal means the caller should surface the original
// failure instead of retrying.
func (b *RetryBudget) Spend() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		b.denied++
		return false
	}
	b.tokens--
	return true
}

// Denied returns how many retries the budget has refused.
func (b *RetryBudget) Denied() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.denied
}
