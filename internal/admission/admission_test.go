package admission

import (
	"errors"
	"sync"
	"testing"
	"time"
)

type manualClock struct {
	mu sync.Mutex
	t  time.Time
}

func newManualClock() *manualClock {
	return &manualClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *manualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *manualClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func mustAcquire(t *testing.T, c *Controller, class Class) func() {
	t.Helper()
	release, err := c.Acquire(class)
	if err != nil {
		t.Fatalf("Acquire(%v) = %v, want admitted", class, err)
	}
	return release
}

// TestSojournShedOrder tables the CoDel-style escalation: as the
// oldest in-flight request's sojourn grows past the target, classes
// are shed from the bottom of the priority order — background first,
// then writes, then reads, never decisions (at default config).
func TestSojournShedOrder(t *testing.T) {
	const target = 100 * time.Millisecond
	cases := []struct {
		name    string
		sojourn time.Duration
		shed    []Class // refused at this sojourn
		admit   []Class // still admitted
	}{
		{"at target nothing sheds", target,
			nil, []Class{Decision, Read, Write, Background}},
		{"past target background sheds", target + time.Millisecond,
			[]Class{Background}, []Class{Decision, Read, Write}},
		{"past 2x writes shed too", 2*target + time.Millisecond,
			[]Class{Background, Write}, []Class{Decision, Read}},
		{"past 4x reads shed too", 4*target + time.Millisecond,
			[]Class{Background, Write, Read}, []Class{Decision}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clock := newManualClock()
			c := NewController(Config{TargetDelay: target, Now: clock.Now})
			// One stuck decision-class request is the oldest in-flight.
			release := mustAcquire(t, c, Decision)
			defer release()
			clock.Advance(tc.sojourn)
			for _, class := range tc.shed {
				if _, err := c.Acquire(class); !errors.Is(err, ErrShedLoad) {
					t.Errorf("Acquire(%v) at sojourn %v = %v, want ErrShedLoad", class, tc.sojourn, err)
				}
				if got := c.Stats(class).Shed; got == 0 {
					t.Errorf("class %v shed counter not incremented", class)
				}
			}
			for _, class := range tc.admit {
				mustAcquire(t, c, class)()
			}
		})
	}
}

// TestSheddableClassesBound verifies the -admission-shed-classes knob:
// with only 1 sheddable class, extreme sojourn still sheds nothing
// above background; with 4, even decisions shed.
func TestSheddableClassesBound(t *testing.T) {
	const target = 100 * time.Millisecond
	t.Run("one sheddable class protects writes and reads", func(t *testing.T) {
		clock := newManualClock()
		c := NewController(Config{TargetDelay: target, SheddableClasses: 1, Now: clock.Now})
		release := mustAcquire(t, c, Decision)
		defer release()
		clock.Advance(10 * target)
		if _, err := c.Acquire(Background); !errors.Is(err, ErrShedLoad) {
			t.Fatalf("background = %v, want ErrShedLoad", err)
		}
		for _, class := range []Class{Decision, Read, Write} {
			mustAcquire(t, c, class)()
		}
	})
	t.Run("four sheddable classes shed decisions at extreme sojourn", func(t *testing.T) {
		clock := newManualClock()
		c := NewController(Config{TargetDelay: target, SheddableClasses: 4, Now: clock.Now})
		release := mustAcquire(t, c, Decision)
		defer release()
		clock.Advance(10 * target)
		if _, err := c.Acquire(Decision); err != nil {
			// Sojourn floor reaches Read at 4x; decisions only shed via
			// the depth backstop even with SheddableClasses=4.
			t.Fatalf("decision = %v, want admitted (sojourn never sheds below Read)", err)
		}
	})
}

// TestDepthCaps verifies the in-flight backstops: MaxInflight sheds
// everything below decision, 2x MaxInflight sheds decisions too, and
// releases reopen admission.
func TestDepthCaps(t *testing.T) {
	clock := newManualClock()
	c := NewController(Config{MaxInflight: 4, Now: clock.Now})
	var releases []func()
	for i := 0; i < 4; i++ {
		releases = append(releases, mustAcquire(t, c, Decision))
	}
	// At the cap: non-decision classes shed, decisions still admitted.
	for _, class := range []Class{Read, Write, Background} {
		if _, err := c.Acquire(class); !errors.Is(err, ErrShedLoad) {
			t.Fatalf("Acquire(%v) at cap = %v, want ErrShedLoad", class, err)
		}
	}
	for i := 0; i < 4; i++ {
		releases = append(releases, mustAcquire(t, c, Decision))
	}
	// At 2x the cap: even decisions shed.
	if _, err := c.Acquire(Decision); !errors.Is(err, ErrShedLoad) {
		t.Fatalf("Acquire(decision) at 2x cap = %v, want ErrShedLoad", err)
	}
	// Draining reopens admission, and release is idempotent.
	for _, r := range releases {
		r()
		r()
	}
	if p := c.Pressure(); p.Inflight != 0 {
		t.Fatalf("inflight after drain = %d, want 0", p.Inflight)
	}
	mustAcquire(t, c, Background)()
}

// TestOldestSojournTracking verifies the intrusive list keeps the
// oldest in-flight request at the head across out-of-order releases.
func TestOldestSojournTracking(t *testing.T) {
	clock := newManualClock()
	c := NewController(Config{TargetDelay: time.Second, Now: clock.Now})
	r1 := mustAcquire(t, c, Read)
	clock.Advance(100 * time.Millisecond)
	r2 := mustAcquire(t, c, Read)
	clock.Advance(100 * time.Millisecond)
	r3 := mustAcquire(t, c, Read)

	if got := c.Pressure().OldestSojourn; got != 200*time.Millisecond {
		t.Fatalf("oldest sojourn = %v, want 200ms", got)
	}
	r2() // middle release must not disturb the head
	if got := c.Pressure().OldestSojourn; got != 200*time.Millisecond {
		t.Fatalf("oldest sojourn after middle release = %v, want 200ms", got)
	}
	r1() // head release promotes the next-oldest survivor (r3, just admitted)
	if got := c.Pressure().OldestSojourn; got != 0 {
		t.Fatalf("oldest sojourn after head release = %v, want 0", got)
	}
	clock.Advance(50 * time.Millisecond)
	if got := c.Pressure().OldestSojourn; got != 50*time.Millisecond {
		t.Fatalf("oldest sojourn = %v, want 50ms", got)
	}
	r3()
	if got := c.Pressure().OldestSojourn; got != 0 {
		t.Fatalf("oldest sojourn when idle = %v, want 0", got)
	}
	if c.Pressure().Shedding() {
		t.Fatal("idle controller reports shedding")
	}
}

// TestPressureSnapshot verifies the health-surface view during
// congestion.
func TestPressureSnapshot(t *testing.T) {
	clock := newManualClock()
	c := NewController(Config{TargetDelay: 100 * time.Millisecond, Now: clock.Now})
	release := mustAcquire(t, c, Write)
	defer release()
	clock.Advance(150 * time.Millisecond)
	p := c.Pressure()
	if p.Inflight != 1 || p.OldestSojourn != 150*time.Millisecond {
		t.Fatalf("pressure = %+v", p)
	}
	if !p.Shedding() || p.ShedFloor != int(Background) {
		t.Fatalf("want shedding at background floor, got %+v", p)
	}
}

// TestAcquireConcurrency hammers the controller under the race
// detector: counters must balance and the list must end empty.
func TestAcquireConcurrency(t *testing.T) {
	c := NewController(Config{MaxInflight: 64})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				release, err := c.Acquire(Class(i % int(numClasses)))
				if err != nil {
					continue
				}
				release()
			}
		}(g)
	}
	wg.Wait()
	p := c.Pressure()
	if p.Inflight != 0 || p.OldestSojourn != 0 {
		t.Fatalf("pressure after drain = %+v", p)
	}
	var admitted uint64
	for _, class := range Classes() {
		st := c.Stats(class)
		if st.Inflight != 0 {
			t.Fatalf("class %v inflight = %d, want 0", class, st.Inflight)
		}
		admitted += st.Admitted
	}
	if admitted == 0 {
		t.Fatal("nothing admitted")
	}
}

// TestRetryBudget verifies the token bucket: starts full, drains one
// token per retry, earns back a fraction per first attempt, and
// refuses when empty.
func TestRetryBudget(t *testing.T) {
	b := NewRetryBudget(2, 0.5)
	if !b.Spend() || !b.Spend() {
		t.Fatal("fresh budget must allow its full cap of retries")
	}
	if b.Spend() {
		t.Fatal("empty budget allowed a retry")
	}
	if got := b.Denied(); got != 1 {
		t.Fatalf("denied = %d, want 1", got)
	}
	b.Earn() // 0.5 tokens: still under one whole token
	if b.Spend() {
		t.Fatal("fractional token allowed a retry")
	}
	b.Earn() // 1.0 tokens
	if !b.Spend() {
		t.Fatal("earned token refused")
	}
	for i := 0; i < 100; i++ {
		b.Earn()
	}
	if !b.Spend() || !b.Spend() {
		t.Fatal("budget must refill to its cap")
	}
	if b.Spend() {
		t.Fatal("budget exceeded its cap")
	}
}
