package loadgen

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"sync/atomic"
	"testing"
	"time"
)

func testScheduleConfig() ScheduleConfig {
	return ScheduleConfig{
		Seed:     42,
		Region:   "EU1",
		DBs:      4,
		Horizon:  48 * time.Hour,
		Duration: 2 * time.Second,
		Rate:     50,
	}
}

func TestBuildScheduleDeterministic(t *testing.T) {
	a, err := BuildSchedule(testScheduleConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildSchedule(testScheduleConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Ops, b.Ops) {
		t.Fatal("same config produced different schedules")
	}
	cfg := testScheduleConfig()
	cfg.Seed = 43
	c, err := BuildSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Ops, c.Ops) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestBuildScheduleShape(t *testing.T) {
	sched, err := BuildSchedule(testScheduleConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Ops) == 0 {
		t.Fatal("empty schedule")
	}
	if !sort.SliceIsSorted(sched.Ops, func(i, j int) bool {
		return sched.Ops[i].At < sched.Ops[j].At
	}) {
		t.Fatal("ops not sorted by scheduled time")
	}
	counts := map[Kind]int{}
	firsts := 0
	for _, op := range sched.Ops {
		counts[op.Kind]++
		if op.At < 0 || op.At > 2*time.Second {
			t.Fatalf("op scheduled outside run window: %v", op.At)
		}
		if op.FirstLogin {
			firsts++
			if op.Kind != OpLogin {
				t.Fatalf("FirstLogin on a %v op", op.Kind)
			}
			if op.IdleGap <= 0 {
				t.Fatalf("FirstLogin with non-positive idle gap %v", op.IdleGap)
			}
		}
		if op.Retry {
			t.Fatal("schedule contains a retry op")
		}
	}
	if firsts != sched.FirstLogins {
		t.Fatalf("FirstLogins = %d, counted %d", sched.FirstLogins, firsts)
	}
	if firsts == 0 {
		t.Fatal("no first logins in schedule: QoS would have an empty denominator")
	}
	if counts[OpLogin] != counts[OpLogout] {
		t.Fatalf("logins %d != logouts %d (every interval emits a pair)",
			counts[OpLogin], counts[OpLogout])
	}
	// Poisson mix: ~Rate*Duration arrivals, split ~0.9/0.1.
	mix := counts[OpHistory] + counts[OpKPI]
	if mix < 60 || mix > 140 {
		t.Fatalf("Poisson mix produced %d ops, want ~100", mix)
	}
	if counts[OpHistory] < 7*counts[OpKPI] {
		t.Fatalf("history/kpi split off: %d history vs %d kpi, want ~9:1",
			counts[OpHistory], counts[OpKPI])
	}
}

func TestBuildScheduleRampThins(t *testing.T) {
	base := testScheduleConfig()
	base.Duration = 4 * time.Second
	noRamp, err := BuildSchedule(base)
	if err != nil {
		t.Fatal(err)
	}
	ramped := base
	ramped.Ramp = 4 * time.Second
	withRamp, err := BuildSchedule(ramped)
	if err != nil {
		t.Fatal(err)
	}
	early := func(s *Schedule) (n int) {
		for _, op := range s.Ops {
			if (op.Kind == OpHistory || op.Kind == OpKPI) && op.At < time.Second {
				n++
			}
		}
		return n
	}
	if e, r := early(noRamp), early(withRamp); r >= e {
		t.Fatalf("ramp did not thin early arrivals: %d with ramp vs %d without", r, e)
	}
}

func TestScheduleConfigValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		mut  func(*ScheduleConfig)
	}{
		{"zero dbs", func(c *ScheduleConfig) { c.DBs = 0 }},
		{"zero duration", func(c *ScheduleConfig) { c.Duration = 0 }},
		{"negative rate", func(c *ScheduleConfig) { c.Rate = -1 }},
		{"ramp past duration", func(c *ScheduleConfig) { c.Ramp = time.Minute }},
		{"negative weight", func(c *ScheduleConfig) { c.HistoryWeight = -1 }},
		{"bad region", func(c *ScheduleConfig) { c.Region = "MARS" }},
	} {
		cfg := testScheduleConfig()
		tc.mut(&cfg)
		if _, err := BuildSchedule(cfg); err == nil {
			t.Errorf("%s: want error, got none", tc.name)
		}
	}
}

// fakeServer is a minimal stand-in for prorp-serve's endpoint surface,
// with injectable login behavior.
type fakeServer struct {
	mux      *http.ServeMux
	logins   atomic.Uint64
	allocate func(n uint64) (allocate, fromPrewarm bool)
	shed     func(n uint64) (status int, retryAfter string, shed bool)
}

func newFakeServer() *fakeServer {
	f := &fakeServer{
		mux:      http.NewServeMux(),
		allocate: func(uint64) (bool, bool) { return false, false },
	}
	f.mux.HandleFunc("POST /v1/db", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusCreated)
		fmt.Fprint(w, `{}`)
	})
	f.mux.HandleFunc("POST /v1/db/{id}/login", func(w http.ResponseWriter, r *http.Request) {
		n := f.logins.Add(1)
		if f.shed != nil {
			if status, ra, ok := f.shed(n); ok {
				if ra != "" {
					w.Header().Set("Retry-After", ra)
				}
				w.WriteHeader(status)
				fmt.Fprint(w, `{"error":"shed load"}`)
				return
			}
		}
		alloc, pw := f.allocate(n)
		json.NewEncoder(w).Encode(map[string]any{
			"event": "login", "allocate": alloc, "from_prewarm": pw, "state": "resumed",
		})
	})
	f.mux.HandleFunc("POST /v1/db/{id}/logout", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"event":"logout"}`)
	})
	f.mux.HandleFunc("GET /v1/db/{id}", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"state":"resumed"}`)
	})
	f.mux.HandleFunc("GET /v1/kpi", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"databases":4,"physically_paused":1}`)
	})
	return f
}

func testRunConfig(url string) RunConfig {
	cfg := RunConfig{
		Schedule:    testScheduleConfig(),
		Targets:     []string{url},
		Workers:     8,
		Timeout:     5 * time.Second,
		SampleEvery: 100 * time.Millisecond,
	}
	cfg.Schedule.Duration = 1 * time.Second
	cfg.Schedule.Rate = 30
	return cfg
}

func TestRunReportInvariants(t *testing.T) {
	f := newFakeServer()
	// Every login is a cold resume: the QoS floor case.
	f.allocate = func(uint64) (bool, bool) { return true, false }
	ts := httptest.NewServer(f.mux)
	defer ts.Close()

	rep, err := Run(testRunConfig(ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	if rep.CompletedOps == 0 {
		t.Fatal("no ops completed")
	}
	if got := rep.TotalErrors(); got != 0 {
		t.Fatalf("errors against a healthy server: %d\n%s", got, rep.Summary())
	}
	if rep.TotalShed() != 0 || rep.Retries != 0 {
		t.Fatalf("shed/retries against a non-shedding server: %d/%d", rep.TotalShed(), rep.Retries)
	}
	if rep.QueueDropped != 0 {
		t.Fatalf("queue dropped %d ops", rep.QueueDropped)
	}
	login := rep.Classes["login"]
	if login.OK == 0 || login.P50Ms <= 0 || login.P99Ms < login.P50Ms {
		t.Fatalf("login latency breakdown implausible: %+v", login)
	}
	if rep.QoS.FirstLogins == 0 {
		t.Fatal("no first logins scored")
	}
	if rep.QoS.DelayedPct != 100 || rep.QoS.QoSPct != 0 {
		t.Fatalf("all-allocate server must score 100%% delayed, got %+v", rep.QoS)
	}
	// Constant 4 databases, 1 physically paused: the COGS integral is an
	// exact quarter saved whatever the sample spacing.
	if rep.COGS.Samples < 2 {
		t.Fatalf("COGS needs >= 2 samples, got %d", rep.COGS.Samples)
	}
	if math.Abs(rep.COGS.SavedPct-25.0) > 0.01 {
		t.Fatalf("COGS saved = %.3f%%, want 25%%", rep.COGS.SavedPct)
	}
	if rep.ServerKPI == nil {
		t.Fatal("final server KPI scrape missing")
	}
	if rep.ThroughputRPS <= 0 {
		t.Fatal("throughput not computed")
	}
}

func TestRunScoresPrewarmHits(t *testing.T) {
	f := newFakeServer()
	f.allocate = func(uint64) (bool, bool) { return false, true }
	ts := httptest.NewServer(f.mux)
	defer ts.Close()

	rep, err := Run(testRunConfig(ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	if rep.QoS.DelayedLogins != 0 || rep.QoS.QoSPct != 100 {
		t.Fatalf("no-allocate server must score 0%% delayed: %+v", rep.QoS)
	}
	if rep.QoS.PrewarmHits != rep.QoS.FirstLogins {
		t.Fatalf("prewarm hits %d != first logins %d", rep.QoS.PrewarmHits, rep.QoS.FirstLogins)
	}
}

func TestRunHonorsRetryAfter(t *testing.T) {
	f := newFakeServer()
	// Shed every odd login attempt with 429 + Retry-After: 1s is too slow
	// for a test, so leave the header unparseable and rely on the default
	// 250ms backoff; the retried attempt (even counter) succeeds.
	f.shed = func(n uint64) (int, string, bool) {
		if n%2 == 1 {
			return http.StatusTooManyRequests, "", true
		}
		return 0, "", false
	}
	ts := httptest.NewServer(f.mux)
	defer ts.Close()

	rep, err := Run(testRunConfig(ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	login := rep.Classes["login"]
	if login.Shed == 0 {
		t.Fatal("server shed but client recorded none")
	}
	if rep.Retries == 0 {
		t.Fatal("sheds produced no retries")
	}
	// Every shed is either a retried primary attempt or a re-shed retry
	// (which burns its one-retry budget and is counted dropped).
	if rep.Retries+rep.RetriesDropped < login.Shed {
		t.Fatalf("retries %d + dropped %d < sheds %d: some shed op was neither retried nor accounted",
			rep.Retries, rep.RetriesDropped, login.Shed)
	}
	if login.Statuses["429"] == 0 {
		t.Fatal("429s not in status breakdown")
	}
	if got := rep.TotalErrors(); got != 0 {
		t.Fatalf("sheds must not count as errors, got %d errors", got)
	}
}

func TestRunMinIdleFiltersShortGaps(t *testing.T) {
	f := newFakeServer()
	f.allocate = func(uint64) (bool, bool) { return true, false }
	ts := httptest.NewServer(f.mux)
	defer ts.Close()

	cfg := testRunConfig(ts.URL)
	cfg.MinIdle = time.Hour // nothing in a 1s run can clear this
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.QoS.FirstLogins != 0 {
		t.Fatalf("MinIdle=1h still scored %d first logins", rep.QoS.FirstLogins)
	}
	if rep.QoS.SkippedShortIdle == 0 {
		t.Fatal("short-idle logins were not counted as skipped")
	}
}

func TestRunReportJSONRoundTrip(t *testing.T) {
	f := newFakeServer()
	ts := httptest.NewServer(f.mux)
	defer ts.Close()

	rep, err := Run(testRunConfig(ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.CompletedOps != rep.CompletedOps || len(back.Classes) != len(rep.Classes) {
		t.Fatal("report did not survive a JSON round trip")
	}
}
