package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"prorp/internal/obs"
)

// RunConfig parameterizes one load-generation run.
type RunConfig struct {
	// Schedule is the run plan's parameters; the schedule itself is built
	// (deterministically) inside Run.
	Schedule ScheduleConfig
	// Targets are the base URLs of the serving tier (e.g. one per group of
	// a partitioned cluster). Requests round-robin across them — any group
	// proxies to the owner, so aim matters only for load spreading.
	Targets []string
	// Workers is the HTTP worker pool size (default 16). Workers only
	// bound concurrency of in-flight requests; they never pace arrivals —
	// the dispatcher does, from the precomputed schedule.
	Workers int
	// Timeout bounds one HTTP request (default 10s).
	Timeout time.Duration
	// SampleEvery is the capacity-sampler period (default 500ms): each
	// tick scrapes /v1/kpi and feeds the COGS integral. 0 = default;
	// negative disables sampling.
	SampleEvery time.Duration
	// MinIdle is the idle-gap floor for QoS eligibility (see Scorer).
	MinIdle time.Duration
	// SkipCreate skips the setup phase that creates the schedule's
	// databases — for reruns against a warm server.
	SkipCreate bool
	// Client overrides the HTTP client (tests inject httptest clients).
	Client *http.Client
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

func (c *RunConfig) normalize() error {
	if len(c.Targets) == 0 {
		return fmt.Errorf("loadgen: no targets")
	}
	if c.Workers <= 0 {
		c.Workers = 16
	}
	if c.Timeout <= 0 {
		c.Timeout = 10 * time.Second
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = 500 * time.Millisecond
	}
	return nil
}

func (c *RunConfig) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// classStats accumulates one request class's client-side view. The
// histogram is lock-free; the status map takes the mutex (cheap against
// a network round-trip).
type classStats struct {
	hist     *obs.Histogram
	requests atomic.Uint64
	ok       atomic.Uint64
	shed     atomic.Uint64 // 429/503 answers (the admission gate speaking)
	errors   atomic.Uint64 // transport errors and timeouts

	mu       sync.Mutex
	statuses map[int]uint64
}

func newClassStats() *classStats {
	return &classStats{hist: obs.NewHistogram(obs.LatencyBuckets), statuses: map[int]uint64{}}
}

func (c *classStats) status(code int) {
	c.mu.Lock()
	c.statuses[code]++
	c.mu.Unlock()
}

// run owns one run's mutable state. Its queue is the open-loop boundary:
// the dispatcher (and retry timers) push scheduled operations in, workers
// drain as fast as the server lets them, and a slow server grows latency
// — never back-pressure on the arrival process.
type run struct {
	cfg    RunConfig
	client *http.Client
	scorer *Scorer
	stats  map[Kind]*classStats

	queue  chan Op
	opsWG  sync.WaitGroup // outstanding ops (incl. scheduled retries)
	nextTg atomic.Uint64  // round-robin target cursor

	mu     sync.Mutex
	closed bool

	start        time.Time
	retries      atomic.Uint64 // shed ops re-enqueued after Retry-After
	retryDropped atomic.Uint64 // retries that missed the run window
	queueDropped atomic.Uint64 // enqueues refused on a full queue (bug guard)
}

// Run executes one load-generation run: build the schedule, create the
// databases, dispatch the ops open-loop, sample capacity, and score.
func Run(cfg RunConfig) (*Report, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	sched, err := BuildSchedule(cfg.Schedule)
	if err != nil {
		return nil, err
	}
	r := &run{
		cfg:    cfg,
		client: cfg.Client,
		scorer: &Scorer{MinIdle: cfg.MinIdle},
		stats:  map[Kind]*classStats{},
		// Headroom beyond the schedule covers every op being retried once;
		// the non-blocking enqueue below means a full queue drops (and
		// counts) rather than stalling the arrival process.
		queue: make(chan Op, 2*len(sched.Ops)+64),
	}
	if r.client == nil {
		r.client = &http.Client{Timeout: cfg.Timeout}
	}
	for _, k := range Kinds() {
		r.stats[k] = newClassStats()
	}

	if !cfg.SkipCreate {
		if err := r.createDBs(cfg.Schedule.DBs); err != nil {
			return nil, err
		}
	}

	var workers sync.WaitGroup
	for i := 0; i < cfg.Workers; i++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			for op := range r.queue {
				r.do(op)
				r.opsWG.Done()
			}
		}()
	}

	stopSampler := make(chan struct{})
	var sampler sync.WaitGroup
	if cfg.SampleEvery > 0 {
		sampler.Add(1)
		go r.sampleCapacity(stopSampler, &sampler)
	}

	cfg.logf("loadgen: %d ops over %v against %d target(s), %d workers",
		len(sched.Ops), cfg.Schedule.Duration, len(cfg.Targets), cfg.Workers)
	r.start = time.Now()
	r.dispatch(sched.Ops)

	// The schedule is fully dispatched; wait for in-flight ops and pending
	// retries, but never past one request-timeout of tail — an op stuck
	// longer than that is the client timeout firing anyway.
	done := make(chan struct{})
	go func() { r.opsWG.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(cfg.Timeout + time.Second):
		cfg.logf("loadgen: drain timed out after %v; reporting what completed", cfg.Timeout)
	}
	elapsed := time.Since(r.start)

	r.mu.Lock()
	r.closed = true
	r.mu.Unlock()
	close(r.queue)
	workers.Wait()
	close(stopSampler)
	sampler.Wait()

	// One final authoritative scrape for the report's server-side
	// cross-check (and so even a very short run has two capacity samples).
	finalKPI := r.scrapeKPI(true)

	return r.report(sched, elapsed, finalKPI), nil
}

// target returns the next round-robin base URL.
func (r *run) target() string {
	n := r.nextTg.Add(1)
	return r.cfg.Targets[int(n-1)%len(r.cfg.Targets)]
}

// createDBs provisions the schedule's databases before the measured run.
// A freshly started cluster may still be electing or warming breakers, so
// retryable statuses back off briefly instead of failing the run.
func (r *run) createDBs(n int) error {
	for id := 1; id <= n; id++ {
		body := fmt.Sprintf(`{"id":%d}`, id)
		var lastErr error
		for attempt := 0; attempt < 40; attempt++ {
			resp, err := r.client.Post(r.target()+"/v1/db", "application/json",
				bytes.NewReader([]byte(body)))
			if err != nil {
				lastErr = err
			} else {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch {
				case resp.StatusCode == http.StatusCreated:
					lastErr = nil
				case resp.StatusCode == http.StatusConflict:
					lastErr = nil // already exists: a rerun against a warm server
				default:
					lastErr = fmt.Errorf("create db %d: status %d", id, resp.StatusCode)
					if resp.StatusCode == http.StatusTooManyRequests ||
						resp.StatusCode >= http.StatusInternalServerError {
						time.Sleep(100 * time.Millisecond)
						continue
					}
				}
			}
			break
		}
		if lastErr != nil {
			return lastErr
		}
	}
	r.cfg.logf("loadgen: created %d databases", n)
	return nil
}

// dispatch releases ops into the queue at their scheduled times. It
// sleeps between releases and never waits on workers: the open-loop
// contract lives here.
func (r *run) dispatch(ops []Op) {
	for _, op := range ops {
		if d := time.Until(r.start.Add(op.At)); d > 0 {
			time.Sleep(d)
		}
		r.opsWG.Add(1)
		if !r.enqueue(op) {
			r.opsWG.Done()
		}
	}
}

// enqueue pushes an op unless the run is over or the queue is full (both
// counted, neither blocking).
func (r *run) enqueue(op Op) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		r.retryDropped.Add(1)
		return false
	}
	select {
	case r.queue <- op:
		return true
	default:
		r.queueDropped.Add(1)
		return false
	}
}

// do issues one op and folds the outcome into the stats and the scorer.
func (r *run) do(op Op) {
	st := r.stats[op.Kind]
	st.requests.Add(1)
	base := r.target()
	var (
		resp *http.Response
		err  error
	)
	switch op.Kind {
	case OpLogin:
		resp, err = r.client.Post(base+fmt.Sprintf("/v1/db/%d/login", op.DB), "application/json", nil)
	case OpLogout:
		resp, err = r.client.Post(base+fmt.Sprintf("/v1/db/%d/logout", op.DB), "application/json", nil)
	case OpHistory:
		resp, err = r.client.Get(base + fmt.Sprintf("/v1/db/%d", op.DB))
	case OpKPI:
		resp, err = r.client.Get(base + "/v1/kpi")
	}
	// Latency is measured from the *scheduled* send time: queueing delay
	// caused by a saturated server (or pool) is part of what the customer
	// would have seen, so it belongs in the histogram.
	latency := time.Since(r.start.Add(op.At))

	if err != nil {
		st.errors.Add(1)
		r.scoreLogin(op, nil, true)
		return
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	st.status(resp.StatusCode)

	if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
		st.shed.Add(1)
		r.scheduleRetry(op, resp.Header.Get("Retry-After"))
		r.scoreLogin(op, nil, true)
		return
	}
	if resp.StatusCode != http.StatusOK {
		st.errors.Add(1)
		r.scoreLogin(op, nil, true)
		return
	}
	st.ok.Add(1)
	// Retried ops keep their class histogram out of the picture: their
	// scheduled time has long passed, so the "latency" would really be
	// the Retry-After delay, not the server's.
	if !op.Retry {
		st.hist.Observe(latency.Seconds())
	}
	if op.Kind == OpLogin {
		var d struct {
			Allocate    bool `json:"allocate"`
			FromPrewarm bool `json:"from_prewarm"`
		}
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&d); err != nil {
			r.scoreLogin(op, nil, true)
			return
		}
		r.scoreLogin(op, &d, false)
	}
}

// scoreLogin feeds a first login's outcome to the scorer exactly once —
// on the primary attempt. Retries never feed QoS (the schedule's ground
// truth is about the scheduled instant, not a Retry-After later).
func (r *run) scoreLogin(op Op, d *struct {
	Allocate    bool `json:"allocate"`
	FromPrewarm bool `json:"from_prewarm"`
}, failed bool) {
	if op.Kind != OpLogin || !op.FirstLogin || op.Retry {
		return
	}
	out := LoginOutcome{FirstLogin: true, IdleGap: op.IdleGap, Failed: failed}
	if d != nil {
		out.Allocate, out.FromPrewarm = d.Allocate, d.FromPrewarm
	}
	r.scorer.ObserveLogin(out)
}

// scheduleRetry honors the admission gate's Retry-After: the shed op is
// re-enqueued once, after the server-requested delay.
func (r *run) scheduleRetry(op Op, retryAfter string) {
	if op.Retry {
		r.retryDropped.Add(1) // one retry per op: a twice-shed op stays shed
		return
	}
	delay := 250 * time.Millisecond
	if secs, err := strconv.Atoi(retryAfter); err == nil && secs > 0 {
		delay = time.Duration(secs) * time.Second
	}
	op.Retry = true
	r.retries.Add(1)
	r.opsWG.Add(1)
	time.AfterFunc(delay, func() {
		if !r.enqueue(op) {
			r.opsWG.Done()
		}
	})
}

// sampleCapacity periodically scrapes /v1/kpi and feeds the COGS
// integral with the provisioned-database gauge.
func (r *run) sampleCapacity(stop <-chan struct{}, wg *sync.WaitGroup) {
	defer wg.Done()
	tick := time.NewTicker(r.cfg.SampleEvery)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			r.scrapeKPI(false)
		}
	}
}

// scrapeKPI fetches /v1/kpi, feeds the capacity sample, and (when asked)
// returns the raw body for the report's server-side cross-check.
func (r *run) scrapeKPI(keepBody bool) json.RawMessage {
	resp, err := r.client.Get(r.target() + "/v1/kpi")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil || resp.StatusCode != http.StatusOK {
		return nil
	}
	var kpi struct {
		Databases        int `json:"databases"`
		PhysicallyPaused int `json:"physically_paused"`
	}
	if err := json.Unmarshal(body, &kpi); err != nil {
		return nil
	}
	r.scorer.ObserveCapacity(time.Now(), kpi.Databases-kpi.PhysicallyPaused, kpi.Databases)
	if keepBody {
		return json.RawMessage(body)
	}
	return nil
}
