package loadgen

import (
	"sync"
	"time"
)

// Scorer folds request outcomes and capacity samples into the paper's two
// evaluation axes:
//
//   - QoS: the fraction of first logins (per the trace ground truth) that
//     the server answered with allocate=true — a cold resume, i.e. a
//     customer who waited. The paper reports the complement as "QoS": the
//     share of first logins that found resources available.
//   - COGS: provisioned database-seconds, integrated from periodic fleet
//     samples (databases minus physically-paused), against the always-on
//     baseline of every database provisioned for the whole run. The saved
//     fraction is the serverless value proposition.
//
// The scorer only counts a login toward the QoS denominator when its
// preceding idle gap (compressed wall-clock) was at least MinIdle: a gap
// shorter than the server's logical-pause delay cannot have deallocated
// anything, so scoring it would dilute the metric with free warm hits.
type Scorer struct {
	// MinIdle is the idle-gap floor for QoS eligibility (0 = count every
	// first login).
	MinIdle time.Duration

	mu sync.Mutex

	// QoS counters.
	firstLogins   int // QoS-eligible first logins observed
	delayedLogins int // ...that came back allocate=true (cold resume)
	prewarmHits   int // ...that came back from_prewarm=true (proactive win)
	skippedShort  int // first logins below MinIdle, excluded
	failedLogins  int // first logins that errored or were shed — unscorable

	// COGS samples.
	samples  []capacitySample
	lastSeen time.Time
}

type capacitySample struct {
	at          time.Time
	provisioned int // databases with resources allocated (not physically paused)
	total       int // databases in the fleet
}

// LoginOutcome is what one completed login tells the scorer.
type LoginOutcome struct {
	// FirstLogin and IdleGap come from the schedule's ground truth.
	FirstLogin bool
	IdleGap    time.Duration
	// Allocate is the server's decision field: true means the login found
	// resources reclaimed and had to wait for a resume — a delayed login.
	Allocate bool
	// FromPrewarm marks a warm hit attributable to a proactive resume.
	FromPrewarm bool
	// Failed marks a login that never produced a decision (transport
	// error or terminal shed): it cannot be scored warm or cold.
	Failed bool
}

// ObserveLogin folds one login outcome into the QoS counters.
func (s *Scorer) ObserveLogin(o LoginOutcome) {
	if !o.FirstLogin {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if o.IdleGap < s.MinIdle {
		s.skippedShort++
		return
	}
	if o.Failed {
		s.failedLogins++
		return
	}
	s.firstLogins++
	if o.Allocate {
		s.delayedLogins++
	}
	if o.FromPrewarm {
		s.prewarmHits++
	}
}

// ObserveCapacity folds one fleet sample into the COGS integral.
func (s *Scorer) ObserveCapacity(at time.Time, provisioned, total int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.samples = append(s.samples, capacitySample{at: at, provisioned: provisioned, total: total})
	s.lastSeen = at
}

// QoSReport is the scored QoS half of the run report.
type QoSReport struct {
	// FirstLogins is the QoS denominator: first logins after an idle gap
	// of at least the configured floor, with a scorable decision.
	FirstLogins int `json:"first_logins"`
	// DelayedLogins came back allocate=true: the customer waited for a
	// resume. DelayedPct is the paper's headline number (Figure 6 measures
	// its trajectory; lower is better).
	DelayedLogins int     `json:"delayed_logins"`
	DelayedPct    float64 `json:"delayed_pct"`
	// QoSPct is the complement — the share of first logins that found
	// resources available — matching the server's own qos_percent.
	QoSPct float64 `json:"qos_pct"`
	// PrewarmHits are warm first logins the server attributed to a
	// proactive resume (from_prewarm).
	PrewarmHits int `json:"prewarm_hits"`
	// SkippedShortIdle counts first logins excluded by the MinIdle floor;
	// FailedLogins counts first logins with no scorable decision.
	SkippedShortIdle int     `json:"skipped_short_idle"`
	FailedLogins     int     `json:"failed_logins"`
	MinIdleSeconds   float64 `json:"min_idle_seconds"`
}

// COGSReport is the provisioned-capacity half of the run report.
type COGSReport struct {
	// ProvisionedDBSeconds integrates provisioned databases over the run
	// (trapezoid over the capacity samples).
	ProvisionedDBSeconds float64 `json:"provisioned_db_seconds"`
	// AlwaysOnDBSeconds is the baseline: every database provisioned for
	// the whole sampled window.
	AlwaysOnDBSeconds float64 `json:"always_on_db_seconds"`
	// SavedPct is 100 * (1 - provisioned/always-on): the COGS the pause
	// policy recovered relative to never pausing.
	SavedPct float64 `json:"saved_pct"`
	// Samples is how many capacity samples the integral is built from.
	Samples int `json:"samples"`
}

// QoS computes the QoS report from the counters.
func (s *Scorer) QoS() QoSReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	rep := QoSReport{
		FirstLogins:      s.firstLogins,
		DelayedLogins:    s.delayedLogins,
		PrewarmHits:      s.prewarmHits,
		SkippedShortIdle: s.skippedShort,
		FailedLogins:     s.failedLogins,
		MinIdleSeconds:   s.MinIdle.Seconds(),
	}
	if s.firstLogins > 0 {
		rep.DelayedPct = 100 * float64(s.delayedLogins) / float64(s.firstLogins)
		rep.QoSPct = 100 - rep.DelayedPct
	}
	return rep
}

// COGS integrates the capacity samples into the COGS report. With fewer
// than two samples there is nothing to integrate and every field is zero.
func (s *Scorer) COGS() COGSReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	rep := COGSReport{Samples: len(s.samples)}
	for i := 1; i < len(s.samples); i++ {
		a, b := s.samples[i-1], s.samples[i]
		dt := b.at.Sub(a.at).Seconds()
		if dt <= 0 {
			continue
		}
		rep.ProvisionedDBSeconds += dt * float64(a.provisioned+b.provisioned) / 2
		rep.AlwaysOnDBSeconds += dt * float64(a.total+b.total) / 2
	}
	if rep.AlwaysOnDBSeconds > 0 {
		rep.SavedPct = 100 * (1 - rep.ProvisionedDBSeconds/rep.AlwaysOnDBSeconds)
	}
	return rep
}
