package loadgen

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"
)

// ClassReport is one request class's client-side breakdown.
type ClassReport struct {
	// Requests counts every attempt (including retries); OK, Shed and
	// Errors partition the outcomes. Shed is 429/503 — the admission gate
	// or a routing outage speaking, correlatable with the server's own
	// shed counters in ServerKPI. Errors are transport failures and
	// non-shed non-200 statuses.
	Requests uint64 `json:"requests"`
	OK       uint64 `json:"ok"`
	Shed     uint64 `json:"shed"`
	Errors   uint64 `json:"errors"`
	// Statuses maps HTTP status code to count.
	Statuses map[string]uint64 `json:"statuses,omitempty"`
	// Open-loop latency quantiles in milliseconds, measured from each
	// op's *scheduled* send time (retries excluded — their scheduled time
	// predates the Retry-After delay by design).
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MeanMs float64 `json:"mean_ms"`
}

// Report is the JSON document one run produces.
type Report struct {
	// Echo of the run parameters, so a report is self-describing.
	Seed            int64    `json:"seed"`
	Region          string   `json:"region"`
	DBs             int      `json:"dbs"`
	Targets         []string `json:"targets"`
	DurationSeconds float64  `json:"duration_seconds"`
	ElapsedSeconds  float64  `json:"elapsed_seconds"`
	RateRPS         float64  `json:"rate_rps"`

	// Volume and pacing.
	ScheduledOps   int     `json:"scheduled_ops"`
	CompletedOps   uint64  `json:"completed_ops"`
	ThroughputRPS  float64 `json:"throughput_rps"`
	Retries        uint64  `json:"retries"`
	RetriesDropped uint64  `json:"retries_dropped"`
	QueueDropped   uint64  `json:"queue_dropped"`

	// Per-class breakdowns, keyed by Kind.String().
	Classes map[string]ClassReport `json:"classes"`

	// The paper's two axes, scored client-side.
	QoS  QoSReport  `json:"qos"`
	COGS COGSReport `json:"cogs"`

	// ServerKPI is the final /v1/kpi scrape verbatim — the server-side
	// cross-check for the client-side numbers above (resume counters,
	// qos_percent, admission shed accounting).
	ServerKPI json.RawMessage `json:"server_kpi,omitempty"`
}

// report assembles the Report from the run's accumulated state.
func (r *run) report(sched *Schedule, elapsed time.Duration, finalKPI json.RawMessage) *Report {
	rep := &Report{
		Seed:            r.cfg.Schedule.Seed,
		Region:          r.cfg.Schedule.Region,
		DBs:             r.cfg.Schedule.DBs,
		Targets:         r.cfg.Targets,
		DurationSeconds: r.cfg.Schedule.Duration.Seconds(),
		ElapsedSeconds:  elapsed.Seconds(),
		RateRPS:         r.cfg.Schedule.Rate,
		ScheduledOps:    len(sched.Ops),
		Retries:         r.retries.Load(),
		RetriesDropped:  r.retryDropped.Load(),
		QueueDropped:    r.queueDropped.Load(),
		Classes:         map[string]ClassReport{},
		QoS:             r.scorer.QoS(),
		COGS:            r.scorer.COGS(),
		ServerKPI:       finalKPI,
	}
	for _, k := range Kinds() {
		st := r.stats[k]
		cr := ClassReport{
			Requests: st.requests.Load(),
			OK:       st.ok.Load(),
			Shed:     st.shed.Load(),
			Errors:   st.errors.Load(),
		}
		st.mu.Lock()
		if len(st.statuses) > 0 {
			cr.Statuses = map[string]uint64{}
			for code, n := range st.statuses {
				cr.Statuses[fmt.Sprintf("%d", code)] = n
			}
		}
		st.mu.Unlock()
		if st.hist.Count() > 0 {
			cr.P50Ms = st.hist.Quantile(0.50) * 1e3
			cr.P95Ms = st.hist.Quantile(0.95) * 1e3
			cr.P99Ms = st.hist.Quantile(0.99) * 1e3
			cr.MeanMs = st.hist.Sum() / float64(st.hist.Count()) * 1e3
		}
		rep.Classes[k.String()] = cr
		rep.CompletedOps += cr.OK
	}
	if elapsed > 0 {
		rep.ThroughputRPS = float64(rep.CompletedOps) / elapsed.Seconds()
	}
	return rep
}

// TotalErrors sums non-shed failures across classes — the number the
// smoke gate asserts is zero on a healthy deployment.
func (rep *Report) TotalErrors() uint64 {
	var n uint64
	for _, c := range rep.Classes {
		n += c.Errors
	}
	return n
}

// TotalShed sums shed answers across classes.
func (rep *Report) TotalShed() uint64 {
	var n uint64
	for _, c := range rep.Classes {
		n += c.Shed
	}
	return n
}

// Summary renders a terse human-readable digest (the CLI prints it to
// stderr alongside the JSON report on stdout).
func (rep *Report) Summary() string {
	keys := make([]string, 0, len(rep.Classes))
	for k := range rep.Classes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := fmt.Sprintf("%d/%d ops ok in %.1fs (%.0f req/s), %d shed, %d errors\n",
		rep.CompletedOps, rep.ScheduledOps, rep.ElapsedSeconds, rep.ThroughputRPS,
		rep.TotalShed(), rep.TotalErrors())
	for _, k := range keys {
		c := rep.Classes[k]
		if c.Requests == 0 {
			continue
		}
		out += fmt.Sprintf("  %-8s %6d ok  p50 %6.1fms  p95 %6.1fms  p99 %6.1fms\n",
			k, c.OK, c.P50Ms, c.P95Ms, c.P99Ms)
	}
	out += fmt.Sprintf("  QoS: %d/%d first logins delayed (%.1f%% delayed, %d prewarm hits)\n",
		rep.QoS.DelayedLogins, rep.QoS.FirstLogins, rep.QoS.DelayedPct, rep.QoS.PrewarmHits)
	out += fmt.Sprintf("  COGS: %.0f provisioned DB-seconds vs %.0f always-on (%.1f%% saved, %d samples)",
		rep.COGS.ProvisionedDBSeconds, rep.COGS.AlwaysOnDBSeconds, rep.COGS.SavedPct, rep.COGS.Samples)
	return out
}
