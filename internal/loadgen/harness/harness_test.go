package harness

import (
	"encoding/json"
	"testing"
	"time"

	"prorp/internal/loadgen"
)

// smokeConfig is the short seeded load the smoke tests drive: a dozen
// databases of 48 simulated hours compressed onto 8 wall-clock seconds,
// so overnight gaps become multi-second silences that cross the harness's
// 1s logical pause, plus a modest Poisson read mix with a 2s ramp.
func smokeConfig(urls []string, logf func(string, ...any)) loadgen.RunConfig {
	return loadgen.RunConfig{
		Schedule: loadgen.ScheduleConfig{
			Seed:     7,
			Region:   "EU1",
			DBs:      12,
			Horizon:  48 * time.Hour,
			Duration: 8 * time.Second,
			Rate:     40,
			Ramp:     2 * time.Second,
		},
		Targets: urls,
		// Only score first logins whose compressed idle gap could have
		// crossed the 1s logical pause with margin.
		MinIdle:     1500 * time.Millisecond,
		SampleEvery: 250 * time.Millisecond,
		Logf:        logf,
	}
}

// checkSmokeReport asserts the invariants a healthy deployment must
// satisfy under the seeded smoke load: every op lands (no errors outside
// the shed classes), the QoS denominator is non-empty, latency quantiles
// are ordered, and the COGS integral has real samples.
func checkSmokeReport(t *testing.T, rep *loadgen.Report) {
	t.Helper()
	t.Logf("report:\n%s", rep.Summary())
	if rep.CompletedOps == 0 {
		t.Fatal("no ops completed")
	}
	if got := rep.TotalErrors(); got != 0 {
		t.Errorf("client-side errors outside shed classes: %d", got)
	}
	if rep.QueueDropped != 0 {
		t.Errorf("open-loop queue dropped %d ops", rep.QueueDropped)
	}
	login := rep.Classes["login"]
	if login.OK == 0 {
		t.Error("no logins succeeded")
	}
	if login.P50Ms <= 0 || login.P95Ms < login.P50Ms || login.P99Ms < login.P95Ms {
		t.Errorf("login quantiles out of order: p50 %.2f p95 %.2f p99 %.2f",
			login.P50Ms, login.P95Ms, login.P99Ms)
	}
	if rep.QoS.FirstLogins == 0 {
		t.Error("QoS denominator empty: no scorable first logins")
	}
	if rep.QoS.DelayedPct < 0 || rep.QoS.DelayedPct > 100 {
		t.Errorf("delayed pct out of range: %v", rep.QoS.DelayedPct)
	}
	if rep.COGS.Samples < 2 {
		t.Errorf("COGS integral has %d samples, want >= 2", rep.COGS.Samples)
	}
	if rep.COGS.AlwaysOnDBSeconds <= 0 {
		t.Error("always-on baseline is zero")
	}
	if rep.ThroughputRPS <= 0 {
		t.Error("throughput not computed")
	}
	if rep.ServerKPI == nil {
		t.Error("final server KPI scrape missing")
	}
}

func TestSmokeSingleNode(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second end-to-end smoke; skipped in -short")
	}
	c := StartSingle(t)
	rep, err := loadgen.Run(smokeConfig(c.URLs(), t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	checkSmokeReport(t, rep)

	// Single node: the KPI scrape is the frozen single-group shape and
	// must account for every database the run created.
	var kpi struct {
		Databases int `json:"databases"`
		Logins    int `json:"logins"`
	}
	if err := json.Unmarshal(rep.ServerKPI, &kpi); err != nil {
		t.Fatal(err)
	}
	if kpi.Databases != 12 {
		t.Errorf("server sees %d databases, created 12", kpi.Databases)
	}
	if uint64(kpi.Logins) < rep.Classes["login"].OK {
		t.Errorf("server logins %d < client login OKs %d", kpi.Logins, rep.Classes["login"].OK)
	}
}

func TestSmokeThreeGroupCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second end-to-end smoke; skipped in -short")
	}
	c := StartCluster(t)
	rep, err := loadgen.Run(smokeConfig(c.URLs(), t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	checkSmokeReport(t, rep)

	// Cluster: the final KPI must be the scatter-gathered fleet view —
	// all three groups contributing, none partial, all six databases
	// visible from one scrape.
	var kpi struct {
		Databases int  `json:"databases"`
		Partial   bool `json:"partial"`
		Groups    []struct {
			Group string `json:"group"`
			OK    bool   `json:"ok"`
		} `json:"groups"`
	}
	if err := json.Unmarshal(rep.ServerKPI, &kpi); err != nil {
		t.Fatal(err)
	}
	if kpi.Databases != 12 {
		t.Errorf("fleet KPI sees %d databases, created 12", kpi.Databases)
	}
	if kpi.Partial {
		t.Error("final KPI scatter was partial")
	}
	if len(kpi.Groups) != 3 {
		t.Fatalf("KPI merged %d groups, want 3", len(kpi.Groups))
	}
	for _, g := range kpi.Groups {
		if !g.OK {
			t.Errorf("group %s did not contribute to the KPI merge", g.Group)
		}
	}
}
