package harness

import (
	"encoding/json"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"prorp/internal/loadgen"
)

// measureServingBench runs the seeded smoke load against a freshly booted
// single node and a 3-group cluster and distills the reports into the
// keys of BENCH_serving.json — the serving-tier trajectory record, the
// end-to-end companion to BENCH_router.json's in-process numbers.
//
// Each tier runs servingBenchRounds rounds against the same deployment
// (databases created once, later rounds replay the schedule warm) and the
// recorded latency is the per-key MINIMUM across rounds — the same
// noise-floor discipline as the router bench's best-of-5: an 8-second
// run's login p99 is only a handful of samples, so a single scheduler
// hiccup would otherwise own the record. Throughput takes the round
// maximum. The QoS/COGS percentages come from round 1 only: they are the
// seeded policy outcome against a COLD server, and warm reruns answer a
// different (easier) question.
//
// Key naming carries the drift direction: *_ms keys are lower-is-better,
// *_rps keys are higher-is-better, *_pct keys are banded. The drift gate
// below keys off the suffix.
const servingBenchRounds = 3

func measureServingBench(t *testing.T) map[string]float64 {
	t.Helper()
	nums := map[string]float64{}
	for _, tier := range []struct {
		prefix string
		start  func(*testing.T) *Cluster
	}{
		{"single", StartSingle},
		{"cluster3", StartCluster},
	} {
		c := tier.start(t)
		low := func(key string, v float64) {
			if cur, ok := nums[key]; !ok || v < cur {
				nums[key] = v
			}
		}
		for round := 0; round < servingBenchRounds; round++ {
			cfg := smokeConfig(c.URLs(), t.Logf)
			cfg.SkipCreate = round > 0
			rep, err := loadgen.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if rep.TotalErrors() > 0 {
				t.Fatalf("%s round %d: %d client-side errors; not recording a broken run\n%s",
					tier.prefix, round, rep.TotalErrors(), rep.Summary())
			}
			login := rep.Classes["login"]
			history := rep.Classes["history"]
			low(tier.prefix+"_login_p50_ms", login.P50Ms)
			low(tier.prefix+"_login_p99_ms", login.P99Ms)
			low(tier.prefix+"_history_p50_ms", history.P50Ms)
			low(tier.prefix+"_history_p99_ms", history.P99Ms)
			if key := tier.prefix + "_throughput_rps"; rep.ThroughputRPS > nums[key] {
				nums[key] = rep.ThroughputRPS
			}
			if round == 0 {
				nums[tier.prefix+"_qos_delayed_pct"] = rep.QoS.DelayedPct
				nums[tier.prefix+"_cogs_saved_pct"] = rep.COGS.SavedPct
			}
		}
	}
	return nums
}

func writeServingRecord(t *testing.T, path string, nums map[string]float64) {
	t.Helper()
	record := map[string]any{
		"go":         runtime.Version(),
		"generated":  time.Now().UTC().Format(time.RFC3339),
		"benchmarks": nums,
	}
	data, err := json.MarshalIndent(record, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestRecordServingBench records the serving numbers to the file named by
// PRORP_SERVING_BENCH_RECORD (skipped otherwise). `make loadgen-bench`
// runs it to refresh BENCH_serving.json.
func TestRecordServingBench(t *testing.T) {
	out := os.Getenv("PRORP_SERVING_BENCH_RECORD")
	if out == "" {
		t.Skip("set PRORP_SERVING_BENCH_RECORD=<path> to record BENCH_serving.json")
	}
	nums := measureServingBench(t)
	writeServingRecord(t, out, nums)
	t.Logf("recorded %d serving benchmarks to %s", len(nums), out)
}

// TestServingBenchDrift is the serving drift gate behind `make
// loadgen-check`: re-run the seeded load and compare against the
// committed baseline (PRORP_SERVING_BENCH_BASELINE). End-to-end socket
// numbers on shared runners are far noisier than the in-process router
// bench, so the slack is wider (50%) and latency keys keep an absolute
// floor below which drift is ignored. QoS/COGS percentages are
// policy outcomes of a fixed seed — they get the slack but no floor
// waiver, since a policy regression moves them structurally, not noisily.
func TestServingBenchDrift(t *testing.T) {
	basePath := os.Getenv("PRORP_SERVING_BENCH_BASELINE")
	if basePath == "" {
		t.Skip("set PRORP_SERVING_BENCH_BASELINE=<BENCH_serving.json> to gate serving drift")
	}
	data, err := os.ReadFile(basePath)
	if err != nil {
		t.Fatal(err)
	}
	var base struct {
		Benchmarks map[string]float64 `json:"benchmarks"`
	}
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatalf("parsing %s: %v", basePath, err)
	}
	if len(base.Benchmarks) == 0 {
		t.Fatalf("baseline %s has no benchmarks", basePath)
	}

	nums := measureServingBench(t)
	if out := os.Getenv("PRORP_SERVING_BENCH_RECORD"); out != "" {
		writeServingRecord(t, out, nums)
	}

	const slack = 1.50
	// latencyFloorMs: below this, absolute differences are scheduler
	// jitter, not regressions.
	const latencyFloorMs = 5.0
	for key, b := range base.Benchmarks {
		fresh, ok := nums[key]
		if !ok {
			t.Errorf("baseline key %q is no longer measured", key)
			continue
		}
		switch {
		case strings.HasSuffix(key, "_rps"):
			// Higher is better: fail when the fresh number loses more
			// than the slack fraction of the baseline.
			limit := b / slack
			if fresh < limit {
				t.Errorf("%s regressed: %.1f vs baseline %.1f (limit %.1f)", key, fresh, b, limit)
			} else {
				t.Logf("%s: %.1f (baseline %.1f, limit %.1f)", key, fresh, b, limit)
			}
		case strings.HasSuffix(key, "_ms"):
			limit := b * slack
			if limit < latencyFloorMs {
				limit = latencyFloorMs
			}
			if fresh > limit {
				t.Errorf("%s regressed: %.2f vs baseline %.2f (limit %.2f)", key, fresh, b, limit)
			} else {
				t.Logf("%s: %.2f (baseline %.2f, limit %.2f)", key, fresh, b, limit)
			}
		default:
			// Percentages (QoS delayed, COGS saved): lower-is-better for
			// delayed, higher-is-better for saved — but both are seeded
			// policy outcomes, so grade symmetric drift beyond slack.
			limit := b * slack
			floor := b / slack
			if fresh > limit+1e-9 || fresh < floor-1e-9 {
				t.Errorf("%s drifted: %.2f vs baseline %.2f (band [%.2f, %.2f])",
					key, fresh, b, floor, limit)
			} else {
				t.Logf("%s: %.2f (baseline %.2f, band [%.2f, %.2f])", key, fresh, b, floor, limit)
			}
		}
	}
}
