// Package harness spawns real prorp-serve processes for hermetic
// end-to-end load generation: build the binary once per test run, start a
// single node or a 3-group routed cluster on loopback ports, wait for
// health, drive a short seeded schedule with internal/loadgen, and tear
// everything down with SIGTERM so graceful shutdown is exercised too.
//
// Everything is offline: the binary is built from the enclosing module
// (no downloads — the module has no dependencies), listeners bind
// 127.0.0.1, and options come from a generated opts.json with the pause
// machinery compressed to seconds (LogicalPause 1s) so a dozen-second run
// actually crosses logical-pause and reclaim boundaries.
package harness

import (
	"bytes"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// FastOpts is the harness's opts.json: the Table 1 knobs a wall-clock
// test can afford. LogicalPause 1s means a compressed overnight gap
// (seconds of silence) really does pause and reclaim; ResumeOpPeriod 1s
// keeps the proactive beat ticking several times per run. Everything else
// keeps its default.
const FastOpts = `{"logical_pause":"1s","resume_op_period":"1s"}`

var (
	buildOnce sync.Once
	buildBin  string
	buildErr  error
)

// Binary builds cmd/prorp-serve once per test process and returns its
// path. The build is module-local and offline.
func Binary(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "prorp-harness-*")
		if err != nil {
			buildErr = err
			return
		}
		buildBin = filepath.Join(dir, "prorp-serve")
		cmd := exec.Command("go", "build", "-o", buildBin, "prorp/cmd/prorp-serve")
		cmd.Dir = moduleRoot()
		if out, err := cmd.CombinedOutput(); err != nil {
			buildErr = fmt.Errorf("building prorp-serve: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return buildBin
}

// moduleRoot finds the enclosing module's directory, so the harness works
// regardless of the package the test runs from.
func moduleRoot() string {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return "."
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "."
	}
	return filepath.Dir(gomod)
}

// freeAddr reserves a loopback port and releases it for the node to bind.
// The race window between release and bind is real but harmless in CI:
// nothing else binds ephemeral loopback ports between the two calls.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// Node is one running prorp-serve process.
type Node struct {
	// Group is the shard-group name ("" for a single-node deployment).
	Group string
	// URL is the node's base URL.
	URL string

	cmd *exec.Cmd
	log *bytes.Buffer
}

// Cluster is a set of Nodes under one test's lifecycle.
type Cluster struct {
	Nodes []*Node
}

// URLs lists every node's base URL, in start order.
func (c *Cluster) URLs() []string {
	urls := make([]string, len(c.Nodes))
	for i, n := range c.Nodes {
		urls[i] = n.URL
	}
	return urls
}

// StartSingle boots one unpartitioned node with the fast options and
// registers teardown with the test.
func StartSingle(t *testing.T) *Cluster {
	t.Helper()
	addr := freeAddr(t)
	n := startNode(t, "", addr, nil)
	c := &Cluster{Nodes: []*Node{n}}
	t.Cleanup(func() { c.stop(t) })
	waitHealthy(t, c.URLs())
	return c
}

// StartCluster boots a routed 3-group cluster (g1, g2, g3) with the fast
// options. Each node learns the other two via -groups and they converge
// on the identical round-robin shard map all groups derive from the
// sorted group names.
func StartCluster(t *testing.T) *Cluster {
	t.Helper()
	groups := []string{"g1", "g2", "g3"}
	addrs := make(map[string]string, len(groups))
	for _, g := range groups {
		addrs[g] = freeAddr(t)
	}
	c := &Cluster{}
	for _, g := range groups {
		var peers []string
		for _, p := range groups {
			if p != g {
				peers = append(peers, fmt.Sprintf("%s=http://%s", p, addrs[p]))
			}
		}
		c.Nodes = append(c.Nodes, startNode(t, g, addrs[g], peers))
	}
	t.Cleanup(func() { c.stop(t) })
	waitHealthy(t, c.URLs())
	return c
}

// startNode launches one prorp-serve with the fast opts.json.
func startNode(t *testing.T, group, addr string, peers []string) *Node {
	t.Helper()
	optsPath := filepath.Join(t.TempDir(), "opts.json")
	if err := os.WriteFile(optsPath, []byte(FastOpts), 0o644); err != nil {
		t.Fatal(err)
	}
	args := []string{"-addr", addr, "-config", optsPath}
	if group != "" {
		args = append(args, "-group", group)
		if len(peers) > 0 {
			args = append(args, "-groups", strings.Join(peers, ","))
		}
	}
	n := &Node{Group: group, URL: "http://" + addr, log: &bytes.Buffer{}}
	n.cmd = exec.Command(Binary(t), args...)
	n.cmd.Stdout = n.log
	n.cmd.Stderr = n.log
	if err := n.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	return n
}

// stop SIGTERMs every node and waits for the graceful shutdown path; a
// node that ignores the signal is killed. Logs are dumped on failure.
func (c *Cluster) stop(t *testing.T) {
	for _, n := range c.Nodes {
		if n.cmd.Process != nil {
			n.cmd.Process.Signal(syscall.SIGTERM)
		}
	}
	for _, n := range c.Nodes {
		done := make(chan error, 1)
		go func() { done <- n.cmd.Wait() }()
		select {
		case <-done:
		case <-time.After(15 * time.Second):
			n.cmd.Process.Kill()
			<-done
		}
		if t.Failed() {
			t.Logf("--- node %s (%s) log ---\n%s", n.Group, n.URL, n.log.String())
		}
	}
}

// waitHealthy polls every node's /healthz until it answers 200 or the
// deadline passes.
func waitHealthy(t *testing.T, urls []string) {
	t.Helper()
	client := &http.Client{Timeout: time.Second}
	deadline := time.Now().Add(15 * time.Second)
	for _, url := range urls {
		for {
			resp, err := client.Get(url + "/healthz")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					break
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("node %s never became healthy", url)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
}
