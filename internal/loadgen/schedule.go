// Package loadgen is the client-side measurement subsystem: an open-loop
// HTTP load generator that drives calibrated request mixes at a live
// prorp-serve deployment and scores what came back against the workload's
// ground truth.
//
// The generator is open-loop by construction — the entire request schedule
// is computed up front from a seeded workload trace plus a seeded Poisson
// process, every operation has a scheduled send time, and latency is
// measured from that *scheduled* time, not from the moment a worker got
// around to writing the request. A server that stalls therefore shows up
// as growing latency on every queued operation (the load keeps arriving),
// never as a mysteriously lower request count: the coordinated-omission
// failure mode of closed-loop benchmarks cannot occur here.
//
// Three pieces:
//
//   - schedule.go: turns internal/workload activity traces (the calibrated
//     Serverless-in-the-Wild-style archetypes) into a time-compressed
//     login/logout schedule, interleaved with a Poisson-arrival mix of
//     history reads and KPI probes, with an optional linear ramp.
//   - loadgen.go: the runner — a dispatcher that releases operations at
//     their scheduled times into a worker pool, client-side latency
//     histograms (reusing internal/obs), Retry-After-honoring shed
//     handling, and a provisioned-capacity sampler.
//   - score.go / report.go: the scorer and the JSON report — the paper's
//     QoS metric (fraction of first logins delayed by a cold resume) and
//     its COGS proxy (provisioned database-seconds against an always-on
//     baseline), cross-checked against one final server-side KPI scrape.
//
// Everything is driven by an explicit seed: the same seed, horizon, and
// duration produce byte-identical schedules.
package loadgen

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"prorp/internal/workload"
)

// Kind is a scheduled operation's request class. The classes mirror what
// the serving tier's admission controller distinguishes: logins are
// decision traffic, logouts are history writes, history reads and KPI
// probes are reads.
type Kind int

const (
	// OpLogin is POST /v1/db/{id}/login — the decision-class request the
	// whole system exists to serve fast.
	OpLogin Kind = iota
	// OpLogout is POST /v1/db/{id}/logout — a history append.
	OpLogout
	// OpHistory is GET /v1/db/{id} — a state + prediction read over the
	// database's history.
	OpHistory
	// OpKPI is GET /v1/kpi — the fleet-wide KPI surface (scatter-gathered
	// on a partitioned deployment).
	OpKPI

	numKinds
)

func (k Kind) String() string {
	switch k {
	case OpLogin:
		return "login"
	case OpLogout:
		return "logout"
	case OpHistory:
		return "history"
	case OpKPI:
		return "kpi"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Kinds lists every request class in schedule order, for report loops.
func Kinds() []Kind { return []Kind{OpLogin, OpLogout, OpHistory, OpKPI} }

// Op is one scheduled operation.
type Op struct {
	// At is the scheduled send offset from the start of the measured run.
	// Latency is measured from this instant — the open-loop contract.
	At time.Duration
	// Kind is the request class.
	Kind Kind
	// DB is the target database id (unused for OpKPI).
	DB int
	// FirstLogin marks a login that begins a new activity interval after
	// an idle gap — the population the paper's QoS metric is defined over.
	FirstLogin bool
	// IdleGap is the wall-clock idle time that preceded a FirstLogin,
	// after compression. The scorer uses it to restrict the QoS
	// denominator to logins whose gap was long enough for the server to
	// have paused at all.
	IdleGap time.Duration
	// Retry marks an operation re-enqueued after a shed (429/503 with
	// Retry-After); retries are reported separately and never feed QoS.
	Retry bool
}

// ScheduleConfig parameterizes BuildSchedule.
type ScheduleConfig struct {
	// Seed drives both the workload generator and the Poisson mix.
	Seed int64
	// Region is the workload profile name (EU1, EU2, US1, US2).
	Region string
	// DBs is the number of databases (trace count).
	DBs int
	// Horizon is the simulated activity horizon the traces cover; it is
	// compressed onto Duration. Longer horizons mean more daily structure
	// per wall-clock second.
	Horizon time.Duration
	// Duration is the wall-clock length of the measured run.
	Duration time.Duration
	// Rate is the aggregate arrival rate (req/s) of the Poisson read mix
	// laid over the trace-driven login/logout schedule. 0 disables it.
	Rate float64
	// HistoryWeight and KPIWeight split Rate between history reads and
	// KPI probes. Both zero means 0.9/0.1.
	HistoryWeight, KPIWeight float64
	// Ramp linearly scales the Poisson arrival rate from zero to Rate
	// over the first Ramp of the run (trace-driven ops are not ramped:
	// the trace is the ground truth being scored). 0 = no ramp.
	Ramp time.Duration
}

func (c *ScheduleConfig) normalize() error {
	if c.DBs <= 0 {
		return fmt.Errorf("loadgen: DBs = %d, want > 0", c.DBs)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("loadgen: Duration = %v, want > 0", c.Duration)
	}
	if c.Horizon <= 0 {
		c.Horizon = 48 * time.Hour
	}
	if c.Region == "" {
		c.Region = "EU1"
	}
	if c.HistoryWeight == 0 && c.KPIWeight == 0 {
		c.HistoryWeight, c.KPIWeight = 0.9, 0.1
	}
	if c.HistoryWeight < 0 || c.KPIWeight < 0 {
		return fmt.Errorf("loadgen: negative mix weight (history %v, kpi %v)",
			c.HistoryWeight, c.KPIWeight)
	}
	if c.Rate < 0 {
		return fmt.Errorf("loadgen: Rate = %v, want >= 0", c.Rate)
	}
	if c.Ramp < 0 || c.Ramp > c.Duration {
		return fmt.Errorf("loadgen: Ramp = %v, want in [0, Duration]", c.Ramp)
	}
	return nil
}

// Schedule is the fully materialized run plan: operations sorted by
// scheduled time, plus the trace ground truth the scorer needs.
type Schedule struct {
	Ops []Op
	// FirstLogins is the number of QoS-eligible logins in the plan
	// (before any IdleGap threshold the scorer applies).
	FirstLogins int
	// Traces is the ground truth the ops were derived from, in compressed
	// wall-clock coordinates (seconds scaled onto Duration).
	Traces []workload.Trace
}

// BuildSchedule materializes the run plan: one seeded workload trace per
// database, compressed from Horizon onto Duration, plus the Poisson read
// mix. Deterministic for a given config.
func BuildSchedule(cfg ScheduleConfig) (*Schedule, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	profile, err := workload.Region(cfg.Region)
	if err != nil {
		return nil, err
	}
	gen, err := workload.NewGenerator(cfg.Seed, profile)
	if err != nil {
		return nil, err
	}
	horizonSec := int64(cfg.Horizon / time.Second)
	traces := gen.Generate(cfg.DBs, 0, horizonSec)

	// compress maps a trace timestamp (seconds into the horizon) onto a
	// wall-clock offset into the run.
	compress := func(sec int64) time.Duration {
		return time.Duration(float64(sec) / float64(horizonSec) * float64(cfg.Duration))
	}

	sched := &Schedule{Traces: traces}
	for _, tr := range traces {
		for i, iv := range tr.Intervals {
			login := Op{At: compress(iv.Start), Kind: OpLogin, DB: dbID(tr.DB)}
			if i > 0 {
				login.FirstLogin = true
				login.IdleGap = compress(iv.Start) - compress(tr.Intervals[i-1].End)
				sched.FirstLogins++
			}
			sched.Ops = append(sched.Ops, login)
			sched.Ops = append(sched.Ops, Op{
				At: compress(iv.End), Kind: OpLogout, DB: dbID(tr.DB),
			})
		}
	}

	// The Poisson mix: exponential inter-arrivals at Rate, thinned during
	// the ramp (classic non-homogeneous Poisson thinning — an arrival at
	// time t survives with probability t/Ramp), each arrival classified
	// history-vs-KPI by the mix weights and aimed at a uniform database.
	if cfg.Rate > 0 {
		rng := rand.New(rand.NewSource(cfg.Seed + 1))
		histFrac := cfg.HistoryWeight / (cfg.HistoryWeight + cfg.KPIWeight)
		t := time.Duration(0)
		for {
			t += time.Duration(rng.ExpFloat64() / cfg.Rate * float64(time.Second))
			if t >= cfg.Duration {
				break
			}
			if cfg.Ramp > 0 && t < cfg.Ramp {
				if rng.Float64() >= float64(t)/float64(cfg.Ramp) {
					continue
				}
			}
			op := Op{At: t, Kind: OpKPI}
			if rng.Float64() < histFrac {
				op = Op{At: t, Kind: OpHistory, DB: dbID(rng.Intn(cfg.DBs))}
			}
			sched.Ops = append(sched.Ops, op)
		}
	}

	sort.SliceStable(sched.Ops, func(i, j int) bool { return sched.Ops[i].At < sched.Ops[j].At })
	return sched, nil
}

// dbID maps a trace index onto the database id the run creates for it.
// Ids start at 1: id 0 reads like a zero value in debug output.
func dbID(trace int) int { return trace + 1 }
