package autoscale

import (
	"math/rand"
	"testing"
	"testing/quick"
)

const (
	day  = int64(86400)
	hour = int64(3600)
)

// dailyLevelTrace builds a demand curve repeating daily: level 2 during
// 9:00-12:00 ramping to 4 during 12:00-14:00, back to 1 until 17:00.
func dailyLevelTrace(days int) Trace {
	var tr Trace
	for d := 0; d < days; d++ {
		base := int64(d) * day
		tr.Intervals = append(tr.Intervals,
			LevelInterval{Start: base + 9*hour, End: base + 12*hour, Level: 2},
			LevelInterval{Start: base + 12*hour, End: base + 14*hour, Level: 4},
			LevelInterval{Start: base + 14*hour, End: base + 17*hour, Level: 1},
		)
	}
	return tr
}

func TestTraceValidate(t *testing.T) {
	if err := dailyLevelTrace(3).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Trace{
		{Intervals: []LevelInterval{{Start: 10, End: 10, Level: 1}}},
		{Intervals: []LevelInterval{{Start: 10, End: 20, Level: 0}}},
		{Intervals: []LevelInterval{{Start: 10, End: 20, Level: 1}, {Start: 15, End: 30, Level: 1}}},
	}
	for i, tr := range bad {
		if err := tr.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestDemandAt(t *testing.T) {
	tr := dailyLevelTrace(1)
	cases := []struct {
		ts   int64
		want int
	}{
		{0, 0}, {9 * hour, 2}, {11 * hour, 2}, {12 * hour, 4},
		{13 * hour, 4}, {14 * hour, 1}, {17 * hour, 0}, {20 * hour, 0},
	}
	for _, c := range cases {
		if got := tr.DemandAt(c.ts); got != c.want {
			t.Errorf("DemandAt(%dh) = %d, want %d", c.ts/hour, got, c.want)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{ScaleUpLatencySec: -1, CooldownSec: 1, HistoryDays: 1, Confidence: 0.1},
		{CooldownSec: 0, HistoryDays: 1, Confidence: 0.1},
		{CooldownSec: 1, HistoryDays: 0, Confidence: 0.1},
		{CooldownSec: 1, HistoryDays: 1, Confidence: 0},
		{CooldownSec: 1, HistoryDays: 1, Confidence: 1.5},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
}

func TestProfilePredictsDailyPeak(t *testing.T) {
	p := NewProfile(7)
	tr := dailyLevelTrace(8)
	for ts := int64(0); ts < 8*day; ts += SlotSec {
		p.Observe(ts, tr.DemandAt(ts))
	}
	// On day 8, the 13:00 slot must predict level 4 and the 10:00 slot
	// level 2 at low confidence.
	if got := p.PredictSlot(8*day+13*hour, 0.1); got != 4 {
		t.Errorf("13:00 prediction = %d, want 4", got)
	}
	if got := p.PredictSlot(8*day+10*hour, 0.1); got != 2 {
		t.Errorf("10:00 prediction = %d, want 2", got)
	}
	if got := p.PredictSlot(8*day+3*hour, 0.1); got != 0 {
		t.Errorf("03:00 prediction = %d, want 0", got)
	}
	// PredictMax over the midday span sees the peak.
	if got := p.PredictMax(8*day+9*hour, 8*day+15*hour, 0.1); got != 4 {
		t.Errorf("PredictMax = %d, want 4", got)
	}
}

func TestProfileConfidenceFilters(t *testing.T) {
	p := NewProfile(10)
	// Level 3 on only 2 of 10 days at 09:00; level 1 every day.
	for d := int64(0); d < 10; d++ {
		lv := 1
		if d < 2 {
			lv = 3
		}
		p.Observe(d*day+9*hour, lv)
	}
	now := 10*day + 9*hour
	if got := p.PredictSlot(now, 0.1); got != 3 {
		t.Errorf("c=0.1 prediction = %d, want 3 (1 day suffices)", got)
	}
	if got := p.PredictSlot(now, 0.2); got != 3 {
		t.Errorf("c=0.2 prediction = %d, want 3 (2 days suffice)", got)
	}
	if got := p.PredictSlot(now, 0.3); got != 1 {
		t.Errorf("c=0.3 prediction = %d, want 1 (3 days needed for level 3)", got)
	}
}

func TestProfileEmpty(t *testing.T) {
	p := NewProfile(7)
	if got := p.PredictSlot(123456, 0.1); got != 0 {
		t.Errorf("empty profile predicted %d", got)
	}
}

func TestOracleIsPerfect(t *testing.T) {
	cfg := DefaultConfig()
	tr := dailyLevelTrace(20)
	res, err := Run(cfg, tr, oracleScaler{}, 0, 15*day, 20*day)
	if err != nil {
		t.Fatal(err)
	}
	if res.Throttled != 0 || res.Idle != 0 {
		t.Fatalf("oracle throttled=%d idle=%d", res.Throttled, res.Idle)
	}
	if res.Used == 0 {
		t.Fatal("oracle served nothing")
	}
}

func TestReactiveThrottlesDuringRamp(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ScaleUpLatencySec = 600
	tr := dailyLevelTrace(20)
	res, err := Run(cfg, tr, &reactiveScaler{cfg: cfg}, 0, 15*day, 20*day)
	if err != nil {
		t.Fatal(err)
	}
	if res.Throttled == 0 {
		t.Fatal("reactive scaler never throttled despite scale-up latency")
	}
	if res.Idle == 0 {
		t.Fatal("reactive scaler never idled despite cool-down")
	}
}

func TestCompareLadder(t *testing.T) {
	// The paper's expectation generalized: proactive throttles less than
	// reactive on seasonal demand, and the oracle is perfect.
	cfg := DefaultConfig()
	cfg.ScaleUpLatencySec = 600
	traces := []Trace{dailyLevelTrace(20), dailyLevelTrace(20)}
	out, err := Compare(cfg, traces, 0, 15*day, 20*day)
	if err != nil {
		t.Fatal(err)
	}
	rea, pro, ora := out[0], out[1], out[2]
	if rea.Name != "reactive" || pro.Name != "proactive" || ora.Name != "oracle" {
		t.Fatalf("ladder order broken: %s/%s/%s", rea.Name, pro.Name, ora.Name)
	}
	if pro.Throttled >= rea.Throttled {
		t.Errorf("proactive throttled %d >= reactive %d", pro.Throttled, rea.Throttled)
	}
	if ora.Throttled != 0 || ora.Idle != 0 {
		t.Errorf("oracle imperfect: %+v", ora)
	}
	if pro.ThrottledPercent() < 0 || pro.IdlePercent() < 0 {
		t.Error("negative percentages")
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	cfg := DefaultConfig()
	tr := dailyLevelTrace(5)
	if _, err := Run(cfg, tr, oracleScaler{}, 10, 5, 20); err == nil {
		t.Error("evalFrom before from accepted")
	}
	bad := cfg
	bad.HistoryDays = 0
	if _, err := Run(bad, tr, oracleScaler{}, 0, 1, 2); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := Run(cfg, Trace{Intervals: []LevelInterval{{0, 0, 1}}}, oracleScaler{}, 0, 1, 2); err == nil {
		t.Error("invalid trace accepted")
	}
}

func TestResultPercentDegenerate(t *testing.T) {
	var r Result
	if r.ThrottledPercent() != 0 || r.IdlePercent() != 0 {
		t.Error("zero result has nonzero percentages")
	}
}

// Property: for any demand trace, used + throttled core-seconds equals
// total demand core-seconds, under every scaler.
func TestQuickDemandConservation(t *testing.T) {
	cfg := DefaultConfig()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var tr Trace
		ts := int64(0)
		for i := 0; i < 30; i++ {
			ts += int64(rng.Intn(int(12 * hour)))
			end := ts + SlotSec + int64(rng.Intn(int(6*hour)))
			tr.Intervals = append(tr.Intervals, LevelInterval{Start: ts, End: end, Level: 1 + rng.Intn(5)})
			ts = end
		}
		var demand int64
		for t := int64(0); t < 10*day; t += SlotSec {
			demand += int64(tr.DemandAt(t)) * SlotSec
		}
		for _, s := range []scaler{
			&reactiveScaler{cfg: cfg},
			&proactiveScaler{cfg: cfg, profile: NewProfile(cfg.HistoryDays)},
			oracleScaler{},
		} {
			r, err := Run(cfg, tr, s, 0, 0, 10*day)
			if err != nil {
				return false
			}
			if r.Used+r.Throttled != demand {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkProactiveScalerDay(b *testing.B) {
	cfg := DefaultConfig()
	tr := dailyLevelTrace(30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := &proactiveScaler{cfg: cfg, profile: NewProfile(cfg.HistoryDays)}
		if _, err := Run(cfg, tr, s, 0, 29*day, 30*day); err != nil {
			b.Fatal(err)
		}
	}
}
