// Package autoscale implements the first future-work direction of the
// ProRP paper (Section 11): moving from the binary allocate/reclaim
// problem to proactive auto-scale of resources in small increments of
// capacity.
//
// Demand is a step function over discrete capacity levels (think vCores).
// Three scalers are compared, mirroring the paper's policy ladder:
//
//   - Reactive: allocation follows demand, but upward steps take effect
//     only after the scale-up latency (the customer is throttled during
//     the ramp), and downward steps wait out a cool-down (capacity idles).
//   - Proactive: a per-slot seasonal profile (the natural generalization
//     of Algorithm 4: the same time window on the previous h days, with a
//     confidence threshold) pre-scales capacity ahead of predicted demand,
//     absorbing the scale-up latency.
//   - Oracle: allocation equals demand exactly (Figure 2(c) generalized).
//
// The evaluation metrics generalize Definition 2.2 to levels: throttled
// core-seconds (demand above allocation), idle core-seconds (allocation
// above demand), and used core-seconds.
package autoscale

import (
	"fmt"
	"math"
)

// SlotSec is the profile resolution: 5 minutes, matching the window slide
// s of Table 1.
const SlotSec = 300

const daySec = 86400

// slotsPerDay is the number of profile slots in one seasonal period.
const slotsPerDay = daySec / SlotSec

// LevelInterval is a span of constant demand at Level capacity units.
type LevelInterval struct {
	Start, End int64
	Level      int
}

// Trace is the demand curve of one database: non-overlapping ascending
// intervals; demand is zero between them.
type Trace struct {
	DB        int
	Intervals []LevelInterval
}

// Validate checks trace invariants.
func (t Trace) Validate() error {
	for i, iv := range t.Intervals {
		if iv.End <= iv.Start {
			return fmt.Errorf("autoscale: trace %d interval %d empty", t.DB, i)
		}
		if iv.Level <= 0 {
			return fmt.Errorf("autoscale: trace %d interval %d level %d", t.DB, i, iv.Level)
		}
		if i > 0 && iv.Start < t.Intervals[i-1].End {
			return fmt.Errorf("autoscale: trace %d interval %d overlaps", t.DB, i)
		}
	}
	return nil
}

// DemandAt returns the demand level at time t.
func (t Trace) DemandAt(ts int64) int {
	for _, iv := range t.Intervals {
		if ts >= iv.Start && ts < iv.End {
			return iv.Level
		}
		if iv.Start > ts {
			break
		}
	}
	return 0
}

// Config tunes the scalers.
type Config struct {
	// ScaleUpLatencySec is how long an upward capacity step takes to
	// become effective; demand above allocation is throttled meanwhile.
	ScaleUpLatencySec int64
	// CooldownSec is how long allocation stays above demand before each
	// one-level downward step (the level-world analogue of the logical
	// pause, applied per increment).
	CooldownSec int64
	// HistoryDays is h: the seasonal lookback of the proactive profile.
	HistoryDays int
	// Confidence is c: a level is predicted for a slot only if demand
	// reached it on at least ceil(c*h) of the previous h days.
	Confidence float64
	// LeadSec is k: how far ahead of predicted demand the proactive
	// scaler raises capacity.
	LeadSec int64
}

// DefaultConfig mirrors the paper's knob defaults where they carry over.
func DefaultConfig() Config {
	return Config{
		ScaleUpLatencySec: 120,
		CooldownSec:       3600,
		HistoryDays:       14,
		Confidence:        0.1,
		LeadSec:           300,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.ScaleUpLatencySec < 0 || c.CooldownSec <= 0 || c.LeadSec < 0 {
		return fmt.Errorf("autoscale: negative timing knob")
	}
	if c.HistoryDays <= 0 {
		return fmt.Errorf("autoscale: history %d days", c.HistoryDays)
	}
	if c.Confidence <= 0 || c.Confidence > 1 {
		return fmt.Errorf("autoscale: confidence %v", c.Confidence)
	}
	return nil
}

// Profile is the online seasonal demand profile of one database: for each
// 5-minute slot of the day, the demand levels observed on each of the last
// HistoryDays days.
type Profile struct {
	days     int
	levels   [][slotsPerDay]uint8 // ring buffer over days
	curDay   int64
	haveDays int
}

// NewProfile returns an empty profile with an h-day lookback.
func NewProfile(historyDays int) *Profile {
	return &Profile{
		days:   historyDays,
		levels: make([][slotsPerDay]uint8, historyDays),
		curDay: math.MinInt64,
	}
}

// Observe records the demand level at time ts. Observations must arrive in
// non-decreasing time order.
func (p *Profile) Observe(ts int64, level int) {
	day := ts / daySec
	if p.curDay == math.MinInt64 {
		p.curDay = day
	}
	for p.curDay < day {
		// Roll into the next day: clear its ring slot.
		p.curDay++
		p.levels[int(p.curDay)%p.days] = [slotsPerDay]uint8{}
		if p.haveDays < p.days {
			p.haveDays++
		}
	}
	slot := (ts % daySec) / SlotSec
	ring := &p.levels[int(day)%p.days]
	if l := clampLevel(level); l > ring[slot] {
		ring[slot] = l
	}
}

func clampLevel(level int) uint8 {
	if level < 0 {
		return 0
	}
	if level > 255 {
		return 255
	}
	return uint8(level)
}

// PredictSlot returns the highest level that was demanded in the slot
// containing ts on at least ceil(confidence*h) of the remembered days.
func (p *Profile) PredictSlot(ts int64, confidence float64) int {
	if p.haveDays == 0 {
		return 0
	}
	need := int(math.Ceil(confidence * float64(p.days)))
	if need < 1 {
		need = 1
	}
	slot := (ts % daySec) / SlotSec
	day := ts / daySec
	// Count, per level, how many past days reached it in this slot.
	var counts [256]int
	for d := int64(1); d <= int64(p.days); d++ {
		prev := day - d
		if prev < 0 {
			continue
		}
		lv := p.levels[int(prev)%p.days][slot]
		counts[lv]++
	}
	// Walk from the top: a day that reached level L also reached all
	// levels below it.
	cum := 0
	for lv := 255; lv >= 1; lv-- {
		cum += counts[lv]
		if cum >= need {
			return lv
		}
	}
	return 0
}

// PredictMax returns the highest confident prediction over [from, to).
func (p *Profile) PredictMax(from, to int64, confidence float64) int {
	best := 0
	for ts := from; ts < to; ts += SlotSec {
		if lv := p.PredictSlot(ts, confidence); lv > best {
			best = lv
		}
	}
	return best
}

// Result aggregates the generalized Definition 2.2 metrics in
// core-seconds.
type Result struct {
	Name string
	// Used: capacity serving demand (min(demand, alloc)).
	Used int64
	// Throttled: demand above allocation.
	Throttled int64
	// Idle: allocation above demand.
	Idle int64
	// Steps: number of allocation changes (workflow overhead).
	Steps int
}

// ThrottledPercent is throttled demand as a share of total demand.
func (r Result) ThrottledPercent() float64 {
	total := r.Used + r.Throttled
	if total == 0 {
		return 0
	}
	return 100 * float64(r.Throttled) / float64(total)
}

// IdlePercent is idle capacity as a share of total allocation.
func (r Result) IdlePercent() float64 {
	total := r.Used + r.Idle
	if total == 0 {
		return 0
	}
	return 100 * float64(r.Idle) / float64(total)
}

// scaler is the per-database allocation strategy evaluated by Run.
type scaler interface {
	// target returns the desired allocation at time ts given current
	// demand; Run applies scale-up latency and counts steps.
	target(ts int64, demand int) int
	// name labels the result.
	name() string
}

type reactiveScaler struct {
	cfg       Config
	lastAbove int64 // last time demand reached the current allocation
	alloc     int
}

func (s *reactiveScaler) name() string { return "reactive" }

func (s *reactiveScaler) target(ts int64, demand int) int {
	if demand >= s.alloc {
		s.lastAbove = ts
		s.alloc = demand
		return demand
	}
	// Scale down one step at a time after the cool-down.
	if ts-s.lastAbove >= s.cfg.CooldownSec && s.alloc > demand {
		s.alloc--
		s.lastAbove = ts
	}
	return s.alloc
}

type proactiveScaler struct {
	cfg       Config
	profile   *Profile
	lastAbove int64
	alloc     int
}

func (s *proactiveScaler) name() string { return "proactive" }

func (s *proactiveScaler) target(ts int64, demand int) int {
	s.profile.Observe(ts, demand)
	predicted := s.profile.PredictMax(ts, ts+s.cfg.LeadSec+s.cfg.ScaleUpLatencySec, s.cfg.Confidence)
	want := demand
	if predicted > want {
		want = predicted
	}
	if want >= s.alloc {
		if want > s.alloc {
			s.alloc = want
		}
		s.lastAbove = ts
		return s.alloc
	}
	// Predicted and current demand both below allocation: step down after
	// the cool-down, but never below the prediction.
	if ts-s.lastAbove >= s.cfg.CooldownSec && s.alloc > want {
		s.alloc--
		s.lastAbove = ts
	}
	return s.alloc
}

type oracleScaler struct{}

func (oracleScaler) name() string                   { return "oracle" }
func (oracleScaler) target(_ int64, demand int) int { return demand }

// Run evaluates one scaler over the trace between from and evalTo,
// measuring only after evalFrom (the warm-up builds the profile). The
// scale-up latency is applied outside the scaler: an upward step requested
// at t becomes effective at t+latency, except for the oracle.
func Run(cfg Config, tr Trace, s scaler, from, evalFrom, evalTo int64) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if err := tr.Validate(); err != nil {
		return Result{}, err
	}
	if !(from <= evalFrom && evalFrom < evalTo) {
		return Result{}, fmt.Errorf("autoscale: bad horizon %d/%d/%d", from, evalFrom, evalTo)
	}

	res := Result{Name: s.name()}
	_, isOracle := s.(oracleScaler)

	effective := 0        // capacity actually available
	pendingLevel := 0     // requested upward step…
	pendingAt := int64(0) // …and when it lands
	for ts := from; ts < evalTo; ts += SlotSec {
		demand := tr.DemandAt(ts)
		want := s.target(ts, demand)

		if isOracle {
			effective = want
		} else {
			// Apply the pending step if its latency elapsed.
			if pendingLevel > effective && ts >= pendingAt {
				effective = pendingLevel
				res.Steps++
			}
			switch {
			case want > effective && pendingLevel != want:
				pendingLevel = want
				pendingAt = ts + cfg.ScaleUpLatencySec
			case want < effective:
				effective = want // downward steps are immediate
				pendingLevel = want
				res.Steps++
			}
		}

		if ts < evalFrom {
			continue
		}
		served := demand
		if effective < served {
			served = effective
		}
		res.Used += int64(served) * SlotSec
		if demand > effective {
			res.Throttled += int64(demand-effective) * SlotSec
		}
		if effective > demand {
			res.Idle += int64(effective-demand) * SlotSec
		}
	}
	return res, nil
}

// Compare evaluates the three scalers over a trace set and returns the
// aggregated results in ladder order: reactive, proactive, oracle.
func Compare(cfg Config, traces []Trace, from, evalFrom, evalTo int64) ([3]Result, error) {
	var out [3]Result
	for i, mk := range []func() scaler{
		func() scaler { return &reactiveScaler{cfg: cfg} },
		func() scaler { return &proactiveScaler{cfg: cfg, profile: NewProfile(cfg.HistoryDays)} },
		func() scaler { return oracleScaler{} },
	} {
		for _, tr := range traces {
			r, err := Run(cfg, tr, mk(), from, evalFrom, evalTo)
			if err != nil {
				return out, err
			}
			out[i].Name = r.Name
			out[i].Used += r.Used
			out[i].Throttled += r.Throttled
			out[i].Idle += r.Idle
			out[i].Steps += r.Steps
		}
	}
	return out, nil
}
