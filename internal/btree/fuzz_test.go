package btree

import (
	"encoding/binary"
	"testing"
)

// FuzzTreeOps interprets the fuzz input as a sequence of operations and
// cross-checks the tree against a map model plus structural invariants.
// Run with `go test -fuzz FuzzTreeOps ./internal/btree`; the seed corpus
// keeps it exercising as a normal test.
func FuzzTreeOps(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{255, 254, 253, 1, 1, 1, 0, 0})
	seed := make([]byte, 300)
	for i := range seed {
		seed[i] = byte(i * 7)
	}
	f.Add(seed)

	f.Fuzz(func(t *testing.T, data []byte) {
		tr := New()
		model := map[int64]byte{}
		for i := 0; i+2 < len(data); i += 3 {
			op := data[i] % 4
			k := int64(binary.LittleEndian.Uint16(data[i+1 : i+3]))
			switch op {
			case 0, 1: // insert
				_, existed := model[k]
				if tr.Insert(k, byte(op)) == existed {
					t.Fatalf("Insert(%d) disagrees with model", k)
				}
				if !existed {
					model[k] = byte(op)
				}
			case 2: // delete
				_, existed := model[k]
				if tr.Delete(k) != existed {
					t.Fatalf("Delete(%d) disagrees with model", k)
				}
				delete(model, k)
			case 3: // range delete
				hi := k + int64(data[i]%64)
				n := tr.DeleteRange(k, hi)
				m := 0
				for mk := range model {
					if mk >= k && mk <= hi {
						delete(model, mk)
						m++
					}
				}
				if n != m {
					t.Fatalf("DeleteRange(%d,%d) = %d, model %d", k, hi, n, m)
				}
			}
		}
		if tr.Len() != len(model) {
			t.Fatalf("Len %d, model %d", tr.Len(), len(model))
		}
		if err := tr.checkInvariants(); err != nil {
			t.Fatal(err)
		}
	})
}
