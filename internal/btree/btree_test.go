package btree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyTree(t *testing.T) {
	tr := New()
	if tr.Len() != 0 {
		t.Fatalf("Len() = %d, want 0", tr.Len())
	}
	if _, ok := tr.Min(); ok {
		t.Error("Min() ok on empty tree")
	}
	if _, ok := tr.Max(); ok {
		t.Error("Max() ok on empty tree")
	}
	if _, ok := tr.Get(42); ok {
		t.Error("Get(42) ok on empty tree")
	}
	if tr.Delete(42) {
		t.Error("Delete(42) reported true on empty tree")
	}
	calls := 0
	tr.Ascend(0, 100, func(int64, byte) bool { calls++; return true })
	if calls != 0 {
		t.Errorf("Ascend visited %d keys on empty tree", calls)
	}
}

func TestInsertGet(t *testing.T) {
	tr := New()
	if !tr.Insert(10, 1) {
		t.Fatal("first Insert(10) returned false")
	}
	if tr.Insert(10, 0) {
		t.Fatal("duplicate Insert(10) returned true")
	}
	v, ok := tr.Get(10)
	if !ok || v != 1 {
		t.Fatalf("Get(10) = %d,%v, want 1,true", v, ok)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len() = %d, want 1", tr.Len())
	}
	// The duplicate insert must not clobber the stored value.
	tr.Insert(10, 9)
	if v, _ := tr.Get(10); v != 1 {
		t.Fatalf("duplicate insert clobbered value: got %d", v)
	}
}

func TestInsertAscendingKeys(t *testing.T) {
	tr := New()
	const n = 10_000
	for i := int64(0); i < n; i++ {
		if !tr.Insert(i, byte(i%2)) {
			t.Fatalf("Insert(%d) returned false", i)
		}
	}
	if tr.Len() != n {
		t.Fatalf("Len() = %d, want %d", tr.Len(), n)
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < n; i++ {
		v, ok := tr.Get(i)
		if !ok || v != byte(i%2) {
			t.Fatalf("Get(%d) = %d,%v", i, v, ok)
		}
	}
	if mn, _ := tr.Min(); mn != 0 {
		t.Errorf("Min() = %d, want 0", mn)
	}
	if mx, _ := tr.Max(); mx != n-1 {
		t.Errorf("Max() = %d, want %d", mx, n-1)
	}
}

func TestInsertDescendingKeys(t *testing.T) {
	tr := New()
	const n = 5_000
	for i := int64(n - 1); i >= 0; i-- {
		tr.Insert(i, 1)
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	var got []int64
	tr.Ascend(0, n, func(k int64, _ byte) bool { got = append(got, k); return true })
	if len(got) != n {
		t.Fatalf("Ascend visited %d keys, want %d", len(got), n)
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("Ascend output not sorted")
	}
}

func TestAscendBounds(t *testing.T) {
	tr := New()
	for i := int64(0); i < 100; i += 10 {
		tr.Insert(i, byte(i/10))
	}
	cases := []struct {
		lo, hi int64
		want   []int64
	}{
		{0, 90, []int64{0, 10, 20, 30, 40, 50, 60, 70, 80, 90}},
		{5, 25, []int64{10, 20}},
		{10, 10, []int64{10}},
		{11, 19, nil},
		{91, 200, nil},
		{-50, -1, nil},
		{50, 40, nil}, // inverted range
		{85, 1000, []int64{90}},
	}
	for _, c := range cases {
		var got []int64
		tr.Ascend(c.lo, c.hi, func(k int64, _ byte) bool { got = append(got, k); return true })
		if len(got) != len(c.want) {
			t.Errorf("Ascend(%d,%d) = %v, want %v", c.lo, c.hi, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Ascend(%d,%d) = %v, want %v", c.lo, c.hi, got, c.want)
				break
			}
		}
	}
}

func TestAscendEarlyStop(t *testing.T) {
	tr := New()
	for i := int64(0); i < 1000; i++ {
		tr.Insert(i, 0)
	}
	visited := 0
	tr.Ascend(0, 999, func(int64, byte) bool {
		visited++
		return visited < 7
	})
	if visited != 7 {
		t.Fatalf("visited %d keys, want 7", visited)
	}
}

func TestDeleteSimple(t *testing.T) {
	tr := New()
	for i := int64(0); i < 100; i++ {
		tr.Insert(i, 0)
	}
	if !tr.Delete(50) {
		t.Fatal("Delete(50) returned false")
	}
	if tr.Delete(50) {
		t.Fatal("second Delete(50) returned true")
	}
	if tr.Has(50) {
		t.Fatal("Has(50) after delete")
	}
	if tr.Len() != 99 {
		t.Fatalf("Len() = %d, want 99", tr.Len())
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteAllAscending(t *testing.T) {
	tr := New()
	const n = 3_000
	for i := int64(0); i < n; i++ {
		tr.Insert(i, 0)
	}
	for i := int64(0); i < n; i++ {
		if !tr.Delete(i) {
			t.Fatalf("Delete(%d) returned false", i)
		}
		if i%257 == 0 {
			if err := tr.checkInvariants(); err != nil {
				t.Fatalf("after Delete(%d): %v", i, err)
			}
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len() = %d after deleting everything", tr.Len())
	}
	if tr.Height() != 1 {
		t.Fatalf("Height() = %d after deleting everything, want 1", tr.Height())
	}
}

func TestDeleteAllDescending(t *testing.T) {
	tr := New()
	const n = 3_000
	for i := int64(0); i < n; i++ {
		tr.Insert(i, 0)
	}
	for i := int64(n - 1); i >= 0; i-- {
		if !tr.Delete(i) {
			t.Fatalf("Delete(%d) returned false", i)
		}
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteRange(t *testing.T) {
	tr := New()
	for i := int64(0); i < 1000; i++ {
		tr.Insert(i, 0)
	}
	got := tr.DeleteRange(100, 899)
	if got != 800 {
		t.Fatalf("DeleteRange removed %d keys, want 800", got)
	}
	if tr.Len() != 200 {
		t.Fatalf("Len() = %d, want 200", tr.Len())
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 1000; i++ {
		want := i < 100 || i > 899
		if tr.Has(i) != want {
			t.Fatalf("Has(%d) = %v, want %v", i, tr.Has(i), want)
		}
	}
	if tr.DeleteRange(5000, 6000) != 0 {
		t.Error("DeleteRange of empty range removed keys")
	}
}

func TestRandomizedAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := New()
	model := map[int64]byte{}
	const ops = 50_000
	for op := 0; op < ops; op++ {
		k := int64(rng.Intn(5_000))
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4, 5: // insert-biased so the tree grows
			v := byte(rng.Intn(2))
			_, existed := model[k]
			if tr.Insert(k, v) == existed {
				t.Fatalf("op %d: Insert(%d) disagrees with model (existed=%v)", op, k, existed)
			}
			if !existed {
				model[k] = v
			}
		case 6, 7:
			_, existed := model[k]
			if tr.Delete(k) != existed {
				t.Fatalf("op %d: Delete(%d) disagrees with model (existed=%v)", op, k, existed)
			}
			delete(model, k)
		case 8:
			v, ok := tr.Get(k)
			mv, mok := model[k]
			if ok != mok || (ok && v != mv) {
				t.Fatalf("op %d: Get(%d) = %d,%v; model %d,%v", op, k, v, ok, mv, mok)
			}
		case 9:
			lo := int64(rng.Intn(5_000))
			hi := lo + int64(rng.Intn(500))
			n := tr.DeleteRange(lo, hi)
			mn := 0
			for mk := range model {
				if mk >= lo && mk <= hi {
					delete(model, mk)
					mn++
				}
			}
			if n != mn {
				t.Fatalf("op %d: DeleteRange(%d,%d) = %d, model %d", op, lo, hi, n, mn)
			}
		}
	}
	if tr.Len() != len(model) {
		t.Fatalf("final Len() = %d, model %d", tr.Len(), len(model))
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	// Full ordered scan must match the sorted model.
	var want []int64
	for k := range model {
		want = append(want, k)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	i := 0
	tr.Ascend(-1, 1<<62, func(k int64, v byte) bool {
		if i >= len(want) || k != want[i] || v != model[k] {
			t.Fatalf("scan mismatch at %d: key %d", i, k)
		}
		i++
		return true
	})
	if i != len(want) {
		t.Fatalf("scan visited %d keys, want %d", i, len(want))
	}
}

// Property: for any key set, inserting all keys then scanning yields the
// sorted deduplicated input.
func TestQuickInsertScanSorted(t *testing.T) {
	f := func(keys []int64) bool {
		tr := New()
		uniq := map[int64]bool{}
		for _, k := range keys {
			tr.Insert(k, 1)
			uniq[k] = true
		}
		if tr.Len() != len(uniq) {
			return false
		}
		var prev int64
		first := true
		ok := true
		n := 0
		tr.Ascend(math.MinInt64, math.MaxInt64, func(k int64, _ byte) bool {
			if !first && k <= prev {
				ok = false
				return false
			}
			if !uniq[k] {
				ok = false
				return false
			}
			prev, first = k, false
			n++
			return true
		})
		return ok && n == len(uniq) && tr.checkInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: delete of an arbitrary subset leaves exactly the complement.
func TestQuickDeleteComplement(t *testing.T) {
	f := func(keys []int64, delMask []bool) bool {
		tr := New()
		uniq := map[int64]bool{}
		for _, k := range keys {
			tr.Insert(k, 0)
			uniq[k] = true
		}
		i := 0
		for k := range uniq {
			if i < len(delMask) && delMask[i] {
				if !tr.Delete(k) {
					return false
				}
				delete(uniq, k)
			}
			i++
		}
		if tr.Len() != len(uniq) {
			return false
		}
		for k := range uniq {
			if !tr.Has(k) {
				return false
			}
		}
		return tr.checkInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Min/Max always agree with a linear scan.
func TestQuickMinMax(t *testing.T) {
	f := func(keys []int64) bool {
		tr := New()
		for _, k := range keys {
			tr.Insert(k, 0)
		}
		if len(keys) == 0 {
			_, okMin := tr.Min()
			_, okMax := tr.Max()
			return !okMin && !okMax
		}
		wantMin, wantMax := keys[0], keys[0]
		for _, k := range keys {
			if k < wantMin {
				wantMin = k
			}
			if k > wantMax {
				wantMax = k
			}
		}
		gotMin, _ := tr.Min()
		gotMax, _ := tr.Max()
		return gotMin == wantMin && gotMax == wantMax
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHeightLogarithmic(t *testing.T) {
	tr := New()
	const n = 200_000
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < n; i++ {
		tr.Insert(rng.Int63(), 0)
	}
	// With degree 32 a 200k-key tree must stay very shallow.
	if tr.Height() > 5 {
		t.Fatalf("Height() = %d for %d keys, want <= 5", tr.Height(), tr.Len())
	}
}

func BenchmarkInsertSequential(b *testing.B) {
	tr := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Insert(int64(i), 0)
	}
}

func BenchmarkInsertRandom(b *testing.B) {
	tr := New()
	rng := rand.New(rand.NewSource(1))
	keys := make([]int64, b.N)
	for i := range keys {
		keys[i] = rng.Int63()
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Insert(keys[i], 0)
	}
}

func BenchmarkGet(b *testing.B) {
	tr := New()
	const n = 100_000
	for i := int64(0); i < n; i++ {
		tr.Insert(i, 0)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Get(int64(i % n))
	}
}

func BenchmarkAscend100(b *testing.B) {
	tr := New()
	const n = 100_000
	for i := int64(0); i < n; i++ {
		tr.Insert(i, 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := int64(i % (n - 100))
		count := 0
		tr.Ascend(lo, lo+99, func(int64, byte) bool { count++; return true })
	}
}
