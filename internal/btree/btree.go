// Package btree implements an in-memory B+tree over unique int64 keys with
// small fixed-size values.
//
// It is the storage substrate for the per-database history table
// sys.pause_resume_history described in Section 5 of the ProRP paper: the
// paper requires a clustered B-tree index on the time_snapshot column so
// that point lookups and inserts are O(log n) and range queries are
// O(log n + m). Keys are epoch-second timestamps; values are event types.
//
// The tree is not safe for concurrent use; the history store serializes
// access, mirroring the single-writer stored-procedure model of the paper.
package btree

import "fmt"

// degree is the branching factor: every node except the root holds between
// degree-1 and 2*degree-1 keys. 32 keeps nodes around two cache lines of
// keys while staying shallow for the few-thousand-tuple histories the paper
// reports (Figure 10(a)).
const degree = 32

const (
	maxKeys = 2*degree - 1
	minKeys = degree - 1
)

// Tree is a B+tree mapping unique int64 keys to byte values. Leaves are
// linked for ordered range scans. The zero value is not usable; call New.
type Tree struct {
	root   *node
	size   int
	height int
}

type node struct {
	// keys holds the node's keys in ascending order. In an internal node
	// keys[i] is the smallest key reachable under children[i+1], so a
	// search for k descends into children[j] where j is the number of
	// keys <= k.
	keys []int64
	// vals is parallel to keys in leaf nodes and nil in internal nodes.
	vals []byte
	// children is nil in leaf nodes; len(children) == len(keys)+1 otherwise.
	children []*node
	// next links leaves left-to-right for range scans.
	next *node
}

func (n *node) leaf() bool { return n.children == nil }

// New returns an empty tree.
func New() *Tree {
	return &Tree{root: newLeaf(), height: 1}
}

func newLeaf() *node {
	return &node{
		keys: make([]int64, 0, maxKeys),
		vals: make([]byte, 0, maxKeys),
	}
}

func newInternal() *node {
	return &node{
		keys:     make([]int64, 0, maxKeys),
		children: make([]*node, 0, maxKeys+1),
	}
}

// Len reports the number of keys stored.
func (t *Tree) Len() int { return t.size }

// Height reports the number of levels, including the leaf level.
func (t *Tree) Height() int { return t.height }

// search returns the index of the first key >= k in ks, i.e. the insertion
// point that keeps ks sorted.
func search(ks []int64, k int64) int {
	lo, hi := 0, len(ks)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ks[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// childIndex returns which child of an internal node covers key k.
func (n *node) childIndex(k int64) int {
	// keys[i] is the min key of children[i+1]; descend right of every
	// separator <= k.
	i := search(n.keys, k)
	if i < len(n.keys) && n.keys[i] == k {
		return i + 1
	}
	return i
}

// Get returns the value stored under k.
func (t *Tree) Get(k int64) (byte, bool) {
	n := t.root
	for !n.leaf() {
		n = n.children[n.childIndex(k)]
	}
	i := search(n.keys, k)
	if i < len(n.keys) && n.keys[i] == k {
		return n.vals[i], true
	}
	return 0, false
}

// Has reports whether k is present.
func (t *Tree) Has(k int64) bool {
	_, ok := t.Get(k)
	return ok
}

// Insert stores v under k if k is absent and reports whether it inserted.
// An existing key is left untouched, matching the IF NOT EXISTS guard of
// Algorithm 2 in the paper.
func (t *Tree) Insert(k int64, v byte) bool {
	inserted, split, sepKey := t.insert(t.root, k, v)
	if !inserted {
		return false
	}
	if split != nil {
		oldRoot := t.root
		t.root = newInternal()
		t.root.keys = append(t.root.keys, sepKey)
		t.root.children = append(t.root.children, oldRoot, split)
		t.height++
	}
	t.size++
	return true
}

// insert adds k to the subtree rooted at n. If n overflows it splits,
// returning the new right sibling and the separator key the parent must
// adopt.
func (t *Tree) insert(n *node, k int64, v byte) (inserted bool, split *node, sepKey int64) {
	if n.leaf() {
		i := search(n.keys, k)
		if i < len(n.keys) && n.keys[i] == k {
			return false, nil, 0
		}
		n.keys = append(n.keys, 0)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = k
		n.vals = append(n.vals, 0)
		copy(n.vals[i+1:], n.vals[i:])
		n.vals[i] = v
		if len(n.keys) > maxKeys {
			right := t.splitLeaf(n)
			return true, right, right.keys[0]
		}
		return true, nil, 0
	}

	ci := n.childIndex(k)
	inserted, childSplit, childSep := t.insert(n.children[ci], k, v)
	if childSplit != nil {
		n.keys = append(n.keys, 0)
		copy(n.keys[ci+1:], n.keys[ci:])
		n.keys[ci] = childSep
		n.children = append(n.children, nil)
		copy(n.children[ci+2:], n.children[ci+1:])
		n.children[ci+1] = childSplit
		if len(n.keys) > maxKeys {
			right, sep := t.splitInternal(n)
			return inserted, right, sep
		}
	}
	return inserted, nil, 0
}

// splitLeaf moves the upper half of n into a new right sibling. The
// separator the parent adopts is the first key of the new sibling (B+tree
// style: all keys remain in leaves).
func (t *Tree) splitLeaf(n *node) *node {
	mid := len(n.keys) / 2
	right := newLeaf()
	right.keys = append(right.keys, n.keys[mid:]...)
	right.vals = append(right.vals, n.vals[mid:]...)
	n.keys = n.keys[:mid]
	n.vals = n.vals[:mid]
	right.next = n.next
	n.next = right
	return right
}

// splitInternal moves the upper half of n into a new right sibling and
// returns it along with the separator key promoted to the parent.
func (t *Tree) splitInternal(n *node) (*node, int64) {
	mid := len(n.keys) / 2
	sep := n.keys[mid]
	right := newInternal()
	right.keys = append(right.keys, n.keys[mid+1:]...)
	right.children = append(right.children, n.children[mid+1:]...)
	n.keys = n.keys[:mid]
	n.children = n.children[:mid+1]
	return right, sep
}

// Min returns the smallest key.
func (t *Tree) Min() (int64, bool) {
	if t.size == 0 {
		return 0, false
	}
	n := t.root
	for !n.leaf() {
		n = n.children[0]
	}
	return n.keys[0], true
}

// Max returns the largest key.
func (t *Tree) Max() (int64, bool) {
	if t.size == 0 {
		return 0, false
	}
	n := t.root
	for !n.leaf() {
		n = n.children[len(n.children)-1]
	}
	return n.keys[len(n.keys)-1], true
}

// Ascend calls fn for every key in [lo, hi] in ascending order, stopping
// early if fn returns false. This is the range query of Algorithm 4
// (lines 19-24): O(log n) to locate lo, then O(m) along the leaf chain.
func (t *Tree) Ascend(lo, hi int64, fn func(k int64, v byte) bool) {
	if t.size == 0 || lo > hi {
		return
	}
	n := t.root
	for !n.leaf() {
		n = n.children[n.childIndex(lo)]
	}
	for n != nil {
		for i, k := range n.keys {
			if k < lo {
				continue
			}
			if k > hi {
				return
			}
			if !fn(k, n.vals[i]) {
				return
			}
		}
		n = n.next
	}
}

// Delete removes k and reports whether it was present.
func (t *Tree) Delete(k int64) bool {
	deleted := t.delete(t.root, k)
	if !deleted {
		return false
	}
	t.size--
	// Collapse a root that lost its last separator.
	if !t.root.leaf() && len(t.root.children) == 1 {
		t.root = t.root.children[0]
		t.height--
	}
	return true
}

// delete removes k from the subtree rooted at n, rebalancing children that
// underflow. The caller rebalances n itself.
func (t *Tree) delete(n *node, k int64) bool {
	if n.leaf() {
		i := search(n.keys, k)
		if i >= len(n.keys) || n.keys[i] != k {
			return false
		}
		n.keys = append(n.keys[:i], n.keys[i+1:]...)
		n.vals = append(n.vals[:i], n.vals[i+1:]...)
		return true
	}
	ci := n.childIndex(k)
	if !t.delete(n.children[ci], k) {
		return false
	}
	if len(n.children[ci].keys) < minKeys {
		t.rebalance(n, ci)
	}
	return true
}

// rebalance fixes an underflowing child at index ci of parent p by
// borrowing from a sibling or merging with one.
func (t *Tree) rebalance(p *node, ci int) {
	child := p.children[ci]

	// Borrow from the left sibling if it can spare a key.
	if ci > 0 {
		left := p.children[ci-1]
		if len(left.keys) > minKeys {
			if child.leaf() {
				last := len(left.keys) - 1
				child.keys = append(child.keys, 0)
				copy(child.keys[1:], child.keys)
				child.keys[0] = left.keys[last]
				child.vals = append(child.vals, 0)
				copy(child.vals[1:], child.vals)
				child.vals[0] = left.vals[last]
				left.keys = left.keys[:last]
				left.vals = left.vals[:last]
				p.keys[ci-1] = child.keys[0]
			} else {
				// Rotate through the separator.
				child.keys = append(child.keys, 0)
				copy(child.keys[1:], child.keys)
				child.keys[0] = p.keys[ci-1]
				child.children = append(child.children, nil)
				copy(child.children[1:], child.children)
				child.children[0] = left.children[len(left.children)-1]
				p.keys[ci-1] = left.keys[len(left.keys)-1]
				left.keys = left.keys[:len(left.keys)-1]
				left.children = left.children[:len(left.children)-1]
			}
			return
		}
	}

	// Borrow from the right sibling.
	if ci < len(p.children)-1 {
		right := p.children[ci+1]
		if len(right.keys) > minKeys {
			if child.leaf() {
				child.keys = append(child.keys, right.keys[0])
				child.vals = append(child.vals, right.vals[0])
				right.keys = append(right.keys[:0], right.keys[1:]...)
				right.vals = append(right.vals[:0], right.vals[1:]...)
				p.keys[ci] = right.keys[0]
			} else {
				child.keys = append(child.keys, p.keys[ci])
				child.children = append(child.children, right.children[0])
				p.keys[ci] = right.keys[0]
				right.keys = append(right.keys[:0], right.keys[1:]...)
				right.children = append(right.children[:0], right.children[1:]...)
			}
			return
		}
	}

	// Merge with a sibling; prefer merging child into its left sibling.
	if ci > 0 {
		t.merge(p, ci-1)
	} else {
		t.merge(p, ci)
	}
}

// merge folds p.children[i+1] into p.children[i] and drops separator i.
func (t *Tree) merge(p *node, i int) {
	left, right := p.children[i], p.children[i+1]
	if left.leaf() {
		left.keys = append(left.keys, right.keys...)
		left.vals = append(left.vals, right.vals...)
		left.next = right.next
	} else {
		left.keys = append(left.keys, p.keys[i])
		left.keys = append(left.keys, right.keys...)
		left.children = append(left.children, right.children...)
	}
	p.keys = append(p.keys[:i], p.keys[i+1:]...)
	p.children = append(p.children[:i+1], p.children[i+2:]...)
}

// DeleteRange removes every key in [lo, hi] and returns how many were
// removed. It locates the range in O(log n) and deletes key by key, so the
// total cost is O(m log n) for m removed keys; the histories trimmed by
// Algorithm 3 keep m small (Figure 10(a)).
func (t *Tree) DeleteRange(lo, hi int64) int {
	// Collect first: deleting while walking the leaf chain would invalidate
	// the iterator when leaves merge.
	var doomed []int64
	t.Ascend(lo, hi, func(k int64, _ byte) bool {
		doomed = append(doomed, k)
		return true
	})
	for _, k := range doomed {
		t.Delete(k)
	}
	return len(doomed)
}

// checkInvariants validates structural invariants; used by tests.
func (t *Tree) checkInvariants() error {
	count, _, err := t.check(t.root, true)
	if err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("size %d but %d keys reachable", t.size, count)
	}
	return nil
}

func (t *Tree) check(n *node, isRoot bool) (count int, depth int, err error) {
	for i := 1; i < len(n.keys); i++ {
		if n.keys[i-1] >= n.keys[i] {
			return 0, 0, fmt.Errorf("keys out of order: %d >= %d", n.keys[i-1], n.keys[i])
		}
	}
	if len(n.keys) > maxKeys {
		return 0, 0, fmt.Errorf("node overflow: %d keys", len(n.keys))
	}
	if !isRoot && len(n.keys) < minKeys {
		return 0, 0, fmt.Errorf("node underflow: %d keys", len(n.keys))
	}
	if n.leaf() {
		if len(n.vals) != len(n.keys) {
			return 0, 0, fmt.Errorf("leaf with %d keys but %d vals", len(n.keys), len(n.vals))
		}
		return len(n.keys), 1, nil
	}
	if len(n.children) != len(n.keys)+1 {
		return 0, 0, fmt.Errorf("internal with %d keys but %d children", len(n.keys), len(n.children))
	}
	childDepth := -1
	for i, c := range n.children {
		cc, d, err := t.check(c, false)
		if err != nil {
			return 0, 0, err
		}
		if childDepth == -1 {
			childDepth = d
		} else if d != childDepth {
			return 0, 0, fmt.Errorf("uneven depth: %d vs %d", d, childDepth)
		}
		count += cc
		// Deletions may leave separators stale, so the invariant is the
		// search-correctness one: separator i-1 <= every key under child i,
		// and separator i > every key under child i.
		if i > 0 {
			if mink := minKeyUnder(c); mink < n.keys[i-1] {
				return 0, 0, fmt.Errorf("separator %d > min key %d of child %d", n.keys[i-1], mink, i)
			}
		}
		if i < len(n.keys) {
			if maxk := maxKeyUnder(c); maxk >= n.keys[i] {
				return 0, 0, fmt.Errorf("separator %d <= max key %d of child %d", n.keys[i], maxk, i)
			}
		}
	}
	return count, childDepth + 1, nil
}

func minKeyUnder(n *node) int64 {
	for !n.leaf() {
		n = n.children[0]
	}
	return n.keys[0]
}

func maxKeyUnder(n *node) int64 {
	for !n.leaf() {
		n = n.children[len(n.children)-1]
	}
	return n.keys[len(n.keys)-1]
}
