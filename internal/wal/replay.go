package wal

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"time"

	"prorp/internal/faults"
)

// encodeFrame serializes one record as a length-prefixed, CRC-32C-guarded
// frame.
func encodeFrame(rec Record) []byte {
	buf := make([]byte, frameOverhead+recordPayload)
	payload := buf[frameOverhead:]
	payload[0] = byte(rec.Type)
	putU64(payload[1:9], uint64(rec.ID))
	putU64(payload[9:17], uint64(rec.Unix))
	putU32(buf[0:4], recordPayload)
	putU32(buf[4:8], crc32.Checksum(payload, crcTable))
	return buf
}

// decodeRecord parses a verified frame payload. It rejects payloads whose
// checksum matched but whose contents are not a record (wrong size, unknown
// type) — defense against a frame of a future format version.
func decodeRecord(payload []byte) (Record, bool) {
	if len(payload) != recordPayload {
		return Record{}, false
	}
	rec := Record{
		Type: RecordType(payload[0]),
		ID:   int64(getU64(payload[1:9])),
		Unix: int64(getU64(payload[9:17])),
	}
	if !rec.Type.valid() {
		return Record{}, false
	}
	return rec, true
}

// scanFrames walks the record area of a segment (everything after the
// header), calling apply for each intact frame. It stops at the first bad
// frame — truncated length prefix, oversized length, payload running past
// the buffer, checksum mismatch, or undecodable payload — and reports how
// many bytes of data were consumed and whether a tear cut the scan short.
// A clean scan (consumed == len(data)) is not torn.
func scanFrames(data []byte, apply func(Record)) (consumed int64, torn bool) {
	off := 0
	for off < len(data) {
		rest := data[off:]
		if len(rest) < frameOverhead {
			return int64(off), true
		}
		length := int(getU32(rest[0:4]))
		if length > maxFramePayload || len(rest) < frameOverhead+length {
			return int64(off), true
		}
		payload := rest[frameOverhead : frameOverhead+length]
		if crc32.Checksum(payload, crcTable) != getU32(rest[4:8]) {
			return int64(off), true
		}
		rec, ok := decodeRecord(payload)
		if !ok {
			return int64(off), true
		}
		apply(rec)
		off += frameOverhead + length
	}
	return int64(off), false
}

// Replay applies every intact record in segments with seq >= since, in
// sequence order, oldest first. It must run before the first Append (the
// active segment is excluded). Damage never fails a replay:
//
//   - A bad frame cuts its segment short at the tear; later bytes in that
//     segment are discarded and counted, never parsed. Records past a tear
//     were never acknowledged (a failed append rotates the segment), so
//     nothing acknowledged is lost.
//   - A segment with a damaged header is counted as torn in full.
//
// Only I/O errors (after retries) fail a replay — an unreadable disk is a
// verdict the operator must see, unlike a torn tail which is expected
// crash debris.
func (j *Journal) Replay(since uint64, apply func(Record)) (ReplayStats, error) {
	if j.replayHist != nil {
		defer j.replayHist.ObserveSince(time.Now())
	}
	j.mu.Lock()
	activeSeq := j.active.seq
	j.mu.Unlock()

	seqs, err := scanDir(j.cfg.FS, j.cfg.Dir)
	if err != nil {
		return ReplayStats{}, err
	}
	var stats ReplayStats
	for _, seq := range seqs {
		if seq < since || seq >= activeSeq {
			continue
		}
		data, err := j.readSegment(segPath(j.cfg.Dir, seq))
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				continue // compacted between scan and read
			}
			return stats, fmt.Errorf("wal: reading segment %d: %w", seq, err)
		}
		stats.SegmentsScanned++
		if len(data) < segHeaderSize || getU32(data[0:4]) != segMagic || getU64(data[4:12]) != seq {
			j.cfg.Logf("wal: segment %d header damaged; discarding %d bytes", seq, len(data))
			stats.TornSegments++
			stats.TruncatedBytes += int64(len(data))
			continue
		}
		body := data[segHeaderSize:]
		consumed, torn := scanFrames(body, func(rec Record) {
			stats.Records++
			apply(rec)
		})
		if torn {
			discarded := int64(len(body)) - consumed
			j.cfg.Logf("wal: segment %d torn at offset %d; discarding %d bytes",
				seq, segHeaderSize+consumed, discarded)
			stats.TornSegments++
			stats.TruncatedBytes += discarded
		}
	}
	return stats, nil
}

// readSegment reads one segment file through the FS seam, retrying
// transient errors per the journal's backoff.
func (j *Journal) readSegment(path string) ([]byte, error) {
	var data []byte
	var notExist error
	_, err := faults.Retry(j.cfg.Clock, j.cfg.Backoff, func() error {
		f, err := j.cfg.FS.Open(path)
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				notExist = err // missing is a verdict, not a transient
				return nil
			}
			return err
		}
		notExist = nil
		data, err = io.ReadAll(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		return err
	})
	if notExist != nil {
		return nil, notExist
	}
	return data, err
}
