package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"prorp/internal/faults"
)

func testConfig(t *testing.T, dir string) Config {
	t.Helper()
	return Config{
		Dir:           dir,
		Fsync:         FsyncAlways,
		BatchInterval: time.Millisecond,
	}
}

func appendN(t *testing.T, j *Journal, start, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		rec := Record{Type: RecordLogin, ID: int64(start + i), Unix: int64(1000 + start + i)}
		if _, err := j.Append(rec); err != nil {
			t.Fatalf("append %d: %v", start+i, err)
		}
	}
}

func collect(t *testing.T, j *Journal, since uint64) ([]Record, ReplayStats) {
	t.Helper()
	var got []Record
	stats, err := j.Replay(since, func(rec Record) { got = append(got, rec) })
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got, stats
}

func TestAppendReplayRoundTrip(t *testing.T) {
	for _, policy := range []FsyncPolicy{FsyncAlways, FsyncBatch, FsyncOff} {
		t.Run(policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			cfg := testConfig(t, dir)
			cfg.Fsync = policy
			j, err := Open(cfg)
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			want := []Record{
				{Type: RecordCreate, ID: 7, Unix: 100},
				{Type: RecordLogin, ID: 7, Unix: 200},
				{Type: RecordLogout, ID: 7, Unix: 300},
				{Type: RecordDelete, ID: 7, Unix: 400},
				{Type: RecordLogin, ID: -3, Unix: -50}, // negative ids/times survive
			}
			for _, rec := range want {
				if _, err := j.Append(rec); err != nil {
					t.Fatalf("append %+v: %v", rec, err)
				}
			}
			if err := j.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}

			j2, err := Open(testConfig(t, dir))
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer j2.Close()
			got, stats := collect(t, j2, 0)
			if len(got) != len(want) {
				t.Fatalf("replayed %d records, want %d (stats %+v)", len(got), len(want), stats)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
				}
			}
			if stats.TornSegments != 0 || stats.TruncatedBytes != 0 {
				t.Fatalf("clean journal reported damage: %+v", stats)
			}
		})
	}
}

func TestSegmentRotationBySize(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(t, dir)
	cfg.SegmentBytes = minSegmentBytes // floor: 4 KiB
	j, err := Open(cfg)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	// Each frame is 25 bytes; > 4096/25 appends must cross a boundary.
	n := 400
	appendN(t, j, 0, n)
	if rot := j.Metrics().Rotations; rot == 0 {
		t.Fatalf("no rotations after %d appends of %d-byte frames", n, frameOverhead+recordPayload)
	}
	j.Close()

	j2, err := Open(testConfig(t, dir))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j2.Close()
	got, stats := collect(t, j2, 0)
	if len(got) != n {
		t.Fatalf("replayed %d records across segments, want %d", len(got), n)
	}
	if stats.SegmentsScanned < 2 {
		t.Fatalf("expected multiple segments, scanned %d", stats.SegmentsScanned)
	}
}

// damageTail simulates a torn write: the last bytes of the newest sealed
// segment are truncated or corrupted.
func newestSegment(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var newest string
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".seg" {
			newest = filepath.Join(dir, e.Name())
		}
	}
	if newest == "" {
		t.Fatal("no segments found")
	}
	return newest
}

func TestTornTailTruncatedNotFatal(t *testing.T) {
	cases := []struct {
		name   string
		damage func(t *testing.T, path string)
		// lost is how many of the 10 records may be lost (from the end).
		maxLost int
	}{
		{"truncate-mid-frame", func(t *testing.T, path string) {
			data, _ := os.ReadFile(path)
			os.WriteFile(path, data[:len(data)-10], 0o644)
		}, 1},
		{"bitflip-last-frame", func(t *testing.T, path string) {
			data, _ := os.ReadFile(path)
			data[len(data)-3] ^= 0x40
			os.WriteFile(path, data, 0o644)
		}, 1},
		{"garbage-appended", func(t *testing.T, path string) {
			f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
			f.Write([]byte("\x99\x99partial frame debris"))
			f.Close()
		}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			j, err := Open(testConfig(t, dir))
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			appendN(t, j, 0, 10)
			j.Kill() // crash: no final fsync bookkeeping

			tc.damage(t, newestSegment(t, dir))

			j2, err := Open(testConfig(t, dir))
			if err != nil {
				t.Fatalf("boot after tail damage must succeed: %v", err)
			}
			defer j2.Close()
			got, stats := collect(t, j2, 0)
			if len(got) < 10-tc.maxLost || len(got) > 10 {
				t.Fatalf("replayed %d records, want %d..10 (stats %+v)", len(got), 10-tc.maxLost, stats)
			}
			if stats.TornSegments != 1 {
				t.Fatalf("torn segments = %d, want 1 (stats %+v)", stats.TornSegments, stats)
			}
			// Replayed prefix is intact and in order.
			for i, rec := range got {
				if rec.ID != int64(i) {
					t.Fatalf("record %d has id %d; prefix not in order", i, rec.ID)
				}
			}
		})
	}
}

func TestDamagedHeaderSegmentSkipped(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(testConfig(t, dir))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	appendN(t, j, 0, 3)
	if _, err := j.Rotate(); err != nil {
		t.Fatalf("rotate: %v", err)
	}
	appendN(t, j, 3, 3)
	j.Close()

	// Smash the first segment's magic; the second must still replay.
	first := segPath(dir, 1)
	data, _ := os.ReadFile(first)
	data[0] ^= 0xFF
	os.WriteFile(first, data, 0o644)

	j2, err := Open(testConfig(t, dir))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j2.Close()
	got, stats := collect(t, j2, 0)
	if len(got) != 3 {
		t.Fatalf("replayed %d records, want 3 from the intact segment", len(got))
	}
	if got[0].ID != 3 {
		t.Fatalf("surviving records start at id %d, want 3", got[0].ID)
	}
	if stats.TornSegments != 1 {
		t.Fatalf("torn segments = %d, want 1", stats.TornSegments)
	}
}

func TestReplaySinceAndCompaction(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(testConfig(t, dir))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	appendN(t, j, 0, 5)
	boundary, err := j.Rotate()
	if err != nil {
		t.Fatalf("rotate: %v", err)
	}
	appendN(t, j, 5, 5)
	j.Close()

	j2, err := Open(testConfig(t, dir))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	got, _ := collect(t, j2, boundary)
	if len(got) != 5 || got[0].ID != 5 {
		t.Fatalf("replay since %d got %d records starting at %v, want 5 starting at id 5",
			boundary, len(got), got)
	}

	removed, err := j2.CompactBefore(boundary)
	if err != nil {
		t.Fatalf("compact: %v", err)
	}
	if removed != 1 {
		t.Fatalf("compacted %d segments, want 1", removed)
	}
	// Everything below the boundary is gone; a full replay now starts at 5.
	got, _ = collect(t, j2, 0)
	if len(got) != 5 || got[0].ID != 5 {
		t.Fatalf("post-compaction replay got %v, want ids 5..9", got)
	}
	j2.Close()
}

// TestFailedAppendRotatesSegment is the poisoned-segment contract: after a
// torn write the journal never appends to the damaged segment again, so
// records acknowledged after the failure are always replayable.
func TestFailedAppendRotatesSegment(t *testing.T) {
	dir := t.TempDir()
	inj := faults.NewInjector(1)
	cfg := testConfig(t, dir)
	cfg.FS = faults.NewFaultFS(faults.OS, inj, nil)
	j, err := Open(cfg)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	appendN(t, j, 0, 3)

	inj.PartialWrites("fs.write", 1.0)
	_, err = j.Append(Record{Type: RecordLogin, ID: 99, Unix: 1})
	if err == nil {
		t.Fatal("append with torn write must fail")
	}
	inj.HealAll()

	// The retry lands in a fresh segment and succeeds.
	appendN(t, j, 3, 3)
	if rot := j.Metrics().Rotations; rot == 0 {
		t.Fatal("poisoned segment was not rotated")
	}
	j.Close()

	j2, err := Open(testConfig(t, dir))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j2.Close()
	got, stats := collect(t, j2, 0)
	if len(got) != 6 {
		t.Fatalf("replayed %d records, want all 6 acknowledged (stats %+v)", len(got), stats)
	}
	for i, rec := range got {
		if rec.ID != int64(i) {
			t.Fatalf("record %d has id %d; acknowledged order broken", i, rec.ID)
		}
	}
	if stats.TornSegments != 1 {
		t.Fatalf("the torn segment should be detected: %+v", stats)
	}
}

func TestFsyncFailurePoisonsAndRecovers(t *testing.T) {
	dir := t.TempDir()
	inj := faults.NewInjector(2)
	cfg := testConfig(t, dir)
	cfg.FS = faults.NewFaultFS(faults.OS, inj, nil)
	j, err := Open(cfg)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	appendN(t, j, 0, 2)

	inj.TripN("fs.sync", 1, nil)
	if _, err := j.Append(Record{Type: RecordLogin, ID: 50, Unix: 1}); err == nil {
		t.Fatal("append whose fsync failed must not be acknowledged")
	}
	appendN(t, j, 2, 2)
	j.Close()

	j2, err := Open(testConfig(t, dir))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j2.Close()
	got, _ := collect(t, j2, 0)
	// The unacknowledged record may or may not survive (its durability was
	// unknown); all four acknowledged ones must.
	acked := 0
	for _, rec := range got {
		if rec.ID != 50 {
			acked++
		}
	}
	if acked != 4 {
		t.Fatalf("acknowledged records replayed = %d, want 4 (got %v)", acked, got)
	}
}

func TestGroupCommitBatchesFsyncs(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(t, dir)
	cfg.Fsync = FsyncBatch
	cfg.BatchInterval = 5 * time.Millisecond
	j, err := Open(cfg)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer j.Close()

	const writers, each = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				rec := Record{Type: RecordLogin, ID: int64(w*1000 + i), Unix: int64(i)}
				if _, err := j.Append(rec); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	m := j.Metrics()
	if m.Appends != writers*each {
		t.Fatalf("appends = %d, want %d", m.Appends, writers*each)
	}
	if m.Fsyncs >= m.Appends {
		t.Fatalf("group commit did not batch: %d fsyncs for %d appends", m.Fsyncs, m.Appends)
	}
	t.Logf("group commit: %d appends in %d fsyncs", m.Appends, m.Fsyncs)
}

func TestAppendAfterCloseFails(t *testing.T) {
	j, err := Open(testConfig(t, t.TempDir()))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	j.Close()
	if _, err := j.Append(Record{Type: RecordLogin, ID: 1, Unix: 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close = %v, want ErrClosed", err)
	}
	if _, err := j.Rotate(); !errors.Is(err, ErrClosed) {
		t.Fatalf("rotate after close = %v, want ErrClosed", err)
	}
}

func TestParsePolicy(t *testing.T) {
	for in, want := range map[string]FsyncPolicy{
		"always": FsyncAlways, "batch": FsyncBatch, "group": FsyncBatch, "off": FsyncOff,
	} {
		got, err := ParsePolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParsePolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Fatal("ParsePolicy must reject unknown policies")
	}
}

func TestCompactionLeftoversCollected(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(testConfig(t, dir))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := 0; i < 3; i++ {
		appendN(t, j, i*2, 2)
		if _, err := j.Rotate(); err != nil {
			t.Fatalf("rotate %d: %v", i, err)
		}
	}
	boundary := j.ActiveSeq()

	// First compaction races a bad disk: some removals fail.
	inj := faults.NewInjector(3)
	j.cfg.FS = faults.NewFaultFS(faults.OS, inj, nil)
	inj.FailProb("fs.remove", 0.7, nil)
	j.CompactBefore(boundary)
	inj.HealAll()

	// The next compaction sweeps the leftovers.
	if _, err := j.CompactBefore(boundary); err != nil {
		t.Fatalf("second compaction: %v", err)
	}
	got, _ := collect(t, j, 0)
	if len(got) != 0 {
		t.Fatalf("replay after full compaction found %d records, want 0", len(got))
	}
	j.Close()
}

func TestRotateBoundarySemantics(t *testing.T) {
	// Every record appended before Rotate returns lives below the boundary.
	dir := t.TempDir()
	j, err := Open(testConfig(t, dir))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	appendN(t, j, 0, 4)
	boundary, err := j.Rotate()
	if err != nil {
		t.Fatalf("rotate: %v", err)
	}
	appendN(t, j, 4, 4)
	j.Close()

	j2, err := Open(testConfig(t, dir))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j2.Close()
	var below []Record
	j2.Replay(0, func(rec Record) {
		if rec.ID < 4 {
			below = append(below, rec)
		}
	})
	got, _ := collect(t, j2, boundary)
	if len(below) != 4 {
		t.Fatalf("pre-rotate records = %d, want 4", len(below))
	}
	for _, rec := range got {
		if rec.ID < 4 {
			t.Fatalf("record %d appended before Rotate replayed above the boundary", rec.ID)
		}
	}
}

func TestKillLosesOnlyUnsynced(t *testing.T) {
	// Under FsyncOff nothing is guaranteed; under FsyncAlways everything
	// acknowledged must survive a Kill plus tail damage beyond the durable
	// prefix.
	dir := t.TempDir()
	j, err := Open(testConfig(t, dir))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	appendN(t, j, 0, 20)
	path, durable := j.ActiveSegment()
	j.Kill()

	// Damage strictly beyond the durable prefix (simulated torn write).
	f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	f.Write([]byte{0xde, 0xad})
	f.Close()
	if fi, _ := os.Stat(path); fi.Size() < durable {
		t.Fatalf("file shorter than durable prefix: %d < %d", fi.Size(), durable)
	}

	j2, err := Open(testConfig(t, dir))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j2.Close()
	got, _ := collect(t, j2, 0)
	if len(got) != 20 {
		t.Fatalf("lost acknowledged records: replayed %d of 20", len(got))
	}
}

func BenchmarkAppend(b *testing.B) {
	for _, policy := range []FsyncPolicy{FsyncBatch, FsyncOff} {
		b.Run(policy.String(), func(b *testing.B) {
			j, err := Open(Config{Dir: b.TempDir(), Fsync: policy, BatchInterval: time.Millisecond})
			if err != nil {
				b.Fatal(err)
			}
			defer j.Close()
			b.RunParallel(func(pb *testing.PB) {
				i := int64(0)
				for pb.Next() {
					i++
					if _, err := j.Append(Record{Type: RecordLogin, ID: i, Unix: i}); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// Ensure example-style usage in docs compiles.
func ExampleOpen() {
	dir, _ := os.MkdirTemp("", "wal")
	defer os.RemoveAll(dir)
	j, _ := Open(Config{Dir: dir, Fsync: FsyncBatch})
	stats, _ := j.Replay(0, func(rec Record) { /* apply to fleet */ })
	_, _ = j.Append(Record{Type: RecordLogin, ID: 1, Unix: 1700000000})
	j.Close()
	fmt.Println(stats.Records)
	// Output: 0
}
