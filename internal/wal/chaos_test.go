package wal

import (
	"fmt"
	"math/rand"
	"os"
	"sync"
	"testing"
	"time"

	"prorp/internal/faults"
)

// TestChaosWALTornTail is the journal-level half of the kill-replay chaos
// gate: 50 seeded iterations of concurrent appends under an abusive disk
// (transient errors, partial writes, failed fsyncs), then Kill, then
// post-mortem tail damage beyond the durable prefix, then reopen-and-replay.
// The invariant: every acknowledged record is replayed, in order, and the
// reopen never fails — a torn tail is truncated, not fatal. Runs under
// -race in CI (make wal-chaos).
func TestChaosWALTornTail(t *testing.T) {
	const iterations = 50
	for seed := int64(0); seed < iterations; seed++ {
		t.Run(fmt.Sprintf("seed%02d", seed), func(t *testing.T) {
			t.Parallel()
			chaosWALIteration(t, seed)
		})
	}
}

func chaosWALIteration(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	inj := faults.NewInjector(seed)
	dir := t.TempDir()
	cfg := Config{
		Dir:           dir,
		SegmentBytes:  minSegmentBytes, // small segments: rotations under fire
		Fsync:         FsyncBatch,
		BatchInterval: time.Duration(1+rng.Intn(3)) * time.Millisecond,
		FS:            faults.NewFaultFS(faults.OS, inj, nil),
		Backoff: faults.Backoff{Attempts: 3, Base: time.Microsecond,
			Max: 10 * time.Microsecond, Factor: 2, Rand: inj.Rand()},
	}
	if rng.Intn(3) == 0 {
		cfg.Fsync = FsyncAlways
	}
	j, err := Open(cfg)
	if err != nil {
		t.Fatalf("open: %v", err)
	}

	// The disk goes bad mid-flight.
	inj.PartialWrites("fs.write", 0.2*rng.Float64())
	inj.FailProb("fs.write", 0.1*rng.Float64(), nil)
	inj.FailProb("fs.sync", 0.15*rng.Float64(), nil)
	inj.FailProb("fs.openfile", 0.1*rng.Float64(), nil)

	// Concurrent appenders; each retries failures (a failed append is not
	// acknowledged) and records what was acknowledged, in per-worker order.
	const workers, perWorker = 4, 30
	acked := make([][]int64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id := int64(w*1000 + i)
				var err error
				for attempt := 0; attempt < 8; attempt++ {
					if _, err = j.Append(Record{Type: RecordLogin, ID: id, Unix: id}); err == nil {
						break
					}
				}
				if err == nil {
					acked[w] = append(acked[w], id)
				}
			}
		}(w)
	}
	wg.Wait()

	// Kill: no final fsync. Then damage the crash debris — bytes beyond the
	// durable prefix of the active segment are fair game for a torn write.
	path, durable := j.ActiveSegment()
	j.Kill()
	if fi, err := os.Stat(path); err == nil && fi.Size() > durable {
		data, _ := os.ReadFile(path)
		tail := data[durable:]
		switch rng.Intn(3) {
		case 0: // truncate somewhere in the unsynced tail
			os.WriteFile(path, data[:durable+int64(rng.Intn(len(tail)+1))], 0o644)
		case 1: // bit-flip in the unsynced tail
			tail[rng.Intn(len(tail))] ^= byte(1 << rng.Intn(8))
			os.WriteFile(path, data, 0o644)
		case 2: // garbage appended after the tail
			f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
			f.Write(make([]byte, rng.Intn(64)))
			f.Close()
		}
	}
	inj.HealAll()

	// Reopen and replay: never an error, and every acked record present in
	// per-worker order.
	j2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatalf("reopen after kill must succeed: %v", err)
	}
	defer j2.Close()
	replayed := make(map[int64]int) // id -> replay position
	pos := 0
	if _, err := j2.Replay(0, func(rec Record) {
		if _, dup := replayed[rec.ID]; !dup {
			replayed[rec.ID] = pos
		}
		pos++
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	total := 0
	for w := 0; w < workers; w++ {
		last := -1
		for _, id := range acked[w] {
			p, ok := replayed[id]
			if !ok {
				t.Fatalf("worker %d: acknowledged record %d lost after kill-replay", w, id)
			}
			if p < last {
				t.Fatalf("worker %d: record %d replayed out of order", w, id)
			}
			last = p
			total++
		}
	}
	t.Logf("seed %d: %d acked records all replayed (%d total frames)", seed, total, pos)
}
