package wal

import (
	"errors"
	"testing"
	"time"
)

func TestCoverage(t *testing.T) {
	c := NewCoverage()
	target := Cursor{Seg: 1, Off: 100}

	// k <= 0 disables the gate entirely.
	if err := c.WaitCovered(target, 0, 0); err != nil {
		t.Fatalf("k=0 wait: %v", err)
	}
	// Nobody has polled: the wait expires instead of acking.
	if err := c.WaitCovered(target, 1, 10*time.Millisecond); !errors.Is(err, ErrQuorumTimeout) {
		t.Fatalf("uncovered wait = %v, want ErrQuorumTimeout", err)
	}
	// Anonymous polls never count toward quorum.
	c.Observe("", target)
	if c.Peers() != 0 {
		t.Fatalf("anonymous poll registered a peer: %d", c.Peers())
	}

	c.Observe("b", Cursor{Seg: 1, Off: 50})
	if c.Covered(target, 1) {
		t.Fatal("covered by a peer still behind the record")
	}
	c.Observe("b", target)
	if !c.Covered(target, 1) {
		t.Fatal("not covered by a peer at the record's end")
	}
	// A stale poll (retry, reordering) never regresses the high-water mark.
	c.Observe("b", Cursor{Seg: 1, Off: 10})
	if !c.Covered(target, 1) {
		t.Fatal("stale poll regressed the peer's cursor")
	}
	if c.Covered(target, 2) {
		t.Fatal("one peer satisfied k=2")
	}

	// A blocked waiter wakes as soon as the Kth peer polls past the record.
	far := Cursor{Seg: 2, Off: 5}
	done := make(chan error, 1)
	go func() { done <- c.WaitCovered(far, 2, 5*time.Second) }()
	c.Observe("b", far)
	c.Observe("d", Cursor{Seg: 2, Off: 9})
	if err := <-done; err != nil {
		t.Fatalf("covered wait: %v", err)
	}
	if c.Peers() != 2 {
		t.Fatalf("peers = %d, want 2", c.Peers())
	}
}
