// Package wal is a crash-durable, segmented write-ahead event journal for
// the serving runtime. Every fleet mutation (create, delete, login, logout)
// is recorded here before it is acknowledged, so a crash between snapshots
// loses no acknowledged activity history — the Algorithm 4 predictor's
// per-day windows survive kill -9 intact.
//
// On-disk layout: a directory of segment files named wal-<seq>.seg, each
//
//	header:  magic "PRW1" (u32 LE) | segment seq (u64 LE)
//	records: frame*
//	frame:   payload length (u32 LE) | CRC-32C(payload) (u32 LE) | payload
//	payload: record type (u8) | database id (i64 LE) | unix seconds (i64 LE)
//
// Segments rotate at a configurable size, on demand (snapshot boundaries),
// and whenever a write or fsync fails — a torn frame is never appended
// after, so damage is always confined to a segment's tail. Replay walks the
// segments in sequence order, verifies every frame, and truncates at the
// first bad frame: a torn tail costs only the unacknowledged suffix, never
// a refused boot.
//
// Durability is governed by an fsync policy:
//
//   - FsyncAlways: Append returns only after the record is fsynced.
//   - FsyncBatch: group commit — appends arriving within BatchInterval are
//     made durable by one shared fsync; every Append still blocks until
//     the fsync covering its record completes, so acknowledged means
//     durable, at a fraction of the fsync rate.
//   - FsyncOff: Append returns after the write; durability rides on the
//     kernel. For benchmarks and bulk loads only.
//
// Each successful snapshot compacts the journal: segments wholly covered
// by the snapshot (seq below the boundary returned by Rotate at snapshot
// time) are deleted. The compaction invariant: a segment is deleted only
// after a snapshot containing every event in it is durably on disk.
package wal

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"prorp/internal/faults"
	"prorp/internal/obs"
)

// FsyncPolicy selects when Append makes records durable.
type FsyncPolicy int

const (
	// FsyncAlways fsyncs before every acknowledgment.
	FsyncAlways FsyncPolicy = iota
	// FsyncBatch group-commits: one fsync covers every record that arrived
	// within BatchInterval, and each Append blocks until its record is
	// covered.
	FsyncBatch
	// FsyncOff never fsyncs on append (segment seals still flush).
	FsyncOff
)

// ParsePolicy maps the -wal-fsync flag values onto a policy.
func ParsePolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "batch", "group":
		return FsyncBatch, nil
	case "off":
		return FsyncOff, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, batch, or off)", s)
}

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncBatch:
		return "batch"
	case FsyncOff:
		return "off"
	}
	return fmt.Sprintf("FsyncPolicy(%d)", int(p))
}

// RecordType tags the fleet mutation a record carries.
type RecordType uint8

const (
	RecordCreate RecordType = 1
	RecordDelete RecordType = 2
	RecordLogin  RecordType = 3
	RecordLogout RecordType = 4
)

func (t RecordType) valid() bool { return t >= RecordCreate && t <= RecordLogout }

func (t RecordType) String() string {
	switch t {
	case RecordCreate:
		return "create"
	case RecordDelete:
		return "delete"
	case RecordLogin:
		return "login"
	case RecordLogout:
		return "logout"
	}
	return fmt.Sprintf("RecordType(%d)", int(t))
}

// Record is one journaled fleet mutation.
type Record struct {
	Type RecordType
	ID   int64
	Unix int64 // event time, epoch seconds
}

// Config assembles a Journal.
type Config struct {
	// Dir is the journal directory, created if missing.
	Dir string
	// SegmentBytes rotates the active segment once it exceeds this size
	// (default 4 MiB, minimum 4 KiB).
	SegmentBytes int64
	// Fsync is the durability policy (default FsyncAlways).
	Fsync FsyncPolicy
	// BatchInterval is the group-commit window under FsyncBatch: the fsync
	// leader waits this long for more appends before syncing (default 2ms).
	BatchInterval time.Duration
	// FS is the filesystem seam (default the real filesystem).
	FS faults.FS
	// Clock serves the group-commit wait (default wall clock).
	Clock faults.Clock
	// Backoff retries transient read errors during Replay and CompactBefore
	// (zero value = single attempt).
	Backoff faults.Backoff
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
	// Obs, when non-nil, receives the journal's latency histograms
	// (prorp_wal_append_duration_seconds, prorp_wal_fsync_duration_seconds,
	// prorp_wal_replay_duration_seconds). Counters stay on Metrics either
	// way; a nil registry costs the journal nothing.
	Obs *obs.Registry
}

// Metrics is a point-in-time snapshot of the journal's counters.
type Metrics struct {
	Appends       uint64 // records appended (acknowledged)
	BytesAppended uint64
	Fsyncs        uint64
	Rotations     uint64
	Compacted     uint64 // segments deleted by compaction
}

// ReplayStats reports what one Replay pass found.
type ReplayStats struct {
	SegmentsScanned int
	Records         int   // intact records handed to apply
	TornSegments    int   // segments cut short at a bad frame
	TruncatedBytes  int64 // bytes discarded after bad frames
}

// ErrClosed is returned by Append after Close or Kill.
var ErrClosed = errors.New("wal: journal closed")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

const (
	segMagic            = 0x50525731 // "PRW1"
	segHeaderSize       = 12         // magic u32 + seq u64
	frameOverhead       = 8          // length u32 + crc u32
	recordPayload       = 17         // type u8 + id i64 + unix i64
	maxFramePayload     = 1 << 16    // sanity cap: larger lengths are damage, not data
	defaultSegmentBytes = 4 << 20
	minSegmentBytes     = 4 << 10
)

// segment is the mutable state of one open (active) segment file. Waiters
// hold a pointer to the segment their record went into, so rotation can't
// confuse offsets across files.
type segment struct {
	f        faults.File
	seq      uint64
	path     string
	size     int64 // bytes written, header included
	syncedTo int64 // prefix known durable
	syncing  bool  // an fsync leader is in flight
	sealed   bool  // rotated away; no further writes or syncs

	// A segment is poisoned by a failed or torn write, or a failed fsync:
	// frames at or beyond poisonedAt are not durable and never will be.
	// Frames before poisonedAt can still be fsynced.
	poisoned   bool
	poisonedAt int64
	poisonErr  error
}

// Journal is a segmented write-ahead journal. All methods are safe for
// concurrent use.
type Journal struct {
	cfg Config

	mu     sync.Mutex
	cond   *sync.Cond
	active *segment
	closed bool

	appends       atomic.Uint64
	bytesAppended atomic.Uint64
	fsyncs        atomic.Uint64
	rotations     atomic.Uint64
	compacted     atomic.Uint64

	// Latency histograms; nil (no-op) when Config.Obs is nil.
	appendHist *obs.Histogram // Append call, including the durability wait
	fsyncHist  *obs.Histogram // one fsync system call
	replayHist *obs.Histogram // one full Replay pass
}

// Open scans dir for existing segments and opens a fresh active segment
// after the highest sequence found. Existing segments are sealed history:
// call Replay before the first Append to apply them.
func Open(cfg Config) (*Journal, error) {
	if cfg.Dir == "" {
		return nil, errors.New("wal: no directory configured")
	}
	if cfg.SegmentBytes <= 0 {
		cfg.SegmentBytes = defaultSegmentBytes
	}
	if cfg.SegmentBytes < minSegmentBytes {
		cfg.SegmentBytes = minSegmentBytes
	}
	if cfg.BatchInterval <= 0 {
		cfg.BatchInterval = 2 * time.Millisecond
	}
	if cfg.FS == nil {
		cfg.FS = faults.OS
	}
	if cfg.Clock == nil {
		cfg.Clock = faults.WallClock{}
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if err := cfg.FS.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: creating %s: %w", cfg.Dir, err)
	}
	seqs, err := scanDir(cfg.FS, cfg.Dir)
	if err != nil {
		return nil, err
	}
	j := &Journal{cfg: cfg}
	j.appendHist = cfg.Obs.Histogram("prorp_wal_append_duration_seconds",
		"Journal append latency, including the durability wait.", obs.LatencyBuckets)
	j.fsyncHist = cfg.Obs.Histogram("prorp_wal_fsync_duration_seconds",
		"Duration of one journal fsync.", obs.LatencyBuckets)
	j.replayHist = cfg.Obs.Histogram("prorp_wal_replay_duration_seconds",
		"Duration of one boot-time journal replay pass.", obs.LatencyBuckets)
	j.cond = sync.NewCond(&j.mu)
	next := uint64(1)
	if n := len(seqs); n > 0 {
		next = seqs[n-1] + 1
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.openSegmentLocked(next); err != nil {
		return nil, err
	}
	return j, nil
}

// scanDir lists the segment sequence numbers present in dir, ascending.
func scanDir(fsys faults.FS, dir string) ([]uint64, error) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: scanning %s: %w", dir, err)
	}
	var seqs []uint64
	for _, e := range entries {
		var seq uint64
		if _, err := fmt.Sscanf(e.Name(), "wal-%d.seg", &seq); err == nil {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, k int) bool { return seqs[i] < seqs[k] })
	return seqs, nil
}

func segPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%016d.seg", seq))
}

// openSegmentLocked creates and headers a fresh segment at seq (bumping
// past leftover files from interrupted rotations) and makes it active.
func (j *Journal) openSegmentLocked(seq uint64) error {
	var lastErr error
	for attempt := 0; attempt < 4; attempt, seq = attempt+1, seq+1 {
		path := segPath(j.cfg.Dir, seq)
		f, err := j.cfg.FS.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_RDWR, 0o644)
		if err != nil {
			if errors.Is(err, fs.ErrExist) {
				continue // leftover file; take the next seq
			}
			lastErr = err
			continue
		}
		hdr := make([]byte, segHeaderSize)
		putU32(hdr[0:4], segMagic)
		putU64(hdr[4:12], seq)
		n, err := f.Write(hdr)
		if err != nil || n < len(hdr) {
			f.Close()
			j.cfg.FS.Remove(path)
			if err == nil {
				err = fmt.Errorf("wal: short header write (%d of %d bytes)", n, len(hdr))
			}
			lastErr = err
			continue
		}
		j.active = &segment{f: f, seq: seq, path: path, size: segHeaderSize}
		return nil
	}
	return fmt.Errorf("wal: opening segment %d: %w", seq, lastErr)
}

// sealLocked retires the active segment: a final fsync covering whatever
// the group-commit loop has not reached yet (skipped under FsyncOff and on
// poisoned tails), then close. Waiters still blocked on the segment are
// released — successfully when the seal fsync covered their record.
func (j *Journal) sealLocked(seg *segment) {
	if seg == nil || seg.sealed {
		return
	}
	if !seg.poisoned && seg.syncedTo < seg.size && j.cfg.Fsync != FsyncOff {
		t0 := time.Now()
		if err := seg.f.Sync(); err != nil {
			j.poisonLocked(seg, seg.syncedTo, err)
		} else {
			j.fsyncHist.ObserveSince(t0)
			seg.syncedTo = seg.size
			j.fsyncs.Add(1)
		}
	}
	seg.f.Close()
	seg.sealed = true
	j.cond.Broadcast()
}

// poisonLocked marks frames at or beyond offset as never-durable.
func (j *Journal) poisonLocked(seg *segment, offset int64, err error) {
	if !seg.poisoned || offset < seg.poisonedAt {
		seg.poisoned = true
		seg.poisonedAt = offset
		seg.poisonErr = err
		j.cfg.Logf("wal: segment %d poisoned at offset %d: %v", seg.seq, offset, err)
	}
	j.cond.Broadcast()
}

// Append journals one record and blocks until it is durable per the fsync
// policy, returning the cursor addressing the byte after the record — the
// stream position a follower must reach to have replicated it (the input
// to Coverage.WaitCovered in quorum-acked mode). On any write or fsync
// failure the active segment is rotated before the next append, so a torn
// frame is always the last thing in its segment; the failed record is NOT
// durable and the caller must not acknowledge the event (retry Append —
// the retry lands in a fresh segment).
func (j *Journal) Append(rec Record) (Cursor, error) {
	if !rec.Type.valid() {
		return Cursor{}, fmt.Errorf("wal: invalid record type %d", rec.Type)
	}
	if j.appendHist != nil {
		defer j.appendHist.ObserveSince(time.Now())
	}
	frame := encodeFrame(rec)

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return Cursor{}, ErrClosed
	}
	seg := j.active
	// Roll to a fresh segment when the active one is poisoned or full.
	if seg.poisoned || seg.size >= j.cfg.SegmentBytes {
		if err := j.rotateLocked(); err != nil {
			return Cursor{}, err
		}
		seg = j.active
	}
	off := seg.size
	n, err := seg.f.Write(frame)
	if err != nil || n < len(frame) {
		seg.size = off + int64(n)
		if err == nil {
			err = fmt.Errorf("wal: short write (%d of %d bytes)", n, len(frame))
		}
		j.poisonLocked(seg, off, err)
		return Cursor{}, err
	}
	seg.size = off + int64(len(frame))
	end := seg.size
	cur := Cursor{Seg: seg.seq, Off: end}

	if j.cfg.Fsync == FsyncOff {
		j.appends.Add(1)
		j.bytesAppended.Add(uint64(len(frame)))
		return cur, nil
	}
	// Wait until an fsync covers this record, leading one when nobody is.
	for seg.syncedTo < end {
		if seg.poisoned && end > seg.poisonedAt {
			return Cursor{}, seg.poisonErr
		}
		if seg.sealed {
			// Sealed without covering us and without poisoning: only
			// possible if the seal's fsync failed, which poisons. Guard
			// anyway.
			return Cursor{}, errors.New("wal: segment sealed before record was durable")
		}
		if !seg.syncing {
			j.leadSyncLocked(seg)
			continue
		}
		j.cond.Wait()
	}
	j.appends.Add(1)
	j.bytesAppended.Add(uint64(len(frame)))
	return cur, nil
}

// leadSyncLocked elects the caller fsync leader for seg: under FsyncBatch
// it waits BatchInterval (lock released) so more appends can pile in, then
// issues one fsync covering everything written so far.
func (j *Journal) leadSyncLocked(seg *segment) {
	seg.syncing = true
	if j.cfg.Fsync == FsyncBatch {
		j.mu.Unlock()
		j.cfg.Clock.Sleep(j.cfg.BatchInterval)
		j.mu.Lock()
	}
	if seg.sealed {
		seg.syncing = false
		j.cond.Broadcast()
		return
	}
	target := seg.size
	if seg.poisoned && seg.poisonedAt < target {
		target = seg.poisonedAt // intact prefix is still syncable
	}
	if target <= seg.syncedTo {
		seg.syncing = false
		j.cond.Broadcast()
		return
	}
	f := seg.f
	j.mu.Unlock()
	t0 := time.Now()
	err := f.Sync()
	j.fsyncHist.ObserveSince(t0)
	j.mu.Lock()
	seg.syncing = false
	if err != nil {
		j.poisonLocked(seg, seg.syncedTo, err)
	} else {
		if target > seg.syncedTo {
			seg.syncedTo = target
		}
		j.fsyncs.Add(1)
	}
	j.cond.Broadcast()
}

// Rotate seals the active segment and opens the next one, returning the
// new active sequence number. Snapshot writers call it to establish a
// compaction boundary: every record appended before Rotate returns lives
// in a segment with seq below the returned value.
func (j *Journal) Rotate() (uint64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return 0, ErrClosed
	}
	if err := j.rotateLocked(); err != nil {
		return 0, err
	}
	return j.active.seq, nil
}

func (j *Journal) rotateLocked() error {
	old := j.active
	next := old.seq + 1
	j.sealLocked(old)
	if err := j.openSegmentLocked(next); err != nil {
		// No active segment — poison a placeholder so appends keep failing
		// loudly rather than panicking, and retry the open on next append.
		j.active = &segment{seq: old.seq, sealed: false, poisoned: true,
			poisonedAt: 0, poisonErr: err, f: old.f, path: old.path, size: j.cfg.SegmentBytes}
		return err
	}
	j.rotations.Add(1)
	return nil
}

// ActiveSeq reports the active segment's sequence number.
func (j *Journal) ActiveSeq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.active.seq
}

// ActiveSegment exposes the active segment's path and durable prefix
// length, for crash tests that damage the not-yet-fsynced tail the way a
// real power cut would.
func (j *Journal) ActiveSegment() (path string, durableBytes int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.active.path, j.active.syncedTo
}

// Metrics snapshots the journal's counters.
func (j *Journal) Metrics() Metrics {
	return Metrics{
		Appends:       j.appends.Load(),
		BytesAppended: j.bytesAppended.Load(),
		Fsyncs:        j.fsyncs.Load(),
		Rotations:     j.rotations.Load(),
		Compacted:     j.compacted.Load(),
	}
}

// CompactBefore deletes sealed segments with seq strictly below boundary.
// Safe only after a snapshot covering those segments is durable. The
// directory is rescanned, so segments orphaned by an interrupted earlier
// compaction are collected too. Returns the number of segments removed.
func (j *Journal) CompactBefore(boundary uint64) (int, error) {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return 0, ErrClosed
	}
	activeSeq := j.active.seq
	j.mu.Unlock()
	if boundary > activeSeq {
		boundary = activeSeq
	}

	seqs, err := scanDir(j.cfg.FS, j.cfg.Dir)
	if err != nil {
		return 0, err
	}
	removed := 0
	var errs []error
	for _, seq := range seqs {
		if seq >= boundary {
			break
		}
		if _, rerr := faults.Retry(j.cfg.Clock, j.cfg.Backoff, func() error {
			return j.cfg.FS.Remove(segPath(j.cfg.Dir, seq))
		}); rerr != nil && !errors.Is(rerr, fs.ErrNotExist) {
			// Leave it for the next compaction; replay skips it via the
			// snapshot boundary either way.
			errs = append(errs, fmt.Errorf("segment %d: %w", seq, rerr))
			continue
		}
		removed++
	}
	j.compacted.Add(uint64(removed))
	return removed, errors.Join(errs...)
}

// Close seals the active segment (final fsync unless FsyncOff) and shuts
// the journal down. Further Appends fail with ErrClosed.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	seg := j.active
	j.sealLocked(seg)
	if seg.poisoned {
		return seg.poisonErr
	}
	return nil
}

// Kill abandons the journal without the final fsync — the crash path, for
// kill-replay tests. Records not yet covered by an fsync may be torn.
func (j *Journal) Kill() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return
	}
	j.closed = true
	j.active.f.Close()
	j.active.sealed = true
	j.cond.Broadcast()
}

func putU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func putU64(b []byte, v uint64) {
	putU32(b[0:4], uint32(v))
	putU32(b[4:8], uint32(v>>32))
}

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func getU64(b []byte) uint64 {
	return uint64(getU32(b[0:4])) | uint64(getU32(b[4:8]))<<32
}
