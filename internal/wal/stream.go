package wal

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"strconv"
	"strings"

	"prorp/internal/faults"
)

// Replication streaming: a cursor-addressed tailing reader over the
// segment files, used by the primary side of internal/repl to serve
// GET /v1/repl/stream. The reader never parses past the durable prefix of
// the active segment (the poisoned-tail invariant: bytes at or beyond a
// poison offset were never acknowledged and must never be shipped), and it
// skips torn sealed tails exactly like Replay does — a follower therefore
// receives precisely the acknowledged record stream.

// SegmentDataStart is the offset of the first frame in a segment — the
// byte right after the PRW1 header. A cursor pointing at a segment it has
// not read yet starts here.
const SegmentDataStart = int64(segHeaderSize)

// FrameSize is the on-disk size of one record frame. Every record frame is
// the same size (length prefix + CRC + fixed payload), which is what lets
// replication lag be counted in records from a byte gap.
const FrameSize = int64(frameOverhead + recordPayload)

// Cursor addresses a position in the journal's record stream: a segment
// sequence number and a byte offset within that segment's file. The zero
// Cursor means "from the beginning of retained history".
type Cursor struct {
	Seg uint64
	Off int64
}

// String renders the wire form, "<segment>:<offset>".
func (c Cursor) String() string {
	return strconv.FormatUint(c.Seg, 10) + ":" + strconv.FormatInt(c.Off, 10)
}

// IsZero reports whether the cursor is the from-the-beginning sentinel.
func (c Cursor) IsZero() bool { return c.Seg == 0 }

// Before orders cursors within one journal lineage.
func (c Cursor) Before(o Cursor) bool {
	if c.Seg != o.Seg {
		return c.Seg < o.Seg
	}
	return c.Off < o.Off
}

// ParseCursor parses the wire form produced by Cursor.String. The empty
// string and "0" both parse to the zero cursor, so ?after= is optional.
func ParseCursor(s string) (Cursor, error) {
	if s == "" || s == "0" {
		return Cursor{}, nil
	}
	seg, off, ok := strings.Cut(s, ":")
	if !ok {
		return Cursor{}, fmt.Errorf("wal: bad cursor %q (want <segment>:<offset>)", s)
	}
	sv, err := strconv.ParseUint(seg, 10, 64)
	if err != nil {
		return Cursor{}, fmt.Errorf("wal: bad cursor segment %q", seg)
	}
	ov, err := strconv.ParseInt(off, 10, 64)
	if err != nil || ov < 0 {
		return Cursor{}, fmt.Errorf("wal: bad cursor offset %q", off)
	}
	return Cursor{Seg: sv, Off: ov}, nil
}

// ErrCursorCompacted means the cursor points below the earliest retained
// segment: the records it wants were compacted away, so the follower must
// resync from a snapshot instead of the stream.
var ErrCursorCompacted = errors.New("wal: cursor below retained history (resync from snapshot)")

// ErrCursorAhead means the cursor points past the durable end of the
// journal. A follower sees this after the primary it was tracking lost its
// lineage (restore from an older snapshot); the fix is the same as
// compaction — resync.
var ErrCursorAhead = errors.New("wal: cursor ahead of durable history (resync from snapshot)")

// streamEnd reports the active segment's sequence and the end of its
// shippable prefix. Only acknowledged bytes ship: under FsyncOff an append
// is acknowledged as soon as it is written (size), otherwise when an fsync
// covers it (syncedTo); a poison offset caps either — frames at or beyond
// it were never acknowledged and never will be.
func (j *Journal) streamEnd() (activeSeq uint64, durable int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	seg := j.active
	end := seg.syncedTo
	if j.cfg.Fsync == FsyncOff {
		end = seg.size
	}
	if seg.poisoned && seg.poisonedAt < end {
		end = seg.poisonedAt
	}
	if end < segHeaderSize {
		end = segHeaderSize
	}
	return seg.seq, end
}

// DurableCursor reports the journal's durable stream end: the position a
// fully caught-up follower would reach. It is the primary's "replicated
// WAL cursor" for election purposes — a vote comparison between a
// candidate's follower cursor and a voting primary's own log.
func (j *Journal) DurableCursor() Cursor {
	seq, durable := j.streamEnd()
	return Cursor{Seg: seq, Off: durable}
}

// ReadAfter serves one batch of the record stream starting at cursor c:
// intact frames from a single segment, at most maxBytes of them (at least
// one frame when any is available). It returns the frame bytes, the
// effective start cursor (c normalized — the zero cursor resolves to the
// start of retained history, and torn or compacted segments are skipped),
// and the cursor addressing the byte after the last returned frame.
//
// An empty batch with a nil error means the caller is caught up. Torn
// sealed tails are skipped silently (those bytes were never acknowledged);
// ErrCursorCompacted and ErrCursorAhead tell the caller to resync.
func (j *Journal) ReadAfter(c Cursor, maxBytes int) (data []byte, start, next Cursor, err error) {
	if maxBytes < int(FrameSize) {
		maxBytes = 256 << 10
	}
	// Each iteration either returns or hops the cursor to a later segment,
	// so the loop is bounded by the retained segment count; the cap only
	// guards against a directory mutating faster than we can scan it.
	for hop := 0; hop < 1<<16; hop++ {
		activeSeq, durable := j.streamEnd()
		seqs, err := scanDir(j.cfg.FS, j.cfg.Dir)
		if err != nil {
			return nil, c, c, err
		}
		if c.IsZero() {
			first := activeSeq
			if len(seqs) > 0 && seqs[0] < first {
				first = seqs[0]
			}
			if first > 1 {
				// Retained history does not reach back to genesis: a
				// from-the-beginning reader would silently miss records.
				return nil, c, c, ErrCursorCompacted
			}
			c = Cursor{Seg: first, Off: segHeaderSize}
		}
		if c.Off < segHeaderSize {
			c.Off = segHeaderSize
		}
		if len(seqs) > 0 && c.Seg < seqs[0] && c.Seg < activeSeq {
			return nil, c, c, ErrCursorCompacted
		}
		if c.Seg > activeSeq || (c.Seg == activeSeq && c.Off > durable) {
			return nil, c, c, ErrCursorAhead
		}

		if c.Seg == activeSeq {
			if c.Off == durable {
				return nil, c, c, nil // caught up
			}
			buf, err := j.readSegment(segPath(j.cfg.Dir, c.Seg))
			if err != nil {
				return nil, c, c, err
			}
			if int64(len(buf)) < durable {
				// The file is shorter than the acknowledged prefix — read
				// raced a crash. Refuse rather than ship short.
				return nil, c, c, fmt.Errorf("wal: active segment %d is %d bytes, durable prefix is %d",
					c.Seg, len(buf), durable)
			}
			body := buf[c.Off:durable]
			n := takeFrames(body, maxBytes)
			if n == 0 {
				// Damage inside the acknowledged prefix: not crash debris
				// but genuine corruption; surface it instead of skipping.
				return nil, c, c, fmt.Errorf("wal: active segment %d unreadable at offset %d", c.Seg, c.Off)
			}
			return body[:n], c, Cursor{Seg: c.Seg, Off: c.Off + n}, nil
		}

		// Sealed segment. Work out where the stream continues if this one
		// is exhausted, torn at the cursor, or gone.
		nextSeq := activeSeq
		for _, s := range seqs {
			if s > c.Seg && s < nextSeq {
				nextSeq = s
			}
		}
		buf, err := j.readSegment(segPath(j.cfg.Dir, c.Seg))
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				c = Cursor{Seg: nextSeq, Off: segHeaderSize} // compacted mid-scan
				continue
			}
			return nil, c, c, err
		}
		if len(buf) < segHeaderSize || getU32(buf[0:4]) != segMagic || getU64(buf[4:12]) != c.Seg {
			// Damaged header: replay discards the whole segment, so the
			// stream does too.
			c = Cursor{Seg: nextSeq, Off: segHeaderSize}
			continue
		}
		off := c.Off
		if off > int64(len(buf)) {
			off = int64(len(buf))
		}
		n := takeFrames(buf[off:], maxBytes)
		if n == 0 {
			// Clean end of segment, or a torn tail (never-acknowledged
			// bytes). Either way the stream continues in the next segment.
			c = Cursor{Seg: nextSeq, Off: segHeaderSize}
			continue
		}
		return buf[off : off+n], c, Cursor{Seg: c.Seg, Off: off + n}, nil
	}
	return nil, c, c, errors.New("wal: cursor chase did not converge")
}

// takeFrames reports how many bytes of data form a prefix of intact frames
// no larger than maxBytes.
func takeFrames(data []byte, maxBytes int) int64 {
	var n int64
	for {
		rest := data[n:]
		if len(rest) < frameOverhead {
			return n
		}
		length := int(getU32(rest[0:4]))
		if length > maxFramePayload || len(rest) < frameOverhead+length {
			return n
		}
		if n+int64(frameOverhead+length) > int64(maxBytes) {
			return n
		}
		payload := rest[frameOverhead : frameOverhead+length]
		if crc32.Checksum(payload, crcTable) != getU32(rest[4:8]) {
			return n
		}
		if _, ok := decodeRecord(payload); !ok {
			return n
		}
		n += int64(frameOverhead + length)
	}
}

// ScanStream walks a buffer of frames as served by ReadAfter, calling
// apply for each record. It stops at the first bad frame (torn=true) or
// the first apply error; consumed is the bytes of frames whose records
// were applied, so callers can advance a cursor by exactly that much.
func ScanStream(data []byte, apply func(Record) error) (consumed int64, torn bool, err error) {
	for consumed < int64(len(data)) {
		rest := data[consumed:]
		if len(rest) < frameOverhead {
			return consumed, true, nil
		}
		length := int(getU32(rest[0:4]))
		if length > maxFramePayload || len(rest) < frameOverhead+length {
			return consumed, true, nil
		}
		payload := rest[frameOverhead : frameOverhead+length]
		if crc32.Checksum(payload, crcTable) != getU32(rest[4:8]) {
			return consumed, true, nil
		}
		rec, ok := decodeRecord(payload)
		if !ok {
			return consumed, true, nil
		}
		if err := apply(rec); err != nil {
			return consumed, false, err
		}
		consumed += int64(frameOverhead + length)
	}
	return consumed, false, nil
}

// TailGapRecords reports how many acknowledged records lie between cursor
// c and the journal's durable end — the primary-side view of a follower's
// replication lag. Record frames are fixed-size, so the byte gap divides
// exactly. Unreadable history counts as zero lag rather than failing: the
// gauge must never take the stream down.
func (j *Journal) TailGapRecords(c Cursor) int64 {
	activeSeq, durable := j.streamEnd()
	seqs, err := scanDir(j.cfg.FS, j.cfg.Dir)
	if err != nil {
		return 0
	}
	if c.IsZero() {
		c.Seg = activeSeq
		if len(seqs) > 0 && seqs[0] < c.Seg {
			c.Seg = seqs[0]
		}
		c.Off = segHeaderSize
	}
	if c.Seg > activeSeq {
		return 0
	}
	var gap int64
	for _, s := range seqs {
		if s < c.Seg || s >= activeSeq {
			continue
		}
		fi, err := j.cfg.FS.Stat(segPath(j.cfg.Dir, s))
		if err != nil {
			continue
		}
		start := int64(segHeaderSize)
		if s == c.Seg && c.Off > start {
			start = c.Off
		}
		if fi.Size() > start {
			gap += fi.Size() - start
		}
	}
	start := int64(segHeaderSize)
	if c.Seg == activeSeq && c.Off > start {
		start = c.Off
	}
	if durable > start {
		gap += durable - start
	}
	return gap / FrameSize
}

// SegmentReport is one segment's verification result from InspectDir.
type SegmentReport struct {
	Seq       uint64
	Path      string
	SizeBytes int64
	HeaderOK  bool
	Records   int   // intact, CRC-verified records
	Torn      bool  // a bad frame cut the scan short
	TornAt    int64 // file offset of the first bad frame (when Torn)
	Truncated int64 // bytes after the tear (or the whole file on a bad header)
	Sample    []Record
}

// InspectDir reads and CRC-verifies every segment in a journal directory,
// without opening a Journal — the read-only path behind
// `prorp-inspect wal`. sampleN caps how many leading records are decoded
// into each report's Sample (0 = none).
func InspectDir(fsys faults.FS, dir string, sampleN int) ([]SegmentReport, error) {
	if fsys == nil {
		fsys = faults.OS
	}
	seqs, err := scanDir(fsys, dir)
	if err != nil {
		return nil, err
	}
	reports := make([]SegmentReport, 0, len(seqs))
	for _, seq := range seqs {
		path := segPath(dir, seq)
		rep := SegmentReport{Seq: seq, Path: path}
		f, err := fsys.Open(path)
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				continue
			}
			return reports, fmt.Errorf("wal: reading segment %d: %w", seq, err)
		}
		data, err := io.ReadAll(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return reports, fmt.Errorf("wal: reading segment %d: %w", seq, err)
		}
		rep.SizeBytes = int64(len(data))
		if len(data) < segHeaderSize || getU32(data[0:4]) != segMagic || getU64(data[4:12]) != seq {
			rep.Torn = true
			rep.Truncated = int64(len(data))
			reports = append(reports, rep)
			continue
		}
		rep.HeaderOK = true
		body := data[segHeaderSize:]
		consumed, torn := scanFrames(body, func(rec Record) {
			rep.Records++
			if rep.Records <= sampleN {
				rep.Sample = append(rep.Sample, rec)
			}
		})
		if torn {
			rep.Torn = true
			rep.TornAt = int64(segHeaderSize) + consumed
			rep.Truncated = int64(len(body)) - consumed
		}
		reports = append(reports, rep)
	}
	return reports, nil
}
