package wal

import (
	"errors"
	"sync"
	"time"
)

// Coverage tracks how far each follower has replicated the journal, keyed
// by the follower's node id from its stream polls. It is the primary-side
// half of quorum-acked writes: Append returns the record's end cursor, the
// stream handler calls Observe with every poll's ?after cursor (everything
// before it is journaled durably on that follower), and the write path
// blocks in WaitCovered until K distinct followers have polled past the
// record — or the timeout expires and the write is refused instead of
// silently downgraded to async replication.
//
// ErrQuorumTimeout is wall-clock, not the injected test clock: quorum is a
// liveness SLA on real replicas over a real network, and tying it to a
// manual clock would let a wedged test clock ack un-replicated writes.
type Coverage struct {
	mu    sync.Mutex
	cond  *sync.Cond
	peers map[string]Cursor
}

// NewCoverage builds an empty coverage map. A restarted primary starts
// empty on purpose: acks wait for fresh polls, never for remembered ones.
func NewCoverage() *Coverage {
	c := &Coverage{peers: make(map[string]Cursor)}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Observe records that peer has durably replicated everything before cur.
// Cursors only move forward; a stale poll (a retry, a reordered request)
// never regresses the peer's high-water mark.
func (c *Coverage) Observe(peer string, cur Cursor) {
	if peer == "" {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if prev, ok := c.peers[peer]; ok && !prev.Before(cur) {
		return
	}
	c.peers[peer] = cur
	c.cond.Broadcast()
}

// Covered reports whether at least k distinct peers have replicated past
// target.
func (c *Coverage) Covered(target Cursor, k int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.coveredLocked(target, k)
}

func (c *Coverage) coveredLocked(target Cursor, k int) bool {
	n := 0
	for _, cur := range c.peers {
		if !cur.Before(target) {
			n++
		}
	}
	return n >= k
}

// Peers reports how many distinct followers have been observed at all —
// the denominator an operator wants next to the configured K.
func (c *Coverage) Peers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.peers)
}

// ErrQuorumTimeout means a quorum-acked write's replication wait expired
// before K followers covered the record. The record IS durable in the
// local journal — the caller must refuse the ack (the event may surface
// again at replay), not retry the append.
var ErrQuorumTimeout = errors.New("wal: quorum not reached before timeout")

// WaitCovered blocks until k distinct peers have replicated past target or
// timeout expires. k <= 0 returns immediately.
func (c *Coverage) WaitCovered(target Cursor, k int, timeout time.Duration) error {
	if k <= 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.coveredLocked(target, k) {
		return nil
	}
	expired := false
	t := time.AfterFunc(timeout, func() {
		c.mu.Lock()
		expired = true
		c.mu.Unlock()
		c.cond.Broadcast()
	})
	defer t.Stop()
	for !c.coveredLocked(target, k) {
		if expired {
			return ErrQuorumTimeout
		}
		c.cond.Wait()
	}
	return nil
}
