package wal

import (
	"bytes"
	"testing"
)

// FuzzScanFrames hammers the frame decoder with arbitrary segment record
// areas. Whatever the bytes, the decoder must not panic, must consume a
// prefix of the input, and the records it yields must re-encode to exactly
// the bytes it consumed — the round-trip property that makes torn-tail
// truncation safe (everything before the tear is provably intact data).
func FuzzScanFrames(f *testing.F) {
	// Seed with valid record areas, a torn tail, and assorted damage.
	var valid []byte
	for i, typ := range []RecordType{RecordCreate, RecordLogin, RecordLogout, RecordDelete} {
		valid = append(valid, encodeFrame(Record{Type: typ, ID: int64(i), Unix: int64(1700000000 + i)})...)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-7]) // torn mid-frame
	f.Add([]byte{})
	f.Add([]byte{0x11})
	flipped := bytes.Clone(valid)
	flipped[9] ^= 0x01 // payload bit rot
	f.Add(flipped)
	huge := bytes.Clone(valid)
	huge[0], huge[1], huge[2], huge[3] = 0xff, 0xff, 0xff, 0x7f // absurd length
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		var records []Record
		consumed, torn := scanFrames(data, func(rec Record) { records = append(records, rec) })
		if consumed < 0 || consumed > int64(len(data)) {
			t.Fatalf("consumed %d of %d bytes", consumed, len(data))
		}
		if !torn && consumed != int64(len(data)) {
			t.Fatalf("clean scan consumed %d of %d bytes", consumed, len(data))
		}
		// Round trip: re-encoding the records must reproduce the consumed
		// prefix byte for byte.
		var re bytes.Buffer
		for _, rec := range records {
			if !rec.Type.valid() {
				t.Fatalf("decoder yielded invalid record %+v", rec)
			}
			re.Write(encodeFrame(rec))
		}
		if !bytes.Equal(re.Bytes(), data[:consumed]) {
			t.Fatalf("re-encoded %d records != consumed prefix (%d bytes)", len(records), consumed)
		}
		// Determinism: a second scan agrees.
		consumed2, torn2 := scanFrames(data, func(Record) {})
		if consumed2 != consumed || torn2 != torn {
			t.Fatalf("scan not deterministic: (%d,%v) vs (%d,%v)", consumed, torn, consumed2, torn2)
		}
	})
}
