package wal

import (
	"errors"
	"os"
	"testing"

	"prorp/internal/faults"
)

// streamAll drains the record stream from cursor c in maxBytes batches,
// returning every record and the caught-up cursor.
func streamAll(t *testing.T, j *Journal, c Cursor, maxBytes int) ([]Record, Cursor) {
	t.Helper()
	var recs []Record
	for {
		data, _, next, err := j.ReadAfter(c, maxBytes)
		if err != nil {
			t.Fatalf("ReadAfter(%v): %v", c, err)
		}
		if len(data) == 0 {
			return recs, next
		}
		consumed, torn, err := ScanStream(data, func(r Record) error {
			recs = append(recs, r)
			return nil
		})
		if err != nil || torn || consumed != int64(len(data)) {
			t.Fatalf("ScanStream: consumed %d of %d, torn=%v, err=%v", consumed, len(data), torn, err)
		}
		c = next
	}
}

func TestParseCursorRoundTrip(t *testing.T) {
	for _, c := range []Cursor{{}, {Seg: 1, Off: 12}, {Seg: 900, Off: 1 << 40}} {
		got, err := ParseCursor(c.String())
		if err != nil || got != c {
			t.Fatalf("ParseCursor(%q) = %v, %v; want %v", c.String(), got, err, c)
		}
	}
	if c, err := ParseCursor(""); err != nil || !c.IsZero() {
		t.Fatalf("empty cursor = %v, %v", c, err)
	}
	for _, s := range []string{"x", "1:", ":2", "1:-5", "a:b", "1:2:3"} {
		if _, err := ParseCursor(s); err == nil {
			t.Fatalf("ParseCursor(%q) accepted", s)
		}
	}
	if !(Cursor{Seg: 1, Off: 99}).Before(Cursor{Seg: 2, Off: 12}) ||
		!(Cursor{Seg: 2, Off: 12}).Before(Cursor{Seg: 2, Off: 13}) {
		t.Fatal("cursor ordering broken")
	}
}

// TestReadAfterStreamsEverything appends across several segments and
// checks that draining the stream in tiny batches yields exactly the
// acknowledged record sequence, including the active segment's tail, and
// that a caught-up cursor then reads empty until new appends land.
func TestReadAfterStreamsEverything(t *testing.T) {
	for _, policy := range []FsyncPolicy{FsyncAlways, FsyncBatch, FsyncOff} {
		t.Run(policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			cfg := testConfig(t, dir)
			cfg.Fsync = policy
			cfg.SegmentBytes = minSegmentBytes
			j, err := Open(cfg)
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			defer j.Close()

			const n = 400 // > 2 segments of 25-byte frames at the 4 KiB floor
			appendN(t, j, 0, n)

			got, cur := streamAll(t, j, Cursor{}, 3*int(FrameSize))
			if len(got) != n {
				t.Fatalf("streamed %d records, want %d", len(got), n)
			}
			for i, rec := range got {
				if rec.ID != int64(i) {
					t.Fatalf("record %d has id %d: stream out of order", i, rec.ID)
				}
			}

			// Caught up: empty batch, cursor unchanged.
			data, _, next, err := j.ReadAfter(cur, 1<<20)
			if err != nil || len(data) != 0 || next != cur {
				t.Fatalf("caught-up read = %d bytes, next %v, err %v (cursor %v)", len(data), next, err, cur)
			}

			// New appends become visible from the same cursor.
			appendN(t, j, n, 5)
			more, _ := streamAll(t, j, cur, 1<<20)
			if len(more) != 5 || more[0].ID != n {
				t.Fatalf("tail read got %d records (first %+v), want 5 starting at %d", len(more), more[0], n)
			}
		})
	}
}

// TestReadAfterSkipsPoisonedTail injects a partial write so a torn frame
// lands on disk, and checks the stream serves only acknowledged records:
// the torn tail is skipped, and the stream resumes in the next segment.
func TestReadAfterSkipsPoisonedTail(t *testing.T) {
	dir := t.TempDir()
	inj := faults.NewInjector(1)
	cfg := testConfig(t, dir)
	cfg.FS = faults.NewFaultFS(faults.OS, inj, nil)
	j, err := Open(cfg)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer j.Close()

	appendN(t, j, 0, 3)
	inj.PartialWrites("fs.write", 1)
	bad := Record{Type: RecordLogin, ID: 99, Unix: 99}
	if _, err := j.Append(bad); err == nil {
		t.Fatal("partial write was acknowledged")
	}
	inj.Heal("fs.write")
	appendN(t, j, 10, 2) // rotates past the poisoned segment

	got, _ := streamAll(t, j, Cursor{}, 1<<20)
	want := []int64{0, 1, 2, 10, 11}
	if len(got) != len(want) {
		t.Fatalf("streamed %d records %v, want ids %v", len(got), got, want)
	}
	for i, id := range want {
		if got[i].ID != id {
			t.Fatalf("record %d has id %d, want %d", i, got[i].ID, id)
		}
	}
}

// TestReadAfterCursorCompacted checks both resync triggers: a cursor below
// retained history, and a zero cursor when genesis is already compacted.
func TestReadAfterCursorCompacted(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(t, dir)
	j, err := Open(cfg)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer j.Close()

	appendN(t, j, 0, 5)
	boundary, err := j.Rotate()
	if err != nil {
		t.Fatalf("rotate: %v", err)
	}
	appendN(t, j, 5, 5)
	if _, err := j.CompactBefore(boundary); err != nil {
		t.Fatalf("compact: %v", err)
	}

	if _, _, _, err := j.ReadAfter(Cursor{Seg: 1, Off: SegmentDataStart}, 1<<20); !errors.Is(err, ErrCursorCompacted) {
		t.Fatalf("stale cursor error = %v, want ErrCursorCompacted", err)
	}
	if _, _, _, err := j.ReadAfter(Cursor{}, 1<<20); !errors.Is(err, ErrCursorCompacted) {
		t.Fatalf("zero cursor after compaction error = %v, want ErrCursorCompacted", err)
	}

	// From the compaction boundary the stream is intact.
	got, _ := streamAll(t, j, Cursor{Seg: boundary, Off: SegmentDataStart}, 1<<20)
	if len(got) != 5 || got[0].ID != 5 {
		t.Fatalf("post-boundary stream = %+v, want ids 5..9", got)
	}
}

func TestReadAfterCursorAhead(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(testConfig(t, dir))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer j.Close()
	appendN(t, j, 0, 2)

	for _, c := range []Cursor{{Seg: 99, Off: SegmentDataStart}, {Seg: 1, Off: 1 << 30}} {
		if _, _, _, err := j.ReadAfter(c, 1<<20); !errors.Is(err, ErrCursorAhead) {
			t.Fatalf("ReadAfter(%v) error = %v, want ErrCursorAhead", c, err)
		}
	}
}

func TestScanStreamStopsAtDamageAndApplyError(t *testing.T) {
	var buf []byte
	for i := 0; i < 3; i++ {
		buf = append(buf, encodeFrame(Record{Type: RecordLogin, ID: int64(i), Unix: int64(i)})...)
	}
	// Torn tail: half a frame.
	torn := append(append([]byte{}, buf...), encodeFrame(Record{Type: RecordLogin, ID: 9, Unix: 9})[:10]...)
	var n int
	consumed, isTorn, err := ScanStream(torn, func(Record) error { n++; return nil })
	if err != nil || !isTorn || n != 3 || consumed != 3*FrameSize {
		t.Fatalf("torn scan: consumed=%d n=%d torn=%v err=%v", consumed, n, isTorn, err)
	}

	// Apply error: consumed counts only applied records.
	boom := errors.New("boom")
	n = 0
	consumed, isTorn, err = ScanStream(buf, func(Record) error {
		if n == 2 {
			return boom
		}
		n++
		return nil
	})
	if !errors.Is(err, boom) || isTorn || consumed != 2*FrameSize {
		t.Fatalf("apply-error scan: consumed=%d torn=%v err=%v", consumed, isTorn, err)
	}

	// Corrupt CRC stops the scan without error.
	flipped := append([]byte{}, buf...)
	flipped[FrameSize+frameOverhead] ^= 0x40
	n = 0
	consumed, isTorn, err = ScanStream(flipped, func(Record) error { n++; return nil })
	if err != nil || !isTorn || n != 1 || consumed != FrameSize {
		t.Fatalf("corrupt scan: consumed=%d n=%d torn=%v err=%v", consumed, n, isTorn, err)
	}
}

func TestTailGapRecords(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(t, dir)
	cfg.SegmentBytes = minSegmentBytes
	j, err := Open(cfg)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer j.Close()

	const n = 300 // spans segments
	appendN(t, j, 0, n)
	if gap := j.TailGapRecords(Cursor{}); gap != n {
		t.Fatalf("gap from genesis = %d, want %d", gap, n)
	}
	_, cur := streamAll(t, j, Cursor{}, 1<<20)
	if gap := j.TailGapRecords(cur); gap != 0 {
		t.Fatalf("gap at caught-up cursor = %d, want 0", gap)
	}
	appendN(t, j, n, 7)
	if gap := j.TailGapRecords(cur); gap != 7 {
		t.Fatalf("gap after 7 more appends = %d, want 7", gap)
	}
	if gap := j.TailGapRecords(Cursor{Seg: 1 << 20, Off: 0}); gap != 0 {
		t.Fatalf("gap for ahead cursor = %d, want 0", gap)
	}
}

func TestInspectDirReports(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(testConfig(t, dir))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	appendN(t, j, 0, 4)
	if _, err := j.Rotate(); err != nil {
		t.Fatalf("rotate: %v", err)
	}
	appendN(t, j, 4, 2)
	if err := j.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Tear the tail of segment 1, and drop in a bogus segment 4 whose
	// header is garbage.
	seg1 := segPath(dir, 1)
	data, err := os.ReadFile(seg1)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg1, data[:len(data)-10], 0o644); err != nil {
		t.Fatal(err)
	}
	garbage := []byte("not a segment")
	if err := os.WriteFile(segPath(dir, 4), garbage, 0o644); err != nil {
		t.Fatal(err)
	}

	reports, err := InspectDir(nil, dir, 2)
	if err != nil {
		t.Fatalf("inspect: %v", err)
	}
	if len(reports) != 3 {
		t.Fatalf("got %d reports, want 3: %+v", len(reports), reports)
	}
	r1 := reports[0]
	if !r1.HeaderOK || !r1.Torn || r1.Records != 3 || r1.Truncated != FrameSize-10 || len(r1.Sample) != 2 {
		t.Fatalf("segment 1 report %+v", r1)
	}
	if r1.TornAt != SegmentDataStart+3*FrameSize {
		t.Fatalf("segment 1 torn at %d, want %d", r1.TornAt, SegmentDataStart+3*FrameSize)
	}
	r2 := reports[1]
	if !r2.HeaderOK || r2.Torn || r2.Records != 2 || r2.Sample[0].ID != 4 {
		t.Fatalf("segment 2 report %+v", r2)
	}
	r4 := reports[2]
	if r4.HeaderOK || !r4.Torn || r4.Truncated != int64(len(garbage)) {
		t.Fatalf("segment 4 report %+v", r4)
	}
}
