package shardedfleet

import (
	"testing"

	"prorp/internal/obs"
)

// benchFleet builds a runtime with a populated fleet: every database has
// several days of login/logout history, so each benchmarked event exercises
// the real decision path (history append + prediction recompute), not an
// empty machine.
func benchFleet(b *testing.B, instrument bool) *Runtime {
	b.Helper()
	rt, err := New(testCfg(8))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(rt.Close)
	if instrument {
		rt.Instrument(obs.NewRegistry())
	}
	const dbs = 64
	for id := 0; id < dbs; id++ {
		if err := rt.Create(id, t0); err != nil {
			b.Fatal(err)
		}
		for d := int64(0); d < 3; d++ {
			if _, err := rt.Login(id, t0+d*day+9*3600); err != nil {
				b.Fatal(err)
			}
			if _, err := rt.Logout(id, t0+d*day+17*3600); err != nil {
				b.Fatal(err)
			}
		}
	}
	return rt
}

// runDecisions drives the login/logout hot path over the prepopulated
// fleet: the exact code path the decision histograms wrap.
func runDecisions(b *testing.B, rt *Runtime) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	at := t0 + 4*day
	for i := 0; i < b.N; i++ {
		id := i % 64
		if _, err := rt.Login(id, at+9*3600); err != nil {
			b.Fatal(err)
		}
		if _, err := rt.Logout(id, at+17*3600); err != nil {
			b.Fatal(err)
		}
		if id == 63 {
			at += day
		}
	}
}

// BenchmarkObsOverhead compares the decision hot path with and without an
// attached metric registry. The acceptance bar for the observability layer
// is <= 5% throughput regression when instrumented; see EXPERIMENTS.md for
// recorded numbers.
func BenchmarkObsOverhead(b *testing.B) {
	b.Run("uninstrumented", func(b *testing.B) {
		runDecisions(b, benchFleet(b, false))
	})
	b.Run("instrumented", func(b *testing.B) {
		runDecisions(b, benchFleet(b, true))
	})
}
