package shardedfleet

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"

	"prorp/internal/policy"
)

// The archive wire format is byte-identical to the root package's fleet
// archive (fleetarchive.go), so archives move freely between a ShardedFleet
// and a plain Fleet:
//
//	magic  uint32 'PRF1'
//	count  uint32
//	count x { id int64, size uint32, database snapshot (policy wire format) }
const archiveMagic = 0x50524631 // "PRF1"

// WriteTo archives the whole fleet, databases in id order, under a
// consistent quiesce: every shard queue is drained (events enqueued before
// the call are applied) and then all shard locks are held for the duration
// of the write, so the image is a single point in time. It implements
// io.WriterTo.
func (rt *Runtime) WriteTo(w io.Writer) (int64, error) {
	// After Close the workers have already drained the queues.
	if err := rt.Drain(); err != nil && err != ErrClosed {
		return 0, err
	}
	for _, s := range rt.shards {
		s.mu.Lock()
	}
	defer func() {
		for _, s := range rt.shards {
			s.mu.Unlock()
		}
	}()

	type member struct {
		id int
		m  *policy.Machine
	}
	var members []member
	for _, s := range rt.shards {
		for id, m := range s.dbs {
			members = append(members, member{id, m})
		}
	}
	sort.Slice(members, func(a, b int) bool { return members[a].id < members[b].id })

	bw := bufio.NewWriter(w)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], archiveMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(members)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return 0, err
	}
	written := int64(len(hdr))

	var snap bytes.Buffer
	for _, mb := range members {
		snap.Reset()
		if _, err := mb.m.WriteTo(&snap); err != nil {
			return written, err
		}
		var rec [12]byte
		binary.LittleEndian.PutUint64(rec[0:8], uint64(int64(mb.id)))
		binary.LittleEndian.PutUint32(rec[8:12], uint32(snap.Len()))
		if _, err := bw.Write(rec[:]); err != nil {
			return written, err
		}
		written += int64(len(rec))
		n, err := bw.Write(snap.Bytes())
		written += int64(n)
		if err != nil {
			return written, err
		}
	}
	return written, bw.Flush()
}

// RestoreDB adds one snapshotted database (policy wire format) to the
// fleet, re-registering its control-plane metadata. The returned wakeAt is
// non-zero when the database was logically paused and the host must deliver
// a Wake at (or after) that time.
func (rt *Runtime) RestoreDB(id int, r io.Reader) (wakeAt int64, err error) {
	s := rt.shardFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.dbs[id]; exists {
		return 0, fmt.Errorf("%w: %d", ErrDuplicateDatabase, id)
	}
	m, err := policy.Restore(rt.cfg.Policy, r)
	if err != nil {
		return 0, err
	}
	s.dbs[id] = m
	if m.State() == policy.PhysicallyPaused && rt.cfg.Policy.Mode == policy.Proactive {
		s.meta.SetPaused(id, m.NextActivity().Start)
	}
	return m.RestoredTimer(), nil
}

// PendingWake pairs a restored database with the wake-up its host must
// schedule, in epoch seconds.
type PendingWake struct {
	ID     int
	WakeAt int64
}

// RestoreArchive loads a whole fleet archive (WriteTo format — this
// package's or the root package's) into the runtime, distributing databases
// to their owning shards. It returns the wake-ups the host must schedule.
func (rt *Runtime) RestoreArchive(r io.Reader) ([]PendingWake, error) {
	br := bufio.NewReader(r)
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: reading header: %w", ErrCorruptArchive, err)
	}
	if got := binary.LittleEndian.Uint32(hdr[0:4]); got != archiveMagic {
		return nil, fmt.Errorf("%w: bad magic %#x", ErrCorruptArchive, got)
	}
	count := binary.LittleEndian.Uint32(hdr[4:8])

	var wakes []PendingWake
	for i := uint32(0); i < count; i++ {
		var rec [12]byte
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("%w: reading entry %d of %d: %w", ErrCorruptArchive, i, count, err)
		}
		id := int(int64(binary.LittleEndian.Uint64(rec[0:8])))
		size := binary.LittleEndian.Uint32(rec[8:12])
		wakeAt, err := rt.RestoreDB(id, io.LimitReader(br, int64(size)))
		if err != nil {
			if errors.Is(err, ErrDuplicateDatabase) {
				return nil, fmt.Errorf("shardedfleet: restoring database %d: %w", id, err)
			}
			return nil, fmt.Errorf("%w: restoring database %d: %w", ErrCorruptArchive, id, err)
		}
		if wakeAt > 0 {
			wakes = append(wakes, PendingWake{ID: id, WakeAt: wakeAt})
		}
	}
	return wakes, nil
}
