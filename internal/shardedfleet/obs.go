package shardedfleet

import (
	"strconv"
	"sync/atomic"
	"time"

	"prorp/internal/obs"
)

// instrumentation is the runtime's attached metric set. It lives behind an
// atomic pointer so attachment is race-free against live traffic and the
// uninstrumented hot path pays one atomic load + nil check per event.
type instrumentation struct {
	// decision is indexed by Kind: time spent applying one event under the
	// shard lock — the policy engine's decision latency, including the
	// Algorithm 1 transition and any prediction recompute it triggers.
	decision [5]*obs.Histogram
	// scan is one full Algorithm 5 RunResumeOp iteration: concurrent
	// metadata scan, fleet-wide cap merge, and the pre-warm phase.
	scan *obs.Histogram
}

// Instrument attaches runtime metrics to reg:
//
//	prorp_decision_duration_seconds{kind}   histogram, per event kind
//	prorp_resume_scan_duration_seconds      histogram, Algorithm 5 iteration
//	prorp_shard_queue_depth{shard}          gauge, queued events per shard
//	prorp_fleet_backlog_events              gauge, fleet-wide queue total
//
// Instrument may be called at most once per registry; calling it with a
// nil registry leaves the runtime uninstrumented (the zero-overhead
// default, which BenchmarkObsOverhead uses as its baseline).
func (rt *Runtime) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	inst := &instrumentation{
		scan: reg.Histogram("prorp_resume_scan_duration_seconds",
			"Duration of one Algorithm 5 proactive-resume iteration.", obs.MicroBuckets),
	}
	for _, k := range []Kind{KindLogin, KindLogout, KindCreate, KindDelete, KindWake} {
		inst.decision[k] = reg.Histogram("prorp_decision_duration_seconds",
			"Policy decision latency under the shard lock, by event kind.",
			obs.MicroBuckets, obs.L("kind", k.String()))
	}
	for i, s := range rt.shards {
		s := s
		reg.GaugeFunc("prorp_shard_queue_depth",
			"Queued (not yet applied) events on one shard.",
			func() float64 { return float64(len(s.events)) },
			obs.L("shard", strconv.Itoa(i)))
	}
	reg.GaugeFunc("prorp_fleet_backlog_events",
		"Queued (not yet applied) events across all shards.",
		func() float64 { return float64(rt.Backlog()) })
	reg.GaugeFunc("prorp_fleet_queue_sojourn_seconds",
		"Worst measured enqueue-to-apply delay across all shard queues.",
		func() float64 { return rt.QueueSojourn().Seconds() })
	reg.CounterFunc("prorp_fleet_queue_sheds_total",
		"Sheddable submissions refused because the owning shard's queue was congested.",
		func() uint64 { return rt.QueueSheds() })
	rt.inst.Store(inst)
}

// observeDecision records one applied event's latency when instrumentation
// is attached. The fast path (no registry) is a single atomic load.
func (rt *Runtime) observeDecision(kind Kind, start time.Time) {
	if inst := rt.inst.Load(); inst != nil {
		if int(kind) < len(inst.decision) {
			inst.decision[kind].ObserveSince(start)
		}
	}
}

// decisionStart samples the clock only when instrumentation is attached,
// so the uninstrumented hot path never reads the clock.
func (rt *Runtime) decisionStart() (time.Time, bool) {
	if rt.inst.Load() == nil {
		return time.Time{}, false
	}
	return time.Now(), true
}

// instPtr aliases the atomic pointer type for the Runtime struct.
type instPtr = atomic.Pointer[instrumentation]
