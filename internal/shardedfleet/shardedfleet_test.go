package shardedfleet

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"prorp/internal/controlplane"
	"prorp/internal/policy"
	"prorp/internal/predictor"
)

// t0 is 2023-09-01 00:00 UTC, matching the root package's tests.
const t0 = int64(1693526400)

const day = int64(86400)

// testCfg returns a proactive configuration that predicts quickly: 7-day
// history (one matching day clears c = 0.1), 1-hour logical pause.
func testCfg(shards int) Config {
	return Config{
		Shards: shards,
		Policy: policy.Config{
			Mode:            policy.Proactive,
			LogicalPauseSec: 3600,
			Predictor: predictor.Params{
				HistoryDays:  7,
				HorizonHours: 24,
				Confidence:   0.1,
				WindowSec:    3600,
				SlideSec:     300,
				Seasonality:  predictor.Daily,
			},
		},
		Control: controlplane.DefaultConfig(),
	}
}

// cfg28 is testCfg with the paper's 28-day history: a fresh database then
// has no prediction until three matching days accumulate (3/28 >= 0.1), so
// first idles take the logical-pause path.
func cfg28(shards int) Config {
	cfg := testCfg(shards)
	cfg.Policy.Predictor.HistoryDays = 28
	return cfg
}

func mustNew(t *testing.T, cfg Config) *Runtime {
	t.Helper()
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

func TestRuntimeBasics(t *testing.T) {
	rt := mustNew(t, cfg28(4))
	if err := rt.Create(1, t0); err != nil {
		t.Fatal(err)
	}
	if err := rt.Create(1, t0); !errors.Is(err, ErrDuplicateDatabase) {
		t.Fatalf("duplicate Create = %v", err)
	}
	if _, err := rt.Login(9, t0); !errors.Is(err, ErrUnknownDatabase) {
		t.Fatalf("unknown Login = %v", err)
	}
	if rt.Size() != 1 {
		t.Fatalf("Size = %d", rt.Size())
	}

	// A fresh database has no prediction: end of activity takes the
	// logical-pause path and schedules a wake at pauseStart+l.
	eff, err := rt.Logout(1, t0+3600)
	if err != nil || eff.Transition != policy.TransLogicalPause {
		t.Fatalf("Logout = %+v, %v", eff, err)
	}
	if eff.TimerAt != t0+2*3600 {
		t.Fatalf("TimerAt = %d", eff.TimerAt)
	}
	if st, _ := rt.State(1); st != policy.LogicallyPaused {
		t.Fatalf("State = %v", st)
	}

	// The wake finds no prediction and physically pauses.
	eff, err = rt.Wake(1, eff.TimerAt)
	if err != nil || eff.Transition != policy.TransPhysicalPause {
		t.Fatalf("Wake = %+v, %v", eff, err)
	}
	if rt.PausedCount() != 1 {
		t.Fatalf("PausedCount = %d", rt.PausedCount())
	}

	// The next login is a cold (reactive) resume and clears the metadata.
	eff, err = rt.Login(1, t0+20*3600)
	if err != nil || eff.Transition != policy.TransResumeCold {
		t.Fatalf("Login = %+v, %v", eff, err)
	}
	if rt.PausedCount() != 0 {
		t.Fatalf("PausedCount after cold resume = %d", rt.PausedCount())
	}

	kpi := rt.KPI()
	if kpi.Creates != 1 || kpi.Logins != 1 || kpi.Logouts != 1 || kpi.Wakes != 1 ||
		kpi.ColdResumes != 1 || kpi.LogicalPauses != 1 || kpi.PhysicalPauses != 1 {
		t.Fatalf("KPI = %+v", kpi)
	}

	if err := rt.Delete(1); err != nil {
		t.Fatal(err)
	}
	if err := rt.Delete(1); !errors.Is(err, ErrUnknownDatabase) {
		t.Fatalf("double Delete = %v", err)
	}
	if rt.Size() != 0 {
		t.Fatalf("Size after delete = %d", rt.Size())
	}
}

// driveDailyPattern feeds one database a 09:00–17:00 daily activity pattern
// for the given days and returns the time of the last logout. The machine
// starts active at birth (09:00 of day 0).
func driveDailyPattern(t *testing.T, rt *Runtime, id int, days int) int64 {
	t.Helper()
	birth := t0 + 9*3600
	if err := rt.Create(id, birth); err != nil {
		t.Fatal(err)
	}
	var last int64
	for d := 0; d < days; d++ {
		if d > 0 {
			if _, err := rt.Login(id, t0+int64(d)*day+9*3600); err != nil {
				t.Fatal(err)
			}
		}
		last = t0 + int64(d)*day + 17*3600
		if _, err := rt.Logout(id, last); err != nil {
			t.Fatal(err)
		}
	}
	return last
}

func TestProactiveResumeAcrossShards(t *testing.T) {
	rt := mustNew(t, testCfg(8))
	const dbs = 24
	for id := 0; id < dbs; id++ {
		driveDailyPattern(t, rt, id, 2)
	}
	// Day 1's logout at 17:00 predicts day 2's 09:00 login; 18:00 is more
	// than l ahead of it, so every database physically paused right away.
	if got := rt.PausedCount(); got != dbs {
		t.Fatalf("PausedCount = %d, want %d", got, dbs)
	}

	// Nothing is due the evening before.
	if pws := rt.RunResumeOp(t0 + 1*day + 18*3600); len(pws) != 0 {
		t.Fatalf("due at 18:00 = %v", pws)
	}

	// Minutes ahead of the predicted login every shard's scan finds its
	// databases; the merge returns all of them, sorted.
	pws := rt.RunResumeOp(t0 + 2*day + 9*3600 - 120)
	if len(pws) != dbs {
		t.Fatalf("prewarmed %d databases, want %d", len(pws), dbs)
	}
	for i, pw := range pws {
		if pw.ID != i {
			t.Fatalf("prewarmed[%d].ID = %d (not sorted)", i, pw.ID)
		}
		if pw.Effects.Transition != policy.TransPrewarm || !pw.Effects.Allocate {
			t.Fatalf("prewarmed[%d] = %+v", i, pw.Effects)
		}
	}
	if got := rt.PausedCount(); got != 0 {
		t.Fatalf("PausedCount after resume op = %d", got)
	}

	// The pre-warmed logins land warm.
	for id := 0; id < dbs; id++ {
		eff, err := rt.Login(id, t0+2*day+9*3600)
		if err != nil || eff.Transition != policy.TransResumeWarm || !eff.FromPrewarm {
			t.Fatalf("Login(%d) = %+v, %v", id, eff, err)
		}
	}
	kpi := rt.KPI()
	if kpi.Prewarms != dbs || kpi.PrewarmsUsed != dbs || kpi.PrewarmsWasted != 0 {
		t.Fatalf("KPI = %+v", kpi)
	}
}

func TestResumeOpFleetWideCap(t *testing.T) {
	cfg := testCfg(8)
	cfg.Control.MaxPrewarmsPerOp = 5
	rt := mustNew(t, cfg)
	const dbs = 12
	for id := 0; id < dbs; id++ {
		driveDailyPattern(t, rt, id, 2)
	}
	at := t0 + 2*day + 9*3600 - 120
	first := rt.RunResumeOp(at)
	if len(first) != 5 {
		t.Fatalf("first op prewarmed %d, want 5 (fleet-wide cap)", len(first))
	}
	// The cap is applied after the cross-shard merge and sort, so the
	// lowest ids win regardless of their shard.
	for i, pw := range first {
		if pw.ID != i {
			t.Fatalf("first[%d].ID = %d", i, pw.ID)
		}
	}
	// Overflow stays queued for the following iterations.
	second := rt.RunResumeOp(at + 60)
	third := rt.RunResumeOp(at + 120)
	if len(second) != 5 || len(third) != 2 {
		t.Fatalf("follow-up ops = %d, %d; want 5, 2", len(second), len(third))
	}
}

func TestAsyncSubmitPreservesPerDatabaseOrder(t *testing.T) {
	rt := mustNew(t, cfg28(4))
	const cycles = 100
	if err := rt.Create(1, t0); err != nil {
		t.Fatal(err)
	}
	// Alternating logout/login pairs, one minute apart, all submitted
	// asynchronously. The single worker per shard drains FIFO, so the
	// machine sees strict start/end alternation — each event inserts one
	// history tuple. Any reordering would produce a repeated start or end,
	// which the machine ignores (no insert), shrinking the count.
	at := t0
	for c := 0; c < cycles; c++ {
		at += 60
		if err := rt.Submit(Event{Kind: KindLogout, DB: 1, At: at}); err != nil {
			t.Fatal(err)
		}
		at += 60
		if err := rt.Submit(Event{Kind: KindLogin, DB: 1, At: at}); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.Drain(); err != nil {
		t.Fatal(err)
	}
	var tuples int
	if err := rt.View(1, func(m *policy.Machine) { tuples = m.History().Len() }); err != nil {
		t.Fatal(err)
	}
	if want := 1 + 2*cycles; tuples != want {
		t.Fatalf("history tuples = %d, want %d (events applied out of order?)", tuples, want)
	}
	kpi := rt.KPI()
	if kpi.Logins != cycles || kpi.Logouts != cycles ||
		kpi.LogicalPauses != cycles || kpi.WarmResumes != cycles {
		t.Fatalf("KPI = %+v", kpi)
	}
}

func TestAsyncReplyAndBackpressure(t *testing.T) {
	cfg := cfg28(2)
	cfg.QueueDepth = 2
	rt := mustNew(t, cfg)
	if err := rt.Create(1, t0); err != nil {
		t.Fatal(err)
	}

	reply := make(chan Result, 1)
	if err := rt.Submit(Event{Kind: KindLogout, DB: 1, At: t0 + 60, Reply: reply}); err != nil {
		t.Fatal(err)
	}
	res := <-reply
	if res.Err != nil || res.Effects.Transition != policy.TransLogicalPause {
		t.Fatalf("reply = %+v", res)
	}

	// Holding the shard lock via View stalls the worker, so TrySubmit must
	// hit the bounded queue within depth+1 attempts (one event may already
	// be in the worker's hands).
	var sawBacklog bool
	if err := rt.View(1, func(*policy.Machine) {
		for i := 0; i < cfg.QueueDepth+2; i++ {
			if err := rt.TrySubmit(Event{Kind: KindLogin, DB: 1, At: t0 + 120}); errors.Is(err, ErrBacklog) {
				sawBacklog = true
				return
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	if !sawBacklog {
		t.Fatal("TrySubmit never returned ErrBacklog with a stalled worker")
	}
	if err := rt.Drain(); err != nil {
		t.Fatal(err)
	}
}

// TestTrySubmitSheddableDepth verifies the priority split on a congested
// queue: once a shard's queue is more than half full, sheddable
// submissions are refused with ErrBacklog while plain TrySubmit — the
// high-priority path — still gets the remaining depth.
func TestTrySubmitSheddableDepth(t *testing.T) {
	cfg := cfg28(1) // one shard: every event shares the queue
	cfg.QueueDepth = 8
	rt := mustNew(t, cfg)
	if err := rt.Create(1, t0); err != nil {
		t.Fatal(err)
	}
	if err := rt.View(1, func(*policy.Machine) {
		// The worker is stalled on the shard lock; fill past half depth.
		// One event may be in the worker's hands, so queue depth+1 total.
		for i := 0; i < cfg.QueueDepth/2+2; i++ {
			if err := rt.TrySubmit(Event{Kind: KindLogout, DB: 1, At: t0 + 60}); err != nil {
				t.Errorf("TrySubmit %d: %v", i, err)
			}
		}
		if err := rt.TrySubmitSheddable(Event{Kind: KindLogout, DB: 1, At: t0 + 60}); !errors.Is(err, ErrBacklog) {
			t.Errorf("sheddable submit on congested queue = %v, want ErrBacklog", err)
		}
		// High-priority path is unaffected by the half-depth shed line.
		if err := rt.TrySubmit(Event{Kind: KindLogin, DB: 1, At: t0 + 120}); err != nil {
			t.Errorf("TrySubmit above shed line = %v, want admitted", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if got := rt.QueueSheds(); got != 1 {
		t.Fatalf("QueueSheds = %d, want 1", got)
	}
	if err := rt.Drain(); err != nil {
		t.Fatal(err)
	}
}

// TestTrySubmitSheddableSojourn verifies the CoDel-style signal: a shard
// whose last dequeued event waited past ShedTargetDelay refuses
// sheddable submissions even with a near-empty queue, and QueueSojourn
// surfaces the measured delay.
func TestTrySubmitSheddableSojourn(t *testing.T) {
	cfg := cfg28(1)
	cfg.ShedTargetDelay = 100 * time.Millisecond
	rt := mustNew(t, cfg)
	if err := rt.Create(1, t0); err != nil {
		t.Fatal(err)
	}
	// Simulate the worker having measured a 300ms enqueue-to-apply delay.
	rt.shards[0].lastWaitNanos.Store(int64(300 * time.Millisecond))
	if got := rt.QueueSojourn(); got != 300*time.Millisecond {
		t.Fatalf("QueueSojourn = %v, want 300ms", got)
	}
	if err := rt.TrySubmitSheddable(Event{Kind: KindLogout, DB: 1, At: t0 + 60}); !errors.Is(err, ErrBacklog) {
		t.Fatalf("sheddable submit past sojourn target = %v, want ErrBacklog", err)
	}
	// The high-priority path still flows.
	if err := rt.TrySubmit(Event{Kind: KindLogin, DB: 1, At: t0 + 120}); err != nil {
		t.Fatalf("TrySubmit = %v", err)
	}
	// Draining the queue resets the congestion signal: the worker zeroes
	// the sojourn when the queue empties behind an event.
	if err := rt.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := rt.QueueSojourn(); got != 0 {
		t.Fatalf("QueueSojourn after drain = %v, want 0", got)
	}
	if err := rt.TrySubmitSheddable(Event{Kind: KindLogout, DB: 1, At: t0 + 180}); err != nil {
		t.Fatalf("sheddable submit after drain = %v, want admitted", err)
	}
	if err := rt.Drain(); err != nil {
		t.Fatal(err)
	}
}

func TestCloseStopsAsyncKeepsReads(t *testing.T) {
	rt, err := New(cfg28(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Create(1, t0); err != nil {
		t.Fatal(err)
	}
	if err := rt.Submit(Event{Kind: KindLogout, DB: 1, At: t0 + 60}); err != nil {
		t.Fatal(err)
	}
	rt.Close()
	rt.Close() // idempotent

	// The queued logout was drained before the workers exited.
	if st, err := rt.State(1); err != nil || st != policy.LogicallyPaused {
		t.Fatalf("State after close = %v, %v", st, err)
	}
	if err := rt.Submit(Event{Kind: KindLogin, DB: 1, At: t0 + 120}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after close = %v", err)
	}
	if err := rt.Drain(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Drain after close = %v", err)
	}
	var buf bytes.Buffer
	if _, err := rt.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo after close: %v", err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty archive")
	}
}

func TestConcurrentHammer(t *testing.T) {
	// Run with -race: synchronous drivers on disjoint databases, async
	// submitters, the resume op, snapshots, and KPI reads all at once.
	rt := mustNew(t, testCfg(8))
	const (
		drivers   = 8
		dbsPer    = 8
		daysEach  = 4
		asyncBase = 10_000
	)
	var wg sync.WaitGroup
	for g := 0; g < drivers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < dbsPer; i++ {
				id := g*dbsPer + i
				if err := rt.Create(id, t0+9*3600); err != nil {
					t.Error(err)
					return
				}
				for d := 0; d < daysEach; d++ {
					if d > 0 {
						if _, err := rt.Login(id, t0+int64(d)*day+9*3600); err != nil {
							t.Error(err)
							return
						}
					}
					if _, err := rt.Logout(id, t0+int64(d)*day+17*3600); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	// Async submitters on a disjoint id range.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			id := asyncBase + g
			if err := rt.Create(id, t0); err != nil {
				t.Error(err)
				return
			}
			at := t0
			for c := 0; c < 50; c++ {
				at += 60
				if err := rt.Submit(Event{Kind: KindLogout, DB: id, At: at}); err != nil {
					t.Error(err)
					return
				}
				at += 60
				if err := rt.Submit(Event{Kind: KindLogin, DB: id, At: at}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	stop := make(chan struct{})
	var cp sync.WaitGroup
	cp.Add(1)
	go func() {
		defer cp.Done()
		at := t0
		for {
			select {
			case <-stop:
				return
			default:
			}
			rt.RunResumeOp(at)
			rt.PausedCount()
			rt.KPI()
			rt.StateCounts()
			var buf bytes.Buffer
			if _, err := rt.WriteTo(&buf); err != nil {
				t.Error(err)
				return
			}
			at += 60
		}
	}()
	wg.Wait()
	close(stop)
	cp.Wait()
	if got, want := rt.Size(), drivers*dbsPer+2; got != want {
		t.Fatalf("Size = %d, want %d", got, want)
	}
}
