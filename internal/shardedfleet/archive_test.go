package shardedfleet

import (
	"bytes"
	"testing"

	"prorp/internal/policy"
)

func TestArchiveRoundTripAcrossShardCounts(t *testing.T) {
	rt := mustNew(t, cfg28(8))
	// A mix of states: 0..7 physically paused with predictions (four days
	// of 09:00 logins clear c = 0.1 at the 28-day history), 8 logically
	// paused (pending wake), 9 resumed-active.
	for id := 0; id < 8; id++ {
		driveDailyPattern(t, rt, id, 4)
	}
	if err := rt.Create(8, t0+9*3600); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Logout(8, t0+10*3600); err != nil {
		t.Fatal(err)
	}
	if err := rt.Create(9, t0+9*3600); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if _, err := rt.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}

	// Restore into a runtime with a different stripe count: ids must land
	// on their new owning shards with metadata re-registered.
	rt2 := mustNew(t, cfg28(3))
	wakes, err := rt2.RestoreArchive(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if rt2.Size() != 10 {
		t.Fatalf("restored Size = %d", rt2.Size())
	}
	if rt2.PausedCount() != 8 {
		t.Fatalf("restored PausedCount = %d", rt2.PausedCount())
	}
	if len(wakes) != 1 || wakes[0].ID != 8 || wakes[0].WakeAt != t0+11*3600 {
		t.Fatalf("pending wakes = %+v", wakes)
	}
	for id := 0; id < 10; id++ {
		want, _ := rt.State(id)
		got, err := rt2.State(id)
		if err != nil || got != want {
			t.Fatalf("State(%d) = %v, %v; want %v", id, got, err, want)
		}
	}

	// The restored fleet is live: the resume op still finds the paused
	// databases via the re-registered metadata.
	pws := rt2.RunResumeOp(t0 + 4*day + 9*3600 - 120)
	if len(pws) != 8 {
		t.Fatalf("resume op after restore prewarmed %d, want 8", len(pws))
	}

	// Duplicate restore is rejected.
	if _, err := rt2.RestoreArchive(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("duplicate RestoreArchive succeeded")
	}
}

func TestWriteToDrainsQueuedEvents(t *testing.T) {
	rt := mustNew(t, testCfg(4))
	if err := rt.Create(1, t0); err != nil {
		t.Fatal(err)
	}
	// Queue async events and snapshot immediately: the quiesce must apply
	// them first, so the image includes every submitted event.
	at := t0
	for c := 0; c < 20; c++ {
		at += 60
		if err := rt.Submit(Event{Kind: KindLogout, DB: 1, At: at}); err != nil {
			t.Fatal(err)
		}
		at += 60
		if err := rt.Submit(Event{Kind: KindLogin, DB: 1, At: at}); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if _, err := rt.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	rt2 := mustNew(t, testCfg(4))
	if _, err := rt2.RestoreArchive(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	var tuples int
	if err := rt2.View(1, func(m *policy.Machine) { tuples = m.History().Len() }); err != nil {
		t.Fatal(err)
	}
	if want := 1 + 40; tuples != want {
		t.Fatalf("restored history tuples = %d, want %d", tuples, want)
	}
}

func TestRestoreArchiveRejectsGarbage(t *testing.T) {
	rt := mustNew(t, testCfg(2))
	if _, err := rt.RestoreArchive(bytes.NewReader([]byte("not an archive"))); err == nil {
		t.Fatal("garbage archive accepted")
	}
	if _, err := rt.RestoreArchive(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty archive accepted")
	}
}
