// Package shardedfleet is the online serving runtime of ProRP: a
// lock-striped fleet that partitions databases across N shards, each shard
// owning its databases (and its slice of the control-plane metadata store)
// behind its own mutex. Unrelated databases therefore never contend — the
// library-scale stand-in for the paper's production per-database sharding
// that the single global mutex of prorp.SyncedFleet cannot provide.
//
// Two mutation paths share the per-shard lock:
//
//   - The synchronous path (Login, Logout, Wake, Create, Delete) locks the
//     owning shard, applies the event, and returns the policy effects.
//   - The asynchronous path (Submit/TrySubmit) enqueues into the shard's
//     bounded event channel; a per-shard worker goroutine drains it in FIFO
//     order, so events submitted for the same database apply in submission
//     order. A full queue makes Submit block (backpressure) and TrySubmit
//     fail fast with ErrBacklog.
//
// Events for one database must flow through one path at a time: the relative
// order of a synchronous call racing a queued asynchronous event is
// unspecified (both are applied atomically under the shard lock either way).
//
// The Algorithm 5 proactive-resume scan (RunResumeOp) walks the shards
// concurrently, merges the due databases, applies the fleet-wide
// per-iteration cap, and pre-warms shard by shard. Snapshots (WriteTo) take
// a consistent fleet image by draining every queue and then quiescing all
// shards at once.
package shardedfleet

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"prorp/internal/controlplane"
	"prorp/internal/policy"
)

const (
	// DefaultShards is the stripe count used when Config.Shards is 0. It is
	// deliberately larger than typical host core counts: stripes are cheap,
	// and more stripes mean fewer hash collisions between hot databases.
	DefaultShards = 32
	// DefaultQueueDepth bounds each shard's asynchronous event queue when
	// Config.QueueDepth is 0.
	DefaultQueueDepth = 1024
	// DefaultShedTargetDelay is the queue-sojourn target used when
	// Config.ShedTargetDelay is 0: once a shard's events wait longer than
	// this between enqueue and apply, sheddable submissions are refused.
	DefaultShedTargetDelay = 200 * time.Millisecond
)

// The sentinel errors classify failures for errors.Is, so hosts (the HTTP
// front end) can map them to status codes and recovery actions. They are
// re-exported at the root as prorp.ErrUnknownDatabase etc., so their
// messages carry no package prefix.
var (
	// ErrClosed is returned by operations on a runtime after Close.
	ErrClosed = errors.New("fleet runtime closed")
	// ErrBacklog is returned by TrySubmit when the owning shard's queue is
	// full.
	ErrBacklog = errors.New("shard event queue full")
	// ErrUnknownDatabase and ErrDuplicateDatabase classify lookups.
	ErrUnknownDatabase   = errors.New("unknown database")
	ErrDuplicateDatabase = errors.New("database already exists")
	// ErrCorruptArchive marks a fleet archive that cannot be decoded —
	// truncated, bit-flipped, or wrong format. Restores never panic on bad
	// input; they return an error wrapping this sentinel so hosts can fall
	// back to an older snapshot.
	ErrCorruptArchive = errors.New("corrupt fleet archive")
)

// Config assembles a runtime.
type Config struct {
	// Shards is the stripe count (default DefaultShards).
	Shards int
	// QueueDepth bounds each shard's asynchronous event queue (default
	// DefaultQueueDepth).
	QueueDepth int
	// Policy configures the per-database lifecycle controllers.
	Policy policy.Config
	// Control configures the Algorithm 5 proactive-resume operation. Only
	// validated and used in proactive mode.
	Control controlplane.Config
	// ShedTargetDelay is the CoDel-style queue-sojourn target for
	// TrySubmitSheddable (default DefaultShedTargetDelay): once events on a
	// shard wait longer than this between enqueue and apply, low-priority
	// submissions to that shard are refused with ErrBacklog so a login is
	// never queued behind a pile of history appends.
	ShedTargetDelay time.Duration
	// Now supplies time for queue-sojourn measurement (default time.Now).
	Now func() time.Time
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Shards < 0 {
		return fmt.Errorf("shardedfleet: negative shard count %d", c.Shards)
	}
	if c.QueueDepth < 0 {
		return fmt.Errorf("shardedfleet: negative queue depth %d", c.QueueDepth)
	}
	if c.ShedTargetDelay < 0 {
		return fmt.Errorf("shardedfleet: negative shed target delay %v", c.ShedTargetDelay)
	}
	if err := c.Policy.Validate(); err != nil {
		return err
	}
	if c.Policy.Mode == policy.Proactive {
		return c.Control.Validate()
	}
	return nil
}

// Kind classifies an event.
type Kind int

const (
	// KindLogin is the start of customer activity.
	KindLogin Kind = iota
	// KindLogout is the end of customer activity.
	KindLogout
	// KindCreate adds a database (At is its creation time).
	KindCreate
	// KindDelete drops a database.
	KindDelete
	// KindWake delivers a scheduled wake-up timer.
	KindWake
)

func (k Kind) String() string {
	switch k {
	case KindLogin:
		return "login"
	case KindLogout:
		return "logout"
	case KindCreate:
		return "create"
	case KindDelete:
		return "delete"
	case KindWake:
		return "wake"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one fleet mutation, in epoch seconds like every internal
// component.
type Event struct {
	Kind Kind
	DB   int
	At   int64
	// Reply, when non-nil, receives the Result of an asynchronously
	// submitted event. It must have capacity >= 1: the shard worker never
	// blocks on a reply, and drops the result if the channel is full.
	Reply chan<- Result

	// barrier is the internal drain marker; the worker closes it once every
	// earlier event in the queue has been applied.
	barrier chan struct{}

	// enqueuedAt is stamped by Submit/TrySubmit/TrySubmitSheddable so the
	// worker can measure the event's queue sojourn on dequeue.
	enqueuedAt time.Time
}

// Result is the outcome of an applied event.
type Result struct {
	Effects policy.Effects
	Err     error
}

// Counters are the runtime's cumulative KPI counters, maintained per shard
// and summed on read.
type Counters struct {
	Creates, Deletes       uint64
	Logins, Logouts, Wakes uint64
	// WarmResumes / ColdResumes split first logins after idle by whether
	// resources were still available — the paper's QoS numerator/complement.
	WarmResumes, ColdResumes      uint64
	LogicalPauses, PhysicalPauses uint64
	// Prewarms counts Algorithm 5 proactive resumes; Used/Wasted classify
	// how each pre-warm ended (next login warm vs. paused again untouched).
	Prewarms, PrewarmsUsed, PrewarmsWasted uint64
}

func (c *Counters) add(o Counters) {
	c.Creates += o.Creates
	c.Deletes += o.Deletes
	c.Logins += o.Logins
	c.Logouts += o.Logouts
	c.Wakes += o.Wakes
	c.WarmResumes += o.WarmResumes
	c.ColdResumes += o.ColdResumes
	c.LogicalPauses += o.LogicalPauses
	c.PhysicalPauses += o.PhysicalPauses
	c.Prewarms += o.Prewarms
	c.PrewarmsUsed += o.PrewarmsUsed
	c.PrewarmsWasted += o.PrewarmsWasted
}

// shard owns a partition of the fleet: its databases, its slice of the
// control-plane metadata store, its KPI counters, and its event queue.
type shard struct {
	mu     sync.Mutex
	dbs    map[int]*policy.Machine
	meta   *controlplane.MetadataStore
	kpi    Counters
	events chan Event

	// lastWaitNanos is the queue sojourn (enqueue → dequeue) of the most
	// recently dequeued event — the CoDel congestion signal for this
	// shard's queue. The worker resets it to zero whenever it drains the
	// queue, so an idle shard reads as uncongested.
	lastWaitNanos atomic.Int64
}

// Runtime is the sharded fleet engine. Safe for concurrent use.
type Runtime struct {
	cfg    Config
	shards []*shard

	// inst is the attached observability metric set (see Instrument); nil
	// until a host attaches a registry.
	inst instPtr

	// lifecycle guards closed: Submit/Drain hold it for reading across the
	// channel send, Close holds it for writing while closing the channels.
	lifecycle sync.RWMutex
	closed    bool
	workers   sync.WaitGroup

	// queueSheds counts sheddable submissions refused for queue
	// congestion (depth or sojourn) rather than a hard-full queue.
	queueSheds atomic.Uint64
}

// New builds a runtime and starts one worker goroutine per shard. Callers
// must Close it to stop the workers.
func New(cfg Config) (*Runtime, error) {
	if cfg.Shards == 0 {
		cfg.Shards = DefaultShards
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.ShedTargetDelay == 0 {
		cfg.ShedTargetDelay = DefaultShedTargetDelay
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rt := &Runtime{cfg: cfg, shards: make([]*shard, cfg.Shards)}
	for i := range rt.shards {
		rt.shards[i] = &shard{
			dbs:    make(map[int]*policy.Machine),
			meta:   controlplane.NewMetadataStore(),
			events: make(chan Event, cfg.QueueDepth),
		}
		rt.workers.Add(1)
		go rt.worker(rt.shards[i])
	}
	return rt, nil
}

// Close drains and stops every shard worker. Queued events are still
// applied; further Submit calls fail with ErrClosed. Synchronous reads and
// WriteTo remain usable after Close.
func (rt *Runtime) Close() {
	rt.lifecycle.Lock()
	if rt.closed {
		rt.lifecycle.Unlock()
		return
	}
	rt.closed = true
	for _, s := range rt.shards {
		close(s.events)
	}
	rt.lifecycle.Unlock()
	rt.workers.Wait()
}

// NumShards reports the stripe count.
func (rt *Runtime) NumShards() int { return len(rt.shards) }

// shardIndex is FNV-1a over the database id's 8 little-endian bytes.
func (rt *Runtime) shardIndex(id int) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	v := uint64(int64(id))
	for i := 0; i < 8; i++ {
		h ^= uint32(byte(v >> (8 * i)))
		h *= prime32
	}
	return int(h % uint32(len(rt.shards)))
}

func (rt *Runtime) shardFor(id int) *shard { return rt.shards[rt.shardIndex(id)] }

// worker drains one shard's queue, applying each event under the shard
// lock. One worker per shard keeps the per-database submission order.
func (rt *Runtime) worker(s *shard) {
	defer rt.workers.Done()
	for ev := range s.events {
		if len(s.events) == 0 {
			// The queue is drained behind this event: whatever
			// congestion it saw is over, so the shard reads as
			// uncongested again.
			s.lastWaitNanos.Store(0)
		} else if !ev.enqueuedAt.IsZero() {
			s.lastWaitNanos.Store(int64(rt.cfg.Now().Sub(ev.enqueuedAt)))
		}
		if ev.barrier != nil {
			close(ev.barrier)
			continue
		}
		t0, timed := rt.decisionStart()
		s.mu.Lock()
		res := s.apply(ev, &rt.cfg)
		s.mu.Unlock()
		if timed {
			rt.observeDecision(ev.Kind, t0)
		}
		if ev.Reply != nil {
			select {
			case ev.Reply <- res:
			default: // undersized reply channel; never stall the shard
			}
		}
	}
}

// apply performs one event. Caller holds s.mu.
func (s *shard) apply(ev Event, cfg *Config) Result {
	switch ev.Kind {
	case KindCreate:
		if _, exists := s.dbs[ev.DB]; exists {
			return Result{Err: fmt.Errorf("%w: %d", ErrDuplicateDatabase, ev.DB)}
		}
		m, err := policy.New(cfg.Policy, ev.At)
		if err != nil {
			return Result{Err: err}
		}
		s.dbs[ev.DB] = m
		s.kpi.Creates++
		return Result{}
	case KindDelete:
		if _, exists := s.dbs[ev.DB]; !exists {
			return Result{Err: fmt.Errorf("%w: %d", ErrUnknownDatabase, ev.DB)}
		}
		delete(s.dbs, ev.DB)
		s.meta.ClearPaused(ev.DB)
		s.kpi.Deletes++
		return Result{}
	}

	m, ok := s.dbs[ev.DB]
	if !ok {
		return Result{Err: fmt.Errorf("%w: %d", ErrUnknownDatabase, ev.DB)}
	}
	var eff policy.Effects
	switch ev.Kind {
	case KindLogin:
		s.kpi.Logins++
		eff = m.OnActivityStart(ev.At)
	case KindLogout:
		s.kpi.Logouts++
		eff = m.OnActivityEnd(ev.At)
	case KindWake:
		s.kpi.Wakes++
		eff = m.OnTimer(ev.At)
	default:
		return Result{Err: fmt.Errorf("shardedfleet: bad event kind %d", ev.Kind)}
	}
	s.record(ev.DB, eff)
	return Result{Effects: eff}
}

// record maintains the control-plane metadata (Algorithm 1 line 31 writes,
// reactive-resume clears) and the KPI counters for one transition. Caller
// holds s.mu.
func (s *shard) record(id int, eff policy.Effects) {
	switch eff.Transition {
	case policy.TransResumeWarm:
		s.kpi.WarmResumes++
		if eff.FromPrewarm {
			s.kpi.PrewarmsUsed++
		}
	case policy.TransResumeCold:
		s.kpi.ColdResumes++
		s.meta.ClearPaused(id)
	case policy.TransLogicalPause:
		s.kpi.LogicalPauses++
	case policy.TransPhysicalPause:
		s.kpi.PhysicalPauses++
		if eff.FromPrewarm {
			s.kpi.PrewarmsWasted++
		}
		if eff.MetadataSet {
			s.meta.SetPaused(id, eff.MetadataStart)
		}
	case policy.TransPrewarm:
		s.kpi.Prewarms++
	}
}

// do applies one event synchronously under the owning shard's lock.
func (rt *Runtime) do(ev Event) (policy.Effects, error) {
	t0, timed := rt.decisionStart()
	s := rt.shardFor(ev.DB)
	s.mu.Lock()
	res := s.apply(ev, &rt.cfg)
	s.mu.Unlock()
	if timed {
		rt.observeDecision(ev.Kind, t0)
	}
	return res.Effects, res.Err
}

// Create adds a new database created at createdAt.
func (rt *Runtime) Create(id int, createdAt int64) error {
	_, err := rt.do(Event{Kind: KindCreate, DB: id, At: createdAt})
	return err
}

// Delete drops a database and its control-plane metadata.
func (rt *Runtime) Delete(id int) error {
	_, err := rt.do(Event{Kind: KindDelete, DB: id})
	return err
}

// Login records the start of customer activity.
func (rt *Runtime) Login(id int, at int64) (policy.Effects, error) {
	return rt.do(Event{Kind: KindLogin, DB: id, At: at})
}

// Logout records the end of customer activity.
func (rt *Runtime) Logout(id int, at int64) (policy.Effects, error) {
	return rt.do(Event{Kind: KindLogout, DB: id, At: at})
}

// Wake delivers a scheduled wake-up.
func (rt *Runtime) Wake(id int, at int64) (policy.Effects, error) {
	return rt.do(Event{Kind: KindWake, DB: id, At: at})
}

// Submit enqueues an event on the owning shard's queue, blocking while the
// queue is full. The shard worker applies queued events in FIFO order.
func (rt *Runtime) Submit(ev Event) error {
	rt.lifecycle.RLock()
	defer rt.lifecycle.RUnlock()
	if rt.closed {
		return ErrClosed
	}
	ev.enqueuedAt = rt.cfg.Now()
	rt.shardFor(ev.DB).events <- ev
	return nil
}

// TrySubmit enqueues an event without blocking; a full queue yields
// ErrBacklog so the caller can shed load.
func (rt *Runtime) TrySubmit(ev Event) error {
	rt.lifecycle.RLock()
	defer rt.lifecycle.RUnlock()
	if rt.closed {
		return ErrClosed
	}
	ev.enqueuedAt = rt.cfg.Now()
	select {
	case rt.shardFor(ev.DB).events <- ev:
		return nil
	default:
		return ErrBacklog
	}
}

// TrySubmitSheddable enqueues a LOW-priority event — a history append, a
// background sweep — refusing with ErrBacklog not just when the owning
// shard's queue is hard-full (like TrySubmit) but as soon as it is
// CONGESTED: more than half full, or with a measured queue sojourn past
// Config.ShedTargetDelay. High-priority events keep using Submit or
// TrySubmit and therefore always see the full queue depth, so a login
// submitted behind 10k sheddable appends still gets a slot — the appends
// stopped being admitted long before the queue filled.
func (rt *Runtime) TrySubmitSheddable(ev Event) error {
	rt.lifecycle.RLock()
	defer rt.lifecycle.RUnlock()
	if rt.closed {
		return ErrClosed
	}
	s := rt.shardFor(ev.DB)
	if len(s.events) > cap(s.events)/2 ||
		time.Duration(s.lastWaitNanos.Load()) > rt.cfg.ShedTargetDelay {
		rt.queueSheds.Add(1)
		return fmt.Errorf("%w (shard congested)", ErrBacklog)
	}
	ev.enqueuedAt = rt.cfg.Now()
	select {
	case s.events <- ev:
		return nil
	default:
		return ErrBacklog
	}
}

// QueueSojourn reports the worst measured queue sojourn (enqueue →
// dequeue delay) across all shards — the fleet's queue-congestion
// signal, folded into the server's pressure state.
func (rt *Runtime) QueueSojourn() time.Duration {
	var max time.Duration
	for _, s := range rt.shards {
		if d := time.Duration(s.lastWaitNanos.Load()); d > max {
			max = d
		}
	}
	return max
}

// QueueSheds reports how many sheddable submissions were refused for
// queue congestion.
func (rt *Runtime) QueueSheds() uint64 { return rt.queueSheds.Load() }

// Drain blocks until every event enqueued before the call has been applied,
// by pushing a barrier through each shard queue.
func (rt *Runtime) Drain() error {
	rt.lifecycle.RLock()
	if rt.closed {
		rt.lifecycle.RUnlock()
		return ErrClosed
	}
	barriers := make([]chan struct{}, len(rt.shards))
	for i, s := range rt.shards {
		barriers[i] = make(chan struct{})
		s.events <- Event{barrier: barriers[i]}
	}
	rt.lifecycle.RUnlock()
	for _, b := range barriers {
		<-b
	}
	return nil
}

// Backlog reports the number of queued (not yet applied) events.
func (rt *Runtime) Backlog() int {
	n := 0
	for _, s := range rt.shards {
		n += len(s.events)
	}
	return n
}

// View runs f on the database's controller under the owning shard's lock.
// f must not retain the machine or call back into the runtime.
func (rt *Runtime) View(id int, f func(*policy.Machine)) error {
	s := rt.shardFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.dbs[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownDatabase, id)
	}
	f(m)
	return nil
}

// State reports a database's lifecycle state.
func (rt *Runtime) State(id int) (policy.State, error) {
	var st policy.State
	err := rt.View(id, func(m *policy.Machine) { st = m.State() })
	return st, err
}

// Size reports the number of databases.
func (rt *Runtime) Size() int {
	n := 0
	for _, s := range rt.shards {
		s.mu.Lock()
		n += len(s.dbs)
		s.mu.Unlock()
	}
	return n
}

// IDs returns every database id in the fleet, sorted.
func (rt *Runtime) IDs() []int {
	var ids []int
	for _, s := range rt.shards {
		s.mu.Lock()
		for id := range s.dbs {
			ids = append(ids, id)
		}
		s.mu.Unlock()
	}
	sort.Ints(ids)
	return ids
}

// PausedCount reports how many databases are physically paused according to
// the control-plane metadata.
func (rt *Runtime) PausedCount() int {
	n := 0
	for _, s := range rt.shards {
		s.mu.Lock()
		n += s.meta.PausedCount()
		s.mu.Unlock()
	}
	return n
}

// StateCounts tallies databases by lifecycle state.
func (rt *Runtime) StateCounts() (resumed, logical, physical int) {
	for _, s := range rt.shards {
		s.mu.Lock()
		for _, m := range s.dbs {
			switch m.State() {
			case policy.Resumed:
				resumed++
			case policy.LogicallyPaused:
				logical++
			case policy.PhysicallyPaused:
				physical++
			}
		}
		s.mu.Unlock()
	}
	return resumed, logical, physical
}

// KPI sums the per-shard counters.
func (rt *Runtime) KPI() Counters {
	var total Counters
	for _, s := range rt.shards {
		s.mu.Lock()
		total.add(s.kpi)
		s.mu.Unlock()
	}
	return total
}

// Prewarmed pairs a pre-warmed database with the effects of its pre-warm.
type Prewarmed struct {
	ID      int
	Effects policy.Effects
}

// RunResumeOp runs one iteration of the proactive resume operation
// (Algorithm 5) across all shards: phase one scans every shard's metadata
// concurrently for due databases, the merged set is capped fleet-wide
// (MaxPrewarmsPerOp; overflow stays for the next iteration), and phase two
// pre-warms the survivors shard by shard, again concurrently. Results are
// sorted by database id.
func (rt *Runtime) RunResumeOp(now int64) []Prewarmed {
	if rt.cfg.Policy.Mode != policy.Proactive {
		return nil
	}
	if inst := rt.inst.Load(); inst != nil {
		defer inst.scan.ObserveSince(time.Now())
	}
	merged := rt.scanDue(now)
	if cap := rt.cfg.Control.MaxPrewarmsPerOp; cap > 0 && len(merged) > cap {
		merged = merged[:cap]
	}
	return rt.prewarmIDs(now, merged)
}

// DueForResume runs phase one of Algorithm 5 alone: the read-only metadata
// scan for due databases, uncapped and sorted. Multi-group deployments call
// this on every group and apply the prewarm cap to the merged result.
func (rt *Runtime) DueForResume(now int64) []int {
	if rt.cfg.Policy.Mode != policy.Proactive {
		return nil
	}
	if inst := rt.inst.Load(); inst != nil {
		defer inst.scan.ObserveSince(time.Now())
	}
	return rt.scanDue(now)
}

// PrewarmIDs runs phase two of Algorithm 5 over an explicit id set (the
// caller has already applied whatever cap it wants): each id is re-checked
// under its shard lock and pre-warmed if it is still physically paused.
// Results are sorted by database id.
func (rt *Runtime) PrewarmIDs(now int64, ids []int) []Prewarmed {
	if rt.cfg.Policy.Mode != policy.Proactive {
		return nil
	}
	return rt.prewarmIDs(now, ids)
}

// scanDue runs the concurrent per-shard metadata scan and merges the
// results into one sorted slice.
func (rt *Runtime) scanDue(now int64) []int {
	due := make([][]int, len(rt.shards))
	var wg sync.WaitGroup
	for i, s := range rt.shards {
		wg.Add(1)
		go func(i int, s *shard) {
			defer wg.Done()
			s.mu.Lock()
			due[i] = s.meta.SelectDue(now, rt.cfg.Control.PrewarmLeadSec, rt.cfg.Control.OpPeriodSec)
			s.mu.Unlock()
		}(i, s)
	}
	wg.Wait()

	var merged []int
	for _, d := range due {
		merged = append(merged, d...)
	}
	sort.Ints(merged)
	return merged
}

// prewarmIDs pre-warms the given databases shard by shard, concurrently.
func (rt *Runtime) prewarmIDs(now int64, merged []int) []Prewarmed {
	if len(merged) == 0 {
		return nil
	}
	var wg sync.WaitGroup
	byShard := make(map[int][]int)
	for _, id := range merged {
		i := rt.shardIndex(id)
		byShard[i] = append(byShard[i], id)
	}
	results := make([][]Prewarmed, len(rt.shards))
	for i, ids := range byShard {
		wg.Add(1)
		go func(i int, ids []int) {
			defer wg.Done()
			s := rt.shards[i]
			s.mu.Lock()
			defer s.mu.Unlock()
			for _, id := range ids {
				// Re-check under the lock: the database may have resumed,
				// been deleted, or been pre-warmed since the scan phase.
				if _, paused := s.meta.PredictedStart(id); !paused {
					continue
				}
				s.meta.ClearPaused(id)
				m, ok := s.dbs[id]
				if !ok {
					continue
				}
				eff := m.OnPrewarm(now)
				if eff.Transition != policy.TransPrewarm {
					continue // stale entry
				}
				s.record(id, eff)
				results[i] = append(results[i], Prewarmed{ID: id, Effects: eff})
			}
		}(i, ids)
	}
	wg.Wait()

	var out []Prewarmed
	for _, r := range results {
		out = append(out, r...)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}
