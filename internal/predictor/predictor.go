// Package predictor implements the probabilistic next-activity prediction
// of Section 6 of the ProRP paper (Algorithm 4, sys.PredictNextActivity).
//
// The algorithm slides a window of w seconds every s seconds across the
// prediction horizon. For each candidate window it inspects the same window
// on each of the previous h days (or weeks, for weekly seasonality) and
// counts how many of them contained at least one login. The ratio of
// windows-with-activity to lookbacks is the probability of activity. The
// earliest window whose probability clears the confidence threshold yields
// the prediction; while the probability keeps strictly increasing over
// subsequent overlapping windows the prediction is refined, and the scan
// stops at the first non-improving window (the paper's "earliest start with
// the highest confidence" rule, Figure 5).
package predictor

import (
	"fmt"

	"prorp/internal/historystore"
)

// Seasonality selects the repetition period the detector assumes.
type Seasonality int

const (
	// Daily looks at the same time window on each of the previous h days.
	Daily Seasonality = iota
	// Weekly looks at the same window on the same weekday of each of the
	// previous h/7 weeks.
	Weekly
)

func (s Seasonality) String() string {
	switch s {
	case Daily:
		return "daily"
	case Weekly:
		return "weekly"
	default:
		return fmt.Sprintf("Seasonality(%d)", int(s))
	}
}

// Params are the tunable knobs of Algorithm 4 (Table 1 of the paper).
type Params struct {
	// HistoryDays is h: how many days of history the detector inspects.
	HistoryDays int
	// HorizonHours is p: how far ahead activity is predicted.
	HorizonHours int
	// Confidence is c: the minimum probability of activity per window.
	Confidence float64
	// WindowSec is w: the sliding window length in seconds.
	WindowSec int64
	// SlideSec is s: the window slide in seconds.
	SlideSec int64
	// Seasonality selects daily or weekly pattern detection.
	Seasonality Seasonality
}

// Default returns the production defaults of Table 1: h = 28 days,
// p = 1 day, c = 0.1, w = 7 hours, s = 5 minutes, daily seasonality.
func Default() Params {
	return Params{
		HistoryDays:  28,
		HorizonHours: 24,
		Confidence:   0.1,
		WindowSec:    7 * 3600,
		SlideSec:     5 * 60,
		Seasonality:  Daily,
	}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.HistoryDays <= 0 {
		return fmt.Errorf("predictor: history days %d, want > 0", p.HistoryDays)
	}
	if p.HorizonHours <= 0 {
		return fmt.Errorf("predictor: horizon hours %d, want > 0", p.HorizonHours)
	}
	if p.Confidence <= 0 || p.Confidence > 1 {
		return fmt.Errorf("predictor: confidence %v, want in (0, 1]", p.Confidence)
	}
	if p.WindowSec <= 0 {
		return fmt.Errorf("predictor: window %d s, want > 0", p.WindowSec)
	}
	if p.SlideSec <= 0 {
		return fmt.Errorf("predictor: slide %d s, want > 0", p.SlideSec)
	}
	if p.Seasonality != Daily && p.Seasonality != Weekly {
		return fmt.Errorf("predictor: unknown seasonality %d", int(p.Seasonality))
	}
	if p.Seasonality == Weekly && p.HistoryDays < 7 {
		return fmt.Errorf("predictor: weekly seasonality needs >= 7 history days, have %d", p.HistoryDays)
	}
	return nil
}

// period returns the seasonality repetition period in seconds and the
// number of lookbacks the history affords.
func (p Params) period() (periodSec int64, lookbacks int) {
	switch p.Seasonality {
	case Weekly:
		return 7 * historystore.SecondsPerDay, p.HistoryDays / 7
	default:
		return historystore.SecondsPerDay, p.HistoryDays
	}
}

// Activity is a predicted activity interval. A zero Activity means "no
// activity predicted", matching nextActivity.start = 0 in Algorithm 1.
type Activity struct {
	Start int64 // predicted start of customer activity (epoch seconds)
	End   int64 // predicted end of customer activity
}

// IsZero reports whether no activity was predicted.
func (a Activity) IsZero() bool { return a.Start == 0 && a.End == 0 }

// Predict runs Algorithm 4 against the history of one database. It returns
// the predicted next activity within the horizon and ok = false when no
// window clears the confidence threshold.
func Predict(st *historystore.Store, p Params, now int64) (Activity, bool) {
	periodSec, lookbacks := p.period()
	if lookbacks == 0 {
		return Activity{}, false
	}

	winStart := now
	predEnd := now + int64(p.HorizonHours)*3600

	var (
		pred     Activity
		prevProb float64
	)

	for winStart+p.WindowSec <= predEnd {
		winWithActivity := 0
		firstLoginPerWin := p.WindowSec // offset within the window
		lastLoginPerWin := int64(0)

		for prevDay := 1; prevDay <= lookbacks; prevDay++ {
			winStartPrev := winStart - int64(prevDay)*periodSec
			winEndPrev := winStartPrev + p.WindowSec
			first, last, ok := st.FirstLastLogin(winStartPrev, winEndPrev)
			if !ok {
				continue
			}
			if off := first - winStartPrev; off < firstLoginPerWin {
				firstLoginPerWin = off
			}
			if off := last - winStartPrev; off > lastLoginPerWin {
				lastLoginPerWin = off
			}
			winWithActivity++
		}

		prob := float64(winWithActivity) / float64(lookbacks)
		if p.Confidence <= prob && (prevProb < prob || pred.IsZero()) {
			prevProb = prob
			pred = Activity{
				Start: winStart + firstLoginPerWin,
				End:   winStart + lastLoginPerWin,
			}
		} else if !pred.IsZero() {
			// Algorithm 4 line 46: once a qualifying window has been found,
			// the first non-improving window ends the scan — the earliest
			// start with the highest confidence wins.
			break
		}
		winStart += p.SlideSec
	}
	return pred, !pred.IsZero()
}

// WindowCount returns how many candidate windows one Predict call scans in
// the worst case: p/s per the paper's complexity analysis (Section 6).
func (p Params) WindowCount() int {
	horizon := int64(p.HorizonHours) * 3600
	if p.WindowSec > horizon {
		return 0
	}
	return int((horizon-p.WindowSec)/p.SlideSec) + 1
}
