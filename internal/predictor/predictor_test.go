package predictor

import (
	"math/rand"
	"testing"
	"testing/quick"

	"prorp/internal/historystore"
)

const (
	day  = int64(historystore.SecondsPerDay)
	hour = int64(3600)
)

// seedDaily inserts a login/logout pair at the given hour-of-day offset for
// each of n previous days before base.
func seedDaily(st *historystore.Store, base int64, n int, startOff, endOff int64) {
	for i := 1; i <= n; i++ {
		st.Insert(base-int64(i)*day+startOff, historystore.EventStart)
		st.Insert(base-int64(i)*day+endOff, historystore.EventEnd)
	}
}

func TestDefaultMatchesPaperTable1(t *testing.T) {
	p := Default()
	if p.HistoryDays != 28 {
		t.Errorf("h = %d days, want 28", p.HistoryDays)
	}
	if p.HorizonHours != 24 {
		t.Errorf("p = %d hours, want 24", p.HorizonHours)
	}
	if p.Confidence != 0.1 {
		t.Errorf("c = %v, want 0.1", p.Confidence)
	}
	if p.WindowSec != 7*3600 {
		t.Errorf("w = %d s, want 7 h", p.WindowSec)
	}
	if p.SlideSec != 300 {
		t.Errorf("s = %d s, want 5 min", p.SlideSec)
	}
	if p.Seasonality != Daily {
		t.Errorf("seasonality = %v, want daily", p.Seasonality)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("Default() invalid: %v", err)
	}
}

func TestPredictEmptyHistory(t *testing.T) {
	st := historystore.New()
	if a, ok := Predict(st, Default(), 1000*day); ok || !a.IsZero() {
		t.Fatalf("Predict on empty history = %+v,%v", a, ok)
	}
}

func TestPredictDailyPattern(t *testing.T) {
	st := historystore.New()
	now := 1000 * day // midnight
	// Logins 09:00-10:00 every day for 28 days.
	seedDaily(st, now, 28, 9*hour, 10*hour)
	a, ok := Predict(st, Default(), now)
	if !ok {
		t.Fatal("no prediction for a perfect daily pattern")
	}
	// The window is 7 h wide and slides 5 min, so the first qualifying
	// window is [02:00+ε, 09:00+ε]; the predicted start must be the actual
	// login time 09:00 (offsets are measured from real logins).
	if a.Start != now+9*hour {
		t.Errorf("predicted start = now+%ds, want now+%ds", a.Start-now, 9*hour)
	}
	if a.End < a.Start {
		t.Errorf("predicted end %d before start %d", a.End, a.Start)
	}
	if a.End > now+24*hour {
		t.Errorf("predicted end beyond horizon: now+%ds", a.End-now)
	}
}

func TestPredictConfidenceThreshold(t *testing.T) {
	st := historystore.New()
	now := 1000 * day
	// Activity on only 2 of the last 28 days: probability 2/28 ~= 0.071.
	seedDaily(st, now, 2, 9*hour, 10*hour)

	p := Default() // c = 0.1
	if _, ok := Predict(st, p, now); ok {
		t.Error("prediction made below the confidence threshold")
	}
	p.Confidence = 0.05
	if _, ok := Predict(st, p, now); !ok {
		t.Error("no prediction despite probability above threshold")
	}
}

func TestPredictHighConfidenceFiltersSparsePattern(t *testing.T) {
	// Figure 9's mechanism: raising c suppresses predictions for databases
	// whose pattern repeats on only a fraction of days.
	st := historystore.New()
	now := 1000 * day
	seedDaily(st, now, 14, 9*hour, 10*hour) // every other day ~ prob 0.5
	for _, tc := range []struct {
		c    float64
		want bool
	}{{0.1, true}, {0.5, true}, {0.51, false}, {0.8, false}} {
		p := Default()
		p.Confidence = tc.c
		if _, ok := Predict(st, p, now); ok != tc.want {
			t.Errorf("c=%v: ok=%v, want %v", tc.c, ok, tc.want)
		}
	}
}

func TestPredictEarliestActivityWins(t *testing.T) {
	st := historystore.New()
	now := 1000 * day
	// Two daily activity periods: 04:00-05:00 and 15:00-16:00.
	seedDaily(st, now, 28, 4*hour, 5*hour)
	for i := 1; i <= 28; i++ {
		st.Insert(now-int64(i)*day+15*hour, historystore.EventStart)
		st.Insert(now-int64(i)*day+16*hour, historystore.EventEnd)
	}
	a, ok := Predict(st, Default(), now)
	if !ok {
		t.Fatal("no prediction")
	}
	if a.Start != now+4*hour {
		t.Errorf("predicted start = now+%dh, want the earlier activity at now+4h",
			(a.Start-now)/hour)
	}
}

func TestPredictWeeklySeasonality(t *testing.T) {
	st := historystore.New()
	now := 1001 * day // arbitrary alignment
	// Activity only once a week for 4 weeks.
	for i := 1; i <= 4; i++ {
		st.Insert(now-int64(i)*7*day+9*hour, historystore.EventStart)
		st.Insert(now-int64(i)*7*day+10*hour, historystore.EventEnd)
	}

	// Daily detector at c=0.2: probability 4/28 ~= 0.14 -> no prediction.
	p := Default()
	p.Confidence = 0.2
	if _, ok := Predict(st, p, now); ok {
		t.Error("daily detector predicted a weekly-only pattern at c=0.2")
	}
	// Weekly detector: probability 4/4 = 1.
	p.Seasonality = Weekly
	a, ok := Predict(st, p, now)
	if !ok {
		t.Fatal("weekly detector missed a perfect weekly pattern")
	}
	if a.Start != now+9*hour {
		t.Errorf("weekly predicted start = now+%ds, want now+%ds", a.Start-now, 9*hour)
	}
}

func TestPredictHorizonRespected(t *testing.T) {
	st := historystore.New()
	now := 1000 * day
	// Activity at 20:00 daily; with a 12 h horizon and 7 h window, windows
	// end at 12:00 latest, so window starts reach 05:00 and the 20:00
	// activity is out of reach... but windows reaching [05:00,12:00] never
	// contain 20:00 logins. No prediction.
	seedDaily(st, now, 28, 20*hour, 21*hour)
	p := Default()
	p.HorizonHours = 12
	if a, ok := Predict(st, p, now); ok {
		t.Errorf("prediction %+v beyond the 12 h horizon", a)
	}
	// With the full 24 h horizon it is found.
	p.HorizonHours = 24
	a, ok := Predict(st, p, now)
	if !ok || a.Start != now+20*hour {
		t.Errorf("24 h horizon: got %+v,%v, want start at now+20h", a, ok)
	}
}

func TestPredictProbabilityCountsWindowsNotLogins(t *testing.T) {
	// Section 6: several first-logins inside one window on the same day
	// must count as ONE window with activity, not several.
	st := historystore.New()
	now := 1000 * day
	// 5 logins within one hour on a single previous day.
	for j := int64(0); j < 5; j++ {
		st.Insert(now-day+9*hour+j*600, historystore.EventStart)
	}
	p := Default()
	p.HistoryDays = 28
	p.Confidence = 0.1 // needs ~3 of 28 days
	if _, ok := Predict(st, p, now); ok {
		t.Error("multiple logins on one day inflated the probability")
	}
	p.Confidence = 1.0 / 28.0 // one day of 28 suffices
	if _, ok := Predict(st, p, now); !ok {
		t.Error("single-day activity not found at matching threshold")
	}
}

func TestValidate(t *testing.T) {
	good := Default()
	bad := []func(*Params){
		func(p *Params) { p.HistoryDays = 0 },
		func(p *Params) { p.HistoryDays = -3 },
		func(p *Params) { p.HorizonHours = 0 },
		func(p *Params) { p.Confidence = 0 },
		func(p *Params) { p.Confidence = 1.5 },
		func(p *Params) { p.WindowSec = 0 },
		func(p *Params) { p.SlideSec = -1 },
		func(p *Params) { p.Seasonality = Seasonality(9) },
		func(p *Params) { p.Seasonality = Weekly; p.HistoryDays = 6 },
	}
	for i, mutate := range bad {
		p := good
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid params %+v", i, p)
		}
	}
	if err := good.Validate(); err != nil {
		t.Errorf("Validate rejected defaults: %v", err)
	}
}

func TestWindowCount(t *testing.T) {
	p := Default()
	// Horizon 24 h, window 7 h, slide 5 min: (24-7)*3600/300 + 1 = 205.
	if got := p.WindowCount(); got != 205 {
		t.Errorf("WindowCount() = %d, want 205", got)
	}
	p.WindowSec = 25 * 3600
	if got := p.WindowCount(); got != 0 {
		t.Errorf("window wider than horizon: WindowCount() = %d, want 0", got)
	}
}

func TestSeasonalityString(t *testing.T) {
	if Daily.String() != "daily" || Weekly.String() != "weekly" {
		t.Error("Seasonality.String() broken")
	}
	if Seasonality(9).String() == "" {
		t.Error("unknown seasonality prints empty")
	}
}

// Property: any prediction lies within [now, now+horizon] and has
// Start <= End, for arbitrary histories.
func TestQuickPredictionWithinHorizon(t *testing.T) {
	f := func(seed int64, nEvents uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		st := historystore.New()
		now := 1000 * day
		for i := 0; i < int(nEvents); i++ {
			ts := now - rng.Int63n(28*day)
			st.Insert(ts, byte(rng.Intn(2)))
		}
		p := Default()
		p.Confidence = 1.0 / 28.0 // permissive so predictions happen often
		a, ok := Predict(st, p, now)
		if !ok {
			return a.IsZero()
		}
		horizon := now + int64(p.HorizonHours)*3600
		return a.Start >= now && a.Start <= horizon &&
			a.End >= a.Start && a.End <= horizon
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: raising the confidence threshold never turns a non-prediction
// into a prediction (monotone filtering, the mechanism behind Figure 9).
func TestQuickConfidenceMonotone(t *testing.T) {
	f := func(seed int64, nEvents uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		st := historystore.New()
		now := 1000 * day
		for i := 0; i < int(nEvents); i++ {
			st.Insert(now-rng.Int63n(28*day), historystore.EventStart)
		}
		lo, hi := Default(), Default()
		lo.Confidence, hi.Confidence = 0.05, 0.5
		_, okLo := Predict(st, lo, now)
		_, okHi := Predict(st, hi, now)
		// okHi implies okLo.
		return !okHi || okLo
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPredictTypicalHistory(b *testing.B) {
	st := historystore.New()
	now := 1000 * day
	// ~500 tuples/week x 4 weeks (Figure 10(a) average).
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		st.Insert(now-rng.Int63n(28*day), byte(rng.Intn(2)))
	}
	p := Default()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Predict(st, p, now)
	}
}

func BenchmarkPredictWorstCaseHistory(b *testing.B) {
	st := historystore.New()
	now := 1000 * day
	// >4K tuples (Figure 10(a) worst case).
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 4500; i++ {
		st.Insert(now-rng.Int63n(28*day), byte(rng.Intn(2)))
	}
	p := Default()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Predict(st, p, now)
	}
}
