package predictor

import (
	"fmt"
	"strings"

	"prorp/internal/historystore"
)

// WindowStat describes one candidate window of an Algorithm 4 scan: the
// observability view behind "why did/didn't this database get a
// prediction". Production debugging of the proactive policy needs exactly
// this (the paper's diagnostics principle, Section 7).
type WindowStat struct {
	// WinStart is the window's start time.
	WinStart int64
	// Probability is windows-with-activity / lookbacks for this window.
	Probability float64
	// FirstLoginOffset / LastLoginOffset are the earliest and latest login
	// offsets within the window across the lookbacks; valid when
	// Probability > 0.
	FirstLoginOffset int64
	LastLoginOffset  int64
	// Qualifies reports Probability >= confidence.
	Qualifies bool
	// Selected marks the window whose activity Predict returns.
	Selected bool
}

// Explain scans every candidate window over the horizon (no early break,
// unlike Predict) and reports per-window statistics plus the prediction
// Predict would make. It costs a full horizon scan; use it for debugging
// and tooling, not on the hot path.
func Explain(st *historystore.Store, p Params, now int64) ([]WindowStat, Activity, bool) {
	periodSec, lookbacks := p.period()
	if lookbacks == 0 {
		return nil, Activity{}, false
	}
	pred, ok := Predict(st, p, now)

	var stats []WindowStat
	winStart := now
	predEnd := now + int64(p.HorizonHours)*3600
	for winStart+p.WindowSec <= predEnd {
		ws := WindowStat{WinStart: winStart, FirstLoginOffset: p.WindowSec}
		hits := 0
		for prevDay := 1; prevDay <= lookbacks; prevDay++ {
			lo := winStart - int64(prevDay)*periodSec
			hi := lo + p.WindowSec
			first, last, any := st.FirstLastLogin(lo, hi)
			if !any {
				continue
			}
			if off := first - lo; off < ws.FirstLoginOffset {
				ws.FirstLoginOffset = off
			}
			if off := last - lo; off > ws.LastLoginOffset {
				ws.LastLoginOffset = off
			}
			hits++
		}
		ws.Probability = float64(hits) / float64(lookbacks)
		ws.Qualifies = ws.Probability >= p.Confidence
		if ok && winStart+ws.FirstLoginOffset == pred.Start && ws.Qualifies && !selectedMarked(stats) {
			ws.Selected = true
		}
		if hits == 0 {
			ws.FirstLoginOffset = 0
		}
		stats = append(stats, ws)
		winStart += p.SlideSec
	}
	return stats, pred, ok
}

func selectedMarked(stats []WindowStat) bool {
	for _, s := range stats {
		if s.Selected {
			return true
		}
	}
	return false
}

// RenderExplain formats the qualifying windows of an Explain scan as a
// table (non-qualifying windows are summarized, not listed).
func RenderExplain(stats []WindowStat, pred Activity, ok bool) string {
	var b strings.Builder
	qualifying := 0
	for _, s := range stats {
		if s.Qualifies {
			qualifying++
		}
	}
	fmt.Fprintf(&b, "prediction scan: %d windows, %d qualifying\n", len(stats), qualifying)
	if ok {
		fmt.Fprintf(&b, "prediction: start=%d end=%d\n", pred.Start, pred.End)
	} else {
		fmt.Fprintf(&b, "prediction: none\n")
	}
	fmt.Fprintf(&b, "%12s %12s %10s %10s %9s\n", "win-start", "probability", "first-off", "last-off", "selected")
	for _, s := range stats {
		if !s.Qualifies {
			continue
		}
		fmt.Fprintf(&b, "%12d %12.3f %10d %10d %9v\n",
			s.WinStart, s.Probability, s.FirstLoginOffset, s.LastLoginOffset, s.Selected)
	}
	return b.String()
}
