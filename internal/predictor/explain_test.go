package predictor

import (
	"strings"
	"testing"

	"prorp/internal/historystore"
)

func TestExplainMatchesPredict(t *testing.T) {
	st := historystore.New()
	now := 1000 * day
	seedDaily(st, now, 28, 9*hour, 10*hour)
	p := Default()

	stats, pred, ok := Explain(st, p, now)
	wantPred, wantOK := Predict(st, p, now)
	if ok != wantOK || pred != wantPred {
		t.Fatalf("Explain prediction %+v/%v, Predict %+v/%v", pred, ok, wantPred, wantOK)
	}
	if len(stats) != p.WindowCount() {
		t.Fatalf("scanned %d windows, want %d", len(stats), p.WindowCount())
	}
	// Exactly one window is selected and it must qualify and reproduce the
	// prediction start.
	selected := 0
	for _, s := range stats {
		if s.Probability < 0 || s.Probability > 1 {
			t.Fatalf("probability %v out of range", s.Probability)
		}
		if s.Qualifies != (s.Probability >= p.Confidence) {
			t.Fatal("Qualifies inconsistent with Probability")
		}
		if s.Selected {
			selected++
			if !s.Qualifies {
				t.Fatal("selected window does not qualify")
			}
			if s.WinStart+s.FirstLoginOffset != pred.Start {
				t.Fatalf("selected window start %d + offset %d != prediction %d",
					s.WinStart, s.FirstLoginOffset, pred.Start)
			}
		}
	}
	if selected != 1 {
		t.Fatalf("selected windows = %d, want 1", selected)
	}
}

func TestExplainNoPrediction(t *testing.T) {
	st := historystore.New()
	now := 1000 * day
	st.Insert(now-3*day, historystore.EventStart) // one lonely login
	p := Default()                                // needs 3 of 28 days
	stats, pred, ok := Explain(st, p, now)
	if ok || !pred.IsZero() {
		t.Fatalf("unexpected prediction %+v", pred)
	}
	for _, s := range stats {
		if s.Selected {
			t.Fatal("selected window without a prediction")
		}
	}
	out := RenderExplain(stats, pred, ok)
	if !strings.Contains(out, "prediction: none") {
		t.Errorf("render: %s", out)
	}
}

func TestExplainRender(t *testing.T) {
	st := historystore.New()
	now := 1000 * day
	seedDaily(st, now, 28, 9*hour, 10*hour)
	stats, pred, ok := Explain(st, Default(), now)
	out := RenderExplain(stats, pred, ok)
	for _, want := range []string{"qualifying", "prediction: start=", "selected"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestExplainWeeklyEmptyLookbacks(t *testing.T) {
	p := Default()
	p.Seasonality = Weekly
	p.HistoryDays = 6 // lookbacks = 0
	stats, _, ok := Explain(historystore.New(), p, 1000*day)
	if stats != nil || ok {
		t.Fatal("zero-lookback explain returned data")
	}
}
