// Package shardmap implements the versioned slot-range map that partitions
// database ids across named primary groups.
//
// Database ids hash into a fixed number of slots (consistent hashing: the
// slot of an id never changes, only the slot's owner does), and each slot is
// assigned to exactly one group. The map carries a monotonically increasing
// version that acts like a replication epoch for routing: a router holding
// an older version is stale and must adopt the newer map before serving, so
// a migrated slot can never be written through its previous owner.
//
// On disk the map uses the PRM1 format: a little-endian binary image with a
// leading magic and a CRC-32C over everything after the checksum field, so
// torn or bit-flipped files are detected on load. Persistence is atomic
// (temp file, fsync, rename) via the faults.FS seam used by the snapshot
// store.
package shardmap

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"path/filepath"
	"sort"

	"prorp/internal/faults"
)

// NumSlots is the fixed size of the hash ring. Every map owns exactly this
// many slots; re-sharding moves slots between groups, never changes the
// slot count (which would re-home every database).
const NumSlots = 64

// Magic identifies a PRM1 shard-map image.
const Magic uint32 = 0x50524D31 // "PRM1"

// MaxGroups bounds the group count; owners are stored as one byte per slot.
const MaxGroups = 255

// ErrCorrupt reports a damaged or truncated PRM1 image.
var ErrCorrupt = errors.New("shardmap: corrupt PRM1 image")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// SlotOf hashes a database id onto the ring. The hash must be stable across
// processes and releases: CRC-32C over the id's 8 little-endian bytes.
func SlotOf(id int) int {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(id))
	return int(crc32.Checksum(b[:], crcTable) % NumSlots)
}

// Map is an immutable slot-ownership table. Mutations return a new Map with
// a bumped version; routers swap the whole pointer.
type Map struct {
	version uint64
	groups  []string // sorted, unique
	owner   []uint8  // len NumSlots, index into groups
}

// New builds a version-1 map assigning slots round-robin across the given
// groups (sorted first, so the assignment is independent of argument order).
func New(groups []string) (*Map, error) {
	if len(groups) == 0 {
		return nil, errors.New("shardmap: no groups")
	}
	if len(groups) > MaxGroups {
		return nil, fmt.Errorf("shardmap: %d groups exceeds max %d", len(groups), MaxGroups)
	}
	gs := append([]string(nil), groups...)
	sort.Strings(gs)
	for i, g := range gs {
		if g == "" {
			return nil, errors.New("shardmap: empty group name")
		}
		if i > 0 && gs[i-1] == g {
			return nil, fmt.Errorf("shardmap: duplicate group %q", g)
		}
	}
	owner := make([]uint8, NumSlots)
	for slot := range owner {
		owner[slot] = uint8(slot % len(gs))
	}
	return &Map{version: 1, groups: gs, owner: owner}, nil
}

// Version reports the map's epoch-style version.
func (m *Map) Version() uint64 { return m.version }

// Groups returns the sorted group names (a copy).
func (m *Map) Groups() []string { return append([]string(nil), m.groups...) }

// HasGroup reports whether the named group exists in the map.
func (m *Map) HasGroup(g string) bool {
	i := sort.SearchStrings(m.groups, g)
	return i < len(m.groups) && m.groups[i] == g
}

// Owner reports which group owns a slot.
func (m *Map) Owner(slot int) string {
	if slot < 0 || slot >= NumSlots {
		return ""
	}
	return m.groups[m.owner[slot]]
}

// OwnerOf reports which group owns a database id.
func (m *Map) OwnerOf(id int) string { return m.groups[m.owner[SlotOf(id)]] }

// OwnedSlots returns the slots owned by a group, sorted.
func (m *Map) OwnedSlots(group string) []int {
	var slots []int
	for slot, gi := range m.owner {
		if m.groups[gi] == group {
			slots = append(slots, slot)
		}
	}
	return slots
}

// Range is a maximal run of consecutive slots with one owner.
type Range struct {
	Start int    `json:"start"`
	End   int    `json:"end"` // inclusive
	Group string `json:"group"`
}

// Ranges compresses the ownership table into contiguous slot ranges.
func (m *Map) Ranges() []Range {
	var out []Range
	for slot := 0; slot < NumSlots; {
		gi := m.owner[slot]
		end := slot
		for end+1 < NumSlots && m.owner[end+1] == gi {
			end++
		}
		out = append(out, Range{Start: slot, End: end, Group: m.groups[gi]})
		slot = end + 1
	}
	return out
}

// WithOwner returns a new map, one version newer, with the slot reassigned
// to the given (existing) group.
func (m *Map) WithOwner(slot int, group string) (*Map, error) {
	if slot < 0 || slot >= NumSlots {
		return nil, fmt.Errorf("shardmap: slot %d out of range [0,%d)", slot, NumSlots)
	}
	gi := sort.SearchStrings(m.groups, group)
	if gi >= len(m.groups) || m.groups[gi] != group {
		return nil, fmt.Errorf("shardmap: unknown group %q", group)
	}
	owner := append([]uint8(nil), m.owner...)
	owner[slot] = uint8(gi)
	return &Map{version: m.version + 1, groups: m.groups, owner: owner}, nil
}

// Equal reports whether two maps agree on version, groups, and ownership.
func (m *Map) Equal(o *Map) bool {
	if m == nil || o == nil {
		return m == o
	}
	if m.version != o.version || len(m.groups) != len(o.groups) {
		return false
	}
	for i := range m.groups {
		if m.groups[i] != o.groups[i] {
			return false
		}
	}
	for i := range m.owner {
		if m.owner[i] != o.owner[i] {
			return false
		}
	}
	return true
}

// PRM1 layout (little endian):
//
//	magic   u32  = 0x50524D31
//	crc     u32  = CRC-32C over everything after this field
//	version u64
//	nGroups u16, then per group: u16 length + bytes
//	nSlots  u16  = NumSlots
//	owner   u8 × nSlots
const headerSize = 4 + 4 // magic + crc

// Encode serializes the map into a PRM1 image.
func (m *Map) Encode() []byte {
	b := make([]byte, headerSize, headerSize+8+2+len(m.groups)*18+2+NumSlots)
	binary.LittleEndian.PutUint32(b[0:4], Magic)
	b = binary.LittleEndian.AppendUint64(b, m.version)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(m.groups)))
	for _, g := range m.groups {
		b = binary.LittleEndian.AppendUint16(b, uint16(len(g)))
		b = append(b, g...)
	}
	b = binary.LittleEndian.AppendUint16(b, NumSlots)
	b = append(b, m.owner...)
	binary.LittleEndian.PutUint32(b[4:8], crc32.Checksum(b[headerSize:], crcTable))
	return b
}

// Decode parses and verifies a PRM1 image.
func Decode(b []byte) (*Map, error) {
	if len(b) < headerSize+8+2 {
		return nil, fmt.Errorf("%w: %d bytes", ErrCorrupt, len(b))
	}
	if got := binary.LittleEndian.Uint32(b[0:4]); got != Magic {
		return nil, fmt.Errorf("%w: bad magic %#x", ErrCorrupt, got)
	}
	if got, want := binary.LittleEndian.Uint32(b[4:8]), crc32.Checksum(b[headerSize:], crcTable); got != want {
		return nil, fmt.Errorf("%w: crc %#x, want %#x", ErrCorrupt, got, want)
	}
	p := b[headerSize:]
	version := binary.LittleEndian.Uint64(p[0:8])
	n := int(binary.LittleEndian.Uint16(p[8:10]))
	p = p[10:]
	if n == 0 || n > MaxGroups {
		return nil, fmt.Errorf("%w: %d groups", ErrCorrupt, n)
	}
	groups := make([]string, n)
	for i := range groups {
		if len(p) < 2 {
			return nil, fmt.Errorf("%w: truncated group table", ErrCorrupt)
		}
		l := int(binary.LittleEndian.Uint16(p[0:2]))
		p = p[2:]
		if len(p) < l {
			return nil, fmt.Errorf("%w: truncated group name", ErrCorrupt)
		}
		groups[i] = string(p[:l])
		p = p[l:]
		if groups[i] == "" || (i > 0 && groups[i-1] >= groups[i]) {
			return nil, fmt.Errorf("%w: group table not sorted-unique", ErrCorrupt)
		}
	}
	if len(p) < 2 {
		return nil, fmt.Errorf("%w: missing slot count", ErrCorrupt)
	}
	slots := int(binary.LittleEndian.Uint16(p[0:2]))
	p = p[2:]
	if slots != NumSlots {
		return nil, fmt.Errorf("%w: %d slots, want %d", ErrCorrupt, slots, NumSlots)
	}
	if len(p) != NumSlots {
		return nil, fmt.Errorf("%w: %d owner bytes, want %d", ErrCorrupt, len(p), NumSlots)
	}
	owner := make([]uint8, NumSlots)
	for i, gi := range p {
		if int(gi) >= n {
			return nil, fmt.Errorf("%w: slot %d owner index %d out of range", ErrCorrupt, i, gi)
		}
		owner[i] = gi
	}
	return &Map{version: version, groups: groups, owner: owner}, nil
}

// mapJSON is the human/HTTP wire shape.
type mapJSON struct {
	Version uint64   `json:"version"`
	Groups  []string `json:"groups"`
	Slots   []Range  `json:"slots"`
}

// MarshalJSON renders the map as {version, groups, slots:[{start,end,group}]}.
func (m *Map) MarshalJSON() ([]byte, error) {
	return json.Marshal(mapJSON{Version: m.version, Groups: m.groups, Slots: m.Ranges()})
}

// UnmarshalJSON parses the wire shape back into a full ownership table.
func (m *Map) UnmarshalJSON(b []byte) error {
	var j mapJSON
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	if len(j.Groups) == 0 || len(j.Groups) > MaxGroups {
		return fmt.Errorf("shardmap: bad group count %d", len(j.Groups))
	}
	idx := make(map[string]uint8, len(j.Groups))
	for i, g := range j.Groups {
		if g == "" || (i > 0 && j.Groups[i-1] >= g) {
			return errors.New("shardmap: groups not sorted-unique")
		}
		idx[g] = uint8(i)
	}
	owner := make([]uint8, NumSlots)
	seen := make([]bool, NumSlots)
	for _, r := range j.Slots {
		gi, ok := idx[r.Group]
		if !ok {
			return fmt.Errorf("shardmap: range owner %q not in groups", r.Group)
		}
		if r.Start < 0 || r.End >= NumSlots || r.Start > r.End {
			return fmt.Errorf("shardmap: bad range [%d,%d]", r.Start, r.End)
		}
		for s := r.Start; s <= r.End; s++ {
			if seen[s] {
				return fmt.Errorf("shardmap: slot %d assigned twice", s)
			}
			seen[s] = true
			owner[s] = gi
		}
	}
	for s, ok := range seen {
		if !ok {
			return fmt.Errorf("shardmap: slot %d unassigned", s)
		}
	}
	m.version = j.Version
	m.groups = append([]string(nil), j.Groups...)
	m.owner = owner
	return nil
}

// Save atomically persists the map: temp file in the same directory,
// fsync, rename over the target (the snapshot-store idiom).
func Save(fsys faults.FS, path string, m *Map) error {
	if fsys == nil {
		fsys = faults.OS
	}
	dir, base := filepath.Dir(path), filepath.Base(path)
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("shardmap: mkdir: %w", err)
	}
	f, err := fsys.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return fmt.Errorf("shardmap: create temp: %w", err)
	}
	tmp := f.Name()
	_, err = f.Write(m.Encode())
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("shardmap: write temp: %w", err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("shardmap: rename: %w", err)
	}
	return nil
}

// Load reads and verifies a persisted map. A missing file surfaces as
// fs.ErrNotExist so boot can fall back to building a fresh map.
func Load(fsys faults.FS, path string) (*Map, error) {
	m, _, err := Inspect(fsys, path)
	return m, err
}

// Inspect reads a persisted map, returning its size alongside, for tooling.
// Damage surfaces as ErrCorrupt; a missing file as fs.ErrNotExist.
func Inspect(fsys faults.FS, path string) (*Map, int, error) {
	if fsys == nil {
		fsys = faults.OS
	}
	f, err := fsys.Open(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, 0, err
		}
		return nil, 0, fmt.Errorf("shardmap: open %s: %w", path, err)
	}
	b, err := io.ReadAll(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, 0, fmt.Errorf("shardmap: read %s: %w", path, err)
	}
	m, err := Decode(b)
	if err != nil {
		return nil, len(b), err
	}
	return m, len(b), nil
}
