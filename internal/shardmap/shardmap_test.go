package shardmap

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"path/filepath"
	"testing"

	"prorp/internal/faults"
)

func mustNew(t *testing.T, groups ...string) *Map {
	t.Helper()
	m, err := New(groups)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSlotOfStableAndCovered(t *testing.T) {
	// The hash must be deterministic (pin a few values so an accidental
	// hash change shows up as a test failure, not a silent re-home of
	// every database) and must land inside the ring.
	for id, want := range map[int]int{0: SlotOf(0), 1: SlotOf(1), 123456: SlotOf(123456)} {
		if got := SlotOf(id); got != want || got < 0 || got >= NumSlots {
			t.Fatalf("SlotOf(%d) = %d (unstable or out of range)", id, got)
		}
	}
	// Every slot should be reachable over a modest id space, otherwise
	// migration tests could never exercise some slots.
	hit := make(map[int]bool)
	for id := 0; id < 4096; id++ {
		hit[SlotOf(id)] = true
	}
	if len(hit) != NumSlots {
		t.Fatalf("only %d/%d slots reachable over 4096 ids", len(hit), NumSlots)
	}
}

func TestNewAssignsRoundRobinSorted(t *testing.T) {
	m := mustNew(t, "west", "east") // unsorted on purpose
	if got := m.Groups(); got[0] != "east" || got[1] != "west" {
		t.Fatalf("groups not sorted: %v", got)
	}
	if m.Version() != 1 {
		t.Fatalf("fresh map version = %d, want 1", m.Version())
	}
	east, west := len(m.OwnedSlots("east")), len(m.OwnedSlots("west"))
	if east+west != NumSlots || east != west {
		t.Fatalf("round-robin split = %d/%d over %d slots", east, west, NumSlots)
	}
	for _, bad := range [][]string{nil, {"a", "a"}, {""}} {
		if _, err := New(bad); err == nil {
			t.Fatalf("New(%q) accepted", bad)
		}
	}
}

func TestWithOwnerBumpsVersion(t *testing.T) {
	m := mustNew(t, "a", "b")
	slot := m.OwnedSlots("a")[0]
	m2, err := m.WithOwner(slot, "b")
	if err != nil {
		t.Fatal(err)
	}
	if m2.Version() != m.Version()+1 {
		t.Fatalf("version = %d, want %d", m2.Version(), m.Version()+1)
	}
	if m2.Owner(slot) != "b" || m.Owner(slot) != "a" {
		t.Fatalf("ownership: old=%q new=%q (immutability broken?)", m.Owner(slot), m2.Owner(slot))
	}
	if _, err := m.WithOwner(slot, "nope"); err == nil {
		t.Fatal("unknown group accepted")
	}
	if _, err := m.WithOwner(NumSlots, "b"); err == nil {
		t.Fatal("out-of-range slot accepted")
	}
	if m.Equal(m2) || !m.Equal(m) {
		t.Fatal("Equal is wrong")
	}
}

func TestRangesCoverRing(t *testing.T) {
	m := mustNew(t, "a", "b", "c")
	covered := 0
	for _, r := range m.Ranges() {
		if r.Start > r.End || m.Owner(r.Start) != r.Group || m.Owner(r.End) != r.Group {
			t.Fatalf("bad range %+v", r)
		}
		covered += r.End - r.Start + 1
	}
	if covered != NumSlots {
		t.Fatalf("ranges cover %d slots, want %d", covered, NumSlots)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := mustNew(t, "alpha", "beta", "gamma")
	m, err := m.WithOwner(5, "gamma")
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, m)
	}
}

func TestDecodeRejectsDamage(t *testing.T) {
	img := mustNew(t, "a", "b").Encode()
	// Flip one bit in every byte position: the CRC (or a structural
	// check, for bytes inside the header) must catch each one.
	for i := range img {
		bad := append([]byte(nil), img...)
		bad[i] ^= 0x40
		if _, err := Decode(bad); err == nil {
			t.Fatalf("bit flip at byte %d accepted", i)
		} else if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("bit flip at byte %d: err %v not ErrCorrupt", i, err)
		}
	}
	for cut := 0; cut < len(img); cut += 7 {
		if _, err := Decode(img[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestSaveLoadInspect(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sub", "shard.map")
	if _, err := Load(nil, path); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("load missing = %v, want fs.ErrNotExist", err)
	}
	m := mustNew(t, "g1", "g2")
	if err := Save(nil, path, m); err != nil {
		t.Fatal(err)
	}
	got, size, err := Inspect(nil, path)
	if err != nil || size == 0 || !got.Equal(m) {
		t.Fatalf("Inspect = %+v, %d, %v", got, size, err)
	}
	// Overwrite with a newer version; no temp litter left behind.
	m2, _ := m.WithOwner(0, "g2")
	if err := Save(nil, path, m2); err != nil {
		t.Fatal(err)
	}
	if got, _ := Load(nil, path); got.Version() != m2.Version() {
		t.Fatalf("reload version = %d, want %d", got.Version(), m2.Version())
	}
	litter, _ := filepath.Glob(filepath.Join(dir, "sub", "*.tmp-*"))
	if len(litter) != 0 {
		t.Fatalf("temp litter: %v", litter)
	}
}

func TestSaveFaultLeavesOldMap(t *testing.T) {
	inj := faults.NewInjector(1)
	fsys := faults.NewFaultFS(faults.OS, inj, nil)
	path := filepath.Join(t.TempDir(), "shard.map")
	m := mustNew(t, "a", "b")
	if err := Save(fsys, path, m); err != nil {
		t.Fatal(err)
	}
	m2, _ := m.WithOwner(0, "b")
	inj.FailProb("fs.rename", 1, nil)
	if err := Save(fsys, path, m2); err == nil {
		t.Fatal("save with failing rename succeeded")
	}
	inj.HealAll()
	got, err := Load(fsys, path)
	if err != nil || !got.Equal(m) {
		t.Fatalf("old map not intact after failed save: %+v, %v", got, err)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	m := mustNew(t, "a", "b", "c")
	m, _ = m.WithOwner(10, "a")
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var got Map
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatalf("json round trip mismatch:\n%s", b)
	}
	for _, bad := range []string{
		`{"version":1,"groups":[],"slots":[]}`,
		`{"version":1,"groups":["a"],"slots":[]}`,
		`{"version":1,"groups":["a"],"slots":[{"start":0,"end":63,"group":"x"}]}`,
		`{"version":1,"groups":["a"],"slots":[{"start":0,"end":63,"group":"a"},{"start":5,"end":5,"group":"a"}]}`,
		`{"version":1,"groups":["b","a"],"slots":[{"start":0,"end":63,"group":"a"}]}`,
	} {
		var m2 Map
		if err := json.Unmarshal([]byte(bad), &m2); err == nil {
			t.Fatalf("bad JSON accepted: %s", bad)
		}
	}
}

func TestLookupHelpers(t *testing.T) {
	m := mustNew(t, "b", "a")
	if !m.HasGroup("a") || !m.HasGroup("b") {
		t.Fatalf("HasGroup lost a member: %v", m.Groups())
	}
	if m.HasGroup("c") || m.HasGroup("") {
		t.Fatal("HasGroup invented a member")
	}
	if got := m.Owner(-1); got != "" {
		t.Fatalf("Owner(-1) = %q", got)
	}
	if got := m.Owner(NumSlots); got != "" {
		t.Fatalf("Owner(%d) = %q", NumSlots, got)
	}
	for id := 0; id < 100; id++ {
		if m.OwnerOf(id) != m.Owner(SlotOf(id)) {
			t.Fatalf("OwnerOf(%d) disagrees with Owner(SlotOf)", id)
		}
	}
}

func TestNewRejectsTooManyGroups(t *testing.T) {
	groups := make([]string, MaxGroups+1)
	for i := range groups {
		groups[i] = fmt.Sprintf("g%03d", i)
	}
	if _, err := New(groups); err == nil {
		t.Fatal("New accepted more than MaxGroups groups")
	}
}

func TestEqualBranches(t *testing.T) {
	base := mustNew(t, "a", "b")
	moved, err := base.WithOwner(0, "b")
	if err != nil {
		t.Fatal(err)
	}
	sameShapeMoved, err := mustNew(t, "a", "b").WithOwner(1, "a")
	if err != nil {
		t.Fatal(err)
	}
	var nilMap *Map
	cases := []struct {
		name string
		a, b *Map
		want bool
	}{
		{"both nil", nilMap, nilMap, true},
		{"nil vs map", nilMap, base, false},
		{"map vs nil", base, nilMap, false},
		{"same", base, mustNew(t, "b", "a"), true},
		{"version differs", base, moved, false},
		{"groups differ", mustNew(t, "a", "b"), mustNew(t, "a", "c"), false},
		{"group count differs", mustNew(t, "a"), base, false},
		{"owners differ", moved, sameShapeMoved, false},
	}
	for _, tc := range cases {
		if got := tc.a.Equal(tc.b); got != tc.want {
			t.Errorf("%s: Equal = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// seal wraps a hand-built PRM1 body in a valid magic + CRC header, so the
// structural checks past the checksum are reachable.
func seal(body []byte) []byte {
	b := make([]byte, 8, 8+len(body))
	binary.LittleEndian.PutUint32(b[0:4], Magic)
	b = append(b, body...)
	binary.LittleEndian.PutUint32(b[4:8], crc32.Checksum(b[8:], crcTable))
	return b
}

func TestDecodeStructuralChecks(t *testing.T) {
	le := binary.LittleEndian
	u16 := func(v int) []byte { return le.AppendUint16(nil, uint16(v)) }
	group := func(name string) []byte { return append(u16(len(name)), name...) }
	var version [8]byte
	le.PutUint64(version[:], 1)
	body := func(parts ...[]byte) []byte {
		out := append([]byte(nil), version[:]...)
		for _, p := range parts {
			out = append(out, p...)
		}
		return out
	}
	owners := func(n int, gi byte) []byte {
		return bytes.Repeat([]byte{gi}, n)
	}
	cases := []struct {
		name string
		body []byte
	}{
		{"zero groups", body(u16(0))},
		{"empty group name", body(u16(1), group(""), u16(NumSlots), owners(NumSlots, 0))},
		{"unsorted groups", body(u16(2), group("b"), group("a"), u16(NumSlots), owners(NumSlots, 0))},
		{"truncated group table", body(u16(2), group("a"))},
		{"truncated group name", body(u16(1), u16(10), []byte("abc"))},
		{"missing slot count", body(u16(1), group("a"))},
		{"wrong slot count", body(u16(1), group("a"), u16(32), owners(32, 0))},
		{"short owner table", body(u16(1), group("a"), u16(NumSlots), owners(NumSlots-1, 0))},
		{"owner index out of range", body(u16(2), group("a"), group("b"), u16(NumSlots), owners(NumSlots, 2))},
	}
	for _, tc := range cases {
		if _, err := Decode(seal(tc.body)); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: Decode err = %v, want ErrCorrupt", tc.name, err)
		}
	}
}
