package stats

import (
	"strings"
	"testing"
)

func TestPlotCDFShape(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{0, 0.25, 0.5, 0.75, 1}
	out := PlotCDF(xs, ys, 40, 8, "hours")
	if out == "" {
		t.Fatal("empty plot")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// 8 grid rows + axis + label.
	if len(lines) != 10 {
		t.Fatalf("plot has %d lines, want 10", len(lines))
	}
	if !strings.Contains(lines[0], "100%") || !strings.Contains(lines[7], "0%") {
		t.Error("y-axis labels missing")
	}
	if !strings.Contains(out, "hours") {
		t.Error("x-axis label missing")
	}
	if !strings.Contains(out, "*") {
		t.Error("no curve drawn")
	}
	// A rising CDF: the first grid row (top) must have its '*' to the
	// right of the bottom row's.
	top := strings.IndexByte(lines[0], '*')
	bottom := strings.IndexByte(lines[7], '*')
	if top <= bottom {
		t.Errorf("curve not rising: top * at %d, bottom * at %d", top, bottom)
	}
}

func TestPlotCDFDegenerate(t *testing.T) {
	if PlotCDF(nil, nil, 40, 8, "x") != "" {
		t.Error("empty input produced a plot")
	}
	if PlotCDF([]float64{1}, []float64{1, 2}, 40, 8, "x") != "" {
		t.Error("mismatched input produced a plot")
	}
	if PlotCDF([]float64{1, 2}, []float64{0, 1}, 2, 8, "x") != "" {
		t.Error("tiny width produced a plot")
	}
	// A single point (flat range) must not divide by zero.
	if out := PlotCDF([]float64{5, 5}, []float64{1, 1}, 20, 4, "x"); out == "" {
		t.Error("flat-range plot empty")
	}
}

func TestPlotBoxes(t *testing.T) {
	boxes := []Summary{
		{Min: 0, Q1: 2, Median: 5, Q3: 8, Max: 10},
		{Min: 1, Q1: 10, Median: 20, Q3: 30, Max: 40},
	}
	out := PlotBoxes([]string{"1 min", "15 min"}, boxes, 40)
	if out == "" {
		t.Fatal("empty plot")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("plot has %d lines, want 3", len(lines))
	}
	for i, line := range lines[:2] {
		if !strings.Contains(line, "M") || !strings.Contains(line, "=") {
			t.Errorf("row %d missing box glyphs: %q", i, line)
		}
	}
	// The larger distribution's median must sit further right.
	if strings.IndexByte(lines[1], 'M') <= strings.IndexByte(lines[0], 'M') {
		t.Error("box scaling broken")
	}
}

func TestPlotBoxesDegenerate(t *testing.T) {
	if PlotBoxes([]string{"a"}, nil, 40) != "" {
		t.Error("mismatched input produced a plot")
	}
	if PlotBoxes([]string{"a"}, []Summary{{}}, 4) != "" {
		t.Error("tiny width produced a plot")
	}
	// All-zero boxes must not divide by zero.
	if out := PlotBoxes([]string{"a"}, []Summary{{}}, 30); out == "" {
		t.Error("zero boxes empty")
	}
}
