package stats

import (
	"fmt"
	"math"
	"strings"
)

// ASCII rendering of the two figure shapes the paper's evaluation uses:
// CDF curves (Figures 3 and 10) and box plots (Figures 11 and 12). The
// bench harness prints these next to the numeric series so a terminal run
// shows the same shapes the paper plots.

// PlotCDF renders y = f(x) sample points as an ASCII curve on a
// width x height grid. Points must be sorted by X; Y values are expected
// in [0, 1].
func PlotCDF(xs, ys []float64, width, height int, xLabel string) string {
	if len(xs) == 0 || len(xs) != len(ys) || width < 8 || height < 3 {
		return ""
	}
	minX, maxX := xs[0], xs[len(xs)-1]
	if maxX == minX {
		maxX = minX + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	// Interpolate the curve column by column.
	for col := 0; col < width; col++ {
		x := minX + (maxX-minX)*float64(col)/float64(width-1)
		y := interp(xs, ys, x)
		row := height - 1 - int(math.Round(y*float64(height-1)))
		if row < 0 {
			row = 0
		}
		if row >= height {
			row = height - 1
		}
		grid[row][col] = '*'
	}
	var b strings.Builder
	for i, line := range grid {
		label := "    "
		switch i {
		case 0:
			label = "100%"
		case height - 1:
			label = "  0%"
		}
		fmt.Fprintf(&b, "%s |%s|\n", label, string(line))
	}
	fmt.Fprintf(&b, "      %-*s%*s\n", width/2, fmtFloat(minX), width-width/2, fmtFloat(maxX))
	fmt.Fprintf(&b, "      %s\n", center(xLabel, width))
	return b.String()
}

func interp(xs, ys []float64, x float64) float64 {
	if x <= xs[0] {
		return ys[0]
	}
	for i := 1; i < len(xs); i++ {
		if x <= xs[i] {
			span := xs[i] - xs[i-1]
			if span == 0 {
				return ys[i]
			}
			frac := (x - xs[i-1]) / span
			return ys[i-1] + frac*(ys[i]-ys[i-1])
		}
	}
	return ys[len(ys)-1]
}

func fmtFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e6 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.2g", v)
}

func center(s string, width int) string {
	if len(s) >= width {
		return s
	}
	left := (width - len(s)) / 2
	return strings.Repeat(" ", left) + s
}

// PlotBoxes renders horizontal box-and-whisker rows over a shared axis:
//
//	label |----[==M==]--------|  (whiskers min..max, box q1..q3, M median)
func PlotBoxes(labels []string, boxes []Summary, width int) string {
	if len(labels) != len(boxes) || len(boxes) == 0 || width < 16 {
		return ""
	}
	maxV := 0.0
	for _, s := range boxes {
		if s.Max > maxV {
			maxV = s.Max
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	scale := func(v float64) int {
		c := int(math.Round(v / maxV * float64(width-1)))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	var b strings.Builder
	for i, s := range boxes {
		line := []byte(strings.Repeat(" ", width))
		lo, q1, med, q3, hi := scale(s.Min), scale(s.Q1), scale(s.Median), scale(s.Q3), scale(s.Max)
		for c := lo; c <= hi; c++ {
			line[c] = '-'
		}
		for c := q1; c <= q3; c++ {
			line[c] = '='
		}
		line[lo] = '|'
		line[hi] = '|'
		line[med] = 'M'
		fmt.Fprintf(&b, "%*s %s max=%s\n", labelW, labels[i], string(line), fmtFloat(s.Max))
	}
	fmt.Fprintf(&b, "%*s 0%s%s\n", labelW, "", strings.Repeat(" ", width-len(fmtFloat(maxV))-1), fmtFloat(maxV))
	return b.String()
}
