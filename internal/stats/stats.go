// Package stats provides the descriptive statistics the ProRP evaluation
// reports: CDFs (Figures 3 and 10), box-plot five-number summaries
// (Figures 11 and 12), and basic aggregates.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary is a box-plot five-number summary plus mean and count, the shape
// of the gray/white boxes in Figures 11 and 12.
type Summary struct {
	Count  int
	Min    float64
	Q1     float64
	Median float64
	Q3     float64
	Max    float64
	Mean   float64
}

// Summarize computes a Summary of xs. An empty input yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	sum := 0.0
	for _, x := range s {
		sum += x
	}
	return Summary{
		Count:  len(s),
		Min:    s[0],
		Q1:     quantileSorted(s, 0.25),
		Median: quantileSorted(s, 0.5),
		Q3:     quantileSorted(s, 0.75),
		Max:    s[len(s)-1],
		Mean:   sum / float64(len(s)),
	}
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.1f q1=%.1f med=%.1f q3=%.1f max=%.1f mean=%.1f",
		s.Count, s.Min, s.Q1, s.Median, s.Q3, s.Max, s.Mean)
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between closest ranks. It panics on an empty input or a
// quantile outside [0, 1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return quantileSorted(s, q)
}

func quantileSorted(s []float64, q float64) float64 {
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v outside [0,1]", q))
	}
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Mean returns the arithmetic mean of xs, 0 for an empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// CDF is an empirical cumulative distribution over float64 samples.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from the samples.
func NewCDF(samples []float64) *CDF {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// Len reports the number of samples.
func (c *CDF) Len() int { return len(c.sorted) }

// At returns P(X <= x), the fraction of samples at or below x.
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	// First index with value > x.
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-th quantile of the samples.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		panic("stats: Quantile of empty CDF")
	}
	return quantileSorted(c.sorted, q)
}

// Max returns the largest sample, 0 when empty.
func (c *CDF) Max() float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	return c.sorted[len(c.sorted)-1]
}

// Mean returns the mean of the samples.
func (c *CDF) Mean() float64 { return Mean(c.sorted) }

// Table renders the CDF evaluated at the given points, one "x p" row per
// point — the series the figure plots.
func (c *CDF) Table(points []float64) string {
	var b strings.Builder
	for _, x := range points {
		fmt.Fprintf(&b, "%12.2f %8.4f\n", x, c.At(x))
	}
	return b.String()
}

// WeightedCDF accumulates (value, weight) samples; At reports the fraction
// of total *weight* at or below x. Figure 3(b) — the share of total idle
// time contributed by intervals up to a given duration — is a weighted CDF
// with weight = interval duration.
type WeightedCDF struct {
	vals    []float64
	weights []float64
	total   float64
	sorted  bool
}

// Add records one sample with the given weight. Negative weights panic.
func (w *WeightedCDF) Add(value, weight float64) {
	if weight < 0 {
		panic("stats: negative weight")
	}
	w.vals = append(w.vals, value)
	w.weights = append(w.weights, weight)
	w.total += weight
	w.sorted = false
}

// Len reports the number of samples.
func (w *WeightedCDF) Len() int { return len(w.vals) }

type byVal struct{ w *WeightedCDF }

func (b byVal) Len() int           { return len(b.w.vals) }
func (b byVal) Less(i, j int) bool { return b.w.vals[i] < b.w.vals[j] }
func (b byVal) Swap(i, j int) {
	b.w.vals[i], b.w.vals[j] = b.w.vals[j], b.w.vals[i]
	b.w.weights[i], b.w.weights[j] = b.w.weights[j], b.w.weights[i]
}

// At returns the fraction of total weight carried by samples <= x.
func (w *WeightedCDF) At(x float64) float64 {
	if w.total == 0 {
		return 0
	}
	if !w.sorted {
		sort.Sort(byVal{w})
		w.sorted = true
	}
	acc := 0.0
	for i, v := range w.vals {
		if v > x {
			break
		}
		acc += w.weights[i]
	}
	return acc / w.total
}

// Histogram counts samples into fixed bucket boundaries: bucket i counts
// samples in (bounds[i-1], bounds[i]], bucket 0 is (-inf, bounds[0]], and a
// final overflow bucket holds samples above the last bound.
type Histogram struct {
	Bounds []float64
	Counts []int
	N      int
}

// NewHistogram returns a histogram over the given ascending bounds.
func NewHistogram(bounds []float64) *Histogram {
	if !sort.Float64sAreSorted(bounds) {
		panic("stats: histogram bounds not ascending")
	}
	return &Histogram{
		Bounds: append([]float64(nil), bounds...),
		Counts: make([]int, len(bounds)+1),
	}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	i := sort.SearchFloat64s(h.Bounds, x)
	h.Counts[i]++
	h.N++
}

// Fraction returns the share of samples in bucket i.
func (h *Histogram) Fraction(i int) float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.N)
}
