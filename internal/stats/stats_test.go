package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.Count != 5 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("Summary = %+v", s)
	}
	if !almostEqual(s.Median, 3) || !almostEqual(s.Mean, 3) {
		t.Fatalf("median/mean = %v/%v, want 3/3", s.Median, s.Mean)
	}
	if !almostEqual(s.Q1, 2) || !almostEqual(s.Q3, 4) {
		t.Fatalf("q1/q3 = %v/%v, want 2/4", s.Q1, s.Q3)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Count != 0 || s.Min != 0 || s.Max != 0 {
		t.Fatalf("empty Summary = %+v, want zero", s)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("input mutated: %v", in)
	}
}

func TestSummaryString(t *testing.T) {
	if Summarize([]float64{1}).String() == "" {
		t.Fatal("empty String()")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	cases := []struct{ q, want float64 }{
		{0, 10}, {1, 40}, {0.5, 25}, {1.0 / 3.0, 20},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEqual(got, c.want) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := Quantile([]float64{7}, 0.99); got != 7 {
		t.Errorf("single-element quantile = %v, want 7", got)
	}
}

func TestQuantilePanics(t *testing.T) {
	for _, f := range []func(){
		func() { Quantile(nil, 0.5) },
		func() { Quantile([]float64{1}, -0.1) },
		func() { Quantile([]float64{1}, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{2, 4, 9}); !almostEqual(got, 5) {
		t.Errorf("Mean = %v, want 5", got)
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3, 10})
	cases := []struct{ x, want float64 }{
		{0, 0}, {1, 0.2}, {2, 0.6}, {2.5, 0.6}, {3, 0.8}, {10, 1}, {100, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); !almostEqual(got, tc.want) {
			t.Errorf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
	if c.Len() != 5 {
		t.Errorf("Len = %d", c.Len())
	}
	if c.Max() != 10 {
		t.Errorf("Max = %v", c.Max())
	}
	if !almostEqual(c.Mean(), 3.6) {
		t.Errorf("Mean = %v", c.Mean())
	}
	if got := c.Quantile(0.5); !almostEqual(got, 2) {
		t.Errorf("Quantile(0.5) = %v", got)
	}
	if c.Table([]float64{1, 2}) == "" {
		t.Error("Table output empty")
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if c.At(5) != 0 || c.Max() != 0 || c.Len() != 0 {
		t.Error("empty CDF misbehaves")
	}
	defer func() {
		if recover() == nil {
			t.Error("Quantile on empty CDF did not panic")
		}
	}()
	c.Quantile(0.5)
}

func TestWeightedCDF(t *testing.T) {
	var w WeightedCDF
	// Two short intervals (weight 1 each) and one long (weight 8): the
	// short ones are 2/3 of the count but only 20% of the weight — the
	// Figure 3 contrast.
	w.Add(1, 1)
	w.Add(1, 1)
	w.Add(100, 8)
	if got := w.At(1); !almostEqual(got, 0.2) {
		t.Errorf("At(1) = %v, want 0.2", got)
	}
	if got := w.At(100); !almostEqual(got, 1) {
		t.Errorf("At(100) = %v, want 1", got)
	}
	if got := w.At(0.5); got != 0 {
		t.Errorf("At(0.5) = %v, want 0", got)
	}
	if w.Len() != 3 {
		t.Errorf("Len = %d", w.Len())
	}
}

func TestWeightedCDFAddAfterQuery(t *testing.T) {
	var w WeightedCDF
	w.Add(5, 1)
	_ = w.At(5)
	w.Add(1, 3) // out of order after sorting
	if got := w.At(1); !almostEqual(got, 0.75) {
		t.Errorf("At(1) = %v, want 0.75", got)
	}
}

func TestWeightedCDFNegativeWeightPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative weight did not panic")
		}
	}()
	var w WeightedCDF
	w.Add(1, -1)
}

func TestWeightedCDFEmpty(t *testing.T) {
	var w WeightedCDF
	if w.At(10) != 0 {
		t.Error("empty WeightedCDF At != 0")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{10, 20, 30})
	for _, x := range []float64{5, 10, 15, 25, 35, 40} {
		h.Add(x)
	}
	// Buckets: (-inf,10] -> 5,10 ; (10,20] -> 15 ; (20,30] -> 25 ; >30 -> 35,40.
	want := []int{2, 1, 1, 2}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, h.Counts[i], w)
		}
	}
	if !almostEqual(h.Fraction(0), 2.0/6.0) {
		t.Errorf("Fraction(0) = %v", h.Fraction(0))
	}
}

func TestHistogramUnsortedBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unsorted bounds did not panic")
		}
	}()
	NewHistogram([]float64{3, 1})
}

func TestHistogramEmptyFraction(t *testing.T) {
	h := NewHistogram([]float64{1})
	if h.Fraction(0) != 0 {
		t.Error("Fraction on empty histogram != 0")
	}
}

// Property: CDF.At is monotone nondecreasing and bounded by [0,1].
func TestQuickCDFMonotone(t *testing.T) {
	f := func(samples []float64, probes []float64) bool {
		for _, s := range samples {
			if math.IsNaN(s) {
				return true
			}
		}
		c := NewCDF(samples)
		sort.Float64s(probes)
		prev := -1.0
		for _, x := range probes {
			if math.IsNaN(x) {
				continue
			}
			p := c.At(x)
			if p < 0 || p > 1 || p < prev {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Summarize ordering Min <= Q1 <= Median <= Q3 <= Max and the
// mean lies within [Min, Max].
func TestQuickSummaryOrdering(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		if n == 0 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		s := Summarize(xs)
		return s.Min <= s.Q1 && s.Q1 <= s.Median && s.Median <= s.Q3 &&
			s.Q3 <= s.Max && s.Mean >= s.Min && s.Mean <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
