package repl

import (
	"sync"
	"sync/atomic"
	"time"

	"prorp/internal/faults"
)

// Lease is a follower's view of primary liveness: every authoritative
// contact with a current-epoch primary (a stream poll answered, an
// announce received) renews it for TTL, and a follower whose lease lapses
// is licensed to stand for election. The lease is time-based on the
// FOLLOWER's clock — the primary grants a relative TTL over the stream
// headers rather than an absolute deadline, so clock skew between nodes
// cannot shorten or stretch the grant.
//
// Epoch boundaries: a renewal is tagged with the epoch it came from, and a
// renewal from an epoch below the highest one seen is ignored — a stale
// primary on the wrong side of a healed partition cannot extend its own
// reign by answering polls.
type Lease struct {
	clock faults.Clock
	ttl   time.Duration

	mu       sync.Mutex
	epoch    uint64
	until    time.Time
	renewals atomic.Uint64
}

// NewLease builds a lease that starts expired: the holder has never heard
// from a primary. Hosts that persisted a lease call RestoreUntil.
func NewLease(clock faults.Clock, ttl time.Duration) *Lease {
	if clock == nil {
		clock = faults.WallClock{}
	}
	return &Lease{clock: clock, ttl: ttl}
}

// TTL reports the configured grant duration.
func (l *Lease) TTL() time.Duration { return l.ttl }

// Renew extends the lease to now+ttl on contact from a primary at epoch e.
// ttl <= 0 uses the configured TTL (the primary sent no override). Contact
// from an epoch below the highest seen is ignored; a higher epoch takes
// over the lease. Returns true when the lease was actually extended.
func (l *Lease) Renew(e uint64, ttl time.Duration) bool {
	if ttl <= 0 {
		ttl = l.ttl
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if e < l.epoch {
		return false
	}
	l.epoch = e
	until := l.clock.Now().Add(ttl)
	if until.After(l.until) {
		l.until = until
	}
	l.renewals.Add(1)
	return true
}

// RestoreUntil rebuilds the lease from persisted state at boot, so a
// reboot inside an unexpired lease does not immediately campaign against
// a primary that was alive moments ago.
func (l *Lease) RestoreUntil(e uint64, until time.Time) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.epoch = e
	l.until = until
}

// Expired reports whether the lease has lapsed at time now.
func (l *Lease) Expired(now time.Time) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return now.After(l.until)
}

// Remaining reports how much lease is left at time now (negative when
// lapsed — by how much).
func (l *Lease) Remaining(now time.Time) time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.until.Sub(now)
}

// Until reports the lease's current expiry instant, for persistence.
func (l *Lease) Until() time.Time {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.until
}

// Epoch reports the epoch of the primary that last renewed the lease.
func (l *Lease) Epoch() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.epoch
}

// Renewals counts successful renewals, for /metrics.
func (l *Lease) Renewals() uint64 { return l.renewals.Load() }
