package repl

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"prorp/internal/faults"
	"prorp/internal/wal"
)

// Replica-initiated election. When a follower's lease lapses it waits a
// randomized election timeout (so candidates desynchronize), then stands:
// it proposes epoch+1, casts a durable self-vote by adopting the proposed
// epoch, and solicits votes from every peer. A voter grants at most one
// vote per epoch — the grant and the adoption are ONE atomic step
// (ObserveEpoch adopts only if the epoch is still beyond everything this
// node has seen, and a grant is issued only when this very call adopted),
// durable before the reply leaves — and only to a candidate whose
// replicated cursor is at or past its own IN THE SAME LINEAGE, so the
// winner provably holds every record any granting voter holds. Cursors
// are offsets into one primary's journal; a voter whose cursor came from
// a different reign abstains rather than comparing incomparable offsets.
// A majority of the cluster (self + peers) promotes the candidate to
// exactly the proposed epoch; the epoch bump fences the old primary
// through the PR 5 machinery the moment any message from the new lineage
// reaches it.

// VoteRequest is a candidate's solicitation, POSTed to /v1/repl/vote.
type VoteRequest struct {
	// Epoch is the proposed epoch (the candidate's epoch + 1 at stand time).
	Epoch uint64 `json:"epoch"`
	// Cursor is the candidate's durable replicated stream position;
	// CursorEpoch is its lineage — the reign epoch of the primary whose
	// journal the cursor is an offset into (0 = unknown).
	Cursor      string `json:"cursor"`
	CursorEpoch uint64 `json:"cursor_epoch,omitempty"`
	// Candidate is the candidate's node id, Addr its base URL (what peers
	// should follow if it wins).
	Candidate string `json:"candidate"`
	Addr      string `json:"addr"`
}

// VoteResponse is the voter's verdict. Epoch is the voter's epoch AFTER
// handling the request — a refused candidate folds it in so its next stand
// proposes past every live competitor. LeaderAddr, when non-empty, names
// the primary the voter currently follows: a candidate refused because a
// newer primary exists learns where to point its follower.
type VoteResponse struct {
	Granted    bool   `json:"granted"`
	Epoch      uint64 `json:"epoch"`
	Reason     string `json:"reason,omitempty"`
	LeaderAddr string `json:"leader_addr,omitempty"`
}

// HandleVote is the voter side of an election, shared by the server's
// /v1/repl/vote handler and the unit tests. local is this node's durable
// replicated cursor (a follower's stream cursor; a primary's own journal
// end) and lineage its reign epoch — the reign of the primary whose
// journal local is an offset into (0 = unknown). leaderAddr is the
// primary this node currently follows (may be empty), and persist must
// durably record the node's state — a vote that could evaporate in a
// crash could be recast for a different candidate.
func HandleVote(n *Node, local wal.Cursor, lineage uint64, leaderAddr string, persist func() error, req VoteRequest) VoteResponse {
	resp := VoteResponse{Epoch: n.Epoch(), LeaderAddr: leaderAddr}
	if req.Epoch <= resp.Epoch {
		resp.Reason = fmt.Sprintf("epoch %d not beyond %d", req.Epoch, resp.Epoch)
		return resp
	}
	cand, err := wal.ParseCursor(req.Cursor)
	if err != nil {
		resp.Reason = "bad cursor: " + err.Error()
		return resp
	}
	// The cursor rules apply only when this voter holds records at all: a
	// zero cursor protects nothing, so it grants on epoch alone. Neither
	// refusal below adopts the epoch — this voter may still grant it to an
	// acceptable candidate this round.
	if !local.IsZero() {
		if req.CursorEpoch != lineage {
			// Cursors are offsets into one primary's journal; across reigns
			// the offsets are unrelated, so "at or past" is meaningless. A
			// voter that cannot compare abstains — wrongly granting could
			// elect a candidate missing quorum-acked records, and wrongly
			// refusing could be forced by an incomparable-but-large cursor.
			resp.Reason = fmt.Sprintf("candidate cursor lineage %d incomparable with ours (%d): abstaining",
				req.CursorEpoch, lineage)
			return resp
		}
		if cand.Before(local) {
			resp.Reason = fmt.Sprintf("candidate cursor %s behind ours (%s)", cand, local)
			return resp
		}
	}
	// The grant IS the adoption, in one atomic step: ObserveEpoch adopts
	// req.Epoch only while it is still beyond everything this node has
	// observed, and reports whether THIS call adopted it. A false return
	// means a concurrent vote — or this node's own candidacy — claimed the
	// epoch first; granting anyway would hand the same epoch to two
	// candidates, and two majorities at one epoch is a split brain that
	// epoch fencing cannot resolve (equal epochs never fence each other).
	if !n.ObserveEpoch(req.Epoch) {
		resp.Epoch = n.Epoch()
		resp.Reason = fmt.Sprintf("epoch %d already granted or superseded (at %d)", req.Epoch, resp.Epoch)
		return resp
	}
	// Persist before the grant leaves the node. A failed persist refuses
	// with the epoch already adopted in memory — conservative: nobody gets
	// this voter's grant for the epoch, which can stall but never split.
	if err := persist(); err != nil {
		resp.Epoch = n.Epoch()
		resp.Reason = "vote not durable: " + err.Error()
		return resp
	}
	resp.Granted = true
	resp.Epoch = n.Epoch()
	return resp
}

// ElectorConfig assembles an Elector.
type ElectorConfig struct {
	// NodeID names this node in vote requests; SelfAddr is the base URL
	// peers should follow if it wins.
	NodeID   string
	SelfAddr string
	// Peers maps every OTHER cluster member's name to its base URL. The
	// electorate is self + peers; a majority of it wins.
	Peers map[string]string
	// Node is the local role/epoch state machine, Lease the primary-liveness
	// lease whose lapse licenses a candidacy.
	Node  *Node
	Lease *Lease
	// Clock drives deadlines, Doer the vote round trips.
	Clock faults.Clock
	Doer  faults.Doer
	// Timeout is the base election timeout: after the lease lapses a
	// candidate waits Timeout + rand(0, Timeout) before standing, so
	// competing candidates desynchronize instead of splitting votes forever.
	Timeout time.Duration
	// Seed seeds the jitter (0 = time-seeded); chaos tests pin it.
	Seed int64
	// Eligible gates candidacy beyond the lease: the host returns false
	// while the node is already an unfenced primary, or has no follower
	// whose cursor would be comparable with the electorate's.
	Eligible func() bool
	// Cursor is the node's durable replicated stream position and its
	// lineage (the reign epoch of the primary whose journal the cursor
	// indexes) — together the vote comparison key.
	Cursor func() (wal.Cursor, uint64)
	// Persist durably records the node state; called for the self-vote and
	// every epoch fold.
	Persist func() error
	// Promote is the win path: make the host the primary of exactly epoch e
	// (stop the follower, persist, announce). An error means the win was
	// overtaken and the elector keeps following.
	Promote func(e uint64) error
	// OnLeader, when non-nil, is called when a refusal reveals a live
	// primary: the host repoints its follower there.
	OnLeader func(addr string, e uint64)
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

// ElectorStats is a point-in-time snapshot of the elector's counters.
type ElectorStats struct {
	Campaigns uint64 // candidacies stood
	Wins      uint64 // elections won (promoted)
	Losses    uint64 // candidacies that did not reach a majority
}

// Elector watches the lease and runs candidacies when it lapses. Build
// with NewElector, then Start; Stop is idempotent and waits for exit.
type Elector struct {
	cfg ElectorConfig
	rng *rand.Rand

	campaigns atomic.Uint64
	wins      atomic.Uint64
	losses    atomic.Uint64

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// defaultElectorClient bounds vote solicitations: a peer that hangs
// mid-election must cost one timeout, not stall the candidacy forever
// (http.DefaultClient would wait indefinitely).
var defaultElectorClient = &http.Client{Timeout: 10 * time.Second}

// NewElector builds an elector; Timeout must be positive.
func NewElector(cfg ElectorConfig) *Elector {
	if cfg.Doer == nil {
		cfg.Doer = defaultElectorClient
	}
	if cfg.Clock == nil {
		cfg.Clock = faults.WallClock{}
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = time.Second
	}
	if cfg.Eligible == nil {
		cfg.Eligible = func() bool { return true }
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &Elector{
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(seed)),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
}

// Start launches the election loop.
func (e *Elector) Start() {
	e.startOnce.Do(func() { go e.run() })
}

// Stop halts the loop and waits for it to exit. Safe to call more than
// once, and before Start.
func (e *Elector) Stop() {
	e.stopOnce.Do(func() { close(e.stop) })
	e.startOnce.Do(func() { close(e.done) })
	<-e.done
}

// Stats snapshots the elector's counters.
func (e *Elector) Stats() ElectorStats {
	return ElectorStats{
		Campaigns: e.campaigns.Load(),
		Wins:      e.wins.Load(),
		Losses:    e.losses.Load(),
	}
}

func (e *Elector) run() {
	defer close(e.done)
	// The pace only bounds how often the logical clock is consulted; every
	// decision (lapse, deadline) is made against Clock.Now, so manual-clock
	// tests control election timing exactly.
	pace := e.cfg.Timeout / 4
	if pace <= 0 {
		pace = 50 * time.Millisecond
	}
	var deadline time.Time
	for {
		select {
		case <-e.stop:
			return
		default:
		}
		now := e.cfg.Clock.Now()
		if !e.cfg.Eligible() || !e.cfg.Lease.Expired(now) {
			deadline = time.Time{} // primary is alive (or we are it); stand down
			e.sleep(pace)
			continue
		}
		if deadline.IsZero() {
			deadline = now.Add(e.jitter())
			e.cfg.Logf("repl elector %s: lease lapsed; standing at %s unless the primary returns",
				e.cfg.NodeID, deadline.Format(time.RFC3339Nano))
			e.sleep(pace)
			continue
		}
		if now.Before(deadline) {
			e.sleep(pace)
			continue
		}
		deadline = time.Time{}
		e.campaign()
		e.sleep(pace)
	}
}

// jitter is the randomized election timeout: [Timeout, 2*Timeout).
func (e *Elector) jitter() time.Duration {
	return e.cfg.Timeout + time.Duration(e.rng.Int63n(int64(e.cfg.Timeout)))
}

// sleep pauses the loop, returning early on Stop. The clock's Sleep runs
// in a goroutine so a manual-clock test can't wedge shutdown.
func (e *Elector) sleep(d time.Duration) {
	ch := make(chan struct{})
	go func() {
		e.cfg.Clock.Sleep(d)
		close(ch)
	}()
	select {
	case <-e.stop:
	case <-ch:
	}
}

// campaign stands one candidacy: durable self-vote, parallel solicitation,
// majority check, promote on win.
func (e *Elector) campaign() {
	proposed := e.cfg.Node.Epoch() + 1
	cur, lineage := e.cfg.Cursor()
	// The self-vote: adopt the proposed epoch durably BEFORE soliciting, so
	// this node can never also grant `proposed` to a competitor.
	if !e.cfg.Node.ObserveEpoch(proposed) {
		return // the epoch moved since we looked; stand down this round
	}
	if e.cfg.Persist != nil {
		if err := e.cfg.Persist(); err != nil {
			e.cfg.Logf("repl elector %s: self-vote for epoch %d not durable: %v", e.cfg.NodeID, proposed, err)
			return
		}
	}
	e.campaigns.Add(1)
	e.cfg.Logf("repl elector %s: standing for epoch %d at cursor %s", e.cfg.NodeID, proposed, cur)

	req := VoteRequest{Epoch: proposed, Cursor: cur.String(), CursorEpoch: lineage,
		Candidate: e.cfg.NodeID, Addr: e.cfg.SelfAddr}
	type outcome struct {
		peer string
		resp VoteResponse
		err  error
	}
	results := make(chan outcome, len(e.cfg.Peers))
	for name, base := range e.cfg.Peers {
		go func(name, base string) {
			resp, err := e.solicit(base, req)
			results <- outcome{peer: name, resp: resp, err: err}
		}(name, base)
	}

	votes := 1 // self
	needed := (1+len(e.cfg.Peers))/2 + 1
	var leaderAddr string
	var leaderEpoch uint64
	for range e.cfg.Peers {
		out := <-results
		if out.err != nil {
			e.cfg.Logf("repl elector %s: vote from %s: %v", e.cfg.NodeID, out.peer, out.err)
			continue
		}
		if out.resp.Granted {
			votes++
			continue
		}
		// Fold the voter's epoch so the next stand proposes past it, and
		// learn the leader it follows, if any.
		if e.cfg.Node.ObserveEpoch(out.resp.Epoch) && e.cfg.Persist != nil {
			if err := e.cfg.Persist(); err != nil {
				e.cfg.Logf("repl elector %s: persisting folded epoch %d: %v", e.cfg.NodeID, out.resp.Epoch, err)
			}
		}
		if out.resp.LeaderAddr != "" && out.resp.Epoch >= leaderEpoch {
			leaderAddr, leaderEpoch = out.resp.LeaderAddr, out.resp.Epoch
		}
		e.cfg.Logf("repl elector %s: %s refused epoch %d: %s", e.cfg.NodeID, out.peer, proposed, out.resp.Reason)
	}

	if votes < needed {
		e.losses.Add(1)
		e.cfg.Logf("repl elector %s: lost epoch %d (%d of %d votes, needed %d)",
			e.cfg.NodeID, proposed, votes, 1+len(e.cfg.Peers), needed)
		if leaderAddr != "" && leaderAddr != e.cfg.SelfAddr && e.cfg.OnLeader != nil {
			e.cfg.OnLeader(leaderAddr, leaderEpoch)
		}
		return
	}
	if err := e.cfg.Promote(proposed); err != nil {
		e.losses.Add(1)
		e.cfg.Logf("repl elector %s: won epoch %d but promotion refused: %v", e.cfg.NodeID, proposed, err)
		return
	}
	e.wins.Add(1)
	e.cfg.Logf("repl elector %s: won epoch %d with %d of %d votes", e.cfg.NodeID, proposed, votes, 1+len(e.cfg.Peers))
}

// solicit performs one vote round trip.
func (e *Elector) solicit(base string, vreq VoteRequest) (VoteResponse, error) {
	body, err := json.Marshal(vreq)
	if err != nil {
		return VoteResponse{}, err
	}
	req, err := http.NewRequest(http.MethodPost, base+"/v1/repl/vote", bytes.NewReader(body))
	if err != nil {
		return VoteResponse{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(HeaderEpoch, fmt.Sprint(e.cfg.Node.Epoch()))
	req.Header.Set(HeaderSum, BodySum(body))
	resp, err := e.cfg.Doer.Do(req)
	if err != nil {
		return VoteResponse{}, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return VoteResponse{}, fmt.Errorf("voter said %d", resp.StatusCode)
	}
	rbody, err := VerifiedBody(resp, 1<<16)
	if err != nil {
		return VoteResponse{}, fmt.Errorf("vote response: %v", err)
	}
	var out VoteResponse
	if err := json.Unmarshal(rbody, &out); err != nil {
		return VoteResponse{}, fmt.Errorf("bad vote response: %v", err)
	}
	return out, nil
}
