package repl

import (
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
)

// Control-plane messages (votes, reign announces) ride JSON bodies over
// the same lossy transport as the replication stream. The stream protects
// itself with per-record frame checksums; a bare JSON body has no such
// armor, and a single flipped bit can turn `"epoch":1` into `"epoch":5` —
// an authoritative-looking lie that would fence a healthy primary the
// moment it folded the number in. Control-plane bodies therefore travel
// with a CRC-32C of the exact bytes in HeaderSum, and receivers refuse to
// decode a body that does not match. Headers travel outside the damaged
// payload, like the stream's cursor and epoch headers.

// HeaderSum carries the hex-encoded CRC-32C (Castagnoli) of a
// control-plane JSON body.
const HeaderSum = "X-Repl-Sum"

var sumTable = crc32.MakeTable(crc32.Castagnoli)

// BodySum computes the HeaderSum value for a control-plane body.
func BodySum(body []byte) string {
	return fmt.Sprintf("%08x", crc32.Checksum(body, sumTable))
}

// VerifiedBody reads a control-plane response body (up to limit bytes)
// and checks it against the sender's HeaderSum. A missing or mismatched
// sum is a transport failure: callers treat the round trip as dropped and
// retry, never acting on the bytes.
func VerifiedBody(resp *http.Response, limit int64) ([]byte, error) {
	body, err := io.ReadAll(io.LimitReader(resp.Body, limit))
	if err != nil {
		return nil, err
	}
	want := resp.Header.Get(HeaderSum)
	if want == "" {
		return nil, fmt.Errorf("control response missing %s", HeaderSum)
	}
	if got := BodySum(body); got != want {
		return nil, fmt.Errorf("control response damaged in flight: sum %s, want %s", got, want)
	}
	return body, nil
}
