// Package repl is the primary/replica replication runtime: it ships the
// event journal (internal/wal) over HTTP from a primary to any number of
// read replicas, and manages the role/epoch state machine that makes
// failover safe.
//
// The model, in one paragraph: the primary's WAL already is the
// authoritative, acknowledged event stream (every mutation is journaled
// before it is acknowledged), so replication is just shipping that stream.
// A follower pulls batches of CRC-framed records from
// GET /v1/repl/stream?after=<segment:offset>, appends each record to its
// OWN journal before applying it to its fleet (the same
// journalize-before-apply discipline the primary uses), so a replica is a
// crash-restartable node at every instant. Promotion is explicit
// (POST /v1/repl/promote) and bumps the cursor epoch; a primary that
// observes a higher epoch fences itself and refuses writes from then on,
// so a network that heals after a failover cannot yield two acking
// primaries.
//
// What is and is not guaranteed (see DESIGN.md §9): acknowledged writes
// that reached the replica's durable journal survive promotion; writes
// acknowledged by the old primary but not yet replicated are LOST on
// promote — replication is asynchronous, and the lag gauges exist
// precisely so operators can bound that window.
package repl

import (
	"fmt"
	"sync"
)

// Role is a node's replication role.
type Role int

const (
	// RolePrimary accepts writes and serves the stream. The zero value, so
	// a zero Config keeps the pre-replication single-node behavior.
	RolePrimary Role = iota
	// RoleReplica pulls the stream, serves reads, and rejects writes.
	RoleReplica
)

// ParseRole maps the -role flag onto a Role.
func ParseRole(s string) (Role, error) {
	switch s {
	case "primary", "":
		return RolePrimary, nil
	case "replica":
		return RoleReplica, nil
	}
	return 0, fmt.Errorf("repl: unknown role %q (want primary or replica)", s)
}

func (r Role) String() string {
	switch r {
	case RolePrimary:
		return "primary"
	case RoleReplica:
		return "replica"
	}
	return fmt.Sprintf("Role(%d)", int(r))
}

// Node is the role/epoch state machine of one process. Epochs are the
// fencing token: every promotion bumps the epoch, every stream request and
// response carries it, and a primary that observes a higher epoch than its
// own fences itself — it keeps serving reads but can never ack another
// write, even if the network partition that caused the failover heals.
type Node struct {
	mu     sync.Mutex
	role   Role
	epoch  uint64
	fenced bool
}

// NewNode builds a node at the given role and epoch (0 means epoch 1, the
// genesis epoch).
func NewNode(role Role, epoch uint64) *Node {
	if epoch == 0 {
		epoch = 1
	}
	return &Node{role: role, epoch: epoch}
}

// RestoreNode rebuilds a node from persisted state. fenced matters only
// for a primary: a demoted primary that restarts must come back fenced,
// or the restart would quietly un-demote it.
func RestoreNode(role Role, epoch uint64, fenced bool) *Node {
	n := NewNode(role, epoch)
	n.fenced = fenced && role == RolePrimary
	return n
}

// Role reports the node's current role.
func (n *Node) Role() Role {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role
}

// Epoch reports the highest epoch the node has observed.
func (n *Node) Epoch() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.epoch
}

// Fenced reports whether the node is a demoted primary: still serving
// reads, permanently refusing writes.
func (n *Node) Fenced() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.fenced
}

// CanAcceptWrites reports whether the node may acknowledge mutations: it
// is the primary and has not been fenced by a newer epoch.
func (n *Node) CanAcceptWrites() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role == RolePrimary && !n.fenced
}

// Promote makes the node the primary of a new epoch and returns that
// epoch. Idempotent on an unfenced primary (no epoch bump — it already
// owns the current one). A fenced primary or a replica starts a fresh
// epoch, which is what fences the old primary when the streams reconnect.
func (n *Node) Promote() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.role == RolePrimary && !n.fenced {
		return n.epoch
	}
	n.role = RolePrimary
	n.epoch++
	n.fenced = false
	return n.epoch
}

// PromoteTo makes the node the unfenced primary of exactly epoch e — the
// election-win path. The winner already owns e: it adopted e via
// ObserveEpoch when it cast its self-vote, and every granting voter
// adopted e too, so no other candidate can collect a majority for it.
// Returns false (and changes nothing) when the node has observed an epoch
// beyond e — a newer candidacy or primary overtook this one mid-campaign,
// and promoting under a stale epoch would be split brain.
func (n *Node) PromoteTo(e uint64) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if e < n.epoch {
		return false
	}
	n.role = RolePrimary
	n.epoch = e
	n.fenced = false
	return true
}

// ObserveEpoch folds in an epoch seen on the wire. Observing a higher
// epoch adopts it; if the node is an unfenced primary, that observation
// fences it (someone was promoted past us). Returns true when this call
// changed the node's state (epoch adopted and/or fence raised) — callers
// persist the node state when it does.
func (n *Node) ObserveEpoch(e uint64) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if e <= n.epoch {
		return false
	}
	n.epoch = e
	if n.role == RolePrimary && !n.fenced {
		n.fenced = true
	}
	return true
}
