package repl

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"prorp/internal/faults"
	"prorp/internal/wal"
)

// Stream protocol headers. Every stream and snapshot exchange carries the
// sender's epoch, so fencing information propagates with the data path
// instead of needing a separate channel.
const (
	HeaderEpoch      = "X-Repl-Epoch"
	HeaderCursor     = "X-Repl-Cursor"      // effective batch start
	HeaderNextCursor = "X-Repl-Next-Cursor" // cursor after the batch
	HeaderLagRecords = "X-Repl-Lag-Records" // records still behind after the batch
	HeaderNode       = "X-Repl-Node"        // follower's node id (quorum coverage key)
	HeaderLeaseTTL   = "X-Repl-Lease-Ms"    // primary's lease grant, relative ms
	// HeaderReign is the reign epoch of the journal being served: the epoch
	// at which the serving primary was promoted, NOT its current epoch — a
	// fenced ex-primary's epoch moves on while its journal stays in the old
	// reign's cursor space. Followers record it as the lineage of their
	// cursor, the vote-comparison guard (see election.go).
	HeaderReign = "X-Repl-Reign"
)

// FollowerConfig assembles a Follower.
type FollowerConfig struct {
	// PrimaryURL is the primary's base URL ("http://host:port").
	PrimaryURL string
	// Doer performs the HTTP round trips; chaos tests wrap it in a
	// faults.FaultDoer. Default http.DefaultClient.
	Doer faults.Doer
	// Clock paces the poll loop (default wall clock).
	Clock faults.Clock
	// PollInterval is the idle/error poll cadence (default 250ms). While
	// behind, the follower polls continuously.
	PollInterval time.Duration
	// MaxBatchBytes caps one stream batch (default 256 KiB).
	MaxBatchBytes int
	// Node is the local role/epoch state machine.
	Node *Node
	// Apply journalizes one streamed record into the local WAL and applies
	// it to the local fleet — the replica's journalize-before-apply path. A
	// non-nil error stops the batch; the cursor advances only past applied
	// records, so the record is re-streamed on the next poll.
	Apply func(rec wal.Record) error
	// Persist, when non-nil, durably records the follower's epoch and
	// cursor. sync=true means the write must be fsynced before returning
	// (epoch changes — fencing must survive a crash); cursor-only progress
	// is best-effort (a stale cursor merely re-streams idempotent records).
	Persist func(epoch uint64, c wal.Cursor, sync bool) error
	// Resync, when non-nil, performs a snapshot resync after the primary
	// reports the cursor unusable (compacted or ahead): fetch the primary's
	// snapshot, swap the local fleet, and return the cursor to stream from
	// plus the reign epoch of the journal it indexes (0 if the primary did
	// not say).
	Resync func(primaryEpoch uint64) (wal.Cursor, uint64, error)
	// ResyncOnStart forces a snapshot resync before the first stream poll.
	// The host sets it when the node boots with local state but no stream
	// cursor covering it — a rebooted ex-primary, or a seeded snapshot.
	// Records carry no sequence numbers and events are not idempotent, so
	// streaming from genesis on top of existing state double-applies the
	// overlap and diverges; adopting the primary's snapshot wholesale is
	// the only safe entry into its lineage.
	ResyncOnStart bool
	// NodeID, when non-empty, is sent as X-Repl-Node on every poll so the
	// primary can attribute the poll's cursor to this follower in its
	// quorum-coverage map.
	NodeID string
	// OnPrimaryContact, when non-nil, is called after every authoritative
	// response from a current-epoch primary (200/204, and the resync
	// verdicts 410/416) with that primary's epoch and its lease grant (0 if
	// the response carried none). The host renews its primary-liveness
	// lease here.
	OnPrimaryContact func(epoch uint64, ttl time.Duration)
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

// FollowerStats is a point-in-time snapshot of the follower's counters.
type FollowerStats struct {
	Batches        uint64 // 200 responses applied (fully or partially)
	Records        uint64 // records applied
	CaughtUpPolls  uint64 // 204 responses
	StreamErrors   uint64 // transport, protocol, apply, and persist errors
	CorruptBatches uint64 // batches cut short by framing/CRC damage
	Resyncs        uint64 // snapshot resyncs completed
}

// Follower is the replica's pull loop. Build with NewFollower, then Start;
// Stop is idempotent and waits for the loop to exit.
type Follower struct {
	cfg FollowerConfig

	mu              sync.Mutex
	primary         string // mutable: failover repoints the follower
	needResync      bool   // snapshot resync required before the next poll
	cursor          wal.Cursor
	sourceReign     uint64 // lineage of cursor: reign epoch of the journal it indexes
	caughtUp        bool
	lagRecords      int64
	lastAppliedUnix int64
	lastErr         string

	batches        atomic.Uint64
	records        atomic.Uint64
	caughtUpPolls  atomic.Uint64
	streamErrors   atomic.Uint64
	corruptBatches atomic.Uint64
	resyncs        atomic.Uint64

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// defaultFollowerClient bounds every stream poll and snapshot fetch:
// http.DefaultClient has no timeout, and a primary that accepts the
// connection then hangs would wedge the poll loop forever — the follower
// would neither stream nor notice the primary is gone.
var defaultFollowerClient = &http.Client{Timeout: 30 * time.Second}

// NewFollower builds a follower that will stream from cursor onward.
func NewFollower(cfg FollowerConfig, cursor wal.Cursor) *Follower {
	if cfg.Doer == nil {
		cfg.Doer = defaultFollowerClient
	}
	if cfg.Clock == nil {
		cfg.Clock = faults.WallClock{}
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 250 * time.Millisecond
	}
	if cfg.MaxBatchBytes <= 0 {
		cfg.MaxBatchBytes = 256 << 10
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	cfg.PrimaryURL = strings.TrimRight(cfg.PrimaryURL, "/")
	return &Follower{
		cfg:        cfg,
		primary:    cfg.PrimaryURL,
		needResync: cfg.ResyncOnStart,
		cursor:     cursor,
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
}

// PrimaryURL reports the primary the follower currently polls.
func (f *Follower) PrimaryURL() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.primary
}

// SetPrimary repoints the follower at a different primary — the failover
// path, driven by an announce from an election winner. The local cursor
// addresses the OLD primary's journal, and cursor spaces are per-lineage
// (each node journals streamed records at its own offsets), so repointing
// forces a snapshot resync rather than resuming the cursor against a
// journal it never came from.
func (f *Follower) SetPrimary(url string) {
	url = strings.TrimRight(url, "/")
	f.mu.Lock()
	defer f.mu.Unlock()
	if url == "" || url == f.primary {
		return
	}
	f.primary = url
	f.needResync = true
	f.sourceReign = 0 // the new primary's journal is a different lineage
	f.caughtUp = false
}

// Start launches the pull loop.
func (f *Follower) Start() {
	f.startOnce.Do(func() { go f.run() })
}

// Stop halts the pull loop and waits for it to exit. Safe to call more
// than once, and before Start (the loop then never runs).
func (f *Follower) Stop() {
	f.stopOnce.Do(func() { close(f.stop) })
	f.startOnce.Do(func() { close(f.done) }) // never started: release waiters
	<-f.done
}

// Cursor reports the follower's current stream position.
func (f *Follower) Cursor() wal.Cursor {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cursor
}

// SourceReign reports the lineage of the follower's cursor: the reign
// epoch of the primary whose journal the cursor indexes, 0 while unknown
// (never polled, or repointed and not yet resynced).
func (f *Follower) SourceReign() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.sourceReign
}

// Stats snapshots the follower's counters.
func (f *Follower) Stats() FollowerStats {
	return FollowerStats{
		Batches:        f.batches.Load(),
		Records:        f.records.Load(),
		CaughtUpPolls:  f.caughtUpPolls.Load(),
		StreamErrors:   f.streamErrors.Load(),
		CorruptBatches: f.corruptBatches.Load(),
		Resyncs:        f.resyncs.Load(),
	}
}

// LagRecords reports how many records behind the primary the follower was
// at its last successful poll.
func (f *Follower) LagRecords() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lagRecords
}

// LagSeconds estimates replication lag in seconds at time now: zero while
// caught up, otherwise the age of the newest applied record. Before the
// first applied record it reports zero — unknown, not infinite.
func (f *Follower) LagSeconds(now time.Time) float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.caughtUp || f.lastAppliedUnix == 0 {
		return 0
	}
	d := now.Unix() - f.lastAppliedUnix
	if d < 0 {
		return 0
	}
	return float64(d)
}

// LastError reports the most recent stream error, for /healthz.
func (f *Follower) LastError() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lastErr
}

func (f *Follower) run() {
	defer close(f.done)
	for {
		select {
		case <-f.stop:
			return
		default:
		}
		var d time.Duration
		f.mu.Lock()
		forced := f.needResync
		f.mu.Unlock()
		if forced {
			// Boot state no cursor covers, or a repoint to a new primary:
			// adopt its snapshot before streaming (see SetPrimary).
			d = f.resync(0, 0)
		} else {
			d = f.pollOnce()
		}
		if d > 0 {
			f.sleep(d)
		}
	}
}

// sleep pauses between polls, returning early when Stop is called. The
// clock's Sleep runs in a goroutine so a manual-clock test can't wedge
// shutdown.
func (f *Follower) sleep(d time.Duration) {
	ch := make(chan struct{})
	go func() {
		f.cfg.Clock.Sleep(d)
		close(ch)
	}()
	select {
	case <-f.stop:
	case <-ch:
	}
}

func (f *Follower) fail(format string, args ...any) time.Duration {
	f.streamErrors.Add(1)
	msg := fmt.Sprintf(format, args...)
	f.mu.Lock()
	f.lastErr = msg
	f.caughtUp = false
	f.mu.Unlock()
	f.cfg.Logf("repl follower: %s", msg)
	return f.cfg.PollInterval
}

// pollOnce performs one stream exchange and returns how long to sleep
// before the next (0 = poll again immediately; there is more to pull).
func (f *Follower) pollOnce() time.Duration {
	cur := f.Cursor()
	url := fmt.Sprintf("%s/v1/repl/stream?after=%s&max=%d", f.PrimaryURL(), cur, f.cfg.MaxBatchBytes)
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return f.fail("building request: %v", err)
	}
	req.Header.Set(HeaderEpoch, strconv.FormatUint(f.cfg.Node.Epoch(), 10))
	if f.cfg.NodeID != "" {
		req.Header.Set(HeaderNode, f.cfg.NodeID)
	}
	resp, err := f.cfg.Doer.Do(req)
	if err != nil {
		return f.fail("stream %s: %v", cur, err)
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()

	primaryEpoch, _ := strconv.ParseUint(resp.Header.Get(HeaderEpoch), 10, 64)
	if primaryEpoch > 0 && primaryEpoch < f.cfg.Node.Epoch() {
		// A stale primary from a previous epoch (a healed partition):
		// never apply its stream — and never renew the lease off it.
		return f.fail("ignoring stale primary at epoch %d (ours is %d)", primaryEpoch, f.cfg.Node.Epoch())
	}
	if f.cfg.Node.ObserveEpoch(primaryEpoch) && f.cfg.Persist != nil {
		if err := f.cfg.Persist(f.cfg.Node.Epoch(), cur, true); err != nil {
			return f.fail("persisting adopted epoch %d: %v", primaryEpoch, err)
		}
	}
	// Authoritative contact from a current-epoch primary renews the lease;
	// that includes the resync verdicts — a primary telling us to resync is
	// very much alive.
	renew := func() {
		if f.cfg.OnPrimaryContact != nil && primaryEpoch > 0 {
			ttlMs, _ := strconv.ParseInt(resp.Header.Get(HeaderLeaseTTL), 10, 64)
			f.cfg.OnPrimaryContact(primaryEpoch, time.Duration(ttlMs)*time.Millisecond)
		}
	}

	// The reign header tags the journal this cursor indexes; learned on
	// every authoritative data-path response so even a genesis-attached
	// replica (which never resyncs) knows its lineage before it votes.
	reign, _ := strconv.ParseUint(resp.Header.Get(HeaderReign), 10, 64)

	switch resp.StatusCode {
	case http.StatusOK:
		renew()
		return f.applyBatch(resp, reign)
	case http.StatusNoContent:
		renew()
		f.caughtUpPolls.Add(1)
		f.mu.Lock()
		f.caughtUp = true
		f.lagRecords = 0
		f.lastErr = ""
		if reign > 0 {
			f.sourceReign = reign
		}
		f.mu.Unlock()
		return f.cfg.PollInterval
	case http.StatusGone, http.StatusRequestedRangeNotSatisfiable:
		// Cursor unusable: compacted below retained history (410) or ahead
		// of the primary's lineage (416). Both mean snapshot resync.
		renew()
		return f.resync(primaryEpoch, resp.StatusCode)
	default:
		return f.fail("stream %s: primary said %d", cur, resp.StatusCode)
	}
}

func (f *Follower) applyBatch(resp *http.Response, reign uint64) time.Duration {
	start, err := wal.ParseCursor(resp.Header.Get(HeaderCursor))
	if err != nil {
		return f.fail("bad %s header: %v", HeaderCursor, err)
	}
	next, err := wal.ParseCursor(resp.Header.Get(HeaderNextCursor))
	if err != nil {
		return f.fail("bad %s header: %v", HeaderNextCursor, err)
	}
	hdrLag, _ := strconv.ParseInt(resp.Header.Get(HeaderLagRecords), 10, 64)
	// A batch never crosses a segment, so the cursor span is its declared
	// length. A body shorter than declared was cut in flight — crucially,
	// even when the cut lands exactly on a frame boundary and the framing
	// alone would scan clean.
	if next.Seg != start.Seg || next.Off < start.Off {
		return f.fail("batch cursors %s..%s span segments", start, next)
	}
	declared := next.Off - start.Off
	// One extra frame of headroom: a batch is never larger than what we
	// asked for, so anything bigger is damage, not data.
	body, err := io.ReadAll(io.LimitReader(resp.Body, int64(f.cfg.MaxBatchBytes)+wal.FrameSize))
	if err != nil {
		return f.fail("reading batch at %s: %v", start, err)
	}
	if int64(len(body)) > declared {
		return f.fail("batch at %s is %d bytes, declared %d", start, len(body), declared)
	}

	applied := 0
	consumed, torn, aerr := wal.ScanStream(body, func(rec wal.Record) error {
		if err := f.cfg.Apply(rec); err != nil {
			return err
		}
		applied++
		f.mu.Lock()
		f.lastAppliedUnix = rec.Unix
		f.mu.Unlock()
		return nil
	})
	f.records.Add(uint64(applied))
	if applied > 0 {
		f.batches.Add(1)
	}

	// Advance exactly past what was applied: the full batch's next cursor
	// on a clean scan of the declared length, start+consumed otherwise.
	// Everything streamed is idempotent under re-apply, so a conservative
	// cursor is always safe.
	full := !torn && aerr == nil && consumed == declared
	cut := !full && aerr == nil && !torn // truncated on a frame boundary
	newCur := next
	if !full {
		newCur = wal.Cursor{Seg: start.Seg, Off: start.Off + consumed}
	}
	lag := hdrLag
	if !full {
		lag += (declared - consumed) / wal.FrameSize
	}
	f.mu.Lock()
	f.cursor = newCur
	if reign > 0 {
		f.sourceReign = reign
	}
	f.lagRecords = lag
	f.caughtUp = full && lag == 0
	if aerr == nil {
		f.lastErr = ""
	}
	f.mu.Unlock()
	if f.cfg.Persist != nil {
		if err := f.cfg.Persist(f.cfg.Node.Epoch(), newCur, false); err != nil {
			return f.fail("persisting cursor %s: %v", newCur, err)
		}
	}
	switch {
	case aerr != nil:
		return f.fail("applying record at %s+%d: %v", start, consumed, aerr)
	case torn, cut:
		// The batch was cut or corrupted in flight; re-poll after a beat
		// rather than hammering a damaged path.
		f.corruptBatches.Add(1)
		f.cfg.Logf("repl follower: batch at %s damaged after %d of %d bytes; re-polling", start, consumed, declared)
		return f.cfg.PollInterval
	case lag > 0:
		return 0 // more to pull; go again immediately
	default:
		return f.cfg.PollInterval
	}
}

func (f *Follower) resync(primaryEpoch uint64, status int) time.Duration {
	if f.cfg.Resync == nil {
		return f.fail("cursor %s unusable (%d) and no resync configured", f.Cursor(), status)
	}
	if status == 0 {
		f.cfg.Logf("repl follower: local state predates the stream cursor; snapshot resync before first poll")
	} else {
		f.cfg.Logf("repl follower: cursor %s unusable (%d); snapshot resync", f.Cursor(), status)
	}
	cur, reign, err := f.cfg.Resync(primaryEpoch)
	if err != nil {
		return f.fail("snapshot resync: %v", err)
	}
	f.resyncs.Add(1)
	f.mu.Lock()
	f.cursor = cur
	if reign > 0 {
		// Learn the lineage at resync, not only at the first poll after it:
		// a replica that resynced but lost the primary before polling must
		// still be able to compare cursors when it stands or votes.
		f.sourceReign = reign
	}
	f.needResync = false
	f.caughtUp = false
	f.lastErr = ""
	f.mu.Unlock()
	if f.cfg.Persist != nil {
		if err := f.cfg.Persist(f.cfg.Node.Epoch(), cur, true); err != nil {
			return f.fail("persisting resynced cursor %s: %v", cur, err)
		}
	}
	return 0
}
