package repl

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"prorp/internal/faults"
	"prorp/internal/wal"
)

func TestParseRole(t *testing.T) {
	for s, want := range map[string]Role{"primary": RolePrimary, "": RolePrimary, "replica": RoleReplica} {
		got, err := ParseRole(s)
		if err != nil || got != want {
			t.Fatalf("ParseRole(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseRole("standby"); err == nil {
		t.Fatal("ParseRole accepted garbage")
	}
	if RolePrimary.String() != "primary" || RoleReplica.String() != "replica" {
		t.Fatal("role strings")
	}
	if s := Role(7).String(); s != "Role(7)" {
		t.Fatalf("unknown role renders %q", s)
	}
}

func TestRestoreNode(t *testing.T) {
	// A demoted primary must come back fenced, at its persisted epoch.
	p := RestoreNode(RolePrimary, 4, true)
	if p.Epoch() != 4 || !p.Fenced() || p.CanAcceptWrites() {
		t.Fatalf("restored fenced primary: epoch=%d fenced=%v canWrite=%v", p.Epoch(), p.Fenced(), p.CanAcceptWrites())
	}
	// The fence flag only means something on a primary: a replica never
	// acks writes anyway, and restoring it fenced would survive a later
	// promotion the wrong way.
	r := RestoreNode(RoleReplica, 4, true)
	if r.Fenced() || r.CanAcceptWrites() {
		t.Fatalf("restored replica: fenced=%v canWrite=%v", r.Fenced(), r.CanAcceptWrites())
	}
	if e := r.Promote(); e != 5 || !r.CanAcceptWrites() {
		t.Fatalf("promoting restored replica: epoch=%d canWrite=%v", e, r.CanAcceptWrites())
	}
	// Epoch 0 on disk is a node that never persisted: genesis epoch 1.
	if n := RestoreNode(RolePrimary, 0, false); n.Epoch() != 1 {
		t.Fatalf("restored genesis epoch = %d", n.Epoch())
	}
}

func TestLagSecondsEdges(t *testing.T) {
	f := NewFollower(FollowerConfig{Node: NewNode(RoleReplica, 1)}, wal.Cursor{})
	// No applied record yet: lag is unknown, reported as zero.
	if got := f.LagSeconds(time.Unix(50, 0)); got != 0 {
		t.Fatalf("lag before first record = %v", got)
	}
	f.mu.Lock()
	f.lastAppliedUnix = 40
	f.caughtUp = false
	f.mu.Unlock()
	if got := f.LagSeconds(time.Unix(50, 0)); got != 10 {
		t.Fatalf("lag = %v, want 10", got)
	}
	// Clock skew (record timestamped ahead of now) clamps to zero.
	if got := f.LagSeconds(time.Unix(30, 0)); got != 0 {
		t.Fatalf("skewed lag = %v, want 0", got)
	}
}

func TestNodeEpochFencing(t *testing.T) {
	p := NewNode(RolePrimary, 0)
	if p.Epoch() != 1 || !p.CanAcceptWrites() || p.Fenced() {
		t.Fatalf("genesis primary: epoch=%d canWrite=%v fenced=%v", p.Epoch(), p.CanAcceptWrites(), p.Fenced())
	}
	// Promote on an unfenced primary is a no-op: it already owns the epoch.
	if e := p.Promote(); e != 1 {
		t.Fatalf("idempotent promote bumped epoch to %d", e)
	}
	// Observing its own or an older epoch changes nothing.
	if p.ObserveEpoch(1) || p.ObserveEpoch(0) {
		t.Fatal("observing <= own epoch reported a change")
	}
	// A higher epoch fences the primary, permanently.
	if !p.ObserveEpoch(3) || !p.Fenced() || p.CanAcceptWrites() || p.Epoch() != 3 {
		t.Fatalf("after observing epoch 3: fenced=%v canWrite=%v epoch=%d", p.Fenced(), p.CanAcceptWrites(), p.Epoch())
	}
	// Promoting a fenced primary starts a fresh epoch and unfences.
	if e := p.Promote(); e != 4 || !p.CanAcceptWrites() || p.Fenced() {
		t.Fatalf("promote after fence: epoch=%d canWrite=%v fenced=%v", e, p.CanAcceptWrites(), p.Fenced())
	}

	r := NewNode(RoleReplica, 1)
	if r.CanAcceptWrites() {
		t.Fatal("replica accepts writes")
	}
	// A replica adopts higher epochs without raising the fence flag.
	if !r.ObserveEpoch(9) || r.Fenced() || r.Epoch() != 9 {
		t.Fatalf("replica observe: fenced=%v epoch=%d", r.Fenced(), r.Epoch())
	}
	if e := r.Promote(); e != 10 || r.Role() != RolePrimary || !r.CanAcceptWrites() {
		t.Fatalf("replica promote: epoch=%d role=%v", e, r.Role())
	}
}

// miniPrimary implements the primary's stream endpoint straight over a
// wal.Journal — the same protocol internal/server serves — so follower
// tests exercise the real wire format.
type miniPrimary struct {
	mu    sync.Mutex
	j     *wal.Journal
	epoch uint64
}

func (p *miniPrimary) setEpoch(e uint64) {
	p.mu.Lock()
	p.epoch = e
	p.mu.Unlock()
}

func (p *miniPrimary) Do(req *http.Request) (*http.Response, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	q := req.URL.Query()
	c, err := wal.ParseCursor(q.Get("after"))
	if err != nil {
		return nil, err
	}
	max, _ := strconv.Atoi(q.Get("max"))
	rec := httptest.NewRecorder()
	rec.Header().Set(HeaderEpoch, strconv.FormatUint(p.epoch, 10))
	data, start, next, rerr := p.j.ReadAfter(c, max)
	switch {
	case errors.Is(rerr, wal.ErrCursorCompacted):
		rec.WriteHeader(http.StatusGone)
	case errors.Is(rerr, wal.ErrCursorAhead):
		rec.WriteHeader(http.StatusRequestedRangeNotSatisfiable)
	case rerr != nil:
		rec.WriteHeader(http.StatusInternalServerError)
	case len(data) == 0:
		rec.WriteHeader(http.StatusNoContent)
	default:
		rec.Header().Set(HeaderCursor, start.String())
		rec.Header().Set(HeaderNextCursor, next.String())
		rec.Header().Set(HeaderLagRecords, strconv.FormatInt(p.j.TailGapRecords(next), 10))
		rec.Write(data)
	}
	return rec.Result(), nil
}

func openJournal(t *testing.T) *wal.Journal {
	t.Helper()
	j, err := wal.Open(wal.Config{Dir: t.TempDir(), Fsync: wal.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	return j
}

func appendLogins(t *testing.T, j *wal.Journal, start, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := j.Append(wal.Record{Type: wal.RecordLogin, ID: int64(start + i), Unix: int64(start + i)}); err != nil {
			t.Fatal(err)
		}
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

type collector struct {
	mu  sync.Mutex
	ids []int64
}

func (c *collector) apply(rec wal.Record) error {
	c.mu.Lock()
	c.ids = append(c.ids, rec.ID)
	c.mu.Unlock()
	return nil
}

func (c *collector) snapshot() []int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]int64{}, c.ids...)
}

func TestFollowerStreamsAndTracksLag(t *testing.T) {
	j := openJournal(t)
	appendLogins(t, j, 0, 10)
	primary := &miniPrimary{j: j, epoch: 1}

	var got collector
	var persisted struct {
		mu    sync.Mutex
		cur   wal.Cursor
		epoch uint64
	}
	f := NewFollower(FollowerConfig{
		PrimaryURL:    "http://primary",
		Doer:          primary,
		PollInterval:  time.Millisecond,
		MaxBatchBytes: int(3 * wal.FrameSize), // force multiple batches
		Node:          NewNode(RoleReplica, 1),
		Apply:         got.apply,
		Persist: func(e uint64, c wal.Cursor, sync bool) error {
			persisted.mu.Lock()
			persisted.epoch, persisted.cur = e, c
			persisted.mu.Unlock()
			return nil
		},
		Logf: t.Logf,
	}, wal.Cursor{})
	f.Start()
	defer f.Stop()

	waitFor(t, "initial catch-up", func() bool { return f.Stats().Records == 10 && f.LagRecords() == 0 })
	appendLogins(t, j, 10, 5)
	waitFor(t, "tail catch-up", func() bool { return f.Stats().Records == 15 && f.LagRecords() == 0 })
	waitFor(t, "a caught-up (204) poll", func() bool { return f.Stats().CaughtUpPolls >= 1 })
	f.Stop()

	ids := got.snapshot()
	for i, id := range ids {
		if id != int64(i) {
			t.Fatalf("record %d has id %d: stream out of order (%v)", i, id, ids)
		}
	}
	if st := f.Stats(); st.CaughtUpPolls == 0 || st.Batches < 2 {
		t.Fatalf("stats %+v: want caught-up polls and multiple batches", st)
	}
	persisted.mu.Lock()
	defer persisted.mu.Unlock()
	if persisted.cur != f.Cursor() || persisted.epoch != 1 {
		t.Fatalf("persisted %v@%d, follower cursor %v", persisted.cur, persisted.epoch, f.Cursor())
	}
	if f.LagSeconds(time.Unix(100, 0)) != 0 {
		t.Fatal("caught-up follower reports nonzero lag seconds")
	}
}

func TestFollowerAdoptsPrimaryEpoch(t *testing.T) {
	j := openJournal(t)
	appendLogins(t, j, 0, 1)
	primary := &miniPrimary{j: j, epoch: 7}
	node := NewNode(RoleReplica, 1)
	syncPersists := 0
	var mu sync.Mutex
	var got collector
	f := NewFollower(FollowerConfig{
		PrimaryURL: "http://primary", Doer: primary, PollInterval: time.Millisecond,
		Node: node, Apply: got.apply,
		Persist: func(e uint64, c wal.Cursor, sync bool) error {
			mu.Lock()
			if sync {
				syncPersists++
			}
			mu.Unlock()
			return nil
		},
	}, wal.Cursor{})
	f.Start()
	defer f.Stop()
	waitFor(t, "epoch adoption", func() bool { return node.Epoch() == 7 && f.Stats().Records == 1 })
	mu.Lock()
	defer mu.Unlock()
	if syncPersists == 0 {
		t.Fatal("adopted epoch was not durably persisted")
	}
}

func TestFollowerIgnoresStalePrimary(t *testing.T) {
	j := openJournal(t)
	appendLogins(t, j, 0, 3)
	primary := &miniPrimary{j: j, epoch: 1}
	var got collector
	f := NewFollower(FollowerConfig{
		PrimaryURL: "http://primary", Doer: primary, PollInterval: time.Millisecond,
		Node:  NewNode(RoleReplica, 5), // follower already knows epoch 5
		Apply: got.apply,
	}, wal.Cursor{})
	f.Start()
	defer f.Stop()
	waitFor(t, "stale primary rejected", func() bool { return f.Stats().StreamErrors >= 3 })
	if n := f.Stats().Records; n != 0 {
		t.Fatalf("follower applied %d records from a stale-epoch primary", n)
	}
	if f.LastError() == "" {
		t.Fatal("no lastErr recorded")
	}
	// The primary catches up to the new epoch; streaming resumes.
	primary.setEpoch(5)
	waitFor(t, "recovery after epoch catch-up", func() bool { return f.Stats().Records == 3 })
}

func TestFollowerResyncsOnCompactedCursor(t *testing.T) {
	j := openJournal(t)
	appendLogins(t, j, 0, 5)
	boundary, err := j.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	appendLogins(t, j, 5, 5)
	if _, err := j.CompactBefore(boundary); err != nil {
		t.Fatal(err)
	}
	primary := &miniPrimary{j: j, epoch: 2}

	var got collector
	resyncs := 0
	var mu sync.Mutex
	f := NewFollower(FollowerConfig{
		PrimaryURL: "http://primary", Doer: primary, PollInterval: time.Millisecond,
		Node: NewNode(RoleReplica, 1), Apply: got.apply,
		Resync: func(primaryEpoch uint64) (wal.Cursor, uint64, error) {
			mu.Lock()
			resyncs++
			mu.Unlock()
			if primaryEpoch != 2 {
				return wal.Cursor{}, 0, fmt.Errorf("resync saw epoch %d", primaryEpoch)
			}
			return wal.Cursor{Seg: boundary, Off: wal.SegmentDataStart}, 2, nil
		},
	}, wal.Cursor{}) // zero cursor: genesis is compacted, must resync
	f.Start()
	defer f.Stop()

	waitFor(t, "resync + catch-up", func() bool { return f.Stats().Records == 5 && f.LagRecords() == 0 })
	ids := got.snapshot()
	if ids[0] != 5 {
		t.Fatalf("post-resync stream started at id %d, want 5 (%v)", ids[0], ids)
	}
	if f.Stats().Resyncs != 1 {
		t.Fatalf("resyncs = %d, want 1", f.Stats().Resyncs)
	}
	mu.Lock()
	defer mu.Unlock()
	if resyncs != 1 {
		t.Fatalf("resync callback ran %d times", resyncs)
	}
}

// TestFollowerResyncOnStart: a follower whose host declares pre-existing
// local state (a rebooted ex-primary) resyncs before its first stream
// poll — even though its zero cursor would stream fine from genesis — and
// keeps retrying the resync until it succeeds. No record below the
// resynced cursor is ever applied on top of the local state.
func TestFollowerResyncOnStart(t *testing.T) {
	j := openJournal(t)
	appendLogins(t, j, 0, 5)
	boundary, err := j.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	appendLogins(t, j, 5, 3)
	primary := &miniPrimary{j: j, epoch: 2}

	var got collector
	attempts := 0
	var mu sync.Mutex
	f := NewFollower(FollowerConfig{
		PrimaryURL: "http://primary", Doer: primary, PollInterval: time.Millisecond,
		Node: NewNode(RoleReplica, 1), Apply: got.apply,
		ResyncOnStart: true,
		Resync: func(primaryEpoch uint64) (wal.Cursor, uint64, error) {
			mu.Lock()
			attempts++
			n := attempts
			mu.Unlock()
			if n == 1 {
				return wal.Cursor{}, 0, fmt.Errorf("snapshot fetch: partitioned")
			}
			return wal.Cursor{Seg: boundary, Off: wal.SegmentDataStart}, 2, nil
		},
	}, wal.Cursor{}) // zero cursor, but the host said local state exists
	f.Start()
	defer f.Stop()

	waitFor(t, "forced resync + tail catch-up", func() bool {
		return f.Stats().Resyncs == 1 && f.Stats().Records == 3 && f.LagRecords() == 0
	})
	ids := got.snapshot()
	if len(ids) != 3 || ids[0] != 5 {
		t.Fatalf("streamed %v, want only the post-boundary tail 5..7", ids)
	}
	if f.Stats().StreamErrors == 0 {
		t.Fatal("failed first resync attempt not counted as a stream error")
	}
	mu.Lock()
	defer mu.Unlock()
	if attempts != 2 {
		t.Fatalf("resync attempts = %d, want 2 (one failure, one success)", attempts)
	}
}

func TestFollowerSurvivesCorruptAndCutBatches(t *testing.T) {
	j := openJournal(t)
	appendLogins(t, j, 0, 20)
	primary := &miniPrimary{j: j, epoch: 1}
	inj := faults.NewInjector(42)
	inj.CorruptWrites("http.body", 0.5)
	inj.PartialWrites("http.body", 0.3)

	var got collector
	f := NewFollower(FollowerConfig{
		PrimaryURL:   "http://primary",
		Doer:         faults.NewFaultDoer(primary, inj, nil),
		PollInterval: time.Millisecond, MaxBatchBytes: int(4 * wal.FrameSize),
		Node: NewNode(RoleReplica, 1), Apply: got.apply,
		Logf: t.Logf,
	}, wal.Cursor{})
	f.Start()
	defer f.Stop()

	// Damaged batches slow the stream down but never poison it: every
	// record still arrives, in order, exactly once per cursor position.
	waitFor(t, "catch-up through corruption", func() bool { return f.Stats().Records >= 20 && f.LagRecords() == 0 })
	ids := got.snapshot()
	for i, id := range ids {
		if id != int64(i) {
			t.Fatalf("record %d has id %d: corruption reordered or duplicated the stream (%v)", i, id, ids)
		}
	}
}

func TestFollowerApplyErrorHoldsCursor(t *testing.T) {
	j := openJournal(t)
	appendLogins(t, j, 0, 5)
	primary := &miniPrimary{j: j, epoch: 1}
	var mu sync.Mutex
	fail := true
	var applied []int64
	f := NewFollower(FollowerConfig{
		PrimaryURL: "http://primary", Doer: primary, PollInterval: time.Millisecond,
		Node: NewNode(RoleReplica, 1),
		Apply: func(rec wal.Record) error {
			mu.Lock()
			defer mu.Unlock()
			if rec.ID == 3 && fail {
				fail = false
				return errors.New("transient apply failure")
			}
			applied = append(applied, rec.ID)
			return nil
		},
	}, wal.Cursor{})
	f.Start()
	defer f.Stop()
	waitFor(t, "recovery after apply error", func() bool { return f.Stats().Records == 5 })
	mu.Lock()
	defer mu.Unlock()
	for i, id := range applied {
		if id != int64(i) {
			t.Fatalf("apply order %v: record re-applied or skipped", applied)
		}
	}
	if f.Stats().StreamErrors == 0 {
		t.Fatal("apply error not counted")
	}
}

func TestFollowerStopBeforeStart(t *testing.T) {
	f := NewFollower(FollowerConfig{PrimaryURL: "http://primary", Node: NewNode(RoleReplica, 1), Apply: func(wal.Record) error { return nil }}, wal.Cursor{})
	f.Stop() // must not hang or panic
	f.Stop()
}
