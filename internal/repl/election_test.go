package repl

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"prorp/internal/wal"
)

var et0 = time.Date(2023, 9, 1, 0, 0, 0, 0, time.UTC)

// manualClock is a hand-stepped clock: Now moves only via Step, Sleep is
// a tiny real pause so loops pace without advancing logical time.
type manualClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *manualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *manualClock) Step(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func (c *manualClock) Sleep(time.Duration) { time.Sleep(100 * time.Microsecond) }

// TestLeaseEpochBoundaries is the lease state table: expiry is pure
// clock arithmetic, and epoch boundaries decide whose contact counts.
func TestLeaseEpochBoundaries(t *testing.T) {
	clock := &manualClock{t: et0}
	l := NewLease(clock, 10*time.Second)
	if l.TTL() != 10*time.Second {
		t.Fatalf("TTL = %v", l.TTL())
	}
	// A fresh lease starts expired: the holder has never heard from a
	// primary, so it is immediately allowed to suspect one is missing.
	if !l.Expired(clock.Now()) {
		t.Fatal("fresh lease must start expired")
	}
	// ttl <= 0 means "no override": the configured TTL applies.
	if !l.Renew(1, 0) {
		t.Fatal("first renewal refused")
	}
	if l.Expired(clock.Now()) || l.Remaining(clock.Now()) != 10*time.Second {
		t.Fatalf("after renewal: expired=%v remaining=%v", l.Expired(clock.Now()), l.Remaining(clock.Now()))
	}
	// Expiry is exclusive of the boundary instant and inclusive after it.
	clock.Step(10 * time.Second)
	if l.Expired(clock.Now()) {
		t.Fatal("lease expired exactly at its boundary")
	}
	clock.Step(time.Nanosecond)
	if !l.Expired(clock.Now()) {
		t.Fatal("lease alive past its boundary")
	}

	// A higher epoch takes the lease over; a lower one is ignored no
	// matter how generous its grant — a stale primary on the wrong side
	// of a healed partition cannot extend its own reign.
	if !l.Renew(3, 0) || l.Epoch() != 3 {
		t.Fatalf("higher epoch refused: epoch=%d", l.Epoch())
	}
	if l.Renew(2, time.Hour) {
		t.Fatal("stale epoch renewed the lease")
	}
	if got := l.Remaining(clock.Now()); got != 10*time.Second {
		t.Fatalf("stale renewal moved the expiry: remaining %v", got)
	}
	// The same epoch extends freely.
	clock.Step(5 * time.Second)
	l.Renew(3, 0)
	if got := l.Remaining(clock.Now()); got != 10*time.Second {
		t.Fatalf("same-epoch renewal: remaining %v", got)
	}
	// A shorter grant at a higher epoch adopts the epoch but never pulls
	// the expiry backward.
	if !l.Renew(4, time.Second) || l.Epoch() != 4 {
		t.Fatalf("higher epoch with short ttl refused: epoch=%d", l.Epoch())
	}
	if got := l.Remaining(clock.Now()); got != 10*time.Second {
		t.Fatalf("short grant shrank the lease: remaining %v", got)
	}
	if l.Renewals() != 4 {
		t.Fatalf("renewals = %d, want 4 (the stale-epoch attempt must not count)", l.Renewals())
	}

	// RestoreUntil rebuilds a persisted lease at boot: alive inside the
	// old grant, expired past it, and owned by the persisted epoch.
	l2 := NewLease(clock, 10*time.Second)
	l2.RestoreUntil(7, clock.Now().Add(3*time.Second))
	if l2.Expired(clock.Now()) || l2.Epoch() != 7 {
		t.Fatalf("restored lease: expired=%v epoch=%d", l2.Expired(clock.Now()), l2.Epoch())
	}
	if l2.Renew(6, 0) {
		t.Fatal("restored lease renewed by a pre-restore epoch")
	}
	clock.Step(3*time.Second + time.Nanosecond)
	if !l2.Expired(clock.Now()) {
		t.Fatal("restored lease outlived its persisted expiry")
	}
}

// TestHandleVote is the voter-side table: epoch and cursor rules, one
// durable grant per epoch, and fencing a primary that votes.
func TestHandleVote(t *testing.T) {
	c5 := wal.Cursor{Seg: 1, Off: 5}
	c9 := wal.Cursor{Seg: 1, Off: 9}
	persistOK := func() error { return nil }

	// Epoch not beyond ours: refused, nothing adopted.
	n := NewNode(RoleReplica, 3)
	if resp := HandleVote(n, c5, 0, "", persistOK, VoteRequest{Epoch: 3, Cursor: c9.String()}); resp.Granted || resp.Epoch != 3 {
		t.Fatalf("same-epoch vote: %+v", resp)
	}
	// Garbage cursor: refused.
	if resp := HandleVote(n, c5, 0, "", persistOK, VoteRequest{Epoch: 4, Cursor: "nonsense"}); resp.Granted {
		t.Fatalf("garbage cursor granted: %+v", resp)
	}
	// A candidate behind our replicated position is refused WITHOUT
	// adopting its epoch — we may still grant that same epoch to a
	// better-replicated candidate.
	if resp := HandleVote(n, c9, 0, "", persistOK, VoteRequest{Epoch: 4, Cursor: c5.String()}); resp.Granted || n.Epoch() != 3 {
		t.Fatalf("behind-cursor refusal adopted the epoch: %+v epoch=%d", resp, n.Epoch())
	}
	if resp := HandleVote(n, c9, 0, "", persistOK, VoteRequest{Epoch: 4, Cursor: c9.String()}); !resp.Granted || resp.Epoch != 4 {
		t.Fatalf("equal-cursor candidate refused: %+v", resp)
	}
	// Granting adopted the epoch, so the SAME epoch cannot be granted
	// twice — not even to the same candidate.
	if resp := HandleVote(n, c9, 0, "", persistOK, VoteRequest{Epoch: 4, Cursor: c9.String()}); resp.Granted {
		t.Fatalf("epoch 4 granted twice: %+v", resp)
	}

	// A refusal names the leader the voter follows, so a losing candidate
	// can repoint its follower.
	if resp := HandleVote(n, c9, 0, "http://leader", persistOK, VoteRequest{Epoch: 4, Cursor: c9.String()}); resp.LeaderAddr != "http://leader" {
		t.Fatalf("refusal hides the leader: %+v", resp)
	}

	// A grant that cannot be persisted is not a grant: a vote that could
	// evaporate in a crash could be recast for a different candidate.
	bad := NewNode(RoleReplica, 1)
	boom := func() error { return fmt.Errorf("disk gone") }
	if resp := HandleVote(bad, c5, 0, "", boom, VoteRequest{Epoch: 2, Cursor: c5.String()}); resp.Granted {
		t.Fatalf("undurable vote granted: %+v", resp)
	}

	// An unfenced primary asked to vote for a valid successor grants —
	// and the grant fences it.
	p := NewNode(RolePrimary, 1)
	if !p.CanAcceptWrites() {
		t.Fatal("primary not accepting writes")
	}
	if resp := HandleVote(p, c5, 0, "", persistOK, VoteRequest{Epoch: 2, Cursor: c5.String()}); !resp.Granted {
		t.Fatalf("primary refused a valid successor: %+v", resp)
	}
	if p.CanAcceptWrites() || !p.Fenced() {
		t.Fatal("granting primary not fenced")
	}

	// Split vote, resolved by epoch fold: two candidates both self-voted
	// epoch 2, so each refuses the other; the refusal response carries
	// epoch 2, the loser folds it, and its next stand proposes 3 — which
	// the other grants.
	b, c := NewNode(RoleReplica, 1), NewNode(RoleReplica, 1)
	b.ObserveEpoch(2) // b's self-vote
	c.ObserveEpoch(2) // c's simultaneous self-vote
	if resp := HandleVote(b, c5, 0, "", persistOK, VoteRequest{Epoch: 2, Cursor: c5.String()}); resp.Granted || resp.Epoch != 2 {
		t.Fatalf("split vote granted: %+v", resp)
	}
	if resp := HandleVote(b, c5, 0, "", persistOK, VoteRequest{Epoch: 3, Cursor: c5.String(), Candidate: "c"}); !resp.Granted {
		t.Fatalf("post-split stand refused: %+v", resp)
	}
	if !c.PromoteTo(3) || !c.CanAcceptWrites() || b.Epoch() != 3 {
		t.Fatalf("post-split promote: c=%d b=%d", c.Epoch(), b.Epoch())
	}
}

// TestHandleVoteOneGrantPerEpoch hammers one voter with concurrent vote
// requests for the same proposed epoch. The sequential double-grant is
// already caught by the top-of-function epoch check; only concurrency can
// expose a non-atomic grant (check and adoption under separate locks), so
// this is the regression test for the split-brain the race enables: two
// candidates each assembling a majority for the SAME epoch.
func TestHandleVoteOneGrantPerEpoch(t *testing.T) {
	cur := wal.Cursor{Seg: 1, Off: 7}
	for round := 0; round < 200; round++ {
		n := NewNode(RoleReplica, 1)
		const voters = 8
		var wg sync.WaitGroup
		var grants atomic.Int32
		for i := 0; i < voters; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				resp := HandleVote(n, cur, 0, "", func() error { return nil },
					VoteRequest{Epoch: 2, Cursor: cur.String(), Candidate: fmt.Sprintf("cand-%d", i)})
				if resp.Granted {
					grants.Add(1)
				}
			}(i)
		}
		wg.Wait()
		if g := grants.Load(); g > 1 {
			t.Fatalf("round %d: epoch 2 granted %d times; one grant per epoch per voter", round, g)
		}
	}
}

// TestHandleVoteLineage pins the cross-lineage rules: a voter whose
// cursor came from a different reign abstains — refusing WITHOUT adopting
// the epoch — because offsets into different primaries' journals are
// incomparable; and a voter with a zero cursor (holding nothing) grants
// on epoch alone regardless of lineage.
func TestHandleVoteLineage(t *testing.T) {
	c5 := wal.Cursor{Seg: 1, Off: 5}
	c9 := wal.Cursor{Seg: 1, Off: 9}
	persistOK := func() error { return nil }

	// Same lineage: the ordinary cursor comparison applies.
	n := NewNode(RoleReplica, 1)
	if resp := HandleVote(n, c9, 3, "", persistOK, VoteRequest{Epoch: 2, Cursor: c5.String(), CursorEpoch: 3}); resp.Granted {
		t.Fatalf("same-lineage behind-cursor candidate granted: %+v", resp)
	}
	if resp := HandleVote(n, c9, 3, "", persistOK, VoteRequest{Epoch: 2, Cursor: c9.String(), CursorEpoch: 3}); !resp.Granted {
		t.Fatalf("same-lineage equal-cursor candidate refused: %+v", resp)
	}

	// Foreign lineage: abstain, even when the candidate's offset LOOKS
	// ahead of ours — it indexes a different journal, so "ahead" means
	// nothing and granting could elect a candidate missing acked records.
	v := NewNode(RoleReplica, 1)
	if resp := HandleVote(v, c5, 3, "", persistOK, VoteRequest{Epoch: 2, Cursor: c9.String(), CursorEpoch: 7}); resp.Granted {
		t.Fatalf("foreign-lineage candidate granted: %+v", resp)
	}
	// The abstention did not adopt the epoch: the voter can still grant
	// epoch 2 to a same-lineage candidate this round.
	if v.Epoch() != 1 {
		t.Fatalf("abstention adopted the epoch: %d", v.Epoch())
	}
	if resp := HandleVote(v, c5, 3, "", persistOK, VoteRequest{Epoch: 2, Cursor: c5.String(), CursorEpoch: 3}); !resp.Granted {
		t.Fatalf("same-lineage candidate refused after abstention: %+v", resp)
	}

	// A zero cursor holds nothing worth protecting: grant on epoch alone,
	// whatever lineage the candidate claims.
	z := NewNode(RoleReplica, 1)
	if resp := HandleVote(z, wal.Cursor{}, 0, "", persistOK, VoteRequest{Epoch: 2, Cursor: c9.String(), CursorEpoch: 7}); !resp.Granted {
		t.Fatalf("zero-cursor voter refused: %+v", resp)
	}
}

// voteHost is one node of the in-memory electorate: the state a real
// server wires around HandleVote.
type voteHost struct {
	name  string
	node  *Node
	lease *Lease
	cur   wal.Cursor
}

// voteFabric routes vote solicitations to hosts by URL host, mirroring
// the server's handler: checksum-verified request, durable grant,
// reset-timer-on-grant, checksum-stamped response.
type voteFabric struct {
	mu    sync.Mutex
	hosts map[string]*voteHost
}

func (f *voteFabric) add(h *voteHost) {
	f.mu.Lock()
	f.hosts[h.name] = h
	f.mu.Unlock()
}

func (f *voteFabric) Do(req *http.Request) (*http.Response, error) {
	f.mu.Lock()
	h := f.hosts[req.URL.Host]
	f.mu.Unlock()
	if h == nil {
		return nil, fmt.Errorf("%s is unreachable", req.URL.Host)
	}
	body, err := io.ReadAll(req.Body)
	if err != nil {
		return nil, err
	}
	if want := req.Header.Get(HeaderSum); want != "" && BodySum(body) != want {
		return nil, fmt.Errorf("request damaged in flight")
	}
	var vreq VoteRequest
	if err := json.Unmarshal(body, &vreq); err != nil {
		return nil, err
	}
	resp := HandleVote(h.node, h.cur, 0, "", func() error { return nil }, vreq)
	if resp.Granted {
		// The server's reset-timer-on-grant rule: granting is evidence an
		// election is already in progress, so the voter stands down.
		h.lease.Renew(resp.Epoch, 0)
	}
	out, err := json.Marshal(resp)
	if err != nil {
		return nil, err
	}
	rec := httptest.NewRecorder()
	rec.Header().Set(HeaderSum, BodySum(out))
	rec.Write(out)
	return rec.Result(), nil
}

// TestSplitVoteResolution runs two real Electors against a dead primary
// on a hand-stepped clock. The seeds are chosen so both first election
// deadlines land in the SAME one-second step window — the worst case, a
// near-simultaneous stand — while the randomized retry jitter diverges.
// The cluster must still converge on exactly one unfenced primary.
func TestSplitVoteResolution(t *testing.T) {
	clock := &manualClock{t: et0}
	fabric := &voteFabric{hosts: map[string]*voteHost{}}

	mk := func(name string, seed int64) (*voteHost, *Elector) {
		h := &voteHost{
			name:  name,
			node:  NewNode(RoleReplica, 1),
			lease: NewLease(clock, 10*time.Second),
			cur:   wal.Cursor{Seg: 1, Off: 42},
		}
		fabric.add(h)
		peers := map[string]string{"a": "http://a"} // the dead primary stays in the electorate
		for _, other := range []string{"b", "c"} {
			if other != name {
				peers[other] = "http://" + other
			}
		}
		e := NewElector(ElectorConfig{
			NodeID:   name,
			SelfAddr: "http://" + name,
			Peers:    peers,
			Node:     h.node,
			Lease:    h.lease,
			Clock:    clock,
			Doer:     fabric,
			Timeout:  5 * time.Second,
			Seed:     seed,
			Eligible: func() bool { return !h.node.CanAcceptWrites() },
			Cursor:   func() (wal.Cursor, uint64) { return h.cur, 0 },
			Promote: func(ep uint64) error {
				if !h.node.PromoteTo(ep) {
					return fmt.Errorf("overtaken")
				}
				return nil
			},
			Logf: t.Logf,
		})
		return h, e
	}

	// Seeds 2 and 3 draw first jitters 9.82s and 9.77s — the same step
	// window — then 8.99s vs 6.93s on the retry.
	hb, eb := mk("b", 2)
	hc, ec := mk("c", 3)
	eb.Start()
	ec.Start()
	defer eb.Stop()
	defer ec.Stop()

	deadline := time.Now().Add(30 * time.Second)
	for !hb.node.CanAcceptWrites() && !hc.node.CanAcceptWrites() {
		if time.Now().After(deadline) {
			t.Fatalf("no winner: b epoch %d, c epoch %d, stats b=%+v c=%+v",
				hb.node.Epoch(), hc.node.Epoch(), eb.Stats(), ec.Stats())
		}
		clock.Step(time.Second)
		time.Sleep(time.Millisecond)
	}
	// Freeze logical time (no further deadlines can fire) and let any
	// in-flight round drain before inspecting.
	eb.Stop()
	ec.Stop()

	primaries := 0
	for _, h := range []*voteHost{hb, hc} {
		if h.node.CanAcceptWrites() {
			primaries++
		}
	}
	if primaries != 1 {
		t.Fatalf("unfenced primaries = %d, want exactly 1 (b: %v epoch %d, c: %v epoch %d)",
			primaries, hb.node.Role(), hb.node.Epoch(), hc.node.Role(), hc.node.Epoch())
	}
	if wins := eb.Stats().Wins + ec.Stats().Wins; wins < 1 {
		t.Fatalf("wins = %d, want >= 1", wins)
	}
	// The loser folded the winner's epoch (via grant or refusal), so a
	// later stand proposes beyond it instead of re-contesting it.
	winner, loser := hb, hc
	if hc.node.CanAcceptWrites() {
		winner, loser = hc, hb
	}
	if loser.node.Epoch() < winner.node.Epoch() {
		t.Fatalf("loser at epoch %d behind winner at %d", loser.node.Epoch(), winner.node.Epoch())
	}
}

// TestControlBodyIntegrity pins the control-plane armor: a vote or
// announce body is only decodable when its checksum survives the trip.
func TestControlBodyIntegrity(t *testing.T) {
	body := []byte(`{"granted":false,"epoch":1}`)
	mk := func(b []byte, sum string) *http.Response {
		rec := httptest.NewRecorder()
		if sum != "" {
			rec.Header().Set(HeaderSum, sum)
		}
		rec.Write(b)
		return rec.Result()
	}

	got, err := VerifiedBody(mk(body, BodySum(body)), 1<<10)
	if err != nil || string(got) != string(body) {
		t.Fatalf("clean body refused: %v", err)
	}
	// One flipped bit — the chaos transport's signature damage, here
	// turning the ASCII '1' of the epoch into '5'.
	bad := append([]byte(nil), body...)
	bad[len(bad)-2] ^= 0x04
	if string(bad) != `{"granted":false,"epoch":5}` {
		t.Fatalf("flip produced %q", bad)
	}
	if _, err := VerifiedBody(mk(bad, BodySum(body)), 1<<10); err == nil {
		t.Fatal("bit-flipped body accepted")
	}
	// A cut stream delivers a clean JSON-invalid prefix; the sum catches
	// it before any decoder sees it.
	if _, err := VerifiedBody(mk(body[:5], BodySum(body)), 1<<10); err == nil {
		t.Fatal("truncated body accepted")
	}
	// No sum at all is indistinguishable from damage.
	if _, err := VerifiedBody(mk(body, ""), 1<<10); err == nil {
		t.Fatal("unsummed body accepted")
	}
}
