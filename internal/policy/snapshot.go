package policy

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"prorp/internal/historystore"
	"prorp/internal/predictor"
)

// Snapshots make the per-database controller durable: when a database
// moves across nodes to balance load, its history — and the live policy
// state — must move with it (Section 3.3 of the paper), and a control
// plane restart must not forget pause bookkeeping. The format:
//
//	magic    uint32 'PRM1'
//	state    uint8
//	flags    uint8 (bit0 active, bit1 old, bit2 prewarmed)
//	nextStart, nextEnd, pauseStart int64
//	predictions int64
//	history    (historystore wire format)
//
// Configuration is deliberately not serialized: the restoring side supplies
// it, so fleet-wide knob re-training (Section 8) applies to restored
// databases too.

const snapshotMagic = 0x50524D31 // "PRM1"

// WriteTo serializes the machine. It implements io.WriterTo.
func (m *Machine) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var hdr [38]byte
	binary.LittleEndian.PutUint32(hdr[0:4], snapshotMagic)
	hdr[4] = byte(m.state)
	var flags byte
	if m.active {
		flags |= 1
	}
	if m.old {
		flags |= 2
	}
	if m.prewarmed {
		flags |= 4
	}
	hdr[5] = flags
	binary.LittleEndian.PutUint64(hdr[6:14], uint64(m.next.Start))
	binary.LittleEndian.PutUint64(hdr[14:22], uint64(m.next.End))
	binary.LittleEndian.PutUint64(hdr[22:30], uint64(m.pauseStart))
	binary.LittleEndian.PutUint64(hdr[30:38], uint64(m.predictions))
	if _, err := bw.Write(hdr[:]); err != nil {
		return 0, err
	}
	n, err := m.hist.WriteTo(bw)
	if err != nil {
		return int64(len(hdr)) + n, err
	}
	return int64(len(hdr)) + n, bw.Flush()
}

// Restore reconstructs a machine from a snapshot under the given (possibly
// re-trained) configuration.
func Restore(cfg Config, r io.Reader) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	br := bufio.NewReader(r)
	var hdr [38]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("policy: reading snapshot header: %w", err)
	}
	if got := binary.LittleEndian.Uint32(hdr[0:4]); got != snapshotMagic {
		return nil, fmt.Errorf("policy: bad snapshot magic %#x", got)
	}
	state := State(hdr[4])
	if state != Resumed && state != LogicallyPaused && state != PhysicallyPaused {
		return nil, fmt.Errorf("policy: snapshot has invalid state %d", hdr[4])
	}
	flags := hdr[5]
	m := &Machine{
		cfg:         cfg,
		hist:        historystore.New(),
		state:       state,
		active:      flags&1 != 0,
		old:         flags&2 != 0,
		prewarmed:   flags&4 != 0,
		pauseStart:  int64(binary.LittleEndian.Uint64(hdr[22:30])),
		predictions: int(int64(binary.LittleEndian.Uint64(hdr[30:38]))),
		next: predictor.Activity{
			Start: int64(binary.LittleEndian.Uint64(hdr[6:14])),
			End:   int64(binary.LittleEndian.Uint64(hdr[14:22])),
		},
	}
	if m.active && m.state != Resumed {
		return nil, fmt.Errorf("policy: snapshot active in state %v", m.state)
	}
	if _, err := m.hist.ReadFrom(br); err != nil {
		return nil, err
	}
	return m, nil
}

// RestoredTimer recomputes the wake-up a restored logically paused machine
// needs (the snapshot does not carry timers; they belong to the host's
// timer service). Returns 0 when no timer is needed. The caller should
// schedule OnTimer at max(returned, now).
func (m *Machine) RestoredTimer() int64 {
	if m.state != LogicallyPaused || m.active {
		return 0
	}
	return m.wakeTime(m.pauseStart)
}
