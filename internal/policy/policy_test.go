package policy

import (
	"testing"

	"prorp/internal/historystore"
)

const (
	day  = int64(historystore.SecondsPerDay)
	hour = int64(3600)
)

// newOldProactive builds a proactive machine whose history contains a
// perfect two-session daily pattern (9:00-12:00 and 15:00-17:00) over
// `days` days ending at `base`, leaving the machine Resumed and active at
// base+9h. Two logins a day matter: the predictor's "end of predicted
// activity" is the latest *login* inside the window (Figure 5), so a
// single-login pattern would predict Start == End.
//
// With the default 7 h window the machine's prediction at base+9h is
// {start: base+9h, end: base+9h} (made the previous evening for the 9:00
// login).
func newOldProactive(t *testing.T, base int64, days int) (*Machine, int64) {
	t.Helper()
	m, err := New(DefaultConfig(), base-int64(days)*day+9*hour)
	if err != nil {
		t.Fatal(err)
	}
	for i := days; i >= 1; i-- {
		dayStart := base - int64(i)*day
		if i < days {
			m.OnActivityStart(dayStart + 9*hour)
		}
		m.OnActivityEnd(dayStart + 12*hour)
		m.OnActivityStart(dayStart + 15*hour)
		m.OnActivityEnd(dayStart + 17*hour)
	}
	eff := m.OnActivityStart(base + 9*hour)
	if eff.Transition == TransNone {
		t.Fatal("setup: final login ignored")
	}
	return m, base + 9*hour
}

func TestNewStartsResumedActive(t *testing.T) {
	m, err := New(DefaultConfig(), 1000*day)
	if err != nil {
		t.Fatal(err)
	}
	if m.State() != Resumed || !m.Active() {
		t.Fatalf("new machine state=%v active=%v, want resumed/active", m.State(), m.Active())
	}
	if m.History().Len() != 1 {
		t.Fatalf("birth login not recorded: history len %d", m.History().Len())
	}
}

func TestNewRejectsInvalidConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LogicalPauseSec = 0
	if _, err := New(cfg, 0); err == nil {
		t.Fatal("New accepted zero logical pause")
	}
	cfg = DefaultConfig()
	cfg.Mode = Mode(9)
	if _, err := New(cfg, 0); err == nil {
		t.Fatal("New accepted unknown mode")
	}
	cfg = DefaultConfig()
	cfg.Predictor.Confidence = -1
	if _, err := New(cfg, 0); err == nil {
		t.Fatal("New accepted invalid predictor params")
	}
	// Reactive mode must not require valid predictor params.
	cfg = Config{Mode: Reactive, LogicalPauseSec: 7 * 3600}
	if _, err := New(cfg, 0); err != nil {
		t.Fatalf("reactive config rejected: %v", err)
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.LogicalPauseSec != 7*3600 {
		t.Errorf("l = %d s, want 7 h", cfg.LogicalPauseSec)
	}
	if cfg.Mode != Proactive {
		t.Errorf("mode = %v, want proactive", cfg.Mode)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

// --- Reactive baseline ---

func TestReactiveLifecycle(t *testing.T) {
	cfg := Config{Mode: Reactive, LogicalPauseSec: 7 * 3600}
	m, err := New(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Activity ends: always logical pause with a timer at now+l.
	eff := m.OnActivityEnd(10 * hour)
	if eff.Transition != TransLogicalPause {
		t.Fatalf("transition = %v, want logical-pause", eff.Transition)
	}
	if eff.TimerAt != 17*hour {
		t.Fatalf("timer at %d, want %d (now+l)", eff.TimerAt, 17*hour)
	}
	if m.State() != LogicallyPaused {
		t.Fatalf("state = %v", m.State())
	}

	// Timer fires at now+l: physical pause, no metadata (reactive).
	eff = m.OnTimer(17 * hour)
	if eff.Transition != TransPhysicalPause || !eff.Reclaim {
		t.Fatalf("effects = %+v, want physical pause with reclaim", eff)
	}
	if eff.MetadataSet {
		t.Error("reactive policy wrote prediction metadata")
	}
	if m.State() != PhysicallyPaused {
		t.Fatalf("state = %v", m.State())
	}

	// Login while physically paused: cold (reactive) resume.
	eff = m.OnActivityStart(20 * hour)
	if eff.Transition != TransResumeCold || !eff.Allocate {
		t.Fatalf("effects = %+v, want cold resume with allocate", eff)
	}
	if m.State() != Resumed || !m.Active() {
		t.Fatalf("state = %v active = %v", m.State(), m.Active())
	}
}

func TestReactiveWarmResumeWithinLogicalPause(t *testing.T) {
	cfg := Config{Mode: Reactive, LogicalPauseSec: 7 * 3600}
	m, _ := New(cfg, 0)
	m.OnActivityEnd(10 * hour)
	eff := m.OnActivityStart(12 * hour) // within the 7 h pause
	if eff.Transition != TransResumeWarm {
		t.Fatalf("transition = %v, want resume-warm", eff.Transition)
	}
	if eff.Allocate {
		t.Error("warm resume requested allocation; resources were never reclaimed")
	}
	if eff.FromPrewarm {
		t.Error("reactive warm resume flagged as prewarm")
	}
}

func TestReactiveSpuriousEarlyTimer(t *testing.T) {
	cfg := Config{Mode: Reactive, LogicalPauseSec: 7 * 3600}
	m, _ := New(cfg, 0)
	m.OnActivityEnd(10 * hour)
	eff := m.OnTimer(12 * hour) // before pauseStart+l
	if eff.Transition != TransStayLogical {
		t.Fatalf("transition = %v, want stay-logical", eff.Transition)
	}
	if eff.TimerAt != 17*hour {
		t.Fatalf("re-armed timer at %d, want %d", eff.TimerAt, 17*hour)
	}
	if m.State() != LogicallyPaused {
		t.Fatalf("state = %v", m.State())
	}
}

func TestReactiveSkipsHistory(t *testing.T) {
	cfg := Config{Mode: Reactive, LogicalPauseSec: 7 * 3600}
	m, _ := New(cfg, 0)
	m.OnActivityEnd(10 * hour)
	m.OnActivityStart(12 * hour)
	m.OnActivityEnd(13 * hour)
	if m.History().Len() != 0 {
		t.Fatalf("reactive machine stored %d history tuples, want 0", m.History().Len())
	}
}

// --- Proactive: Algorithm 1 guards ---

func TestProactivePhysicalPauseWhenNextActivityFar(t *testing.T) {
	// Line 10 first disjunct: now+l <= nextActivity.start.
	base := 1000 * day
	m, loginAt := newOldProactive(t, base, 30)
	if !m.Old() {
		t.Fatal("30-day database not old")
	}
	// Activity ends at 17:00; prediction says next login tomorrow 9:00,
	// which is 16 h away — beyond l = 7 h: immediate physical pause.
	eff := m.OnActivityEnd(loginAt + 8*hour)
	if eff.Transition != TransPhysicalPause {
		t.Fatalf("transition = %v, want physical-pause (next activity 16 h away)", eff.Transition)
	}
	if !eff.Reclaim {
		t.Error("physical pause without reclaim")
	}
	if !eff.MetadataSet {
		t.Fatal("physical pause without metadata write")
	}
	wantStart := base + day + 9*hour
	if eff.MetadataStart != wantStart {
		t.Errorf("metadata start = base+%dh, want base+%dh (tomorrow 9:00)",
			(eff.MetadataStart-base)/hour, (wantStart-base)/hour)
	}
}

func TestProactiveLogicalPauseWhenNextActivityNear(t *testing.T) {
	// Line 10 negated: next start within l hours -> logical pause.
	base := 1000 * day
	m, loginAt := newOldProactive(t, base, 30)
	// The morning session ends at 12:00; re-prediction from 12:00 finds
	// the 15:00 session, 3 h away — within l = 7 h: logical pause.
	eff := m.OnActivityEnd(loginAt + 3*hour)
	if eff.Transition != TransLogicalPause {
		t.Fatalf("transition = %v, want logical-pause", eff.Transition)
	}
	next := m.NextActivity()
	if next.Start != base+15*hour {
		t.Fatalf("predicted start = base+%dh, want base+15h", (next.Start-base)/hour)
	}
	// The wake-up must be at the predicted end of activity (the 15:00
	// login, the only one inside the earliest qualifying window).
	if eff.TimerAt != base+15*hour {
		t.Errorf("timer at base+%dh, want base+15h", (eff.TimerAt-base)/hour)
	}
}

func TestProactiveNewDatabaseDefaultsToReactive(t *testing.T) {
	// A database younger than h has no reliable prediction: logical pause
	// for l, then physical pause (Section 4 "defaults to reactive").
	m, _ := New(DefaultConfig(), 1000*day)
	eff := m.OnActivityEnd(1000*day + 2*hour)
	if eff.Transition != TransLogicalPause {
		t.Fatalf("transition = %v, want logical-pause for a new database", eff.Transition)
	}
	if eff.TimerAt != 1000*day+9*hour {
		t.Fatalf("timer at %d, want pauseStart+l", eff.TimerAt)
	}
	eff = m.OnTimer(eff.TimerAt)
	if eff.Transition != TransPhysicalPause {
		t.Fatalf("transition = %v, want physical-pause after l idle", eff.Transition)
	}
	// New database has no prediction: metadata start must be 0 so the
	// control plane never pre-warms it.
	if !eff.MetadataSet || eff.MetadataStart != 0 {
		t.Errorf("metadata = %v/%d, want set with start 0", eff.MetadataSet, eff.MetadataStart)
	}
}

func TestProactiveOldDatabaseNoPredictionPausesImmediately(t *testing.T) {
	// Line 10 second disjunct: old && nextActivity.start == 0.
	cfg := DefaultConfig()
	base := 1000 * day
	m, err := New(cfg, base-40*day)
	if err != nil {
		t.Fatal(err)
	}
	// A single burst of activity 40 days ago, nothing since: the database
	// is old (lifespan > h) but recent history is empty of patterns.
	m.OnActivityEnd(base - 40*day + hour)
	m.OnActivityStart(base + hour)
	eff := m.OnActivityEnd(base + 2*hour)
	if !m.Old() {
		t.Fatal("database with 40-day lifespan not old")
	}
	if !m.NextActivity().IsZero() {
		t.Fatalf("unexpected prediction %+v", m.NextActivity())
	}
	if eff.Transition != TransPhysicalPause {
		t.Fatalf("transition = %v, want immediate physical-pause (old, no prediction)", eff.Transition)
	}
}

func TestProactiveWarmResumeDuringPredictedActivity(t *testing.T) {
	base := 1000 * day
	m, loginAt := newOldProactive(t, base, 30)
	m.OnActivityEnd(loginAt + 3*hour) // 12:00: logical pause, next at 15:00
	if m.State() != LogicallyPaused {
		t.Fatalf("setup: state = %v, want logically-paused", m.State())
	}
	eff := m.OnActivityStart(loginAt + 5*hour) // 14:00, slightly early login
	if eff.Transition != TransResumeWarm {
		t.Fatalf("transition = %v, want resume-warm", eff.Transition)
	}
	if eff.FromPrewarm {
		t.Error("resume flagged FromPrewarm without a prewarm")
	}
	if eff.TimerAt != 0 {
		t.Error("timer left armed after resume")
	}
}

func TestProactivePrewarmThenLogin(t *testing.T) {
	base := 1000 * day
	m, loginAt := newOldProactive(t, base, 30)
	m.OnActivityEnd(loginAt + 8*hour) // physical pause, next = tomorrow 9:00

	// Algorithm 5: control plane pre-warms 5 minutes ahead.
	prewarmAt := base + day + 9*hour - 300
	eff := m.OnPrewarm(prewarmAt)
	if eff.Transition != TransPrewarm {
		t.Fatalf("transition = %v, want prewarm", eff.Transition)
	}
	if !eff.Allocate {
		t.Error("prewarm did not allocate resources")
	}
	if m.State() != LogicallyPaused {
		t.Fatalf("state = %v, want logically-paused", m.State())
	}

	// Customer logs in on schedule: warm resume attributed to the prewarm.
	eff = m.OnActivityStart(base + day + 9*hour)
	if eff.Transition != TransResumeWarm || !eff.FromPrewarm {
		t.Fatalf("effects = %+v, want warm resume from prewarm", eff)
	}
}

func TestProactivePrewarmNeverUsed(t *testing.T) {
	base := 1000 * day
	m, loginAt := newOldProactive(t, base, 30)
	m.OnActivityEnd(loginAt + 8*hour)

	prewarmAt := base + day + 9*hour - 300
	eff := m.OnPrewarm(prewarmAt)
	// The prewarm waits through the predicted activity (ending at the
	// predicted 9:00 login).
	if eff.TimerAt != base+day+9*hour {
		t.Fatalf("prewarm timer at base+day+%dh, want base+day+9h (predicted end)",
			(eff.TimerAt-base-day)/hour)
	}
	// No login ever arrives; the machine re-predicts on each wake-up and
	// must eventually physically pause, flagging the wasted prewarm.
	for i := 0; i < 100; i++ {
		eff = m.OnTimer(eff.TimerAt)
		if eff.Transition == TransPhysicalPause {
			if !eff.FromPrewarm {
				t.Fatal("wasted prewarm not flagged FromPrewarm on physical pause")
			}
			return
		}
		if eff.TimerAt == 0 {
			t.Fatalf("stay-logical without a timer: %+v", eff)
		}
	}
	t.Fatalf("machine never physically paused after an unused prewarm; state %v", m.State())
}

func TestProactivePrewarmIgnoredWhenNotPhysicallyPaused(t *testing.T) {
	base := 1000 * day
	m, loginAt := newOldProactive(t, base, 30)
	// Still resumed and active.
	if eff := m.OnPrewarm(loginAt + hour); eff.Transition != TransNone {
		t.Fatalf("prewarm on a resumed database = %v, want none", eff.Transition)
	}
	m.OnActivityEnd(loginAt + 3*hour) // 12:00: logical pause (next at 15:00)
	if m.State() != LogicallyPaused {
		t.Fatalf("setup: state = %v, want logically-paused", m.State())
	}
	if eff := m.OnPrewarm(loginAt + 4*hour); eff.Transition != TransNone {
		t.Fatalf("prewarm on a logically paused database = %v, want none", eff.Transition)
	}
}

func TestReactiveIgnoresPrewarm(t *testing.T) {
	cfg := Config{Mode: Reactive, LogicalPauseSec: 7 * 3600}
	m, _ := New(cfg, 0)
	m.OnActivityEnd(10 * hour)
	m.OnTimer(17 * hour) // physically paused
	if eff := m.OnPrewarm(18 * hour); eff.Transition != TransNone {
		t.Fatalf("reactive machine accepted a prewarm: %v", eff.Transition)
	}
}

func TestProactiveSkipsRepredictionWhilePredictionOngoing(t *testing.T) {
	// Line 7: nextActivity.end >= now must skip history trim + prediction.
	base := 1000 * day
	m, loginAt := newOldProactive(t, base, 30)
	// 12:00: the stale morning prediction has passed, so this re-predicts
	// and yields {15:00, 15:00}.
	m.OnActivityEnd(loginAt + 3*hour)
	before := m.Predictions()
	// An early login at 13:00 that ends at 14:00 — before the predicted
	// 15:00 end — must NOT trigger a re-prediction.
	m.OnActivityStart(loginAt + 4*hour)
	m.OnActivityEnd(loginAt + 5*hour)
	if got := m.Predictions(); got != before {
		t.Fatalf("re-predicted during ongoing predicted activity: %d -> %d", before, got)
	}
	// A session ending after the predicted end re-predicts.
	m.OnActivityStart(loginAt + 6*hour)
	m.OnActivityEnd(loginAt + 9*hour) // 18:00 > predicted end 15:00
	if got := m.Predictions(); got != before+1 {
		t.Fatalf("prediction count = %d, want %d", got, before+1)
	}
}

func TestProactiveColdResumeAfterPhysicalPause(t *testing.T) {
	base := 1000 * day
	m, loginAt := newOldProactive(t, base, 30)
	m.OnActivityEnd(loginAt + 8*hour) // physical pause
	// Unpredicted login at 03:00: resources are reclaimed, cold resume.
	eff := m.OnActivityStart(base + day + 3*hour)
	if eff.Transition != TransResumeCold || !eff.Allocate {
		t.Fatalf("effects = %+v, want cold resume", eff)
	}
}

func TestDuplicateEventsAreNoops(t *testing.T) {
	base := 1000 * day
	m, loginAt := newOldProactive(t, base, 30)
	if eff := m.OnActivityStart(loginAt + 1); eff.Transition != TransNone {
		t.Error("second start while active not ignored")
	}
	m.OnActivityEnd(loginAt + 2*hour)
	if eff := m.OnActivityEnd(loginAt + 3*hour); eff.Transition != TransNone {
		t.Error("second end while idle not ignored")
	}
	// Timer while resumed is stale.
	m.OnActivityStart(loginAt + 4*hour)
	if eff := m.OnTimer(loginAt + 5*hour); eff.Transition != TransNone {
		t.Error("timer while resumed not ignored")
	}
}

func TestStayLogicalTimerMakesProgress(t *testing.T) {
	// Whatever the prediction, a stay-logical wake-up must be re-armed
	// strictly in the future to rule out timer livelock.
	base := 1000 * day
	m, loginAt := newOldProactive(t, base, 30)
	eff := m.OnActivityEnd(loginAt + 3*hour)
	if eff.Transition != TransLogicalPause {
		t.Fatal("setup: expected logical pause")
	}
	now := eff.TimerAt
	for i := 0; i < 10 && m.State() == LogicallyPaused; i++ {
		eff = m.OnTimer(now)
		if eff.Transition == TransStayLogical {
			if eff.TimerAt <= now {
				t.Fatalf("stay-logical re-armed timer at %d, not after %d", eff.TimerAt, now)
			}
			now = eff.TimerAt
		}
	}
}

func TestHistoryTrimmedOnPrediction(t *testing.T) {
	// Algorithm 1 line 8 runs DeleteOldHistory before predicting: after
	// months of activity the history stays within h days + lifespan marker.
	cfg := DefaultConfig()
	base := int64(1000) * day
	m, err := New(cfg, base-200*day+9*hour)
	if err != nil {
		t.Fatal(err)
	}
	for i := 200; i >= 1; i-- {
		dayStart := base - int64(i)*day
		m.OnActivityEnd(dayStart + 17*hour)
		m.OnActivityStart(dayStart + day + 9*hour)
	}
	m.OnActivityEnd(base + 17*hour)
	// 28 days x 2 events/day = 56 recent tuples, + lifespan marker + the
	// tuples of the current day; anything near 60 is fine, 400 is not.
	if n := m.History().Len(); n > 70 {
		t.Fatalf("history holds %d tuples after 200 days, want trimmed to ~60", n)
	}
	minTS, _ := m.History().MinTimestamp()
	if minTS != base-200*day+9*hour {
		t.Errorf("lifespan marker lost: min = %d", minTS)
	}
}

func TestStateStrings(t *testing.T) {
	if Resumed.String() != "resumed" ||
		LogicallyPaused.String() != "logically-paused" ||
		PhysicallyPaused.String() != "physically-paused" {
		t.Error("State.String() broken")
	}
	if Reactive.String() != "reactive" || Proactive.String() != "proactive" {
		t.Error("Mode.String() broken")
	}
	for tr := TransNone; tr <= TransStayLogical; tr++ {
		if tr.String() == "" {
			t.Errorf("Transition(%d).String() empty", int(tr))
		}
	}
	if State(99).String() == "" || Mode(99).String() == "" || Transition(99).String() == "" {
		t.Error("unknown enum values print empty")
	}
}
