// Package policy implements the proactive resume-and-pause lifecycle of a
// serverless database: Algorithm 1 and the finite state automaton of
// Figure 4 in the ProRP paper.
//
// The paper writes Algorithm 1 as blocking loops (`while active`,
// `Sleep()`); at simulation scale the same logic is expressed here as an
// event-driven state machine. Each input event (customer activity start or
// end, a timer expiry, a control-plane pre-warm) advances the machine and
// returns the Effects the environment must apply: allocate or reclaim
// resources, (re)schedule the single wake-up timer, or write the predicted
// next start into the control-plane metadata store. The transition guards
// are kept literally identical to Algorithm 1's lines 7-12, 19, and 26-29;
// the unit tests pin each guard.
//
// The same machine also implements the current production *reactive*
// policy (Section 2.2) — logical pause on idle, physical pause after l idle
// seconds, no prediction — selected by Mode, so the paper's baseline
// comparison is apples-to-apples.
package policy

import (
	"fmt"

	"prorp/internal/historystore"
	"prorp/internal/predictor"
)

// State is a node of the Figure 4 automaton.
type State int

const (
	// Resumed: resources allocated, customer workload running, billed.
	Resumed State = iota
	// LogicallyPaused: resources allocated but idle; customer not billed.
	LogicallyPaused
	// PhysicallyPaused: resources reclaimed.
	PhysicallyPaused
)

func (s State) String() string {
	switch s {
	case Resumed:
		return "resumed"
	case LogicallyPaused:
		return "logically-paused"
	case PhysicallyPaused:
		return "physically-paused"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Mode selects the resource allocation policy.
type Mode int

const (
	// Reactive is the production baseline of Section 2.2: always logical
	// pause on idle, physical pause after l seconds of idleness, resume
	// only on customer login.
	Reactive Mode = iota
	// Proactive is ProRP: prediction-driven physical pauses (Transition 3
	// of Figure 4) and control-plane pre-warms ahead of predicted logins.
	Proactive
)

func (m Mode) String() string {
	switch m {
	case Reactive:
		return "reactive"
	case Proactive:
		return "proactive"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Transition classifies what an event did, for telemetry and KPI metrics.
type Transition int

const (
	// TransNone: the event changed nothing observable.
	TransNone Transition = iota
	// TransResumeWarm: first login after idle landed while resources were
	// available (logical pause or pre-warm) — a QoS success.
	TransResumeWarm
	// TransResumeCold: first login landed while physically paused; a
	// reactive resume workflow with visible delay — a QoS miss.
	TransResumeCold
	// TransLogicalPause: entered logical pause from Resumed.
	TransLogicalPause
	// TransPhysicalPause: resources reclaimed.
	TransPhysicalPause
	// TransPrewarm: control plane proactively resumed a physically paused
	// database ahead of predicted activity (Algorithm 5).
	TransPrewarm
	// TransStayLogical: the wake-up timer fired, the database re-predicted
	// and decided to remain logically paused.
	TransStayLogical
)

func (t Transition) String() string {
	switch t {
	case TransNone:
		return "none"
	case TransResumeWarm:
		return "resume-warm"
	case TransResumeCold:
		return "resume-cold"
	case TransLogicalPause:
		return "logical-pause"
	case TransPhysicalPause:
		return "physical-pause"
	case TransPrewarm:
		return "prewarm"
	case TransStayLogical:
		return "stay-logical"
	default:
		return fmt.Sprintf("Transition(%d)", int(t))
	}
}

// Config are the policy knobs (Table 1 of the paper).
type Config struct {
	// Mode selects reactive or proactive behaviour.
	Mode Mode
	// LogicalPauseSec is l: how long resources stay logically paused
	// before reclamation is considered. Default 7 hours.
	LogicalPauseSec int64
	// Predictor holds h, p, c, w, s and the seasonality.
	Predictor predictor.Params
}

// DefaultConfig returns the paper's production defaults.
func DefaultConfig() Config {
	return Config{
		Mode:            Proactive,
		LogicalPauseSec: 7 * 3600,
		Predictor:       predictor.Default(),
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Mode != Reactive && c.Mode != Proactive {
		return fmt.Errorf("policy: unknown mode %d", int(c.Mode))
	}
	if c.LogicalPauseSec <= 0 {
		return fmt.Errorf("policy: logical pause %d s, want > 0", c.LogicalPauseSec)
	}
	if c.Mode == Proactive {
		return c.Predictor.Validate()
	}
	return nil
}

// Effects is what the environment must do after an event. TimerAt is the
// complete desired timer state: > 0 means exactly one pending wake-up at
// that time, 0 means none; the caller reconciles (cancels any previous
// timer).
type Effects struct {
	// Allocate requests that resources be (re)allocated.
	Allocate bool
	// Reclaim requests that resources be reclaimed (physical pause).
	Reclaim bool
	// TimerAt is the desired wake-up time, 0 for no timer.
	TimerAt int64
	// MetadataSet requests writing MetadataStart as the predicted next
	// activity start into the control-plane store (Algorithm 1 line 31).
	MetadataSet   bool
	MetadataStart int64
	// Transition classifies the event for telemetry.
	Transition Transition
	// FromPrewarm is set on TransResumeWarm and TransPhysicalPause when the
	// preceding logical pause was entered via a control-plane pre-warm; it
	// classifies the proactive resume as correct (used) or wrong (wasted).
	FromPrewarm bool
}

// Machine is the per-database lifecycle controller. It owns the database's
// history store, mirroring the paper's design where history lives inside
// the database itself. Not safe for concurrent use.
type Machine struct {
	cfg  Config
	hist *historystore.Store

	state  State
	active bool

	old        bool
	next       predictor.Activity
	pauseStart int64
	prewarmed  bool

	// predictions counts Predict invocations, for overhead accounting.
	predictions int
}

// New returns a machine for a freshly created database. A new database
// starts Resumed and active at birth (its creation is its first activity);
// call OnActivityEnd when the initial activity stops.
func New(cfg Config, birth int64) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{cfg: cfg, hist: historystore.New(), state: Resumed, active: true}
	m.insertHistory(birth, historystore.EventStart)
	return m, nil
}

// State returns the current lifecycle state.
func (m *Machine) State() State { return m.state }

// Active reports whether a customer workload is currently running.
func (m *Machine) Active() bool { return m.active }

// History exposes the database's history store (read-mostly; the
// experiment harness measures its size for Figure 10).
func (m *Machine) History() *historystore.Store { return m.hist }

// NextActivity returns the current prediction (zero when none).
func (m *Machine) NextActivity() predictor.Activity { return m.next }

// Old reports whether the database has accumulated at least h days of
// lifespan (the "old" flag of Algorithm 3).
func (m *Machine) Old() bool { return m.old }

// Predictions reports how many times Algorithm 4 ran on this database.
func (m *Machine) Predictions() int { return m.predictions }

// ResourcesAvailable reports whether compute is allocated right now.
func (m *Machine) ResourcesAvailable() bool { return m.state != PhysicallyPaused }

func (m *Machine) insertHistory(t int64, typ byte) {
	// The reactive baseline does not maintain prediction history; skipping
	// the inserts keeps its overhead faithful to production (Section 2.2).
	if m.cfg.Mode == Proactive {
		m.hist.Insert(t, typ)
	}
}

// predict runs Algorithm 1 lines 8-9: trim old history, then run
// Algorithm 4.
func (m *Machine) predict(now int64) {
	old, _ := m.hist.DeleteOld(m.cfg.Predictor.HistoryDays, now)
	m.old = old
	m.next, _ = predictor.Predict(m.hist, m.cfg.Predictor, now)
	m.predictions++
}

// OnActivityStart handles a customer login at time now.
func (m *Machine) OnActivityStart(now int64) Effects {
	if m.active {
		return Effects{Transition: TransNone}
	}
	m.active = true
	m.insertHistory(now, historystore.EventStart)

	switch m.state {
	case PhysicallyPaused:
		// Reactive resume: the demand signal arrives while resources are
		// reclaimed; the customer experiences the allocation delay.
		m.state = Resumed
		m.prewarmed = false
		return Effects{Allocate: true, Transition: TransResumeCold}
	case LogicallyPaused:
		// Algorithm 1 lines 21-23 + 28: pauseEnd = now, resume.
		m.state = Resumed
		fromPrewarm := m.prewarmed
		m.prewarmed = false
		return Effects{Transition: TransResumeWarm, FromPrewarm: fromPrewarm, TimerAt: 0}
	default: // Resumed but idle (activity restarted before any pause ran)
		return Effects{Transition: TransResumeWarm}
	}
}

// OnActivityEnd handles the end of customer activity: Algorithm 1 lines
// 6-12.
func (m *Machine) OnActivityEnd(now int64) Effects {
	if !m.active {
		return Effects{Transition: TransNone}
	}
	m.active = false
	m.insertHistory(now, historystore.EventEnd)

	if m.cfg.Mode == Reactive {
		// The baseline always logically pauses and reconsiders after l.
		m.state = LogicallyPaused
		m.pauseStart = now
		m.prewarmed = false
		return Effects{
			TimerAt:    now + m.cfg.LogicalPauseSec,
			Transition: TransLogicalPause,
		}
	}

	// Line 7: skip re-prediction while the previously predicted activity
	// is still ongoing.
	if m.next.End < now {
		m.predict(now)
	}

	// Line 10: physical pause when no activity is expected within l, or
	// when an old database has no prediction at all.
	if now+m.cfg.LogicalPauseSec <= m.next.Start || (m.old && m.next.IsZero()) {
		return m.physicalPause()
	}
	return m.logicalPause(now, false)
}

// logicalPause enters the LogicallyPaused state (Algorithm 1 lines 13-20)
// and schedules the wake-up at the time the line-19 wait condition expires.
func (m *Machine) logicalPause(now int64, prewarm bool) Effects {
	m.state = LogicallyPaused
	m.pauseStart = now
	m.prewarmed = prewarm

	eff := Effects{
		TimerAt:    m.wakeTime(now),
		Transition: TransLogicalPause,
	}
	if prewarm {
		// Entering via Algorithm 5: resources must be re-allocated.
		eff.Allocate = true
		eff.Transition = TransPrewarm
	}
	return eff
}

// waitHolds is the literal line-19 condition: the machine stays logically
// paused while it is true.
func (m *Machine) waitHolds(now int64) bool {
	if m.cfg.Mode == Reactive {
		return now < m.pauseStart+m.cfg.LogicalPauseSec
	}
	l := m.cfg.LogicalPauseSec
	return (!m.old && now < m.pauseStart+l) ||
		now < m.next.End ||
		(now < m.next.Start && m.next.Start < now+l)
}

// wakeTime computes the earliest t >= now at which waitHolds(t) is false.
// The line-19 disjuncts each expire monotonically: the new-database guard
// at pauseStart+l, the ongoing-prediction guard at next.End, and the
// imminent-start guard at next.Start (which is always <= next.End). The
// expiry is therefore the max over the currently-true disjuncts.
func (m *Machine) wakeTime(now int64) int64 {
	wake := now
	if m.cfg.Mode == Reactive {
		return m.pauseStart + m.cfg.LogicalPauseSec
	}
	if !m.old && m.pauseStart+m.cfg.LogicalPauseSec > wake {
		wake = m.pauseStart + m.cfg.LogicalPauseSec
	}
	if m.next.End > wake {
		wake = m.next.End
	}
	return wake
}

// OnTimer handles the wake-up scheduled by logicalPause: Algorithm 1 lines
// 24-29 (plus the baseline's pause-expiry check).
func (m *Machine) OnTimer(now int64) Effects {
	if m.state != LogicallyPaused || m.active {
		return Effects{Transition: TransNone}
	}

	if m.cfg.Mode == Reactive {
		if now >= m.pauseStart+m.cfg.LogicalPauseSec {
			return m.physicalPause()
		}
		return Effects{TimerAt: m.pauseStart + m.cfg.LogicalPauseSec, Transition: TransStayLogical}
	}

	if m.waitHolds(now) {
		// Spurious early wake: keep waiting.
		return Effects{TimerAt: m.wakeTime(now), Transition: TransStayLogical}
	}

	// Lines 24-25: trim history, re-predict.
	m.predict(now)

	// Line 26. The paper writes `pauseStart+l < now` (strict); we use <= so
	// a timer firing exactly at pauseStart+l makes progress — with the
	// strict form the pseudocode livelocks for a new database whose
	// re-prediction returns nothing.
	l := m.cfg.LogicalPauseSec
	if (!m.old && m.pauseStart+l <= now) ||
		now+l <= m.next.Start ||
		(m.old && m.next.IsZero()) {
		return m.physicalPause()
	}
	// Otherwise remain logically paused under the refreshed prediction.
	// The wake-up is pushed at least one slide interval ahead: a degenerate
	// prediction (end <= now) would otherwise re-arm the timer at `now`
	// forever, and predictions cannot change at a finer grain than the
	// window slide anyway.
	wake := m.wakeTime(now)
	if min := now + m.cfg.Predictor.SlideSec; wake < min {
		wake = min
	}
	return Effects{TimerAt: wake, Transition: TransStayLogical}
}

// physicalPause implements Algorithm 1 lines 30-32: persist the predicted
// start in the metadata store and reclaim resources.
func (m *Machine) physicalPause() Effects {
	fromPrewarm := m.prewarmed
	m.prewarmed = false
	m.state = PhysicallyPaused
	eff := Effects{
		Reclaim:     true,
		TimerAt:     0,
		Transition:  TransPhysicalPause,
		FromPrewarm: fromPrewarm,
	}
	if m.cfg.Mode == Proactive {
		eff.MetadataSet = true
		eff.MetadataStart = m.next.Start
	}
	return eff
}

// OnPrewarm handles Algorithm 5's proactive resume: the control plane
// moves a physically paused database into logical pause ahead of its
// predicted activity. Stale pre-warms (the database already resumed or was
// never paused) are ignored — the diagnostics runner drains such entries.
func (m *Machine) OnPrewarm(now int64) Effects {
	if m.state != PhysicallyPaused || m.cfg.Mode != Proactive {
		return Effects{Transition: TransNone}
	}
	return m.logicalPause(now, true)
}
