package policy

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// machineDriver feeds a machine a random but protocol-respecting event
// sequence (logins only while idle, activity ends only while active,
// timers and prewarms at any point, time strictly increasing) and checks
// the state-machine invariants after every step.
type machineDriver struct {
	t   *testing.T
	m   *Machine
	now int64
}

func (d *machineDriver) step(rng *rand.Rand) bool {
	d.now += 1 + rng.Int63n(6*hour)
	before := d.m.State()
	wasActive := d.m.Active()

	var eff Effects
	var op string
	switch choice := rng.Intn(10); {
	case choice < 4 && !wasActive:
		op = "login"
		eff = d.m.OnActivityStart(d.now)
	case choice < 4 && wasActive:
		op = "idle"
		eff = d.m.OnActivityEnd(d.now)
	case choice < 7:
		op = "timer"
		eff = d.m.OnTimer(d.now)
	case choice < 9:
		op = "prewarm"
		eff = d.m.OnPrewarm(d.now)
	default:
		if wasActive {
			op = "idle"
			eff = d.m.OnActivityEnd(d.now)
		} else {
			op = "login"
			eff = d.m.OnActivityStart(d.now)
		}
	}
	return d.check(op, before, wasActive, eff)
}

func (d *machineDriver) check(op string, before State, wasActive bool, eff Effects) bool {
	t, m, now := d.t, d.m, d.now
	after := m.State()

	// Timer sanity: never scheduled in the past.
	if eff.TimerAt != 0 && eff.TimerAt < now {
		t.Errorf("%s at %d: timer in the past (%d)", op, now, eff.TimerAt)
		return false
	}
	// Active databases are always in the Resumed state with resources.
	if m.Active() && after != Resumed {
		t.Errorf("%s at %d: active in state %v", op, now, after)
		return false
	}
	// Reclaim accompanies exactly the transition into physical pause.
	if eff.Reclaim != (eff.Transition == TransPhysicalPause) {
		t.Errorf("%s at %d: reclaim=%v on %v", op, now, eff.Reclaim, eff.Transition)
		return false
	}
	if eff.Transition == TransPhysicalPause && after != PhysicallyPaused {
		t.Errorf("%s at %d: physical-pause left state %v", op, now, after)
		return false
	}
	// Allocation only on cold resumes and prewarms (warm paths already
	// hold resources).
	if eff.Allocate && eff.Transition != TransResumeCold && eff.Transition != TransPrewarm {
		t.Errorf("%s at %d: allocate on %v", op, now, eff.Transition)
		return false
	}
	if eff.Transition == TransResumeCold && before != PhysicallyPaused {
		t.Errorf("%s at %d: cold resume from %v", op, now, before)
		return false
	}
	if eff.Transition == TransResumeWarm && before == PhysicallyPaused {
		t.Errorf("%s at %d: warm resume from physical pause", op, now)
		return false
	}
	// Metadata writes happen only on proactive physical pauses.
	if eff.MetadataSet && eff.Transition != TransPhysicalPause {
		t.Errorf("%s at %d: metadata write on %v", op, now, eff.Transition)
		return false
	}
	// A physically paused machine must never hold a timer.
	if after == PhysicallyPaused && eff.TimerAt != 0 {
		t.Errorf("%s at %d: timer %d while physically paused", op, now, eff.TimerAt)
		return false
	}
	// Logical pause must always re-arm or keep a wake-up: without one the
	// database would leak allocated-idle resources forever.
	switch eff.Transition {
	case TransLogicalPause, TransStayLogical, TransPrewarm:
		if eff.TimerAt == 0 {
			t.Errorf("%s at %d: %v without a timer", op, now, eff.Transition)
			return false
		}
	}
	// History timestamps never exceed the clock.
	if maxTS, ok := m.History().MaxTimestamp(); ok && maxTS > now {
		t.Errorf("%s at %d: history tuple in the future (%d)", op, now, maxTS)
		return false
	}
	return true
}

func TestRandomizedMachineInvariantsProactive(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cfg := DefaultConfig()
		cfg.Predictor.HistoryDays = 3 + rng.Intn(10)
		m, err := New(cfg, 500*day)
		if err != nil {
			t.Fatal(err)
		}
		d := &machineDriver{t: t, m: m, now: 500 * day}
		for i := 0; i < 400; i++ {
			if !d.step(rng) {
				t.Fatalf("seed %d failed at step %d", seed, i)
			}
		}
	}
}

func TestRandomizedMachineInvariantsReactive(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cfg := Config{Mode: Reactive, LogicalPauseSec: 1 + rng.Int63n(10*hour)}
		m, err := New(cfg, 500*day)
		if err != nil {
			t.Fatal(err)
		}
		d := &machineDriver{t: t, m: m, now: 500 * day}
		for i := 0; i < 400; i++ {
			if !d.step(rng) {
				t.Fatalf("seed %d failed at step %d", seed, i)
			}
		}
	}
}

// Property: whatever the event sequence, history stays bounded by the
// retention window (Algorithm 3 keeps it compact).
func TestQuickHistoryStaysBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := DefaultConfig()
		cfg.Predictor.HistoryDays = 7
		m, err := New(cfg, 500*day)
		if err != nil {
			return false
		}
		now := 500 * day
		for i := 0; i < 600; i++ {
			now += 1 + rng.Int63n(4*hour)
			if m.Active() {
				m.OnActivityEnd(now)
			} else if rng.Intn(2) == 0 {
				m.OnActivityStart(now)
			} else {
				m.OnTimer(now)
			}
		}
		// 7 days of retention at <= ~24 events/day (plus the lifespan
		// marker and the current day's churn) stays well under 400.
		return m.History().Len() < 400
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: the wake time returned on entering logical pause is exactly
// the first instant at which the literal line-19 wait condition fails.
func TestQuickWakeTimeIsWaitBoundary(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := DefaultConfig()
		cfg.Predictor.HistoryDays = 5
		m, err := New(cfg, 500*day)
		if err != nil {
			return false
		}
		now := 500*day + 1000
		// Random warm-up.
		for i := 0; i < 50; i++ {
			now += 1 + rng.Int63n(8*hour)
			if m.Active() {
				m.OnActivityEnd(now)
			} else {
				m.OnActivityStart(now)
			}
		}
		if m.Active() {
			now += 1 + rng.Int63n(hour)
			eff := m.OnActivityEnd(now)
			if eff.Transition != TransLogicalPause {
				return true // physically paused immediately; nothing to check
			}
			w := eff.TimerAt
			// Strictly before w the wait may hold... at w it must not,
			// except when w == now (degenerate, handled by OnTimer).
			if w > now && m.waitHolds(w) {
				return false
			}
			if w > now+1 && !m.waitHolds(now) && w != m.pauseStart+cfg.LogicalPauseSec {
				// If the wait did not hold at entry the wake must be
				// immediate (or the new-database pause end).
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
