package policy

import (
	"bytes"
	"io"
	"testing"
)

func snapshotRoundTrip(t *testing.T, m *Machine) *Machine {
	t.Helper()
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(m.cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	return restored
}

func TestSnapshotRoundTripResumed(t *testing.T) {
	base := 1000 * day
	m, _ := newOldProactive(t, base, 30)
	r := snapshotRoundTrip(t, m)
	if r.State() != m.State() || r.Active() != m.Active() || r.Old() != m.Old() {
		t.Fatalf("restored state %v/%v/%v, want %v/%v/%v",
			r.State(), r.Active(), r.Old(), m.State(), m.Active(), m.Old())
	}
	if r.NextActivity() != m.NextActivity() {
		t.Fatalf("restored prediction %+v, want %+v", r.NextActivity(), m.NextActivity())
	}
	if r.History().Len() != m.History().Len() {
		t.Fatalf("restored history %d tuples, want %d", r.History().Len(), m.History().Len())
	}
	if r.Predictions() != m.Predictions() {
		t.Fatalf("restored prediction count %d, want %d", r.Predictions(), m.Predictions())
	}
}

func TestSnapshotRoundTripPhysicallyPausedBehavesIdentically(t *testing.T) {
	base := 1000 * day
	m, loginAt := newOldProactive(t, base, 30)
	m.OnActivityEnd(loginAt + 8*hour) // physically paused, predicted 9:00

	r := snapshotRoundTrip(t, m)
	if r.State() != PhysicallyPaused {
		t.Fatalf("restored state %v", r.State())
	}
	// The restored machine must accept the prewarm and classify the
	// subsequent login identically to the original.
	prewarmAt := base + day + 9*hour - 300
	effOrig := m.OnPrewarm(prewarmAt)
	effRest := r.OnPrewarm(prewarmAt)
	if effOrig != effRest {
		t.Fatalf("prewarm effects diverge: %+v vs %+v", effOrig, effRest)
	}
	loginEffOrig := m.OnActivityStart(base + day + 9*hour)
	loginEffRest := r.OnActivityStart(base + day + 9*hour)
	if loginEffOrig != loginEffRest {
		t.Fatalf("login effects diverge: %+v vs %+v", loginEffOrig, loginEffRest)
	}
}

func TestSnapshotRestoredTimer(t *testing.T) {
	base := 1000 * day
	m, loginAt := newOldProactive(t, base, 30)
	eff := m.OnActivityEnd(loginAt + 3*hour) // logical pause, timer at 15:00
	r := snapshotRoundTrip(t, m)
	if got := r.RestoredTimer(); got != eff.TimerAt {
		t.Fatalf("RestoredTimer = %d, want the live timer %d", got, eff.TimerAt)
	}
	// Resumed and physically paused machines need no timer.
	m2, _ := newOldProactive(t, base, 30)
	if snapshotRoundTrip(t, m2).RestoredTimer() != 0 {
		t.Error("resumed machine reported a restored timer")
	}
	m2.OnActivityEnd(loginAt + 8*hour)
	if snapshotRoundTrip(t, m2).RestoredTimer() != 0 {
		t.Error("physically paused machine reported a restored timer")
	}
}

func TestSnapshotRestoreUnderNewConfig(t *testing.T) {
	// Fleet-wide re-training: a snapshot restored under different knobs
	// uses the new ones.
	base := 1000 * day
	m, loginAt := newOldProactive(t, base, 30)
	m.OnActivityEnd(loginAt + 8*hour)
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Predictor.Confidence = 0.9 // re-trained threshold
	r, err := Restore(cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.cfg.Predictor.Confidence != 0.9 {
		t.Fatal("restored machine kept the old config")
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	cfg := DefaultConfig()
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": make([]byte, 38),
		"bad state": func() []byte {
			base := 1000 * day
			m, _ := newOldProactive(t, base, 30)
			var buf bytes.Buffer
			m.WriteTo(&buf)
			b := buf.Bytes()
			b[4] = 9
			return b
		}(),
		"truncated history": func() []byte {
			base := 1000 * day
			m, _ := newOldProactive(t, base, 30)
			var buf bytes.Buffer
			m.WriteTo(&buf)
			return buf.Bytes()[:buf.Len()-5]
		}(),
	}
	for name, data := range cases {
		if _, err := Restore(cfg, bytes.NewReader(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	bad := cfg
	bad.LogicalPauseSec = 0
	if _, err := Restore(bad, bytes.NewReader(nil)); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestSnapshotWriteErrorPropagates(t *testing.T) {
	base := 1000 * day
	m, _ := newOldProactive(t, base, 30)
	if _, err := m.WriteTo(failAfter(0)); err == nil {
		t.Fatal("write error swallowed")
	}
}

type failWriter struct{ left int }

func failAfter(n int) *failWriter { return &failWriter{left: n} }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.left <= 0 {
		return 0, io.ErrClosedPipe
	}
	f.left -= len(p)
	return len(p), nil
}
