package faults

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestTripNThenHeal(t *testing.T) {
	in := NewInjector(1)
	boom := errors.New("boom")
	in.TripN("s", 3, boom)
	for i := 0; i < 3; i++ {
		if _, err := in.Check("s"); !errors.Is(err, boom) {
			t.Fatalf("call %d: err = %v, want boom", i, err)
		}
	}
	if _, err := in.Check("s"); err != nil {
		t.Fatalf("healed site still fails: %v", err)
	}
	if got := in.Fired("s"); got != 3 {
		t.Fatalf("Fired = %d, want 3", got)
	}
}

func TestDeterminismAcrossSeeds(t *testing.T) {
	run := func(seed int64) []bool {
		in := NewInjector(seed)
		in.FailProb("s", 0.5, nil)
		out := make([]bool, 64)
		for i := range out {
			_, err := in.Check("s")
			out[i] = err != nil
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d", i)
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical 64-call fault sequences")
	}
}

func TestHealClearsSchedules(t *testing.T) {
	in := NewInjector(7)
	in.FailProb("a", 1, nil)
	in.FailProb("b", 1, nil)
	in.Heal("a")
	if _, err := in.Check("a"); err != nil {
		t.Fatalf("healed site a fails: %v", err)
	}
	if _, err := in.Check("b"); err == nil {
		t.Fatal("site b unexpectedly healed")
	}
	in.HealAll()
	if _, err := in.Check("b"); err != nil {
		t.Fatalf("HealAll left b faulted: %v", err)
	}
}

func TestInjectorConcurrentUse(t *testing.T) {
	in := NewInjector(3)
	in.FailProb("s", 0.5, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				in.Check("s")
			}
		}()
	}
	wg.Wait()
}

// manualClock counts sleeps without spending real time.
type manualClock struct {
	mu    sync.Mutex
	t     time.Time
	slept time.Duration
}

func (c *manualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *manualClock) Sleep(d time.Duration) {
	c.mu.Lock()
	c.slept += d
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestFaultFSWriteFaults(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(5)
	ffs := NewFaultFS(OS, in, &manualClock{})

	// Partial write: a strict prefix lands, then an error.
	in.PartialWrites("fs.write", 1)
	f, err := ffs.CreateTemp(dir, "t-*")
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xAB}, 256)
	n, err := f.Write(payload)
	if err == nil {
		t.Fatal("partial write returned no error")
	}
	if n >= len(payload) {
		t.Fatalf("partial write landed %d of %d bytes", n, len(payload))
	}
	f.Close()
	in.Heal("fs.write")

	// Corruption: the write succeeds but one bit differs on disk.
	in.CorruptWrites("fs.write", 1)
	f2, err := ffs.CreateTemp(dir, "t-*")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f2.Write(payload); err != nil {
		t.Fatalf("corrupting write errored: %v", err)
	}
	if err := f2.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(f2.Name())
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, payload) {
		t.Fatal("corrupting write left data intact")
	}
	diff := 0
	for i := range got {
		diff += popcount(got[i] ^ payload[i])
	}
	if diff != 1 {
		t.Fatalf("corruption flipped %d bits, want exactly 1", diff)
	}
}

func popcount(b byte) int {
	n := 0
	for ; b != 0; b &= b - 1 {
		n++
	}
	return n
}

func TestFaultFSOpFaultsAndLatency(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(9)
	clock := &manualClock{}
	ffs := NewFaultFS(OS, in, clock)

	in.TripN("fs.rename", 1, nil)
	if err := ffs.Rename(filepath.Join(dir, "a"), filepath.Join(dir, "b")); !errors.Is(err, ErrInjected) {
		t.Fatalf("rename err = %v, want injected", err)
	}
	in.TripN("fs.open", 1, nil)
	if _, err := ffs.Open(filepath.Join(dir, "nope")); !errors.Is(err, ErrInjected) {
		t.Fatalf("open err = %v, want injected", err)
	}
	// Latency flows through the clock, not wall time.
	in.Latency("fs.stat", 3*time.Second, 1)
	ffs.Stat(filepath.Join(dir, "nope"))
	if clock.slept != 3*time.Second {
		t.Fatalf("slept %v, want 3s", clock.slept)
	}
}

func TestFaultFSPassthrough(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS, NewInjector(1), nil)
	f, err := ffs.CreateTemp(dir, "p-*")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	name := f.Name()
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	dst := filepath.Join(dir, "final")
	if err := ffs.Rename(name, dst); err != nil {
		t.Fatal(err)
	}
	r, err := ffs.Open(dst)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(r)
	r.Close()
	if err != nil || string(got) != "hello" {
		t.Fatalf("read back %q, %v", got, err)
	}
	if _, err := ffs.Stat(dst); err != nil {
		t.Fatal(err)
	}
	if err := ffs.Remove(dst); err != nil {
		t.Fatal(err)
	}
}

func TestBackoffDelayGrowthAndCap(t *testing.T) {
	b := Backoff{Attempts: 6, Base: 100 * time.Millisecond, Max: 400 * time.Millisecond, Factor: 2}
	want := []time.Duration{0, 100 * time.Millisecond, 200 * time.Millisecond,
		400 * time.Millisecond, 400 * time.Millisecond, 400 * time.Millisecond}
	for i, w := range want {
		if got := b.Delay(i); got != w {
			t.Fatalf("Delay(%d) = %v, want %v", i, got, w)
		}
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	b := Backoff{Attempts: 2, Base: time.Second, Max: time.Second, Factor: 2,
		Jitter: 0.5, Rand: rand.New(rand.NewSource(11))}
	for i := 0; i < 100; i++ {
		d := b.Delay(1)
		if d < 500*time.Millisecond || d > time.Second {
			t.Fatalf("jittered delay %v outside [0.5s, 1s]", d)
		}
	}
}

func TestRetryHealsAndGivesUp(t *testing.T) {
	clock := &manualClock{}
	b := Backoff{Attempts: 4, Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Factor: 2}

	// Heals on the third attempt.
	calls := 0
	retries, err := Retry(clock, b, func() error {
		calls++
		if calls < 3 {
			return ErrInjected
		}
		return nil
	})
	if err != nil || retries != 2 || calls != 3 {
		t.Fatalf("retry = (%d, %v), calls = %d", retries, err, calls)
	}
	if clock.slept == 0 {
		t.Fatal("no backoff sleep recorded")
	}

	// Exhausts the budget.
	boom := errors.New("still down")
	retries, err = Retry(clock, b, func() error { return boom })
	if !errors.Is(err, boom) || retries != 3 {
		t.Fatalf("exhausted retry = (%d, %v)", retries, err)
	}
}
