package faults

import (
	"math/rand"
	"time"
)

// Backoff is a capped, jittered exponential retry schedule for transient
// errors. The zero value is not usable; start from DefaultBackoff.
type Backoff struct {
	// Attempts is the total number of tries (first call included).
	Attempts int
	// Base is the delay before the second attempt.
	Base time.Duration
	// Max caps the grown delay.
	Max time.Duration
	// Factor multiplies the delay after each failure (default 2).
	Factor float64
	// Jitter in [0,1] scales each delay by a uniform factor drawn from
	// [1-Jitter, 1], keeping retries from synchronizing across databases.
	Jitter float64
	// Rand drives the jitter; nil falls back to the global PRNG. Chaos
	// tests pass an Injector-derived PRNG so retry timing is seeded too.
	Rand *rand.Rand
}

// DefaultBackoff is the serving stack's retry schedule: 5 attempts,
// 50ms..2s delays, full exponential growth with 30% jitter.
func DefaultBackoff() Backoff {
	return Backoff{Attempts: 5, Base: 50 * time.Millisecond, Max: 2 * time.Second, Factor: 2, Jitter: 0.3}
}

// Delay computes the sleep before attempt i (0-based; attempt 0 has no
// delay).
func (b Backoff) Delay(i int) time.Duration {
	if i <= 0 || b.Base <= 0 {
		return 0
	}
	factor := b.Factor
	if factor <= 1 {
		factor = 2
	}
	d := float64(b.Base)
	for k := 1; k < i; k++ {
		d *= factor
		if b.Max > 0 && d >= float64(b.Max) {
			d = float64(b.Max)
			break
		}
	}
	if b.Max > 0 && d > float64(b.Max) {
		d = float64(b.Max)
	}
	if b.Jitter > 0 {
		var u float64
		if b.Rand != nil {
			u = b.Rand.Float64()
		} else {
			u = rand.Float64()
		}
		d *= 1 - b.Jitter*u
	}
	return time.Duration(d)
}

// Retry runs f up to b.Attempts times, sleeping the jittered exponential
// delay on clock between failures. It returns nil on the first success,
// the last error otherwise, and the number of retries performed (attempts
// beyond the first). A nil clock uses wall time.
func Retry(clock Clock, b Backoff, f func() error) (retries int, err error) {
	if clock == nil {
		clock = WallClock{}
	}
	attempts := b.Attempts
	if attempts <= 0 {
		attempts = 1
	}
	for i := 0; i < attempts; i++ {
		if i > 0 {
			if d := b.Delay(i); d > 0 {
				clock.Sleep(d)
			}
			retries++
		}
		if err = f(); err == nil {
			return retries, nil
		}
	}
	return retries, err
}
