package faults

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// stubDoer serves a fixed body without a network.
type stubDoer struct {
	body  []byte
	calls int
}

func (s *stubDoer) Do(req *http.Request) (*http.Response, error) {
	s.calls++
	rec := httptest.NewRecorder()
	rec.Write(s.body)
	return rec.Result(), nil
}

func TestFaultDoerPartition(t *testing.T) {
	inj := NewInjector(1)
	stub := &stubDoer{body: []byte("hello")}
	d := NewFaultDoer(stub, inj, nil)
	req := httptest.NewRequest("GET", "http://primary/v1/repl/stream", nil)

	inj.TripN("http.request", 2, nil)
	for i := 0; i < 2; i++ {
		if _, err := d.Do(req); !errors.Is(err, ErrInjected) {
			t.Fatalf("call %d: err = %v, want ErrInjected", i, err)
		}
	}
	if stub.calls != 0 {
		t.Fatalf("partitioned requests reached the peer %d times", stub.calls)
	}
	resp, err := d.Do(req)
	if err != nil {
		t.Fatalf("healed call: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "hello" {
		t.Fatalf("body = %q", body)
	}
}

func TestFaultDoerTruncatesBodyWithoutError(t *testing.T) {
	inj := NewInjector(7)
	stub := &stubDoer{body: []byte("0123456789abcdef")}
	d := NewFaultDoer(stub, inj, nil)
	inj.PartialWrites("http.body", 1)

	resp, err := d.Do(httptest.NewRequest("GET", "http://primary/", nil))
	if err != nil {
		t.Fatalf("truncated response must not error: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	if len(body) >= len(stub.body) {
		t.Fatalf("body not truncated: %d bytes", len(body))
	}
	if resp.ContentLength != int64(len(body)) {
		t.Fatalf("ContentLength %d != body %d", resp.ContentLength, len(body))
	}
}

func TestFaultDoerFlipsBit(t *testing.T) {
	inj := NewInjector(3)
	orig := []byte("0123456789abcdef")
	stub := &stubDoer{body: append([]byte{}, orig...)}
	d := NewFaultDoer(stub, inj, nil)
	inj.CorruptWrites("http.body", 1)

	resp, err := d.Do(httptest.NewRequest("GET", "http://primary/", nil))
	if err != nil {
		t.Fatalf("corrupt response must not error: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	if len(body) != len(orig) {
		t.Fatalf("corruption changed length: %d", len(body))
	}
	diff := 0
	for i := range body {
		if body[i] != orig[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("%d bytes differ, want exactly 1", diff)
	}
}

func TestFaultDoerLatencyThroughClock(t *testing.T) {
	inj := NewInjector(5)
	var slept time.Duration
	clock := sleepRecorder{slept: &slept}
	d := NewFaultDoer(&stubDoer{body: []byte("x")}, inj, clock)
	inj.Latency("http.request", 40*time.Millisecond, 1)

	if _, err := d.Do(httptest.NewRequest("GET", "http://primary/", nil)); err != nil {
		t.Fatal(err)
	}
	if slept != 40*time.Millisecond {
		t.Fatalf("slept %v through the clock seam, want 40ms", slept)
	}
}

type sleepRecorder struct{ slept *time.Duration }

func (s sleepRecorder) Now() time.Time        { return time.Time{} }
func (s sleepRecorder) Sleep(d time.Duration) { *s.slept += d }
