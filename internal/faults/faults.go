// Package faults is a deterministic fault-injection layer for hardening
// the serving stack against the failures a production control plane
// actually sees: slow disks, transient write errors, partial writes,
// bit rot, and crash/restart cycles.
//
// The layer has three pieces:
//
//   - An Injector holding per-site fault schedules driven by a seeded
//     PRNG, so every chaos run is reproducible from its seed. Sites are
//     free-form strings ("fs.write", "prewarm", ...); each site can carry
//     scripted trip-N-then-heal failures, probabilistic errors, injected
//     latency, partial writes, and corruption (bit flips).
//   - FS / File / Clock seams (see fs.go): production code talks to the
//     seams, production wiring uses the OS implementations, and chaos
//     tests wrap them in FaultFS / FaultClock backed by an Injector.
//   - A capped, jittered exponential Backoff (see backoff.go) for
//     retrying transient failures, with the jitter drawn from the same
//     seeded PRNG family so retry timing is reproducible too.
//
// All Injector methods are safe for concurrent use.
package faults

import (
	"errors"
	"math/rand"
	"sync"
	"time"
)

// ErrInjected is the default error produced at a faulted site when the
// schedule does not name a specific error. Injected errors are considered
// transient: callers retry them like any other I/O error.
var ErrInjected = errors.New("faults: injected error")

// site is the fault schedule of one call site.
type site struct {
	// trips is the scripted part: fail the next trips calls with tripErr,
	// then heal. Scripted failures take precedence over probabilistic ones.
	trips   int
	tripErr error

	// errProb injects probErr on each call with this probability.
	errProb float64
	probErr error

	// latency is added (via the clock's Sleep) with latencyProb.
	latency     time.Duration
	latencyProb float64

	// partialProb truncates writes: only a PRNG-chosen prefix of the
	// buffer is written before the error is returned.
	partialProb float64

	// corruptProb flips one PRNG-chosen bit of the data passing through
	// the site (writes corrupt what lands on disk).
	corruptProb float64
}

// Injector holds the fault schedules of a chaos run. The zero value is not
// usable; build one with NewInjector.
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	sites map[string]*site
	count map[string]int // faults actually fired, per site
}

// NewInjector builds an injector whose probabilistic decisions, partial
// write lengths, corruption offsets, and backoff jitter all derive from
// seed: the same seed and call sequence reproduce the same faults.
func NewInjector(seed int64) *Injector {
	return &Injector{
		rng:   rand.New(rand.NewSource(seed)),
		sites: make(map[string]*site),
		count: make(map[string]int),
	}
}

func (in *Injector) site(name string) *site {
	s, ok := in.sites[name]
	if !ok {
		s = &site{}
		in.sites[name] = s
	}
	return s
}

// TripN scripts the next n calls at the site to fail with err (ErrInjected
// when err is nil), after which the site heals. Scripted trips fire before
// any probabilistic schedule on the same site.
func (in *Injector) TripN(name string, n int, err error) {
	if err == nil {
		err = ErrInjected
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	s := in.site(name)
	s.trips = n
	s.tripErr = err
}

// FailProb makes each call at the site fail with probability p (err nil =
// ErrInjected).
func (in *Injector) FailProb(name string, p float64, err error) {
	if err == nil {
		err = ErrInjected
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	s := in.site(name)
	s.errProb = p
	s.probErr = err
}

// Latency injects d of sleep at the site with probability p.
func (in *Injector) Latency(name string, d time.Duration, p float64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	s := in.site(name)
	s.latency = d
	s.latencyProb = p
}

// PartialWrites makes writes at the site land only a strict prefix (with
// probability p) before returning an error.
func (in *Injector) PartialWrites(name string, p float64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.site(name).partialProb = p
}

// CorruptWrites flips one bit of the data written at the site with
// probability p. The write itself succeeds — the damage is only visible
// when the data is read back, like real bit rot.
func (in *Injector) CorruptWrites(name string, p float64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.site(name).corruptProb = p
}

// Heal clears every schedule on the site.
func (in *Injector) Heal(name string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	delete(in.sites, name)
}

// HealAll clears every schedule on every site.
func (in *Injector) HealAll() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.sites = make(map[string]*site)
}

// Fired reports how many faults (errors, partials, corruptions) the site
// has actually produced.
func (in *Injector) Fired(name string) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.count[name]
}

// Check consults the schedule for one call at the site: it returns the
// injected latency to sleep (callers without a latency-capable clock may
// ignore it) and a non-nil error when the call must fail. Production code
// never calls Check directly — FaultFS and the retry helpers do.
func (in *Injector) Check(name string) (time.Duration, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	s, ok := in.sites[name]
	if !ok {
		return 0, nil
	}
	var lat time.Duration
	if s.latency > 0 && in.rng.Float64() < s.latencyProb {
		lat = s.latency
	}
	if s.trips > 0 {
		s.trips--
		in.count[name]++
		return lat, s.tripErr
	}
	if s.errProb > 0 && in.rng.Float64() < s.errProb {
		in.count[name]++
		return lat, s.probErr
	}
	return lat, nil
}

// checkWrite decides the fate of one write of n bytes at the site:
// how many bytes land, whether a bit flips (and which), and the error.
func (in *Injector) checkWrite(name string, n int) (keep int, flipByte int, flipBit uint, lat time.Duration, err error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	keep, flipByte = n, -1
	s, ok := in.sites[name]
	if !ok {
		return keep, flipByte, 0, 0, nil
	}
	if s.latency > 0 && in.rng.Float64() < s.latencyProb {
		lat = s.latency
	}
	if s.trips > 0 {
		s.trips--
		in.count[name]++
		return 0, flipByte, 0, lat, s.tripErr
	}
	if s.errProb > 0 && in.rng.Float64() < s.errProb {
		in.count[name]++
		return 0, flipByte, 0, lat, s.probErr
	}
	if s.partialProb > 0 && n > 0 && in.rng.Float64() < s.partialProb {
		in.count[name]++
		return in.rng.Intn(n), flipByte, 0, lat, ErrInjected
	}
	if s.corruptProb > 0 && n > 0 && in.rng.Float64() < s.corruptProb {
		in.count[name]++
		return keep, in.rng.Intn(n), uint(in.rng.Intn(8)), lat, nil
	}
	return keep, flipByte, 0, lat, nil
}

// Rand returns a PRNG derived from the injector's seed stream, for
// workload generators that want the whole chaos run keyed by one seed.
func (in *Injector) Rand() *rand.Rand {
	in.mu.Lock()
	defer in.mu.Unlock()
	return rand.New(rand.NewSource(in.rng.Int63()))
}
