package faults

import (
	"bytes"
	"io"
	"net/http"
)

// Doer is the HTTP client seam of the replication transport: the follower
// and the chaos harness both speak it. *http.Client implements it.
type Doer interface {
	Do(req *http.Request) (*http.Response, error)
}

// FaultDoer wraps a Doer with injector-driven network faults, consulting
// two sites:
//
//	http.request   partition (the request never reaches the peer) and
//	               injected latency before the round trip
//	http.body      response-body damage: truncation (the connection cut
//	               mid-stream — the caller sees a short body and no error,
//	               exactly like a real dropped TCP stream) and bit flips
//
// Truncation and corruption are served by buffering the response body;
// replication batches are small and bounded, so the buffering is free at
// chaos scale.
type FaultDoer struct {
	Inner Doer
	Inj   *Injector
	Clock Clock // nil = WallClock
}

// NewFaultDoer wraps inner with the injector's schedules.
func NewFaultDoer(inner Doer, inj *Injector, clock Clock) *FaultDoer {
	if clock == nil {
		clock = WallClock{}
	}
	return &FaultDoer{Inner: inner, Inj: inj, Clock: clock}
}

func (d *FaultDoer) Do(req *http.Request) (*http.Response, error) {
	lat, err := d.Inj.Check("http.request")
	if lat > 0 {
		d.Clock.Sleep(lat)
	}
	if err != nil {
		return nil, err // partitioned: the peer never saw the request
	}
	resp, err := d.Inner.Do(req)
	if err != nil || resp == nil || resp.Body == nil {
		return resp, err
	}
	body, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr != nil {
		return nil, rerr
	}
	keep, flipByte, flipBit, lat, berr := d.Inj.checkWrite("http.body", len(body))
	if lat > 0 {
		d.Clock.Sleep(lat)
	}
	if berr != nil {
		// The stream was cut: deliver the prefix that made it through,
		// without an error — the receiver's framing must catch it.
		if keep < 0 {
			keep = 0
		}
		body = body[:keep]
	}
	if flipByte >= 0 && flipByte < len(body) {
		body[flipByte] ^= 1 << flipBit
	}
	resp.Body = io.NopCloser(bytes.NewReader(body))
	resp.ContentLength = int64(len(body))
	return resp, nil
}
