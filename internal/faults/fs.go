package faults

import (
	"io"
	"io/fs"
	"os"
	"time"
)

// Clock is the time seam: production wiring uses WallClock, tests use a
// manual clock so injected latency and backoff sleeps cost no real time.
type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
}

// WallClock is the real time.Now / time.Sleep clock.
type WallClock struct{}

func (WallClock) Now() time.Time        { return time.Now() }
func (WallClock) Sleep(d time.Duration) { time.Sleep(d) }

// File is the subset of *os.File the snapshot store needs.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	Sync() error
	Name() string
}

// FS is the filesystem seam of the durable stores (snapshot store and WAL
// journal): enough surface to implement write-temp-fsync-rename
// persistence with rotation plus append-mode segment files and directory
// scans.
type FS interface {
	Open(name string) (File, error)
	// OpenFile opens with explicit flags (os.O_CREATE|os.O_EXCL|os.O_RDWR
	// for fresh WAL segments).
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	CreateTemp(dir, pattern string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Stat(name string) (fs.FileInfo, error)
	ReadDir(name string) ([]fs.DirEntry, error)
	MkdirAll(path string, perm fs.FileMode) error
}

// OS is the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) Open(name string) (File, error) { return os.Open(name) }
func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) CreateTemp(dir, pattern string) (File, error) {
	return os.CreateTemp(dir, pattern)
}
func (osFS) Rename(oldpath, newpath string) error       { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                   { return os.Remove(name) }
func (osFS) Stat(name string) (fs.FileInfo, error)      { return os.Stat(name) }
func (osFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }
func (osFS) MkdirAll(path string, perm fs.FileMode) error {
	return os.MkdirAll(path, perm)
}

// FaultFS wraps an FS with an Injector. Each operation consults one site:
//
//	fs.open  fs.openfile  fs.createtemp  fs.rename  fs.remove  fs.stat
//	fs.readdir  fs.mkdirall  fs.read  fs.write  fs.sync  fs.close
//
// Write faults additionally support partial writes (a prefix lands, then
// an error) and silent corruption (one bit of the written data flips).
// Injected latency is served through the Clock, so manual-clock tests
// don't slow down.
type FaultFS struct {
	Inner FS
	Inj   *Injector
	Clock Clock // nil = WallClock
}

// NewFaultFS wraps inner with the injector's schedules.
func NewFaultFS(inner FS, inj *Injector, clock Clock) *FaultFS {
	if clock == nil {
		clock = WallClock{}
	}
	return &FaultFS{Inner: inner, Inj: inj, Clock: clock}
}

func (f *FaultFS) check(site string) error {
	lat, err := f.Inj.Check(site)
	if lat > 0 {
		f.Clock.Sleep(lat)
	}
	return err
}

func (f *FaultFS) Open(name string) (File, error) {
	if err := f.check("fs.open"); err != nil {
		return nil, &fs.PathError{Op: "open", Path: name, Err: err}
	}
	file, err := f.Inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f}, nil
}

func (f *FaultFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	if err := f.check("fs.openfile"); err != nil {
		return nil, &fs.PathError{Op: "openfile", Path: name, Err: err}
	}
	file, err := f.Inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f}, nil
}

func (f *FaultFS) CreateTemp(dir, pattern string) (File, error) {
	if err := f.check("fs.createtemp"); err != nil {
		return nil, &fs.PathError{Op: "createtemp", Path: dir, Err: err}
	}
	file, err := f.Inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f}, nil
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if err := f.check("fs.rename"); err != nil {
		return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: err}
	}
	return f.Inner.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(name string) error {
	if err := f.check("fs.remove"); err != nil {
		return &fs.PathError{Op: "remove", Path: name, Err: err}
	}
	return f.Inner.Remove(name)
}

func (f *FaultFS) Stat(name string) (fs.FileInfo, error) {
	if err := f.check("fs.stat"); err != nil {
		return nil, &fs.PathError{Op: "stat", Path: name, Err: err}
	}
	return f.Inner.Stat(name)
}

func (f *FaultFS) ReadDir(name string) ([]fs.DirEntry, error) {
	if err := f.check("fs.readdir"); err != nil {
		return nil, &fs.PathError{Op: "readdir", Path: name, Err: err}
	}
	return f.Inner.ReadDir(name)
}

func (f *FaultFS) MkdirAll(path string, perm fs.FileMode) error {
	if err := f.check("fs.mkdirall"); err != nil {
		return &fs.PathError{Op: "mkdirall", Path: path, Err: err}
	}
	return f.Inner.MkdirAll(path, perm)
}

// faultFile threads per-call faults through reads, writes, syncs, closes.
type faultFile struct {
	File
	fs *FaultFS
}

func (ff *faultFile) Read(p []byte) (int, error) {
	if err := ff.fs.check("fs.read"); err != nil {
		return 0, err
	}
	return ff.File.Read(p)
}

func (ff *faultFile) Write(p []byte) (int, error) {
	keep, flipByte, flipBit, lat, err := ff.fs.Inj.checkWrite("fs.write", len(p))
	if lat > 0 {
		ff.fs.Clock.Sleep(lat)
	}
	if err != nil {
		if keep > 0 {
			n, _ := ff.File.Write(p[:keep]) // partial prefix lands
			return n, err
		}
		return 0, err
	}
	if flipByte >= 0 {
		// Corrupt a copy; the caller's buffer stays pristine.
		dirty := make([]byte, len(p))
		copy(dirty, p)
		dirty[flipByte] ^= 1 << flipBit
		return ff.File.Write(dirty)
	}
	return ff.File.Write(p)
}

func (ff *faultFile) Sync() error {
	if err := ff.fs.check("fs.sync"); err != nil {
		return err
	}
	return ff.File.Sync()
}

func (ff *faultFile) Close() error {
	if err := ff.fs.check("fs.close"); err != nil {
		ff.File.Close() // release the descriptor regardless
		return err
	}
	return ff.File.Close()
}
