package cluster

import (
	"testing"
	"testing/quick"
)

func small(t *testing.T) *Cluster {
	t.Helper()
	c, err := New(Config{
		Nodes:            2,
		NodeCapacity:     2,
		ResumeLatencySec: 45,
		MoveLatencySec:   120,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Nodes: 0, NodeCapacity: 1},
		{Nodes: 1, NodeCapacity: 0},
		{Nodes: 1, NodeCapacity: 1, ResumeLatencySec: -1},
		{Nodes: 1, NodeCapacity: 1, StuckProb: 1.5},
		{Nodes: 1, NodeCapacity: 1, StuckProb: -0.5},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, cfg)
		}
	}
	if err := DefaultConfig(100).Validate(); err != nil {
		t.Errorf("DefaultConfig invalid: %v", err)
	}
}

func TestAllocateRelease(t *testing.T) {
	c := small(t)
	res, err := c.Allocate(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.LatencySec != 45 || res.Moved || res.Stuck {
		t.Fatalf("first allocation = %+v", res)
	}
	if !c.Allocated(1) || c.AllocatedCount() != 1 {
		t.Fatal("allocation not tracked")
	}
	if c.FreeCapacity() != 3 {
		t.Fatalf("FreeCapacity = %d, want 3", c.FreeCapacity())
	}
	c.Release(1)
	if c.Allocated(1) || c.FreeCapacity() != 4 {
		t.Fatal("release not tracked")
	}
	st := c.Stats()
	if st.Allocations != 1 || st.Reclaims != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDoubleAllocateIsNoop(t *testing.T) {
	c := small(t)
	c.Allocate(1)
	res, err := c.Allocate(1)
	if err != nil || res.LatencySec != 0 {
		t.Fatalf("double allocate = %+v, %v", res, err)
	}
	if c.Stats().Allocations != 1 {
		t.Fatal("double allocate counted twice")
	}
}

func TestDoubleReleaseIsNoop(t *testing.T) {
	c := small(t)
	c.Allocate(1)
	c.Release(1)
	c.Release(1)
	if c.Stats().Reclaims != 1 {
		t.Fatal("double release counted twice")
	}
	if c.FreeCapacity() != 4 {
		t.Fatalf("FreeCapacity = %d after double release", c.FreeCapacity())
	}
}

func TestHomeNodeAffinity(t *testing.T) {
	c := small(t)
	c.Allocate(1)
	c.Release(1)
	res, _ := c.Allocate(1)
	if res.Moved {
		t.Fatal("re-allocation on a free home node reported a move")
	}
}

func TestMoveWhenHomeNodeFull(t *testing.T) {
	c := small(t)
	// Fill db 1's home node with other tenants.
	c.Allocate(1)
	home := c.home[1]
	c.Release(1)
	filler := 100
	for c.free[home] > 0 {
		c.home[filler] = home
		c.Allocate(filler)
		filler++
	}
	res, err := c.Allocate(1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Moved {
		t.Fatal("full home node did not force a move")
	}
	if res.LatencySec != 45+120 {
		t.Fatalf("move latency = %d, want 165", res.LatencySec)
	}
	if c.home[1] == home {
		t.Fatal("home node not updated after move")
	}
	if c.Stats().Moves != 1 {
		t.Fatal("move not counted")
	}
}

func TestOutOfCapacity(t *testing.T) {
	c := small(t)
	for i := 0; i < 4; i++ {
		if _, err := c.Allocate(i); err != nil {
			t.Fatalf("allocation %d failed: %v", i, err)
		}
	}
	if _, err := c.Allocate(99); err == nil {
		t.Fatal("allocation beyond capacity succeeded")
	}
	// Releasing frees a slot again.
	c.Release(0)
	if _, err := c.Allocate(99); err != nil {
		t.Fatalf("allocation after release failed: %v", err)
	}
}

func TestStuckWorkflows(t *testing.T) {
	c, err := New(Config{
		Nodes: 10, NodeCapacity: 100,
		ResumeLatencySec: 45, StuckProb: 0.5, StuckExtraSec: 600,
	}, 42)
	if err != nil {
		t.Fatal(err)
	}
	stuck := 0
	for i := 0; i < 500; i++ {
		res, err := c.Allocate(i)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stuck {
			stuck++
			if res.LatencySec != 645 {
				t.Fatalf("stuck latency = %d, want 645", res.LatencySec)
			}
		}
	}
	if stuck < 180 || stuck > 320 {
		t.Fatalf("stuck count = %d of 500 at p=0.5", stuck)
	}
	if c.Stats().Stuck != stuck {
		t.Fatal("stuck counter mismatch")
	}
}

func TestPeakAllocated(t *testing.T) {
	c := small(t)
	c.Allocate(1)
	c.Allocate(2)
	c.Allocate(3)
	c.Release(1)
	c.Release(2)
	if got := c.Stats().PeakAllocated; got != 3 {
		t.Fatalf("PeakAllocated = %d, want 3", got)
	}
}

// Property: free capacity plus allocated count is invariant and per-node
// free capacity never goes negative, under arbitrary operation sequences.
func TestQuickCapacityConservation(t *testing.T) {
	f := func(ops []uint16) bool {
		c, err := New(Config{Nodes: 3, NodeCapacity: 4, ResumeLatencySec: 1}, 9)
		if err != nil {
			return false
		}
		for _, op := range ops {
			db := int(op % 20)
			if op%2 == 0 {
				c.Allocate(db) // may fail when full; fine
			} else {
				c.Release(db)
			}
			if c.FreeCapacity()+c.AllocatedCount() != c.Capacity() {
				return false
			}
			for _, f := range c.free {
				if f < 0 || f > 4 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAllocateReleaseCycle(b *testing.B) {
	c, _ := New(DefaultConfig(1000), 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		db := i % 500
		c.Allocate(db)
		c.Release(db)
	}
}
