// Package cluster simulates the physical substrate of an Azure SQL region:
// a fleet of nodes with finite capacity, and the resource allocation and
// reclamation workflows whose latency and volume motivate ProRP.
//
// Two production effects from the paper are modelled:
//
//   - Delayed resource availability (Section 1, limitation 1): allocating
//     resources takes ResumeLatencySec; if the database's home node has no
//     free capacity it must move to another node, which costs extra
//     (König et al., cited as [42] in the paper).
//   - Workflow overhead and reliability (Sections 1 and 7): each workflow
//     is counted, and a configurable fraction gets "stuck" and needs the
//     diagnostics-and-mitigation runner to complete.
//
// Capacity is counted in abstract units; the binary problem of the paper
// means one database consumes one unit while resumed or logically paused
// and zero while physically paused.
package cluster

import (
	"fmt"
	"math/rand"
)

// Config sizes the simulated region.
type Config struct {
	// Nodes is the number of physical machines.
	Nodes int
	// NodeCapacity is how many allocated databases fit on one node.
	NodeCapacity int
	// ResumeLatencySec is the base latency of a resource allocation
	// workflow (demand signal to usable resources).
	ResumeLatencySec int64
	// MoveLatencySec is the extra latency when the database must move to
	// another node because its home node is full.
	MoveLatencySec int64
	// StuckProb is the probability that a workflow gets stuck and needs
	// mitigation by the diagnostics runner.
	StuckProb float64
	// StuckExtraSec is the extra delay a stuck workflow suffers until the
	// mitigation completes it.
	StuckExtraSec int64
}

// DefaultConfig returns a small but contended region: enough capacity for
// the fleet only because idle databases release their units.
func DefaultConfig(databases int) Config {
	nodes := databases/20 + 1
	return Config{
		Nodes:            nodes,
		NodeCapacity:     16,
		ResumeLatencySec: 45,
		MoveLatencySec:   120,
		StuckProb:        0.002,
		StuckExtraSec:    600,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Nodes <= 0 {
		return fmt.Errorf("cluster: %d nodes, want > 0", c.Nodes)
	}
	if c.NodeCapacity <= 0 {
		return fmt.Errorf("cluster: node capacity %d, want > 0", c.NodeCapacity)
	}
	if c.ResumeLatencySec < 0 || c.MoveLatencySec < 0 || c.StuckExtraSec < 0 {
		return fmt.Errorf("cluster: negative latency")
	}
	if c.StuckProb < 0 || c.StuckProb > 1 {
		return fmt.Errorf("cluster: stuck probability %v outside [0,1]", c.StuckProb)
	}
	return nil
}

// AllocResult describes one allocation workflow.
type AllocResult struct {
	// LatencySec is the total delay until resources are usable.
	LatencySec int64
	// Moved reports that the database changed nodes.
	Moved bool
	// Stuck reports that the workflow needed mitigation.
	Stuck bool
}

// Stats are cumulative workflow counters.
type Stats struct {
	Allocations int
	Reclaims    int
	Moves       int
	Stuck       int
	// PeakAllocated is the high-water mark of simultaneously allocated
	// databases.
	PeakAllocated int
}

// Cluster tracks node occupancy. Not safe for concurrent use.
type Cluster struct {
	cfg       Config
	rng       *rand.Rand
	free      []int       // free capacity per node
	home      map[int]int // database -> home node
	allocated map[int]bool
	stats     Stats
}

// New builds a cluster.
func New(cfg Config, seed int64) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	free := make([]int, cfg.Nodes)
	for i := range free {
		free[i] = cfg.NodeCapacity
	}
	return &Cluster{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(seed)),
		free:      free,
		home:      make(map[int]int),
		allocated: make(map[int]bool),
	}, nil
}

// Allocated reports whether db currently holds resources.
func (c *Cluster) Allocated(db int) bool { return c.allocated[db] }

// AllocatedCount reports how many databases currently hold resources.
func (c *Cluster) AllocatedCount() int { return len(c.allocated) }

// Capacity reports the total capacity of the region.
func (c *Cluster) Capacity() int { return c.cfg.Nodes * c.cfg.NodeCapacity }

// Stats returns cumulative workflow counters.
func (c *Cluster) Stats() Stats { return c.stats }

// Allocate runs a resource allocation workflow for db. It prefers the
// database's home node, falls back to the least-loaded node (a move), and
// fails when the region is out of capacity. Allocating an already-allocated
// database is a no-op with zero latency (logical pauses keep resources).
func (c *Cluster) Allocate(db int) (AllocResult, error) {
	if c.allocated[db] {
		return AllocResult{}, nil
	}
	var res AllocResult
	res.LatencySec = c.cfg.ResumeLatencySec

	node, hasHome := c.home[db]
	if !hasHome || c.free[node] == 0 {
		best := -1
		for i, f := range c.free {
			if f > 0 && (best == -1 || f > c.free[best]) {
				best = i
			}
		}
		if best == -1 {
			return AllocResult{}, fmt.Errorf("cluster: no capacity for database %d", db)
		}
		if hasHome {
			// Home node full: tenant must move (paper Section 1).
			res.Moved = true
			res.LatencySec += c.cfg.MoveLatencySec
			c.stats.Moves++
		}
		node = best
		c.home[db] = node
	}

	c.free[node]--
	c.allocated[db] = true
	c.stats.Allocations++
	if len(c.allocated) > c.stats.PeakAllocated {
		c.stats.PeakAllocated = len(c.allocated)
	}

	if c.cfg.StuckProb > 0 && c.rng.Float64() < c.cfg.StuckProb {
		res.Stuck = true
		res.LatencySec += c.cfg.StuckExtraSec
		c.stats.Stuck++
	}
	return res, nil
}

// Release runs a resource reclamation workflow for db (physical pause).
// Releasing an unallocated database is a no-op.
func (c *Cluster) Release(db int) {
	if !c.allocated[db] {
		return
	}
	delete(c.allocated, db)
	c.free[c.home[db]]++
	c.stats.Reclaims++
}

// FreeCapacity reports the total free units across the region.
func (c *Cluster) FreeCapacity() int {
	total := 0
	for _, f := range c.free {
		total += f
	}
	return total
}
