package metrics

import (
	"math"
	"strings"
	"testing"
)

func mustCollector(t *testing.T, from, to int64) *Collector {
	t.Helper()
	c, err := NewCollector(from, to)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestNewCollectorRejectsEmptyWindow(t *testing.T) {
	if _, err := NewCollector(100, 100); err == nil {
		t.Fatal("empty window accepted")
	}
	if _, err := NewCollector(100, 50); err == nil {
		t.Fatal("inverted window accepted")
	}
}

func TestSegmentClipping(t *testing.T) {
	c := mustCollector(t, 100, 200)
	c.AddSegment(Used, 0, 150)          // clips to [100,150) = 50
	c.AddSegment(Saved, 150, 300)       // clips to [150,200) = 50
	c.AddSegment(IdleLogical, 0, 90)    // entirely before: dropped
	c.AddSegment(IdleLogical, 250, 400) // entirely after: dropped
	c.AddSegment(IdleLogical, 120, 120) // empty: dropped
	r := c.Report()
	if r.Durations[Used] != 50 || r.Durations[Saved] != 50 || r.Durations[IdleLogical] != 0 {
		t.Fatalf("durations = %v", r.Durations)
	}
	if r.TotalTime() != 100 {
		t.Fatalf("TotalTime = %d", r.TotalTime())
	}
}

func TestAddSegmentUnknownCategoryPanics(t *testing.T) {
	c := mustCollector(t, 0, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("unknown category did not panic")
		}
	}()
	c.AddSegment(Category(42), 0, 5)
}

func TestEventWindowing(t *testing.T) {
	c := mustCollector(t, 100, 200)
	c.LoginWarm(99)  // before window: dropped
	c.LoginWarm(100) // inclusive start
	c.LoginWarm(150)
	c.LoginCold(199)
	c.LoginCold(200) // exclusive end: dropped
	r := c.Report()
	if r.WarmLogins != 2 || r.ColdLogins != 1 {
		t.Fatalf("logins = %d/%d, want 2/1", r.WarmLogins, r.ColdLogins)
	}
}

func TestQoSPercent(t *testing.T) {
	c := mustCollector(t, 0, 1000)
	for i := 0; i < 8; i++ {
		c.LoginWarm(int64(i))
	}
	for i := 0; i < 2; i++ {
		c.LoginCold(int64(i))
	}
	if got := c.Report().QoSPercent(); !almost(got, 80) {
		t.Fatalf("QoSPercent = %v, want 80", got)
	}
	empty := mustCollector(t, 0, 10).Report()
	if empty.QoSPercent() != 0 {
		t.Fatal("QoS of empty report != 0")
	}
}

func TestIdleDecomposition(t *testing.T) {
	c := mustCollector(t, 0, 1000)
	c.AddSegment(Used, 0, 500)
	c.AddSegment(IdleLogical, 500, 550)
	c.AddSegment(IdlePrewarmCorrect, 550, 580)
	c.AddSegment(IdlePrewarmWrong, 580, 600)
	c.AddSegment(Saved, 600, 990)
	c.AddSegment(Unavailable, 990, 1000)
	r := c.Report()
	if !almost(r.IdlePercent(), 10) {
		t.Fatalf("IdlePercent = %v, want 10", r.IdlePercent())
	}
	if !almost(r.IdleLogicalPercent(), 5) ||
		!almost(r.IdlePrewarmCorrectPercent(), 3) ||
		!almost(r.IdlePrewarmWrongPercent(), 2) {
		t.Fatalf("decomposition = %v/%v/%v",
			r.IdleLogicalPercent(), r.IdlePrewarmCorrectPercent(), r.IdlePrewarmWrongPercent())
	}
	if !almost(r.SavedPercent(), 39) || !almost(r.UsedPercent(), 50) ||
		!almost(r.UnavailablePercent(), 1) {
		t.Fatalf("saved/used/unavailable = %v/%v/%v",
			r.SavedPercent(), r.UsedPercent(), r.UnavailablePercent())
	}
}

func TestPercentagesSumToHundred(t *testing.T) {
	c := mustCollector(t, 0, 100)
	c.AddSegment(Used, 0, 30)
	c.AddSegment(IdleLogical, 30, 45)
	c.AddSegment(IdlePrewarmWrong, 45, 50)
	c.AddSegment(Saved, 50, 99)
	c.AddSegment(Unavailable, 99, 100)
	r := c.Report()
	sum := r.UsedPercent() + r.IdlePercent() + r.SavedPercent() + r.UnavailablePercent()
	if !almost(sum, 100) {
		t.Fatalf("percentages sum to %v", sum)
	}
}

func TestPrewarmCounters(t *testing.T) {
	c := mustCollector(t, 0, 100)
	c.Prewarm(10)
	c.Prewarm(20)
	c.PrewarmUsed(30)
	c.PrewarmWasted(40)
	c.LogicalPause(50)
	c.PhysicalPause(60)
	c.Prewarm(200) // outside window
	r := c.Report()
	if r.Prewarms != 2 || r.PrewarmsUsed != 1 || r.PrewarmsWasted != 1 {
		t.Fatalf("prewarm counters = %d/%d/%d", r.Prewarms, r.PrewarmsUsed, r.PrewarmsWasted)
	}
	if r.LogicalPauses != 1 || r.PhysicalPauses != 1 {
		t.Fatalf("pause counters = %d/%d", r.LogicalPauses, r.PhysicalPauses)
	}
}

func TestEmptyReportPercentages(t *testing.T) {
	r := mustCollector(t, 0, 10).Report()
	for _, v := range []float64{
		r.IdlePercent(), r.SavedPercent(), r.UsedPercent(), r.UnavailablePercent(),
	} {
		if v != 0 {
			t.Fatal("empty report has nonzero percentage")
		}
	}
}

func TestReportString(t *testing.T) {
	c := mustCollector(t, 0, 100)
	c.AddSegment(Used, 0, 50)
	c.LoginWarm(10)
	r := c.Report()
	r.Name = "proactive EU1"
	s := r.String()
	for _, want := range []string{"proactive EU1", "QoS", "idle time", "prewarms"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestCategoryString(t *testing.T) {
	for cat := Category(0); cat < numCategories; cat++ {
		if cat.String() == "" {
			t.Errorf("Category(%d) empty", int(cat))
		}
	}
	if Category(42).String() == "" {
		t.Error("unknown category empty")
	}
}
