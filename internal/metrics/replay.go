package metrics

import (
	"fmt"

	"prorp/internal/telemetry"
)

// ReplayTelemetry computes the KPI report offline, from the long-term
// telemetry log alone — the paper's Cosmos-side evaluation path
// (Section 8: "Customer activity and resource allocation decisions are
// persisted long-term for offline evaluation of KPI metrics").
//
// The reconstruction relies on the event ordering the online components
// guarantee at a shared timestamp: ActivityStart precedes its
// ResumeWarm/ResumeCold, ActivityEnd precedes the pause decision, and
// Prewarm precedes the later outcome events.
//
// One deliberate difference from the online report: the log does not carry
// workflow latencies, so the Unavailable category cannot be reconstructed —
// reactive-resume wait time is accounted as Used. Everything else (QoS
// counts, pause counters, idle decomposition, saved time) matches the
// online collector exactly.
func ReplayTelemetry(log *telemetry.Log, evalFrom, evalTo int64) (Report, error) {
	coll, err := NewCollector(evalFrom, evalTo)
	if err != nil {
		return Report{}, err
	}

	type dbState struct {
		lastT          int64
		cat            Category
		prewarmPending bool
	}
	dbs := map[int]*dbState{}

	close := func(st *dbState, cat Category, t int64) {
		if t > st.lastT {
			coll.AddSegment(cat, st.lastT, t)
			st.lastT = t
		}
	}

	for _, r := range log.Records() {
		st, seen := dbs[r.DB]
		if !seen {
			if r.Kind != telemetry.ActivityStart {
				return Report{}, fmt.Errorf(
					"metrics: database %d first appears with %v at %d, want activity-start",
					r.DB, r.Kind, r.Time)
			}
			// Birth: the database exists and is active from here on.
			dbs[r.DB] = &dbState{lastT: r.Time, cat: Used}
			continue
		}

		switch r.Kind {
		case telemetry.ResumeWarm:
			coll.LoginWarm(r.Time)
			if st.prewarmPending {
				close(st, IdlePrewarmCorrect, r.Time)
				st.prewarmPending = false
			} else {
				close(st, st.cat, r.Time)
			}
			st.cat = Used
		case telemetry.ResumeCold:
			coll.LoginCold(r.Time)
			close(st, st.cat, r.Time)
			st.cat = Used
		case telemetry.ActivityEnd:
			close(st, st.cat, r.Time)
		case telemetry.LogicalPause:
			coll.LogicalPause(r.Time)
			close(st, st.cat, r.Time)
			st.cat = IdleLogical
			st.prewarmPending = false
		case telemetry.PhysicalPause:
			coll.PhysicalPause(r.Time)
			if st.prewarmPending {
				close(st, IdlePrewarmWrong, r.Time)
				st.prewarmPending = false
			} else {
				close(st, st.cat, r.Time)
			}
			st.cat = Saved
		case telemetry.Prewarm:
			coll.Prewarm(r.Time)
			close(st, st.cat, r.Time)
			st.cat = IdleLogical
			st.prewarmPending = true
		case telemetry.PrewarmUsed:
			coll.PrewarmUsed(r.Time)
		case telemetry.PrewarmWasted:
			coll.PrewarmWasted(r.Time)
		case telemetry.ActivityStart, telemetry.WorkflowAllocate,
			telemetry.WorkflowReclaim, telemetry.DatabaseMoved,
			telemetry.Mitigation:
			// Activity starts are accounted through their resume events;
			// workflow records carry no duration.
		default:
			return Report{}, fmt.Errorf("metrics: unknown telemetry kind %v", r.Kind)
		}
	}

	for _, st := range dbs {
		cat := st.cat
		if st.prewarmPending {
			cat = IdlePrewarmCorrect // undecided at the horizon, as online
		}
		close(st, cat, evalTo)
	}
	return coll.Report(), nil
}
