package metrics

import (
	"testing"

	"prorp/internal/telemetry"
)

func rec(t int64, db int, k telemetry.Kind) telemetry.Record {
	return telemetry.Record{Time: t, DB: db, Kind: k}
}

func TestReplaySimpleLifecycle(t *testing.T) {
	l := telemetry.New()
	// Birth at 0, active until 100; logical pause 100-200; warm login at
	// 200 until 300; logical pause at 300, physical pause at 400; cold
	// login at 600.
	l.Append(rec(0, 1, telemetry.ActivityStart))
	l.Append(rec(100, 1, telemetry.ActivityEnd))
	l.Append(rec(100, 1, telemetry.LogicalPause))
	l.Append(rec(200, 1, telemetry.ActivityStart))
	l.Append(rec(200, 1, telemetry.ResumeWarm))
	l.Append(rec(300, 1, telemetry.ActivityEnd))
	l.Append(rec(300, 1, telemetry.LogicalPause))
	l.Append(rec(400, 1, telemetry.PhysicalPause))
	l.Append(rec(600, 1, telemetry.ActivityStart))
	l.Append(rec(600, 1, telemetry.ResumeCold))

	r, err := ReplayTelemetry(l, 0, 700)
	if err != nil {
		t.Fatal(err)
	}
	if r.WarmLogins != 1 || r.ColdLogins != 1 {
		t.Fatalf("logins = %d/%d", r.WarmLogins, r.ColdLogins)
	}
	if r.Durations[Used] != 100+100+100 {
		t.Fatalf("used = %d, want 300", r.Durations[Used])
	}
	if r.Durations[IdleLogical] != 100+100 {
		t.Fatalf("idle-logical = %d, want 200", r.Durations[IdleLogical])
	}
	if r.Durations[Saved] != 200 {
		t.Fatalf("saved = %d, want 200", r.Durations[Saved])
	}
	if r.LogicalPauses != 2 || r.PhysicalPauses != 1 {
		t.Fatalf("pauses = %d/%d", r.LogicalPauses, r.PhysicalPauses)
	}
	if r.TotalTime() != 700 {
		t.Fatalf("total = %d", r.TotalTime())
	}
}

func TestReplayPrewarmOutcomes(t *testing.T) {
	l := telemetry.New()
	l.Append(rec(0, 1, telemetry.ActivityStart))
	l.Append(rec(100, 1, telemetry.ActivityEnd))
	l.Append(rec(100, 1, telemetry.PhysicalPause))
	// Correct prewarm: resumed at 500, used at 600.
	l.Append(rec(500, 1, telemetry.Prewarm))
	l.Append(rec(600, 1, telemetry.ActivityStart))
	l.Append(rec(600, 1, telemetry.ResumeWarm))
	l.Append(rec(600, 1, telemetry.PrewarmUsed))
	l.Append(rec(700, 1, telemetry.ActivityEnd))
	l.Append(rec(700, 1, telemetry.PhysicalPause))
	// Wasted prewarm: resumed at 900, re-paused at 1000.
	l.Append(rec(900, 1, telemetry.Prewarm))
	l.Append(rec(1000, 1, telemetry.PhysicalPause))
	l.Append(rec(1000, 1, telemetry.PrewarmWasted))

	r, err := ReplayTelemetry(l, 0, 1100)
	if err != nil {
		t.Fatal(err)
	}
	if r.Durations[IdlePrewarmCorrect] != 100 {
		t.Fatalf("correct prewarm idle = %d, want 100", r.Durations[IdlePrewarmCorrect])
	}
	if r.Durations[IdlePrewarmWrong] != 100 {
		t.Fatalf("wrong prewarm idle = %d, want 100", r.Durations[IdlePrewarmWrong])
	}
	if r.Prewarms != 2 || r.PrewarmsUsed != 1 || r.PrewarmsWasted != 1 {
		t.Fatalf("prewarm counters = %d/%d/%d", r.Prewarms, r.PrewarmsUsed, r.PrewarmsWasted)
	}
	if r.Durations[Saved] != 400+200+100 {
		t.Fatalf("saved = %d, want 700", r.Durations[Saved])
	}
}

func TestReplayPendingPrewarmAtHorizon(t *testing.T) {
	l := telemetry.New()
	l.Append(rec(0, 1, telemetry.ActivityStart))
	l.Append(rec(100, 1, telemetry.ActivityEnd))
	l.Append(rec(100, 1, telemetry.PhysicalPause))
	l.Append(rec(500, 1, telemetry.Prewarm))
	r, err := ReplayTelemetry(l, 0, 600)
	if err != nil {
		t.Fatal(err)
	}
	if r.Durations[IdlePrewarmCorrect] != 100 {
		t.Fatalf("pending prewarm = %d, want counted correct like online", r.Durations[IdlePrewarmCorrect])
	}
}

func TestReplayRejectsOrphanEvents(t *testing.T) {
	l := telemetry.New()
	l.Append(rec(10, 1, telemetry.Prewarm)) // database never born
	if _, err := ReplayTelemetry(l, 0, 100); err == nil {
		t.Fatal("orphan event accepted")
	}
}

func TestReplayRejectsBadWindow(t *testing.T) {
	if _, err := ReplayTelemetry(telemetry.New(), 100, 100); err == nil {
		t.Fatal("empty window accepted")
	}
}

func TestReplayEmptyLog(t *testing.T) {
	r, err := ReplayTelemetry(telemetry.New(), 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalTime() != 0 {
		t.Fatal("empty log accounted time")
	}
}
