// Package metrics computes the KPI metrics of Section 8 of the ProRP paper:
//
//   - Quality of service (QoS): the percentage of first logins after an
//     idle interval that occur while resources are available (warm) versus
//     unavailable (cold, triggering a reactive resume).
//   - Operational costs (COGS): the percentage of database-time during
//     which resources are allocated but idle, decomposed into logical-pause
//     idle, correct-proactive-resume idle (resumed ahead of a login that
//     did arrive), and wrong-proactive-resume idle (resumed for a login
//     that never came).
//   - Overhead: counters for the allocation/reclamation workflows.
//
// The engine pushes time segments and login events into a Collector, which
// clips everything to the evaluation window and produces a Report.
package metrics

import (
	"fmt"
	"strings"
)

// Category classifies how a database spent a span of time, the exhaustive
// split implied by Definition 2.2 of the paper plus the pre-warm
// refinements of Section 8.
type Category int

const (
	// Used: resources allocated and customer workload running (D=A=1).
	Used Category = iota
	// IdleLogical: logically paused after activity — allocated, unbilled,
	// idle.
	IdleLogical
	// IdlePrewarmCorrect: proactively resumed ahead of a login that did
	// arrive; idle until the customer logged in.
	IdlePrewarmCorrect
	// IdlePrewarmWrong: proactively resumed but the customer never came;
	// idle until resources were reclaimed again.
	IdlePrewarmWrong
	// Saved: physically paused with no demand (D=A=0) — the win.
	Saved
	// Unavailable: demand present but resources not yet allocated (D=1,
	// A=0): the visible delay of a reactive resume.
	Unavailable
	numCategories
)

func (c Category) String() string {
	switch c {
	case Used:
		return "used"
	case IdleLogical:
		return "idle-logical"
	case IdlePrewarmCorrect:
		return "idle-prewarm-correct"
	case IdlePrewarmWrong:
		return "idle-prewarm-wrong"
	case Saved:
		return "saved"
	case Unavailable:
		return "unavailable"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// Collector accumulates KPI inputs over an evaluation window. Segments and
// events outside [EvalFrom, EvalTo) are clipped or dropped, so a simulation
// can warm up (building history) before measurement starts.
type Collector struct {
	evalFrom, evalTo int64

	durations [numCategories]int64

	warmLogins     int
	coldLogins     int
	prewarms       int
	prewarmsUsed   int
	prewarmsWasted int
	logicalPauses  int
	physicalPauses int
}

// NewCollector returns a collector measuring [evalFrom, evalTo).
func NewCollector(evalFrom, evalTo int64) (*Collector, error) {
	if evalTo <= evalFrom {
		return nil, fmt.Errorf("metrics: evaluation window [%d,%d) empty", evalFrom, evalTo)
	}
	return &Collector{evalFrom: evalFrom, evalTo: evalTo}, nil
}

// AddSegment accounts [from, to) of one database's time to the category,
// clipped to the evaluation window.
func (c *Collector) AddSegment(cat Category, from, to int64) {
	if cat < 0 || cat >= numCategories {
		panic(fmt.Sprintf("metrics: unknown category %d", int(cat)))
	}
	if from < c.evalFrom {
		from = c.evalFrom
	}
	if to > c.evalTo {
		to = c.evalTo
	}
	if to > from {
		c.durations[cat] += to - from
	}
}

// inWindow reports whether an instantaneous event at t counts.
func (c *Collector) inWindow(t int64) bool {
	return t >= c.evalFrom && t < c.evalTo
}

// LoginWarm records a first login after idle with resources available.
func (c *Collector) LoginWarm(t int64) {
	if c.inWindow(t) {
		c.warmLogins++
	}
}

// LoginCold records a first login after idle triggering a reactive resume.
func (c *Collector) LoginCold(t int64) {
	if c.inWindow(t) {
		c.coldLogins++
	}
}

// Prewarm records a proactive resume by the control plane.
func (c *Collector) Prewarm(t int64) {
	if c.inWindow(t) {
		c.prewarms++
	}
}

// PrewarmUsed records that a prewarmed database was used by the customer.
func (c *Collector) PrewarmUsed(t int64) {
	if c.inWindow(t) {
		c.prewarmsUsed++
	}
}

// PrewarmWasted records that a prewarmed database physically paused again
// without being used.
func (c *Collector) PrewarmWasted(t int64) {
	if c.inWindow(t) {
		c.prewarmsWasted++
	}
}

// LogicalPause records a logical pause transition.
func (c *Collector) LogicalPause(t int64) {
	if c.inWindow(t) {
		c.logicalPauses++
	}
}

// PhysicalPause records a resource reclamation.
func (c *Collector) PhysicalPause(t int64) {
	if c.inWindow(t) {
		c.physicalPauses++
	}
}

// Report finalizes the KPI metrics.
func (c *Collector) Report() Report {
	return Report{
		EvalFrom:       c.evalFrom,
		EvalTo:         c.evalTo,
		Durations:      c.durations,
		WarmLogins:     c.warmLogins,
		ColdLogins:     c.coldLogins,
		Prewarms:       c.prewarms,
		PrewarmsUsed:   c.prewarmsUsed,
		PrewarmsWasted: c.prewarmsWasted,
		LogicalPauses:  c.logicalPauses,
		PhysicalPauses: c.physicalPauses,
	}
}

// Report is the evaluated KPI set for one simulation run.
type Report struct {
	Name     string // policy / region label, set by the caller
	EvalFrom int64
	EvalTo   int64

	Durations [numCategories]int64

	WarmLogins     int
	ColdLogins     int
	Prewarms       int
	PrewarmsUsed   int
	PrewarmsWasted int
	LogicalPauses  int
	PhysicalPauses int
}

// TotalTime is the accounted database-time in seconds.
func (r Report) TotalTime() int64 {
	var sum int64
	for _, d := range r.Durations {
		sum += d
	}
	return sum
}

// QoSPercent is the paper's headline QoS metric: the percentage of first
// logins after idle that landed on available resources.
func (r Report) QoSPercent() float64 {
	total := r.WarmLogins + r.ColdLogins
	if total == 0 {
		return 0
	}
	return 100 * float64(r.WarmLogins) / float64(total)
}

// pct returns the share of total accounted time spent in the categories.
func (r Report) pct(cats ...Category) float64 {
	total := r.TotalTime()
	if total == 0 {
		return 0
	}
	var sum int64
	for _, c := range cats {
		sum += r.Durations[c]
	}
	return 100 * float64(sum) / float64(total)
}

// IdlePercent is the COGS metric: the percentage of time resources were
// allocated but idle (logical pauses plus both kinds of pre-warm idle).
func (r Report) IdlePercent() float64 {
	return r.pct(IdleLogical, IdlePrewarmCorrect, IdlePrewarmWrong)
}

// IdleLogicalPercent is the logical-pause share of time.
func (r Report) IdleLogicalPercent() float64 { return r.pct(IdleLogical) }

// IdlePrewarmCorrectPercent is the correct-proactive-resume share of time.
func (r Report) IdlePrewarmCorrectPercent() float64 { return r.pct(IdlePrewarmCorrect) }

// IdlePrewarmWrongPercent is the wrong-proactive-resume share of time.
func (r Report) IdlePrewarmWrongPercent() float64 { return r.pct(IdlePrewarmWrong) }

// SavedPercent is the share of time resources were correctly reclaimed.
func (r Report) SavedPercent() float64 { return r.pct(Saved) }

// UsedPercent is the share of time resources were used by customers.
func (r Report) UsedPercent() float64 { return r.pct(Used) }

// UnavailablePercent is the share of time demand went unmet during
// reactive resumes.
func (r Report) UnavailablePercent() float64 { return r.pct(Unavailable) }

// String renders the report as the two panels the paper's figures show:
// QoS (first logins) and COGS (idle time decomposition).
func (r Report) String() string {
	var b strings.Builder
	if r.Name != "" {
		fmt.Fprintf(&b, "%s\n", r.Name)
	}
	fmt.Fprintf(&b, "  QoS: %5.1f%% of first logins warm (%d warm, %d cold)\n",
		r.QoSPercent(), r.WarmLogins, r.ColdLogins)
	fmt.Fprintf(&b, "  idle time: %5.2f%% total (logical %.2f%%, prewarm-correct %.2f%%, prewarm-wrong %.2f%%)\n",
		r.IdlePercent(), r.IdleLogicalPercent(),
		r.IdlePrewarmCorrectPercent(), r.IdlePrewarmWrongPercent())
	fmt.Fprintf(&b, "  saved: %5.2f%%  used: %5.2f%%  unavailable: %5.3f%%\n",
		r.SavedPercent(), r.UsedPercent(), r.UnavailablePercent())
	fmt.Fprintf(&b, "  prewarms: %d (%d used, %d wasted)  pauses: %d logical, %d physical\n",
		r.Prewarms, r.PrewarmsUsed, r.PrewarmsWasted, r.LogicalPauses, r.PhysicalPauses)
	return b.String()
}
