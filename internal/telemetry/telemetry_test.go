package telemetry

import "testing"

func TestAppendAndCount(t *testing.T) {
	l := New()
	l.Append(Record{Time: 10, DB: 1, Kind: ResumeWarm})
	l.Append(Record{Time: 20, DB: 2, Kind: ResumeCold})
	l.Append(Record{Time: 20, DB: 3, Kind: ResumeWarm})
	if l.Len() != 3 {
		t.Fatalf("Len = %d", l.Len())
	}
	if l.Count(ResumeWarm) != 2 || l.Count(ResumeCold) != 1 || l.Count(Prewarm) != 0 {
		t.Fatal("Count broken")
	}
	if l.Count(Kind(-1)) != 0 || l.Count(Kind(999)) != 0 {
		t.Fatal("Count of invalid kind != 0")
	}
}

func TestAppendOutOfOrderPanics(t *testing.T) {
	l := New()
	l.Append(Record{Time: 100, Kind: Prewarm})
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order append did not panic")
		}
	}()
	l.Append(Record{Time: 99, Kind: Prewarm})
}

func TestAppendUnknownKindPanics(t *testing.T) {
	l := New()
	defer func() {
		if recover() == nil {
			t.Fatal("unknown kind did not panic")
		}
	}()
	l.Append(Record{Time: 1, Kind: Kind(99)})
}

func TestCountRange(t *testing.T) {
	l := New()
	for i := int64(0); i < 10; i++ {
		l.Append(Record{Time: i * 10, Kind: PhysicalPause})
	}
	if got := l.CountRange(PhysicalPause, 20, 50); got != 4 {
		t.Fatalf("CountRange = %d, want 4 (inclusive bounds)", got)
	}
	if got := l.CountRange(Prewarm, 0, 100); got != 0 {
		t.Fatalf("CountRange other kind = %d", got)
	}
}

func TestBuckets(t *testing.T) {
	l := New()
	for _, ts := range []int64{0, 5, 59, 60, 61, 150, 240} {
		l.Append(Record{Time: ts, Kind: Prewarm})
	}
	got := l.Buckets(Prewarm, 0, 240, 60)
	// [0,60): 3; [60,120): 2; [120,180): 1; [180,240): 0. 240 excluded.
	want := []int{3, 2, 1, 0}
	if len(got) != len(want) {
		t.Fatalf("Buckets len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Buckets = %v, want %v", got, want)
		}
	}
}

func TestBucketsPartialLastInterval(t *testing.T) {
	l := New()
	l.Append(Record{Time: 95, Kind: Prewarm})
	got := l.Buckets(Prewarm, 0, 100, 60)
	if len(got) != 2 || got[1] != 1 {
		t.Fatalf("Buckets = %v, want [0 1]", got)
	}
}

func TestBucketsDegenerate(t *testing.T) {
	l := New()
	if l.Buckets(Prewarm, 0, 100, 0) != nil {
		t.Error("zero interval did not return nil")
	}
	if l.Buckets(Prewarm, 100, 100, 10) != nil {
		t.Error("empty range did not return nil")
	}
}

func TestVisit(t *testing.T) {
	l := New()
	l.Append(Record{Time: 1, DB: 7, Kind: Mitigation})
	l.Append(Record{Time: 2, DB: 8, Kind: Prewarm})
	l.Append(Record{Time: 3, DB: 9, Kind: Mitigation})
	var dbs []int
	l.Visit(Mitigation, func(r Record) { dbs = append(dbs, r.DB) })
	if len(dbs) != 2 || dbs[0] != 7 || dbs[1] != 9 {
		t.Fatalf("Visit collected %v", dbs)
	}
}

func TestKindStrings(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == "" {
			t.Errorf("Kind(%d).String() empty", int(k))
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind prints empty")
	}
}
