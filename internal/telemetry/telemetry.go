// Package telemetry is the long-term event log of the ProRP infrastructure
// — the stand-in for the Cosmos big-data platform of the paper (Section 3.1).
//
// Every online component emits records here: customer activity, lifecycle
// transitions, resource allocation and reclamation workflows, control-plane
// pre-warms, and mitigations. The KPI evaluation (Section 8) and the
// offline training pipeline both consume this log. Records carry the same
// schema the paper describes: timestamp in seconds, database identifier,
// and the component result.
package telemetry

import "fmt"

// Kind classifies a telemetry record.
type Kind int

const (
	// ActivityStart: a customer login (start of demand).
	ActivityStart Kind = iota
	// ActivityEnd: end of customer activity.
	ActivityEnd
	// ResumeWarm: first login after idle with resources available.
	ResumeWarm
	// ResumeCold: first login after idle triggering a reactive resume.
	ResumeCold
	// LogicalPause: database entered logical pause.
	LogicalPause
	// PhysicalPause: resources reclaimed.
	PhysicalPause
	// Prewarm: control plane proactively resumed the database (Algorithm 5).
	Prewarm
	// PrewarmUsed: a prewarmed database was used by the customer (a
	// correct proactive resume).
	PrewarmUsed
	// PrewarmWasted: a prewarmed database physically paused again without
	// customer use (a wrong proactive resume).
	PrewarmWasted
	// WorkflowAllocate: a resource allocation workflow ran in the backend.
	WorkflowAllocate
	// WorkflowReclaim: a resource reclamation workflow ran in the backend.
	WorkflowReclaim
	// DatabaseMoved: allocation required moving the database to another
	// node (capacity shortage on the home node).
	DatabaseMoved
	// Mitigation: the diagnostics runner mitigated a stuck workflow.
	Mitigation
	numKinds
)

var kindNames = [...]string{
	ActivityStart:    "activity-start",
	ActivityEnd:      "activity-end",
	ResumeWarm:       "resume-warm",
	ResumeCold:       "resume-cold",
	LogicalPause:     "logical-pause",
	PhysicalPause:    "physical-pause",
	Prewarm:          "prewarm",
	PrewarmUsed:      "prewarm-used",
	PrewarmWasted:    "prewarm-wasted",
	WorkflowAllocate: "workflow-allocate",
	WorkflowReclaim:  "workflow-reclaim",
	DatabaseMoved:    "database-moved",
	Mitigation:       "mitigation",
}

func (k Kind) String() string {
	if k >= 0 && int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Record is one telemetry event.
type Record struct {
	Time int64 // epoch seconds
	DB   int   // database identifier
	Kind Kind
}

// Log is an append-only, time-ordered event log. Not safe for concurrent
// use; the simulation is single-threaded and deterministic.
type Log struct {
	records []Record
	counts  [numKinds]int
	lastT   int64
}

// New returns an empty log.
func New() *Log { return &Log{lastT: -1 << 62} }

// Append adds a record. Records must arrive in non-decreasing time order —
// out-of-order appends indicate an engine bug and panic.
func (l *Log) Append(r Record) {
	if r.Time < l.lastT {
		panic(fmt.Sprintf("telemetry: record at %d after %d", r.Time, l.lastT))
	}
	if r.Kind < 0 || r.Kind >= numKinds {
		panic(fmt.Sprintf("telemetry: unknown kind %d", int(r.Kind)))
	}
	l.lastT = r.Time
	l.records = append(l.records, r)
	l.counts[r.Kind]++
}

// Len reports the number of records.
func (l *Log) Len() int { return len(l.records) }

// Count reports how many records of kind k were appended.
func (l *Log) Count(k Kind) int {
	if k < 0 || k >= numKinds {
		return 0
	}
	return l.counts[k]
}

// Records returns the full log. The caller must not mutate it.
func (l *Log) Records() []Record { return l.records }

// CountRange reports records of kind k with Time in [lo, hi].
func (l *Log) CountRange(k Kind, lo, hi int64) int {
	n := 0
	for _, r := range l.records {
		if r.Kind == k && r.Time >= lo && r.Time <= hi {
			n++
		}
	}
	return n
}

// Buckets counts records of kind k in consecutive intervals of width
// `interval` seconds covering [from, to): result[i] counts records with
// from+i*interval <= Time < from+(i+1)*interval. This is the series behind
// Figures 11 and 12 (workflows per iteration of the periodic operation).
func (l *Log) Buckets(k Kind, from, to, interval int64) []int {
	if interval <= 0 || to <= from {
		return nil
	}
	n := (to - from + interval - 1) / interval
	out := make([]int, n)
	for _, r := range l.records {
		if r.Kind != k || r.Time < from || r.Time >= to {
			continue
		}
		out[(r.Time-from)/interval]++
	}
	return out
}

// Visit calls fn for each record of kind k in time order.
func (l *Log) Visit(k Kind, fn func(Record)) {
	for _, r := range l.records {
		if r.Kind == k {
			fn(r)
		}
	}
}
