package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadLog feeds arbitrary text to the log parser: no panics, and
// accepted inputs must round-trip through WriteTo/ReadLog.
func FuzzReadLog(f *testing.F) {
	f.Add("42,7,resume-warm\n100,2,prewarm\n")
	f.Add("")
	f.Add("garbage")
	f.Add("1,2,3\n")
	f.Add("-5,-5,physical-pause\n")

	f.Fuzz(func(t *testing.T, input string) {
		l, err := ReadLog(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if _, err := l.WriteTo(&buf); err != nil {
			t.Fatalf("WriteTo after successful ReadLog: %v", err)
		}
		l2, err := ReadLog(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if l2.Len() != l.Len() {
			t.Fatalf("round trip lost records: %d vs %d", l2.Len(), l.Len())
		}
	})
}
