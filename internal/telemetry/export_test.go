package telemetry

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestExportImportRoundTrip(t *testing.T) {
	l := New()
	l.Append(Record{Time: 100, DB: 1, Kind: ActivityStart})
	l.Append(Record{Time: 200, DB: 2, Kind: Prewarm})
	l.Append(Record{Time: 200, DB: 3, Kind: PhysicalPause})

	var buf bytes.Buffer
	if _, err := l.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != l.Len() {
		t.Fatalf("round trip: %d records, want %d", got.Len(), l.Len())
	}
	for i, r := range got.Records() {
		if r != l.Records()[i] {
			t.Fatalf("record %d: %+v vs %+v", i, r, l.Records()[i])
		}
	}
}

func TestExportFormat(t *testing.T) {
	l := New()
	l.Append(Record{Time: 42, DB: 7, Kind: ResumeWarm})
	var buf bytes.Buffer
	l.WriteTo(&buf)
	if got := buf.String(); got != "42,7,resume-warm\n" {
		t.Fatalf("exported %q", got)
	}
}

func TestReadLogSkipsBlankLines(t *testing.T) {
	l, err := ReadLog(strings.NewReader("\n42,7,resume-warm\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() != 1 {
		t.Fatalf("Len = %d", l.Len())
	}
}

func TestReadLogRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"too few fields":  "42,7\n",
		"too many fields": "42,7,resume-warm,x\n",
		"bad timestamp":   "xx,7,resume-warm\n",
		"bad database":    "42,yy,resume-warm\n",
		"unknown kind":    "42,7,lunch-break\n",
		"out of order":    "100,1,prewarm\n50,1,prewarm\n",
	}
	for name, input := range cases {
		if _, err := ReadLog(strings.NewReader(input)); err == nil {
			t.Errorf("%s: accepted %q", name, input)
		}
	}
}

// Property: any log survives a round trip bit for bit.
func TestQuickExportRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		l := New()
		ts := int64(0)
		for i := 0; i < int(n); i++ {
			ts += rng.Int63n(1000)
			l.Append(Record{Time: ts, DB: rng.Intn(100), Kind: Kind(rng.Intn(int(numKinds)))})
		}
		var buf bytes.Buffer
		if _, err := l.WriteTo(&buf); err != nil {
			return false
		}
		got, err := ReadLog(&buf)
		if err != nil || got.Len() != l.Len() {
			return false
		}
		for i, r := range got.Records() {
			if r != l.Records()[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
