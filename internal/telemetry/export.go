package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Export/Import stand in for the long-term telemetry path of the paper:
// online components emit events, the Cosmos big-data platform stores them,
// and the offline training pipeline reads them back months later. The
// format is one record per line — `timestamp,database,kind` — matching the
// schema described in Section 9.1 (timestamp in seconds, database
// identifier, component result).

// WriteTo exports the log. It implements io.WriterTo.
func (l *Log) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var written int64
	for _, r := range l.records {
		n, err := fmt.Fprintf(bw, "%d,%d,%s\n", r.Time, r.DB, r.Kind)
		written += int64(n)
		if err != nil {
			return written, err
		}
	}
	return written, bw.Flush()
}

// kindByName maps the exported names back to kinds.
var kindByName = func() map[string]Kind {
	m := make(map[string]Kind, numKinds)
	for k := Kind(0); k < numKinds; k++ {
		m[k.String()] = k
	}
	return m
}()

// ReadLog imports a log exported by WriteTo. Records must be in
// non-decreasing time order (Append enforces it).
func ReadLog(r io.Reader) (*Log, error) {
	l := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != 3 {
			return nil, fmt.Errorf("telemetry: line %d: %d fields, want 3", line, len(parts))
		}
		ts, err := strconv.ParseInt(parts[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("telemetry: line %d: bad timestamp: %w", line, err)
		}
		db, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("telemetry: line %d: bad database id: %w", line, err)
		}
		kind, ok := kindByName[parts[2]]
		if !ok {
			return nil, fmt.Errorf("telemetry: line %d: unknown kind %q", line, parts[2])
		}
		if ts < l.lastT {
			return nil, fmt.Errorf("telemetry: line %d: timestamp %d out of order", line, ts)
		}
		l.Append(Record{Time: ts, DB: db, Kind: kind})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return l, nil
}
