package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"prorp"
)

var t0 = time.Date(2023, 9, 1, 0, 0, 0, 0, time.UTC)

// fakeClock is an injectable clock the test moves forward explicitly; the
// background tickers (real time) stay inert during the test.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Set(t time.Time) {
	c.mu.Lock()
	c.t = t
	c.mu.Unlock()
}

func testOptions() prorp.Options {
	opts := prorp.DefaultOptions()
	opts.LogicalPause = time.Hour
	// Keep the real-time proactive-resume ticker out of the test's way; the
	// test drives control-plane beats through POST /v1/ops/resume.
	opts.ResumeOpPeriod = time.Hour
	return opts
}

// call sends one request through the handler and decodes the JSON reply.
func call(t *testing.T, s *Server, method, path, body string) (int, map[string]any) {
	t.Helper()
	var r *strings.Reader
	if body == "" {
		r = strings.NewReader("")
	} else {
		r = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, path, r)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	out := make(map[string]any)
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("%s %s: bad JSON %q: %v", method, path, rec.Body.String(), err)
	}
	return rec.Code, out
}

func wantStatus(t *testing.T, got int, want int, out map[string]any) {
	t.Helper()
	if got != want {
		t.Fatalf("status = %d, want %d (%v)", got, want, out)
	}
}

// TestServerLifecycleAndRestart walks the full serving story: create,
// pattern-driven physical pause, proactive prewarm, warm login, snapshot,
// graceful shutdown, and a second server restoring the fleet from the final
// snapshot — the kill-and-restart contract.
func TestServerLifecycleAndRestart(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "fleet.snap")
	clock := &fakeClock{t: t0.Add(9 * time.Hour)}
	srv, err := New(Config{
		Options:      testOptions(),
		Shards:       4,
		SnapshotPath: snap,
		Now:          clock.Now,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}

	code, out := call(t, srv, "POST", "/v1/db", `{"id":1}`)
	wantStatus(t, code, http.StatusCreated, out)
	if out["state"] != "resumed" {
		t.Fatalf("create reply = %v", out)
	}

	// Three days of 09:00–17:00 activity: the third idle has enough matching
	// days (3/28 >= 0.1) to predict tomorrow's login and physically pause.
	day := 24 * time.Hour
	for d := 0; d < 3; d++ {
		if d > 0 {
			clock.Set(t0.Add(time.Duration(d)*day + 9*time.Hour))
			code, out = call(t, srv, "POST", "/v1/db/1/login", "")
			wantStatus(t, code, http.StatusOK, out)
			if out["event"] != "resume-warm" {
				t.Fatalf("day %d login = %v", d, out)
			}
		}
		clock.Set(t0.Add(time.Duration(d)*day + 17*time.Hour))
		code, out = call(t, srv, "POST", "/v1/db/1/logout", "")
		wantStatus(t, code, http.StatusOK, out)
		want := "logical-pause"
		if d == 2 {
			want = "physical-pause"
		}
		if out["event"] != want {
			t.Fatalf("day %d logout = %v, want event %s", d, out, want)
		}
	}

	code, out = call(t, srv, "GET", "/v1/db/1", "")
	wantStatus(t, code, http.StatusOK, out)
	if out["state"] != "physically-paused" || out["resources_available"] != false {
		t.Fatalf("GET db 1 = %v", out)
	}
	if out["prediction"] == nil {
		t.Fatalf("paused database has no prediction: %v", out)
	}
	code, out = call(t, srv, "GET", "/v1/db/1?windows=1", "")
	wantStatus(t, code, http.StatusOK, out)
	if wins, _ := out["windows"].([]any); len(wins) == 0 {
		t.Fatalf("windows scan empty: %v", out)
	}

	// A second database idles before any pattern exists: logical pause with
	// a pending wake — it rides into the snapshot as the restart's timer.
	clock.Set(t0.Add(3*day + 8*time.Hour))
	code, out = call(t, srv, "POST", "/v1/db", `{"id":2}`)
	wantStatus(t, code, http.StatusCreated, out)
	clock.Set(t0.Add(3*day + 8*time.Hour + 30*time.Minute))
	code, out = call(t, srv, "POST", "/v1/db/2/logout", "")
	wantStatus(t, code, http.StatusOK, out)
	if out["event"] != "logical-pause" || out["wake_at"] == nil {
		t.Fatalf("db 2 logout = %v", out)
	}

	// Minutes ahead of the predicted login, one control-plane beat prewarms
	// database 1.
	clock.Set(t0.Add(3*day + 9*time.Hour - 4*time.Minute))
	code, out = call(t, srv, "POST", "/v1/ops/resume", "")
	wantStatus(t, code, http.StatusOK, out)
	if pws, _ := out["prewarmed"].([]any); len(pws) != 1 || pws[0] != float64(1) {
		t.Fatalf("ops/resume = %v", out)
	}
	code, out = call(t, srv, "GET", "/v1/db/1", "")
	wantStatus(t, code, http.StatusOK, out)
	if out["resources_available"] != true {
		t.Fatalf("prewarmed db 1 = %v", out)
	}

	// The predicted login lands warm.
	clock.Set(t0.Add(3*day + 9*time.Hour))
	code, out = call(t, srv, "POST", "/v1/db/1/login", "")
	wantStatus(t, code, http.StatusOK, out)
	if out["event"] != "resume-warm" || out["from_prewarm"] != true {
		t.Fatalf("prewarmed login = %v", out)
	}

	code, out = call(t, srv, "GET", "/v1/kpi", "")
	wantStatus(t, code, http.StatusOK, out)
	if out["databases"] != float64(2) || out["cold_resumes"] != float64(0) ||
		out["prewarms"] != float64(1) || out["prewarms_used"] != float64(1) ||
		out["qos_percent"] != float64(100) {
		t.Fatalf("kpi = %v", out)
	}
	code, out = call(t, srv, "GET", "/healthz", "")
	wantStatus(t, code, http.StatusOK, out)
	if out["status"] != "ok" || out["databases"] != float64(2) {
		t.Fatalf("healthz = %v", out)
	}

	code, out = call(t, srv, "POST", "/v1/ops/snapshot", "")
	wantStatus(t, code, http.StatusOK, out)
	if out["bytes"] == float64(0) {
		t.Fatalf("ops/snapshot = %v", out)
	}
	if _, err := os.Stat(snap); err != nil {
		t.Fatal(err)
	}

	// End the day and shut down: Close drains the fleet and writes the
	// final snapshot.
	clock.Set(t0.Add(3*day + 17*time.Hour))
	code, out = call(t, srv, "POST", "/v1/db/1/logout", "")
	wantStatus(t, code, http.StatusOK, out)
	if out["event"] != "physical-pause" {
		t.Fatalf("final logout = %v", out)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	// ----- restart ----------------------------------------------------------

	clock.Set(t0.Add(3*day + 18*time.Hour))
	srv2, err := New(Config{
		Options:      testOptions(),
		Shards:       4,
		SnapshotPath: snap,
		Now:          clock.Now,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()

	code, out = call(t, srv2, "GET", "/healthz", "")
	wantStatus(t, code, http.StatusOK, out)
	if out["databases"] != float64(2) {
		t.Fatalf("restored healthz = %v", out)
	}
	code, out = call(t, srv2, "GET", "/v1/db/1", "")
	wantStatus(t, code, http.StatusOK, out)
	if out["state"] != "physically-paused" {
		t.Fatalf("restored db 1 = %v", out)
	}

	// Database 2's restored wake (09:30 on day 3) is already overdue: the
	// wake loop delivers it right after boot, and without a prediction the
	// wake physically pauses it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, out = call(t, srv2, "GET", "/v1/db/2", "")
		wantStatus(t, code, http.StatusOK, out)
		if out["state"] == "physically-paused" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("restored db 2 never woke: %v", out)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The restored fleet is live: next morning's beat prewarms database 1
	// again (database 2 paused without a prediction stays down).
	clock.Set(t0.Add(4*day + 9*time.Hour - 4*time.Minute))
	code, out = call(t, srv2, "POST", "/v1/ops/resume", "")
	wantStatus(t, code, http.StatusOK, out)
	if pws, _ := out["prewarmed"].([]any); len(pws) != 1 || pws[0] != float64(1) {
		t.Fatalf("ops/resume after restart = %v", out)
	}
}

func TestServerErrorPaths(t *testing.T) {
	clock := &fakeClock{t: t0}
	srv, err := New(Config{Options: testOptions(), Now: clock.Now})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	code, out := call(t, srv, "POST", "/v1/db", `{"id":1}`)
	wantStatus(t, code, http.StatusCreated, out)

	code, out = call(t, srv, "POST", "/v1/db", `{"id":1}`)
	wantStatus(t, code, http.StatusConflict, out)

	code, out = call(t, srv, "POST", "/v1/db", `{`)
	wantStatus(t, code, http.StatusBadRequest, out)

	code, out = call(t, srv, "POST", "/v1/db/7/login", "")
	wantStatus(t, code, http.StatusNotFound, out)

	code, out = call(t, srv, "GET", "/v1/db/abc", "")
	wantStatus(t, code, http.StatusBadRequest, out)

	code, out = call(t, srv, "DELETE", "/v1/db/7", "")
	wantStatus(t, code, http.StatusNotFound, out)

	// Snapshots are disabled without a path.
	code, out = call(t, srv, "POST", "/v1/ops/snapshot", "")
	wantStatus(t, code, http.StatusInternalServerError, out)

	// Delete cancels the database and its pending wake.
	clock.Set(t0.Add(time.Hour))
	code, out = call(t, srv, "POST", "/v1/db/1/logout", "")
	wantStatus(t, code, http.StatusOK, out)
	if out["wake_at"] == nil {
		t.Fatalf("logout = %v", out)
	}
	code, out = call(t, srv, "DELETE", "/v1/db/1", "")
	wantStatus(t, code, http.StatusOK, out)
	code, out = call(t, srv, "GET", "/v1/kpi", "")
	wantStatus(t, code, http.StatusOK, out)
	if out["databases"] != float64(0) || out["pending_wakes"] != float64(0) {
		t.Fatalf("kpi after delete = %v", out)
	}
}
