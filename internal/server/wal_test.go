package server

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"prorp"
	"prorp/internal/admission"
	"prorp/internal/breaker"
	"prorp/internal/faults"
	"prorp/internal/shardedfleet"
)

// walSegments lists the journal's segment files, oldest first.
func walSegments(t *testing.T, dir string) []string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	return matches
}

// TestServerWALReplayOnBoot is the tentpole's happy path: events that
// landed after the last snapshot survive a crash because they were
// journaled before they were acknowledged.
func TestServerWALReplayOnBoot(t *testing.T) {
	dir := t.TempDir()
	clock := &fakeClock{t: t0}
	cfg := Config{
		Options:      testOptions(),
		Shards:       4,
		SnapshotPath: filepath.Join(dir, "fleet.snap"),
		WALDir:       filepath.Join(dir, "wal"),
		Now:          clock.Now,
		Logf:         t.Logf,
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Database 1 makes it into a snapshot; database 2 and the login exist
	// only in the journal when the crash lands.
	code, out := call(t, srv, "POST", "/v1/db", `{"id":1}`)
	wantStatus(t, code, http.StatusCreated, out)
	code, out = call(t, srv, "POST", "/v1/ops/snapshot", "")
	wantStatus(t, code, http.StatusOK, out)

	clock.Set(t0.Add(time.Minute))
	code, out = call(t, srv, "POST", "/v1/db", `{"id":2}`)
	wantStatus(t, code, http.StatusCreated, out)
	clock.Set(t0.Add(2 * time.Minute))
	code, out = call(t, srv, "POST", "/v1/db/2/login", "")
	wantStatus(t, code, http.StatusOK, out)
	if out["at"] == nil {
		t.Fatalf("login reply has no server-assigned event time: %v", out)
	}
	srv.Kill() // no final snapshot, no journal seal

	srv2, err := New(cfg)
	if err != nil {
		t.Fatalf("boot after kill: %v", err)
	}
	defer srv2.Close()
	for id := 1; id <= 2; id++ {
		if _, err := srv2.Fleet().State(id); err != nil {
			t.Fatalf("database %d lost: %v", id, err)
		}
	}
	hist, err := srv2.Fleet().History(2)
	if err != nil || len(hist) == 0 || !hist[0].Login {
		t.Fatalf("database 2 history after replay = %v, %v", hist, err)
	}
	code, out = call(t, srv2, "GET", "/v1/kpi", "")
	wantStatus(t, code, http.StatusOK, out)
	// Replay applied the post-snapshot events: create(2) and login(2).
	if out["wal_replayed_records"].(float64) < 2 {
		t.Fatalf("kpi wal_replayed_records = %v, want >= 2 (%v)", out["wal_replayed_records"], out)
	}
}

// TestServerWALBootWithoutSnapshot covers the snapshot-missing corner: a
// journal with history but no snapshot at all must rebuild the fleet from
// the journal alone — including rescheduling the wake timers the replayed
// decisions ask for.
func TestServerWALBootWithoutSnapshot(t *testing.T) {
	dir := t.TempDir()
	clock := &fakeClock{t: t0}
	cfg := Config{
		Options:      testOptions(),
		SnapshotPath: filepath.Join(dir, "fleet.snap"), // never written
		WALDir:       filepath.Join(dir, "wal"),
		Now:          clock.Now,
		Logf:         t.Logf,
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	code, out := call(t, srv, "POST", "/v1/db", `{"id":7}`)
	wantStatus(t, code, http.StatusCreated, out)
	clock.Set(t0.Add(30 * time.Minute))
	code, out = call(t, srv, "POST", "/v1/db/7/logout", "")
	wantStatus(t, code, http.StatusOK, out)
	if out["event"] != "logical-pause" || out["wake_at"] == nil {
		t.Fatalf("logout = %v", out)
	}
	srv.Kill() // the snapshot file was never created

	srv2, err := New(cfg)
	if err != nil {
		t.Fatalf("boot from journal alone: %v", err)
	}
	defer srv2.Close()
	code, out = call(t, srv2, "GET", "/v1/db/7", "")
	wantStatus(t, code, http.StatusOK, out)
	if out["state"] != "logically-paused" {
		t.Fatalf("rebuilt db 7 = %v", out)
	}
	code, out = call(t, srv2, "GET", "/v1/kpi", "")
	wantStatus(t, code, http.StatusOK, out)
	if out["pending_wakes"] != float64(1) {
		t.Fatalf("replay did not reschedule the wake: %v", out)
	}
	if out["databases"] != float64(1) || out["wal_replayed_records"] != float64(2) {
		t.Fatalf("kpi after journal-only rebuild = %v", out)
	}
}

// TestServerWALSnapshotRacedCompaction pins the interrupted-compaction
// contract: when segment removal fails after a snapshot, the leftover
// segments below the boundary must be skipped by the next boot's replay
// (their events are already in the snapshot) and swept by the next
// successful compaction.
func TestServerWALSnapshotRacedCompaction(t *testing.T) {
	inj := faults.NewInjector(11)
	dir := t.TempDir()
	clock := &fakeClock{t: t0}
	cfg := Config{
		Options:      testOptions(),
		SnapshotPath: filepath.Join(dir, "fleet.snap"),
		WALDir:       filepath.Join(dir, "wal"),
		FS:           faults.NewFaultFS(faults.OS, inj, funcClock{now: clock.Now, sleep: noSleep}),
		Now:          clock.Now,
		Sleep:        noSleep,
		Backoff: faults.Backoff{Attempts: 2, Base: time.Millisecond,
			Max: 2 * time.Millisecond, Factor: 2, Rand: inj.Rand()},
		Logf: t.Logf,
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range []int{1, 2, 3} {
		clock.Set(t0.Add(time.Duration(i) * time.Minute))
		code, out := call(t, srv, "POST", "/v1/db", fmt.Sprintf(`{"id":%d}`, id))
		wantStatus(t, code, http.StatusCreated, out)
	}
	before := len(walSegments(t, cfg.WALDir))

	// The snapshot lands but every segment removal fails: compaction is
	// interrupted, leftovers below the boundary stay on disk.
	inj.FailProb("fs.remove", 1, nil)
	code, out := call(t, srv, "POST", "/v1/ops/snapshot", "")
	wantStatus(t, code, http.StatusOK, out)
	if got := len(walSegments(t, cfg.WALDir)); got <= before {
		t.Fatalf("expected leftover segments after failed compaction: %d before, %d after", before, got)
	}

	// One more event after the boundary, then crash.
	clock.Set(t0.Add(10 * time.Minute))
	code, out = call(t, srv, "POST", "/v1/db/1/login", "")
	wantStatus(t, code, http.StatusOK, out)
	srv.Kill()
	inj.HealAll()

	// Boot: the leftovers hold create(1..3), all already in the snapshot.
	// Replay must start at the boundary — exactly one record (the login)
	// applied, nothing skipped, no double-count from the leftovers.
	srv2, err := New(cfg)
	if err != nil {
		t.Fatalf("boot over leftover segments: %v", err)
	}
	defer srv2.Close()
	code, out = call(t, srv2, "GET", "/v1/kpi", "")
	wantStatus(t, code, http.StatusOK, out)
	if out["databases"] != float64(3) || out["wal_replayed_records"] != float64(1) ||
		out["wal_replay_skipped"] != float64(0) {
		t.Fatalf("kpi after boot over leftovers = %v", out)
	}

	// A healthy snapshot now sweeps the leftovers: only the fresh active
	// segment survives.
	code, out = call(t, srv2, "POST", "/v1/ops/snapshot", "")
	wantStatus(t, code, http.StatusOK, out)
	if segs := walSegments(t, cfg.WALDir); len(segs) != 1 {
		t.Fatalf("compaction left %d segments, want 1: %v", len(segs), segs)
	}
}

// TestServerCreateBodyCap verifies the request-size guard on the one
// endpoint that reads a body.
func TestServerCreateBodyCap(t *testing.T) {
	srv, err := New(Config{Options: testOptions(), Now: (&fakeClock{t: t0}).Now})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	huge := `{"id":1,"pad":"` + strings.Repeat("x", maxCreateBody) + `"}`
	code, out := call(t, srv, "POST", "/v1/db", huge)
	wantStatus(t, code, http.StatusRequestEntityTooLarge, out)
	// The fleet must be untouched and the endpoint still usable.
	code, out = call(t, srv, "POST", "/v1/db", `{"id":1}`)
	wantStatus(t, code, http.StatusCreated, out)
}

// TestWriteErrStatusMapping pins the error-to-status table, including the
// backlog and journal-unavailable cases that only fire under load.
func TestWriteErrStatusMapping(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{shardedfleet.ErrUnknownDatabase, http.StatusNotFound},
		{prorp.ErrUnknownDatabase, http.StatusNotFound},
		{shardedfleet.ErrDuplicateDatabase, http.StatusConflict},
		{shardedfleet.ErrBacklog, http.StatusTooManyRequests},
		{fmt.Errorf("queue: %w", shardedfleet.ErrBacklog), http.StatusTooManyRequests},
		{shardedfleet.ErrClosed, http.StatusServiceUnavailable},
		{fmt.Errorf("%w: disk on fire", errJournalUnavailable), http.StatusServiceUnavailable},
		{&routeError{status: http.StatusTemporaryRedirect, owner: "g2",
			location: "http://g2/v1/db/7", reason: "owned elsewhere"}, http.StatusTemporaryRedirect},
		{&routeError{status: http.StatusMisdirectedRequest, owner: "g2",
			reason: "stale shard map"}, http.StatusMisdirectedRequest},
		{errSlotFenced, http.StatusServiceUnavailable},
		{fmt.Errorf("migrate: %w", errSlotFenced), http.StatusServiceUnavailable},
		{admission.ErrShedLoad, http.StatusTooManyRequests},
		{fmt.Errorf("%w: class=background", admission.ErrShedLoad), http.StatusTooManyRequests},
		{breaker.ErrOpen, http.StatusServiceUnavailable},
		{fmt.Errorf("proxy to group %q: %w", "g2", breaker.ErrOpen), http.StatusServiceUnavailable},
		{errNotPrimary, http.StatusServiceUnavailable},
		{errQuorumUnreached, http.StatusServiceUnavailable},
		{errors.New("anything else"), http.StatusInternalServerError},
	}
	for _, tc := range cases {
		rec := httptest.NewRecorder()
		writeErr(rec, tc.err)
		if rec.Code != tc.want {
			t.Errorf("writeErr(%v) = %d, want %d", tc.err, rec.Code, tc.want)
		}
	}
	// Routing verdicts are more than a status: a redirect names the owner's
	// address, a fence rejection names the retry window.
	rec := httptest.NewRecorder()
	writeErr(rec, &routeError{status: http.StatusTemporaryRedirect, owner: "g2",
		location: "http://g2/v1/db/7", reason: "owned elsewhere"})
	if loc := rec.Header().Get("Location"); loc != "http://g2/v1/db/7" {
		t.Errorf("redirect Location = %q", loc)
	}
	if g := rec.Header().Get(HeaderShardGroup); g != "g2" {
		t.Errorf("redirect %s = %q, want g2", HeaderShardGroup, g)
	}
	rec = httptest.NewRecorder()
	writeErr(rec, errSlotFenced)
	if ra := rec.Header().Get("Retry-After"); ra != "1" {
		t.Errorf("fence Retry-After = %q, want 1", ra)
	}
	// Every transient rejection carries a Retry-After; permanent verdicts
	// must not (a 404 told to retry in a second would be a lie).
	retryable := []error{admission.ErrShedLoad, breaker.ErrOpen, errSlotFenced,
		shardedfleet.ErrBacklog, errQuorumUnreached, errNotPrimary}
	for _, err := range retryable {
		rec := httptest.NewRecorder()
		writeErr(rec, err)
		if rec.Header().Get("Retry-After") == "" {
			t.Errorf("writeErr(%v): no Retry-After on a transient rejection", err)
		}
	}
	for _, err := range []error{shardedfleet.ErrUnknownDatabase, shardedfleet.ErrDuplicateDatabase, errors.New("boom")} {
		rec := httptest.NewRecorder()
		writeErr(rec, err)
		if ra := rec.Header().Get("Retry-After"); ra != "" {
			t.Errorf("writeErr(%v): unexpected Retry-After %q", err, ra)
		}
	}
	// writeErrAfter rounds the computed hint up to whole seconds, floor 1:
	// a 2.5s breaker cooldown reads as 3, a 10ms sojourn as 1.
	for _, tc := range []struct {
		d    time.Duration
		want string
	}{{10 * time.Millisecond, "1"}, {time.Second, "1"}, {2500 * time.Millisecond, "3"}, {10 * time.Second, "10"}} {
		rec := httptest.NewRecorder()
		writeErrAfter(rec, breaker.ErrOpen, tc.d)
		if ra := rec.Header().Get("Retry-After"); ra != tc.want {
			t.Errorf("writeErrAfter(%v): Retry-After = %q, want %q", tc.d, ra, tc.want)
		}
	}
}
