// Shard routing: every per-database request resolves through the versioned
// slot map (internal/shardmap) and is served locally, proxied to the owning
// group's primary, or 307-redirected there. The map version acts like a
// routing epoch: requests carrying a stale version are refused with 421 and
// the current map, so a client (or peer) can never write through a group
// that no longer owns the slot.
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"prorp/internal/breaker"
	"prorp/internal/faults"
	"prorp/internal/shardmap"
	"prorp/internal/wal"
)

// Routing headers. Every routed response names the serving group and its
// map version; proxied requests carry the forwarding group so a second hop
// (two groups disagreeing about ownership) fails fast instead of looping.
const (
	HeaderShardGroup      = "X-Shard-Group"
	HeaderShardmapVersion = "X-Shardmap-Version"
	HeaderShardForwarded  = "X-Shard-Forwarded"
)

// errSlotFenced refuses writes to a slot mid-migration: the cutover window
// between quiesce and map swap. Mapped to 503 + Retry-After — by the time
// the client retries, the new owner (or the aborted fence-holder) serves it.
var errSlotFenced = errors.New("slot is write-fenced for migration")

// routeError carries a routing verdict through writeErr: 307 when the
// owner's address is known (Location set), 421 when the request reached a
// group that does not own the database or carried a stale map version. The
// body includes the current map so the client can fix its routing table.
type routeError struct {
	status   int // http.StatusTemporaryRedirect or http.StatusMisdirectedRequest
	owner    string
	location string
	m        *shardmap.Map
	reason   string
}

func (e *routeError) Error() string { return e.reason }

// router is the per-server routing state: the current map (atomic pointer,
// swapped whole on adoption), the peer address book, and the write fences
// that hold during migration cutover.
type router struct {
	group    string
	peers    map[string]string // other groups -> base URL
	redirect bool              // 307 instead of proxying
	doer     faults.Doer
	breakers *breaker.Group // per-peer circuits around doer (nil = disabled)
	path     string         // PRM1 persistence ("" = memory only)
	fs       faults.FS
	logf     func(string, ...any)

	// mapP is lock-free for readers; adoptMu serializes writers (see adopt).
	mapP    atomic.Pointer[shardmap.Map]
	adoptMu sync.Mutex

	fenceMu sync.Mutex
	fenced  map[int]bool

	// Counters, exported through /metrics (see registerRouterMetrics).
	localRequests   atomic.Uint64
	proxied         atomic.Uint64
	redirected      atomic.Uint64
	misrouted       atomic.Uint64
	fenceRejects    atomic.Uint64
	scatterRequests atomic.Uint64
	scatterFailures atomic.Uint64
	scatterPartials atomic.Uint64
	migrations      atomic.Uint64
	migrationsFail  atomic.Uint64
	dbsMigrated     atomic.Uint64
	adoptions       atomic.Uint64
}

// newRouter assembles the routing state: the map is restored from
// cfg.ShardmapPath when a valid PRM1 image exists there, otherwise built
// fresh (round-robin over this group plus every peer) and persisted.
func newRouter(cfg Config) (*router, error) {
	rt := &router{
		group:    cfg.Group,
		peers:    cfg.GroupPeers,
		redirect: cfg.RouterRedirect,
		doer:     cfg.RouterDoer,
		path:     cfg.ShardmapPath,
		fs:       cfg.FS,
		logf:     cfg.Logf,
		fenced:   make(map[int]bool),
	}
	if rt.doer == nil {
		rt.doer = &http.Client{Timeout: 10 * time.Second}
	}
	if cfg.BreakerThreshold >= 0 {
		// One breaker per peer host around every inter-group call — proxy,
		// scatter fan-out, migration ship, lost-ack probe — so a hung group
		// degrades its own path in O(1) instead of O(timeout) per request.
		rt.breakers = breaker.NewGroup(cfg.BreakerThreshold, cfg.BreakerCooldown, nil)
		rt.doer = breaker.Wrap(rt.doer, rt.breakers)
	}
	var m *shardmap.Map
	if rt.path != "" {
		var err error
		m, err = shardmap.Load(rt.fs, rt.path)
		if err != nil && !errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("server: loading shard map %s: %w", rt.path, err)
		}
	}
	if m == nil {
		groups := []string{cfg.Group}
		for g := range cfg.GroupPeers {
			groups = append(groups, g)
		}
		var err error
		m, err = shardmap.New(groups)
		if err != nil {
			return nil, fmt.Errorf("server: building shard map: %w", err)
		}
		if rt.path != "" {
			if err := shardmap.Save(rt.fs, rt.path, m); err != nil {
				return nil, fmt.Errorf("server: persisting shard map: %w", err)
			}
		}
	}
	if !m.HasGroup(cfg.Group) {
		return nil, fmt.Errorf("server: group %q not in shard map (groups %v)", cfg.Group, m.Groups())
	}
	rt.mapP.Store(m)
	return rt, nil
}

// multiGroup reports whether fleet-wide surfaces need scatter-gather.
func (rt *router) multiGroup() bool { return rt != nil && len(rt.peers) > 0 }

// adopt installs a strictly newer map and persists it. Older or
// same-version maps are ignored — version is the fencing order. adoptMu
// holds across the compare+store+persist sequence: with the persist outside
// the lock, two racing adoptions could let the OLDER map's on-disk rename
// land last, and a reboot would trust ownership this node already gave away.
func (rt *router) adopt(m *shardmap.Map) bool {
	rt.adoptMu.Lock()
	defer rt.adoptMu.Unlock()
	cur := rt.mapP.Load()
	if cur != nil && m.Version() <= cur.Version() {
		return false
	}
	rt.mapP.Store(m)
	rt.adoptions.Add(1)
	if rt.path != "" {
		if err := shardmap.Save(rt.fs, rt.path, m); err != nil {
			rt.logf("shardmap: persisting adopted v%d failed: %v", m.Version(), err)
		}
	}
	rt.logf("shardmap: adopted v%d", m.Version())
	return true
}

func (rt *router) fence(slot int) {
	rt.fenceMu.Lock()
	rt.fenced[slot] = true
	rt.fenceMu.Unlock()
}

func (rt *router) unfence(slot int) {
	rt.fenceMu.Lock()
	delete(rt.fenced, slot)
	rt.fenceMu.Unlock()
}

func (rt *router) isFenced(slot int) bool {
	rt.fenceMu.Lock()
	defer rt.fenceMu.Unlock()
	return rt.fenced[slot]
}

// routeDB resolves one per-database request through the shard map. It
// returns false when the request is local (the caller proceeds) and true
// when it was fully handled here: proxied, redirected, or refused. body is
// the already-read request body, replayed on proxy.
func (s *Server) routeDB(w http.ResponseWriter, r *http.Request, id int, body []byte, mutation bool) bool {
	rt := s.router
	if rt == nil {
		return false
	}
	m := rt.mapP.Load()
	w.Header().Set(HeaderShardGroup, rt.group)
	w.Header().Set(HeaderShardmapVersion, strconv.FormatUint(m.Version(), 10))
	slot := shardmap.SlotOf(id)
	// A request pinned to an older map version is stale routing: refuse it
	// and hand back the current map rather than guessing.
	if v := r.Header.Get(HeaderShardmapVersion); v != "" {
		if cv, err := strconv.ParseUint(v, 10, 64); err == nil && cv < m.Version() {
			rt.misrouted.Add(1)
			s.writeErr(w, &routeError{
				status: http.StatusMisdirectedRequest,
				owner:  m.Owner(slot), m: m,
				reason: fmt.Sprintf("stale shard map version %d (current %d)", cv, m.Version()),
			})
			return true
		}
	}
	if m.Owner(slot) == rt.group {
		if mutation && rt.isFenced(slot) {
			rt.fenceRejects.Add(1)
			s.writeErr(w, errSlotFenced)
			return true
		}
		rt.localRequests.Add(1)
		return false
	}
	// Another group owns the slot. A request that was already forwarded
	// once must not hop again: two maps disagree, fail fast with ours.
	if r.Header.Get(HeaderShardForwarded) != "" {
		rt.misrouted.Add(1)
		s.writeErr(w, &routeError{
			status: http.StatusMisdirectedRequest,
			owner:  m.Owner(slot), m: m,
			reason: fmt.Sprintf("group %q does not own database %d (slot %d)", rt.group, id, slot),
		})
		return true
	}
	return s.proxyOrRedirect(w, r, id, body, mutation)
}

// proxyOrRedirect forwards a remote-owned request. In redirect mode (or
// when the owner's address is unknown) the client is told where to go; in
// proxy mode the request is replayed against the owner, once adopting a
// newer map from a 421 reply and re-resolving (the new owner may be us).
func (s *Server) proxyOrRedirect(w http.ResponseWriter, r *http.Request, id int, body []byte, mutation bool) bool {
	rt := s.router
	for attempt := 0; attempt < 2; attempt++ {
		m := rt.mapP.Load()
		slot := shardmap.SlotOf(id)
		owner := m.Owner(slot)
		if owner == rt.group {
			// The adopted map moved the database to us after all.
			if mutation && rt.isFenced(slot) {
				rt.fenceRejects.Add(1)
				s.writeErr(w, errSlotFenced)
				return true
			}
			rt.localRequests.Add(1)
			return false
		}
		addr := rt.peers[owner]
		if rt.redirect || addr == "" {
			e := &routeError{
				status: http.StatusMisdirectedRequest,
				owner:  owner, m: m,
				reason: fmt.Sprintf("database %d (slot %d) is owned by group %q", id, slot, owner),
			}
			if addr != "" {
				e.status = http.StatusTemporaryRedirect
				e.location = addr + r.URL.RequestURI()
				rt.redirected.Add(1)
			} else {
				// No address for the owner: this is a routing dead end (421),
				// not a redirect — count it with the other misroutes.
				rt.misrouted.Add(1)
			}
			s.writeErr(w, e)
			return true
		}
		req, err := http.NewRequest(r.Method, addr+r.URL.RequestURI(), bytes.NewReader(body))
		if err != nil {
			writeJSON(w, http.StatusBadGateway, errorJSON{Error: "proxy: " + err.Error()})
			return true
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(HeaderShardForwarded, rt.group)
		req.Header.Set(HeaderShardmapVersion, strconv.FormatUint(m.Version(), 10))
		resp, err := rt.doer.Do(req)
		if err != nil {
			if errors.Is(err, breaker.ErrOpen) {
				// The owner's circuit is open: degrade in O(1) with a
				// Retry-After derived from the cooldown, not a bare 502.
				s.writeErr(w, fmt.Errorf("proxy to group %q: %w", owner, err))
				return true
			}
			writeJSON(w, http.StatusBadGateway,
				errorJSON{Error: fmt.Sprintf("proxy to group %q: %v", owner, err)})
			return true
		}
		s.earnRetry()
		respBody, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			writeJSON(w, http.StatusBadGateway,
				errorJSON{Error: fmt.Sprintf("proxy to group %q: reading reply: %v", owner, rerr)})
			return true
		}
		if resp.StatusCode == http.StatusMisdirectedRequest && attempt == 0 {
			// The peer's map is newer than ours: adopt it and re-resolve —
			// but only while the retry budget has tokens. Under an outage a
			// fleet of proxies each doubling its requests is how overload
			// compounds; past the budget the client gets the 421 and retries
			// on its own schedule.
			if nm := mapFromErrorBody(respBody); nm != nil && rt.adopt(nm) && s.spendRetry() {
				continue
			}
		}
		rt.proxied.Add(1)
		for _, h := range []string{"Content-Type", HeaderShardGroup, HeaderShardmapVersion, "Retry-After"} {
			if v := resp.Header.Get(h); v != "" {
				w.Header().Set(h, v)
			}
		}
		w.WriteHeader(resp.StatusCode)
		w.Write(respBody)
		return true
	}
	writeJSON(w, http.StatusBadGateway, errorJSON{Error: "proxy: no route after map adoption"})
	return true
}

// mapFromErrorBody extracts the shard map from a routeError reply body.
func mapFromErrorBody(body []byte) *shardmap.Map {
	var e struct {
		ShardMap *shardmap.Map `json:"shard_map"`
	}
	if err := json.Unmarshal(body, &e); err != nil {
		return nil
	}
	return e.ShardMap
}

// handleShardMap serves the current map: JSON for humans and routing
// clients, the CRC-framed PRM1 image (?format=prm1) for peers — reconcile
// and lost-ack probes must detect transport corruption, and the binary
// frame carries its own checksum where JSON would not.
func (s *Server) handleShardMap(w http.ResponseWriter, r *http.Request) {
	rt := s.router
	if rt == nil {
		writeJSON(w, http.StatusNotFound, errorJSON{Error: "server is not partitioned (no -group configured)"})
		return
	}
	m := rt.mapP.Load()
	if r.URL.Query().Get("format") == "prm1" {
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set(HeaderShardmapVersion, strconv.FormatUint(m.Version(), 10))
		w.Write(m.Encode())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"group":     rt.group,
		"role":      s.node.Role().String(),
		"shard_map": m,
	})
}

// handleShardReconcile pulls every peer's map, adopts the newest, and (on a
// write-accepting node) sweeps out databases the adopted map assigns
// elsewhere. Recovers the lost-ack migration corner: a destination that
// durably adopted a new map before its ack was lost re-publishes it here.
func (s *Server) handleShardReconcile(w http.ResponseWriter, r *http.Request) {
	rt := s.router
	if rt == nil {
		writeJSON(w, http.StatusNotFound, errorJSON{Error: "server is not partitioned (no -group configured)"})
		return
	}
	before := rt.mapP.Load().Version()
	unreachable := 0
	for g, addr := range rt.peers {
		m, err := s.fetchGroupMap(addr)
		if err != nil {
			unreachable++
			rt.logf("reconcile: fetching %q map: %v", g, err)
			continue
		}
		rt.adopt(m)
	}
	dropped := 0
	if s.node.CanAcceptWrites() {
		// migrateMu makes the sweep atomic with an in-flight adoption: the
		// adopt handler restores a slot's databases BEFORE swapping the map
		// in, so an unsynchronized sweep here could read the old map and
		// journal-delete the freshly restored databases — then the adopt
		// acks, the source deletes its copies, and the slot is simply gone.
		s.migrateMu.Lock()
		dropped = s.sweepDisowned()
		s.migrateMu.Unlock()
	}
	cur := rt.mapP.Load().Version()
	writeJSON(w, http.StatusOK, map[string]any{
		"version":           cur,
		"changed":           cur != before,
		"dropped":           dropped,
		"peers_unreachable": unreachable,
	})
}

// fetchGroupMap retrieves a peer's map in PRM1 form; the CRC catches
// response-body corruption that a JSON parse could let through.
func (s *Server) fetchGroupMap(addr string) (*shardmap.Map, error) {
	req, err := http.NewRequest(http.MethodGet, addr+"/v1/shard/map?format=prm1", nil)
	if err != nil {
		return nil, err
	}
	resp, err := s.router.doer.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	b, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, err
	}
	return shardmap.Decode(b)
}

// sweepDisowned deletes (journaled) every local database the current map
// assigns to another group: the tail end of a migration cutover, and the
// boot-time cleanup after a crash that interrupted one.
func (s *Server) sweepDisowned() int {
	rt := s.router
	m := rt.mapP.Load()
	dropped := 0
	for _, id := range s.Fleet().IDs() {
		if m.OwnerOf(id) == rt.group {
			continue
		}
		s.walGate.RLock()
		_, err := s.journalize(wal.RecordDelete, id, s.now())
		if err == nil {
			err = s.Fleet().Delete(id)
		}
		s.walGate.RUnlock()
		if err != nil {
			rt.logf("sweep: dropping disowned database %d: %v", id, err)
			continue
		}
		s.wakes.schedule(id, time.Time{})
		dropped++
	}
	if dropped > 0 {
		rt.logf("sweep: dropped %d databases now owned elsewhere (map v%d)", dropped, m.Version())
	}
	return dropped
}

// ownedSlotsSorted is a small helper for /healthz and metrics.
func (rt *router) ownedSlotCount() int {
	return len(rt.mapP.Load().OwnedSlots(rt.group))
}

// peerGroupsSorted returns the peer group names, sorted, for deterministic
// scatter accounting.
func (rt *router) peerGroupsSorted() []string {
	gs := make([]string, 0, len(rt.peers))
	for g := range rt.peers {
		gs = append(gs, g)
	}
	sort.Strings(gs)
	return gs
}
