package server

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"prorp/internal/faults"
	"prorp/internal/wal"
)

// stepClock is a shared fake clock chaos workers advance atomically: every
// Step moves time forward one second, so the timestamps the server assigns
// to one database's events are strictly increasing (one worker owns one
// database and steps between its own requests).
type stepClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *stepClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *stepClock) Step() {
	c.mu.Lock()
	c.t = c.t.Add(time.Second)
	c.mu.Unlock()
}

// ackedEvent is one mutation the server acknowledged with HTTP 200: the
// client holds the server-assigned event time from the response. After
// kill-replay, the tuple must exist in the rebuilt history.
type ackedEvent struct {
	unix  int64
	login bool
}

// TestChaosWALKillReplay is the end-to-end half of the kill-replay chaos
// gate (the journal-level half is wal.TestChaosWALTornTail): 50 seeded
// iterations of a full server — snapshot persistence plus event journal —
// killed mid-traffic while the disk misbehaves, crash debris damaged
// post-mortem, then rebooted. The invariant is the issue's acceptance bar:
// zero acknowledged-but-lost events. Every create acknowledged with 201
// resolves after reboot; every login/logout acknowledged with 200 is
// present in the rebuilt activity history at its server-assigned time.
//
// Workers stop driving their database at the first failed request: a
// failed append can still leave a durable journal record (fsync failed
// after the write landed), and replaying such a record legitimately
// absorbs a later event's history tuple — at-least-once replay changes
// unacknowledged state, never acknowledged state. Runs under -race in CI
// (make wal-chaos).
func TestChaosWALKillReplay(t *testing.T) {
	const iterations = 50
	for seed := int64(0); seed < iterations; seed++ {
		t.Run(fmt.Sprintf("seed%02d", seed), func(t *testing.T) {
			t.Parallel()
			chaosWALKillReplay(t, seed)
		})
	}
}

func chaosWALKillReplay(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	inj := faults.NewInjector(seed)
	dir := t.TempDir()
	clock := &stepClock{t: t0}
	fsync := wal.FsyncAlways
	if rng.Intn(2) == 0 {
		fsync = wal.FsyncBatch // group commit still blocks acks on the fsync
	}
	cfg := Config{
		Options:          testOptions(),
		Shards:           4,
		SnapshotPath:     filepath.Join(dir, "fleet.snap"),
		SnapshotEvery:    time.Hour, // snapshots driven explicitly
		WALDir:           filepath.Join(dir, "wal"),
		WALFsync:         fsync,
		WALSegmentBytes:  4096, // tiny segments: rotations under fire
		WALBatchInterval: time.Millisecond,
		FS:               faults.NewFaultFS(faults.OS, inj, funcClock{now: clock.Now, sleep: noSleep}),
		Now:              clock.Now,
		Sleep:            noSleep,
		Backoff: faults.Backoff{Attempts: 3, Base: time.Millisecond,
			Max: 4 * time.Millisecond, Factor: 2, Rand: inj.Rand()},
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("boot: %v", err)
	}

	// Phase 1 — anchor population, disk healthy: one database per worker.
	const workers = 4
	for id := 1; id <= workers; id++ {
		clock.Step()
		code, out := call(t, srv, "POST", "/v1/db", fmt.Sprintf(`{"id":%d}`, id))
		wantStatus(t, code, http.StatusCreated, out)
	}

	// Phase 2 — the disk goes bad, traffic keeps coming.
	inj.PartialWrites("fs.write", 0.2*rng.Float64())
	inj.FailProb("fs.write", 0.1*rng.Float64(), nil)
	inj.FailProb("fs.sync", 0.15*rng.Float64(), nil)
	inj.FailProb("fs.openfile", 0.1*rng.Float64(), nil)
	inj.FailProb("fs.createtemp", 0.3*rng.Float64(), nil)
	inj.FailProb("fs.rename", 0.3*rng.Float64(), nil)

	acked := make([][]ackedEvent, workers)
	ackedCreates := make([]bool, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := w + 1
			// A chaos-phase create too: acknowledged means it must survive.
			clock.Step()
			rec := httptest.NewRecorder()
			req := httptest.NewRequest("POST", "/v1/db", strings.NewReader(fmt.Sprintf(`{"id":%d}`, 100+id)))
			srv.ServeHTTP(rec, req)
			ackedCreates[w] = rec.Code == http.StatusCreated

			// Alternating logout/login (a fresh database starts active);
			// stop at the first failure — see the test comment.
			login := false
			for i := 0; i < 40; i++ {
				clock.Step()
				verb := "logout"
				if login {
					verb = "login"
				}
				rec := httptest.NewRecorder()
				req := httptest.NewRequest("POST", fmt.Sprintf("/v1/db/%d/%s", id, verb), strings.NewReader(""))
				srv.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					return
				}
				var out struct {
					At time.Time `json:"at"`
				}
				if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
					t.Errorf("worker %d: bad %s reply %q: %v", w, verb, rec.Body.String(), err)
					return
				}
				acked[w] = append(acked[w], ackedEvent{unix: out.At.Unix(), login: login})
				login = !login
			}
		}(w)
	}

	// Mid-traffic: a couple of snapshot attempts (compaction racing the
	// journal; they may fail, that is the point), then the kill.
	for i := 0; i < 2; i++ {
		time.Sleep(time.Duration(1+rng.Intn(5)) * time.Millisecond)
		fire(srv, "POST", "/v1/ops/snapshot", "")
	}
	time.Sleep(time.Duration(rng.Intn(10)) * time.Millisecond)
	srv.Kill() // in-flight requests fail; workers observe and stop
	wg.Wait()

	// Post-mortem damage to the crash debris: bytes beyond the active
	// segment's durable prefix are fair game for a torn write.
	if path, durable := srv.wal.ActiveSegment(); path != "" {
		if data, err := os.ReadFile(path); err == nil && int64(len(data)) > durable {
			tail := data[durable:]
			switch rng.Intn(3) {
			case 0:
				os.WriteFile(path, data[:durable+int64(rng.Intn(len(tail)+1))], 0o644)
			case 1:
				tail[rng.Intn(len(tail))] ^= byte(1 << rng.Intn(8))
				os.WriteFile(path, data, 0o644)
			case 2:
				f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
				f.Write(make([]byte, rng.Intn(64)))
				f.Close()
			}
		}
	}
	inj.HealAll()

	// Phase 3 — reboot and audit. Boot must succeed (torn tails truncate,
	// never refuse), and nothing acknowledged may be missing.
	srv2, err := New(cfg)
	if err != nil {
		t.Fatalf("boot after kill: %v", err)
	}
	defer srv2.Close()
	for id := 1; id <= workers; id++ {
		if _, err := srv2.Fleet().State(id); err != nil {
			t.Fatalf("anchor database %d lost: %v", id, err)
		}
	}
	lost := 0
	for w := 0; w < workers; w++ {
		id := w + 1
		if ackedCreates[w] {
			if _, err := srv2.Fleet().State(100 + id); err != nil {
				t.Errorf("acknowledged create of %d lost: %v", 100+id, err)
				lost++
			}
		}
		hist, err := srv2.Fleet().History(id)
		if err != nil {
			t.Fatalf("history of %d: %v", id, err)
		}
		tuples := make(map[int64]bool, len(hist))
		for _, e := range hist {
			tuples[e.Time.Unix()] = e.Login
		}
		for _, ev := range acked[w] {
			got, ok := tuples[ev.unix]
			if !ok || got != ev.login {
				t.Errorf("db %d: acknowledged event (unix %d, login=%v) missing from rebuilt history", id, ev.unix, ev.login)
				lost++
			}
		}
	}
	if lost > 0 {
		t.Fatalf("%d acknowledged events lost after kill-replay", lost)
	}

	// The rebuilt server serves.
	clock.Step()
	rec := httptest.NewRecorder()
	srv2.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/db/1/login", strings.NewReader("")))
	if rec.Code != http.StatusOK {
		t.Fatalf("rebooted server cannot serve: %d %s", rec.Code, rec.Body.String())
	}
}
