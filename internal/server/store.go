package server

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"path/filepath"
	"time"

	"prorp/internal/faults"
	"prorp/internal/obs"
)

// snapshotStore is the durable side of the serving runtime: it persists
// fleet archives with the failure model a production control plane needs.
//
//   - Writes are atomic: temp file in the target directory, fsync, rename.
//     A crash mid-write leaves the previous snapshot untouched.
//   - Every snapshot is framed in a checksummed container (PRS2): magic,
//     payload length, CRC-32C, the WAL compaction boundary, payload (the
//     PRF1 fleet archive). Restores verify the frame before a single byte
//     reaches the fleet decoder. The boundary is the WAL segment sequence
//     the journal rotated to when this snapshot was taken: on boot, replay
//     starts there, and the checksum covers it — a flipped boundary would
//     otherwise silently skip acknowledged events.
//   - The previous snapshot is rotated to <path>.bak before the rename, so
//     one corrupted write never destroys the last-known-good state; loads
//     fall back to the .bak when the primary is corrupt or missing. A .bak
//     carries an older boundary, so falling back simply replays more WAL.
//   - Transient I/O errors are retried with capped jittered exponential
//     backoff through the faults.FS/Clock seams, so chaos tests drive the
//     whole path deterministically.
//
// PRS1 containers (no WAL boundary) and bare PRF1 archives (the
// pre-container on-disk format) still load, so snapshots written by
// earlier builds restore without migration; both imply boundary 0 —
// replay everything on disk, which at worst double-applies (idempotent at
// the history layer) and never loses.
const (
	storeMagic       = 0x50525331 // "PRS1" (legacy, read-only)
	storeMagic2      = 0x50525332 // "PRS2"
	storeHeaderSize  = 16         // PRS1: magic u32 + payload length u64 + crc32c u32
	storeHeader2Size = 24         // PRS2: PRS1 header + WAL boundary u64
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// errSnapshotCorrupt classifies container-level damage (bad magic, length
// mismatch, checksum mismatch). It is distinct from transient I/O errors:
// corruption is never retried, it triggers the .bak fallback instead.
var errSnapshotCorrupt = errors.New("snapshot container corrupt")

type snapshotStore struct {
	path    string
	fs      faults.FS
	clock   faults.Clock
	backoff faults.Backoff
	logf    func(string, ...any)
	// Latency histograms for the disk half (framing excluded); nil-safe.
	saveHist *obs.Histogram
	loadHist *obs.Histogram
}

func (st *snapshotStore) bakPath() string { return st.path + ".bak" }

// Save atomically persists one archive: frame, temp-write, fsync, rotate,
// rename — the whole attempt retried on transient errors. walSeq is the
// journal boundary recorded in the container (0 when no WAL is
// configured). It returns the container size and the number of retries
// that were needed.
func (st *snapshotStore) Save(src io.WriterTo, walSeq uint64) (n int64, retries int, err error) {
	var payload bytes.Buffer
	payload.Write(make([]byte, storeHeader2Size)) // frame filled in below
	if _, err := src.WriteTo(&payload); err != nil {
		return 0, 0, fmt.Errorf("serializing fleet: %w", err)
	}
	return st.savePayload(payload.Bytes(), walSeq)
}

// frameContainer fills in the PRS2 header of a buffer carrying
// storeHeader2Size bytes of headroom at the front and returns it. The
// same frame goes to disk (savePayload) and over the wire (the
// replication snapshot endpoint).
func frameContainer(frame []byte, walSeq uint64) []byte {
	body := frame[storeHeader2Size:]
	binary.LittleEndian.PutUint32(frame[0:4], storeMagic2)
	binary.LittleEndian.PutUint64(frame[4:12], uint64(len(body)))
	binary.LittleEndian.PutUint64(frame[16:24], walSeq)
	// The checksum covers the boundary too: bit rot there must trigger the
	// .bak fallback, not a silently wrong replay start.
	binary.LittleEndian.PutUint32(frame[12:16], crc32.Checksum(frame[16:], crcTable))
	return frame
}

// savePayload persists a pre-serialized archive. frame must have
// storeHeader2Size bytes of headroom at the front for the container
// header.
func (st *snapshotStore) savePayload(frame []byte, walSeq uint64) (n int64, retries int, err error) {
	frame = frameContainer(frame, walSeq)

	if st.saveHist != nil {
		defer st.saveHist.ObserveSince(time.Now())
	}
	retries, err = faults.Retry(st.clock, st.backoff, func() error {
		return st.writeOnce(frame)
	})
	if err != nil {
		return 0, retries, err
	}
	return int64(len(frame)), retries, nil
}

// writeOnce is one atomic write attempt.
func (st *snapshotStore) writeOnce(frame []byte) error {
	dir, base := filepath.Dir(st.path), filepath.Base(st.path)
	f, err := st.fs.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	_, err = f.Write(frame)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		st.fs.Remove(tmp)
		return err
	}
	// Keep the current snapshot as last-known-good before replacing it. A
	// failed rotation is not fatal — the replace below is still atomic,
	// only the fallback lineage goes stale — but a crash between the two
	// renames is covered: loads fall back to the .bak.
	if _, serr := st.fs.Stat(st.path); serr == nil {
		if rerr := st.fs.Rename(st.path, st.bakPath()); rerr != nil {
			st.logf("snapshot rotation failed (continuing): %v", rerr)
		}
	}
	if err := st.fs.Rename(tmp, st.path); err != nil {
		st.fs.Remove(tmp)
		return err
	}
	return nil
}

// Load reads, verifies, and decodes the snapshot chain: the primary first,
// then the last-known-good .bak. restore is called with the verified
// payload of each candidate until one decodes; fellBack reports that the
// surviving candidate was not the primary, and walSeq is the surviving
// snapshot's WAL replay boundary (0 for legacy containers). When no
// snapshot exists at all the returned error satisfies
// errors.Is(err, fs.ErrNotExist).
func (st *snapshotStore) Load(restore func(io.Reader) error) (fellBack bool, walSeq uint64, err error) {
	if st.loadHist != nil {
		defer st.loadHist.ObserveSince(time.Now())
	}
	var failures []error
	missing := 0
	for i, p := range []string{st.path, st.bakPath()} {
		payload, seq, rerr := st.readVerify(p)
		if rerr != nil {
			if errors.Is(rerr, fs.ErrNotExist) {
				missing++
			} else {
				st.logf("snapshot %s unusable: %v", p, rerr)
			}
			failures = append(failures, fmt.Errorf("%s: %w", p, rerr))
			continue
		}
		if derr := restore(bytes.NewReader(payload)); derr != nil {
			st.logf("snapshot %s does not decode: %v", p, derr)
			failures = append(failures, fmt.Errorf("%s: %w", p, derr))
			continue
		}
		return i > 0, seq, nil
	}
	if missing == 2 {
		return false, 0, fmt.Errorf("no snapshot: %w", fs.ErrNotExist)
	}
	return false, 0, errors.Join(failures...)
}

// readVerify reads one snapshot file and verifies its container frame,
// returning the inner PRF1 payload and the WAL boundary. Transient read
// errors are retried; corruption is not.
func (st *snapshotStore) readVerify(path string) ([]byte, uint64, error) {
	var data []byte
	var notExist error
	_, err := faults.Retry(st.clock, st.backoff, func() error {
		f, err := st.fs.Open(path)
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				notExist = err // a missing file is a verdict, not a transient
				return nil
			}
			return err
		}
		notExist = nil
		data, err = io.ReadAll(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		return err
	})
	if notExist != nil {
		return nil, 0, notExist
	}
	if err != nil {
		return nil, 0, err
	}
	return verifyContainer(data)
}

// verifyContainer validates a PRS2 (or legacy PRS1) frame and returns its
// payload and WAL boundary. Bare PRF1 archives pass through unchecked for
// backward compatibility.
func verifyContainer(data []byte) ([]byte, uint64, error) {
	if len(data) < 4 {
		return nil, 0, fmt.Errorf("%w: %d bytes", errSnapshotCorrupt, len(data))
	}
	switch binary.LittleEndian.Uint32(data[0:4]) {
	case storeMagic2:
		if len(data) < storeHeader2Size {
			return nil, 0, fmt.Errorf("%w: truncated header (%d bytes)", errSnapshotCorrupt, len(data))
		}
		length := binary.LittleEndian.Uint64(data[4:12])
		sum := binary.LittleEndian.Uint32(data[12:16])
		walSeq := binary.LittleEndian.Uint64(data[16:24])
		body := data[storeHeader2Size:]
		if uint64(len(body)) != length {
			return nil, 0, fmt.Errorf("%w: payload is %d bytes, header says %d",
				errSnapshotCorrupt, len(body), length)
		}
		if got := crc32.Checksum(data[16:], crcTable); got != sum {
			return nil, 0, fmt.Errorf("%w: checksum %#x, want %#x", errSnapshotCorrupt, got, sum)
		}
		return body, walSeq, nil
	case storeMagic:
		if len(data) < storeHeaderSize {
			return nil, 0, fmt.Errorf("%w: truncated header (%d bytes)", errSnapshotCorrupt, len(data))
		}
		length := binary.LittleEndian.Uint64(data[4:12])
		sum := binary.LittleEndian.Uint32(data[12:16])
		body := data[storeHeaderSize:]
		if uint64(len(body)) != length {
			return nil, 0, fmt.Errorf("%w: payload is %d bytes, header says %d",
				errSnapshotCorrupt, len(body), length)
		}
		if got := crc32.Checksum(body, crcTable); got != sum {
			return nil, 0, fmt.Errorf("%w: checksum %#x, want %#x", errSnapshotCorrupt, got, sum)
		}
		return body, 0, nil
	case 0x50524631: // bare "PRF1" fleet archive from pre-container builds
		return data, 0, nil
	default:
		return nil, 0, fmt.Errorf("%w: bad magic %#x", errSnapshotCorrupt, binary.LittleEndian.Uint32(data[0:4]))
	}
}

// funcClock adapts the server's Now/Sleep funcs to the faults.Clock seam.
type funcClock struct {
	now   func() time.Time
	sleep func(time.Duration)
}

func (c funcClock) Now() time.Time        { return c.now() }
func (c funcClock) Sleep(d time.Duration) { c.sleep(d) }
