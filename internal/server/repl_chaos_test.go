package server

import (
	"bytes"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"prorp/internal/faults"
	"prorp/internal/repl"
	"prorp/internal/wal"
)

// ackedWrite is one event a primary acknowledged with HTTP 200; after
// failover it must exist, at its server-assigned time, on every node that
// claims convergence.
type ackedWrite struct {
	id    int
	unix  int64
	login bool
}

// assertAcked audits that every acknowledged event is present in a node's
// rebuilt activity history.
func assertAcked(t *testing.T, s *Server, acked []ackedWrite) {
	t.Helper()
	hist := make(map[int]map[int64]bool)
	for _, ev := range acked {
		m, ok := hist[ev.id]
		if !ok {
			h, err := s.Fleet().History(ev.id)
			if err != nil {
				t.Fatalf("history of %d: %v", ev.id, err)
			}
			m = make(map[int64]bool, len(h))
			for _, e := range h {
				m[e.Time.Unix()] = e.Login
			}
			hist[ev.id] = m
		}
		got, ok := m[ev.unix]
		if !ok || got != ev.login {
			t.Fatalf("acked event on db %d (unix %d, login=%v) missing after failover", ev.id, ev.unix, ev.login)
		}
	}
}

// TestChaosReplFailover is the replication acceptance gate: 50 seeded
// iterations of a primary/replica pair whose stream transport misbehaves
// (partitions, response bodies cut mid-flight — often exactly on a frame
// boundary — and bit flips), each iteration ending in kill-primary,
// promote-replica, write-through-the-new-primary, and a reboot of the old
// primary as a replica of the new epoch. Invariants, every iteration:
//
//   - Zero acked-write loss: every create and event acknowledged before
//     the kill is present on the promoted replica. The pair converges
//     before the kill — replication is asynchronous, so the contract
//     covers replicated acks, and the lag gauges bound the rest.
//   - Convergence is byte-exact: the rebooted old primary re-enters as a
//     follower (force-resyncing off the new primary's snapshot, since its
//     local state predates any stream cursor) and its archive becomes
//     byte-identical to the new primary's.
//
// Runs under -race in CI (make repl-chaos).
func TestChaosReplFailover(t *testing.T) {
	const iterations = 50
	for seed := int64(0); seed < iterations; seed++ {
		t.Run(fmt.Sprintf("seed%02d", seed), func(t *testing.T) {
			t.Parallel()
			chaosReplFailover(t, seed)
		})
	}
}

func chaosReplFailover(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	inj := faults.NewInjector(seed)
	clock := &stepClock{t: t0}
	net := &mapDoer{}
	faultNet := faults.NewFaultDoer(net, inj, funcClock{now: clock.Now, sleep: noSleep})

	acfg := replConfig(t.TempDir(), clock)
	acfg.WALSegmentBytes = 1024 // tiny segments: rotations mid-stream
	a, err := New(acfg)
	if err != nil {
		t.Fatalf("boot primary: %v", err)
	}
	net.bind("a", a)

	// The replica's transport is hostile from its first poll.
	inj.FailProb("http.request", 0.2*rng.Float64(), fmt.Errorf("chaos: partitioned"))
	inj.PartialWrites("http.body", 0.25*rng.Float64())
	inj.CorruptWrites("http.body", 0.25*rng.Float64())

	bcfg := replConfig(t.TempDir(), clock)
	bcfg.WALSegmentBytes = 1024
	bcfg.Role = repl.RoleReplica
	bcfg.PrimaryAddr = "http://a"
	bcfg.ReplDoer = faultNet
	bcfg.ReplPollInterval = time.Millisecond
	bcfg.ReplMaxBatchBytes = int(wal.FrameSize) * (1 + rng.Intn(8)) // tiny batches
	b, err := New(bcfg)
	if err != nil {
		t.Fatalf("boot replica: %v", err)
	}
	defer b.Close()

	// Phase 1 — acked traffic into the primary; every 2xx is covered by
	// the zero-loss invariant. Alternation per database keeps the event
	// stream legal (a fresh database starts active, so logout leads).
	dbs := 2 + rng.Intn(3)
	for id := 1; id <= dbs; id++ {
		clock.Step()
		code, out := call(t, a, "POST", "/v1/db", fmt.Sprintf(`{"id":%d}`, id))
		wantStatus(t, code, http.StatusCreated, out)
	}
	var acked []ackedWrite
	nextLogin := make([]bool, dbs+1)
	event := func(s *Server) {
		id := 1 + rng.Intn(dbs)
		clock.Step()
		verb := "logout"
		if nextLogin[id] {
			verb = "login"
		}
		code, out := call(t, s, "POST", fmt.Sprintf("/v1/db/%d/%s", id, verb), "")
		wantStatus(t, code, http.StatusOK, out)
		at, err := time.Parse(time.RFC3339, out["at"].(string))
		if err != nil {
			t.Fatalf("bad event time %v: %v", out["at"], err)
		}
		acked = append(acked, ackedWrite{id: id, unix: at.Unix(), login: nextLogin[id]})
		nextLogin[id] = !nextLogin[id]
	}
	for i := 10 + rng.Intn(30); i > 0; i-- {
		event(a)
	}

	// Sometimes compact the primary mid-run: the replica's cursor falls
	// below retained history and it must resync from the snapshot endpoint
	// over the same hostile transport.
	if rng.Intn(2) == 0 {
		fire(a, "POST", "/v1/ops/snapshot", "")
		for i := 0; i < 3; i++ {
			event(a)
		}
	}

	// Convergence before the kill, under fire the whole way.
	waitUntil(t, "replica to converge before the kill", func() bool {
		return bytes.Equal(archive(t, a), archive(t, b))
	})

	// Kill the primary — no drain, no final snapshot — and take its
	// address off the network.
	net.bind("a", nil)
	a.Kill()

	// Promote the replica; B is the primary of epoch 2 from here.
	code, out := call(t, b, "POST", "/v1/repl/promote", "")
	wantStatus(t, code, http.StatusOK, out)
	if out["promoted"] != true {
		t.Fatalf("promote = %v", out)
	}
	net.bind("b", b)

	// Zero acked-write loss across the failover.
	for id := 1; id <= dbs; id++ {
		if _, err := b.Fleet().State(id); err != nil {
			t.Fatalf("database %d lost across failover: %v", id, err)
		}
	}
	assertAcked(t, b, acked)

	// The new primary acknowledges writes of its own.
	clock.Step()
	code, out = call(t, b, "POST", "/v1/db", fmt.Sprintf(`{"id":%d}`, 100+dbs))
	wantStatus(t, code, http.StatusCreated, out)
	for i := 0; i < 5; i++ {
		event(b)
	}

	// Reboot the old primary from its own disks as a replica of the new
	// one: it replays its own journal, then — because that state predates
	// any stream cursor — force-resyncs from the new primary's snapshot,
	// adopts epoch 2 off the stream, and tails the rest.
	a2cfg := acfg
	a2cfg.Role = repl.RoleReplica
	a2cfg.PrimaryAddr = "http://b"
	a2cfg.ReplDoer = faultNet
	a2cfg.ReplPollInterval = time.Millisecond
	a2cfg.ReplMaxBatchBytes = bcfg.ReplMaxBatchBytes
	a2, err := New(a2cfg)
	if err != nil {
		t.Fatalf("reboot old primary as replica: %v", err)
	}
	defer a2.Close()
	net.bind("a", a2)

	deadline := time.Now().Add(120 * time.Second)
	for {
		if a2.Node().Epoch() >= 2 && bytes.Equal(archive(t, b), archive(t, a2)) {
			break
		}
		if time.Now().After(deadline) {
			ba, aa := archive(t, b), archive(t, a2)
			st := a2.followerRef().Stats()
			t.Fatalf("old primary did not converge: epoch=%d cursor=%s stats=%+v lastErr=%q archB=%d archA2=%d equal=%v",
				a2.Node().Epoch(), a2.followerRef().Cursor(), st, a2.followerRef().LastError(), len(ba), len(aa), bytes.Equal(ba, aa))
		}
		time.Sleep(2 * time.Millisecond)
	}
	assertAcked(t, a2, acked)

	// The rebooted node is a replica now: writes bounce with Retry-After.
	rec := httptest.NewRecorder()
	a2.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/db", strings.NewReader(`{"id":999}`)))
	if rec.Code != http.StatusServiceUnavailable || rec.Header().Get("Retry-After") == "" {
		t.Fatalf("write on rebooted replica = %d (Retry-After %q), want 503", rec.Code, rec.Header().Get("Retry-After"))
	}
}
