package server

import (
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"prorp/internal/faults"
)

// noSleep keeps backoff delays out of test wall time.
func noSleep(time.Duration) {}

func quickBackoff() faults.Backoff {
	return faults.Backoff{Attempts: 3, Base: time.Millisecond, Max: 4 * time.Millisecond, Factor: 2}
}

// TestDegradedModeFlipAndRecover drives the snapshot path into degraded
// mode with a downed disk, checks the server still serves traffic while
// /healthz reports 503, then heals the disk and checks recovery.
func TestDegradedModeFlipAndRecover(t *testing.T) {
	inj := faults.NewInjector(101)
	clock := &fakeClock{t: t0}
	srv, err := New(Config{
		Options:       testOptions(),
		SnapshotPath:  filepath.Join(t.TempDir(), "fleet.snap"),
		FS:            faults.NewFaultFS(faults.OS, inj, nil),
		Now:           clock.Now,
		Sleep:         noSleep,
		Backoff:       quickBackoff(),
		DegradedAfter: 2,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	code, out := call(t, srv, "POST", "/v1/db", `{"id":1}`)
	wantStatus(t, code, http.StatusCreated, out)

	// Disk down: every write attempt fails. Two periodic-equivalent writes
	// (DegradedAfter=2) flip the server to degraded.
	inj.FailProb("fs.createtemp", 1, nil)
	for i := 0; i < 2; i++ {
		if _, err := srv.writeSnapshotOpts(srv.Degraded()); err == nil {
			t.Fatal("snapshot succeeded with disk down")
		}
	}
	if !srv.Degraded() {
		t.Fatal("server not degraded after consecutive failures")
	}

	// Degraded ≠ down: traffic is still served...
	code, out = call(t, srv, "POST", "/v1/db", `{"id":2}`)
	wantStatus(t, code, http.StatusCreated, out)
	// ...but health reports unhealthy with the failure detail.
	code, out = call(t, srv, "GET", "/healthz", "")
	wantStatus(t, code, http.StatusServiceUnavailable, out)
	if out["status"] != "degraded" || out["last_snapshot_error"] == "" {
		t.Fatalf("degraded healthz = %v", out)
	}
	// The forced-snapshot endpoint reports the failure too.
	code, out = call(t, srv, "POST", "/v1/ops/snapshot", "")
	wantStatus(t, code, http.StatusInternalServerError, out)

	// Disk heals: the next probe clears degraded mode.
	inj.Heal("fs.createtemp")
	if _, err := srv.writeSnapshotOpts(srv.Degraded()); err != nil {
		t.Fatalf("snapshot after heal: %v", err)
	}
	if srv.Degraded() {
		t.Fatal("server still degraded after successful snapshot")
	}
	code, out = call(t, srv, "GET", "/healthz", "")
	wantStatus(t, code, http.StatusOK, out)
	if out["status"] != "ok" {
		t.Fatalf("healed healthz = %v", out)
	}

	// The whole episode is visible in the KPI resilience counters.
	code, out = call(t, srv, "GET", "/v1/kpi", "")
	wantStatus(t, code, http.StatusOK, out)
	if out["snapshot_failures"].(float64) < 2 || out["snapshot_retries"].(float64) == 0 {
		t.Fatalf("kpi resilience counters = %v", out)
	}
}

// TestPrewarmHookRetriesAndFailures checks the infrastructure side of
// Algorithm 5: a transiently failing prewarm hook is retried into success;
// a persistently failing one is surfaced in the KPI counters, and the wake
// timer is still scheduled either way.
func TestPrewarmHookRetriesAndFailures(t *testing.T) {
	inj := faults.NewInjector(202)
	clock := &fakeClock{t: t0.Add(9 * time.Hour)}
	srv, err := New(Config{
		Options: testOptions(),
		Shards:  4,
		Now:     clock.Now,
		Sleep:   noSleep,
		Backoff: quickBackoff(),
		OnPrewarm: func(id int) error {
			_, err := inj.Check("prewarm")
			return err
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Build the 3-day 09:00-17:00 pattern that physically pauses db 1 with
	// a predicted login tomorrow 09:00 (mirrors the lifecycle test).
	day := 24 * time.Hour
	call(t, srv, "POST", "/v1/db", `{"id":1}`)
	for d := 0; d < 3; d++ {
		if d > 0 {
			clock.Set(t0.Add(time.Duration(d)*day + 9*time.Hour))
			call(t, srv, "POST", "/v1/db/1/login", "")
		}
		clock.Set(t0.Add(time.Duration(d)*day + 17*time.Hour))
		call(t, srv, "POST", "/v1/db/1/logout", "")
	}

	// Transient failure: hook fails twice, third attempt lands.
	inj.TripN("prewarm", 2, nil)
	clock.Set(t0.Add(3*day + 9*time.Hour - 4*time.Minute))
	code, out := call(t, srv, "POST", "/v1/ops/resume", "")
	wantStatus(t, code, http.StatusOK, out)
	if pws, _ := out["prewarmed"].([]any); len(pws) != 1 {
		t.Fatalf("ops/resume = %v", out)
	}
	code, out = call(t, srv, "GET", "/v1/kpi", "")
	wantStatus(t, code, http.StatusOK, out)
	if out["prewarm_retries"] != float64(2) || out["prewarm_failures"] != float64(0) {
		t.Fatalf("kpi after transient prewarm = %v", out)
	}
	// The prewarmed database got its wake scheduled despite the retries.
	if out["pending_wakes"] != float64(1) {
		t.Fatalf("pending wakes = %v", out["pending_wakes"])
	}
}

// TestWakeHookFailureReschedules checks that a wake whose infrastructure
// delivery keeps failing is pushed out rather than dropped, then delivered
// once the hook heals.
func TestWakeHookFailureReschedules(t *testing.T) {
	inj := faults.NewInjector(303)
	clock := &fakeClock{t: t0}
	srv, err := New(Config{
		Options: testOptions(),
		Now:     clock.Now,
		Sleep:   noSleep,
		Backoff: quickBackoff(),
		OnWake: func(id int) error {
			_, err := inj.Check("wake")
			return err
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// A fresh database that idles gets a logical-pause wake timer.
	call(t, srv, "POST", "/v1/db", `{"id":1}`)
	clock.Set(t0.Add(30 * time.Minute))
	code, out := call(t, srv, "POST", "/v1/db/1/logout", "")
	wantStatus(t, code, http.StatusOK, out)
	if out["wake_at"] == nil {
		t.Fatalf("logout scheduled no wake: %v", out)
	}

	// Let the wake come due, with the hook hard-down: delivery must fail,
	// count the failure, and reschedule (not drop) the timer.
	inj.FailProb("wake", 1, nil)
	clock.Set(t0.Add(3 * time.Hour))
	delivered := srv.deliverDueWakes(clock.Now())
	if delivered != 0 {
		t.Fatalf("delivered %d wakes with hook down", delivered)
	}
	if srv.wakes.pending() != 1 {
		t.Fatal("failed wake was dropped instead of rescheduled")
	}
	code, out = call(t, srv, "GET", "/v1/kpi", "")
	wantStatus(t, code, http.StatusOK, out)
	if out["wake_failures"] != float64(1) || out["wake_retries"].(float64) == 0 {
		t.Fatalf("kpi after failed wake = %v", out)
	}

	// Heal and advance past the deferral: the wake lands.
	inj.Heal("wake")
	clock.Set(clock.Now().Add(srv.retryDefer() + time.Second))
	if delivered := srv.deliverDueWakes(clock.Now()); delivered != 1 {
		t.Fatalf("delivered %d wakes after heal, want 1", delivered)
	}
	if srv.wakes.pending() != 0 {
		t.Fatalf("pending wakes after delivery = %d", srv.wakes.pending())
	}
}

// TestBootFallsBackToLastKnownGood corrupts the primary snapshot on disk
// and checks that New restores from the .bak with zero lost databases and
// reports the fallback in the KPI counters.
func TestBootFallsBackToLastKnownGood(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "fleet.snap")
	clock := &fakeClock{t: t0}
	srv, err := New(Config{
		Options: testOptions(), Shards: 4, SnapshotPath: snap,
		Now: clock.Now, Sleep: noSleep, Backoff: quickBackoff(), Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, body := range []string{`{"id":1}`, `{"id":2}`, `{"id":3}`} {
		call(t, srv, "POST", "/v1/db", body)
	}
	// Two snapshots: the second rotates the first to .bak.
	call(t, srv, "POST", "/v1/ops/snapshot", "")
	call(t, srv, "POST", "/v1/ops/snapshot", "")
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	// Rot the primary (Close wrote it last): flip a payload bit.
	data, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0x10
	if err := os.WriteFile(snap, data, 0o644); err != nil {
		t.Fatal(err)
	}

	srv2, err := New(Config{
		Options: testOptions(), Shards: 4, SnapshotPath: snap,
		Now: clock.Now, Sleep: noSleep, Backoff: quickBackoff(), Logf: t.Logf,
	})
	if err != nil {
		t.Fatalf("boot with corrupt primary: %v", err)
	}
	defer srv2.Close()

	code, out := call(t, srv2, "GET", "/healthz", "")
	wantStatus(t, code, http.StatusOK, out)
	if out["databases"] != float64(3) {
		t.Fatalf("restored databases = %v, want 3", out["databases"])
	}
	code, out = call(t, srv2, "GET", "/v1/kpi", "")
	wantStatus(t, code, http.StatusOK, out)
	if out["snapshot_fallbacks"] != float64(1) {
		t.Fatalf("snapshot_fallbacks = %v, want 1", out["snapshot_fallbacks"])
	}
}

// TestCloseReportsFinalSnapshotFailure: a Close that cannot persist the
// final snapshot must return the error (prorp-serve turns it into a
// non-zero exit).
func TestCloseReportsFinalSnapshotFailure(t *testing.T) {
	inj := faults.NewInjector(404)
	clock := &fakeClock{t: t0}
	srv, err := New(Config{
		Options:      testOptions(),
		SnapshotPath: filepath.Join(t.TempDir(), "fleet.snap"),
		FS:           faults.NewFaultFS(faults.OS, inj, nil),
		Now:          clock.Now,
		Sleep:        noSleep,
		Backoff:      quickBackoff(),
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	call(t, srv, "POST", "/v1/db", `{"id":1}`)
	inj.FailProb("fs.createtemp", 1, nil)
	if err := srv.Close(); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("Close with disk down = %v, want injected error", err)
	}
}
