package server

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"prorp/internal/faults"
)

// hangDoer delays (and then fails) every request to one host, modeling a
// group that is alive but far too slow for the scatter deadline.
type hangDoer struct {
	inner faults.Doer
	host  string
	d     time.Duration
}

func (h hangDoer) Do(req *http.Request) (*http.Response, error) {
	if req.URL.Host == h.host {
		time.Sleep(h.d)
		return nil, fmt.Errorf("%s: connection stalled", h.host)
	}
	return h.inner.Do(req)
}

// driveActivityPattern runs the standard prewarm recipe against one send
// function: create each database at 09:00 of day zero, then three days of
// 09:00 login / 17:00 logout; the third logout physically pauses. Events
// land in day-major order so both deployments see the identical sequence.
func driveActivityPattern(t *testing.T, clock *fakeClock, ids []int, send func(method, path, body string) (int, map[string]any)) {
	t.Helper()
	day := 24 * time.Hour
	clock.Set(t0.Add(9 * time.Hour))
	for _, id := range ids {
		code, out := send("POST", "/v1/db", fmt.Sprintf(`{"id":%d}`, id))
		wantStatus(t, code, http.StatusCreated, out)
	}
	for d := 0; d < 3; d++ {
		if d > 0 {
			clock.Set(t0.Add(time.Duration(d)*day + 9*time.Hour))
			for _, id := range ids {
				code, out := send("POST", fmt.Sprintf("/v1/db/%d/login", id), "")
				wantStatus(t, code, http.StatusOK, out)
			}
		}
		clock.Set(t0.Add(time.Duration(d)*day + 17*time.Hour))
		for _, id := range ids {
			code, out := send("POST", fmt.Sprintf("/v1/db/%d/logout", id), "")
			wantStatus(t, code, http.StatusOK, out)
			want := "logical-pause"
			if d == 2 {
				want = "physical-pause"
			}
			if out["event"] != want {
				t.Fatalf("day %d logout of %d = %v, want %s", d, id, out["event"], want)
			}
		}
	}
}

// prewarmedIDs extracts the prewarmed id list from an ops/resume reply.
func prewarmedIDs(t *testing.T, out map[string]any) []int {
	t.Helper()
	raw, ok := out["prewarmed"].([]any)
	if !ok {
		t.Fatalf("no prewarmed list in %v", out)
	}
	ids := make([]int, len(raw))
	for i, v := range raw {
		ids[i] = int(v.(float64))
	}
	return ids
}

// TestScatterEquivalentToSingleGroup is the partitioning acceptance test:
// a 3-group deployment serving one set of databases produces the same
// merged /v1/kpi and the same globally capped Algorithm 5 resume beat as a
// single-group fleet over the identical history.
func TestScatterEquivalentToSingleGroup(t *testing.T) {
	// Both deployments share one fake clock and one global prewarm cap low
	// enough that the merged due set must be cut across groups.
	baseClock := &fakeClock{t: t0.Add(9 * time.Hour)}
	capped := testOptions()
	capped.MaxPrewarmsPerOp = 2

	base, err := New(Config{Options: capped, Shards: 12, Now: baseClock.Now, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()

	clusterClock := &fakeClock{t: t0.Add(9 * time.Hour)}
	srvs := newGroupCluster(t, clusterClock, 3, &mapDoer{}, func(g string, cfg *Config) {
		cfg.Options = capped
		cfg.ScatterTimeout = 30 * time.Second // never partial under load
	})
	g1 := srvs["g1"]
	m := g1.router.mapP.Load()

	// Two databases per group, so every group contributes to the due set.
	var ids []int
	for _, g := range []string{"g1", "g2", "g3"} {
		ids = append(ids, idsOwnedBy(t, m, g, 2, 1)...)
	}
	sort.Ints(ids)

	// Identical history into both deployments; the cluster's traffic all
	// enters through g1 and routes from there.
	driveActivityPattern(t, baseClock, ids, func(method, path, body string) (int, map[string]any) {
		return call(t, base, method, path, body)
	})
	driveActivityPattern(t, clusterClock, ids, func(method, path, body string) (int, map[string]any) {
		return call(t, g1, method, path, body)
	})

	// The merged KPI must equal the single fleet's, key for key: 12 shards
	// vs 3x4, same gauges, same counters, same QoS. The scatter shape may
	// add keys (groups, partial) but must not change any baseline one.
	compareKPI := func(stage string) {
		t.Helper()
		code, want := call(t, base, "GET", "/v1/kpi", "")
		wantStatus(t, code, http.StatusOK, want)
		code, got := call(t, g1, "GET", "/v1/kpi", "")
		wantStatus(t, code, http.StatusOK, got)
		if got["partial"] != false {
			t.Fatalf("%s: scatter KPI partial = %v", stage, got["partial"])
		}
		if groups, _ := got["groups"].([]any); len(groups) != 3 {
			t.Fatalf("%s: scatter KPI groups = %v", stage, got["groups"])
		}
		for k, wv := range want {
			// Admission and breaker accounting are serving-tier process
			// state, not fleet state: a 3-process cluster admits every
			// proxied hop, so its counters can never equal one process
			// serving the same traffic. Shape equivalence is about the
			// fleet; skip the per-process surfaces.
			if k == "admission" || k == "breakers" {
				continue
			}
			if !reflect.DeepEqual(got[k], wv) {
				t.Errorf("%s: merged kpi[%q] = %v, single-group %v", stage, k, got[k], wv)
			}
		}
		if t.Failed() {
			t.FailNow()
		}
	}
	compareKPI("before beat")

	// One control-plane beat minutes ahead of the predicted logins. All six
	// databases are due; the global cap keeps the two lowest ids — for the
	// cluster that is a cross-group choice only a merged scan gets right.
	beat := t0.Add(3*24*time.Hour + 9*time.Hour - 4*time.Minute)
	baseClock.Set(beat)
	clusterClock.Set(beat)
	code, out := call(t, base, "POST", "/v1/ops/resume", "")
	wantStatus(t, code, http.StatusOK, out)
	wantPrewarmed := prewarmedIDs(t, out)
	if len(wantPrewarmed) != 2 {
		t.Fatalf("single-group beat prewarmed %v, want the capped 2", wantPrewarmed)
	}

	code, out = call(t, g1, "POST", "/v1/ops/resume", "")
	wantStatus(t, code, http.StatusOK, out)
	if out["scope"] != "global" || out["partial"] != false {
		t.Fatalf("cluster beat envelope = %v", out)
	}
	if got := prewarmedIDs(t, out); !reflect.DeepEqual(got, wantPrewarmed) {
		t.Fatalf("cluster beat prewarmed %v, single-group %v", got, wantPrewarmed)
	}

	// Resources line up database by database, wherever each one lives.
	for _, id := range ids {
		code, want := call(t, base, "GET", fmt.Sprintf("/v1/db/%d", id), "")
		wantStatus(t, code, http.StatusOK, want)
		code, got := call(t, g1, "GET", fmt.Sprintf("/v1/db/%d", id), "")
		wantStatus(t, code, http.StatusOK, got)
		if got["resources_available"] != want["resources_available"] {
			t.Fatalf("db %d resources_available = %v, single-group %v",
				id, got["resources_available"], want["resources_available"])
		}
	}
	compareKPI("after beat")

	// A second beat at the same instant prewarms the remainder in both
	// worlds (cap again, then the rest), converging the deployments.
	for i := 0; i < 2; i++ {
		code, out = call(t, base, "POST", "/v1/ops/resume", "")
		wantStatus(t, code, http.StatusOK, out)
		wantPrewarmed = prewarmedIDs(t, out)
		code, out = call(t, g1, "POST", "/v1/ops/resume", "")
		wantStatus(t, code, http.StatusOK, out)
		if got := prewarmedIDs(t, out); !reflect.DeepEqual(got, wantPrewarmed) {
			t.Fatalf("follow-up beat %d prewarmed %v, single-group %v", i, got, wantPrewarmed)
		}
	}
	compareKPI("after drain")
}

// TestGlobalBeatDedupesOverlappingDue covers the migration-overlap corner
// of the merged scan: a database present on two groups at once (the stale
// not-yet-swept copy a crashed migration leaves behind) is reported due by
// both scans, but must consume one global cap slot and be prewarmed once,
// on the group the current map names as owner.
func TestGlobalBeatDedupesOverlappingDue(t *testing.T) {
	clock := &fakeClock{t: t0.Add(9 * time.Hour)}
	capped := testOptions()
	capped.MaxPrewarmsPerOp = 2
	srvs := newGroupCluster(t, clock, 2, &mapDoer{}, func(g string, cfg *Config) {
		cfg.Options = capped
		cfg.ScatterTimeout = 30 * time.Second
	})
	g1 := srvs["g1"]
	m := g1.router.mapP.Load()
	ids := idsOwnedBy(t, m, "g2", 2, 1) // ascending: the duplicate sorts first
	dup, other := ids[0], ids[1]

	driveActivityPattern(t, clock, ids, func(method, path, body string) (int, map[string]any) {
		return call(t, g1, method, path, body)
	})

	// Clone the paused duplicate onto g1, the non-owner. Identical history
	// means an identical wake prediction: at the beat, both the local scan
	// and g2's report it due.
	var buf bytes.Buffer
	if err := srvs["g2"].Fleet().Snapshot(dup, &buf); err != nil {
		t.Fatal(err)
	}
	if _, err := g1.Fleet().Restore(dup, &buf); err != nil {
		t.Fatal(err)
	}

	// Without dedupe the duplicate would burn the second cap slot and push
	// `other` out of the beat entirely (and dispatch dup twice).
	clock.Set(t0.Add(3*24*time.Hour + 9*time.Hour - 4*time.Minute))
	code, out := call(t, g1, "POST", "/v1/ops/resume", "")
	wantStatus(t, code, http.StatusOK, out)
	if got := prewarmedIDs(t, out); !reflect.DeepEqual(got, []int{dup, other}) {
		t.Fatalf("beat prewarmed %v, want [%d %d]", got, dup, other)
	}
}

// TestScatterPartialOnGroupTimeout covers the failure accounting: a group
// that cannot answer within the scatter deadline makes the merge partial —
// flagged in the reply, counted on /metrics, never waited for.
func TestScatterPartialOnGroupTimeout(t *testing.T) {
	clock := &fakeClock{t: t0.Add(9 * time.Hour)}
	net := &mapDoer{}
	srvs := newGroupCluster(t, clock, 3, net, func(g string, cfg *Config) {
		if g == "g1" {
			// The deadline is real time: generous enough that the healthy
			// groups always answer under a loaded CI machine, with the hang
			// far enough beyond it that g3 can only ever miss it.
			cfg.ScatterTimeout = 250 * time.Millisecond
			cfg.RouterDoer = hangDoer{inner: net, host: "g3", d: 5 * time.Second}
		}
	})
	g1 := srvs["g1"]

	code, out := call(t, g1, "GET", "/v1/kpi", "")
	wantStatus(t, code, http.StatusOK, out)
	if out["partial"] != true {
		t.Fatalf("KPI with a hung group not partial: %v", out)
	}
	groups := out["groups"].([]any)
	okByGroup := map[string]bool{}
	for _, g := range groups {
		gm := g.(map[string]any)
		okByGroup[gm["group"].(string)] = gm["ok"].(bool)
		if gm["group"] == "g3" {
			if e, _ := gm["error"].(string); !strings.Contains(e, "timeout") {
				t.Fatalf("g3 error = %v, want a timeout", gm["error"])
			}
		}
	}
	if !okByGroup["g1"] || !okByGroup["g2"] || okByGroup["g3"] {
		t.Fatalf("group status = %v, want g1,g2 ok and g3 failed", okByGroup)
	}

	// The resume beat degrades the same way: the reachable groups' scans
	// merge, the hung group keeps its due databases for the next beat.
	code, out = call(t, g1, "POST", "/v1/ops/resume", "")
	wantStatus(t, code, http.StatusOK, out)
	if out["scope"] != "global" || out["partial"] != true {
		t.Fatalf("beat with a hung group = %v", out)
	}

	samples := scrape(t, g1)
	if v := sampleValue(t, samples, "prorp_scatter_failures_total", nil); v < 2 {
		t.Fatalf("scatter_failures_total = %v, want >= 2", v)
	}
	if v := sampleValue(t, samples, "prorp_scatter_partials_total", nil); v < 2 {
		t.Fatalf("scatter_partials_total = %v, want >= 2", v)
	}

	// The global metrics merge marks the hung group down instead of
	// blocking: group_up 0 for g3, 1 for the rest, every sample relabeled.
	rec := httptest.NewRecorder()
	g1.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?scope=global", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("global metrics = %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{
		`prorp_scatter_group_up{group="g1"} 1`,
		`prorp_scatter_group_up{group="g2"} 1`,
		`prorp_scatter_group_up{group="g3"} 0`,
		`prorp_fleet_databases{group="g2"}`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("global metrics missing %q", want)
		}
	}
}
