package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"prorp/internal/obs"
	"prorp/internal/repl"
	"prorp/internal/wal"
)

// newObsServer builds a fully wired server — WAL, snapshots, fake clock —
// so /metrics has every registered family live.
func newObsServer(t *testing.T, clock *fakeClock) *Server {
	t.Helper()
	dir := t.TempDir()
	srv, err := New(Config{
		Options:      testOptions(),
		Shards:       4,
		SnapshotPath: filepath.Join(dir, "fleet.snap"),
		WALDir:       filepath.Join(dir, "wal"),
		WALFsync:     wal.FsyncAlways,
		Now:          clock.Now,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// scrape fetches /metrics and parses the exposition into samples by
// canonical key.
func scrape(t *testing.T, s *Server) map[string]obs.Sample {
	t.Helper()
	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("Content-Type = %q", ct)
	}
	samples, err := obs.ParseExposition(rec.Body)
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	out := make(map[string]obs.Sample, len(samples))
	for _, sm := range samples {
		out[sm.Key()] = sm
	}
	return out
}

// sampleValue finds the one sample with the given metric name and, when
// want is non-empty, the given label subset.
func sampleValue(t *testing.T, samples map[string]obs.Sample, name string, want map[string]string) float64 {
	t.Helper()
	for _, sm := range samples {
		if sm.Name != name {
			continue
		}
		match := true
		for k, v := range want {
			if sm.Label(k) != v {
				match = false
				break
			}
		}
		if match {
			return sm.Value
		}
	}
	t.Fatalf("no sample %s %v in scrape", name, want)
	return 0
}

// TestMetricsEndpoint is the acceptance check for the observability
// surface: after real traffic, /metrics serves valid Prometheus text with
// populated HTTP latency histograms and every KPI/WAL counter the JSON
// endpoint reports.
func TestMetricsEndpoint(t *testing.T) {
	clock := &fakeClock{t: t0.Add(9 * time.Hour)}
	srv := newObsServer(t, clock)

	code, out := call(t, srv, "POST", "/v1/db", `{"id":1}`)
	wantStatus(t, code, http.StatusCreated, out)
	code, out = call(t, srv, "POST", "/v1/db/1/login", "")
	wantStatus(t, code, http.StatusOK, out)
	clock.Set(t0.Add(17 * time.Hour))
	code, out = call(t, srv, "POST", "/v1/db/1/logout", "")
	wantStatus(t, code, http.StatusOK, out)
	code, out = call(t, srv, "GET", "/v1/db/1", "")
	wantStatus(t, code, http.StatusOK, out)
	code, out = call(t, srv, "POST", "/v1/ops/snapshot", "")
	wantStatus(t, code, http.StatusOK, out)

	samples := scrape(t, srv)

	// The HTTP route histogram is populated: the create route saw exactly
	// one request, and its +Inf bucket agrees with its count.
	createRoute := map[string]string{"route": "/v1/db", "method": "POST"}
	if n := sampleValue(t, samples, "prorp_http_request_duration_seconds_count", createRoute); n != 1 {
		t.Fatalf("create route histogram count = %v, want 1", n)
	}
	inf := map[string]string{"route": "/v1/db", "method": "POST", "le": "+Inf"}
	if n := sampleValue(t, samples, "prorp_http_request_duration_seconds_bucket", inf); n != 1 {
		t.Fatalf("create route +Inf bucket = %v, want 1", n)
	}
	if n := sampleValue(t, samples, "prorp_http_requests_total",
		map[string]string{"route": "/v1/db", "method": "POST", "code": "201"}); n != 1 {
		t.Fatalf("create route request counter = %v, want 1", n)
	}

	// KPI counters bridged onto the registry agree with the traffic.
	for name, want := range map[string]float64{
		"prorp_fleet_creates_total": 1,
		"prorp_fleet_logins_total":  1,
		"prorp_fleet_logouts_total": 1,
	} {
		if got := sampleValue(t, samples, name, nil); got != want {
			t.Fatalf("%s = %v, want %v", name, got, want)
		}
	}

	// Every /v1/kpi counter family has a /metrics counterpart — the scrape
	// is a superset of the JSON endpoint.
	for _, name := range []string{
		"prorp_fleet_creates_total", "prorp_fleet_deletes_total",
		"prorp_fleet_logins_total", "prorp_fleet_logouts_total",
		"prorp_fleet_wakes_total", "prorp_fleet_warm_resumes_total",
		"prorp_fleet_cold_resumes_total", "prorp_fleet_logical_pauses_total",
		"prorp_fleet_physical_pauses_total", "prorp_fleet_prewarms_total",
		"prorp_fleet_prewarms_used_total", "prorp_fleet_prewarms_wasted_total",
		"prorp_fleet_qos_percent",
		"prorp_snapshot_retries_total", "prorp_snapshot_failures_total",
		"prorp_snapshot_fallbacks_total",
		"prorp_prewarm_retries_total", "prorp_prewarm_failures_total",
		"prorp_wake_retries_total", "prorp_wake_failures_total",
		"prorp_wal_appends_total", "prorp_wal_append_failures_total",
		"prorp_wal_fsyncs_total", "prorp_wal_rotations_total",
		"prorp_wal_segments_compacted_total", "prorp_wal_replayed_records_total",
		"prorp_wal_replay_skipped_total", "prorp_wal_torn_segments_total",
		"prorp_wal_truncated_bytes_total",
		"prorp_fleet_databases", "prorp_fleet_physically_paused",
		"prorp_fleet_shards", "prorp_pending_wakes", "prorp_uptime_seconds",
		"prorp_degraded",
	} {
		sampleValue(t, samples, name, nil)
	}

	// The mutations were journaled, timed, and fsynced.
	if n := sampleValue(t, samples, "prorp_wal_appends_total", nil); n < 3 {
		t.Fatalf("prorp_wal_appends_total = %v, want >= 3", n)
	}
	if n := sampleValue(t, samples, "prorp_wal_append_duration_seconds_count", nil); n < 3 {
		t.Fatalf("wal append histogram count = %v, want >= 3", n)
	}
	if n := sampleValue(t, samples, "prorp_wal_fsync_duration_seconds_count", nil); n < 1 {
		t.Fatalf("wal fsync histogram count = %v, want >= 1", n)
	}

	// Fleet decision timings flowed through the sharded runtime.
	if n := sampleValue(t, samples, "prorp_decision_duration_seconds_count",
		map[string]string{"kind": "login"}); n != 1 {
		t.Fatalf("login decision histogram count = %v, want 1", n)
	}

	// The manual snapshot was timed.
	if n := sampleValue(t, samples, "prorp_snapshot_save_duration_seconds_count", nil); n < 1 {
		t.Fatalf("snapshot save histogram count = %v, want >= 1", n)
	}
}

// TestKPIShapeFrozen pins the exact top-level key set of GET /v1/kpi: the
// registry bridges must never change the JSON endpoint's shape.
func TestKPIShapeFrozen(t *testing.T) {
	clock := &fakeClock{t: t0.Add(9 * time.Hour)}
	srv := newObsServer(t, clock)

	code, out := call(t, srv, "GET", "/v1/kpi", "")
	wantStatus(t, code, http.StatusOK, out)

	got := make([]string, 0, len(out))
	for k := range out {
		got = append(got, k)
	}
	sort.Strings(got)
	want := []string{
		"admission",
		"cold_resumes", "creates", "databases", "deletes", "logical_pauses",
		"logically_paused", "logins", "logouts", "now", "pending_wakes",
		"physical_pauses", "physically_paused", "prewarm_failures",
		"prewarm_retries", "prewarms", "prewarms_used", "prewarms_wasted",
		"qos_percent", "queued_events", "resumed", "shards",
		"snapshot_failures", "snapshot_fallbacks", "snapshot_retries",
		"uptime_seconds", "wake_failures", "wake_retries", "wakes",
		"wal_append_failures", "wal_appends", "wal_fsyncs", "wal_replay_skipped",
		"wal_replayed_records", "wal_rotations", "wal_segments_compacted",
		"wal_torn_segments", "wal_truncated_bytes", "warm_resumes",
	}
	if len(got) != len(want) {
		t.Fatalf("kpi keys = %v\nwant %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("kpi keys = %v\nwant %v", got, want)
		}
	}
}

// TestTracesEndpoint checks that real requests land in the slow-trace
// buffer with their child spans, and that the JSON surface is well formed.
func TestTracesEndpoint(t *testing.T) {
	clock := &fakeClock{t: t0.Add(9 * time.Hour)}
	srv := newObsServer(t, clock)

	code, out := call(t, srv, "POST", "/v1/db", `{"id":1}`)
	wantStatus(t, code, http.StatusCreated, out)
	code, out = call(t, srv, "POST", "/v1/db/1/login", "")
	wantStatus(t, code, http.StatusOK, out)

	req := httptest.NewRequest("GET", "/v1/traces", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /v1/traces = %d", rec.Code)
	}
	var body struct {
		Capacity   int               `json:"capacity"`
		TraceCount int               `json:"trace_count"`
		Traces     []obs.TraceRecord `json:"traces"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("traces JSON: %v (%s)", err, rec.Body.String())
	}
	if body.Capacity != obs.DefaultTraceCapacity {
		t.Fatalf("capacity = %d", body.Capacity)
	}
	if body.TraceCount != len(body.Traces) || body.TraceCount < 2 {
		t.Fatalf("trace_count = %d, traces = %d, want >= 2", body.TraceCount, len(body.Traces))
	}
	var sawCreate bool
	for _, tr := range body.Traces {
		if tr.TraceID == "" || len(tr.Spans) == 0 {
			t.Fatalf("malformed trace %+v", tr)
		}
		if tr.Root == "POST /v1/db" {
			sawCreate = true
			names := make(map[string]bool)
			for _, sp := range tr.Spans {
				names[sp.Name] = true
			}
			if !names["wal.append"] || !names["fleet.create"] {
				t.Fatalf("create trace spans = %+v, want wal.append and fleet.create", tr.Spans)
			}
		}
	}
	if !sawCreate {
		t.Fatalf("no POST /v1/db trace retained: %+v", body.Traces)
	}
}

// stubStream204 is a replication Doer whose primary is always caught up:
// every stream poll returns 204. It keeps a replica's follower quiet while
// a test exercises the HTTP surface.
type stubStream204 struct{}

func (stubStream204) Do(req *http.Request) (*http.Response, error) {
	rec := httptest.NewRecorder()
	rec.WriteHeader(http.StatusNoContent)
	return rec.Result(), nil
}

// TestLatencyHistogramStatusLabels pins the success/failure split of the
// route histograms: rejected and failed requests land in series labeled
// with their status code and never pollute the status="ok" buckets — a
// replica 503-ing writes in microseconds must not drag a route's success
// p99 toward zero.
func TestLatencyHistogramStatusLabels(t *testing.T) {
	clock := &fakeClock{t: t0}
	dir := t.TempDir()
	srv, err := New(Config{
		Options:          testOptions(),
		Shards:           4,
		SnapshotPath:     filepath.Join(dir, "fleet.snap"),
		WALDir:           filepath.Join(dir, "wal"),
		WALFsync:         wal.FsyncAlways,
		Now:              clock.Now,
		Role:             repl.RoleReplica,
		PrimaryAddr:      "http://stub",
		ReplDoer:         stubStream204{},
		ReplPollInterval: time.Millisecond,
		Logf:             t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cases := []struct {
		method, path, body string
		wantCode           int
		route, status      string
	}{
		{"POST", "/v1/db", `{"id":1}`, http.StatusServiceUnavailable, "/v1/db", "503"},
		{"POST", "/v1/db/1/login", "", http.StatusServiceUnavailable, "/v1/db/{id}/login", "503"},
		{"GET", "/v1/db/9", "", http.StatusNotFound, "/v1/db/{id}", "404"},
		{"GET", "/healthz", "", http.StatusOK, "/healthz", "ok"},
		{"GET", "/v1/kpi", "", http.StatusOK, "/v1/kpi", "ok"},
	}
	for _, tc := range cases {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest(tc.method, tc.path, strings.NewReader(tc.body)))
		if rec.Code != tc.wantCode {
			t.Fatalf("%s %s = %d, want %d (%s)", tc.method, tc.path, rec.Code, tc.wantCode, rec.Body.String())
		}
	}

	samples := scrape(t, srv)
	for _, tc := range cases {
		labels := map[string]string{"route": tc.route, "method": tc.method, "status": tc.status}
		if n := sampleValue(t, samples, "prorp_http_request_duration_seconds_count", labels); n != 1 {
			t.Fatalf("%s %s status=%s histogram count = %v, want 1", tc.method, tc.route, tc.status, n)
		}
	}
	// The failures never touched the success population: the ok-labeled
	// series of the rejected and missed routes are still empty.
	for _, r := range []struct{ method, route string }{
		{"POST", "/v1/db"},
		{"POST", "/v1/db/{id}/login"},
		{"GET", "/v1/db/{id}"},
	} {
		labels := map[string]string{"route": r.route, "method": r.method, "status": "ok"}
		if n := sampleValue(t, samples, "prorp_http_request_duration_seconds_count", labels); n != 0 {
			t.Fatalf("%s %s ok-series count = %v, want 0", r.method, r.route, n)
		}
	}
	// The request counter keeps its code label, status split or not.
	if n := sampleValue(t, samples, "prorp_http_requests_total",
		map[string]string{"route": "/v1/db", "method": "POST", "code": "503"}); n != 1 {
		t.Fatalf("rejected create request counter = %v, want 1", n)
	}
}

// TestRouterStatusLabelSeries pins the routing verdicts' place in the
// latency histogram: a 307 redirect and a 421 refusal are routing
// outcomes, not successes on this node, so each lands in its own numeric
// status series and the "ok" population stays pure.
func TestRouterStatusLabelSeries(t *testing.T) {
	clock := &fakeClock{t: t0}
	srvs := newGroupCluster(t, clock, 2, &mapDoer{}, func(g string, cfg *Config) {
		cfg.RouterRedirect = true
	})
	g1 := srvs["g1"]
	m := g1.router.mapP.Load()
	remote := idsOwnedBy(t, m, "g2", 1, 1)[0]

	// A remote-owned read bounces with 307; a stale-version read refuses
	// with 421.
	rec := httptest.NewRecorder()
	g1.ServeHTTP(rec, httptest.NewRequest("GET", fmt.Sprintf("/v1/db/%d", remote), nil))
	if rec.Code != http.StatusTemporaryRedirect {
		t.Fatalf("remote read = %d, want 307", rec.Code)
	}
	req := httptest.NewRequest("GET", fmt.Sprintf("/v1/db/%d", remote), nil)
	req.Header.Set(HeaderShardmapVersion, "0")
	rec = httptest.NewRecorder()
	g1.ServeHTTP(rec, req)
	if rec.Code != http.StatusMisdirectedRequest {
		t.Fatalf("stale read = %d, want 421", rec.Code)
	}

	samples := scrape(t, g1)
	for _, status := range []string{"307", "421"} {
		labels := map[string]string{"route": "/v1/db/{id}", "method": "GET", "status": status}
		if n := sampleValue(t, samples, "prorp_http_request_duration_seconds_count", labels); n != 1 {
			t.Fatalf("status=%s histogram count = %v, want 1", status, n)
		}
	}
	okLabels := map[string]string{"route": "/v1/db/{id}", "method": "GET", "status": "ok"}
	if n := sampleValue(t, samples, "prorp_http_request_duration_seconds_count", okLabels); n != 0 {
		t.Fatalf("ok-series count = %v, want 0 — routing verdicts leaked into it", n)
	}
}

// TestOverloadMetricsExposed checks the admission and breaker series on a
// fully wired server: real traffic shows up in the per-class admission
// counters, and the breaker families are registered (all zero while no
// inter-node call has failed).
func TestOverloadMetricsExposed(t *testing.T) {
	clock := &fakeClock{t: t0.Add(9 * time.Hour)}
	srv := newObsServer(t, clock)

	code, out := call(t, srv, "POST", "/v1/db", `{"id":1}`)
	wantStatus(t, code, http.StatusCreated, out)
	code, out = call(t, srv, "GET", "/v1/db/1", "")
	wantStatus(t, code, http.StatusOK, out)

	samples := scrape(t, srv)
	if n := sampleValue(t, samples, "prorp_admission_requests_total",
		map[string]string{"class": "read"}); n < 1 {
		t.Fatalf("read-class admitted = %v, want >= 1", n)
	}
	if n := sampleValue(t, samples, "prorp_admission_shed_total",
		map[string]string{"class": "read"}); n != 0 {
		t.Fatalf("read-class shed = %v, want 0", n)
	}
	if n := sampleValue(t, samples, "prorp_breaker_open",
		map[string]string{"path": "repl"}); n != 0 {
		t.Fatalf("open repl breakers = %v, want 0", n)
	}
}

// TestAdmissionDisabled covers the negative-MaxInflight escape hatch (the
// overhead benchmark's baseline and an operator's kill switch): the server
// serves normally, /healthz drops the pressure fields, and no
// prorp_admission series is registered.
func TestAdmissionDisabled(t *testing.T) {
	clock := &fakeClock{t: t0.Add(9 * time.Hour)}
	srv, err := New(Config{Options: testOptions(), Shards: 4, Now: clock.Now,
		AdmissionMaxInflight: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	code, out := call(t, srv, "POST", "/v1/db", `{"id":1}`)
	wantStatus(t, code, http.StatusCreated, out)
	code, out = call(t, srv, "GET", "/v1/db/1", "")
	wantStatus(t, code, http.StatusOK, out)

	code, health := call(t, srv, "GET", "/healthz", "")
	wantStatus(t, code, http.StatusOK, health)
	for _, key := range []string{"inflight", "oldest_sojourn_seconds", "shedding"} {
		if _, ok := health[key]; ok {
			t.Fatalf("healthz reports %q with admission disabled: %v", key, health)
		}
	}

	for key := range scrape(t, srv) {
		if strings.HasPrefix(key, "prorp_admission_") {
			t.Fatalf("admission series %q registered with admission disabled", key)
		}
	}
}
