package server

import (
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"prorp"
	"prorp/internal/admission"
	"prorp/internal/obs"
)

// Observability surface of the serving runtime.
//
//   - GET /metrics     Prometheus text exposition of the whole registry: the
//     per-route HTTP latency/status histograms, the fleet runtime's decision
//     and Algorithm 5 scan histograms, per-shard queue depths, WAL and
//     snapshot-store timings, and func-metric bridges for every FleetKPI
//     counter — a strict superset of GET /v1/kpi, whose JSON shape is frozen.
//   - GET /v1/traces   the slowest recent request traces (span trees), JSON.
//
// Metric naming: prorp_<subsystem>_<name>[_<unit>|_total]; durations are
// seconds, sizes are bytes. See DESIGN.md §8.

// statusWriter captures the response status for the status-code label.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// instrumented wraps one route's handler with the HTTP middleware: a root
// span named after the route, a per-route latency histogram, and a
// per-route/status request counter. The route label is the registered
// pattern, never the raw URL — bounded cardinality by construction.
//
// Latency is recorded per status class: successes (2xx/3xx) land in the
// status="ok" series, failures in a series labeled with their numeric
// code. Success latencies and failure latencies are different populations
// — a replica 503-ing writes in microseconds would otherwise drag the
// route's success p99 toward zero — so the "ok" buckets stay pure.
func (s *Server) instrumented(method, route string, h http.HandlerFunc) http.HandlerFunc {
	hist := func(status string) *obs.Histogram {
		return s.reg.Histogram("prorp_http_request_duration_seconds",
			"HTTP request latency by route and status class.", obs.LatencyBuckets,
			obs.L("route", route), obs.L("method", method), obs.L("status", status))
	}
	okHist := hist("ok")
	class, gated := classifyRoute(method, route)
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		ctx, span := s.tracer.Start(r.Context(), method+" "+route)
		sw := &statusWriter{ResponseWriter: w}
		// The admission gate sits inside the instrumentation so sheds are
		// counted and traced like any other terminal status: a 429 storm
		// must be visible in the same histograms the SLO reads from.
		if s.admission == nil {
			h(sw, r.WithContext(ctx))
		} else if release, err := s.admission.Acquire(class); err != nil && gated {
			s.writeErr(sw, err)
		} else {
			if err == nil {
				defer release()
			}
			h(sw, r.WithContext(ctx))
		}
		span.End()
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		lat := okHist
		// 307 is a routing verdict (the shard router bouncing a request to
		// its owning group), not a success on this route: it gets its own
		// numeric series so "ok" stays the served-here population.
		if sw.status >= 400 || sw.status == http.StatusTemporaryRedirect {
			lat = hist(strconv.Itoa(sw.status)) // bounded: HTTP status codes
		}
		lat.ObserveSince(t0)
		s.reg.Counter("prorp_http_requests_total",
			"HTTP requests by route and status code.",
			obs.L("route", route), obs.L("method", method),
			obs.L("code", strconv.Itoa(sw.status))).Inc()
	}
}

// classifyRoute maps one registered route onto its admission class,
// implementing the overload contract: decision traffic (logins and the
// control plane that keeps the cluster writable) is shed last, then reads,
// then history writes, then background fan-out — so a login is never stuck
// behind ten thousand history appends. /healthz is exempt (gated=false): an
// overloaded node must keep answering its load balancer, and the answer is
// where the pressure state is reported.
func classifyRoute(method, route string) (admission.Class, bool) {
	switch route {
	case "/healthz":
		return admission.Decision, false
	case "/v1/db/{id}/login", "/v1/ops/resume",
		"/v1/repl/promote", "/v1/repl/fence", "/v1/repl/vote", "/v1/repl/announce":
		return admission.Decision, true
	case "/v1/db/{id}":
		if method == http.MethodGet {
			return admission.Read, true
		}
		return admission.Write, true // DELETE
	case "/v1/kpi", "/v1/shard/map":
		return admission.Read, true
	case "/v1/db", "/v1/db/{id}/logout":
		return admission.Write, true
	}
	// Everything else — snapshots, migrations, reconciles — is background
	// work: first to shed, because it retries on its own schedule.
	return admission.Background, true
}

// registerOverloadMetrics exposes the admission controller's per-class
// accounting and the circuit-breaker groups' lifecycle counters:
//
//	prorp_admission_requests_total{class}        admitted requests
//	prorp_admission_shed_total{class}            requests shed with 429
//	prorp_admission_inflight{class}              currently admitted
//	prorp_admission_oldest_sojourn_seconds       age of the oldest in-flight request
//	prorp_breaker_{trips,rejections,probes,recoveries}_total{path}
//	prorp_breaker_open{path}                     breakers currently open
//
// The breaker path label is the doer group: "repl" (follower poll, resync,
// election, announce) or "router" (proxy, scatter, migration ship).
func (s *Server) registerOverloadMetrics() {
	reg := s.reg
	if s.admission == nil {
		s.registerBreakerMetrics()
		return
	}
	for _, class := range admission.Classes() {
		class := class
		l := obs.L("class", class.String())
		reg.CounterFunc("prorp_admission_requests_total",
			"Requests admitted, by priority class.",
			func() uint64 { return s.admission.Stats(class).Admitted }, l)
		reg.CounterFunc("prorp_admission_shed_total",
			"Requests shed by priority admission, by class.",
			func() uint64 { return s.admission.Stats(class).Shed }, l)
		reg.GaugeFunc("prorp_admission_inflight",
			"Requests currently admitted, by priority class.",
			func() float64 { return float64(s.admission.Stats(class).Inflight) }, l)
	}
	reg.GaugeFunc("prorp_admission_oldest_sojourn_seconds",
		"Age of the oldest request still in flight (the CoDel shed signal).",
		func() float64 { return s.admission.Pressure().OldestSojourn.Seconds() })
	s.registerBreakerMetrics()
}

// registerBreakerMetrics exposes the circuit-breaker groups' lifecycle
// counters; split from registerOverloadMetrics so a server with the
// admission gate disabled still reports its breakers.
func (s *Server) registerBreakerMetrics() {
	reg := s.reg
	registerBreaker := func(path string, stats func() (trips, rejections, probes, recoveries, open uint64)) {
		l := obs.L("path", path)
		reg.CounterFunc("prorp_breaker_trips_total",
			"Circuit breakers tripped open, by inter-node path.",
			func() uint64 { t, _, _, _, _ := stats(); return t }, l)
		reg.CounterFunc("prorp_breaker_rejections_total",
			"Calls refused by an open breaker, by inter-node path.",
			func() uint64 { _, r, _, _, _ := stats(); return r }, l)
		reg.CounterFunc("prorp_breaker_probes_total",
			"Half-open recovery probes admitted, by inter-node path.",
			func() uint64 { _, _, p, _, _ := stats(); return p }, l)
		reg.CounterFunc("prorp_breaker_recoveries_total",
			"Breakers re-closed by a successful probe, by inter-node path.",
			func() uint64 { _, _, _, rc, _ := stats(); return rc }, l)
		reg.GaugeFunc("prorp_breaker_open",
			"Breakers currently open, by inter-node path.",
			func() float64 { _, _, _, _, o := stats(); return float64(o) }, l)
	}
	if s.replBreakers != nil {
		g := s.replBreakers
		registerBreaker("repl", func() (uint64, uint64, uint64, uint64, uint64) {
			st := g.Stats()
			return st.Trips, st.Rejections, st.Probes, st.Recoveries, st.Open
		})
	}
	if s.router != nil && s.router.breakers != nil {
		g := s.router.breakers
		registerBreaker("router", func() (uint64, uint64, uint64, uint64, uint64) {
			st := g.Stats()
			return st.Trips, st.Rejections, st.Probes, st.Recoveries, st.Open
		})
	}
}

// registerServerMetrics bridges the serving layer's existing counters and
// gauges onto the registry as sampled-at-scrape func metrics, so /metrics
// is a superset of /v1/kpi without double bookkeeping. Fleet KPI counters
// are sampled through one shared snapshotter per scrape family; the
// per-scrape cost is a few shard-mutex sweeps, irrelevant at scrape rates.
func (s *Server) registerServerMetrics() {
	reg := s.reg

	reg.GaugeFunc("prorp_uptime_seconds", "Seconds since the server booted.",
		func() float64 { return s.now().Sub(s.started).Seconds() })
	reg.GaugeFunc("prorp_degraded", "1 while the server is in degraded mode.",
		func() float64 {
			if s.degraded.Load() {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("prorp_pending_wakes", "Wake-up timers currently scheduled.",
		func() float64 { return float64(s.wakes.pending()) })

	// Fleet gauges.
	gauges := map[string]struct {
		help string
		fn   func() float64
	}{
		"prorp_fleet_databases":         {"Databases in the fleet.", func() float64 { return float64(s.Fleet().Size()) }},
		"prorp_fleet_physically_paused": {"Databases physically paused.", func() float64 { return float64(s.Fleet().PausedCount()) }},
		"prorp_fleet_shards":            {"Fleet stripe count.", func() float64 { return float64(s.Fleet().Shards()) }},
	}
	for name, g := range gauges {
		reg.GaugeFunc(name, g.help, g.fn)
	}

	// FleetKPI transition counters, sampled from the runtime.
	kpiCounters := []struct {
		name, help string
		fn         func() uint64
	}{
		{"prorp_fleet_creates_total", "Databases created.", s.kpiField(func(k prorp.FleetKPI) uint64 { return k.Creates })},
		{"prorp_fleet_deletes_total", "Databases deleted.", s.kpiField(func(k prorp.FleetKPI) uint64 { return k.Deletes })},
		{"prorp_fleet_logins_total", "Customer logins recorded.", s.kpiField(func(k prorp.FleetKPI) uint64 { return k.Logins })},
		{"prorp_fleet_logouts_total", "Customer logouts recorded.", s.kpiField(func(k prorp.FleetKPI) uint64 { return k.Logouts })},
		{"prorp_fleet_wakes_total", "Wake-up timers delivered.", s.kpiField(func(k prorp.FleetKPI) uint64 { return k.Wakes })},
		{"prorp_fleet_warm_resumes_total", "First logins served without a cold resume (QoS numerator).", s.kpiField(func(k prorp.FleetKPI) uint64 { return k.WarmResumes })},
		{"prorp_fleet_cold_resumes_total", "First logins that hit a cold resume.", s.kpiField(func(k prorp.FleetKPI) uint64 { return k.ColdResumes })},
		{"prorp_fleet_logical_pauses_total", "Logical pause transitions.", s.kpiField(func(k prorp.FleetKPI) uint64 { return k.LogicalPauses })},
		{"prorp_fleet_physical_pauses_total", "Physical pause transitions.", s.kpiField(func(k prorp.FleetKPI) uint64 { return k.PhysicalPauses })},
		{"prorp_fleet_prewarms_total", "Algorithm 5 proactive resumes.", s.kpiField(func(k prorp.FleetKPI) uint64 { return k.Prewarms })},
		{"prorp_fleet_prewarms_used_total", "Pre-warms whose next login was warm.", s.kpiField(func(k prorp.FleetKPI) uint64 { return k.PrewarmsUsed })},
		{"prorp_fleet_prewarms_wasted_total", "Pre-warms that paused again untouched.", s.kpiField(func(k prorp.FleetKPI) uint64 { return k.PrewarmsWasted })},
	}
	for _, c := range kpiCounters {
		reg.CounterFunc(c.name, c.help, c.fn)
	}
	reg.GaugeFunc("prorp_fleet_qos_percent",
		"Share of first logins after idle that found resources available.",
		func() float64 { return s.Fleet().KPI().QoSPercent() })

	// Serving-layer resilience counters (the opsCounters atomics).
	opsCounters := []struct {
		name, help string
		v          interface{ Load() uint64 }
	}{
		{"prorp_snapshot_retries_total", "Snapshot write retries.", &s.ops.snapshotRetries},
		{"prorp_snapshot_failures_total", "Snapshot writes that failed after retries.", &s.ops.snapshotFailures},
		{"prorp_snapshot_fallbacks_total", "Boots restored from the .bak fallback snapshot.", &s.ops.snapshotFallbacks},
		{"prorp_prewarm_retries_total", "Prewarm hook retries.", &s.ops.prewarmRetries},
		{"prorp_prewarm_failures_total", "Prewarm hooks that failed after retries.", &s.ops.prewarmFailures},
		{"prorp_wake_retries_total", "Wake hook retries.", &s.ops.wakeRetries},
		{"prorp_wake_failures_total", "Wake deliveries rescheduled after retries.", &s.ops.wakeFailures},
		{"prorp_wal_append_failures_total", "Journal appends that failed after retries.", &s.ops.walAppendFailures},
		{"prorp_wal_replayed_records_total", "Journal records applied by boot replay.", &s.ops.walReplayed},
		{"prorp_wal_replay_skipped_total", "Journal records skipped by boot replay.", &s.ops.walReplaySkipped},
		{"prorp_wal_torn_segments_total", "Journal segments cut short at a torn frame.", &s.ops.walTornSegments},
		{"prorp_wal_truncated_bytes_total", "Journal bytes discarded past torn frames.", &s.ops.walTruncatedBytes},
	}
	for _, c := range opsCounters {
		v := c.v
		reg.CounterFunc(c.name, c.help, func() uint64 { return v.Load() })
	}

	// Journal counters, sampled from the WAL's own metrics (zero series
	// when no journal is configured — absent metrics lie less than zeros).
	if s.wal != nil {
		walCounters := []struct {
			name, help string
			fn         func() uint64
		}{
			{"prorp_wal_appends_total", "Journal records appended and acknowledged.", func() uint64 { return s.wal.Metrics().Appends }},
			{"prorp_wal_bytes_appended_total", "Journal bytes appended.", func() uint64 { return s.wal.Metrics().BytesAppended }},
			{"prorp_wal_fsyncs_total", "Journal fsyncs issued.", func() uint64 { return s.wal.Metrics().Fsyncs }},
			{"prorp_wal_rotations_total", "Journal segment rotations.", func() uint64 { return s.wal.Metrics().Rotations }},
			{"prorp_wal_segments_compacted_total", "Journal segments deleted by compaction.", func() uint64 { return s.wal.Metrics().Compacted }},
		}
		for _, c := range walCounters {
			reg.CounterFunc(c.name, c.help, c.fn)
		}
	}

	s.registerReplMetrics()
	s.registerRouterMetrics()
	s.registerOverloadMetrics()
}

// registerRouterMetrics exposes the shard router's state and traffic
// split: the map version and owned-slot gauges, the local/proxied/
// redirected/misrouted request partition, scatter-gather accounting, and
// migration outcomes. No-op in a single-group layout.
func (s *Server) registerRouterMetrics() {
	rt := s.router
	if rt == nil {
		return
	}
	reg := s.reg
	reg.GaugeFunc("prorp_shardmap_version", "Current shard-map version (the routing epoch).",
		func() float64 { return float64(rt.mapP.Load().Version()) })
	reg.GaugeFunc("prorp_router_owned_slots", "Slots the current map assigns to this group.",
		func() float64 { return float64(rt.ownedSlotCount()) })
	routerCounters := []struct {
		name, help string
		v          *atomic.Uint64
	}{
		{"prorp_router_local_requests_total", "Per-database requests owned and served locally.", &rt.localRequests},
		{"prorp_router_proxied_total", "Per-database requests proxied to their owning group.", &rt.proxied},
		{"prorp_router_redirected_total", "Per-database requests answered with a 307 redirect to their owner.", &rt.redirected},
		{"prorp_router_misrouted_total", "Requests refused with 421: stale map versions, forwarding loops, or an owner with no known address.", &rt.misrouted},
		{"prorp_router_fence_rejects_total", "Writes refused by a migration write fence.", &rt.fenceRejects},
		{"prorp_scatter_requests_total", "Scatter-gather fan-outs started.", &rt.scatterRequests},
		{"prorp_scatter_failures_total", "Per-group scatter failures (errors and timeouts).", &rt.scatterFailures},
		{"prorp_scatter_partials_total", "Scatter-gathers that returned partial results.", &rt.scatterPartials},
		{"prorp_shard_migrations_total", "Slot migrations completed by this group as source.", &rt.migrations},
		{"prorp_shard_migration_failures_total", "Slot migrations that failed or aborted.", &rt.migrationsFail},
		{"prorp_shard_dbs_migrated_total", "Databases shipped out by completed migrations.", &rt.dbsMigrated},
		{"prorp_shardmap_adoptions_total", "Newer shard maps adopted (from peers or migration cutover).", &rt.adoptions},
	}
	for _, c := range routerCounters {
		v := c.v
		reg.CounterFunc(c.name, c.help, func() uint64 { return v.Load() })
	}
}

// kpiField builds a sampler for one KPI counter. Each scrape re-reads the
// runtime; the sweep is cheap and scrapes are rare.
func (s *Server) kpiField(pick func(prorp.FleetKPI) uint64) func() uint64 {
	return func() uint64 { return pick(s.Fleet().KPI()) }
}

// Registry exposes the server's metric registry, for host wiring (the
// debug listener) and tests.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Tracer exposes the server's tracer, for tests.
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// ?scope=global on a multi-group node merges every group's exposition
	// under an injected group label (peers answer their plain local scrape,
	// so the fan-out never recurses). The default stays local: scrapes are
	// frequent and per-node.
	if s.router.multiGroup() && r.URL.Query().Get("scope") == "global" {
		s.handleMetricsGlobal(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
}

func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	traces := s.tracer.Slowest()
	if traces == nil {
		traces = []obs.TraceRecord{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"retention":   obs.DefaultTraceMaxAge.String(),
		"capacity":    obs.DefaultTraceCapacity,
		"trace_count": len(traces),
		"traces":      traces,
	})
}
