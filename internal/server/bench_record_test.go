package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"testing"
	"time"
)

// TestRecordRouterBench measures the router's cost on the per-database
// decision path and the scatter-gather KPI merge, and records the numbers
// to the file named by PRORP_BENCH_RECORD (skipped otherwise). `make
// bench-record` runs it to refresh BENCH_router.json, the committed
// perf-trajectory record: router_overhead_pct is the acceptance number
// (<= 5% over the unrouted baseline).
func TestRecordRouterBench(t *testing.T) {
	out := os.Getenv("PRORP_BENCH_RECORD")
	if out == "" {
		t.Skip("set PRORP_BENCH_RECORD=<path> to record BENCH_router.json")
	}

	clock := &fakeClock{t: t0.Add(9 * time.Hour)}
	solo, err := New(Config{Options: testOptions(), Shards: 4, Now: clock.Now})
	if err != nil {
		t.Fatal(err)
	}
	defer solo.Close()
	srvs := newGroupCluster(t, clock, 3, &mapDoer{}, nil)
	g1 := srvs["g1"]
	id := idsOwnedBy(t, g1.router.mapP.Load(), "g1", 1, 1)[0]
	for _, s := range []*Server{solo, g1} {
		code, rep := call(t, s, "POST", "/v1/db", fmt.Sprintf(`{"id":%d}`, id))
		wantStatus(t, code, http.StatusCreated, rep)
	}

	get := func(s *Server, path string) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
				if rec.Code != http.StatusOK {
					b.Fatalf("GET %s = %d", path, rec.Code)
				}
			}
		}
	}
	dbPath := fmt.Sprintf("/v1/db/%d", id)
	routerOff := testing.Benchmark(get(solo, dbPath))
	routerOn := testing.Benchmark(get(g1, dbPath))
	scatterKPI := testing.Benchmark(get(g1, "/v1/kpi"))

	offNs := float64(routerOff.NsPerOp())
	onNs := float64(routerOn.NsPerOp())
	overheadPct := (onNs - offNs) / offNs * 100

	record := map[string]any{
		"go":        runtime.Version(),
		"generated": time.Now().UTC().Format(time.RFC3339),
		"benchmarks": map[string]any{
			"db_get_router_off_ns_op":   routerOff.NsPerOp(),
			"db_get_router_on_ns_op":    routerOn.NsPerOp(),
			"router_overhead_pct":       overheadPct,
			"scatter_kpi_3groups_ns_op": scatterKPI.NsPerOp(),
		},
	}
	data, err := json.MarshalIndent(record, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("router off %v/op, on %v/op (%.2f%% overhead), scatter KPI %v/op — recorded to %s",
		routerOff.NsPerOp(), routerOn.NsPerOp(), overheadPct, scatterKPI.NsPerOp(), out)
}
