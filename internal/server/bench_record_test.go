package server

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"prorp/internal/admission"
)

// measureRouterBench measures the router's cost on the per-database
// decision path and the scatter-gather KPI merge: the keys of
// BENCH_router.json. Shared by the recorder (make bench-record) and the
// drift gate (make bench-check) so both gates grade the same numbers.
func measureRouterBench(t *testing.T) map[string]float64 {
	t.Helper()
	clock := &fakeClock{t: t0.Add(9 * time.Hour)}
	solo, err := New(Config{Options: testOptions(), Shards: 4, Now: clock.Now})
	if err != nil {
		t.Fatal(err)
	}
	defer solo.Close()
	srvs := newGroupCluster(t, clock, 3, &mapDoer{}, nil)
	g1 := srvs["g1"]
	id := idsOwnedBy(t, g1.router.mapP.Load(), "g1", 1, 1)[0]
	for _, s := range []*Server{solo, g1} {
		code, rep := call(t, s, "POST", "/v1/db", fmt.Sprintf(`{"id":%d}`, id))
		wantStatus(t, code, http.StatusCreated, rep)
	}
	// The admission gate's cost is measured directly (one Acquire/release
	// pair, what the middleware adds to every request) rather than by
	// differencing two end-to-end timings: the pair costs well under a
	// microsecond against a ~100µs request, so an A/B delta would be pure
	// run-to-run noise.
	gate := func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			release, err := solo.admission.Acquire(admission.Read)
			if err != nil {
				b.Fatal(err)
			}
			release()
		}
	}

	get := func(s *Server, path string) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
				if rec.Code != http.StatusOK {
					b.Fatalf("GET %s = %d", path, rec.Code)
				}
			}
		}
	}
	// Best-of-5, rounds interleaved across the measured servers (and one
	// unrecorded warm-up round first): scheduler and background-goroutine
	// noise only ever adds time, so the per-server minimum is the stable
	// estimate, and interleaving keeps slow drift — CPU frequency ramp,
	// page-cache warm-up — from landing entirely on whichever server
	// happened to be measured first and skewing the overhead ratios.
	dbPath := fmt.Sprintf("/v1/db/%d", id)
	cases := []struct {
		key string
		fn  func(b *testing.B)
	}{
		{"admission_gate_ns_op", gate},
		{"db_get_router_off_ns_op", get(solo, dbPath)},
		{"db_get_router_on_ns_op", get(g1, dbPath)},
		{"scatter_kpi_3groups_ns_op", get(g1, "/v1/kpi")},
	}
	const rounds = 5
	perRound := map[string][]float64{}
	for _, c := range cases {
		testing.Benchmark(c.fn) // warm-up, discarded
	}
	for i := 0; i < rounds; i++ {
		for _, c := range cases {
			perRound[c.key] = append(perRound[c.key], float64(testing.Benchmark(c.fn).NsPerOp()))
		}
	}
	nums := map[string]float64{}
	for key, vs := range perRound {
		nums[key] = math.Inf(1)
		for _, v := range vs {
			if v < nums[key] {
				nums[key] = v
			}
		}
	}
	// The overhead percentages are ratios of two same-scale timings, so
	// they are computed per round — both sides of a round ran back-to-back
	// under the same machine load — and the median round is reported.
	// Differencing the cross-round minima instead lets two rounds'
	// unrelated load profiles masquerade as overhead.
	medianRatio := func(f func(i int) float64) float64 {
		rs := make([]float64, rounds)
		for i := range rs {
			rs[i] = f(i)
		}
		sort.Float64s(rs)
		return rs[rounds/2]
	}
	nums["admission_overhead_pct"] = medianRatio(func(i int) float64 {
		return perRound["admission_gate_ns_op"][i] / perRound["db_get_router_off_ns_op"][i] * 100
	})
	nums["router_overhead_pct"] = medianRatio(func(i int) float64 {
		off := perRound["db_get_router_off_ns_op"][i]
		return (perRound["db_get_router_on_ns_op"][i] - off) / off * 100
	})
	return nums
}

// writeBenchRecord serializes the measured numbers in the committed
// BENCH_router.json shape.
func writeBenchRecord(t *testing.T, path string, nums map[string]float64) {
	t.Helper()
	record := map[string]any{
		"go":         runtime.Version(),
		"generated":  time.Now().UTC().Format(time.RFC3339),
		"benchmarks": nums,
	}
	data, err := json.MarshalIndent(record, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestRecordRouterBench records the numbers to the file named by
// PRORP_BENCH_RECORD (skipped otherwise). `make bench-record` runs it to
// refresh BENCH_router.json, the committed perf-trajectory record:
// router_overhead_pct is the acceptance number (<= 5% over the unrouted
// baseline).
func TestRecordRouterBench(t *testing.T) {
	out := os.Getenv("PRORP_BENCH_RECORD")
	if out == "" {
		t.Skip("set PRORP_BENCH_RECORD=<path> to record BENCH_router.json")
	}
	nums := measureRouterBench(t)
	writeBenchRecord(t, out, nums)
	t.Logf("admission %.2f%% overhead, router off %.0fns/op, on %.0fns/op (%.2f%% overhead), scatter KPI %.0fns/op — recorded to %s",
		nums["admission_overhead_pct"],
		nums["db_get_router_off_ns_op"], nums["db_get_router_on_ns_op"],
		nums["router_overhead_pct"], nums["scatter_kpi_3groups_ns_op"], out)
}

// TestBenchDrift is the benchmark-drift gate behind `make bench-check`:
// re-measure and fail when any key of the committed baseline
// (PRORP_BENCH_BASELINE) regressed more than 10%. The overhead
// percentage additionally keeps its absolute acceptance floor — a
// baseline tighter than 5% must not turn ordinary noise into failures.
// When PRORP_BENCH_RECORD is also set, the fresh numbers are written
// there for CI to attach to the run.
func TestBenchDrift(t *testing.T) {
	basePath := os.Getenv("PRORP_BENCH_BASELINE")
	if basePath == "" {
		t.Skip("set PRORP_BENCH_BASELINE=<BENCH_router.json> to gate benchmark drift")
	}
	data, err := os.ReadFile(basePath)
	if err != nil {
		t.Fatal(err)
	}
	var base struct {
		Benchmarks map[string]float64 `json:"benchmarks"`
	}
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatalf("parsing %s: %v", basePath, err)
	}
	if len(base.Benchmarks) == 0 {
		t.Fatalf("baseline %s has no benchmarks", basePath)
	}

	nums := measureRouterBench(t)
	if out := os.Getenv("PRORP_BENCH_RECORD"); out != "" {
		writeBenchRecord(t, out, nums)
	}

	const slack = 1.10
	for key, b := range base.Benchmarks {
		fresh, ok := nums[key]
		if !ok {
			t.Errorf("baseline key %q is no longer measured", key)
			continue
		}
		// A negative overhead reading means the instrumented path measured
		// *faster* than the baseline — machine noise, not a real speedup.
		// Clamp both sides at 0 before comparing: a -2% baseline must not
		// hand every future regression an extra head start (limit would be
		// negative and the 5% floor would silently absorb the first 7
		// points of drift), and a -2% fresh reading must not mask one.
		if key == "router_overhead_pct" || key == "admission_overhead_pct" {
			if b < 0 {
				t.Logf("warning: %s baseline %.2f is negative (noise); clamped to 0 for drift", key, b)
				b = 0
			}
			if fresh < 0 {
				t.Logf("warning: %s measured %.2f, negative (noise); clamped to 0 for drift", key, fresh)
				fresh = 0
			}
		}
		limit := b * slack
		// Both overhead percentages keep their absolute 5% acceptance
		// floor: a near-zero baseline must not turn noise into failures.
		if (key == "router_overhead_pct" || key == "admission_overhead_pct") && limit < 5.0 {
			limit = 5.0
		}
		if fresh > limit {
			t.Errorf("%s regressed: %.1f vs baseline %.1f (limit %.1f)", key, fresh, b, limit)
		} else {
			t.Logf("%s: %.1f (baseline %.1f, limit %.1f)", key, fresh, b, limit)
		}
	}
}
