package server

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"testing"
	"time"
)

// measureRouterBench measures the router's cost on the per-database
// decision path and the scatter-gather KPI merge: the keys of
// BENCH_router.json. Shared by the recorder (make bench-record) and the
// drift gate (make bench-check) so both gates grade the same numbers.
func measureRouterBench(t *testing.T) map[string]float64 {
	t.Helper()
	clock := &fakeClock{t: t0.Add(9 * time.Hour)}
	solo, err := New(Config{Options: testOptions(), Shards: 4, Now: clock.Now})
	if err != nil {
		t.Fatal(err)
	}
	defer solo.Close()
	srvs := newGroupCluster(t, clock, 3, &mapDoer{}, nil)
	g1 := srvs["g1"]
	id := idsOwnedBy(t, g1.router.mapP.Load(), "g1", 1, 1)[0]
	for _, s := range []*Server{solo, g1} {
		code, rep := call(t, s, "POST", "/v1/db", fmt.Sprintf(`{"id":%d}`, id))
		wantStatus(t, code, http.StatusCreated, rep)
	}

	get := func(s *Server, path string) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
				if rec.Code != http.StatusOK {
					b.Fatalf("GET %s = %d", path, rec.Code)
				}
			}
		}
	}
	// Best-of-3: the minimum ns/op over independent rounds. Scheduler and
	// background-goroutine noise only ever adds time, so the min is the
	// stable estimate — single rounds swing far more than the drift gate's
	// slack on a loaded runner.
	best := func(fn func(b *testing.B)) float64 {
		min := math.Inf(1)
		for i := 0; i < 3; i++ {
			if v := float64(testing.Benchmark(fn).NsPerOp()); v < min {
				min = v
			}
		}
		return min
	}
	dbPath := fmt.Sprintf("/v1/db/%d", id)
	offNs := best(get(solo, dbPath))
	onNs := best(get(g1, dbPath))
	scatterNs := best(get(g1, "/v1/kpi"))
	return map[string]float64{
		"db_get_router_off_ns_op":   offNs,
		"db_get_router_on_ns_op":    onNs,
		"router_overhead_pct":       (onNs - offNs) / offNs * 100,
		"scatter_kpi_3groups_ns_op": scatterNs,
	}
}

// writeBenchRecord serializes the measured numbers in the committed
// BENCH_router.json shape.
func writeBenchRecord(t *testing.T, path string, nums map[string]float64) {
	t.Helper()
	record := map[string]any{
		"go":         runtime.Version(),
		"generated":  time.Now().UTC().Format(time.RFC3339),
		"benchmarks": nums,
	}
	data, err := json.MarshalIndent(record, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestRecordRouterBench records the numbers to the file named by
// PRORP_BENCH_RECORD (skipped otherwise). `make bench-record` runs it to
// refresh BENCH_router.json, the committed perf-trajectory record:
// router_overhead_pct is the acceptance number (<= 5% over the unrouted
// baseline).
func TestRecordRouterBench(t *testing.T) {
	out := os.Getenv("PRORP_BENCH_RECORD")
	if out == "" {
		t.Skip("set PRORP_BENCH_RECORD=<path> to record BENCH_router.json")
	}
	nums := measureRouterBench(t)
	writeBenchRecord(t, out, nums)
	t.Logf("router off %.0fns/op, on %.0fns/op (%.2f%% overhead), scatter KPI %.0fns/op — recorded to %s",
		nums["db_get_router_off_ns_op"], nums["db_get_router_on_ns_op"],
		nums["router_overhead_pct"], nums["scatter_kpi_3groups_ns_op"], out)
}

// TestBenchDrift is the benchmark-drift gate behind `make bench-check`:
// re-measure and fail when any key of the committed baseline
// (PRORP_BENCH_BASELINE) regressed more than 10%. The overhead
// percentage additionally keeps its absolute acceptance floor — a
// baseline tighter than 5% must not turn ordinary noise into failures.
// When PRORP_BENCH_RECORD is also set, the fresh numbers are written
// there for CI to attach to the run.
func TestBenchDrift(t *testing.T) {
	basePath := os.Getenv("PRORP_BENCH_BASELINE")
	if basePath == "" {
		t.Skip("set PRORP_BENCH_BASELINE=<BENCH_router.json> to gate benchmark drift")
	}
	data, err := os.ReadFile(basePath)
	if err != nil {
		t.Fatal(err)
	}
	var base struct {
		Benchmarks map[string]float64 `json:"benchmarks"`
	}
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatalf("parsing %s: %v", basePath, err)
	}
	if len(base.Benchmarks) == 0 {
		t.Fatalf("baseline %s has no benchmarks", basePath)
	}

	nums := measureRouterBench(t)
	if out := os.Getenv("PRORP_BENCH_RECORD"); out != "" {
		writeBenchRecord(t, out, nums)
	}

	const slack = 1.10
	for key, b := range base.Benchmarks {
		fresh, ok := nums[key]
		if !ok {
			t.Errorf("baseline key %q is no longer measured", key)
			continue
		}
		limit := b * slack
		if key == "router_overhead_pct" && limit < 5.0 {
			limit = 5.0
		}
		if fresh > limit {
			t.Errorf("%s regressed: %.1f vs baseline %.1f (limit %.1f)", key, fresh, b, limit)
		} else {
			t.Logf("%s: %.1f (baseline %.1f, limit %.1f)", key, fresh, b, limit)
		}
	}
}
