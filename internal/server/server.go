// Package server is the HTTP front end of the online serving runtime: a
// stdlib net/http service over a prorp.ShardedFleet, driven by wall-clock
// time. It owns the pieces the library leaves to the host — the
// Algorithm 5 proactive-resume ticker, delivery of the per-database
// wake-up timers the policy requests, periodic snapshot persistence, and
// graceful shutdown with a final snapshot plus restore-on-boot.
//
// Endpoints:
//
//	POST   /v1/db               create a database        {"id":1,"created_at":...?}
//	GET    /v1/db/{id}          state + current prediction (?windows=1 for the full scan)
//	DELETE /v1/db/{id}          drop a database
//	POST   /v1/db/{id}/login    customer activity started
//	POST   /v1/db/{id}/logout   customer activity stopped
//	GET    /v1/kpi              fleet KPI report
//	GET    /v1/traces           slowest recent request traces (span trees)
//	GET    /metrics             Prometheus text exposition (superset of /v1/kpi)
//	GET    /healthz             liveness + fleet gauges
//	POST   /v1/ops/resume       run one proactive-resume iteration now
//	POST   /v1/ops/snapshot     persist a snapshot now
//	GET    /v1/repl/stream      WAL frames after a cursor (replication data plane)
//	GET    /v1/repl/snapshot    PRS2 fleet snapshot for follower resync
//	POST   /v1/repl/promote     make this node the primary of a new epoch
//	POST   /v1/repl/fence       force-feed an epoch, fencing an old primary
//	GET    /v1/shard/map        current slot map (?format=prm1 for the CRC-framed image)
//	POST   /v1/shard/migrate    move one slot's databases to another group  {"slot":5,"to":"g2"}
//	POST   /v1/shard/reconcile  adopt the newest peer map, sweep disowned databases
//	GET    /v1/shard/due        phase-one resume scan for a coordinating peer
//	POST   /v1/shard/prewarm    phase-two prewarm of this group's slice of the capped set
//	POST   /v1/shard/adopt      slot-transfer ingest (PRT1; migration data plane)
//
// A node runs as primary (default) or replica (Config.Role); replicas
// serve every read endpoint and reject mutations with 503 + Retry-After.
// See internal/repl and DESIGN.md §9.
//
// With Config.Group set the node joins a horizontally partitioned control
// plane: database ids hash into shardmap.NumSlots slots owned by named
// groups, per-database requests route through the versioned map (served
// locally, proxied, or 307-redirected), and fleet-wide surfaces
// scatter-gather across groups. See internal/shardmap and DESIGN.md §10.
//
// All timestamps are RFC 3339; event times are assigned from the server
// clock, exactly as the paper's gateway observes logins.
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"prorp"
	"prorp/internal/admission"
	"prorp/internal/breaker"
	"prorp/internal/faults"
	"prorp/internal/obs"
	"prorp/internal/repl"
	"prorp/internal/shardedfleet"
	"prorp/internal/wal"
)

// Config assembles a Server.
type Config struct {
	// Options are the fleet's policy knobs; the zero value means
	// prorp.DefaultOptions.
	Options prorp.Options
	// Shards is the fleet stripe count (0 = default).
	Shards int
	// SnapshotPath, when non-empty, enables persistence: the server
	// restores from this file on boot (if it exists), rewrites it every
	// SnapshotEvery, and writes it a final time on Close. Writes are
	// atomic and checksummed; the previous snapshot is kept at
	// SnapshotPath+".bak" and restored from when the primary is corrupt.
	SnapshotPath string
	// SnapshotEvery is the periodic-snapshot cadence (default 1 minute).
	SnapshotEvery time.Duration
	// Now overrides the clock, for tests (default time.Now).
	Now func() time.Time
	// Sleep overrides backoff sleeps, for tests (default time.Sleep).
	Sleep func(time.Duration)
	// FS is the filesystem seam for snapshot persistence (default the real
	// filesystem); chaos tests inject a faults.FaultFS.
	FS faults.FS
	// Backoff is the retry schedule for transient snapshot, prewarm, and
	// wake-delivery failures (zero value = faults.DefaultBackoff).
	Backoff faults.Backoff
	// WALDir, when non-empty, enables the crash-durable event journal:
	// every create/delete/login/logout is recorded there before it is
	// acknowledged, replayed on top of the restored snapshot at boot, and
	// compacted each time a snapshot lands. See internal/wal.
	WALDir string
	// WALFsync is the journal's durability policy (default wal.FsyncAlways;
	// wal.FsyncBatch group-commits appends arriving within
	// WALBatchInterval into one fsync).
	WALFsync wal.FsyncPolicy
	// WALSegmentBytes is the journal's segment rotation size (0 = default).
	WALSegmentBytes int64
	// WALBatchInterval is the group-commit window under wal.FsyncBatch
	// (0 = default).
	WALBatchInterval time.Duration
	// DegradedAfter is the number of consecutive periodic-snapshot
	// failures (each already retried per Backoff) after which the server
	// enters degraded mode: traffic is still served, snapshot retry storms
	// stop (one single-attempt probe per cadence), and /healthz reports
	// 503 until a probe succeeds. Default 3.
	DegradedAfter int
	// OnPrewarm, when non-nil, performs the infrastructure side of a
	// proactive resume (allocating compute ahead of the predicted login).
	// Transient failures are retried per Backoff; a database whose
	// prewarm still fails is surfaced in the KPI resilience counters
	// rather than silently dropped.
	OnPrewarm func(id int) error
	// OnWake, like OnPrewarm, performs the infrastructure side of
	// delivering a wake-up timer. Failures are retried; a persistently
	// failing wake is rescheduled a backoff-cap later, never dropped.
	OnWake func(id int) error
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
	// Role selects the node's replication role (default RolePrimary — the
	// zero value keeps the pre-replication single-node behavior). A replica
	// pulls the primary's journal, serves reads, and rejects writes with
	// 503 + Retry-After. See internal/repl and DESIGN.md §9.
	Role repl.Role
	// PrimaryAddr is the primary's base URL ("http://host:port"); required
	// when Role is RoleReplica.
	PrimaryAddr string
	// ReplDoer performs the replication HTTP round trips (default an
	// http.Client with a 30s timeout); chaos tests inject a faults.FaultDoer
	// over an in-process transport.
	ReplDoer faults.Doer
	// ReplPollInterval is the follower's idle/error poll cadence (0 =
	// default, 250ms).
	ReplPollInterval time.Duration
	// ReplMaxBatchBytes caps one replication stream batch (0 = default,
	// 256 KiB).
	ReplMaxBatchBytes int
	// LeaseTTL, when positive, enables the self-healing failover layer: the
	// primary grants followers a lease of this duration over the stream
	// headers (and over periodic announces), and a follower whose lease
	// lapses stands for election instead of waiting for an operator.
	// Requires ReplPeers and SelfAddr. See DESIGN.md §11.
	LeaseTTL time.Duration
	// ElectionTimeout is the base randomized election timeout: a candidate
	// waits ElectionTimeout + rand(0, ElectionTimeout) after its lease
	// lapses before standing (0 = LeaseTTL).
	ElectionTimeout time.Duration
	// ElectionSeed seeds the election jitter (0 = time-seeded); chaos tests
	// pin it for reproducibility.
	ElectionSeed int64
	// QuorumAcks, when positive, makes every write wait — after the local
	// journal fsync — until this many distinct follower cursors cover the
	// record before acking (quorum-acked write mode). A write that cannot
	// reach quorum within QuorumTimeout is refused with 503, never silently
	// downgraded to async replication. Requires WALDir.
	QuorumAcks int
	// QuorumTimeout bounds one quorum-acked replication wait (0 = 5s).
	// Wall-clock by design: quorum is a liveness SLA on real replicas.
	QuorumTimeout time.Duration
	// ReplPeers maps every OTHER replication-cluster member's name to its
	// base URL — the electorate for leases/elections and the announce
	// fan-out target.
	ReplPeers map[string]string
	// NodeID names this node in stream polls (the quorum-coverage key) and
	// vote requests (default: SelfAddr, then "node"). Quorum-acked mode
	// refuses to boot on the "node" fallback: replicas sharing the default
	// id collapse into one entry in the primary's coverage map, and a K≥2
	// quorum then times out every write even with enough live replicas.
	NodeID string
	// SelfAddr is this node's own base URL, announced to peers when it wins
	// an election so they repoint their followers at it.
	SelfAddr string
	// Group, when non-empty, makes this node part of a horizontally
	// partitioned control plane: database ids hash into slots, slots are
	// owned by named groups (see internal/shardmap), and every per-database
	// request is routed through the map. Empty keeps the single-group
	// behavior exactly as before.
	Group string
	// GroupPeers maps every OTHER group's name to its primary's base URL
	// ("http://host:port"). Fleet-wide surfaces scatter-gather across them;
	// remote-owned requests are proxied (or redirected) there.
	GroupPeers map[string]string
	// ShardmapPath, when non-empty, persists the slot map in PRM1 form:
	// restored on boot, rewritten on every adoption.
	ShardmapPath string
	// RouterDoer performs routing, scatter-gather, and migration round
	// trips (default an http.Client with a 10s timeout).
	RouterDoer faults.Doer
	// RouterRedirect makes remote-owned requests answer 307 with the
	// owner's address instead of proxying server-side.
	RouterRedirect bool
	// ScatterTimeout bounds one scatter-gather fan-out (default 2s);
	// groups that miss it are reported as partial results, not waited for.
	ScatterTimeout time.Duration

	// AdmissionTargetDelay is the priority admission controller's
	// CoDel-style sojourn target (0 = 200ms): once the oldest in-flight
	// request has been running longer than this, low-priority classes are
	// shed with 429 — background first, then history writes, then reads,
	// never login/decision traffic. Wall-clock by design, like the other
	// liveness deadlines: sojourn measures real elapsed time.
	AdmissionTargetDelay time.Duration
	// AdmissionMaxInflight is the in-flight depth backstop (0 = 1024):
	// everything below decision class sheds at this depth, decisions
	// themselves at twice it. Negative disables the admission gate
	// entirely (the overhead benchmark's unadmitted baseline).
	AdmissionMaxInflight int
	// AdmissionShedClasses bounds how many priority classes, counted from
	// the bottom, sojourn shedding may refuse (0 = 3: background, writes,
	// and reads shed; decisions never do).
	AdmissionShedClasses int
	// BreakerThreshold is the consecutive-transport-failure count that
	// opens a per-host circuit breaker on every inter-node HTTP path —
	// router proxy, scatter fan-out, replication polls, election
	// solicitation, migration ships, announces (0 = 5; negative disables
	// the breakers entirely).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker refuses calls before
	// admitting a single recovery probe (0 = 2s). Wall-clock by design:
	// recovery is a liveness deadline on real peers.
	BreakerCooldown time.Duration
}

// opsCounters are the serving layer's resilience counters, surfaced
// through prorp.FleetKPI on GET /v1/kpi.
type opsCounters struct {
	snapshotRetries   atomic.Uint64
	snapshotFailures  atomic.Uint64
	snapshotFallbacks atomic.Uint64
	prewarmRetries    atomic.Uint64
	prewarmFailures   atomic.Uint64
	wakeRetries       atomic.Uint64
	wakeFailures      atomic.Uint64
	// WAL counters: append failures accumulate over the server's life;
	// the replay family is set once by the boot replay.
	walAppendFailures atomic.Uint64
	walReplayed       atomic.Uint64
	walReplaySkipped  atomic.Uint64
	walTornSegments   atomic.Uint64
	walTruncatedBytes atomic.Uint64
}

// Server is the HTTP front end. It implements http.Handler.
type Server struct {
	cfg     Config
	fleetP  atomic.Pointer[prorp.ShardedFleet]
	now     func() time.Time
	clock   faults.Clock
	logf    func(string, ...any)
	mux     *http.ServeMux
	wakes   *wakeScheduler
	store   *snapshotStore // nil when persistence is disabled
	wal     *wal.Journal   // nil when the event journal is disabled
	started time.Time
	ops     opsCounters

	// Replication: node is the role/epoch state machine (always non-nil),
	// followerP the pull loop — atomic because self-healing failover
	// creates and drops followers at runtime (a fenced ex-primary
	// auto-demotes into one, an election winner sheds its own). replMu
	// guards the repl-state file and the cached cursor; the stream-side
	// counters live in repl.
	node       *repl.Node
	followerP  atomic.Pointer[repl.Follower]
	replMu     sync.Mutex
	replCursor wal.Cursor
	// replLineage is the reign epoch of the journal replCursor indexes —
	// the vote-comparison guard (cursors from different reigns are
	// incomparable). Set at promotion (own reign) or learned from the
	// stream's X-Repl-Reign header; guarded by replMu.
	replLineage uint64
	repl        replCounters

	// peerAddrs maps follower node ids to the last remote host each polled
	// from, to log when two hosts share an id (see notePeerID).
	peerAddrMu sync.Mutex
	peerAddrs  map[string]string

	// Self-healing failover (nil/zero unless Config.LeaseTTL is set):
	// lease tracks primary liveness, elector campaigns when it lapses,
	// coverage tracks follower cursors for quorum-acked writes. followMu
	// serializes follower create/repoint/stop against promotion; primaryMu
	// guards the mutable primary address (it moves on every failover).
	lease       *repl.Lease
	elector     *repl.Elector
	coverage    *wal.Coverage
	followMu    sync.Mutex
	closing     bool // under followMu: no new followers past Close/Kill
	primaryMu   sync.Mutex
	primaryAddr string

	// Partitioning: router is the shard-map routing state (nil when
	// Config.Group is empty — the single-group layout), migrateMu
	// serializes slot migrations on both the source and destination side.
	router    *router
	migrateMu sync.Mutex

	// Overload robustness: admission is the priority-classed gate in front
	// of every instrumented route, replBreakers the per-host circuit
	// breakers on the replication control paths (follower poll, snapshot
	// resync, election solicitation, announce), retryBudget the shared
	// token bucket that caps internally generated retries (proxy re-route
	// after 421, migration re-ship) so retry amplification cannot pile on
	// during an outage. replBreakers and retryBudget are nil when breakers
	// are disabled (BreakerThreshold < 0).
	admission    *admission.Controller
	replBreakers *breaker.Group
	retryBudget  *admission.RetryBudget

	// Observability: the metric registry behind GET /metrics and the span
	// tracer behind GET /v1/traces. Always on — the registry is atomic
	// counters, the tracer a bounded buffer.
	reg      *obs.Registry
	tracer   *obs.Tracer
	predHist *obs.Histogram // ExplainPrediction latency (Algorithm 4 scan)

	// walGate orders mutations against snapshot boundaries: handlers hold
	// it shared around the journal-append + fleet-apply pair, and the
	// snapshot writer holds it exclusive around rotate + serialize — so
	// every event is either wholly inside a snapshot or wholly at/after
	// its journal boundary, never half of each.
	walGate sync.RWMutex

	// snapMu serializes snapshot writes (ticker vs. ops endpoint vs.
	// Close) and guards the degraded-mode bookkeeping.
	snapMu        sync.Mutex
	snapFailures  int    // consecutive failed snapshot writes
	lastSnapError string // last snapshot failure, for /healthz
	degraded      atomic.Bool

	stop      chan struct{}
	bg        sync.WaitGroup
	closeOnce sync.Once
	closeErr  error
}

// New builds the server, restoring the fleet from Config.SnapshotPath if a
// snapshot exists there (falling back to the last-known-good .bak when the
// primary is corrupt), and starts the background control loops. Callers
// must Close it.
func New(cfg Config) (*Server, error) {
	if cfg.Options == (prorp.Options{}) {
		cfg.Options = prorp.DefaultOptions()
	}
	if cfg.SnapshotEvery <= 0 {
		cfg.SnapshotEvery = time.Minute
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Sleep == nil {
		cfg.Sleep = time.Sleep
	}
	if cfg.FS == nil {
		cfg.FS = faults.OS
	}
	if cfg.Backoff == (faults.Backoff{}) {
		cfg.Backoff = faults.DefaultBackoff()
	}
	if cfg.DegradedAfter <= 0 {
		cfg.DegradedAfter = 3
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.Role == repl.RoleReplica {
		if cfg.PrimaryAddr == "" {
			return nil, errors.New("server: replica role requires PrimaryAddr")
		}
		if cfg.WALDir == "" {
			// The replica's whole crash story is journalize-before-apply;
			// without a journal a restart would silently lose applied state.
			return nil, errors.New("server: replica role requires WALDir")
		}
	}
	if cfg.LeaseTTL > 0 {
		if len(cfg.ReplPeers) == 0 {
			return nil, errors.New("server: LeaseTTL requires ReplPeers (the electorate)")
		}
		if cfg.SelfAddr == "" {
			return nil, errors.New("server: LeaseTTL requires SelfAddr (announced on election win)")
		}
		if cfg.ElectionTimeout <= 0 {
			cfg.ElectionTimeout = cfg.LeaseTTL
		}
	}
	if cfg.QuorumAcks > 0 {
		if cfg.WALDir == "" {
			return nil, errors.New("server: QuorumAcks requires WALDir (quorum covers journal cursors)")
		}
		if cfg.NodeID == "" && cfg.SelfAddr == "" {
			// The coverage map keys on node id: replicas falling back to the
			// shared "node" default collapse into ONE peer, and a K≥2 quorum
			// then 503s every write no matter how many replicas are caught up.
			return nil, errors.New("server: QuorumAcks requires a distinct node identity: set NodeID (or SelfAddr)")
		}
		if cfg.QuorumTimeout <= 0 {
			cfg.QuorumTimeout = 5 * time.Second
		}
	}
	if cfg.NodeID == "" {
		cfg.NodeID = cfg.SelfAddr
		if cfg.NodeID == "" {
			cfg.NodeID = "node"
		}
	}
	clock := funcClock{now: cfg.Now, sleep: cfg.Sleep}
	reg := obs.NewRegistry()

	var store *snapshotStore
	if cfg.SnapshotPath != "" {
		store = &snapshotStore{
			path:    cfg.SnapshotPath,
			fs:      cfg.FS,
			clock:   clock,
			backoff: cfg.Backoff,
			logf:    cfg.Logf,
			saveHist: reg.Histogram("prorp_snapshot_save_duration_seconds",
				"Snapshot persistence latency (disk half, retries included).", obs.LatencyBuckets),
			loadHist: reg.Histogram("prorp_snapshot_load_duration_seconds",
				"Snapshot restore latency at boot.", obs.LatencyBuckets),
		}
	}

	var (
		fleet    *prorp.ShardedFleet
		pending  []prorp.PendingWake
		fellBack bool
		walSince uint64
	)
	if store != nil {
		var err error
		fellBack, walSince, err = store.Load(func(r io.Reader) error {
			f, p, rerr := prorp.RestoreShardedFleet(cfg.Options, cfg.Shards, r)
			if rerr != nil {
				return rerr
			}
			fleet, pending = f, p
			return nil
		})
		switch {
		case err == nil:
			src := cfg.SnapshotPath
			if fellBack {
				src = store.bakPath()
			}
			cfg.Logf("restored %d databases (%d pending wakes) from %s",
				fleet.Size(), len(pending), src)
		case errors.Is(err, fs.ErrNotExist):
			// First boot: no snapshot yet. The journal, if any, replays
			// from the beginning and rebuilds the fleet on its own.
		default:
			return nil, fmt.Errorf("server: restoring snapshot %s: %w", cfg.SnapshotPath, err)
		}
	}
	if fleet == nil {
		var err error
		fleet, err = prorp.NewShardedFleetShards(cfg.Options, cfg.Shards)
		if err != nil {
			return nil, err
		}
		walSince = 0 // fresh fleet: every journaled event is news
	}

	var journal *wal.Journal
	if cfg.WALDir != "" {
		var err error
		journal, err = wal.Open(wal.Config{
			Dir:           cfg.WALDir,
			SegmentBytes:  cfg.WALSegmentBytes,
			Fsync:         cfg.WALFsync,
			BatchInterval: cfg.WALBatchInterval,
			FS:            cfg.FS,
			Clock:         clock,
			Backoff:       cfg.Backoff,
			Logf:          cfg.Logf,
			Obs:           reg,
		})
		if err != nil {
			fleet.Close()
			return nil, fmt.Errorf("server: opening wal: %w", err)
		}
	}

	s := &Server{
		cfg:     cfg,
		now:     cfg.Now,
		clock:   clock,
		logf:    cfg.Logf,
		wakes:   newWakeScheduler(),
		store:   store,
		wal:     journal,
		started: cfg.Now(),
		stop:    make(chan struct{}),
		reg:     reg,
		tracer:  obs.NewTracer(0, 0),
	}
	s.fleetP.Store(fleet)

	// Overload layer. The admission controller and the breakers run on the
	// wall clock even when cfg.Now is a test clock: sojourn and cooldown
	// are liveness SLAs over real elapsed time (exactly like QuorumTimeout
	// and the scatter deadline), and a frozen test clock must not leave a
	// tripped breaker open forever.
	if cfg.AdmissionMaxInflight >= 0 {
		s.admission = admission.NewController(admission.Config{
			TargetDelay:      cfg.AdmissionTargetDelay,
			MaxInflight:      cfg.AdmissionMaxInflight,
			SheddableClasses: cfg.AdmissionShedClasses,
		})
	}
	if cfg.BreakerThreshold >= 0 {
		s.replBreakers = breaker.NewGroup(cfg.BreakerThreshold, cfg.BreakerCooldown, nil)
		s.retryBudget = admission.NewRetryBudget(0, 0)
	}

	// Restore the replication node state (epoch, fencing, stream cursor,
	// lease) from the repl-state file next to the journal; a demoted
	// primary must come back fenced or a restart would quietly un-demote
	// it, and a reboot inside an unexpired lease must respect it rather
	// than instantly campaign against a primary that was alive moments ago.
	s.primaryAddr = cfg.PrimaryAddr
	epoch, fenced, cursor, leaseMs, lineage, err := loadReplState(cfg.FS, replStatePath(cfg.WALDir))
	if err != nil {
		fleet.Close()
		if journal != nil {
			journal.Close()
		}
		return nil, fmt.Errorf("server: reading repl state: %w", err)
	}
	s.node = repl.RestoreNode(cfg.Role, epoch, fenced)
	s.replCursor = cursor
	s.replLineage = lineage
	if lineage == 0 && cfg.Role == repl.RolePrimary && !fenced {
		// A primary from before lineages were persisted (or a fresh one):
		// its journal is its own reign. A fenced ex-primary gets no such
		// default — its epoch has moved past its reign and guessing wrong
		// would let its old cursor compare against the new reign's.
		s.replLineage = s.node.Epoch()
	}
	if cfg.LeaseTTL > 0 {
		s.lease = repl.NewLease(clock, cfg.LeaseTTL)
		if leaseMs > 0 {
			s.lease.RestoreUntil(s.node.Epoch(), time.UnixMilli(leaseMs))
		}
	}
	if cfg.QuorumAcks > 0 {
		s.coverage = wal.NewCoverage()
	}
	if fenced && cfg.Role == repl.RolePrimary {
		cfg.Logf("booting fenced at epoch %d: a newer primary exists, writes stay rejected", s.node.Epoch())
	}
	if fellBack {
		s.ops.snapshotFallbacks.Add(1)
	}
	for _, w := range pending {
		s.wakes.schedule(w.ID, w.WakeAt)
	}
	if journal != nil {
		// Replay the journal on top of the restored snapshot. Torn tails
		// are truncated by the journal; only disk-level read errors refuse
		// the boot.
		stats, err := journal.Replay(walSince, s.applyReplay)
		if err != nil {
			fleet.Close()
			journal.Close()
			return nil, fmt.Errorf("server: replaying wal: %w", err)
		}
		s.ops.walTornSegments.Add(uint64(stats.TornSegments))
		s.ops.walTruncatedBytes.Add(uint64(stats.TruncatedBytes))
		if stats.Records > 0 || stats.TornSegments > 0 {
			cfg.Logf("wal replay: %d records across %d segments since boundary %d (%d applied, %d skipped, %d torn segments, %d bytes truncated)",
				stats.Records, stats.SegmentsScanned, walSince,
				s.ops.walReplayed.Load(), s.ops.walReplaySkipped.Load(),
				stats.TornSegments, stats.TruncatedBytes)
		}
	}

	// The follower is assembled after snapshot restore and journal replay
	// so it can see whether boot produced local state at all.
	if cfg.Role == repl.RoleReplica {
		// A replica whose boot restore/replay produced state the stream
		// cursor does not cover — a rebooted ex-primary, or a seeded
		// snapshot — must not stream from genesis on top of it: events are
		// not idempotent, so the overlap would double-apply and diverge.
		// It adopts the primary's snapshot first instead.
		resyncFirst := cursor.IsZero() && fleet.Size() > 0
		if resyncFirst {
			cfg.Logf("replica boot: %d databases restored but no stream cursor; forcing snapshot resync", fleet.Size())
		}
		s.followerP.Store(repl.NewFollower(repl.FollowerConfig{
			PrimaryURL:       cfg.PrimaryAddr,
			Doer:             s.replDoer(),
			Clock:            clock,
			PollInterval:     cfg.ReplPollInterval,
			MaxBatchBytes:    cfg.ReplMaxBatchBytes,
			Node:             s.node,
			NodeID:           cfg.NodeID,
			Apply:            s.applyStreamed,
			Persist:          s.persistReplState,
			Resync:           s.replResync,
			ResyncOnStart:    resyncFirst,
			OnPrimaryContact: s.renewLease,
			Logf:             cfg.Logf,
		}, cursor))
	}

	if cfg.Group != "" {
		s.router, err = newRouter(cfg)
		if err != nil {
			fleet.Close()
			if journal != nil {
				journal.Close()
			}
			return nil, err
		}
		// A crash between a migration's map adoption and its local deletes
		// leaves databases the (persisted) map assigns elsewhere; sweep them
		// now, before traffic, so the audit invariant — every database owned
		// by exactly one group — holds from the first request.
		if s.node.CanAcceptWrites() {
			s.sweepDisowned()
		}
	}

	if cfg.LeaseTTL > 0 {
		s.elector = repl.NewElector(repl.ElectorConfig{
			NodeID:   cfg.NodeID,
			SelfAddr: cfg.SelfAddr,
			Peers:    cfg.ReplPeers,
			Node:     s.node,
			Lease:    s.lease,
			Clock:    clock,
			Doer:     s.replDoer(),
			Timeout:  cfg.ElectionTimeout,
			Seed:     cfg.ElectionSeed,
			// Only a node that is actively following (and so has a journal
			// position in the current primary's cursor space) may stand: a
			// fenced ex-primary that has not re-attached yet has nothing
			// comparable to offer the electorate.
			Eligible: func() bool { return !s.node.CanAcceptWrites() && s.followerRef() != nil },
			Cursor:   s.votePosition,
			Persist: func() error {
				return s.persistReplState(s.node.Epoch(), s.loadCursor(), true)
			},
			Promote:  func(e uint64) error { _, err := s.promoteTo(e); return err },
			OnLeader: func(addr string, e uint64) { s.adoptPrimary(addr, e, 0) },
			Logf:     cfg.Logf,
		})
	}

	s.predHist = reg.Histogram("prorp_prediction_duration_seconds",
		"Algorithm 4 prediction-scan latency (GET /v1/db ExplainPrediction).", obs.LatencyBuckets)
	fleet.InstrumentObs(reg)
	s.registerServerMetrics()
	s.buildMux()

	s.bg.Add(2)
	go s.resumeLoop()
	go s.wakeLoop()
	if cfg.SnapshotPath != "" {
		s.bg.Add(1)
		go s.snapshotLoop()
	}
	if f := s.followerP.Load(); f != nil {
		f.Start()
	}
	if s.elector != nil {
		s.elector.Start()
		s.bg.Add(1)
		go s.announceLoop()
	}
	return s, nil
}

// Close shuts the server down gracefully: it stops the control loops,
// drains the fleet's shard queues, persists a final snapshot (when
// persistence is configured), seals the event journal, and stops the
// shard workers.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		if s.elector != nil {
			s.elector.Stop() // no new candidacies past this point
		}
		s.followMu.Lock()
		s.closing = true // no announce may spawn a fresh follower now
		if f := s.followerP.Load(); f != nil {
			f.Stop() // no new streamed records past this point
		}
		s.followMu.Unlock()
		close(s.stop)
		s.bg.Wait()
		s.Fleet().Close() // drains shard queues, stops workers
		if s.cfg.SnapshotPath != "" {
			if _, err := s.writeSnapshot(); err != nil {
				s.closeErr = fmt.Errorf("server: final snapshot: %w", err)
			} else {
				s.logf("final snapshot written to %s", s.cfg.SnapshotPath)
			}
		}
		if s.wal != nil {
			if err := s.wal.Close(); err != nil && s.closeErr == nil {
				s.closeErr = fmt.Errorf("server: sealing wal: %w", err)
			}
		}
	})
	return s.closeErr
}

// Kill terminates the server without the graceful-shutdown work: no final
// snapshot, no journal seal, no final fsync — the moral equivalent of
// SIGKILL landing after the last acknowledged request. The chaos suite
// uses it to model a crash; production shutdown is Close.
func (s *Server) Kill() {
	s.closeOnce.Do(func() {
		if s.elector != nil {
			s.elector.Stop()
		}
		s.followMu.Lock()
		s.closing = true
		if f := s.followerP.Load(); f != nil {
			f.Stop()
		}
		s.followMu.Unlock()
		close(s.stop)
		s.bg.Wait()
		s.Fleet().Close()
		if s.wal != nil {
			s.wal.Kill()
		}
	})
}

// applyRecord applies one journaled record to the fleet and reconciles
// the wake timer it implies — the shared tail of boot replay and the
// replica's streamed-apply path. Records that double-apply — the journal
// boundary is conservative, and replication is at-least-once — are
// skipped: duplicate creates, mutations of since-deleted databases, and
// re-inserted history tuples (the history store dedups on timestamp) are
// all idempotent.
func (s *Server) applyRecord(rec wal.Record) (skipped bool, err error) {
	id := int(rec.ID)
	t := time.Unix(rec.Unix, 0)
	var (
		d      prorp.Decision
		reWake bool
	)
	switch rec.Type {
	case wal.RecordCreate:
		err = s.Fleet().Create(id, t)
	case wal.RecordDelete:
		if err = s.Fleet().Delete(id); err == nil {
			s.wakes.schedule(id, time.Time{})
		}
	case wal.RecordLogin:
		d, err = s.Fleet().Login(id, t)
		reWake = err == nil
	case wal.RecordLogout:
		d, err = s.Fleet().Idle(id, t)
		reWake = err == nil
	default:
		err = fmt.Errorf("unknown record type %d", rec.Type)
	}
	switch {
	case err == nil:
		if reWake {
			// The decision's WakeAt is the complete desired timer state
			// after this event; reconcile, exactly like the live handler.
			s.wakes.schedule(id, d.WakeAt)
		}
		return false, nil
	case errors.Is(err, prorp.ErrDuplicateDatabase), errors.Is(err, prorp.ErrUnknownDatabase):
		return true, nil
	default:
		return false, err
	}
}

// applyReplay applies one journaled record during boot replay, folding
// the outcome into the replay counters.
func (s *Server) applyReplay(rec wal.Record) {
	skipped, err := s.applyRecord(rec)
	switch {
	case err != nil:
		s.ops.walReplaySkipped.Add(1)
		s.logf("wal replay: %s(%d) at %d not applied: %v", rec.Type, rec.ID, rec.Unix, err)
	case skipped:
		s.ops.walReplaySkipped.Add(1)
	default:
		s.ops.walReplayed.Add(1)
	}
}

// journalize records one mutation in the event journal, retrying transient
// failures, and returns the end-of-record cursor (the quorum-coverage
// target in quorum-acked mode; zero when journaling is disabled). A nil
// error means the record is durable per the configured fsync policy and
// the mutation may be acknowledged; a non-nil error means it must not be.
// Callers hold walGate shared across the journalize + fleet-apply pair.
func (s *Server) journalize(typ wal.RecordType, id int, t time.Time) (wal.Cursor, error) {
	if s.wal == nil {
		return wal.Cursor{}, nil
	}
	rec := wal.Record{Type: typ, ID: int64(id), Unix: t.Unix()}
	var end wal.Cursor
	_, err := faults.Retry(s.clock, s.cfg.Backoff, func() error {
		cur, aerr := s.wal.Append(rec)
		if aerr == nil {
			end = cur
		}
		return aerr
	})
	if err != nil {
		s.ops.walAppendFailures.Add(1)
		s.logf("wal append %s(%d) failed: %v", typ, id, err)
		return wal.Cursor{}, fmt.Errorf("%w: %v", errJournalUnavailable, err)
	}
	return end, nil
}

// waitQuorum blocks a just-journaled write until QuorumAcks distinct
// follower cursors cover it (no-op outside quorum-acked mode). A timeout
// is a refusal, never a silent downgrade to async replication: the record
// IS durable locally and WILL replicate, but the contract the client asked
// for was not met inside the deadline, so the write is not acknowledged.
func (s *Server) waitQuorum(end wal.Cursor) error {
	if s.coverage == nil || s.cfg.QuorumAcks <= 0 || end.IsZero() {
		return nil
	}
	if err := s.coverage.WaitCovered(end, s.cfg.QuorumAcks, s.cfg.QuorumTimeout); err != nil {
		s.repl.quorumTimeouts.Add(1)
		return fmt.Errorf("%w: %d ack(s) required, %d replica(s) known",
			errQuorumUnreached, s.cfg.QuorumAcks, s.coverage.Peers())
	}
	return nil
}

// errQuorumUnreached refuses a quorum-acked write that could not reach K
// replica acks inside QuorumTimeout. Mapped to HTTP 503 with Retry-After.
var errQuorumUnreached = errors.New("quorum not reached: write journaled but not replica-acknowledged")

// errJournalUnavailable refuses a mutation whose journal append failed:
// without a durable record the event cannot be acknowledged. Mapped to
// HTTP 503 — the condition is the server's, not the client's.
var errJournalUnavailable = errors.New("event journal unavailable")

// Fleet exposes the underlying fleet, for host instrumentation and
// handlers. The pointer is atomic because a snapshot resync on a replica
// swaps the whole runtime out from under concurrent readers.
func (s *Server) Fleet() *prorp.ShardedFleet { return s.fleetP.Load() }

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// ----- background control loops ------------------------------------------

// resumeLoop runs the Algorithm 5 proactive-resume operation every
// ResumeOpPeriod.
func (s *Server) resumeLoop() {
	defer s.bg.Done()
	period := s.cfg.Options.ResumeOpPeriod
	if period <= 0 {
		period = time.Minute
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			// A partitioned group's beat runs Algorithm 5 under the GLOBAL
			// prewarm cap: scan every group, cap the merged due set, fan the
			// survivors back out (see globalTick).
			if s.router.multiGroup() && s.node.CanAcceptWrites() {
				s.globalTick(s.now())
			} else {
				s.tick(s.now())
			}
		}
	}
}

// wakeLoop delivers the per-database wake-ups the policy schedules, at
// their requested times.
func (s *Server) wakeLoop() {
	defer s.bg.Done()
	for {
		var timerC <-chan time.Time
		var timer *time.Timer
		// A non-primary never arms the timer (delivery is gated anyway, and
		// an armed past-due timer would spin); promotion kicks the signal
		// channel to re-arm.
		if at, ok := s.wakes.next(); ok && s.node.CanAcceptWrites() {
			d := at.Sub(s.now())
			if d < 0 {
				d = 0
			}
			timer = time.NewTimer(d)
			timerC = timer.C
		}
		select {
		case <-s.stop:
			if timer != nil {
				timer.Stop()
			}
			return
		case <-s.wakes.signal:
			// An earlier deadline arrived; recompute the timer.
		case <-timerC:
			s.deliverDueWakes(s.now())
		}
		if timer != nil {
			timer.Stop()
		}
	}
}

func (s *Server) snapshotLoop() {
	defer s.bg.Done()
	t := time.NewTicker(s.cfg.SnapshotEvery)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			// While degraded the periodic write degenerates into a
			// single-attempt probe (see writeSnapshotOpts).
			if _, err := s.writeSnapshotOpts(s.degraded.Load()); err != nil {
				s.logf("periodic snapshot failed: %v", err)
			}
		}
	}
}

// tick is one control-plane beat: deliver overdue wakes, then run the
// proactive-resume operation, perform the infrastructure side of each
// pre-warm (with retries), and schedule the pre-warmed databases' wakes.
// Both the ticker and POST /v1/ops/resume land here.
func (s *Server) tick(now time.Time) (wakesDelivered int, prewarmed []prorp.Prewarmed) {
	if !s.node.CanAcceptWrites() {
		// Replicas (and fenced ex-primaries) never run the resume op: the
		// prewarm transitions it causes are not journaled, so running it
		// here would silently diverge from the primary's stream.
		return 0, nil
	}
	wakesDelivered = s.deliverDueWakes(now)
	prewarmed = s.Fleet().RunResumeOp(now)
	s.executePrewarm(prewarmed)
	return wakesDelivered, prewarmed
}

func (s *Server) deliverDueWakes(now time.Time) int {
	if !s.node.CanAcceptWrites() {
		// Wake transitions are not journaled either; timers accumulate in
		// the scheduler and start firing the moment this node is promoted.
		return 0
	}
	delivered := 0
	for _, e := range s.wakes.due(now) {
		if s.cfg.OnWake != nil {
			retries, err := faults.Retry(s.clock, s.cfg.Backoff, func() error {
				return s.cfg.OnWake(e.id)
			})
			s.ops.wakeRetries.Add(uint64(retries))
			if err != nil {
				// Never drop a timer: push it out one backoff cap and let
				// the delivery loop try again.
				s.ops.wakeFailures.Add(1)
				s.logf("wake of database %d failed after %d retries: %v (rescheduled)", e.id, retries, err)
				s.wakes.schedule(e.id, now.Add(s.retryDefer()))
				continue
			}
		}
		d, err := s.Fleet().Wake(e.id, now)
		if err != nil {
			continue // deleted since scheduling
		}
		delivered++
		s.wakes.schedule(e.id, d.WakeAt)
	}
	return delivered
}

// retryDefer is how far a persistently failing wake is pushed out.
func (s *Server) retryDefer() time.Duration {
	if d := s.cfg.Backoff.Max; d > 0 {
		return d
	}
	return time.Second
}

// writeSnapshot persists the fleet through the resilient store: framed
// with a checksum, written atomically (temp, fsync, rename), previous
// snapshot rotated to .bak, transient errors retried with backoff. It also
// drives the degraded-mode state machine: DegradedAfter consecutive
// failures flip the server to degraded (traffic still served, /healthz
// unhealthy); the next success flips it back.
func (s *Server) writeSnapshot() (int64, error) { return s.writeSnapshotOpts(false) }

// writeSnapshotOpts is writeSnapshot with the degraded-mode probe policy:
// probeOnly limits the write to a single attempt, so a server whose disk
// stays down doesn't mount a retry storm every cadence. Operator-forced
// snapshots (POST /v1/ops/snapshot) and the final snapshot on Close always
// use the full retry budget.
func (s *Server) writeSnapshotOpts(probeOnly bool) (int64, error) {
	if s.store == nil {
		return 0, errors.New("snapshots disabled: no snapshot path configured")
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	backoff := s.cfg.Backoff
	if probeOnly {
		backoff.Attempts = 1
	}
	st := *s.store
	st.backoff = backoff

	// Establish the journal boundary and serialize the fleet under the
	// exclusive side of walGate: no event can land between the rotation
	// and the archive quiesce, so the snapshot provably contains every
	// event in segments below the boundary. Disk I/O (the slow, retried
	// part) happens after the gate is released.
	var (
		payload  bytes.Buffer
		boundary uint64
		err      error
	)
	payload.Write(make([]byte, storeHeader2Size)) // container header headroom
	if s.wal != nil {
		s.walGate.Lock()
		boundary, err = s.wal.Rotate()
		if err == nil {
			_, err = s.Fleet().WriteTo(&payload)
		}
		s.walGate.Unlock()
	} else {
		_, err = s.Fleet().WriteTo(&payload)
	}

	var n int64
	if err == nil {
		var retries int
		n, retries, err = st.savePayload(payload.Bytes(), boundary)
		s.ops.snapshotRetries.Add(uint64(retries))
	}
	if err != nil {
		s.ops.snapshotFailures.Add(1)
		s.snapFailures++
		s.lastSnapError = err.Error()
		if s.snapFailures >= s.cfg.DegradedAfter && !s.degraded.Load() {
			s.degraded.Store(true)
			s.logf("entering degraded mode after %d consecutive snapshot failures: %v", s.snapFailures, err)
		}
		return n, err
	}
	if s.degraded.Swap(false) {
		s.logf("snapshot succeeded; leaving degraded mode")
	}
	s.snapFailures = 0
	s.lastSnapError = ""
	if s.wal != nil {
		// The snapshot is durable: segments below the boundary are
		// superseded. A failed removal is retried by the next compaction.
		if removed, cerr := s.wal.CompactBefore(boundary); cerr != nil {
			s.logf("wal compaction after snapshot: removed %d segments, then: %v", removed, cerr)
		}
	}
	return n, nil
}

// ----- HTTP handlers ------------------------------------------------------

func (s *Server) buildMux() {
	m := http.NewServeMux()
	// Every route goes through the instrumented wrapper: the route label is
	// the registered pattern (bounded cardinality), the handler runs inside
	// a root span, and latency/status land in the registry.
	handle := func(method, route string, h http.HandlerFunc) {
		m.HandleFunc(method+" "+route, s.instrumented(method, route, h))
	}
	handle("POST", "/v1/db", s.handleCreate)
	handle("GET", "/v1/db/{id}", s.handleGet)
	handle("DELETE", "/v1/db/{id}", s.handleDelete)
	handle("POST", "/v1/db/{id}/login", s.handleLogin)
	handle("POST", "/v1/db/{id}/logout", s.handleLogout)
	handle("GET", "/v1/kpi", s.handleKPI)
	handle("GET", "/healthz", s.handleHealthz)
	handle("POST", "/v1/ops/resume", s.handleOpsResume)
	handle("POST", "/v1/ops/snapshot", s.handleOpsSnapshot)
	handle("POST", "/v1/repl/promote", s.handleReplPromote)
	handle("POST", "/v1/repl/fence", s.handleReplFence)
	handle("POST", "/v1/repl/vote", s.handleReplVote)
	handle("POST", "/v1/repl/announce", s.handleReplAnnounce)
	handle("GET", "/v1/shard/map", s.handleShardMap)
	handle("POST", "/v1/shard/migrate", s.handleShardMigrate)
	handle("POST", "/v1/shard/reconcile", s.handleShardReconcile)
	// The observability surface itself is not traced or histogrammed:
	// scrapes would crowd the trace buffer with their own reads. The
	// replication data plane (polled continuously by followers) likewise
	// stays out of the request histograms and the trace buffer.
	m.HandleFunc("GET /metrics", s.handleMetrics)
	m.HandleFunc("GET /v1/traces", s.handleTraces)
	m.HandleFunc("GET /v1/repl/stream", s.handleReplStream)
	m.HandleFunc("GET /v1/repl/snapshot", s.handleReplSnapshot)
	// The shard data plane (group-to-group fan-out and slot transfer)
	// likewise stays out of the request histograms.
	m.HandleFunc("GET /v1/shard/due", s.handleShardDue)
	m.HandleFunc("POST /v1/shard/prewarm", s.handleShardPrewarm)
	m.HandleFunc("POST /v1/shard/adopt", s.handleShardAdopt)
	s.mux = m
}

type errorJSON struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeErr maps err to a response with a fixed one-second Retry-After on
// retryable rejections. Handlers on a live *Server go through s.writeErr,
// which derives the hint from current pressure and lease state instead.
func writeErr(w http.ResponseWriter, err error) {
	writeErrAfter(w, err, time.Second)
}

func (s *Server) writeErr(w http.ResponseWriter, err error) {
	writeErrAfter(w, err, s.retryAfterFor(err))
}

// retryAfterFor computes the Retry-After hint for one retryable rejection
// from live server state: a shed request waits out the measured congestion,
// an open circuit waits out the breaker cooldown, a fenced or non-primary
// write waits out the remaining lease (after which either the primary
// renews or an election moves it).
func (s *Server) retryAfterFor(err error) time.Duration {
	switch {
	case errors.Is(err, admission.ErrShedLoad):
		if s.admission != nil {
			d := s.admission.TargetDelay()
			if p := s.admission.Pressure(); p.OldestSojourn > d {
				d = p.OldestSojourn
			}
			return d
		}
	case errors.Is(err, breaker.ErrOpen):
		if s.replBreakers != nil {
			return s.replBreakers.Cooldown()
		}
	case errors.Is(err, shardedfleet.ErrBacklog):
		if d := s.Fleet().QueueSojourn(); d > 0 {
			return d
		}
	case errors.Is(err, errNotPrimary), errors.Is(err, errSlotFenced):
		if s.lease != nil {
			if d := s.lease.Remaining(s.now()); d > 0 {
				return d
			}
		}
	}
	return time.Second
}

// earnRetry credits the retry budget for one completed upstream attempt;
// spendRetry asks it for permission to issue an internally generated retry
// (proxy re-route after 421, migration re-ship). The budget caps retry
// amplification at its earn ratio fleet-wide: during an outage, past the
// initial burst, at most one retry per ten successful calls. With breakers
// disabled the budget is nil and retries are always allowed.
func (s *Server) earnRetry() {
	if s.retryBudget != nil {
		s.retryBudget.Earn()
	}
}

func (s *Server) spendRetry() bool {
	return s.retryBudget == nil || s.retryBudget.Spend()
}

// routerBreakers returns the router-side breaker group, nil when the node
// is unpartitioned or breakers are disabled.
func (s *Server) routerBreakers() *breaker.Group {
	if s.router == nil {
		return nil
	}
	return s.router.breakers
}

// writeErrAfter renders err, attaching retryAfter (whole seconds, rounded
// up, at least 1) as the Retry-After header on every 429/503 whose cause
// is transient: shed load, open circuit, full queue, write fence, quorum
// miss, or a node that is not the primary.
func writeErrAfter(w http.ResponseWriter, err error, retryAfter time.Duration) {
	// Routing verdicts carry their own status (307/421) plus the current
	// map, so the client can fix its routing table instead of retrying a
	// bare 404 forever.
	var re *routeError
	if errors.As(err, &re) {
		if re.location != "" {
			w.Header().Set("Location", re.location)
		}
		if re.owner != "" {
			w.Header().Set(HeaderShardGroup, re.owner)
		}
		writeJSON(w, re.status, map[string]any{
			"error":     re.reason,
			"owner":     re.owner,
			"shard_map": re.m,
		})
		return
	}
	retryHeader := func() {
		secs := int64((retryAfter + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, admission.ErrShedLoad):
		// Priority admission shed the request before it ran; retry after
		// the measured congestion drains (or never, for background work).
		retryHeader()
		status = http.StatusTooManyRequests
	case errors.Is(err, breaker.ErrOpen):
		// A peer's circuit is open; the path heals itself via the cooldown
		// probe, so the client should wait that long, not hammer.
		retryHeader()
		status = http.StatusServiceUnavailable
	case errors.Is(err, errSlotFenced):
		// Mid-migration write fence: retry lands on whoever owns the slot
		// when the cutover settles.
		retryHeader()
		status = http.StatusServiceUnavailable
	case errors.Is(err, shardedfleet.ErrUnknownDatabase):
		status = http.StatusNotFound
	case errors.Is(err, shardedfleet.ErrDuplicateDatabase):
		status = http.StatusConflict
	case errors.Is(err, shardedfleet.ErrBacklog):
		// Shard queue full: shed load, tell the client to back off.
		retryHeader()
		status = http.StatusTooManyRequests
	case errors.Is(err, errQuorumUnreached):
		// The record is journaled locally and will replicate; the client's
		// quorum contract was not met in time, so the write is unacked.
		retryHeader()
		status = http.StatusServiceUnavailable
	case errors.Is(err, errNotPrimary):
		retryHeader()
		status = http.StatusServiceUnavailable
	case errors.Is(err, shardedfleet.ErrClosed), errors.Is(err, errJournalUnavailable):
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, errorJSON{Error: err.Error()})
}

func pathID(r *http.Request) (int, error) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		return 0, fmt.Errorf("bad database id %q", r.PathValue("id"))
	}
	return id, nil
}

type decisionJSON struct {
	Event       string     `json:"event"`
	At          time.Time  `json:"at"` // server-assigned event time, as journaled
	Allocate    bool       `json:"allocate"`
	Reclaim     bool       `json:"reclaim"`
	WakeAt      *time.Time `json:"wake_at,omitempty"`
	FromPrewarm bool       `json:"from_prewarm"`
	State       string     `json:"state"`
}

func (s *Server) decisionJSON(id int, at time.Time, d prorp.Decision) decisionJSON {
	out := decisionJSON{
		Event:       d.Event.String(),
		At:          at.UTC(),
		Allocate:    d.Allocate,
		Reclaim:     d.Reclaim,
		FromPrewarm: d.FromPrewarm,
	}
	if !d.WakeAt.IsZero() {
		at := d.WakeAt
		out.WakeAt = &at
	}
	if st, err := s.Fleet().State(id); err == nil {
		out.State = st.String()
	}
	return out
}

type createRequest struct {
	ID        int        `json:"id"`
	CreatedAt *time.Time `json:"created_at,omitempty"`
}

// maxCreateBody caps POST /v1/db request bodies; a create is a few dozen
// bytes of JSON, anything bigger is abuse or a bug.
const maxCreateBody = 64 << 10

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	// The body is read before routing: the database id decides the owning
	// group, and a proxied request replays the same bytes.
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxCreateBody))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				errorJSON{Error: fmt.Sprintf("create body exceeds %d bytes", tooBig.Limit)})
			return
		}
		writeJSON(w, http.StatusBadRequest, errorJSON{Error: "bad create body: " + err.Error()})
		return
	}
	var req createRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorJSON{Error: "bad create body: " + err.Error()})
		return
	}
	if s.routeDB(w, r, req.ID, body, true) {
		return
	}
	if s.rejectNonPrimary(w) {
		return
	}
	createdAt := s.now()
	if req.CreatedAt != nil {
		createdAt = *req.CreatedAt
	}
	s.walGate.RLock()
	_, jspan := s.tracer.Start(r.Context(), "wal.append")
	end, err := s.journalize(wal.RecordCreate, req.ID, createdAt)
	jspan.End()
	if err == nil {
		_, aspan := s.tracer.Start(r.Context(), "fleet.create")
		err = s.Fleet().Create(req.ID, createdAt)
		aspan.End()
	}
	s.walGate.RUnlock()
	if err == nil {
		// Quorum wait happens OUTSIDE walGate: a slow replica must not
		// block snapshots or other writers, only this ack.
		err = s.waitQuorum(end)
	}
	if err != nil {
		s.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{
		"id":         req.ID,
		"state":      prorp.Resumed.String(),
		"created_at": createdAt.UTC(),
	})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorJSON{Error: err.Error()})
		return
	}
	if s.routeDB(w, r, id, nil, true) {
		return
	}
	if s.rejectNonPrimary(w) {
		return
	}
	s.walGate.RLock()
	_, jspan := s.tracer.Start(r.Context(), "wal.append")
	end, err := s.journalize(wal.RecordDelete, id, s.now())
	jspan.End()
	if err == nil {
		_, aspan := s.tracer.Start(r.Context(), "fleet.delete")
		err = s.Fleet().Delete(id)
		aspan.End()
	}
	s.walGate.RUnlock()
	if err == nil {
		err = s.waitQuorum(end)
	}
	if err != nil {
		s.writeErr(w, err)
		return
	}
	s.wakes.schedule(id, time.Time{}) // cancel any pending wake
	writeJSON(w, http.StatusOK, map[string]any{"id": id, "deleted": true})
}

func (s *Server) handleLogin(w http.ResponseWriter, r *http.Request) {
	s.handleEvent(w, r, wal.RecordLogin, s.Fleet().Login)
}

func (s *Server) handleLogout(w http.ResponseWriter, r *http.Request) {
	s.handleEvent(w, r, wal.RecordLogout, s.Fleet().Idle)
}

func (s *Server) handleEvent(w http.ResponseWriter, r *http.Request, typ wal.RecordType, apply func(int, time.Time) (prorp.Decision, error)) {
	id, err := pathID(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorJSON{Error: err.Error()})
		return
	}
	if s.routeDB(w, r, id, nil, true) {
		return
	}
	if s.rejectNonPrimary(w) {
		return
	}
	at := s.now()
	// Journal first, then apply, both under the shared side of walGate:
	// the event is durable before it can influence fleet state, and a
	// concurrent snapshot can never split the pair across its boundary.
	s.walGate.RLock()
	_, jspan := s.tracer.Start(r.Context(), "wal.append")
	end, err := s.journalize(typ, id, at)
	jspan.End()
	var d prorp.Decision
	if err == nil {
		_, aspan := s.tracer.Start(r.Context(), "fleet.apply")
		d, err = apply(id, at)
		aspan.End()
	}
	s.walGate.RUnlock()
	if err == nil {
		err = s.waitQuorum(end)
	}
	if err != nil {
		s.writeErr(w, err)
		return
	}
	// The returned WakeAt is the complete desired timer state; reconcile.
	s.wakes.schedule(id, d.WakeAt)
	writeJSON(w, http.StatusOK, s.decisionJSON(id, at, d))
}

type predictionJSON struct {
	Start time.Time `json:"start"`
	End   time.Time `json:"end"`
}

type windowJSON struct {
	Start       time.Time `json:"start"`
	Probability float64   `json:"probability"`
	Qualifies   bool      `json:"qualifies"`
	Selected    bool      `json:"selected"`
}

type dbJSON struct {
	ID                 int             `json:"id"`
	State              string          `json:"state"`
	ResourcesAvailable bool            `json:"resources_available"`
	Prediction         *predictionJSON `json:"prediction"`
	Windows            []windowJSON    `json:"windows,omitempty"`
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorJSON{Error: err.Error()})
		return
	}
	if s.routeDB(w, r, id, nil, false) {
		return
	}
	st, err := s.Fleet().State(id)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	_, pspan := s.tracer.Start(r.Context(), "fleet.explain_prediction")
	t0 := time.Now()
	windows, start, end, ok, err := s.Fleet().ExplainPrediction(id, s.now())
	s.predHist.ObserveSince(t0)
	pspan.End()
	if err != nil {
		s.writeErr(w, err)
		return
	}
	out := dbJSON{
		ID:                 id,
		State:              st.String(),
		ResourcesAvailable: st != prorp.PhysicallyPaused,
	}
	if ok {
		out.Prediction = &predictionJSON{Start: start, End: end}
	}
	if r.URL.Query().Get("windows") != "" {
		out.Windows = make([]windowJSON, len(windows))
		for i, win := range windows {
			out.Windows[i] = windowJSON{
				Start:       win.Start,
				Probability: win.Probability,
				Qualifies:   win.Qualifies,
				Selected:    win.Selected,
			}
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// admissionClassJSON is one priority class's admission accounting in
// /v1/kpi — the same counters /metrics exposes, surfaced here so a load
// generator can correlate its client-observed 429s with the server's shed
// accounting from the one scrape it already takes.
type admissionClassJSON struct {
	Admitted uint64 `json:"admitted"`
	Shed     uint64 `json:"shed"`
	Inflight int    `json:"inflight"`
}

type kpiJSON struct {
	prorp.FleetKPI
	QoSPercent    float64   `json:"qos_percent"`
	Shards        int       `json:"shards"`
	PendingWakes  int       `json:"pending_wakes"`
	Now           time.Time `json:"now"`
	UptimeSeconds int64     `json:"uptime_seconds"`
	// Admission is the priority gate's per-class accounting (absent when
	// admission is disabled). In a scatter-merged report the counters are
	// fleet-wide sums.
	Admission map[string]admissionClassJSON `json:"admission,omitempty"`
	// Breakers maps inter-node path -> host -> breaker state (closed,
	// open, half-open) for every breaker group with traffic. A scatter
	// merge prefixes peer paths with their group name ("g2/router").
	Breakers map[string]map[string]string `json:"breakers,omitempty"`
}

func (s *Server) handleKPI(w http.ResponseWriter, r *http.Request) {
	now := s.now()
	// In a multi-group deployment /v1/kpi is fleet-wide: this group's
	// report merged with every peer's (?scope=local opts out — and is what
	// the fan-out itself asks peers for).
	if s.router.multiGroup() && r.URL.Query().Get("scope") != "local" {
		writeJSON(w, http.StatusOK, s.scatterKPI(now))
		return
	}
	writeJSON(w, http.StatusOK, s.localKPI(now))
}

// Degraded reports whether the server is in degraded mode: still serving
// traffic, but unable to persist snapshots.
func (s *Server) Degraded() bool { return s.degraded.Load() }

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	lagRecords, lagSeconds := s.ReplicationLag()
	body := map[string]any{
		"status":                  "ok",
		"databases":               s.Fleet().Size(),
		"paused":                  s.Fleet().PausedCount(),
		"shards":                  s.Fleet().Shards(),
		"role":                    s.node.Role().String(),
		"replication_lag_records": lagRecords,
		"replication_lag_seconds": lagSeconds,
	}
	if rt := s.router; rt != nil {
		body["group"] = rt.group
		body["shardmap_version"] = rt.mapP.Load().Version()
		body["owned_slots"] = rt.ownedSlotCount()
	}
	follower := s.followerRef()
	if follower != nil {
		if e := follower.LastError(); e != "" {
			body["replication_last_error"] = e
		}
		body["primary_addr"] = follower.PrimaryURL()
	}
	if s.lease != nil {
		body["lease_remaining_seconds"] = s.lease.Remaining(s.now()).Seconds()
	}
	// Pressure state: /healthz is exempt from admission, so this is the
	// surface an operator (or load balancer) reads while everything else
	// sheds. "shedding" flips when the sojourn floor has descended into
	// the sheddable classes; open breakers are listed per peer host.
	if s.admission != nil {
		pressure := s.admission.Pressure()
		body["inflight"] = pressure.Inflight
		body["oldest_sojourn_seconds"] = pressure.OldestSojourn.Seconds()
		body["shedding"] = pressure.Shedding()
	}
	if q := s.Fleet().QueueSojourn(); q > 0 {
		body["queue_sojourn_seconds"] = q.Seconds()
	}
	openBreakers := map[string]string{}
	for _, g := range []*breaker.Group{s.replBreakers, s.routerBreakers()} {
		if g == nil {
			continue
		}
		for host, st := range g.States() {
			if st != "closed" {
				openBreakers[host] = st
			}
		}
	}
	if len(openBreakers) > 0 {
		body["breakers"] = openBreakers
	}
	status := http.StatusOK
	if s.node.Fenced() {
		body["fenced"] = true
		if follower != nil {
			// A fenced ex-primary that re-attached to the new primary is a
			// healthy replica in every way that matters to a load balancer;
			// only its persisted history says "primary".
			body["effective_role"] = repl.RoleReplica.String()
		} else {
			// Fenced and following nobody: a zombie that can neither accept
			// writes nor converge. Unhealthy until failover re-attaches it.
			body["status"] = "fenced"
			status = http.StatusServiceUnavailable
		}
	}
	if s.degraded.Load() {
		// Degraded: traffic is served but durability is gone — report
		// unhealthy so supervisors and load balancers can react.
		s.snapMu.Lock()
		lastErr, failures := s.lastSnapError, s.snapFailures
		s.snapMu.Unlock()
		body["status"] = "degraded"
		body["snapshot_failures"] = failures
		body["last_snapshot_error"] = lastErr
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, body)
}

func (s *Server) handleOpsResume(w http.ResponseWriter, r *http.Request) {
	if s.rejectNonPrimary(w) {
		return
	}
	if s.router.multiGroup() {
		wakes, ids, partial, groups := s.globalTick(s.now())
		if ids == nil {
			ids = []int{}
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"prewarmed":       ids,
			"wakes_delivered": wakes,
			"scope":           "global",
			"partial":         partial,
			"groups":          groups,
		})
		return
	}
	wakes, prewarmed := s.tick(s.now())
	ids := make([]int, len(prewarmed))
	for i, pw := range prewarmed {
		ids[i] = pw.ID
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"prewarmed":       ids,
		"wakes_delivered": wakes,
	})
}

func (s *Server) handleOpsSnapshot(w http.ResponseWriter, r *http.Request) {
	n, err := s.writeSnapshot()
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorJSON{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"path":  s.cfg.SnapshotPath,
		"bytes": n,
	})
}
