package server

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"prorp/internal/faults"
	"prorp/internal/repl"
	"prorp/internal/wal"
)

// TestChaosLeaseElection is the self-healing failover acceptance gate: 50
// seeded iterations of a three-node cluster (A primary, B and C replicas)
// under a hostile transport — partitions, response bodies cut mid-flight,
// bit flips — in which the primary is killed and NO human promotes
// anything. The cluster must notice on its own (lease lapse), elect on its
// own (randomized timeouts, highest-cursor candidate wins), converge on
// its own, and re-capture the rebooted ex-primary on its own. Invariants,
// every iteration:
//
//   - Zero acked-write loss with -quorum-acks=1: every write the dead
//     primary acknowledged waited for a replica's journal to cover it, and
//     the elected winner provably holds every granting voter's records —
//     so each acked event must exist, at its server-assigned time, on the
//     new primary.
//   - Exactly one unfenced primary at quiesce, with the loser following it
//     and byte-identical to it.
//   - The rebooted ex-primary fences itself off the winner's announces,
//     auto-demotes into a follower (snapshot resync — its journal is a
//     different lineage), converges byte-identically, and its /healthz
//     flips from 503 ("fenced" zombie) to 200 with effective_role=replica.
//
// Runs under -race in CI (make lease-chaos). On failure, each node's
// on-disk debris (WAL segments, repl-state, snapshots) is copied to
// $PRORP_CHAOS_DEBRIS/<test-name> for the workflow to upload.
func TestChaosLeaseElection(t *testing.T) {
	const iterations = 50
	for seed := int64(0); seed < iterations; seed++ {
		t.Run(fmt.Sprintf("seed%02d", seed), func(t *testing.T) {
			t.Parallel()
			chaosLeaseElection(t, seed)
		})
	}
}

// saveDebris copies each node's durable state into $PRORP_CHAOS_DEBRIS
// when the test failed, so CI can attach the exact WAL segments,
// repl-state files, and snapshots behind a failing seed to the run.
func saveDebris(t *testing.T, dirs map[string]string) {
	t.Cleanup(func() {
		root := os.Getenv("PRORP_CHAOS_DEBRIS")
		if root == "" || !t.Failed() {
			return
		}
		for node, dir := range dirs {
			dst := filepath.Join(root, strings.ReplaceAll(t.Name(), "/", "_"), node)
			if err := copyTree(dir, dst); err != nil {
				t.Logf("saving debris for %s: %v", node, err)
			}
		}
		t.Logf("chaos debris saved under %s", root)
	})
}

func copyTree(src, dst string) error {
	return filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		in, err := os.Open(path)
		if err != nil {
			return err
		}
		defer in.Close()
		if err := os.MkdirAll(filepath.Dir(target), 0o755); err != nil {
			return err
		}
		out, err := os.Create(target)
		if err != nil {
			return err
		}
		_, cerr := io.Copy(out, in)
		if err := out.Close(); cerr == nil {
			cerr = err
		}
		return cerr
	})
}

// leaseConfig layers the self-healing failover knobs on a replConfig:
// manual-clock lease/election timing (the stepClock drives lapses), a
// quorum of one replica ack per write, and a per-node election seed so a
// failing iteration replays identically.
func leaseConfig(dir string, clock *stepClock, self string, peers map[string]string, seed int64) Config {
	cfg := replConfig(dir, clock)
	cfg.WALSegmentBytes = 1024 // tiny segments: rotations mid-stream
	cfg.LeaseTTL = 10 * time.Second
	cfg.ElectionTimeout = 5 * time.Second
	cfg.ElectionSeed = seed
	cfg.QuorumAcks = 1
	cfg.QuorumTimeout = 30 * time.Second // wall-clock: polls land every ~1ms here
	cfg.SelfAddr = "http://" + self
	cfg.NodeID = self
	cfg.ReplPeers = peers
	return cfg
}

func chaosLeaseElection(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	inj := faults.NewInjector(seed)
	clock := &stepClock{t: t0}
	net := &mapDoer{}
	faultNet := faults.NewFaultDoer(net, inj, funcClock{now: clock.Now, sleep: noSleep})

	dirs := map[string]string{"a": t.TempDir(), "b": t.TempDir(), "c": t.TempDir()}
	saveDebris(t, dirs)

	peersOf := func(self string) map[string]string {
		m := make(map[string]string)
		for _, n := range []string{"a", "b", "c"} {
			if n != self {
				m[n] = "http://" + n
			}
		}
		return m
	}

	acfg := leaseConfig(dirs["a"], clock, "a", peersOf("a"), seed*3+1)
	acfg.Logf = func(f string, v ...any) { t.Logf("[a] "+f, v...) }
	acfg.ReplDoer = faultNet
	a, err := New(acfg)
	if err != nil {
		t.Fatalf("boot primary: %v", err)
	}
	net.bind("a", a)

	// Replication and election traffic is hostile from the first poll.
	inj.FailProb("http.request", 0.2*rng.Float64(), fmt.Errorf("chaos: partitioned"))
	inj.PartialWrites("http.body", 0.25*rng.Float64())
	inj.CorruptWrites("http.body", 0.25*rng.Float64())

	replicas := make(map[string]*Server)
	for i, name := range []string{"b", "c"} {
		cfg := leaseConfig(dirs[name], clock, name, peersOf(name), seed*3+2+int64(i))
		nm := name
		cfg.Logf = func(f string, v ...any) { t.Logf("["+nm+"] "+f, v...) }
		cfg.Role = repl.RoleReplica
		cfg.PrimaryAddr = "http://a"
		cfg.ReplDoer = faultNet
		cfg.ReplPollInterval = time.Millisecond
		cfg.ReplMaxBatchBytes = int(wal.FrameSize) * (1 + rng.Intn(8))
		s, err := New(cfg)
		if err != nil {
			t.Fatalf("boot replica %s: %v", name, err)
		}
		replicas[name] = s
		net.bind(name, s)
		defer s.Close()
	}
	b, c := replicas["b"], replicas["c"]

	// Phase 1 — quorum-acked traffic into the primary. Every 2xx waited
	// for a replica's journal to cover the record, so every acked write
	// below is covered by the zero-loss invariant across the failover.
	dbs := 2 + rng.Intn(3)
	for id := 1; id <= dbs; id++ {
		clock.Step()
		code, out := call(t, a, "POST", "/v1/db", fmt.Sprintf(`{"id":%d}`, id))
		wantStatus(t, code, http.StatusCreated, out)
	}
	var acked []ackedWrite
	nextLogin := make([]bool, dbs+1)
	event := func(s *Server) {
		id := 1 + rng.Intn(dbs)
		clock.Step()
		verb := "logout"
		if nextLogin[id] {
			verb = "login"
		}
		code, out := call(t, s, "POST", fmt.Sprintf("/v1/db/%d/%s", id, verb), "")
		wantStatus(t, code, http.StatusOK, out)
		at, err := time.Parse(time.RFC3339, out["at"].(string))
		if err != nil {
			t.Fatalf("bad event time %v: %v", out["at"], err)
		}
		acked = append(acked, ackedWrite{id: id, unix: at.Unix(), login: nextLogin[id]})
		nextLogin[id] = !nextLogin[id]
	}
	for i := 10 + rng.Intn(20); i > 0; i-- {
		event(a)
	}

	// Sometimes compact the primary mid-run: a replica's cursor falls
	// below retained history and it must snapshot-resync under fire.
	if rng.Intn(2) == 0 {
		fire(a, "POST", "/v1/ops/snapshot", "")
		for i := 0; i < 3; i++ {
			event(a)
		}
	}

	// Both replicas converge before the kill; with -quorum-acks=1 the
	// invariant only needs ONE of them per record, but a quiesced cluster
	// makes the byte-equality oracle exact.
	waitUntil(t, "replicas to converge before the kill", func() bool {
		aa := archive(t, a)
		return bytes.Equal(aa, archive(t, b)) && bytes.Equal(aa, archive(t, c))
	})

	// Kill the primary — no drain, no final snapshot — and take its
	// address off the network. NOBODY calls /v1/repl/promote from here:
	// detection and recovery are the cluster's problem.
	net.bind("a", nil)
	a.Kill()

	// Step the logical clock until the leases lapse, the randomized
	// election timeouts fire, and a candidate collects a majority.
	waitUntil(t, "a replica to elect itself", func() bool {
		clock.Step()
		return b.Node().CanAcceptWrites() || c.Node().CanAcceptWrites()
	})
	winner, loser := b, c
	if c.Node().CanAcceptWrites() {
		winner, loser = c, b
	}
	if winner.Node().Epoch() < 2 {
		t.Fatalf("winner epoch = %d, want >= 2 (election must fence epoch 1)", winner.Node().Epoch())
	}

	// Zero acked-write loss: the winner needed a majority, so it holds at
	// least every record any granting voter's journal covered — which,
	// with quorum acks, is every acked record.
	for id := 1; id <= dbs; id++ {
		if _, err := winner.Fleet().State(id); err != nil {
			t.Fatalf("database %d lost across the election: %v", id, err)
		}
	}
	assertAcked(t, winner, acked)

	// The loser hears the winner's announces, repoints its follower
	// (forcing a snapshot resync — the winner's journal is a different
	// lineage), and converges byte-identically.
	waitUntil(t, "the loser to follow the winner and converge", func() bool {
		clock.Step()
		return !loser.Node().CanAcceptWrites() &&
			bytes.Equal(archive(t, winner), archive(t, loser))
	})

	// The new primary acknowledges quorum-acked writes of its own — the
	// loser's polls are the quorum now.
	clock.Step()
	code, out := call(t, winner, "POST", "/v1/db", fmt.Sprintf(`{"id":%d}`, 100+dbs))
	wantStatus(t, code, http.StatusCreated, out)
	for i := 0; i < 5; i++ {
		event(winner)
	}

	// Reboot the dead ex-primary from its own disks, UNCHANGED config:
	// role primary, epoch 1, unfenced. The winner's announces must fence
	// it and auto-demote it into a follower — no operator, no /v1/repl
	// calls. Until it re-attaches, /healthz reports the zombie unhealthy.
	a2, err := New(acfg)
	if err != nil {
		t.Fatalf("reboot ex-primary: %v", err)
	}
	defer a2.Close()
	net.bind("a", a2)

	waitUntil(t, "the rebooted ex-primary to fence, re-attach, and converge", func() bool {
		clock.Step()
		return a2.Node().Fenced() && a2.followerRef() != nil &&
			bytes.Equal(archive(t, winner), archive(t, a2))
	})
	assertAcked(t, a2, acked)

	// Its /healthz now reports replica-equivalent readiness: fenced, but
	// following the new primary — not the 503 zombie answer.
	code, out = call(t, a2, "GET", "/healthz", "")
	wantStatus(t, code, http.StatusOK, out)
	if out["fenced"] != true || out["effective_role"] != "replica" {
		t.Fatalf("re-attached ex-primary healthz = %v", out)
	}

	// Writes on it still bounce: fenced is forever within an epoch.
	rec := httptest.NewRecorder()
	a2.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/db", strings.NewReader(`{"id":999}`)))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("write on fenced ex-primary = %d, want 503", rec.Code)
	}

	// Quiesce invariant: exactly one unfenced primary in the cluster.
	primaries := 0
	for _, s := range []*Server{winner, loser, a2} {
		if s.Node().CanAcceptWrites() {
			primaries++
		}
	}
	if primaries != 1 {
		t.Fatalf("unfenced primaries at quiesce = %d, want exactly 1", primaries)
	}
}
