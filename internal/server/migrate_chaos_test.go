package server

import (
	"bytes"
	"fmt"
	"math/rand"
	"net/http"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"prorp/internal/faults"
	"prorp/internal/shardmap"
	"prorp/internal/wal"
)

// migrateChaosDoer sits between the shard router and the in-process
// network and injects one crash at a chosen point of the migration
// protocol, keyed on the /v1/shard/adopt transfer:
//
//	mode 1: kill the source before the transfer is delivered
//	mode 2: kill the destination before the transfer is delivered
//	mode 3: deliver the transfer, then drop the ack (and every retry) —
//	        the lost-ack corner the map probe has to recover
//	mode 4: deliver the transfer, then kill the source before cutover
//
// Everything else flows through the flaky FaultDoer transport. Modes 3
// and 4 deliver through the raw network so the destination's durable
// adopt is guaranteed, not subject to a random partition.
type migrateChaosDoer struct {
	flaky  faults.Doer
	direct faults.Doer

	mu         sync.Mutex
	mode       int
	trigger    int // fire on the Nth adopt request seen
	armed      bool
	dropAdopts bool
	adoptSeen  int
	killSource func()
	killDest   func()
}

func (d *migrateChaosDoer) disarm() {
	d.mu.Lock()
	d.armed, d.dropAdopts = false, false
	d.mu.Unlock()
}

func (d *migrateChaosDoer) Do(req *http.Request) (*http.Response, error) {
	if req.URL.Path == "/v1/shard/adopt" {
		d.mu.Lock()
		if d.dropAdopts {
			d.mu.Unlock()
			return nil, fmt.Errorf("chaos: ack dropped")
		}
		if d.armed {
			d.adoptSeen++
			if d.adoptSeen >= d.trigger {
				mode := d.mode
				d.armed = false
				switch mode {
				case 1:
					d.mu.Unlock()
					d.killSource()
					return nil, fmt.Errorf("chaos: source crashed before ship")
				case 2:
					d.mu.Unlock()
					d.killDest()
					return nil, fmt.Errorf("chaos: destination crashed before ship")
				case 3:
					d.dropAdopts = true
					d.mu.Unlock()
					d.direct.Do(req)                             // durable adopt lands...
					return nil, fmt.Errorf("chaos: ack dropped") // ...its ack does not
				case 4:
					d.mu.Unlock()
					resp, err := d.direct.Do(req)
					d.killSource()
					return resp, err
				}
			}
		}
		d.mu.Unlock()
	}
	return d.flaky.Do(req)
}

// migrateChaosConfig builds one group's fully durable Config: snapshots,
// journal, persisted shard map, tight retry budget, stepped fake clock.
func migrateChaosConfig(t *testing.T, dir, g string, peers map[string]string, clock *stepClock, doer faults.Doer, inj *faults.Injector) Config {
	return Config{
		Options:         testOptions(),
		Shards:          4,
		SnapshotPath:    filepath.Join(dir, "fleet.snap"),
		SnapshotEvery:   time.Hour,
		WALDir:          filepath.Join(dir, "wal"),
		WALFsync:        wal.FsyncAlways,
		WALSegmentBytes: 2048,
		Group:           g,
		GroupPeers:      peers,
		ShardmapPath:    filepath.Join(dir, "shard.map"),
		RouterDoer:      doer,
		// This harness heals the transport instantly and expects the very
		// next call to succeed; a breaker's cooldown memory would refuse it.
		// Breaker recovery under faults is TestChaosOverload's job.
		BreakerThreshold: -1,
		Now:              clock.Now,
		Sleep:            noSleep,
		Backoff: faults.Backoff{Attempts: 4, Base: time.Millisecond,
			Max: 4 * time.Millisecond, Factor: 2, Rand: inj.Rand()},
		Logf: t.Logf,
	}
}

// TestChaosShardMigration is the partitioning acceptance gate: 50 seeded
// iterations of a two-group control plane whose migration transport
// misbehaves (partitions, corrupted and truncated response bodies) and
// whose source or destination primary is killed at a random point of the
// cutover protocol. Invariants, every iteration:
//
//   - Zero acked-write loss: every event acknowledged before the
//     migration exists afterwards, on whichever group finally owns it.
//   - Single ownership: after reboot + reconcile (+ a clean retry when
//     the move never committed), both groups agree on one map, and every
//     database exists on exactly its owner — never on both, never on
//     neither.
//   - Byte-identical archives: a migrated database's PRS2 archive on the
//     final owner equals the pre-migration archive on the source.
//
// Runs under -race in CI (make shard-chaos).
func TestChaosShardMigration(t *testing.T) {
	const iterations = 50
	for seed := int64(0); seed < iterations; seed++ {
		t.Run(fmt.Sprintf("seed%02d", seed), func(t *testing.T) {
			t.Parallel()
			chaosShardMigration(t, seed)
		})
	}
}

func chaosShardMigration(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	inj := faults.NewInjector(seed)
	clock := &stepClock{t: t0}
	net := &mapDoer{}
	flaky := faults.NewFaultDoer(net, inj, funcClock{now: clock.Now, sleep: noSleep})
	kd := &migrateChaosDoer{
		flaky:   flaky,
		direct:  net,
		mode:    int(seed % 5), // 0 = no kill, just the flaky transport
		trigger: 1 + rng.Intn(2),
		armed:   seed%5 != 0,
	}

	dirs := map[string]string{"g1": t.TempDir(), "g2": t.TempDir()}
	peersOf := map[string]map[string]string{
		"g1": {"g2": "http://g2"},
		"g2": {"g1": "http://g1"},
	}
	cur := map[string]*Server{}
	boot := func(g string) *Server {
		srv, err := New(migrateChaosConfig(t, dirs[g], g, peersOf[g], clock, kd, inj))
		if err != nil {
			t.Fatalf("boot %s: %v", g, err)
		}
		t.Cleanup(func() { srv.Close() })
		net.bind(g, srv)
		cur[g] = srv
		return srv
	}
	g1, g2 := boot("g1"), boot("g2")
	kd.killSource = func() { net.bind("g1", nil); g1.Kill() }
	kd.killDest = func() { net.bind("g2", nil); g2.Kill() }
	m := g1.router.mapP.Load()

	// Population: a g1-owned slot with a couple of databases (the migrating
	// set), plus bystanders on both groups. All traffic is owner-direct.
	var movingIDs []int
	slot := -1
	for id := 1; len(movingIDs) < 2+rng.Intn(2); id++ {
		if slot < 0 && m.OwnerOf(id) == "g1" {
			slot = shardmap.SlotOf(id)
		}
		if slot >= 0 && shardmap.SlotOf(id) == slot {
			movingIDs = append(movingIDs, id)
		}
	}
	var ids []int
	ids = append(ids, movingIDs...)
	for _, g := range []string{"g1", "g2"} {
		for _, id := range idsOwnedBy(t, m, g, 1+rng.Intn(2), movingIDs[len(movingIDs)-1]+1) {
			if shardmap.SlotOf(id) != slot {
				ids = append(ids, id)
			}
		}
	}
	ownerSrv := func(id int) *Server {
		return cur[cur["g1"].router.mapP.Load().OwnerOf(id)]
	}
	for _, id := range ids {
		clock.Step()
		code, out := call(t, ownerSrv(id), "POST", "/v1/db", fmt.Sprintf(`{"id":%d}`, id))
		wantStatus(t, code, http.StatusCreated, out)
	}

	// Acked traffic, frozen before the migration so the pre-move archives
	// are the byte-equality oracle.
	var acked []ackedWrite
	nextLogin := map[int]bool{}
	for i := 8 + rng.Intn(20); i > 0; i-- {
		id := ids[rng.Intn(len(ids))]
		clock.Step()
		verb := "logout"
		if nextLogin[id] {
			verb = "login"
		}
		code, out := call(t, ownerSrv(id), "POST", fmt.Sprintf("/v1/db/%d/%s", id, verb), "")
		wantStatus(t, code, http.StatusOK, out)
		at, err := time.Parse(time.RFC3339, out["at"].(string))
		if err != nil {
			t.Fatalf("bad event time %v: %v", out["at"], err)
		}
		acked = append(acked, ackedWrite{id: id, unix: at.Unix(), login: nextLogin[id]})
		nextLogin[id] = !nextLogin[id]
	}
	want := map[int][]byte{}
	for _, id := range movingIDs {
		var buf bytes.Buffer
		if err := g1.Fleet().Snapshot(id, &buf); err != nil {
			t.Fatal(err)
		}
		want[id] = buf.Bytes()
	}

	// The flaky transport comes up underneath the migration.
	inj.FailProb("http.request", 0.2*rng.Float64(), fmt.Errorf("chaos: partitioned"))
	inj.PartialWrites("http.body", 0.25*rng.Float64())
	inj.CorruptWrites("http.body", 0.25*rng.Float64())

	// The migration, with the crash armed. Any verdict is legal here — the
	// invariants are checked after recovery, not after the attempt.
	clock.Step()
	code, out := call(t, g1, "POST", "/v1/shard/migrate", fmt.Sprintf(`{"slot":%d,"to":"g2"}`, slot))
	switch code {
	case http.StatusOK, http.StatusBadGateway, http.StatusServiceUnavailable:
	default:
		t.Fatalf("migrate under chaos = %d (%v)", code, out)
	}

	// Recovery: heal the transport, reboot whatever was killed from its own
	// disks, and reconcile both groups' maps.
	inj.HealAll()
	kd.disarm()
	for _, g := range []string{"g1", "g2"} {
		if cur[g].stopped() {
			boot(g)
		}
	}
	reconcile := func() {
		for _, g := range []string{"g1", "g2"} {
			code, out := call(t, cur[g], "POST", "/v1/shard/reconcile", "")
			wantStatus(t, code, http.StatusOK, out)
		}
	}
	reconcile()

	// If the move never committed anywhere, the slot is still the source's:
	// rerun it over the healed transport, where it must succeed.
	if cur["g1"].router.mapP.Load().Owner(slot) == "g1" {
		clock.Step()
		code, out = call(t, cur["g1"], "POST", "/v1/shard/migrate", fmt.Sprintf(`{"slot":%d,"to":"g2"}`, slot))
		wantStatus(t, code, http.StatusOK, out)
		reconcile()
	}

	// Invariant: one map, agreed by both groups, with the slot moved.
	m1 := cur["g1"].router.mapP.Load()
	m2 := cur["g2"].router.mapP.Load()
	if !m1.Equal(m2) {
		t.Fatalf("maps diverge after recovery: g1 v%d, g2 v%d", m1.Version(), m2.Version())
	}
	if m1.Owner(slot) != "g2" {
		t.Fatalf("slot %d owned by %q after recovery, want g2", slot, m1.Owner(slot))
	}

	// Invariant: every database lives on exactly its owner, with every
	// acked write present there.
	for _, id := range ids {
		owner := m1.OwnerOf(id)
		for g, srv := range cur {
			_, err := srv.Fleet().State(id)
			if g == owner && err != nil {
				t.Fatalf("database %d missing on its owner %s: %v", id, g, err)
			}
			if g != owner && err == nil {
				t.Fatalf("database %d also present on non-owner %s", id, g)
			}
		}
		var owned []ackedWrite
		for _, ev := range acked {
			if ev.id == id {
				owned = append(owned, ev)
			}
		}
		assertAcked(t, cur[owner], owned)
	}

	// Invariant: migrated archives are byte-identical to the pre-move
	// source archives.
	for _, id := range movingIDs {
		var buf bytes.Buffer
		if err := cur["g2"].Fleet().Snapshot(id, &buf); err != nil {
			t.Fatalf("archiving migrated database %d: %v", id, err)
		}
		if !bytes.Equal(buf.Bytes(), want[id]) {
			t.Fatalf("database %d archive changed across migration", id)
		}
	}

	// Liveness: the new owner acknowledges writes on the moved databases.
	for _, id := range movingIDs {
		clock.Step()
		verb := "logout"
		if nextLogin[id] {
			verb = "login"
		}
		code, out := call(t, cur["g2"], "POST", fmt.Sprintf("/v1/db/%d/%s", id, verb), "")
		wantStatus(t, code, http.StatusOK, out)
		nextLogin[id] = !nextLogin[id]
	}
}
