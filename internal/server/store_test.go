package server

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"testing"
	"time"

	"prorp/internal/faults"
)

// blob is a trivial io.WriterTo payload for store-level tests.
type blob []byte

func (b blob) WriteTo(w io.Writer) (int64, error) {
	n, err := w.Write(b)
	return int64(n), err
}

type sleepCounter struct {
	n     int
	total time.Duration
}

func (c *sleepCounter) Now() time.Time        { return time.Time{} }
func (c *sleepCounter) Sleep(d time.Duration) { c.n++; c.total += d }

func testStore(t *testing.T, fsys faults.FS, clock faults.Clock) *snapshotStore {
	t.Helper()
	if clock == nil {
		clock = &sleepCounter{}
	}
	return &snapshotStore{
		path:    filepath.Join(t.TempDir(), "fleet.snap"),
		fs:      fsys,
		clock:   clock,
		backoff: faults.Backoff{Attempts: 4, Base: time.Millisecond, Max: 8 * time.Millisecond, Factor: 2},
		logf:    t.Logf,
	}
}

func loadPayload(t *testing.T, st *snapshotStore) (payload []byte, fellBack bool) {
	t.Helper()
	payload, fellBack, _ = loadPayloadSeq(t, st)
	return payload, fellBack
}

func loadPayloadSeq(t *testing.T, st *snapshotStore) (payload []byte, fellBack bool, walSeq uint64) {
	t.Helper()
	fellBack, walSeq, err := st.Load(func(r io.Reader) error {
		var err error
		payload, err = io.ReadAll(r)
		return err
	})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return payload, fellBack, walSeq
}

func TestStoreRoundTripAndRotation(t *testing.T) {
	st := testStore(t, faults.OS, nil)

	if _, _, err := st.Save(blob("v1"), 0); err != nil {
		t.Fatal(err)
	}
	got, fellBack := loadPayload(t, st)
	if string(got) != "v1" || fellBack {
		t.Fatalf("load = %q, fellBack=%v", got, fellBack)
	}

	// Second save rotates v1 to .bak.
	if _, _, err := st.Save(blob("v2"), 0); err != nil {
		t.Fatal(err)
	}
	got, _ = loadPayload(t, st)
	if string(got) != "v2" {
		t.Fatalf("load = %q, want v2", got)
	}
	if _, err := os.Stat(st.bakPath()); err != nil {
		t.Fatalf("no .bak after second save: %v", err)
	}

	// No temp files leak.
	matches, _ := filepath.Glob(filepath.Join(filepath.Dir(st.path), "*.tmp-*"))
	if len(matches) != 0 {
		t.Fatalf("temp files leaked: %v", matches)
	}
}

func TestStoreLoadMissing(t *testing.T) {
	st := testStore(t, faults.OS, nil)
	_, _, err := st.Load(func(io.Reader) error { return nil })
	if !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("Load of missing snapshot = %v, want ErrNotExist", err)
	}
}

func TestStoreFallbackOnCorruptPrimary(t *testing.T) {
	st := testStore(t, faults.OS, nil)
	if _, _, err := st.Save(blob("good"), 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Save(blob("newer"), 0); err != nil {
		t.Fatal(err)
	}

	// Flip one bit in the primary's payload region: checksum must catch it
	// and the load must fall back to the .bak (the previous good write).
	data, err := os.ReadFile(st.path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x01
	if err := os.WriteFile(st.path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	got, fellBack := loadPayload(t, st)
	if string(got) != "good" || !fellBack {
		t.Fatalf("load = %q, fellBack=%v; want fallback to %q", got, fellBack, "good")
	}
}

func TestStoreFallbackOnMissingPrimary(t *testing.T) {
	// A crash between the two renames leaves only the .bak.
	st := testStore(t, faults.OS, nil)
	if _, _, err := st.Save(blob("only"), 0); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(st.path, st.bakPath()); err != nil {
		t.Fatal(err)
	}
	got, fellBack := loadPayload(t, st)
	if string(got) != "only" || !fellBack {
		t.Fatalf("load = %q, fellBack=%v", got, fellBack)
	}
}

func TestStoreBothCandidatesCorrupt(t *testing.T) {
	st := testStore(t, faults.OS, nil)
	if err := os.WriteFile(st.path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(st.bakPath(), []byte("also garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := st.Load(func(io.Reader) error { return nil })
	if err == nil || errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("Load over two corrupt candidates = %v, want hard error", err)
	}
	if !errors.Is(err, errSnapshotCorrupt) {
		t.Fatalf("error %v does not wrap errSnapshotCorrupt", err)
	}
}

func TestStoreLegacyBareArchive(t *testing.T) {
	// Pre-container builds wrote the bare PRF1 archive; it must still load.
	st := testStore(t, faults.OS, nil)
	legacy := append([]byte{0x31, 0x46, 0x52, 0x50}, []byte("rest-of-archive")...) // "PRF1" LE
	if err := os.WriteFile(st.path, legacy, 0o644); err != nil {
		t.Fatal(err)
	}
	got, fellBack := loadPayload(t, st)
	if !bytes.Equal(got, legacy) || fellBack {
		t.Fatalf("legacy load = %q, fellBack=%v", got, fellBack)
	}
}

func TestStoreRetriesTransientWriteErrors(t *testing.T) {
	inj := faults.NewInjector(1)
	clock := &sleepCounter{}
	st := testStore(t, faults.NewFaultFS(faults.OS, inj, clock), clock)

	// Trip the first two createtemp calls: attempt 3 succeeds.
	inj.TripN("fs.createtemp", 2, nil)
	_, retries, err := st.Save(blob("persisted"), 0)
	if err != nil {
		t.Fatalf("Save under transient faults: %v", err)
	}
	if retries != 2 {
		t.Fatalf("retries = %d, want 2", retries)
	}
	if clock.n == 0 {
		t.Fatal("no backoff sleeps recorded")
	}
	got, _ := loadPayload(t, st)
	if string(got) != "persisted" {
		t.Fatalf("load = %q", got)
	}
}

func TestStoreGivesUpAfterBudget(t *testing.T) {
	inj := faults.NewInjector(2)
	st := testStore(t, faults.NewFaultFS(faults.OS, inj, &sleepCounter{}), nil)
	inj.TripN("fs.sync", 100, nil)
	_, _, err := st.Save(blob("never"), 0)
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("Save = %v, want injected error after budget", err)
	}
	// The failed write must not have clobbered anything.
	if _, err := os.Stat(st.path); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("failed save left a primary snapshot: %v", err)
	}
}

func TestStoreCorruptionOnWriteCaughtOnLoad(t *testing.T) {
	inj := faults.NewInjector(3)
	clock := &sleepCounter{}
	ffs := faults.NewFaultFS(faults.OS, inj, clock)
	st := testStore(t, ffs, clock)

	if _, _, err := st.Save(blob("good v1"), 0); err != nil {
		t.Fatal(err)
	}
	inj.CorruptWrites("fs.write", 1)
	if _, _, err := st.Save(blob("rotten v2"), 0); err != nil {
		t.Fatal(err) // bit rot is silent at write time
	}
	inj.Heal("fs.write")

	got, fellBack := loadPayload(t, st)
	if string(got) != "good v1" || !fellBack {
		t.Fatalf("load after bit rot = %q, fellBack=%v; want fallback", got, fellBack)
	}
}

func TestStoreWALBoundaryRoundTrip(t *testing.T) {
	st := testStore(t, faults.OS, nil)
	if _, _, err := st.Save(blob("with boundary"), 42); err != nil {
		t.Fatal(err)
	}
	got, fellBack, seq := loadPayloadSeq(t, st)
	if string(got) != "with boundary" || fellBack || seq != 42 {
		t.Fatalf("load = %q, fellBack=%v, walSeq=%d; want walSeq 42", got, fellBack, seq)
	}
}

func TestStoreFallbackCarriesOlderBoundary(t *testing.T) {
	// A corrupt primary falls back to the .bak, whose older boundary makes
	// replay start earlier — more WAL replayed, never less.
	st := testStore(t, faults.OS, nil)
	if _, _, err := st.Save(blob("old"), 3); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Save(blob("new"), 9); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(st.path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x01
	if err := os.WriteFile(st.path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, fellBack, seq := loadPayloadSeq(t, st)
	if string(got) != "old" || !fellBack || seq != 3 {
		t.Fatalf("load = %q, fellBack=%v, walSeq=%d; want fallback with boundary 3", got, fellBack, seq)
	}
}

func TestStoreBoundaryBitRotTriggersFallback(t *testing.T) {
	// The checksum covers the boundary field: flipping a boundary bit must
	// reject the container, not silently skip acknowledged events.
	st := testStore(t, faults.OS, nil)
	if _, _, err := st.Save(blob("guarded"), 7); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(st.path)
	if err != nil {
		t.Fatal(err)
	}
	data[16] ^= 0x01 // low byte of the walSeq field
	if err := os.WriteFile(st.path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = st.Load(func(io.Reader) error { return nil })
	if !errors.Is(err, errSnapshotCorrupt) {
		t.Fatalf("Load with flipped boundary = %v, want errSnapshotCorrupt", err)
	}
}

func TestStoreLegacyPRS1Container(t *testing.T) {
	// PRS1 containers (no boundary field) still load, with walSeq 0.
	st := testStore(t, faults.OS, nil)
	body := []byte("prs1 payload")
	frame := make([]byte, storeHeaderSize+len(body))
	binary.LittleEndian.PutUint32(frame[0:4], storeMagic)
	binary.LittleEndian.PutUint64(frame[4:12], uint64(len(body)))
	binary.LittleEndian.PutUint32(frame[12:16], crc32.Checksum(body, crcTable))
	copy(frame[storeHeaderSize:], body)
	if err := os.WriteFile(st.path, frame, 0o644); err != nil {
		t.Fatal(err)
	}
	got, fellBack, seq := loadPayloadSeq(t, st)
	if !bytes.Equal(got, body) || fellBack || seq != 0 {
		t.Fatalf("PRS1 load = %q, fellBack=%v, walSeq=%d", got, fellBack, seq)
	}
}
