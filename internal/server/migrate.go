// Live slot migration: POST /v1/shard/migrate snapshot-ships one slot's
// databases to the new owning group and cuts the slot over behind a write
// fence, so no acknowledged write is lost mid-move.
//
// Protocol (source side):
//
//  1. fence the slot — mutations get 503 + Retry-After, reads keep serving
//  2. quiesce under the exclusive side of walGate and archive every
//     database in the slot (PRS2-framed, CRC per database)
//  3. ship the PRT1 transfer (proposed map + archives) to the destination,
//     retrying transient failures; the destination restores, persists a
//     snapshot, and adopts the bumped map BEFORE acking — so a lost ack
//     still left a durable owner
//  4. on ack (or a lost-ack probe showing the destination owns the slot):
//     adopt the bumped map, journal-delete the moved databases, unfence
//
// A crash anywhere leaves the system recoverable: before the destination's
// durable adopt the source still owns everything; after it, the bumped map
// wins reconciliation and the source's stale copies are swept.
package server

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"prorp/internal/shardmap"
	"prorp/internal/wal"
)

// transferMagic frames a PRT1 slot-transfer payload.
const transferMagic uint32 = 0x50525431 // "PRT1"

// maxTransferBytes caps one slot transfer (matches the resync fetch cap).
const maxTransferBytes = 1 << 30

// transferEntry is one database inside a transfer: its id and its
// PRS2-framed archive (CRC inside the frame).
type transferEntry struct {
	id     int64
	framed []byte
}

// encodeTransfer serializes a slot transfer:
//
//	u32 magic | u16 slot | u32 mapLen | PRM1 map | u32 count |
//	per db: u64 id | u32 len | PRS2 container
//
// The map and every archive carry their own CRCs, so a mangled transfer is
// rejected structurally rather than half-applied.
func encodeTransfer(slot int, m *shardmap.Map, entries []transferEntry) []byte {
	mb := m.Encode()
	var b []byte
	b = binary.LittleEndian.AppendUint32(b, transferMagic)
	b = binary.LittleEndian.AppendUint16(b, uint16(slot))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(mb)))
	b = append(b, mb...)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(entries)))
	for _, e := range entries {
		b = binary.LittleEndian.AppendUint64(b, uint64(e.id))
		b = binary.LittleEndian.AppendUint32(b, uint32(len(e.framed)))
		b = append(b, e.framed...)
	}
	return b
}

// decodeTransfer parses and CRC-verifies a PRT1 payload, returning the
// verified archive payload (container stripped) per database.
func decodeTransfer(b []byte) (slot int, m *shardmap.Map, dbs map[int64][]byte, err error) {
	fail := func(format string, args ...any) (int, *shardmap.Map, map[int64][]byte, error) {
		return 0, nil, nil, fmt.Errorf("transfer: "+format, args...)
	}
	if len(b) < 10 {
		return fail("%d bytes, want at least header", len(b))
	}
	if got := binary.LittleEndian.Uint32(b[0:4]); got != transferMagic {
		return fail("bad magic %#x", got)
	}
	slot = int(binary.LittleEndian.Uint16(b[4:6]))
	if slot >= shardmap.NumSlots {
		return fail("slot %d out of range", slot)
	}
	mapLen := int(binary.LittleEndian.Uint32(b[6:10]))
	b = b[10:]
	if len(b) < mapLen+4 {
		return fail("truncated map")
	}
	m, err = shardmap.Decode(b[:mapLen])
	if err != nil {
		return fail("map: %v", err)
	}
	count := int(binary.LittleEndian.Uint32(b[mapLen : mapLen+4]))
	b = b[mapLen+4:]
	dbs = make(map[int64][]byte, count)
	for i := 0; i < count; i++ {
		if len(b) < 12 {
			return fail("truncated entry %d", i)
		}
		id := int64(binary.LittleEndian.Uint64(b[0:8]))
		l := int(binary.LittleEndian.Uint32(b[8:12]))
		b = b[12:]
		if len(b) < l {
			return fail("truncated archive for database %d", id)
		}
		payload, _, verr := verifyContainer(b[:l])
		if verr != nil {
			return fail("database %d archive: %v", id, verr)
		}
		if shardmap.SlotOf(int(id)) != slot {
			return fail("database %d does not hash to slot %d", id, slot)
		}
		dbs[id] = payload
		b = b[l:]
	}
	if len(b) != 0 {
		return fail("%d trailing bytes", len(b))
	}
	return slot, m, dbs, nil
}

// stopped reports whether Kill/Close has begun: the migration cutover
// checks it between steps so a killed server approximates a crash instead
// of finishing the protocol on a dead fleet.
func (s *Server) stopped() bool {
	select {
	case <-s.stop:
		return true
	default:
		return false
	}
}

type migrateRequest struct {
	Slot int    `json:"slot"`
	To   string `json:"to"`
}

// handleShardMigrate is the source side of a slot migration.
func (s *Server) handleShardMigrate(w http.ResponseWriter, r *http.Request) {
	rt := s.router
	if rt == nil {
		writeJSON(w, http.StatusNotFound, errorJSON{Error: "server is not partitioned (no -group configured)"})
		return
	}
	if s.rejectNonPrimary(w) {
		return
	}
	var req migrateRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxCreateBody)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorJSON{Error: "bad migrate body: " + err.Error()})
		return
	}
	m := rt.mapP.Load()
	switch {
	case req.Slot < 0 || req.Slot >= shardmap.NumSlots:
		writeJSON(w, http.StatusBadRequest, errorJSON{Error: fmt.Sprintf("slot %d out of range [0,%d)", req.Slot, shardmap.NumSlots)})
		return
	case !m.HasGroup(req.To):
		writeJSON(w, http.StatusBadRequest, errorJSON{Error: fmt.Sprintf("unknown destination group %q", req.To)})
		return
	case m.Owner(req.Slot) == req.To:
		// Idempotent: the slot already lives there (a retried migrate).
		writeJSON(w, http.StatusOK, map[string]any{
			"slot": req.Slot, "from": rt.group, "to": req.To,
			"version": m.Version(), "databases": 0, "noop": true,
		})
		return
	case m.Owner(req.Slot) != rt.group:
		writeJSON(w, http.StatusConflict, errorJSON{Error: fmt.Sprintf(
			"slot %d is owned by %q, not this group (%q)", req.Slot, m.Owner(req.Slot), rt.group)})
		return
	}
	addr := rt.peers[req.To]
	if addr == "" {
		writeJSON(w, http.StatusBadRequest, errorJSON{Error: fmt.Sprintf("no address for group %q", req.To)})
		return
	}

	s.migrateMu.Lock()
	defer s.migrateMu.Unlock()
	rt.fence(req.Slot)
	fenced := true
	defer func() {
		if fenced {
			rt.unfence(req.Slot)
		}
	}()

	// Quiesce: in-flight writes hold walGate shared, so the exclusive lock
	// drains them; new writes to the slot are fence-rejected. The archives
	// taken here are the slot's complete acknowledged state.
	var entries []transferEntry
	s.walGate.Lock()
	var archiveErr error
	for _, id := range s.Fleet().IDs() {
		if shardmap.SlotOf(id) != req.Slot {
			continue
		}
		var buf bytes.Buffer
		buf.Write(make([]byte, storeHeader2Size)) // container headroom
		if err := s.Fleet().Snapshot(id, &buf); err != nil {
			archiveErr = fmt.Errorf("archiving database %d: %w", id, err)
			break
		}
		entries = append(entries, transferEntry{id: int64(id), framed: frameContainer(buf.Bytes(), 0)})
	}
	s.walGate.Unlock()
	if archiveErr != nil {
		rt.migrationsFail.Add(1)
		s.writeErr(w, archiveErr)
		return
	}

	proposed, err := m.WithOwner(req.Slot, req.To)
	if err != nil {
		rt.migrationsFail.Add(1)
		s.writeErr(w, err)
		return
	}
	adopted, err := s.shipTransfer(addr, req.To, req.Slot, encodeTransfer(req.Slot, proposed, entries), proposed)
	if err != nil {
		rt.migrationsFail.Add(1)
		s.logf("migration of slot %d to %q failed: %v", req.Slot, req.To, err)
		writeJSON(w, http.StatusBadGateway, errorJSON{Error: fmt.Sprintf(
			"shipping slot %d to %q: %v", req.Slot, req.To, err)})
		return
	}
	if s.stopped() {
		// Killed mid-protocol: behave like a crash — no cutover. Boot-time
		// reconciliation settles ownership from the durable maps.
		writeJSON(w, http.StatusServiceUnavailable, errorJSON{Error: "server stopping"})
		return
	}

	// Cutover: adopt (and persist) the bumped map first — from here the
	// bumped map wins any reconciliation — then journal-delete the moved
	// databases. A crash between the two leaves stale local copies that the
	// boot sweep removes.
	rt.adopt(adopted)
	for _, e := range entries {
		id := int(e.id)
		s.walGate.RLock()
		_, derr := s.journalize(wal.RecordDelete, id, s.now())
		if derr == nil {
			derr = s.Fleet().Delete(id)
		}
		s.walGate.RUnlock()
		if derr != nil {
			s.logf("migration: dropping moved database %d: %v (boot sweep will retry)", id, derr)
			continue
		}
		s.wakes.schedule(id, time.Time{})
	}
	rt.unfence(req.Slot)
	fenced = false
	rt.migrations.Add(1)
	rt.dbsMigrated.Add(uint64(len(entries)))
	s.logf("migrated slot %d (%d databases) to %q, map v%d", req.Slot, len(entries), req.To, adopted.Version())
	writeJSON(w, http.StatusOK, map[string]any{
		"slot": req.Slot, "from": rt.group, "to": req.To,
		"version": adopted.Version(), "databases": len(entries),
	})
}

// shipTransfer POSTs the transfer to the destination with retries. It
// returns the map the destination durably owns: normally the proposed map,
// but possibly a newer one (a retried adopt reports the destination's
// current version). When every attempt fails it probes the destination's
// map — a lost ack after a durable adopt must count as success, otherwise
// the source would keep serving a slot the destination already owns.
func (s *Server) shipTransfer(addr, to string, slot int, body []byte, proposed *shardmap.Map) (*shardmap.Map, error) {
	attempts := s.cfg.Backoff.Attempts
	if attempts <= 0 {
		attempts = 1
	}
	var lastErr error
	for attempt := 0; attempt < attempts && !s.stopped(); attempt++ {
		if attempt > 0 {
			// Re-ships draw on the shared retry budget: during an outage the
			// lost-ack probe below decides the migration's fate instead of a
			// storm of doomed re-sends piling onto a struggling destination.
			if !s.spendRetry() {
				break
			}
			s.clock.Sleep(s.cfg.Backoff.Delay(attempt))
		}
		req, err := http.NewRequest(http.MethodPost, addr+"/v1/shard/adopt", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		resp, err := s.router.doer.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		s.earnRetry()
		respBody, rerr := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusOK:
			return proposed, nil
		case resp.StatusCode >= 400 && resp.StatusCode < 500:
			// Structural refusal: retrying the same payload cannot help.
			return nil, fmt.Errorf("destination refused: status %d: %s", resp.StatusCode, bytes.TrimSpace(respBody))
		default:
			lastErr = fmt.Errorf("status %d (%v)", resp.StatusCode, rerr)
		}
	}
	// Lost-ack probe: if the destination durably adopted before its ack
	// reached us, its map already shows the new ownership.
	if dm, perr := s.fetchGroupMap(addr); perr == nil &&
		dm.Version() >= proposed.Version() && dm.Owner(slot) == to {
		s.logf("migration: ack lost but destination owns slot %d at v%d; treating as success", slot, dm.Version())
		return dm, nil
	}
	if lastErr == nil {
		lastErr = errors.New("server stopping")
	}
	return nil, lastErr
}

// handleShardAdopt is the destination side: verify the transfer, restore
// every database, persist a snapshot (the restored state must survive a
// crash BEFORE the ack — the same durable-adoption ordering as replResync),
// adopt the bumped map, then ack.
func (s *Server) handleShardAdopt(w http.ResponseWriter, r *http.Request) {
	rt := s.router
	if rt == nil {
		writeJSON(w, http.StatusNotFound, errorJSON{Error: "server is not partitioned (no -group configured)"})
		return
	}
	if s.rejectNonPrimary(w) {
		return
	}
	// A WAL-only node (journal but no snapshot store) cannot make an adopted
	// slot durable: journal records carry only (type, id, time), not the
	// shipped archives, so a crash after the ack would replay none of the
	// restored state while the source has already journal-deleted its
	// copies. Refuse structurally (4xx — shipTransfer will not retry), so
	// the source aborts the migration with its data intact.
	if s.store == nil && s.wal != nil {
		writeJSON(w, http.StatusPreconditionFailed, errorJSON{Error: "this node persists through a WAL only (no -snapshot); it cannot durably adopt a slot transfer"})
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxTransferBytes))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorJSON{Error: "reading transfer: " + err.Error()})
		return
	}
	slot, proposed, dbs, err := decodeTransfer(body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorJSON{Error: err.Error()})
		return
	}
	if proposed.Owner(slot) != rt.group {
		writeJSON(w, http.StatusBadRequest, errorJSON{Error: fmt.Sprintf(
			"transfer assigns slot %d to %q, not this group (%q)", slot, proposed.Owner(slot), rt.group)})
		return
	}
	s.migrateMu.Lock()
	defer s.migrateMu.Unlock()
	cur := rt.mapP.Load()
	if proposed.Version() <= cur.Version() {
		if cur.Owner(slot) == rt.group {
			// Duplicate of an adopt we already own durably (retried after a
			// lost ack): acknowledge idempotently.
			writeJSON(w, http.StatusOK, map[string]any{
				"version": cur.Version(), "databases": 0, "adopted": false,
			})
			return
		}
		writeJSON(w, http.StatusConflict, errorJSON{Error: fmt.Sprintf(
			"transfer map v%d is not newer than current v%d", proposed.Version(), cur.Version())})
		return
	}

	// Restore each database: delete-then-restore makes a re-shipped
	// transfer an idempotent replace of any partial earlier attempt.
	restored := 0
	for id, payload := range dbs {
		s.walGate.RLock()
		s.Fleet().Delete(int(id)) // ErrUnknownDatabase is the common case
		wakeAt, rerr := s.Fleet().Restore(int(id), bytes.NewReader(payload))
		s.walGate.RUnlock()
		if rerr != nil {
			writeJSON(w, http.StatusInternalServerError, errorJSON{Error: fmt.Sprintf(
				"restoring database %d: %v", id, rerr)})
			return
		}
		s.wakes.schedule(int(id), wakeAt)
		restored++
	}
	// Durability before acknowledgement: the restored databases enter a
	// snapshot (with a fresh WAL boundary) before the source is told it may
	// delete its copies. Without this, a crash after the ack loses the slot.
	// s.store == nil here means a memory-only node (WAL-only was refused
	// above): nothing on this node is durable, so there is nothing to write.
	if s.store != nil {
		if _, serr := s.writeSnapshot(); serr != nil {
			writeJSON(w, http.StatusServiceUnavailable, errorJSON{Error: fmt.Sprintf(
				"persisting adopted slot %d: %v", slot, serr)})
			return
		}
	}
	rt.adopt(proposed)
	s.logf("adopted slot %d (%d databases) at map v%d", slot, restored, proposed.Version())
	writeJSON(w, http.StatusOK, map[string]any{
		"version": proposed.Version(), "databases": restored, "adopted": true,
	})
}
