package server

import (
	"container/heap"
	"sync"
	"time"
)

// wakeScheduler tracks the single pending wake-up per database that the
// policy contract requires (Decision.WakeAt is the complete desired timer
// state: a new decision replaces any earlier timer, zero cancels it). It is
// a min-heap with lazy invalidation: superseded entries stay in the heap
// and are dropped when popped, by checking them against the authoritative
// per-database map.
type wakeScheduler struct {
	mu      sync.Mutex
	heap    wakeHeap
	current map[int]time.Time
	// signal wakes the delivery loop to re-arm its timer after an earlier
	// deadline was scheduled. Capacity 1: one pending kick is enough.
	signal chan struct{}
}

type wakeEntry struct {
	id int
	at time.Time
}

func newWakeScheduler() *wakeScheduler {
	return &wakeScheduler{
		current: make(map[int]time.Time),
		signal:  make(chan struct{}, 1),
	}
}

// schedule records the desired wake-up for id; a zero at cancels it.
func (w *wakeScheduler) schedule(id int, at time.Time) {
	w.mu.Lock()
	if at.IsZero() {
		delete(w.current, id)
		w.mu.Unlock()
		return
	}
	w.current[id] = at
	heap.Push(&w.heap, wakeEntry{id: id, at: at})
	w.mu.Unlock()
	w.kick()
}

// kick nudges the delivery loop to recompute its timer.
func (w *wakeScheduler) kick() {
	select {
	case w.signal <- struct{}{}:
	default:
	}
}

// reset drops every scheduled wake; the caller reschedules from the
// authoritative pending set (a snapshot resync swaps the whole fleet).
func (w *wakeScheduler) reset() {
	w.mu.Lock()
	w.heap = nil
	w.current = make(map[int]time.Time)
	w.mu.Unlock()
	w.kick()
}

// next reports the earliest still-valid wake-up without removing it.
func (w *wakeScheduler) next() (time.Time, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for len(w.heap) > 0 {
		e := w.heap[0]
		if cur, ok := w.current[e.id]; ok && cur.Equal(e.at) {
			return e.at, true
		}
		heap.Pop(&w.heap) // superseded or cancelled
	}
	return time.Time{}, false
}

// due pops every valid wake-up with at <= now.
func (w *wakeScheduler) due(now time.Time) []wakeEntry {
	w.mu.Lock()
	defer w.mu.Unlock()
	var out []wakeEntry
	for len(w.heap) > 0 {
		e := w.heap[0]
		cur, ok := w.current[e.id]
		if !ok || !cur.Equal(e.at) {
			heap.Pop(&w.heap)
			continue
		}
		if e.at.After(now) {
			break
		}
		heap.Pop(&w.heap)
		delete(w.current, e.id)
		out = append(out, e)
	}
	return out
}

// pending reports the number of databases with a scheduled wake-up.
func (w *wakeScheduler) pending() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.current)
}

type wakeHeap []wakeEntry

func (h wakeHeap) Len() int            { return len(h) }
func (h wakeHeap) Less(i, j int) bool  { return h[i].at.Before(h[j].at) }
func (h wakeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *wakeHeap) Push(x interface{}) { *h = append(*h, x.(wakeEntry)) }
func (h *wakeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
