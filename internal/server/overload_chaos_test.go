package server

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"prorp/internal/admission"
	"prorp/internal/faults"
	"prorp/internal/wal"
)

// overloadDoer is the in-process inter-group transport with hangable
// hosts: a hung peer holds each request for holdFor of real time and then
// fails it — the "accepted the connection, then wedged" failure mode that
// burns a timeout per call until a circuit breaker learns better.
type overloadDoer struct {
	inner   faults.Doer
	holdFor time.Duration

	mu   sync.Mutex
	hung map[string]bool
}

func (d *overloadDoer) hang(host string) {
	d.mu.Lock()
	if d.hung == nil {
		d.hung = make(map[string]bool)
	}
	d.hung[host] = true
	d.mu.Unlock()
}

func (d *overloadDoer) healAll() {
	d.mu.Lock()
	d.hung = nil
	d.mu.Unlock()
}

func (d *overloadDoer) Do(req *http.Request) (*http.Response, error) {
	d.mu.Lock()
	hung := d.hung[req.URL.Host]
	d.mu.Unlock()
	if hung {
		time.Sleep(d.holdFor)
		return nil, fmt.Errorf("chaos: %s hung", req.URL.Host)
	}
	return d.inner.Do(req)
}

// overloadConfig builds one group's durable Config with the overload layer
// tuned for test time scales: a 5ms sojourn target, trip-after-3 breakers
// with a 50ms cooldown, and a 100ms scatter deadline.
func overloadConfig(t *testing.T, dir, g string, peers map[string]string, clock *stepClock, doer faults.Doer, inj *faults.Injector) Config {
	return Config{
		Options:              testOptions(),
		Shards:               4,
		SnapshotPath:         filepath.Join(dir, "fleet.snap"),
		SnapshotEvery:        time.Hour,
		WALDir:               filepath.Join(dir, "wal"),
		WALFsync:             wal.FsyncAlways,
		WALSegmentBytes:      2048,
		Group:                g,
		GroupPeers:           peers,
		ShardmapPath:         filepath.Join(dir, "shard.map"),
		RouterDoer:           doer,
		ScatterTimeout:       100 * time.Millisecond,
		AdmissionTargetDelay: 5 * time.Millisecond,
		AdmissionMaxInflight: 64,
		BreakerThreshold:     3,
		BreakerCooldown:      50 * time.Millisecond,
		Now:                  clock.Now,
		Sleep:                noSleep,
		Backoff: faults.Backoff{Attempts: 3, Base: time.Millisecond,
			Max: 2 * time.Millisecond, Factor: 2, Rand: inj.Rand()},
		Logf: t.Logf,
	}
}

// rawCall is call() without the JSON decode: the overload assertions need
// response headers (Retry-After), not just the body.
func rawCall(s *Server, method, path, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

// p99 returns the 99th-percentile of a latency sample.
func p99(samples []time.Duration) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	idx := len(samples) * 99 / 100
	if idx >= len(samples) {
		idx = len(samples) - 1
	}
	return samples[idx]
}

// TestChaosOverload is the overload-robustness acceptance gate: 50 seeded
// iterations of a three-group control plane flooded with mixed-priority
// open-loop load while one or two peer groups hang (accept, wedge, fail)
// and the transport randomly partitions. Invariants, every iteration:
//
//   - Priority inversion never happens: login (decision-class) traffic is
//     never shed and its p99 stays bounded while the hung inter-group
//     paths drive background — and under enough pressure, write and read
//     — classes to shed with 429.
//   - Every shed/open/backlog rejection carries a Retry-After hint.
//   - Circuit breakers trip on the hung peers (bounding the per-request
//     cost at O(1) instead of a timeout each) and re-close on their own
//     once the fault clears — verified by a scatter that completes.
//   - Zero acked-write loss: every event acknowledged during the flood
//     survives a kill -9 and a reboot from WAL + snapshot.
//
// Runs under -race in CI (make overload-chaos). On failure, each group's
// on-disk debris is copied to $PRORP_CHAOS_DEBRIS/<test-name>.
func TestChaosOverload(t *testing.T) {
	const iterations = 50
	for seed := int64(0); seed < iterations; seed++ {
		t.Run(fmt.Sprintf("seed%02d", seed), func(t *testing.T) {
			t.Parallel()
			chaosOverload(t, seed)
		})
	}
}

func chaosOverload(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	inj := faults.NewInjector(seed)
	clock := &stepClock{t: t0}
	net := &mapDoer{}
	flaky := faults.NewFaultDoer(net, inj, funcClock{now: time.Now, sleep: napSleep})
	doer := &overloadDoer{inner: flaky, holdFor: 25 * time.Millisecond}

	dirs := map[string]string{"g1": t.TempDir(), "g2": t.TempDir(), "g3": t.TempDir()}
	saveDebris(t, dirs)
	peersOf := map[string]map[string]string{
		"g1": {"g2": "http://g2", "g3": "http://g3"},
		"g2": {"g1": "http://g1", "g3": "http://g3"},
		"g3": {"g1": "http://g1", "g2": "http://g2"},
	}
	boot := func(g string) *Server {
		srv, err := New(overloadConfig(t, dirs[g], g, peersOf[g], clock, doer, inj))
		if err != nil {
			t.Fatalf("boot %s: %v", g, err)
		}
		t.Cleanup(func() { srv.Close() })
		net.bind(g, srv)
		return srv
	}
	g1 := boot("g1")
	boot("g2")
	boot("g3")

	// Population: two g1-owned databases, one per acked-writer goroutine,
	// so each database's event times are strictly increasing under its
	// owner's clock steps.
	m := g1.router.mapP.Load()
	ids := idsOwnedBy(t, m, "g1", 2, 1)
	for _, id := range ids {
		clock.Step()
		code, out := call(t, g1, "POST", "/v1/db", fmt.Sprintf(`{"id":%d}`, id))
		wantStatus(t, code, http.StatusCreated, out)
	}

	// Fault window: hang one or both peer groups and partition a slice of
	// the remaining transport. g1 — where all client traffic lands — stays
	// up; its inter-group paths are what degrade.
	hungHosts := []string{"g2", "g3"}[:1+rng.Intn(2)]
	for _, h := range hungHosts {
		doer.hang(h)
	}
	inj.FailProb("http.request", 0.2*rng.Float64(), fmt.Errorf("chaos: partitioned"))

	// Deterministic shed probe before the open-loop flood: park one
	// background request on the hung path, wait until the admission
	// controller sees its sojourn past the target, then submit another —
	// which must shed with 429 + Retry-After while decision traffic
	// (asserted below) keeps flowing.
	probeDone := make(chan struct{})
	go func() {
		rawCall(g1, "POST", "/v1/shard/reconcile", "")
		close(probeDone)
	}()
	waitUntil(t, "a background request to age past the shed target", func() bool {
		p := g1.admission.Pressure()
		return p.Inflight > 0 && p.OldestSojourn > g1.admission.TargetDelay()
	})
	rec := rawCall(g1, "POST", "/v1/shard/reconcile", "")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("background submit behind an aged request = %d, want 429 (%s)", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatalf("shed 429 carries no Retry-After")
	}
	<-probeDone

	// Open-loop flood: background reconciles (fanning into the hung
	// peers), reads, and two acked writers alternating login/logout, for a
	// fixed wall window. Nobody slows down on rejection — that is the
	// admission controller's job.
	var (
		stop       = make(chan struct{})
		wg         sync.WaitGroup
		mu         sync.Mutex
		acked      []ackedWrite
		loginLat   []time.Duration
		violations []string
	)
	checkRetryAfter := func(rec *httptest.ResponseRecorder, what string) {
		if rec.Code != http.StatusTooManyRequests && rec.Code != http.StatusServiceUnavailable {
			return
		}
		if rec.Header().Get("Retry-After") == "" {
			mu.Lock()
			violations = append(violations, fmt.Sprintf("%s: %d without Retry-After (%s)",
				what, rec.Code, rec.Body.String()))
			mu.Unlock()
		}
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				checkRetryAfter(rawCall(g1, "POST", "/v1/shard/reconcile", ""), "background reconcile")
			}
		}()
	}
	for i := 0; i < 2; i++ {
		id := ids[i%len(ids)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				checkRetryAfter(rawCall(g1, "GET", fmt.Sprintf("/v1/db/%d", id), ""), "read")
				time.Sleep(time.Millisecond)
			}
		}()
	}
	for i := 0; i < 2; i++ {
		id := ids[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			// A new database is born active (creation records the start of
			// an activity period), so the alternation begins with logout.
			nextLogin := false
			for {
				select {
				case <-stop:
					return
				default:
				}
				verb := "logout"
				if nextLogin {
					verb = "login"
				}
				clock.Step()
				start := time.Now()
				rec := rawCall(g1, "POST", fmt.Sprintf("/v1/db/%d/%s", id, verb), "")
				lat := time.Since(start)
				if nextLogin {
					// Decision class: a login must never be shed, whatever
					// the background queues look like.
					if rec.Code != http.StatusOK {
						mu.Lock()
						violations = append(violations, fmt.Sprintf(
							"login on db %d = %d (%s)", id, rec.Code, rec.Body.String()))
						mu.Unlock()
						return
					}
					mu.Lock()
					loginLat = append(loginLat, lat)
					mu.Unlock()
				}
				checkRetryAfter(rec, verb)
				if rec.Code == http.StatusOK {
					var out struct {
						At string `json:"at"`
					}
					if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
						t.Errorf("bad %s body %q: %v", verb, rec.Body.String(), err)
						return
					}
					at, err := time.Parse(time.RFC3339, out.At)
					if err != nil {
						t.Errorf("bad event time %q: %v", out.At, err)
						return
					}
					mu.Lock()
					acked = append(acked, ackedWrite{id: id, unix: at.Unix(), login: nextLogin})
					mu.Unlock()
					nextLogin = !nextLogin
				}
				time.Sleep(2 * time.Millisecond)
			}
		}()
	}
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Backstop: keep hammering the hung path until the breakers have both
	// tripped and refused something — the flood almost always got there,
	// but the race detector can starve it on a loaded machine.
	waitUntil(t, "breakers to trip and reject on the hung peers", func() bool {
		rawCall(g1, "POST", "/v1/shard/reconcile", "")
		st := g1.router.breakers.Stats()
		return st.Trips > 0 && st.Rejections > 0
	})

	if len(violations) > 0 {
		t.Fatalf("overload contract violations (%d):\n%s", len(violations), strings.Join(violations, "\n"))
	}
	if got := g1.admission.Stats(admission.Decision).Shed; got != 0 {
		t.Fatalf("decision class shed %d requests; logins must never shed", got)
	}
	if got := g1.admission.Stats(admission.Background).Shed; got == 0 {
		t.Fatalf("background class shed nothing under a hung-peer flood")
	}
	if got, bound := p99(loginLat), 2*time.Second; got > bound {
		t.Fatalf("login p99 = %v under overload, want < %v (n=%d)", got, bound, len(loginLat))
	}

	// Recovery: clear every fault and drive light traffic; the breakers
	// must probe their way closed with no operator involved, after which a
	// fleet-wide scatter completes against all three groups.
	doer.healAll()
	inj.HealAll()
	waitUntil(t, "breakers to re-close after the fault cleared", func() bool {
		rawCall(g1, "POST", "/v1/shard/reconcile", "")
		for _, state := range g1.router.breakers.States() {
			if state != "closed" {
				return false
			}
		}
		return true
	})
	if st := g1.router.breakers.Stats(); st.Recoveries == 0 {
		t.Fatalf("breakers closed without a recorded recovery: %+v", st)
	}
	code, out := call(t, g1, "GET", "/v1/kpi", "")
	wantStatus(t, code, http.StatusOK, out)

	// Zero acked-write loss: kill g1 mid-flight (no final snapshot) and
	// reboot it from its journal; every acknowledged event must be there.
	g1.Kill()
	net.bind("g1", nil)
	g1b := boot("g1")
	assertAcked(t, g1b, acked)
}
