// Scatter-gather for fleet-wide surfaces in a partitioned deployment:
// /v1/kpi merges every group's KPI report, /metrics?scope=global merges
// every group's exposition under an injected group label, and the
// Algorithm 5 resume beat scans every group before applying the *global*
// per-iteration prewarm cap to the merged due set. Each scatter runs its
// peers concurrently under one deadline; a group that misses it is reported
// (partial flag + counters), never silently dropped.
package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"prorp"
	"prorp/internal/admission"
	"prorp/internal/faults"
	"prorp/internal/obs"
)

// defaultScatterTimeout bounds one scatter-gather fan-out.
const defaultScatterTimeout = 2 * time.Second

func (s *Server) scatterTimeout() time.Duration {
	if s.cfg.ScatterTimeout > 0 {
		return s.cfg.ScatterTimeout
	}
	return defaultScatterTimeout
}

// groupReply is one peer's answer to a scatter fan-out.
type groupReply struct {
	group  string
	status int
	body   []byte
	err    error
}

// scatter fans one request out to every peer group concurrently and gathers
// the replies under the scatter deadline. Peers that miss it are returned
// with err set; partial reports whether any peer failed or timed out.
func (s *Server) scatter(method, path string, body []byte) (replies []groupReply, partial bool) {
	rt := s.router
	groups := rt.peerGroupsSorted()
	if len(groups) == 0 {
		return nil, false
	}
	rt.scatterRequests.Add(1)
	ch := make(chan groupReply, len(groups))
	for _, g := range groups {
		go func(g, addr string) {
			rep := groupReply{group: g}
			var rd io.Reader
			if body != nil {
				rd = bytes.NewReader(body)
			}
			req, err := http.NewRequest(method, addr+path, rd)
			if err != nil {
				rep.err = err
				ch <- rep
				return
			}
			if body != nil {
				req.Header.Set("Content-Type", "application/json")
			}
			resp, err := rt.doer.Do(req)
			if err != nil {
				rep.err = err
				ch <- rep
				return
			}
			rep.status = resp.StatusCode
			rep.body, rep.err = io.ReadAll(io.LimitReader(resp.Body, 8<<20))
			resp.Body.Close()
			if rep.err == nil && resp.StatusCode != http.StatusOK {
				rep.err = fmt.Errorf("status %d", resp.StatusCode)
			}
			ch <- rep
		}(g, rt.peers[g])
	}
	// One wall-clock deadline for the whole fan-out: scatter latency is the
	// slowest group or the timeout, whichever comes first. (Deliberately
	// real time, not the injected clock — the deadline guards against peers
	// that genuinely hang.)
	deadline := time.After(s.scatterTimeout())
	got := make(map[string]groupReply, len(groups))
gather:
	for len(got) < len(groups) {
		select {
		case rep := <-ch:
			got[rep.group] = rep
		case <-deadline:
			break gather
		}
	}
	for _, g := range groups {
		rep, ok := got[g]
		if !ok {
			rep = groupReply{group: g, err: fmt.Errorf("timeout after %s", s.scatterTimeout())}
		}
		if rep.err != nil {
			rt.scatterFailures.Add(1)
			partial = true
		}
		replies = append(replies, rep)
	}
	if partial {
		rt.scatterPartials.Add(1)
	}
	return replies, partial
}

// ----- /v1/kpi merge ------------------------------------------------------

// localKPI fills the single-group KPI report — the exact shape /v1/kpi has
// always served (TestKPIShapeFrozen pins it).
func (s *Server) localKPI(now time.Time) kpiJSON {
	kpi := s.Fleet().KPI()
	kpi.SnapshotRetries = s.ops.snapshotRetries.Load()
	kpi.SnapshotFailures = s.ops.snapshotFailures.Load()
	kpi.SnapshotFallbacks = s.ops.snapshotFallbacks.Load()
	kpi.PrewarmRetries = s.ops.prewarmRetries.Load()
	kpi.PrewarmFailures = s.ops.prewarmFailures.Load()
	kpi.WakeRetries = s.ops.wakeRetries.Load()
	kpi.WakeFailures = s.ops.wakeFailures.Load()
	if s.wal != nil {
		wm := s.wal.Metrics()
		kpi.WALAppends = wm.Appends
		kpi.WALFsyncs = wm.Fsyncs
		kpi.WALRotations = wm.Rotations
		kpi.WALSegmentsCompacted = wm.Compacted
		kpi.WALAppendFailures = s.ops.walAppendFailures.Load()
		kpi.WALReplayedRecords = s.ops.walReplayed.Load()
		kpi.WALReplaySkipped = s.ops.walReplaySkipped.Load()
		kpi.WALTornSegments = s.ops.walTornSegments.Load()
		kpi.WALTruncatedBytes = s.ops.walTruncatedBytes.Load()
	}
	out := kpiJSON{
		FleetKPI:      kpi,
		QoSPercent:    kpi.QoSPercent(),
		Shards:        s.Fleet().Shards(),
		PendingWakes:  s.wakes.pending(),
		Now:           now.UTC(),
		UptimeSeconds: int64(now.Sub(s.started) / time.Second),
	}
	if s.admission != nil {
		out.Admission = make(map[string]admissionClassJSON, len(admission.Classes()))
		for _, class := range admission.Classes() {
			st := s.admission.Stats(class)
			out.Admission[class.String()] = admissionClassJSON{
				Admitted: st.Admitted, Shed: st.Shed, Inflight: st.Inflight,
			}
		}
	}
	addBreakers := func(path string, states map[string]string) {
		if len(states) == 0 {
			return
		}
		if out.Breakers == nil {
			out.Breakers = map[string]map[string]string{}
		}
		out.Breakers[path] = states
	}
	if s.replBreakers != nil {
		addBreakers("repl", s.replBreakers.States())
	}
	if s.router != nil && s.router.breakers != nil {
		addBreakers("router", s.router.breakers.States())
	}
	return out
}

// addFleetKPI folds src's gauges and counters into dst, field by field.
func addFleetKPI(dst *prorp.FleetKPI, src prorp.FleetKPI) {
	dst.Databases += src.Databases
	dst.Resumed += src.Resumed
	dst.LogicallyPaused += src.LogicallyPaused
	dst.PhysicallyPaused += src.PhysicallyPaused
	dst.QueuedEvents += src.QueuedEvents
	dst.Creates += src.Creates
	dst.Deletes += src.Deletes
	dst.Logins += src.Logins
	dst.Logouts += src.Logouts
	dst.Wakes += src.Wakes
	dst.WarmResumes += src.WarmResumes
	dst.ColdResumes += src.ColdResumes
	dst.LogicalPauses += src.LogicalPauses
	dst.PhysicalPauses += src.PhysicalPauses
	dst.Prewarms += src.Prewarms
	dst.PrewarmsUsed += src.PrewarmsUsed
	dst.PrewarmsWasted += src.PrewarmsWasted
	dst.SnapshotRetries += src.SnapshotRetries
	dst.SnapshotFailures += src.SnapshotFailures
	dst.SnapshotFallbacks += src.SnapshotFallbacks
	dst.PrewarmRetries += src.PrewarmRetries
	dst.PrewarmFailures += src.PrewarmFailures
	dst.WakeRetries += src.WakeRetries
	dst.WakeFailures += src.WakeFailures
	dst.WALAppends += src.WALAppends
	dst.WALAppendFailures += src.WALAppendFailures
	dst.WALFsyncs += src.WALFsyncs
	dst.WALRotations += src.WALRotations
	dst.WALSegmentsCompacted += src.WALSegmentsCompacted
	dst.WALReplayedRecords += src.WALReplayedRecords
	dst.WALReplaySkipped += src.WALReplaySkipped
	dst.WALTornSegments += src.WALTornSegments
	dst.WALTruncatedBytes += src.WALTruncatedBytes
}

// groupStatusJSON reports one group's contribution to a scatter merge.
type groupStatusJSON struct {
	Group string `json:"group"`
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
}

// scatterKPIJSON is the merged report: the frozen single-group shape plus
// the per-group accounting only a partitioned deployment has.
type scatterKPIJSON struct {
	kpiJSON
	Groups  []groupStatusJSON `json:"groups"`
	Partial bool              `json:"partial"`
}

// scatterKPI merges this group's KPI with every peer's. Peers are asked for
// scope=local so the fan-out never recurses.
func (s *Server) scatterKPI(now time.Time) scatterKPIJSON {
	merged := s.localKPI(now)
	out := scatterKPIJSON{
		Groups: []groupStatusJSON{{Group: s.router.group, OK: true}},
	}
	replies, partial := s.scatter(http.MethodGet, "/v1/kpi?scope=local", nil)
	for _, rep := range replies {
		gs := groupStatusJSON{Group: rep.group, OK: rep.err == nil}
		if rep.err == nil {
			var peer kpiJSON
			if err := json.Unmarshal(rep.body, &peer); err != nil {
				gs.OK, gs.Error = false, "bad kpi reply: "+err.Error()
				partial = true
				s.router.scatterFailures.Add(1)
			} else {
				addFleetKPI(&merged.FleetKPI, peer.FleetKPI)
				merged.Shards += peer.Shards
				merged.PendingWakes += peer.PendingWakes
				// Admission counters sum into fleet-wide totals; breaker
				// states are per-observer, so peer paths keep their group
				// name as a prefix instead of colliding with ours.
				for class, st := range peer.Admission {
					if merged.Admission == nil {
						merged.Admission = map[string]admissionClassJSON{}
					}
					agg := merged.Admission[class]
					agg.Admitted += st.Admitted
					agg.Shed += st.Shed
					agg.Inflight += st.Inflight
					merged.Admission[class] = agg
				}
				for path, states := range peer.Breakers {
					if merged.Breakers == nil {
						merged.Breakers = map[string]map[string]string{}
					}
					merged.Breakers[rep.group+"/"+path] = states
				}
			}
		} else {
			gs.Error = rep.err.Error()
		}
		out.Groups = append(out.Groups, gs)
	}
	merged.QoSPercent = merged.FleetKPI.QoSPercent()
	out.kpiJSON = merged
	out.Partial = partial
	return out
}

// ----- /metrics?scope=global merge ---------------------------------------

// handleMetricsGlobal re-emits every group's exposition under an injected
// group label: local samples first, then each reachable peer's. Groups that
// fail the fan-out are surfaced as prorp_scatter_group_up{group=...} 0.
func (s *Server) handleMetricsGlobal(w http.ResponseWriter) {
	rt := s.router
	var local bytes.Buffer
	s.reg.WritePrometheus(&local)
	lines := relabelExposition(local.Bytes(), rt.group)

	replies, _ := s.scatter(http.MethodGet, "/metrics", nil)
	up := map[string]bool{rt.group: true}
	for _, rep := range replies {
		if rep.err != nil {
			up[rep.group] = false
			continue
		}
		up[rep.group] = true
		lines = append(lines, relabelExposition(rep.body, rep.group)...)
	}
	for g, ok := range up {
		v := 0
		if ok {
			v = 1
		}
		lines = append(lines, fmt.Sprintf("prorp_scatter_group_up{group=%q} %d", g, v))
	}
	sort.Strings(lines)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write([]byte(strings.Join(lines, "\n") + "\n"))
}

// relabelExposition parses one group's exposition and re-renders every
// sample with the group label prepended.
func relabelExposition(exposition []byte, group string) []string {
	samples, err := obs.ParseExposition(bytes.NewReader(exposition))
	if err != nil {
		return []string{fmt.Sprintf("prorp_scatter_parse_errors_total{group=%q} 1", group)}
	}
	lines := make([]string, 0, len(samples))
	for _, sm := range samples {
		var b strings.Builder
		b.WriteString(sm.Name)
		b.WriteString(`{group="`)
		b.WriteString(escapeLabelValue(group))
		b.WriteString(`"`)
		for _, l := range sm.Labels {
			b.WriteString(",")
			b.WriteString(l.Name)
			b.WriteString(`="`)
			b.WriteString(escapeLabelValue(l.Value))
			b.WriteString(`"`)
		}
		b.WriteString("} ")
		b.WriteString(formatMetricValue(sm.Value))
		lines = append(lines, b.String())
	}
	return lines
}

func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatMetricValue(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// ----- global resume beat (Algorithm 5 across groups) ---------------------

// shardDueJSON is GET /v1/shard/due's reply: this group's phase-one scan.
type shardDueJSON struct {
	Due            []int `json:"due"`
	WakesDelivered int   `json:"wakes_delivered"`
}

// handleShardDue runs phase one of the resume beat for this group on
// behalf of a coordinating peer: deliver due wakes (mirroring the ordering
// of a local tick), then report the uncapped due scan. The coordinator
// merges every group's scan before applying the global cap.
func (s *Server) handleShardDue(w http.ResponseWriter, r *http.Request) {
	if s.rejectNonPrimary(w) {
		return
	}
	now := s.now()
	if v := r.URL.Query().Get("now"); v != "" {
		// The coordinator pins the scan instant so every group answers for
		// the same beat.
		if unix, err := strconv.ParseInt(v, 10, 64); err == nil {
			now = time.Unix(unix, 0)
		}
	}
	delivered := s.deliverDueWakes(now)
	writeJSON(w, http.StatusOK, shardDueJSON{
		Due:            s.Fleet().DueForResume(now),
		WakesDelivered: delivered,
	})
}

// shardPrewarmRequest is POST /v1/shard/prewarm's body: the slice of the
// globally capped due set this group owns.
type shardPrewarmRequest struct {
	Now int64 `json:"now"`
	IDs []int `json:"ids"`
}

// handleShardPrewarm runs phase two for this group: pre-warm the listed
// databases (each re-checked under its shard lock) and perform the
// infrastructure side, exactly like a local tick would.
func (s *Server) handleShardPrewarm(w http.ResponseWriter, r *http.Request) {
	if s.rejectNonPrimary(w) {
		return
	}
	var req shardPrewarmRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxCreateBody)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorJSON{Error: "bad prewarm body: " + err.Error()})
		return
	}
	now := s.now()
	if req.Now != 0 {
		now = time.Unix(req.Now, 0)
	}
	prewarmed := s.Fleet().PrewarmIDs(now, req.IDs)
	s.executePrewarm(prewarmed)
	ids := make([]int, len(prewarmed))
	for i, pw := range prewarmed {
		ids[i] = pw.ID
	}
	writeJSON(w, http.StatusOK, map[string]any{"prewarmed": ids})
}

// executePrewarm performs the infrastructure side of each pre-warm (with
// retries) and schedules the resulting wake timers — the shared tail of the
// local tick and the scatter prewarm handler.
func (s *Server) executePrewarm(prewarmed []prorp.Prewarmed) {
	for _, pw := range prewarmed {
		if s.cfg.OnPrewarm != nil {
			retries, err := faults.Retry(s.clock, s.cfg.Backoff, func() error {
				return s.cfg.OnPrewarm(pw.ID)
			})
			s.ops.prewarmRetries.Add(uint64(retries))
			if err != nil {
				// The policy transition already happened; the failed
				// infrastructure call is surfaced, not silently dropped.
				s.ops.prewarmFailures.Add(1)
				s.logf("prewarm of database %d failed after %d retries: %v", pw.ID, retries, err)
			}
		}
		s.wakes.schedule(pw.ID, pw.Decision.WakeAt)
	}
}

// globalTick is the multi-group resume beat: deliver local wakes, scan
// every group (phase one), cap the merged due set globally, then fan the
// capped set back out for phase two. Groups that miss the scatter deadline
// simply keep their due databases for the next beat — the cap math stays
// correct because their scans were never merged.
func (s *Server) globalTick(now time.Time) (wakes int, ids []int, partial bool, groups []groupStatusJSON) {
	wakes = s.deliverDueWakes(now)
	due := s.Fleet().DueForResume(now)
	owners := map[int]string{}
	rt := s.router
	m := rt.mapP.Load()
	groups = []groupStatusJSON{{Group: rt.group, OK: true}}

	replies, partial := s.scatter(http.MethodGet,
		fmt.Sprintf("/v1/shard/due?now=%d", now.Unix()), nil)
	for _, rep := range replies {
		gs := groupStatusJSON{Group: rep.group, OK: rep.err == nil}
		if rep.err == nil {
			var peer shardDueJSON
			if err := json.Unmarshal(rep.body, &peer); err != nil {
				gs.OK, gs.Error = false, "bad due reply: "+err.Error()
				partial = true
				rt.scatterFailures.Add(1)
			} else {
				for _, id := range peer.Due {
					owners[id] = rep.group
					due = append(due, id)
				}
			}
		} else {
			gs.Error = rep.err.Error()
		}
		groups = append(groups, gs)
	}

	// During a migration overlap (or with stale not-yet-swept copies) the
	// same id can be reported twice — by the local scan and a peer, or by
	// two peers. Dedupe before capping, so a duplicate neither consumes a
	// global cap slot nor is dispatched twice; on conflicting claims the
	// current map's owner decides where the prewarm runs.
	seen := make(map[int]bool, len(due))
	uniq := due[:0]
	for _, id := range due {
		if seen[id] {
			delete(owners, id) // contested: fall through to m.OwnerOf below
			continue
		}
		seen[id] = true
		uniq = append(uniq, id)
	}
	due = uniq

	sort.Ints(due)
	if cap := s.cfg.Options.MaxPrewarmsPerOp; cap > 0 && len(due) > cap {
		due = due[:cap]
	}
	var local []int
	remote := map[string][]int{}
	for _, id := range due {
		g, ok := owners[id]
		if !ok {
			g = m.OwnerOf(id) // scanned locally
			if g == rt.group {
				local = append(local, id)
				continue
			}
		}
		remote[g] = append(remote[g], id)
	}

	prewarmed := s.Fleet().PrewarmIDs(now, local)
	s.executePrewarm(prewarmed)
	for _, pw := range prewarmed {
		ids = append(ids, pw.ID)
	}
	for g, gids := range remote {
		body, _ := json.Marshal(shardPrewarmRequest{Now: now.Unix(), IDs: gids})
		req, err := http.NewRequest(http.MethodPost, rt.peers[g]+"/v1/shard/prewarm", bytes.NewReader(body))
		if err != nil {
			continue
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := rt.doer.Do(req)
		if err != nil {
			partial = true
			rt.scatterFailures.Add(1)
			rt.logf("global resume: prewarm fan-out to %q: %v", g, err)
			continue
		}
		var out struct {
			Prewarmed []int `json:"prewarmed"`
		}
		err = json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&out)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			partial = true
			rt.scatterFailures.Add(1)
			rt.logf("global resume: prewarm fan-out to %q: status %d, %v", g, resp.StatusCode, err)
			continue
		}
		ids = append(ids, out.Prewarmed...)
	}
	sort.Ints(ids)
	return wakes, ids, partial, groups
}
